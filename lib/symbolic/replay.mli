(** Symbolic trace replay: lift the runtime trace to symbolic machine
    states following the operational semantics of the paper's Table 3.

    Replay starts at the action function (skipping the dispatcher); loads
    and stores use concrete addresses from the trace; every executed
    conditional (br_if / if / br_table / eosio_assert) is recorded with
    its as-taken symbolic condition. *)

module Expr = Wasai_smt.Expr
module Trace = Wasai_wasabi.Trace

type cond_kind = K_branch | K_assert | K_brtable

type cond_state = {
  cs_site : int;  (** instruction site, or -1 for asserts *)
  cs_cond : Expr.t;  (** width-1 condition as taken on this path *)
  cs_taken : bool;
  cs_kind : cond_kind;
}

type result = {
  r_path : cond_state list;  (** in execution order *)
  r_layout : Convention.layout option;
  r_mem : Memmodel.t;
  r_imprecise : int;  (** stack-underflow fallbacks (0 on healthy traces) *)
}

val run :
  ?layout:Convention.layout ->
  meta:Trace.meta ->
  target_funcs:int list ->
  Trace.Buffer.t ->
  result
(** Replay a trace buffer via a single forward cursor; [layout] provides
    the symbolic inputs of the target action function, whose entry is
    located by candidate set and argument arity.  The buffer is only
    read, never mutated. *)
