(* Systematic numeric-semantics vectors: every integer operator checked
   against hand-computed values from the WebAssembly specification's test
   suite conventions (wrap-around, shift masking, signed/unsigned
   division corners, rotation wrap, count instructions). *)

open Wasai_wasm

let run_i32 op a b =
  Values.as_i32 (Interp.eval_int_binary Types.I32 op (Values.I32 a) (Values.I32 b))

let run_i64 op a b =
  Values.as_i64 (Interp.eval_int_binary Types.I64 op (Values.I64 a) (Values.I64 b))

let cmp_i32 op a b =
  Values.as_i32 (Interp.eval_int_compare Types.I32 op (Values.I32 a) (Values.I32 b))

let cmp_i64 op a b =
  Values.as_i32 (Interp.eval_int_compare Types.I64 op (Values.I64 a) (Values.I64 b))

let check32 name expected got = Alcotest.(check int32) name expected got
let check64 name expected got = Alcotest.(check int64) name expected got

let test_i32_binop_vectors () =
  let v = [
    (Ast.Add, 0x7FFF_FFFFl, 1l, 0x8000_0000l);
    (Ast.Add, -1l, 1l, 0l);
    (Ast.Sub, 0l, 1l, -1l);
    (Ast.Sub, 0x8000_0000l, 1l, 0x7FFF_FFFFl);
    (Ast.Mul, 0x1234_5678l, 0x9ABC_DEF0l, Int32.mul 0x1234_5678l 0x9ABC_DEF0l);
    (Ast.Mul, 0x8000_0000l, 2l, 0l);
    (Ast.Div_s, 7l, 2l, 3l);
    (Ast.Div_s, -7l, 2l, -3l);  (* trunc toward zero *)
    (Ast.Div_s, 7l, -2l, -3l);
    (Ast.Div_u, -1l, 2l, 0x7FFF_FFFFl);  (* 0xFFFFFFFF / 2 *)
    (Ast.Rem_s, 7l, 2l, 1l);
    (Ast.Rem_s, -7l, 2l, -1l);
    (Ast.Rem_s, 0x8000_0000l, -1l, 0l);  (* the overflow-free remainder *)
    (Ast.Rem_u, -1l, 10l, 5l);  (* 4294967295 mod 10 *)
    (Ast.And, 0xF0F0l, 0x0FF0l, 0x00F0l);
    (Ast.Or, 0xF000l, 0x000Fl, 0xF00Fl);
    (Ast.Xor, -1l, 0x0F0Fl, 0xFFFFF0F0l);
    (Ast.Shl, 1l, 31l, 0x8000_0000l);
    (Ast.Shl, 1l, 32l, 1l);  (* amount masked mod 32 *)
    (Ast.Shr_s, 0x8000_0000l, 31l, -1l);
    (Ast.Shr_u, 0x8000_0000l, 31l, 1l);
    (Ast.Rotl, 0xABCD_9876l, 4l, 0xBCD9876Al);
    (Ast.Rotr, 0xABCD_9876l, 4l, 0x6ABCD987l);
    (Ast.Rotl, 1l, 32l, 1l);
  ] in
  List.iter
    (fun (op, a, b, expected) ->
      check32
        (Printf.sprintf "i32.%s %ld %ld" (Ast.string_of_int_binop op) a b)
        expected (run_i32 op a b))
    v

let test_i64_binop_vectors () =
  let v = [
    (Ast.Add, Int64.max_int, 1L, Int64.min_int);
    (Ast.Sub, Int64.min_int, 1L, Int64.max_int);
    (Ast.Mul, 0x0123_4567_89AB_CDEFL, 16L, Int64.mul 0x0123_4567_89AB_CDEFL 16L);
    (Ast.Div_s, -9L, 4L, -2L);
    (Ast.Div_u, -1L, 2L, Int64.max_int);
    (Ast.Rem_s, Int64.min_int, -1L, 0L);
    (Ast.Rem_u, -1L, 1000L, Int64.unsigned_rem (-1L) 1000L);
    (Ast.Shl, 1L, 63L, Int64.min_int);
    (Ast.Shl, 1L, 64L, 1L);
    (Ast.Shr_s, Int64.min_int, 63L, -1L);
    (Ast.Shr_u, Int64.min_int, 63L, 1L);
    (Ast.Rotl, 0x1L, 1L, 2L);
    (Ast.Rotr, 0x1L, 1L, Int64.min_int);
  ] in
  List.iter
    (fun (op, a, b, expected) ->
      check64
        (Printf.sprintf "i64.%s %Ld %Ld" (Ast.string_of_int_binop op) a b)
        expected (run_i64 op a b))
    v

let test_compare_vectors () =
  let t32 = [
    (Ast.Eq, 1l, 1l, 1l); (Ast.Eq, 1l, 2l, 0l);
    (Ast.Ne, 1l, 2l, 1l);
    (Ast.Lt_s, -1l, 0l, 1l); (Ast.Lt_u, -1l, 0l, 0l);
    (Ast.Gt_s, 0l, -1l, 1l); (Ast.Gt_u, 0l, -1l, 0l);
    (Ast.Le_s, Int32.min_int, Int32.max_int, 1l);
    (Ast.Le_u, Int32.min_int, Int32.max_int, 0l);
    (Ast.Ge_s, Int32.max_int, Int32.min_int, 1l);
    (Ast.Ge_u, Int32.max_int, Int32.min_int, 0l);
  ] in
  List.iter
    (fun (op, a, b, expected) ->
      check32
        (Printf.sprintf "i32.%s %ld %ld" (Ast.string_of_int_relop op) a b)
        expected (cmp_i32 op a b))
    t32;
  let t64 = [
    (Ast.Lt_u, -1L, 0L, 0l);
    (Ast.Lt_s, Int64.min_int, 0L, 1l);
    (Ast.Ge_u, -1L, Int64.max_int, 1l);
  ] in
  List.iter
    (fun (op, a, b, expected) ->
      check32
        (Printf.sprintf "i64.%s %Ld %Ld" (Ast.string_of_int_relop op) a b)
        expected (cmp_i64 op a b))
    t64

let test_count_vectors () =
  let u32 op a =
    Values.as_i32 (Interp.eval_int_unary Types.I32 op (Values.I32 a))
  in
  let u64 op a =
    Values.as_i64 (Interp.eval_int_unary Types.I64 op (Values.I64 a))
  in
  check32 "clz 0xFFFFFFFF" 0l (u32 Ast.Clz (-1l));
  check32 "clz 1" 31l (u32 Ast.Clz 1l);
  check32 "clz 0x8000" 16l (u32 Ast.Clz 0x8000l);
  check32 "ctz 0x8000_0000" 31l (u32 Ast.Ctz 0x8000_0000l);
  check32 "ctz 0x60" 5l (u32 Ast.Ctz 0x60l);
  check32 "popcnt 0xAAAA_AAAA" 16l (u32 Ast.Popcnt 0xAAAA_AAAAl);
  check64 "clz64 0xFF..." 0L (u64 Ast.Clz (-1L));
  check64 "ctz64 2^40" 40L (u64 Ast.Ctz (Int64.shift_left 1L 40));
  check64 "popcnt64 alternating" 32L (u64 Ast.Popcnt 0x5555_5555_5555_5555L)

let test_float_vectors () =
  let f32bin op a b =
    Values.as_f32 (Interp.eval_float_binary Types.F32 op (Values.F32 a) (Values.F32 b))
  in
  let f64un op a =
    Values.as_f64 (Interp.eval_float_unary Types.F64 op (Values.F64 a))
  in
  Alcotest.(check (float 0.0)) "f32 add rounds to single" 16777216.0
    (f32bin Ast.Fadd 16777216.0 1.0);
  Alcotest.(check (float 0.0)) "min(-0, 0) = -0 sign" neg_infinity
    (1.0 /. f32bin Ast.Fmin (-0.0) 0.0);
  Alcotest.(check (float 0.0)) "max(-0, 0) = 0 sign" infinity
    (1.0 /. f32bin Ast.Fmax (-0.0) 0.0);
  Alcotest.(check bool) "min with NaN" true
    (Float.is_nan (f32bin Ast.Fmin Float.nan 1.0));
  Alcotest.(check (float 0.0)) "copysign" (-5.0) (f32bin Ast.Fcopysign 5.0 (-1.0));
  Alcotest.(check (float 0.0)) "nearest 0.5 -> 0" 0.0 (f64un Ast.Fnearest 0.5);
  Alcotest.(check (float 0.0)) "nearest 1.5 -> 2" 2.0 (f64un Ast.Fnearest 1.5);
  Alcotest.(check (float 0.0)) "trunc -1.7 -> -1" (-1.0) (f64un Ast.Ftrunc (-1.7));
  Alcotest.(check (float 0.0)) "floor -1.2 -> -2" (-2.0) (f64un Ast.Ffloor (-1.2))

let test_conversion_vectors () =
  let conv op v = Interp.eval_convert op v in
  Alcotest.(check int32) "wrap" 0x9ABC_DEF0l
    (Values.as_i32 (conv Ast.I32_wrap_i64 (Values.I64 0x1234_5678_9ABC_DEF0L)));
  Alcotest.(check int64) "extend_s" (-1L)
    (Values.as_i64 (conv Ast.I64_extend_i32_s (Values.I32 (-1l))));
  Alcotest.(check int64) "extend_u" 0xFFFF_FFFFL
    (Values.as_i64 (conv Ast.I64_extend_i32_u (Values.I32 (-1l))));
  Alcotest.(check int32) "trunc_f64_s" (-3l)
    (Values.as_i32 (conv Ast.I32_trunc_f64_s (Values.F64 (-3.9))));
  Alcotest.(check int32) "trunc_f64_u max" (-1l)
    (Values.as_i32 (conv Ast.I32_trunc_f64_u (Values.F64 4294967295.0)));
  Alcotest.(check (float 0.0)) "convert_i32_u" 4294967295.0
    (Values.as_f64 (conv Ast.F64_convert_i32_u (Values.I32 (-1l))));
  Alcotest.(check int32) "reinterpret f32" 0x3F80_0000l
    (Values.as_i32 (conv Ast.I32_reinterpret_f32 (Values.F32 1.0)));
  Alcotest.(check (float 0.0)) "reinterpret back" 1.0
    (Values.as_f32 (conv Ast.F32_reinterpret_i32 (Values.I32 0x3F80_0000l)))

(* The SMT evaluator must agree with the interpreter on every integer
   binop for random operands: two independent implementations of the same
   semantics. *)
let qcheck_expr_agrees_with_interp =
  let ops =
    Ast.
      [
        (Add, Wasai_smt.Expr.Add); (Sub, Wasai_smt.Expr.Sub);
        (Mul, Wasai_smt.Expr.Mul); (And, Wasai_smt.Expr.And);
        (Or, Wasai_smt.Expr.Or); (Xor, Wasai_smt.Expr.Xor);
        (Shl, Wasai_smt.Expr.Shl); (Shr_s, Wasai_smt.Expr.Ashr);
        (Shr_u, Wasai_smt.Expr.Lshr); (Rotl, Wasai_smt.Expr.Rotl);
        (Rotr, Wasai_smt.Expr.Rotr); (Div_u, Wasai_smt.Expr.Udiv);
        (Rem_u, Wasai_smt.Expr.Urem); (Div_s, Wasai_smt.Expr.Sdiv);
        (Rem_s, Wasai_smt.Expr.Srem);
      ]
  in
  QCheck.Test.make ~name:"Expr.eval_binop = interpreter (i64)" ~count:500
    QCheck.(triple (int_bound (List.length ops - 1)) int int)
    (fun (opi, a, b) ->
      let wop, eop = List.nth ops opi in
      let a = Int64.of_int a and b = Int64.of_int b in
      let interp =
        match run_i64 wop a b with
        | v -> Some v
        | exception Values.Trap _ -> None
      in
      let expr = Wasai_smt.Expr.eval_binop 64 eop a b in
      match interp with
      | Some v -> v = expr
      | None ->
          (* Wasm traps on div/rem-by-zero and signed overflow; the
             expression semantics is total.  Those inputs only reach the
             solver when the concrete run did NOT trap, so a divergence
             here is fine — but only on the trapping inputs. *)
          b = 0L || (a = Int64.min_int && b = -1L))

let () =
  Alcotest.run "wasai_numeric_vectors"
    [
      ( "vectors",
        [
          Alcotest.test_case "i32 binops" `Quick test_i32_binop_vectors;
          Alcotest.test_case "i64 binops" `Quick test_i64_binop_vectors;
          Alcotest.test_case "comparisons" `Quick test_compare_vectors;
          Alcotest.test_case "clz/ctz/popcnt" `Quick test_count_vectors;
          Alcotest.test_case "floats" `Quick test_float_vectors;
          Alcotest.test_case "conversions" `Quick test_conversion_vectors;
          QCheck_alcotest.to_alcotest qcheck_expr_agrees_with_interp;
        ] );
    ]
