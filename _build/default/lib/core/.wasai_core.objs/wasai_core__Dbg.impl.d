lib/core/dbg.ml: Database Hashtbl Int64 List Name Set Wasai_eosio
