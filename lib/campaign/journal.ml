(** Crash-safe append-only journal of completed campaign targets.

    Four line formats share the file, all tab-separated with fixed field
    order:

    {v
    v1: wasai-journal-v1 <name> <flags> branches= rounds= seeds=
          adaptive= tx= sat= imprecise= elapsed=                (11 fields)
    v2: v1 + solver=q:N,b:N,u:N,h:N,m:N                         (12 fields)
    v3: wasai-journal-v3 <11 v1 fields> solver= shard=i/N seed=S
          budget=N exploits=<recs|->                            (16 fields)
    v4: v3 with magic wasai-journal-v4 and a sixth solver counter
          solver=q:N,b:N,u:N,h:N,m:N,fb:N                       (16 fields)
    v}

    where [<flags>] is [FakeEOS=0,FakeNotif=1,...] covering exactly
    {!Core.Scanner.legacy_flags} in order, followed by the fired subset
    of {!Core.Scanner.extension_flags} in canonical order (each as
    [Name=1]; quiet extension flags are omitted).  That split keeps every
    line written for a contract with no extension-class findings
    byte-identical to pre-extension builds, while new classes still
    round-trip strictly — an extension flag that is out of order,
    duplicated, unknown, or carries any verdict other than [1] rejects
    the line.  The v3 extension stamps each
    entry with its campaign provenance — the shard slice, the engine RNG
    root seed and the round budget — so a merge can validate that input
    journals came from one consistent fleet configuration, and persists
    the exploit payloads behind every positive verdict ([;]-separated
    [FLAG@channel@account@action@auth@hex] records, [-] when none) so a
    resumed or merged report replays evidence instead of only counting
    verdicts.  The v4 extension appends the engine's final adaptively
    retuned solver conflict budget as the [fb] counter of the [solver=]
    field (the field count stays 16, which is why the magic changes).

    Writers emit v4 whenever the entry carries a stamp (campaign runs
    always stamp) and legacy v2 otherwise; the parser accepts all four
    versions, reading absent counters as zero and absent stamps/exploits
    as none, so old journals still resume.  Parsing is otherwise strict:
    wrong magic, wrong field count, a [fb] counter on a v3 line or a
    missing one on a v4 line, unknown keys, out-of-order flags,
    duplicate exploit flags or unparseable numbers all reject the line
    (so a line torn by a crash is reported, not skipped). *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver

(** Campaign provenance of an entry: which shard produced it, under which
    engine configuration.  Merge validation keys on all three fields. *)
type stamp = {
  js_shard : Shard.t;
  js_seed : int64;  (** engine [cfg_rng_seed] *)
  js_rounds : int;  (** engine [cfg_rounds] budget *)
}

type entry = {
  je_name : string;
  je_flags : (Core.Scanner.flag * bool) list;
  je_branches : int;
  je_rounds : int;
  je_seeds_total : int;
  je_adaptive_seeds : int;
  je_transactions : int;
  je_solver_sat : int;
  je_imprecise : int;
  je_elapsed : float;
  je_solver : Solver.stats;
  je_final_budget : int;
      (** the engine's final adaptive solver budget (0 on pre-v4 lines) *)
  je_stamp : stamp option;
  je_exploits : (Core.Scanner.flag * Core.Scanner.evidence) list;
}

let magic_v1 = "wasai-journal-v1"
let magic_v3 = "wasai-journal-v3"
let magic_v4 = "wasai-journal-v4"
let magic_hdr = "wasai-journal-hdr"

(** File-level provenance, stamped once as the first line of a fresh
    journal: the execution backend the fleet ran under.  Verdicts are
    backend-invariant by contract, but a resume mixing tiers would make
    that contract unauditable — so, like the per-entry (seed, budget)
    stamp, the header makes the configuration explicit and lets resume
    refuse a mismatch.  Entry lines are unchanged: a v4 line is
    byte-identical whichever backend produced it.

    [jh_telemetry] records whether the campaign ran with span profiling
    enabled.  Telemetry cannot change a verdict (that is its whole
    contract), but a resume silently flipping it would skew the
    per-stage breakdown the final report prints — so resumes must agree.
    The stamp is strictly additive: with telemetry off the header line
    is byte-identical to the two-field form every earlier build wrote,
    and the parser accepts both forms. *)
type header = {
  jh_backend : Wasai_core.Exec_backend.choice;
  jh_telemetry : bool;
}

let line_of_header (h : header) =
  Printf.sprintf "%s\tbackend=%s%s" magic_hdr
    (Core.Exec_backend.to_string h.jh_backend)
    (if h.jh_telemetry then "\ttelemetry=on" else "")

let of_outcome ~name ~elapsed ?stamp (o : Core.Engine.outcome) =
  {
    je_name = name;
    (* Normalise to the canonical flag order so journal lines and report
       text never depend on scanner-internal ordering. *)
    je_flags =
      List.map
        (fun f ->
          (f, match List.assoc_opt f o.Core.Engine.out_flags with
              | Some b -> b
              | None -> false))
        Core.Scanner.all_flags;
    je_branches = o.Core.Engine.out_branches;
    je_rounds = o.Core.Engine.out_rounds;
    je_seeds_total = o.Core.Engine.out_seeds_total;
    je_adaptive_seeds = o.Core.Engine.out_adaptive_seeds;
    je_transactions = o.Core.Engine.out_transactions;
    je_solver_sat = o.Core.Engine.out_solver_sat;
    je_imprecise = o.Core.Engine.out_imprecise;
    je_elapsed = elapsed;
    je_solver = o.Core.Engine.out_solver;
    je_final_budget = o.Core.Engine.out_final_budget;
    je_stamp = stamp;
    je_exploits =
      (* Keep the canonical flag order here too. *)
      List.filter_map
        (fun f ->
          Option.map (fun e -> (f, e))
            (List.assoc_opt f o.Core.Engine.out_exploits))
        Core.Scanner.all_flags;
  }

let exploits_field (exploits : (Core.Scanner.flag * Core.Scanner.evidence) list)
    =
  match exploits with
  | [] -> "-"
  | _ ->
      String.concat ";"
        (List.map
           (fun (f, e) ->
             Core.Scanner.string_of_flag f ^ "@"
             ^ Core.Scanner.evidence_to_wire e)
           exploits)

let line_of_entry (e : entry) =
  let flags =
    (* Legacy flags are always written in their fixed order; extension
       flags appear only when fired.  Lookups go through the canonical
       flag lists (not [je_flags] order) so the field never depends on
       how the entry was built. *)
    let value f =
      match List.assoc_opt f e.je_flags with Some b -> b | None -> false
    in
    let legacy =
      List.map
        (fun f ->
          Printf.sprintf "%s=%d" (Core.Scanner.string_of_flag f)
            (if value f then 1 else 0))
        Core.Scanner.legacy_flags
    in
    let fired_ext =
      List.filter_map
        (fun f ->
          if value f then Some (Core.Scanner.string_of_flag f ^ "=1") else None)
        Core.Scanner.extension_flags
    in
    String.concat "," (legacy @ fired_ext)
  in
  let common ~with_budget =
    [
      e.je_name; flags;
      Printf.sprintf "branches=%d" e.je_branches;
      Printf.sprintf "rounds=%d" e.je_rounds;
      Printf.sprintf "seeds=%d" e.je_seeds_total;
      Printf.sprintf "adaptive=%d" e.je_adaptive_seeds;
      Printf.sprintf "tx=%d" e.je_transactions;
      Printf.sprintf "sat=%d" e.je_solver_sat;
      Printf.sprintf "imprecise=%d" e.je_imprecise;
      Printf.sprintf "elapsed=%.6f" e.je_elapsed;
      Printf.sprintf "solver=q:%d,b:%d,u:%d,h:%d,m:%d%s"
        e.je_solver.Solver.st_quick e.je_solver.Solver.st_blasted
        e.je_solver.Solver.st_unknown e.je_solver.Solver.st_cache_hits
        e.je_solver.Solver.st_cache_misses
        (if with_budget then Printf.sprintf ",fb:%d" e.je_final_budget else "");
    ]
  in
  match e.je_stamp with
  | None ->
      (* Unstamped entries (hand-built, or parsed from an old journal)
         keep the legacy v2 shape; exploits and the final-budget counter
         need a stamped v4 line. *)
      String.concat "\t" (magic_v1 :: common ~with_budget:false)
  | Some st ->
      String.concat "\t"
        ((magic_v4 :: common ~with_budget:true)
        @ [
            Printf.sprintf "shard=%s" (Shard.to_string st.js_shard);
            Printf.sprintf "seed=%Ld" st.js_seed;
            Printf.sprintf "budget=%d" st.js_rounds;
            "exploits=" ^ exploits_field e.je_exploits;
          ])

(* ------------------------------------------------------------------ *)
(* Strict parsing                                                      *)
(* ------------------------------------------------------------------ *)

let keyed key conv field =
  match String.index_opt field '=' with
  | Some i when String.sub field 0 i = key -> (
      let v = String.sub field (i + 1) (String.length field - i - 1) in
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S: bad value %S" key v))
  | _ -> Error (Printf.sprintf "expected field %S, got %S" key field)

let header_of_line (line : string) : (header, string) result =
  let backend_of field k =
    match keyed "backend" Option.some field with
    | Error e -> Error e
    | Ok v -> (
        match Core.Exec_backend.of_string v with
        | Ok b -> k b
        | Error e -> Error e)
  in
  match String.split_on_char '\t' line with
  | [ m; backend ] when m = magic_hdr ->
      backend_of backend (fun jh_backend ->
          Ok { jh_backend; jh_telemetry = false })
  | [ m; backend; telemetry ] when m = magic_hdr ->
      backend_of backend (fun jh_backend ->
          match keyed "telemetry" Option.some telemetry with
          | Error e -> Error e
          | Ok "on" -> Ok { jh_backend; jh_telemetry = true }
          | Ok v -> Error (Printf.sprintf "field \"telemetry\": bad value %S" v))
  | m :: _ when m = magic_hdr ->
      Error "header line: expected 2 or 3 tab-separated fields"
  | _ -> Error (Printf.sprintf "bad magic %S" magic_hdr)

let parse_flags (field : string) =
  let ( let* ) = Result.bind in
  let parts = String.split_on_char ',' field in
  let legacy = Core.Scanner.legacy_flags in
  if List.length parts < List.length legacy then
    Error
      (Printf.sprintf "flag field %S: expected at least %d flags" field
         (List.length legacy))
  else
    (* The first five parts are the legacy flags, fixed order, 0 or 1. *)
    let rec take_legacy acc parts flags =
      match (parts, flags) with
      | parts, [] -> Ok (List.rev acc, parts)
      | p :: parts, f :: flags -> (
          let name = Core.Scanner.string_of_flag f in
          match keyed name int_of_string_opt p with
          | Ok 0 -> take_legacy ((f, false) :: acc) parts flags
          | Ok 1 -> take_legacy ((f, true) :: acc) parts flags
          | Ok n -> Error (Printf.sprintf "flag %s: bad verdict %d" name n)
          | Error e -> Error e)
      | [], _ :: _ -> assert false (* length checked above *)
    in
    let* legacy_verdicts, rest = take_legacy [] parts legacy in
    (* The remaining parts must be a subsequence of the extension flags
       in canonical order, each fired ([Name=1]): writers omit quiet
       extension flags, so an explicit [=0], a duplicate, an unknown
       name or an out-of-order flag is a corrupt line. *)
    let rec take_ext fired parts flags =
      match parts with
      | [] -> Ok fired
      | p :: parts' -> (
          match flags with
          | [] ->
              Error
                (Printf.sprintf
                   "flag field %S: unknown, duplicate or out-of-order flag %S"
                   field p)
          | f :: flags' -> (
              let name = Core.Scanner.string_of_flag f in
              match keyed name int_of_string_opt p with
              | Ok 1 -> take_ext (f :: fired) parts' flags'
              | Ok n ->
                  Error
                    (Printf.sprintf
                       "flag %s: bad verdict %d (extension flags are only \
                        journaled when fired)"
                       name n)
              | Error _ ->
                  (* Not this canonical flag; try the next one. *)
                  take_ext fired parts flags'))
    in
    let* fired_ext = take_ext [] rest Core.Scanner.extension_flags in
    Ok
      (legacy_verdicts
      @ List.map
          (fun f -> (f, List.mem f fired_ext))
          Core.Scanner.extension_flags)

(* The v2 solver extension: [solver=q:N,b:N,u:N,h:N,m:N], parsed as
   strictly as every other field — fixed counter order, no unknown keys.
   v4 lines append a sixth [fb:N] counter (the final adaptive budget);
   [with_budget] selects which shape is the only accepted one. *)
let parse_solver ~with_budget (field : string) :
    (Solver.stats * int, string) result =
  let ( let* ) = Result.bind in
  let* v = keyed "solver" Option.some field in
  let counter key part =
    match String.index_opt part ':' with
    | Some i when String.sub part 0 i = key ->
        int_of_string_opt (String.sub part (i + 1) (String.length part - i - 1))
    | _ -> None
  in
  let stats q b u h m =
    match
      (counter "q" q, counter "b" b, counter "u" u, counter "h" h,
       counter "m" m)
    with
    | ( Some st_quick, Some st_blasted, Some st_unknown, Some st_cache_hits,
        Some st_cache_misses ) ->
        Ok
          {
            Solver.st_quick; st_blasted; st_unknown; st_cache_hits;
            st_cache_misses;
          }
    | _ -> Error (Printf.sprintf "solver field %S: bad counters" v)
  in
  match (String.split_on_char ',' v, with_budget) with
  | [ q; b; u; h; m ], false ->
      let* st = stats q b u h m in
      Ok (st, 0)
  | [ q; b; u; h; m; fb ], true -> (
      let* st = stats q b u h m in
      match counter "fb" fb with
      | Some budget -> Ok (st, budget)
      | None -> Error (Printf.sprintf "solver field %S: bad fb counter" v))
  | parts, _ ->
      Error
        (Printf.sprintf "solver field %S: expected %d counters, got %d" v
           (if with_budget then 6 else 5)
           (List.length parts))

(* The v3 provenance stamp, three consecutive fields. *)
let parse_stamp shard seed budget : (stamp, string) result =
  let ( let* ) = Result.bind in
  let* js_shard =
    let* s = keyed "shard" Option.some shard in
    Shard.of_string s
  in
  let* js_seed = keyed "seed" Int64.of_string_opt seed in
  let* js_rounds = keyed "budget" int_of_string_opt budget in
  Ok { js_shard; js_seed; js_rounds }

(* The v3 exploit list: [-] for none, else [;]-separated
   [FLAG@<evidence wire>] records with distinct flags. *)
let parse_exploits (field : string) :
    ((Core.Scanner.flag * Core.Scanner.evidence) list, string) result =
  let ( let* ) = Result.bind in
  let* v = keyed "exploits" Option.some field in
  if v = "-" then Ok []
  else
    let parse_one rec_ =
      match String.index_opt rec_ '@' with
      | None -> Error (Printf.sprintf "exploit %S: missing flag" rec_)
      | Some i -> (
          let flag_s = String.sub rec_ 0 i in
          let rest = String.sub rec_ (i + 1) (String.length rec_ - i - 1) in
          match Core.Scanner.flag_of_string flag_s with
          | None -> Error (Printf.sprintf "exploit %S: unknown flag" rec_)
          | Some f ->
              Result.map (fun e -> (f, e)) (Core.Scanner.evidence_of_wire rest))
    in
    let* exploits =
      List.fold_left
        (fun acc rec_ ->
          let* acc = acc in
          let* x = parse_one rec_ in
          Ok (x :: acc))
        (Ok [])
        (String.split_on_char ';' v)
      |> Result.map List.rev
    in
    let flags = List.map fst exploits in
    if List.length (List.sort_uniq compare flags) <> List.length flags then
      Error (Printf.sprintf "exploits field %S: duplicate flag" v)
    else Ok exploits

let entry_of_line (line : string) : (entry, string) result =
  let ( let* ) = Result.bind in
  let parse ~expect_magic ~with_budget m name flags branches rounds seeds
      adaptive tx sat imprecise elapsed solver stamp exploits =
    if m <> expect_magic then Error (Printf.sprintf "bad magic %S" m)
    else if name = "" then Error "empty target name"
    else
      let* je_flags = parse_flags flags in
      let* je_branches = keyed "branches" int_of_string_opt branches in
      let* je_rounds = keyed "rounds" int_of_string_opt rounds in
      let* je_seeds_total = keyed "seeds" int_of_string_opt seeds in
      let* je_adaptive_seeds = keyed "adaptive" int_of_string_opt adaptive in
      let* je_transactions = keyed "tx" int_of_string_opt tx in
      let* je_solver_sat = keyed "sat" int_of_string_opt sat in
      let* je_imprecise = keyed "imprecise" int_of_string_opt imprecise in
      let* je_elapsed = keyed "elapsed" float_of_string_opt elapsed in
      let* je_solver, je_final_budget =
        match solver with
        (* v1 line: the run predates solver accounting — counters zero. *)
        | None -> Ok (Solver.stats_zero, 0)
        | Some s -> parse_solver ~with_budget s
      in
      let* je_stamp =
        match stamp with
        | None -> Ok None
        | Some (shard, seed, budget) ->
            Result.map Option.some (parse_stamp shard seed budget)
      in
      let* je_exploits =
        match exploits with None -> Ok [] | Some e -> parse_exploits e
      in
      Ok
        {
          je_name = name; je_flags; je_branches; je_rounds; je_seeds_total;
          je_adaptive_seeds; je_transactions; je_solver_sat; je_imprecise;
          je_elapsed; je_solver; je_final_budget; je_stamp; je_exploits;
        }
  in
  match String.split_on_char '\t' line with
  | [ m; name; flags; branches; rounds; seeds; adaptive; tx; sat; imprecise;
      elapsed ] ->
      parse ~expect_magic:magic_v1 ~with_budget:false m name flags branches
        rounds seeds adaptive tx sat imprecise elapsed None None None
  | [ m; name; flags; branches; rounds; seeds; adaptive; tx; sat; imprecise;
      elapsed; solver ] ->
      parse ~expect_magic:magic_v1 ~with_budget:false m name flags branches
        rounds seeds adaptive tx sat imprecise elapsed (Some solver) None None
  | [ m; name; flags; branches; rounds; seeds; adaptive; tx; sat; imprecise;
      elapsed; solver; shard; seed; budget; exploits ] ->
      (* 16 fields is v3 or v4; the magic picks the solver-field shape
         (5 counters vs 6), and [parse] still insists the magic matches
         the shape that was picked. *)
      let expect_magic, with_budget =
        if m = magic_v4 then (magic_v4, true) else (magic_v3, false)
      in
      parse ~expect_magic ~with_budget m name flags branches rounds seeds
        adaptive tx sat imprecise elapsed (Some solver)
        (Some (shard, seed, budget))
        (Some exploits)
  | fields ->
      Error
        (Printf.sprintf "expected 11, 12 or 16 tab-separated fields, got %d"
           (List.length fields))

exception Malformed of string

let load_with_header path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let bad line_no reason =
        raise
          (Malformed
             (Printf.sprintf
                "%s:%d: malformed journal line (%s); refusing to resume from \
                 a corrupt journal"
                path line_no reason))
      in
      let rec go acc line_no =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line when String.length line >= String.length magic_hdr
                    && String.sub line 0 (String.length magic_hdr) = magic_hdr
          ->
            (* The header is only valid as line 1, where it was consumed
               below; anywhere else it is a torn or spliced file. *)
            bad line_no "header line after line 1"
        | line -> (
            match entry_of_line line with
            | Ok e -> go (e :: acc) (line_no + 1)
            | Error reason -> bad line_no reason)
      in
      match input_line ic with
      | exception End_of_file -> (None, [])
      | first
        when String.length first >= String.length magic_hdr
             && String.sub first 0 (String.length magic_hdr) = magic_hdr -> (
          match header_of_line first with
          | Ok h -> (Some h, go [] 2)
          | Error reason -> bad 1 reason)
      | first -> (
          match entry_of_line first with
          | Ok e -> (None, go [ e ] 2)
          | Error reason -> bad 1 reason))

let load path = snd (load_with_header path)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = { oc : out_channel; wlock : Mutex.t }

let open_writer ?header path =
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  (* A crash right after creating the journal must not lose the file
     itself: the fsync-per-line discipline below only covers contents,
     not the new directory entry. *)
  if fresh then Wasai_support.Fsutil.fsync_dir (Filename.dirname path);
  (* The header goes on fresh files only: appending one mid-file would
     corrupt an existing journal, and resume validates the existing
     header against the run's configuration before reaching here. *)
  (match header with
  | Some h when fresh ->
      output_string oc (line_of_header h);
      output_char oc '\n';
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc)
  | _ -> ());
  { oc; wlock = Mutex.create () }

let append w e =
  Mutex.protect w.wlock (fun () ->
      let t0 = Wasai_telemetry.Telemetry.start () in
      output_string w.oc (line_of_entry e);
      output_char w.oc '\n';
      flush w.oc;
      (* The line must reach disk before the target counts as done:
         a resume must never skip work whose result a crash threw away. *)
      Unix.fsync (Unix.descr_of_out_channel w.oc);
      Wasai_telemetry.Telemetry.stop Wasai_telemetry.Telemetry.Journal_fsync t0)

let close_writer w = Mutex.protect w.wlock (fun () -> close_out_noerr w.oc)
