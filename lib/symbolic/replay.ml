(** Symbolic trace replay: lift the runtime trace to symbolic machine
    states following the operational semantics of the paper's Table 3.

    Replay starts at the action function (challenge C3): records before
    the target's [function_begin] are skipped, and the target's Local
    section is initialised from the {!Convention} layout.  Loads and
    stores use concrete addresses from the trace (challenge C2).  Each
    executed conditional state (br_if / if / br_table / eosio_assert) is
    recorded with its as-taken symbolic condition, forming the path
    condition that {!Flip} negates branch by branch. *)

module Wasm = Wasai_wasm
module Ast = Wasm.Ast
module Types = Wasm.Types
module Values = Wasm.Values
module Expr = Wasai_smt.Expr
module Trace = Wasai_wasabi.Trace

type cond_kind = K_branch | K_assert | K_brtable

type cond_state = {
  cs_site : int;  (** instruction site, or -1 for asserts *)
  cs_cond : Expr.t;  (** width-1 condition as taken on this path *)
  cs_taken : bool;
  cs_kind : cond_kind;
}

type frame = {
  mutable stack : Expr.t list;
  locals : (int, Expr.t) Hashtbl.t;
  fr_func : int;
}


type pending_call = {
  pc_site : int;
  pc_sym_args : Expr.t list;
  pc_concrete_args : Values.value list;
  pc_import : string option;  (** Some name when the callee is an import *)
}

type t = {
  meta : Trace.meta;
  mem : Memmodel.t;
  globals : (int, Expr.t) Hashtbl.t;
  mutable frames : frame list;  (** head = executing function *)
  mutable returns : Expr.t list list;  (** μ_r *)
  mutable path : cond_state list;  (** reversed *)
  mutable pending : pending_call option;

  mutable started : bool;
  mutable finished : bool;
  target_funcs : int list;
  layout : Convention.layout option;
  entry_arity : int option;  (** expected argument count of the target *)
  mutable last_pre_args : Values.value list;
      (** most recent call_pre arguments seen before the target starts *)
  mutable imprecise : int;  (** stack-underflow fallbacks *)
}

type result = {
  r_path : cond_state list;  (** in execution order *)
  r_layout : Convention.layout option;
  r_mem : Memmodel.t;
  r_imprecise : int;
}

let width_of_numtype = function
  | Types.I32 | Types.F32 -> 32
  | Types.I64 | Types.F64 -> 64

let create ?(layout : Convention.layout option) ?entry_arity
    ~(meta : Trace.meta) ~(target_funcs : int list) () : t =
  {
    meta;
    mem = Memmodel.create ();
    globals = Hashtbl.create 8;
    frames = [];
    returns = [];
    path = [];
    pending = None;

    started = false;
    finished = false;
    target_funcs;
    layout;
    entry_arity;
    last_pre_args = [];
    imprecise = 0;
  }

let current_frame t =
  match t.frames with
  | f :: _ -> f
  | [] ->
      (* Should not happen in a well-formed trace; create a scratch frame. *)
      let f = { stack = []; locals = Hashtbl.create 8; fr_func = -1 } in
      t.frames <- [ f ];
      f

let push t e = (current_frame t).stack <- e :: (current_frame t).stack

let pop t : Expr.t =
  let f = current_frame t in
  match f.stack with
  | e :: rest ->
      f.stack <- rest;
      e
  | [] ->
      t.imprecise <- t.imprecise + 1;
      Expr.var (Expr.fresh_var ~name:"underflow" 64)

let pop_n t n = List.rev (List.init n (fun _ -> pop t))

let local_get t n =
  let f = current_frame t in
  match Hashtbl.find_opt f.locals n with
  | Some e -> e
  | None ->
      let v = Expr.var (Expr.fresh_var ~name:(Printf.sprintf "local%d" n) 64) in
      Hashtbl.replace f.locals n v;
      v

let local_set t n e = Hashtbl.replace (current_frame t).locals n e

let global_get t n =
  match Hashtbl.find_opt t.globals n with
  | Some e -> e
  | None ->
      (* Initialise from the module's constant initialiser. *)
      let m = t.meta.Trace.instrumented in
      let e =
        if n < Array.length m.Ast.globals then
          match m.Ast.globals.(n).Ast.ginit with
          | [ Ast.Const v ] ->
              Expr.const
                (width_of_numtype (Values.type_of v))
                (Values.raw_bits v)
          | _ -> Expr.var (Expr.fresh_var ~name:(Printf.sprintf "global%d" n) 64)
        else Expr.var (Expr.fresh_var ~name:(Printf.sprintf "global%d" n) 64)
      in
      Hashtbl.replace t.globals n e;
      e

let record_cond t cs = t.path <- cs :: t.path

(* Width-1 condition "this i32 is non-zero". *)
let nonzero e = Expr.not_ (Expr.cmp Expr.Eq e (Expr.const (Expr.width_of e) 0L))

(* ------------------------------------------------------------------ *)
(* Numeric op translation                                               *)
(* ------------------------------------------------------------------ *)

let translate_int_binop : Ast.int_binop -> Expr.binop = function
  | Ast.Add -> Expr.Add
  | Ast.Sub -> Expr.Sub
  | Ast.Mul -> Expr.Mul
  | Ast.Div_s -> Expr.Sdiv
  | Ast.Div_u -> Expr.Udiv
  | Ast.Rem_s -> Expr.Srem
  | Ast.Rem_u -> Expr.Urem
  | Ast.And -> Expr.And
  | Ast.Or -> Expr.Or
  | Ast.Xor -> Expr.Xor
  | Ast.Shl -> Expr.Shl
  | Ast.Shr_s -> Expr.Ashr
  | Ast.Shr_u -> Expr.Lshr
  | Ast.Rotl -> Expr.Rotl
  | Ast.Rotr -> Expr.Rotr

let translate_int_relop (op : Ast.int_relop) (a : Expr.t) (b : Expr.t) : Expr.t
    =
  match op with
  | Ast.Eq -> Expr.cmp Expr.Eq a b
  | Ast.Ne -> Expr.not_ (Expr.cmp Expr.Eq a b)
  | Ast.Lt_s -> Expr.cmp Expr.Slt a b
  | Ast.Lt_u -> Expr.cmp Expr.Ult a b
  | Ast.Gt_s -> Expr.cmp Expr.Slt b a
  | Ast.Gt_u -> Expr.cmp Expr.Ult b a
  | Ast.Le_s -> Expr.cmp Expr.Sle a b
  | Ast.Le_u -> Expr.cmp Expr.Ule a b
  | Ast.Ge_s -> Expr.cmp Expr.Sle b a
  | Ast.Ge_u -> Expr.cmp Expr.Ule b a

(* Force an expression to an exact width (stack discipline repair for
   imprecise fallbacks). *)
let coerce w e =
  let we = Expr.width_of e in
  if we = w then e else if we > w then Expr.extract (w - 1) 0 e else Expr.zext w e

(* Concrete float computation when every operand is constant; floats stay
   concrete through replay (the BV solver does not model FP). *)
let float_result width =
  Expr.var (Expr.fresh_var ~name:"float" width)

(* ------------------------------------------------------------------ *)
(* Per-record stepping                                                  *)
(* ------------------------------------------------------------------ *)

let concrete_of_value (v : Values.value) : Expr.t =
  Expr.const (width_of_numtype (Values.type_of v)) (Values.raw_bits v)

let import_name_of_callee (t : t) (instr : Ast.instr) : string option =
  match instr with
  | Ast.Call fi -> (
      let m = t.meta.Trace.instrumented in
      let n_imp = Ast.num_func_imports m in
      if fi < n_imp then
        match (List.nth (Ast.func_imports m) fi).Ast.idesc with
        | Ast.Func_import _ ->
            Some (List.nth (Ast.func_imports m) fi).Ast.imp_name
        | _ -> None
      else None)
  | _ -> None

let callee_arity (t : t) (instr : Ast.instr) : int * int =
  let m = t.meta.Trace.instrumented in
  match instr with
  | Ast.Call fi ->
      let ft = Ast.func_type_at m fi in
      (List.length ft.Types.params, List.length ft.Types.results)
  | Ast.Call_indirect ti ->
      let ft = m.Ast.types.(ti) in
      (List.length ft.Types.params, List.length ft.Types.results)
  | _ -> (0, 0)

module B = Trace.Buffer
module Cur = Trace.Cursor

(* Step one executed instruction event.  Operand-consuming cases read
   the buffer's operand pool directly through the cursor accessors —
   the patterns mirror the historical [Values.value list] matches
   exactly ([op_count] = the list length, tags = the constructors). *)
let step_instr (t : t) (cur : Cur.t) =
  let site = Cur.label cur in
  let instr = (Trace.site_of t.meta site).Trace.site_instr in
  match instr with
  | Ast.Const v -> push t (concrete_of_value v)
  | Ast.Local_get n -> push t (local_get t n)
  | Ast.Local_set n -> local_set t n (pop t)
  | Ast.Local_tee n ->
      let e = pop t in
      local_set t n e;
      push t e
  | Ast.Global_get n -> push t (global_get t n)
  | Ast.Global_set n -> Hashtbl.replace t.globals n (pop t)
  | Ast.Drop -> ignore (pop t)
  | Ast.Select ->
      let c = pop t in
      let v2 = pop t in
      let v1 = pop t in
      push t (Expr.ite (nonzero c) v1 v2)
  | Ast.Int_binary (ty, op) ->
      let w = width_of_numtype ty in
      let b = coerce w (pop t) and a = coerce w (pop t) in
      push t (Expr.binop (translate_int_binop op) a b)
  | Ast.Int_compare (ty, op) ->
      let w = width_of_numtype ty in
      let b = coerce w (pop t) and a = coerce w (pop t) in
      push t (Expr.zext 32 (translate_int_relop op a b))
  | Ast.Int_unary (ty, op) ->
      let w = width_of_numtype ty in
      let a = coerce w (pop t) in
      let op' =
        match op with
        | Ast.Clz -> Expr.Clz
        | Ast.Ctz -> Expr.Ctz
        | Ast.Popcnt -> Expr.Popcnt
      in
      push t (Expr.unop op' a)
  | Ast.Eqz ty ->
      let w = width_of_numtype ty in
      let a = coerce w (pop t) in
      push t (Expr.zext 32 (Expr.cmp Expr.Eq a (Expr.const w 0L)))
  | Ast.Float_binary (ty, _) | Ast.Float_compare (ty, _) ->
      let _ = pop t and _ = pop t in
      let w = match instr with Ast.Float_compare _ -> 32 | _ -> width_of_numtype ty in
      push t (float_result w)
  | Ast.Float_unary (ty, _) ->
      let _ = pop t in
      push t (float_result (width_of_numtype ty))
  | Ast.Convert op -> (
      let a = pop t in
      let open Ast in
      match op with
      | I32_wrap_i64 -> push t (Expr.extract 31 0 (coerce 64 a))
      | I64_extend_i32_s -> push t (Expr.sext 64 (coerce 32 a))
      | I64_extend_i32_u -> push t (Expr.zext 64 (coerce 32 a))
      | I32_reinterpret_f32 | F32_reinterpret_i32 -> push t (coerce 32 a)
      | I64_reinterpret_f64 | F64_reinterpret_i64 -> push t (coerce 64 a)
      | I32_trunc_f32_s | I32_trunc_f32_u | I32_trunc_f64_s | I32_trunc_f64_u ->
          push t (float_result 32)
      | I64_trunc_f32_s | I64_trunc_f32_u | I64_trunc_f64_s | I64_trunc_f64_u ->
          push t (float_result 64)
      | F32_convert_i32_s | F32_convert_i32_u | F32_convert_i64_s
      | F32_convert_i64_u | F32_demote_f64 ->
          push t (float_result 32)
      | F64_convert_i32_s | F64_convert_i32_u | F64_convert_i64_s
      | F64_convert_i64_u | F64_promote_f32 ->
          push t (float_result 64))
  | Ast.Load lop ->
      ignore (pop t) (* symbolic address expression; addresses are concrete *);
      if Cur.op_count cur = 1 then begin
        let ea = Int64.to_int (Cur.op_bits cur 0) + Int32.to_int lop.Ast.l_offset in
        let bytes = Wasm.Memory.loadop_width lop in
        let raw = Memmodel.load t.mem ~addr:ea ~width_bytes:bytes in
        let target_w = width_of_numtype lop.Ast.l_ty in
        let extended =
          match lop.Ast.l_pack with
          | Some (_, Ast.SX) -> Expr.sext target_w raw
          | Some (_, Ast.ZX) | None -> Expr.zext target_w raw
        in
        push t extended
      end
      else begin
        t.imprecise <- t.imprecise + 1;
        push t (Expr.var (Expr.fresh_var ~name:"load?" (width_of_numtype lop.Ast.l_ty)))
      end
  | Ast.Store sop ->
      let value = pop t in
      ignore (pop t);
      if Cur.op_count cur = 2 then begin
        let ea = Int64.to_int (Cur.op_bits cur 0) + Int32.to_int sop.Ast.s_offset in
        let bytes = Wasm.Memory.storeop_width sop in
        let value = coerce (width_of_numtype sop.Ast.s_ty) value in
        let truncated =
          if bytes * 8 < Expr.width_of value then
            Expr.extract ((bytes * 8) - 1) 0 value
          else value
        in
        Memmodel.store t.mem ~addr:ea ~width_bytes:bytes truncated
      end
      else t.imprecise <- t.imprecise + 1
  | Ast.If _ | Ast.Br_if _ ->
      let cond = coerce 32 (pop t) in
      if Cur.op_count cur = 1 && Cur.op_is_i32 cur 0 then begin
        let c = Cur.op_i32 cur 0 in
        let taken = c <> 0l in
        let as_taken = if taken then nonzero cond else Expr.not_ (nonzero cond) in
        record_cond t
          { cs_site = site; cs_cond = as_taken; cs_taken = taken; cs_kind = K_branch }
      end
  | Ast.Br_table _ ->
      let idx = coerce 32 (pop t) in
      if Cur.op_count cur = 1 && Cur.op_is_i32 cur 0 then
        record_cond t
          {
            cs_site = site;
            cs_cond =
              Expr.cmp Expr.Eq idx (Expr.const 32 (Int64.of_int32 (Cur.op_i32 cur 0)));
            cs_taken = true;
            cs_kind = K_brtable;
          }
  | Ast.Memory_size -> push t (Expr.const 32 4096L)
  | Ast.Memory_grow ->
      ignore (pop t);
      push t (Expr.const 32 4096L)
  | Ast.Call_indirect _ ->
      (* The table-index operand; argument handling happens at call_pre. *)
      ignore (pop t)
  | Ast.Call _ | Ast.Block _ | Ast.Loop _ | Ast.Br _ | Ast.Return | Ast.Nop
  | Ast.Unreachable ->
      ()

(* Default host model: results become constants from the trace.  The
   assert API contributes a path constraint instead (paper §3.4.4). *)
let host_call (t : t) (name : string) (sym_args : Expr.t list)
    (concrete_results : Values.value list) =
  (match (name, sym_args) with
   | "eosio_assert", cond :: _ ->
       let c = coerce 32 cond in
       if Expr.has_any_var c then
         record_cond t
           { cs_site = -1; cs_cond = nonzero c; cs_taken = true; cs_kind = K_assert }
   | _ -> ());
  List.iter (fun v -> push t (concrete_of_value v)) concrete_results

let step (t : t) (cur : Cur.t) =
  if not t.finished then
    match Cur.kind cur with
    | B.K_func_begin ->
        let f = Cur.label cur in
        if t.started then begin
          let locals = Hashtbl.create 8 in
          (match t.pending with
           | Some pc ->
               List.iteri (fun i e -> Hashtbl.replace locals i e) pc.pc_sym_args;
               t.pending <- None
           | None -> ());
          t.frames <- { stack = []; locals; fr_func = f } :: t.frames
        end
        else if
          List.mem f t.target_funcs
          &&
          (* The entry must match the layout's arity: obfuscation helpers
             and sibling actions in the candidate set are skipped. *)
          (* The dispatcher may pad extra arguments (one shared action
             signature), so at-least is the right test. *)
          match (t.layout, t.entry_arity) with
          | Some _, Some expected -> List.length t.last_pre_args >= expected
          | _ -> true
        then begin
          t.started <- true;
          let locals = Hashtbl.create 8 in
          (match t.layout with
           | Some lay ->
               List.iter (fun (i, e) -> Hashtbl.replace locals i e) lay.Convention.lay_locals
           | None -> ());
          t.frames <- [ { stack = []; locals; fr_func = f } ]
        end
    | B.K_func_end ->
        if t.started then begin
          match t.frames with
          | [ _last ] -> t.finished <- true  (* target function returned *)
          | f :: rest ->
              t.returns <- f.stack :: t.returns;
              t.frames <- rest
          | [] -> t.finished <- true
        end
    | B.K_instr -> if t.started then step_instr t cur
    | B.K_call_pre ->
        let site = Cur.label cur in
        let args = Cur.ops cur in
        t.last_pre_args <- args;
        if t.started then begin
          let instr = (Trace.site_of t.meta site).Trace.site_instr in
          let n_args, _ = callee_arity t instr in
          let sym_args =
            if n_args <= List.length (current_frame t).stack then pop_n t n_args
            else begin
              (* Fall back to the concrete argument values. *)
              t.imprecise <- t.imprecise + 1;
              (current_frame t).stack <- [];
              List.map concrete_of_value args
            end
          in
          t.pending <-
            Some
              {
                pc_site = site;
                pc_sym_args = sym_args;
                pc_concrete_args = args;
                pc_import = import_name_of_callee t instr;
              }
        end
    | B.K_call_post ->
        if t.started then begin
          let results = Cur.ops cur in
          match t.pending with
          | Some pc ->
              (* No function_begin in between: host function. *)
              t.pending <- None;
              let name = match pc.pc_import with Some n -> n | None -> "?" in
              host_call t name pc.pc_sym_args results
          | None -> (
              (* Wasm callee: pull returns from μ_r. *)
              match t.returns with
              | rts :: rest ->
                  t.returns <- rest;
                  let needed = List.length results in
                  let available = List.length rts in
                  if available >= needed then
                    List.iter (fun e -> push t e)
                      (List.rev (List.filteri (fun i _ -> i < needed) rts))
                  else List.iter (fun v -> push t (concrete_of_value v)) results
              | [] -> List.iter (fun v -> push t (concrete_of_value v)) results)
        end

(** Replay a full trace; [layout] provides the symbolic inputs of the
    target action function. *)
let run ?layout ~(meta : Trace.meta) ~(target_funcs : int list)
    (buf : B.t) : result =
  let entry_arity =
    Option.map
      (fun (lay : Convention.layout) ->
        List.length lay.Convention.lay_params + 1)
      layout
  in
  let t = create ?layout ?entry_arity ~meta ~target_funcs () in
  (match (layout, entry_arity) with
   | Some lay, Some arity ->
       (* Seed pointee memory using the first call_pre into the target;
          [peek] trails one event ahead for the pre/begin pair. *)
       let here = Cur.make buf and peek = Cur.make buf in
       let rec find_entry () =
         Cur.seek peek (Cur.pos here + 1);
         if Cur.at_end peek then ()
         else if
           Cur.kind here = B.K_call_pre
           && Cur.kind peek = B.K_func_begin
           && List.mem (Cur.label peek) target_funcs
           && Cur.op_count here >= arity
         then Convention.init_memory lay (Cur.ops here) t.mem
         else begin
           Cur.advance here;
           find_entry ()
         end
       in
       find_entry ()
   | _ -> ());
  let cur = Cur.make buf in
  while not (Cur.at_end cur) do
    step t cur;
    Cur.advance cur
  done;
  { r_path = List.rev t.path; r_layout = t.layout; r_mem = t.mem; r_imprecise = t.imprecise }
