examples/paper_listings.ml: Abi Fun List Name Printf Sys Wasai_core Wasai_eosio Wasai_wasm
