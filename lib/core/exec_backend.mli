(** Pluggable execution backends.

    The engine runs a target's instrumented module through one of two
    tiers: the fuel-metered tree-walking interpreter or the
    closure-compiled threaded-code tier ({!Wasai_wasm.Compile}).  The
    determinism contract between them is absolute: verdicts, coverage
    signatures, trace event tapes and journal lines are byte-identical
    whichever tier executes the payloads. *)

module Wasm = Wasai_wasm
module Wasabi = Wasai_wasabi

(** [Auto] (the default) is the compiled tier with its per-opcode
    interpreter fallback; [Compiled] is the same tier chosen explicitly.
    [Interp] keeps the chain's native interpreter path. *)
type choice = Interp | Compiled | Auto

val to_string : choice -> string
(** ["interp" | "compiled" | "auto"] — the CLI flag values and the
    journal-header stamp. *)

val of_string : string -> (choice, string) result
val all : choice list

(** A backend prepares a module once and runs it per action context,
    replicating the interpreter path of [Chain.run_contract] exactly. *)
module type S = sig
  val name : string

  type prepared

  val prepare : ?collector:Wasabi.Trace.t -> Wasm.Ast.module_ -> prepared
  (** One-time translation of a validated module.  [collector], when
      given, lets the backend bind the [wasai] instrumentation hooks to
      direct trace appends — only sound when every instance of this
      prepared module executes with the collector's target as receiver
      (the engine guarantees this by installing the backend only on the
      target account). *)

  val run : prepared -> Wasai_eosio.Chain.context -> unit
  (** Execute one action: instantiate with the context's chain
      extensions as resolver, expose the instance via [ctx_inst], invoke
      [apply], and swallow [Eosio_exit]. *)
end

module Interp_backend : S with type prepared = Wasm.Ast.module_
module Compiled_backend : S with type prepared = Wasm.Compile.pool

val interp : (module S)
val compiled : (module S)

val install :
  choice ->
  ?collector:Wasabi.Trace.t ->
  Wasai_eosio.Chain.t ->
  Wasai_eosio.Name.t ->
  Wasm.Ast.module_ ->
  unit
(** Wire the chosen backend into the chain for the account's deployed
    module: [Interp] clears any executor (native interpreter path);
    [Compiled]/[Auto] compile [m] and install the executor.  Call after
    [Chain.set_code] — deploying code resets the executor. *)
