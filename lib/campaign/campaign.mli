(** Parallel fuzzing-campaign orchestrator.

    Drives {!Core.Engine.fuzz} over an arbitrary set of contracts: a
    shared {!Work_queue} drained by N OCaml domains, an optional
    crash-safe {!Journal} enabling resumption after a kill, and an
    aggregation layer merging per-target outcomes into a fleet report.

    Fleet scale comes from {!Shard}: a run configured with
    [shard = i/N] fuzzes only the targets whose stable name hash lands in
    slice [i], so N machines given the same directory and the same engine
    configuration partition the fleet with no coordination; their
    journals — each entry stamped with its (shard, seed, budget)
    provenance — recombine through {!merge} into the same canonical
    report an unsharded run would have produced.

    Determinism: per-target verdicts depend only on
    [(cfg_engine.cfg_rng_seed, target)] — the engine seeds each target's
    RNG from its account name (see {!Core.Engine.fuzz}) — and the report
    is canonicalised by target name, so {!verdicts_text} and
    {!evidence_text} are byte-identical for any [cc_jobs], any
    scheduling, and any sharding of the same target set, provided
    [cc_engine.cfg_time_limit = None]. *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver
module Metrics = Wasai_support.Metrics

type target_spec = {
  sp_name : string;
      (** campaign-unique identity; doubles as the deployment account, so
          it must be a valid EOSIO name (the RNG seed derives from it) *)
  sp_load : unit -> Core.Engine.target;
      (** called in the worker domain, so parsing/generation cost is paid
          in parallel too *)
}

type config = {
  cc_jobs : int;  (** worker domains, including the calling one; >= 1 *)
  cc_engine : Core.Engine.config;
  cc_journal : string option;  (** append completed targets here *)
  cc_resume : bool;
      (** skip targets already present in [cc_journal]; their journal
          entries are merged into the final report *)
  cc_max_targets : int option;
      (** stop after this many fresh targets (simulates an interrupted
          campaign; also the smoke-test budget) *)
  cc_progress : (Journal.entry -> unit) option;
      (** called under the campaign lock after each completed target *)
  cc_shard : Shard.t;
      (** restrict the run to this slice of the fleet
          ({!Shard.whole} = everything) *)
}

val make_config :
  jobs:int ->
  ?journal:string ->
  ?resume:bool ->
  ?max_targets:int ->
  ?progress:(Journal.entry -> unit) ->
  ?shard:Shard.t ->
  engine:Core.Engine.config ->
  unit ->
  config
(** The only supported way to build a {!config}: validates at
    construction time instead of deep inside {!run}.  Raises
    [Invalid_argument] when [jobs < 1] or when [resume] is requested
    without a [journal].  [resume] defaults to [false], [shard] to
    {!Shard.whole}; [journal], [max_targets] and [progress] default to
    absent. *)

type report = {
  cr_results : Journal.entry list;  (** sorted by target name *)
  cr_requested : int;  (** targets in this run's (shard-filtered) input set *)
  cr_skipped : int;  (** satisfied from the journal instead of re-fuzzed *)
  cr_jobs : int;  (** 0 for a report built purely from journals *)
  cr_wall : float;  (** campaign wall-clock, seconds *)
  cr_shard : Shard.t;  (** the slice this report covers *)
}

val run : config -> target_spec list -> report
(** Raises [Invalid_argument] on duplicate target names,
    {!Journal.Malformed} when resuming from a corrupt journal, and
    [Failure] when a resumed journal was stamped under a different
    (shard, seed, budget) configuration or when a target's load/fuzz
    raised (after all workers have drained; the journal keeps every
    target completed before the failure).

    Targets outside [cc_shard] are filtered out before anything else:
    they are not fuzzed, not journaled, and not counted in
    [cr_requested]. *)

val of_entries : Journal.entry list -> report
(** Wrap already-journaled entries as a report without fuzzing anything
    ([cr_jobs = 0]; every entry counts as skipped).  Duplicate entries per
    name collapse to the last, as {!run}'s resume does.  The basis of
    [wasai campaign report]. *)

val merge : string list -> report
(** Load N shard journals and recombine them into the fleet report.

    Validation (all failures raise [Failure] with the offending path):
    every entry must carry a v3 stamp; each journal must be internally
    consistent (one stamp, and every target name must hash into the
    stamped slice); all journals must agree on (seed, budget, shard
    count); the shard indices must be pairwise distinct (disjointness)
    and cover 0..N-1 (coverage).  Duplicate lines per name collapse to
    the last, as {!run}'s resume does.  Raises {!Journal.Malformed} on a
    corrupt journal and [Invalid_argument] on an empty path list.

    Because per-target verdicts are independent of sharding, the merged
    report's {!verdicts_text} and {!evidence_text} are byte-identical to
    those of an unsharded run over the union of the targets. *)

(** {2 Aggregation} *)

val flag_counts : report -> (Core.Scanner.flag * int) list
(** Per-flag count of flagged contracts, in {!Core.Scanner.all_flags}
    order. *)

val vulnerable_count : report -> int
val total_branches : report -> int

val solver_totals : report -> Solver.stats
(** Fleet-wide sum of per-target solver/cache counters.  Deterministic
    for any [cc_jobs]: solver sessions are per-target and never shared
    across domains, so each addend is a function of its target alone. *)

val latency_histogram : report -> Metrics.Histogram.t
(** Per-target fuzzing latencies (merged as if per-worker). *)

val verdicts_text : report -> string
(** Canonical per-target verdict lines, sorted by name, with every
    scheduling-dependent field (latency, wall-clock) excluded — the
    byte-identical artefact for comparing runs at different [cc_jobs] or
    different shardings. *)

val evidence_text : report -> string
(** Canonical exploit-evidence lines (target, flag, replayable payload),
    in target order then flag order; empty when nothing fired.  As
    scheduling-independent as {!verdicts_text}: the payload behind a
    verdict is a pure function of the per-target run. *)

val to_text : report -> string
(** Full human-readable campaign report: fleet summary, per-flag contract
    counts, latency percentiles, then {!verdicts_text} and — when any
    exploit was captured — {!evidence_text}. *)
