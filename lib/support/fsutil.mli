(** Filesystem durability helpers shared by the crash-safe writers
    (campaign journal, seed corpus, serve tenant registry).

    Appending fsync'd lines to a file is not enough when the file itself
    was created moments before a crash: the new directory entry lives in
    the directory's own data, which has its own dirty page.  Creators of
    durable files therefore fsync the {e parent directory} once after the
    create (POSIX: fsync on a directory fd flushes its entries). *)

val fsync_dir : string -> unit
(** Open [dir] read-only and fsync it, flushing directory entries (new
    files, new subdirectories) to disk.  Filesystems that cannot fsync a
    directory fd degrade silently: crash-safety of the {e entry} is then
    best-effort, matching the historical behaviour. *)

val mkdir_p : string -> unit
(** [mkdir "-p"]: create the directory and any missing ancestors; never
    fails because a component already exists.  Each directory this call
    actually creates is made durable by fsyncing its parent. *)
