(** Constraint flipping and adaptive-seed generation (§3.4.4).

    For every conditional state on the executed path whose condition
    involves symbolic input, build the constraint set

      path-prefix (as taken)  ∧  ¬condition

    keeping assert conditions positive, and solve.  Each model concretises
    to a new seed's argument vector. *)

module Expr = Wasai_smt.Expr
module Solver = Wasai_smt.Solver

type candidate = {
  cand_index : int;  (** index of the flipped conditional in the path *)
  cand_site : int;
  cand_flipped_dir : bool option;
      (** direction the flip targets, for branch conditionals *)
  cand_constraints : Expr.t list;
}

(* Variable ids owned by the input layout. *)
let layout_var_ids (lay : Convention.layout) : (int, unit) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, _, sp) ->
      match (sp : Convention.sym_param) with
      | Convention.SP_scalar v -> Hashtbl.replace tbl v.Expr.vid ()
      | Convention.SP_asset { amount; symbol } ->
          Hashtbl.replace tbl amount.Expr.vid ();
          Hashtbl.replace tbl symbol.Expr.vid ()
      | Convention.SP_string { len; content } ->
          Hashtbl.replace tbl len.Expr.vid ();
          Array.iter (fun v -> Hashtbl.replace tbl v.Expr.vid ()) content)
    lay.Convention.lay_params;
  tbl

(* "Does this condition mention symbolic input?", memoized across calls:
   path prefixes overlap almost entirely between candidates, and
   hash-consing makes the per-node answer stable, so one tag-keyed table
   turns the candidate scan from O(path²) node visits into O(path). *)
let mentions_input_memo input_vars =
  let memo = Hashtbl.create 256 in
  fun (e : Expr.t) ->
    Expr.contains_var_memo memo (fun v -> Hashtbl.mem input_vars v.Expr.vid) e

(** Enumerate flip candidates for a replayed path. *)
let candidates (r : Replay.result) : candidate list =
  match r.Replay.r_layout with
  | None -> []
  | Some lay ->
      let input_vars = layout_var_ids lay in
      let mentions = mentions_input_memo input_vars in
      let path = Array.of_list r.Replay.r_path in
      let out = ref [] in
      Array.iteri
        (fun i (cs : Replay.cond_state) ->
          (* Only branches are flipped; asserts must stay satisfied.  The
             condition must involve symbolic input (§3.4.4). *)
          if cs.Replay.cs_kind <> Replay.K_assert
             && mentions cs.Replay.cs_cond
          then begin
            let prefix =
              List.filteri (fun j _ -> j < i) (Array.to_list path)
              |> List.map (fun (p : Replay.cond_state) -> p.Replay.cs_cond)
              |> List.filter mentions
            in
            let flipped = Expr.not_ cs.Replay.cs_cond in
            out :=
              {
                cand_index = i;
                cand_site = cs.Replay.cs_site;
                cand_flipped_dir =
                  (match cs.Replay.cs_kind with
                   | Replay.K_branch -> Some (not cs.Replay.cs_taken)
                   | Replay.K_brtable | Replay.K_assert -> None);
                cand_constraints = prefix @ [ flipped ];
              }
              :: !out
          end)
        path;
      (* Deepest conditional first: the newest frontier is the most
         valuable flip, and under a per-execution solve budget it must
         not starve behind branches already explored. *)
      !out

type solved_seed = {
  seed_args : Wasai_eosio.Abi.value list;
  seed_flipped_site : int;
}

(* §3.4.4: "we mutate one parameter in ρ⃗" — every input variable that does
   not occur in the flipped condition is pinned to its current concrete
   value.  Those values executed the path prefix, so pinning cannot make
   the constraint set unsatisfiable spuriously, and it keeps solved seeds
   from clobbering unrelated parameters (e.g. zeroing [from] and breaking
   its own authorisation). *)
let pin_constraints (lay : Convention.layout)
    ~(current : Wasai_eosio.Abi.value list) ~(free : (int, unit) Hashtbl.t) :
    Expr.t list =
  let module Abi = Wasai_eosio.Abi in
  let current = Array.of_list current in
  let pin (v : Expr.var) (value : int64) acc =
    if Hashtbl.mem free v.Expr.vid then acc
    else Expr.cmp Expr.Eq (Expr.var v) (Expr.const v.Expr.vwidth value) :: acc
  in
  List.concat
    (List.mapi
       (fun i (_, _, sp) ->
         let cur () = if i < Array.length current then Some current.(i) else None in
         match ((sp : Convention.sym_param), cur ()) with
         | Convention.SP_scalar v, Some (Abi.V_name x | Abi.V_u64 x) ->
             pin v x []
         | Convention.SP_scalar v, Some (Abi.V_u32 x) ->
             pin v (Int64.of_int32 x) []
         | Convention.SP_asset { amount; symbol }, Some (Abi.V_asset a) ->
             pin amount a.Wasai_eosio.Asset.amount
               (pin symbol a.Wasai_eosio.Asset.symbol [])
         | Convention.SP_string { len; content }, Some (Abi.V_string s) ->
             let acc = pin len (Int64.of_int (String.length s)) [] in
             let acc = ref acc in
             Array.iteri
               (fun k v ->
                 if k < String.length s then
                   acc := pin v (Int64.of_int (Char.code s.[k])) !acc)
               content;
             !acc
         | _ -> [])
       lay.Convention.lay_params)

(** Payload-sanity constraints: every asset amount must be positive and
    payable — a transfer with a non-positive or astronomical quantity is
    rejected by the token contract before it ever reaches the target. *)
let payload_sanity (lay : Convention.layout) ~(max_amount : int64) :
    Expr.t list =
  List.concat_map
    (fun (_, _, sp) ->
      match (sp : Convention.sym_param) with
      | Convention.SP_asset { amount; _ } ->
          [
            Expr.cmp Expr.Slt (Expr.const 64 0L) (Expr.var amount);
            Expr.cmp Expr.Sle (Expr.var amount) (Expr.const 64 max_amount);
          ]
      | _ -> [])
    lay.Convention.lay_params

(** Solve candidates (up to [max_solved]), concretising each model into a
    fresh argument vector.  [current] is the executed seed's arguments,
    used for unconstrained parameters. *)
let solve ?session ?conflict_budget ?(max_solved = 8) ?(side = [])
    ?(skip = fun (_ : candidate) -> false) (r : Replay.result)
    ~(current : Wasai_eosio.Abi.value list) : solved_seed list =
  (* Standalone calls (no session) keep the historical 20k default; with
     a session and no override, the session's budget applies. *)
  let conflict_budget =
    match (conflict_budget, session) with
    | None, None -> Some 20_000
    | cb, _ -> cb
  in
  match r.Replay.r_layout with
  | None -> []
  | Some lay ->
      let cands = List.filter (fun c -> not (skip c)) (candidates r) in
      let solved = ref [] in
      let count = ref 0 in
      List.iter
        (fun c ->
          if !count < max_solved then
            let free = Hashtbl.create 8 in
            (match List.rev c.cand_constraints with
             | flipped :: _ ->
                 Expr.iter_vars
                   (fun v -> Hashtbl.replace free v.Expr.vid ())
                   flipped
             | [] -> ());
            let pins = pin_constraints lay ~current ~free in
            match
              Solver.check ?session ?conflict_budget
                (side @ pins @ c.cand_constraints)
            with
            | Solver.Sat model ->
                incr count;
                let args = Convention.concretize lay model ~current in
                solved :=
                  { seed_args = args; seed_flipped_site = c.cand_site } :: !solved
            | Solver.Unsat | Solver.Unknown -> ())
        cands;
      List.rev !solved
