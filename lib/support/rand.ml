(** Deterministic splitmix64 pseudo-random generator.

    All corpus generation and fuzzing randomness flows through this module
    so experiments are exactly reproducible from a seed (the paper's
    benchmark is fixed; ours is regenerated deterministically). *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

(** Next raw 64-bit value. *)
let next_u64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Independent child generator; lets parallel corpus families share a root
    seed without correlating their streams. *)
let split t = create (next_u64 t)

let next_i32 t = Int64.to_int32 (next_u64 t)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rand.int: bound must be positive";
  (* Keep 62 bits so the value is a non-negative OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_u64 t) 1L = 1L

(** Biased coin: true with probability [p]. *)
let flip t ~p = float_of_int (int t 1_000_000) /. 1_000_000. < p

let choose t (xs : 'a list) =
  match xs with
  | [] -> invalid_arg "Rand.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let choose_arr t (xs : 'a array) =
  if Array.length xs = 0 then invalid_arg "Rand.choose_arr: empty array";
  xs.(int t (Array.length xs))

(** Fisher-Yates shuffle (returns a fresh array). *)
let shuffle t xs =
  let a = Array.copy xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(** Random lowercase base32-ish identifier of length [n] drawn from the
    EOSIO name alphabet (no dots). *)
let eosio_name_string t n =
  let alphabet = "abcdefghijklmnopqrstuvwxyz12345" in
  String.init n (fun _ -> alphabet.[int t (String.length alphabet)])

let ascii_string t n =
  String.init n (fun _ -> Char.chr (32 + int t 95))

(** Deterministic 64-bit mix of two values (a seed root and a per-target
    identity), used to derive scheduling-independent per-target RNG seeds:
    the result depends only on the pair, never on arrival order. *)
let mix a b =
  let t = create a in
  let h = next_u64 t in
  t.state <- Int64.logxor h b;
  next_u64 t

(** Three-way extension of {!mix}, for deriving a per-(target, cell) RNG
    stream when a target's round budget is partitioned: the result depends
    only on the triple, so every cell of every partitioning of the same
    run draws from the same stream regardless of which worker or slice
    executes it. *)
let mix3 a b c = mix (mix a b) c
