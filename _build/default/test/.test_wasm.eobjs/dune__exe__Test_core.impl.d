test/test_core.ml: Abi Alcotest Asset Database List Name Option Printf String Wasai_benchgen Wasai_core Wasai_eosio
