lib/wasm/validate.ml: Array Ast List Printf Types Values
