(** The chain's key-value store behind the [db_*_i64] host API.

    Rows live in tables addressed by (code, scope, table); each row is an
    id → bytes binding.  Values are held in immutable maps so that a
    snapshot is a shallow hashtable copy — that is what makes whole-
    transaction rollback (the Rollback vulnerability's substrate) cheap.

    Every operation is reported to [on_access]; WASAI's Engine listens to
    build the database-dependency graph (§3.3.2 of the paper). *)

module Values = Wasai_wasm.Values
module I64Map = Map.Make (Int64)

type table_key = { tk_code : Name.t; tk_scope : Name.t; tk_table : Name.t }

type access_kind = Read | Write

type access = {
  acc_kind : access_kind;
  acc_code : Name.t;
  acc_table : Name.t;
}

type iterator_target = { it_key : table_key; it_id : int64 }

type t = {
  mutable tables : (table_key, string I64Map.t) Hashtbl.t;
  iterators : (int, iterator_target) Hashtbl.t;
  mutable next_iterator : int;
  mutable on_access : (access -> unit) option;
}

type snapshot = (table_key, string I64Map.t) Hashtbl.t

let create () =
  {
    tables = Hashtbl.create 64;
    iterators = Hashtbl.create 64;
    next_iterator = 0;
    on_access = None;
  }

let notify db kind key =
  match db.on_access with
  | None -> ()
  | Some f -> f { acc_kind = kind; acc_code = key.tk_code; acc_table = key.tk_table }

let table db key =
  match Hashtbl.find_opt db.tables key with
  | Some m -> m
  | None -> I64Map.empty

let set_table db key m =
  if I64Map.is_empty m then Hashtbl.remove db.tables key
  else Hashtbl.replace db.tables key m

let fresh_iterator db target =
  let it = db.next_iterator in
  db.next_iterator <- it + 1;
  Hashtbl.replace db.iterators it target;
  it

let iterator_target db it =
  match Hashtbl.find_opt db.iterators it with
  | Some t -> t
  | None -> Values.trap "invalid database iterator %d" it

(* ------------------------------------------------------------------ *)
(* The db_*_i64 intrinsics                                             *)
(* ------------------------------------------------------------------ *)

(** Store a new row; traps if the id already exists (as Nodeos does). *)
let store db ~code ~scope ~tbl ~id ~(data : string) : int =
  let key = { tk_code = code; tk_scope = scope; tk_table = tbl } in
  notify db Write key;
  let m = table db key in
  if I64Map.mem id m then Values.trap "db_store_i64: duplicate primary key";
  set_table db key (I64Map.add id data m);
  fresh_iterator db { it_key = key; it_id = id }

(** Find a row by primary key; returns an iterator or -1. *)
let find db ~code ~scope ~tbl ~id : int =
  let key = { tk_code = code; tk_scope = scope; tk_table = tbl } in
  notify db Read key;
  if I64Map.mem id (table db key) then fresh_iterator db { it_key = key; it_id = id }
  else -1

(** First row with id >= [id]; returns an iterator or -1. *)
let lowerbound db ~code ~scope ~tbl ~id : int =
  let key = { tk_code = code; tk_scope = scope; tk_table = tbl } in
  notify db Read key;
  let m = table db key in
  match I64Map.find_first_opt (fun k -> Int64.unsigned_compare k id >= 0) m with
  | Some (k, _) -> fresh_iterator db { it_key = key; it_id = k }
  | None -> -1

let get db it : string =
  let t = iterator_target db it in
  notify db Read t.it_key;
  match I64Map.find_opt t.it_id (table db t.it_key) with
  | Some data -> data
  | None -> Values.trap "db_get_i64: stale iterator"

let update db it ~(data : string) =
  let t = iterator_target db it in
  notify db Write t.it_key;
  let m = table db t.it_key in
  if not (I64Map.mem t.it_id m) then Values.trap "db_update_i64: stale iterator";
  set_table db t.it_key (I64Map.add t.it_id data m)

let remove db it =
  let t = iterator_target db it in
  notify db Write t.it_key;
  set_table db t.it_key (I64Map.remove t.it_id (table db t.it_key))

(** Next row after the iterator's position: returns (iterator, primary) or
    (-1, 0). *)
let next db it : int * int64 =
  let t = iterator_target db it in
  notify db Read t.it_key;
  let m = table db t.it_key in
  match
    I64Map.find_first_opt (fun k -> Int64.unsigned_compare k t.it_id > 0) m
  with
  | Some (k, _) -> (fresh_iterator db { it_key = t.it_key; it_id = k }, k)
  | None -> (-1, 0L)

let primary db it = (iterator_target db it).it_id

(* ------------------------------------------------------------------ *)
(* Higher-level helpers (used by native contracts)                    *)
(* ------------------------------------------------------------------ *)

let get_row db ~code ~scope ~tbl ~id : string option =
  let key = { tk_code = code; tk_scope = scope; tk_table = tbl } in
  notify db Read key;
  I64Map.find_opt id (table db key)

let put_row db ~code ~scope ~tbl ~id ~(data : string) =
  let key = { tk_code = code; tk_scope = scope; tk_table = tbl } in
  notify db Write key;
  set_table db key (I64Map.add id data (table db key))

let delete_row db ~code ~scope ~tbl ~id =
  let key = { tk_code = code; tk_scope = scope; tk_table = tbl } in
  notify db Write key;
  set_table db key (I64Map.remove id (table db key))

let rows db ~code ~scope ~tbl : (int64 * string) list =
  let key = { tk_code = code; tk_scope = scope; tk_table = tbl } in
  I64Map.bindings (table db key)

(* ------------------------------------------------------------------ *)
(* Secondary indexes (db_idx64)                                        *)
(* ------------------------------------------------------------------ *)

(* Nodeos stores secondary u64 keys in parallel tables; a secondary entry
   maps the secondary key to the row's primary key.  We keep them in the
   same store under a derived table name so snapshots/rollback cover them
   for free: the index table of [t] is [t ^ idx-tag] in name space.  The
   derived name flips the top bit of the table name, which no ordinary
   12-character name uses. *)
let idx_table (tbl : Name.t) : Name.t = Int64.logxor tbl Int64.min_int

(* Entries: id = primary key, data = 8-byte LE secondary key.  Lookups by
   secondary scan the (small) table; fidelity over asymptotics. *)

let idx64_store db ~code ~scope ~tbl ~(primary : int64) ~(secondary : int64) :
    int =
  let data =
    String.init 8 (fun i ->
        Char.chr
          (Int64.to_int
             (Int64.logand (Int64.shift_right_logical secondary (8 * i)) 0xFFL)))
  in
  let key = { tk_code = code; tk_scope = scope; tk_table = idx_table tbl } in
  notify db Write key;
  set_table db key (I64Map.add primary data (table db key));
  fresh_iterator db { it_key = key; it_id = primary }

let idx64_remove db ~code ~scope ~tbl ~(primary : int64) =
  delete_row db ~code ~scope ~tbl:(idx_table tbl) ~id:primary

let idx64_update db ~code ~scope ~tbl ~(primary : int64) ~(secondary : int64) =
  idx64_remove db ~code ~scope ~tbl ~primary;
  ignore (idx64_store db ~code ~scope ~tbl ~primary ~secondary)

let secondary_of (data : string) : int64 =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code data.[i]))
  done;
  !v

(** Find the first row whose secondary key equals [secondary]; returns
    (iterator, primary) or (-1, 0). *)
let idx64_find_secondary db ~code ~scope ~tbl ~(secondary : int64) :
    int * int64 =
  let key = { tk_code = code; tk_scope = scope; tk_table = idx_table tbl } in
  notify db Read key;
  let found =
    I64Map.fold
      (fun primary data acc ->
        match acc with
        | Some _ -> acc
        | None -> if secondary_of data = secondary then Some primary else None)
      (table db key) None
  in
  match found with
  | Some primary -> (fresh_iterator db { it_key = key; it_id = primary }, primary)
  | None -> (-1, 0L)

(** First row with secondary key >= [secondary] (by secondary, then
    primary). *)
let idx64_lowerbound db ~code ~scope ~tbl ~(secondary : int64) : int * int64 =
  let key = { tk_code = code; tk_scope = scope; tk_table = idx_table tbl } in
  notify db Read key;
  let best =
    I64Map.fold
      (fun primary data acc ->
        let s = secondary_of data in
        if Int64.unsigned_compare s secondary < 0 then acc
        else
          match acc with
          | Some (bs, bp)
            when Int64.unsigned_compare bs s < 0
                 || (bs = s && Int64.unsigned_compare bp primary <= 0) ->
              Some (bs, bp)
          | _ -> Some (s, primary))
      (table db key) None
  in
  match best with
  | Some (_, primary) ->
      (fresh_iterator db { it_key = key; it_id = primary }, primary)
  | None -> (-1, 0L)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(** Cheap snapshot: values are immutable, so copying the table map
    suffices. *)
let snapshot db : snapshot = Hashtbl.copy db.tables

let restore db (s : snapshot) =
  db.tables <- Hashtbl.copy s;
  Hashtbl.reset db.iterators

(** Wipe all state (fresh local chain). *)
let clear db =
  Hashtbl.reset db.tables;
  Hashtbl.reset db.iterators;
  db.next_iterator <- 0
