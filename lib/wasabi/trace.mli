(** Execution traces.

    The instrumented contract calls hook imports in the [wasai] namespace
    while it runs; the collector assembles the flat event stream into
    structured records τ(i, p⃗) — the trace format of the paper's §3.1.
    Only instrumented contracts import the hooks, so auxiliary contracts
    never pollute the trace. *)

module Wasm = Wasai_wasm

(** Static description of one instrumented instruction site. *)
type site = {
  site_id : int;
  site_func : int;  (** absolute function index in the instrumented module *)
  site_instr : Wasm.Ast.instr;  (** post-remap instruction *)
}

(** Static metadata produced by the instrumenter (Wasabi's static-info
    file). *)
type meta = {
  sites : site array;
  instrumented : Wasm.Ast.module_;
  original : Wasm.Ast.module_;
  hook_base : int;  (** first hook import index *)
  hook_count : int;
  orig_import_count : int;
}

val site_of : meta -> int -> site
val import_name : meta -> int -> string option

val find_env_import : meta -> string -> int option
(** Absolute index of an [env] import, if the contract imports it. *)

val edge_signature : (int * int32) list -> int64
(** Stable hash of a branch-edge set — the coverage signature a corpus
    indexes seeds by.  The edge list is canonicalised first (sorted,
    deduplicated), so the signature is a pure function of the {e set}:
    independent of trace order, duplication, machine, or OCaml's
    [Hashtbl.hash].  FNV-1a 64-bit over each edge's little-endian bytes. *)

(** {1 Structured records} *)

type record =
  | R_instr of { site : int; ops : Wasm.Values.value list }
  | R_call_pre of { site : int; args : Wasm.Values.value list }
  | R_call_post of { site : int; results : Wasm.Values.value list }
  | R_func_begin of int  (** absolute function index *)
  | R_func_end of int

val record_site : record -> int option
val string_of_record : meta -> record -> string

(** {1 Collector} *)

type t

val create : ?limit:int -> unit -> t

val begin_instr : t -> int -> unit
val begin_call_pre : t -> int -> unit
val begin_call_post : t -> int -> unit
val operand : t -> Wasm.Values.value -> unit
val func_begin : t -> int -> unit
val func_end : t -> int -> unit

val drain : t -> record list
(** Take the collected trace (oldest first) and reset — the paper's
    "redirect the traces to offline files once one EOSVM thread
    finishes". *)

val reset : t -> unit
