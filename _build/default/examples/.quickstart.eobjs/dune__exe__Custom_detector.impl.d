examples/custom_detector.ml: List Name Printf Wasai_benchgen Wasai_core Wasai_eosio Wasai_wasabi
