(** Encoder for the Wasm binary format (MVP sections 1–11, plus the
    custom "name" section carrying function debug names). *)

(** LEB128 and fixed-width primitives (exposed for tests and tools). *)
module Buf : sig
  type t = Buffer.t

  val create : unit -> t
  val byte : int -> t -> unit
  val u64 : int64 -> t -> unit
  val u32 : int -> t -> unit
  val s64 : int64 -> t -> unit
  val s32 : int32 -> t -> unit
  val f32 : float -> t -> unit
  val f64 : float -> t -> unit
  val name : string -> t -> unit
  val bytes : string -> t -> unit
end

val encode_instr : Buffer.t -> Ast.instr -> unit
val encode_expr : Buffer.t -> Ast.instr list -> unit

val encode : Ast.module_ -> string
(** Serialise a module to its binary representation. *)
