(** Encoder for the Wasm binary format (MVP sections 1–11).

    Together with {!Decode} this gives a faithful round-trip through the
    real bytecode, so the instrumentation pipeline operates on genuine
    binaries rather than on in-memory ASTs only. *)


module Buf = struct
  type t = Buffer.t

  let create () = Buffer.create 1024
  let byte b buf = Buffer.add_char buf (Char.chr (b land 0xff))

  (* Unsigned LEB128. *)
  let rec u64 (v : int64) buf =
    let low = Int64.to_int (Int64.logand v 0x7fL) in
    let rest = Int64.shift_right_logical v 7 in
    if rest = 0L then byte low buf
    else begin
      byte (low lor 0x80) buf;
      u64 rest buf
    end

  let u32 (v : int) buf = u64 (Int64.of_int v) buf

  (* Signed LEB128. *)
  let rec s64 (v : int64) buf =
    let low = Int64.to_int (Int64.logand v 0x7fL) in
    let rest = Int64.shift_right v 7 in
    let done_ =
      (rest = 0L && low land 0x40 = 0) || (rest = -1L && low land 0x40 <> 0)
    in
    if done_ then byte low buf
    else begin
      byte (low lor 0x80) buf;
      s64 rest buf
    end

  let s32 (v : int32) buf = s64 (Int64.of_int32 v) buf

  let f32 (v : float) buf =
    let bits = Int32.bits_of_float v in
    for i = 0 to 3 do
      byte (Int32.to_int (Int32.shift_right_logical bits (8 * i)) land 0xff) buf
    done

  let f64 (v : float) buf =
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      byte (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff) buf
    done

  let name (s : string) buf =
    u32 (String.length s) buf;
    Buffer.add_string buf s

  let bytes (s : string) buf =
    u32 (String.length s) buf;
    Buffer.add_string buf s
end

let value_type_byte : Types.value_type -> int = function
  | Types.I32 -> 0x7f
  | Types.I64 -> 0x7e
  | Types.F32 -> 0x7d
  | Types.F64 -> 0x7c

let encode_value_type buf t = Buf.byte (value_type_byte t) buf

let encode_block_type buf : Ast.block_type -> unit = function
  | None -> Buf.byte 0x40 buf
  | Some t -> encode_value_type buf t

let encode_func_type buf (ft : Types.func_type) =
  Buf.byte 0x60 buf;
  Buf.u32 (List.length ft.params) buf;
  List.iter (encode_value_type buf) ft.params;
  Buf.u32 (List.length ft.results) buf;
  List.iter (encode_value_type buf) ft.results

let encode_limits buf (l : Types.limits) =
  match l.lim_max with
  | None ->
      Buf.byte 0x00 buf;
      Buf.u32 l.lim_min buf
  | Some m ->
      Buf.byte 0x01 buf;
      Buf.u32 l.lim_min buf;
      Buf.u32 m buf

let encode_global_type buf (g : Types.global_type) =
  encode_value_type buf g.gt_type;
  Buf.byte (match g.gt_mut with Types.Immutable -> 0x00 | Types.Mutable -> 0x01) buf

(* Opcode assignment per the spec's binary format. *)
let int_relop_base = function
  | Types.I32 -> 0x46
  | Types.I64 -> 0x51
  | _ -> invalid_arg "int relop type"

let encode_int_relop buf ty (op : Ast.int_relop) =
  let off =
    match op with
    | Ast.Eq -> 0 | Ast.Ne -> 1 | Ast.Lt_s -> 2 | Ast.Lt_u -> 3
    | Ast.Gt_s -> 4 | Ast.Gt_u -> 5 | Ast.Le_s -> 6 | Ast.Le_u -> 7
    | Ast.Ge_s -> 8 | Ast.Ge_u -> 9
  in
  Buf.byte (int_relop_base ty + off) buf

let encode_float_relop buf ty (op : Ast.float_relop) =
  let base =
    match ty with
    | Types.F32 -> 0x5b
    | Types.F64 -> 0x61
    | _ -> invalid_arg "float relop type"
  in
  let off =
    match op with
    | Ast.Feq -> 0 | Ast.Fne -> 1 | Ast.Flt -> 2 | Ast.Fgt -> 3
    | Ast.Fle -> 4 | Ast.Fge -> 5
  in
  Buf.byte (base + off) buf

let encode_int_unop buf ty (op : Ast.int_unop) =
  let base =
    match ty with
    | Types.I32 -> 0x67
    | Types.I64 -> 0x79
    | _ -> invalid_arg "int unop type"
  in
  let off = match op with Ast.Clz -> 0 | Ast.Ctz -> 1 | Ast.Popcnt -> 2 in
  Buf.byte (base + off) buf

let encode_int_binop buf ty (op : Ast.int_binop) =
  let base =
    match ty with
    | Types.I32 -> 0x6a
    | Types.I64 -> 0x7c
    | _ -> invalid_arg "int binop type"
  in
  let off =
    match op with
    | Ast.Add -> 0 | Ast.Sub -> 1 | Ast.Mul -> 2
    | Ast.Div_s -> 3 | Ast.Div_u -> 4 | Ast.Rem_s -> 5 | Ast.Rem_u -> 6
    | Ast.And -> 7 | Ast.Or -> 8 | Ast.Xor -> 9
    | Ast.Shl -> 10 | Ast.Shr_s -> 11 | Ast.Shr_u -> 12
    | Ast.Rotl -> 13 | Ast.Rotr -> 14
  in
  Buf.byte (base + off) buf

let encode_float_unop buf ty (op : Ast.float_unop) =
  let base =
    match ty with
    | Types.F32 -> 0x8b
    | Types.F64 -> 0x99
    | _ -> invalid_arg "float unop type"
  in
  let off =
    match op with
    | Ast.Fabs -> 0 | Ast.Fneg -> 1 | Ast.Fceil -> 2 | Ast.Ffloor -> 3
    | Ast.Ftrunc -> 4 | Ast.Fnearest -> 5 | Ast.Fsqrt -> 6
  in
  Buf.byte (base + off) buf

let encode_float_binop buf ty (op : Ast.float_binop) =
  let base =
    match ty with
    | Types.F32 -> 0x92
    | Types.F64 -> 0xa0
    | _ -> invalid_arg "float binop type"
  in
  let off =
    match op with
    | Ast.Fadd -> 0 | Ast.Fsub -> 1 | Ast.Fmul -> 2 | Ast.Fdiv -> 3
    | Ast.Fmin -> 4 | Ast.Fmax -> 5 | Ast.Fcopysign -> 6
  in
  Buf.byte (base + off) buf

let cvtop_byte : Ast.cvtop -> int = function
  | Ast.I32_wrap_i64 -> 0xa7
  | Ast.I32_trunc_f32_s -> 0xa8
  | Ast.I32_trunc_f32_u -> 0xa9
  | Ast.I32_trunc_f64_s -> 0xaa
  | Ast.I32_trunc_f64_u -> 0xab
  | Ast.I64_extend_i32_s -> 0xac
  | Ast.I64_extend_i32_u -> 0xad
  | Ast.I64_trunc_f32_s -> 0xae
  | Ast.I64_trunc_f32_u -> 0xaf
  | Ast.I64_trunc_f64_s -> 0xb0
  | Ast.I64_trunc_f64_u -> 0xb1
  | Ast.F32_convert_i32_s -> 0xb2
  | Ast.F32_convert_i32_u -> 0xb3
  | Ast.F32_convert_i64_s -> 0xb4
  | Ast.F32_convert_i64_u -> 0xb5
  | Ast.F32_demote_f64 -> 0xb6
  | Ast.F64_convert_i32_s -> 0xb7
  | Ast.F64_convert_i32_u -> 0xb8
  | Ast.F64_convert_i64_s -> 0xb9
  | Ast.F64_convert_i64_u -> 0xba
  | Ast.F64_promote_f32 -> 0xbb
  | Ast.I32_reinterpret_f32 -> 0xbc
  | Ast.I64_reinterpret_f64 -> 0xbd
  | Ast.F32_reinterpret_i32 -> 0xbe
  | Ast.F64_reinterpret_i64 -> 0xbf

let loadop_byte (l : Ast.loadop) =
  match (l.l_ty, l.l_pack) with
  | Types.I32, None -> 0x28
  | Types.I64, None -> 0x29
  | Types.F32, None -> 0x2a
  | Types.F64, None -> 0x2b
  | Types.I32, Some (Ast.Pack8, Ast.SX) -> 0x2c
  | Types.I32, Some (Ast.Pack8, Ast.ZX) -> 0x2d
  | Types.I32, Some (Ast.Pack16, Ast.SX) -> 0x2e
  | Types.I32, Some (Ast.Pack16, Ast.ZX) -> 0x2f
  | Types.I64, Some (Ast.Pack8, Ast.SX) -> 0x30
  | Types.I64, Some (Ast.Pack8, Ast.ZX) -> 0x31
  | Types.I64, Some (Ast.Pack16, Ast.SX) -> 0x32
  | Types.I64, Some (Ast.Pack16, Ast.ZX) -> 0x33
  | Types.I64, Some (Ast.Pack32, Ast.SX) -> 0x34
  | Types.I64, Some (Ast.Pack32, Ast.ZX) -> 0x35
  | _ -> invalid_arg "invalid loadop"

let storeop_byte (s : Ast.storeop) =
  match (s.s_ty, s.s_pack) with
  | Types.I32, None -> 0x36
  | Types.I64, None -> 0x37
  | Types.F32, None -> 0x38
  | Types.F64, None -> 0x39
  | Types.I32, Some Ast.Pack8 -> 0x3a
  | Types.I32, Some Ast.Pack16 -> 0x3b
  | Types.I64, Some Ast.Pack8 -> 0x3c
  | Types.I64, Some Ast.Pack16 -> 0x3d
  | Types.I64, Some Ast.Pack32 -> 0x3e
  | _ -> invalid_arg "invalid storeop"

let rec encode_instr buf (i : Ast.instr) =
  match i with
  | Ast.Unreachable -> Buf.byte 0x00 buf
  | Ast.Nop -> Buf.byte 0x01 buf
  | Ast.Block (bt, body) ->
      Buf.byte 0x02 buf;
      encode_block_type buf bt;
      List.iter (encode_instr buf) body;
      Buf.byte 0x0b buf
  | Ast.Loop (bt, body) ->
      Buf.byte 0x03 buf;
      encode_block_type buf bt;
      List.iter (encode_instr buf) body;
      Buf.byte 0x0b buf
  | Ast.If (bt, then_, else_) ->
      Buf.byte 0x04 buf;
      encode_block_type buf bt;
      List.iter (encode_instr buf) then_;
      if else_ <> [] then begin
        Buf.byte 0x05 buf;
        List.iter (encode_instr buf) else_
      end;
      Buf.byte 0x0b buf
  | Ast.Br n ->
      Buf.byte 0x0c buf;
      Buf.u32 n buf
  | Ast.Br_if n ->
      Buf.byte 0x0d buf;
      Buf.u32 n buf
  | Ast.Br_table (targets, default) ->
      Buf.byte 0x0e buf;
      Buf.u32 (List.length targets) buf;
      List.iter (fun t -> Buf.u32 t buf) targets;
      Buf.u32 default buf
  | Ast.Return -> Buf.byte 0x0f buf
  | Ast.Call f ->
      Buf.byte 0x10 buf;
      Buf.u32 f buf
  | Ast.Call_indirect ti ->
      Buf.byte 0x11 buf;
      Buf.u32 ti buf;
      Buf.byte 0x00 buf (* table index, always 0 in MVP *)
  | Ast.Drop -> Buf.byte 0x1a buf
  | Ast.Select -> Buf.byte 0x1b buf
  | Ast.Local_get n ->
      Buf.byte 0x20 buf;
      Buf.u32 n buf
  | Ast.Local_set n ->
      Buf.byte 0x21 buf;
      Buf.u32 n buf
  | Ast.Local_tee n ->
      Buf.byte 0x22 buf;
      Buf.u32 n buf
  | Ast.Global_get n ->
      Buf.byte 0x23 buf;
      Buf.u32 n buf
  | Ast.Global_set n ->
      Buf.byte 0x24 buf;
      Buf.u32 n buf
  | Ast.Load l ->
      Buf.byte (loadop_byte l) buf;
      Buf.u32 l.l_align buf;
      Buf.u64 (Int64.logand (Int64.of_int32 l.l_offset) 0xFFFF_FFFFL) buf
  | Ast.Store s ->
      Buf.byte (storeop_byte s) buf;
      Buf.u32 s.s_align buf;
      Buf.u64 (Int64.logand (Int64.of_int32 s.s_offset) 0xFFFF_FFFFL) buf
  | Ast.Memory_size ->
      Buf.byte 0x3f buf;
      Buf.byte 0x00 buf
  | Ast.Memory_grow ->
      Buf.byte 0x40 buf;
      Buf.byte 0x00 buf
  | Ast.Const (Values.I32 v) ->
      Buf.byte 0x41 buf;
      Buf.s32 v buf
  | Ast.Const (Values.I64 v) ->
      Buf.byte 0x42 buf;
      Buf.s64 v buf
  | Ast.Const (Values.F32 v) ->
      Buf.byte 0x43 buf;
      Buf.f32 v buf
  | Ast.Const (Values.F64 v) ->
      Buf.byte 0x44 buf;
      Buf.f64 v buf
  | Ast.Eqz Types.I32 -> Buf.byte 0x45 buf
  | Ast.Eqz Types.I64 -> Buf.byte 0x50 buf
  | Ast.Eqz _ -> invalid_arg "eqz on float"
  | Ast.Int_compare (ty, op) -> encode_int_relop buf ty op
  | Ast.Float_compare (ty, op) -> encode_float_relop buf ty op
  | Ast.Int_unary (ty, op) -> encode_int_unop buf ty op
  | Ast.Int_binary (ty, op) -> encode_int_binop buf ty op
  | Ast.Float_unary (ty, op) -> encode_float_unop buf ty op
  | Ast.Float_binary (ty, op) -> encode_float_binop buf ty op
  | Ast.Convert op -> Buf.byte (cvtop_byte op) buf

let encode_expr buf body =
  List.iter (encode_instr buf) body;
  Buf.byte 0x0b buf

let section buf id content =
  if Buffer.length content > 0 then begin
    Buf.byte id buf;
    Buf.u32 (Buffer.length content) buf;
    Buffer.add_buffer buf content
  end

let encode_import buf (i : Ast.import) =
  Buf.name i.imp_module buf;
  Buf.name i.imp_name buf;
  match i.idesc with
  | Ast.Func_import ti ->
      Buf.byte 0x00 buf;
      Buf.u32 ti buf
  | Ast.Table_import tt ->
      Buf.byte 0x01 buf;
      Buf.byte 0x70 buf;
      encode_limits buf tt.tbl_limits
  | Ast.Memory_import mt ->
      Buf.byte 0x02 buf;
      encode_limits buf mt.mem_limits
  | Ast.Global_import gt ->
      Buf.byte 0x03 buf;
      encode_global_type buf gt

let encode_export buf (e : Ast.export) =
  Buf.name e.ename buf;
  match e.edesc with
  | Ast.Func_export i ->
      Buf.byte 0x00 buf;
      Buf.u32 i buf
  | Ast.Table_export i ->
      Buf.byte 0x01 buf;
      Buf.u32 i buf
  | Ast.Memory_export i ->
      Buf.byte 0x02 buf;
      Buf.u32 i buf
  | Ast.Global_export i ->
      Buf.byte 0x03 buf;
      Buf.u32 i buf

(** Compress a locals list into (count, type) runs, as the code section
    requires. *)
let local_runs (locals : Types.value_type list) =
  let rec go acc = function
    | [] -> List.rev acc
    | t :: rest -> (
        match acc with
        | (n, t') :: acc' when t' = t -> go ((n + 1, t) :: acc') rest
        | _ -> go ((1, t) :: acc) rest)
  in
  go [] locals

let encode_code buf (f : Ast.func) =
  let body = Buf.create () in
  let runs = local_runs f.locals in
  Buf.u32 (List.length runs) body;
  List.iter
    (fun (n, t) ->
      Buf.u32 n body;
      encode_value_type body t)
    runs;
  encode_expr body f.body;
  Buf.u32 (Buffer.length body) buf;
  Buffer.add_buffer buf body

(** Serialise a module to its binary representation. *)
let encode (m : Ast.module_) : string =
  let buf = Buf.create () in
  Buffer.add_string buf "\x00asm";
  Buffer.add_string buf "\x01\x00\x00\x00";
  (* Type section *)
  let s = Buf.create () in
  if Array.length m.types > 0 then begin
    Buf.u32 (Array.length m.types) s;
    Array.iter (encode_func_type s) m.types
  end;
  section buf 1 s;
  (* Import section *)
  let s = Buf.create () in
  if m.imports <> [] then begin
    Buf.u32 (List.length m.imports) s;
    List.iter (encode_import s) m.imports
  end;
  section buf 2 s;
  (* Function section *)
  let s = Buf.create () in
  if Array.length m.funcs > 0 then begin
    Buf.u32 (Array.length m.funcs) s;
    Array.iter (fun (f : Ast.func) -> Buf.u32 f.ftype s) m.funcs
  end;
  section buf 3 s;
  (* Table section *)
  let s = Buf.create () in
  if m.tables <> [] then begin
    Buf.u32 (List.length m.tables) s;
    List.iter
      (fun (tt : Types.table_type) ->
        Buf.byte 0x70 s;
        encode_limits s tt.tbl_limits)
      m.tables
  end;
  section buf 4 s;
  (* Memory section *)
  let s = Buf.create () in
  if m.memories <> [] then begin
    Buf.u32 (List.length m.memories) s;
    List.iter (fun (mt : Types.memory_type) -> encode_limits s mt.mem_limits) m.memories
  end;
  section buf 5 s;
  (* Global section *)
  let s = Buf.create () in
  if Array.length m.globals > 0 then begin
    Buf.u32 (Array.length m.globals) s;
    Array.iter
      (fun (g : Ast.global) ->
        encode_global_type s g.gtype;
        encode_expr s g.ginit)
      m.globals
  end;
  section buf 6 s;
  (* Export section *)
  let s = Buf.create () in
  if m.exports <> [] then begin
    Buf.u32 (List.length m.exports) s;
    List.iter (encode_export s) m.exports
  end;
  section buf 7 s;
  (* Start section *)
  let s = Buf.create () in
  (match m.start with Some f -> Buf.u32 f s | None -> ());
  section buf 8 s;
  (* Element section *)
  let s = Buf.create () in
  if m.elems <> [] then begin
    Buf.u32 (List.length m.elems) s;
    List.iter
      (fun (e : Ast.elem_segment) ->
        Buf.u32 0 s;
        encode_expr s e.e_offset;
        Buf.u32 (List.length e.e_init) s;
        List.iter (fun i -> Buf.u32 i s) e.e_init)
      m.elems
  end;
  section buf 9 s;
  (* Code section *)
  let s = Buf.create () in
  if Array.length m.funcs > 0 then begin
    Buf.u32 (Array.length m.funcs) s;
    Array.iter (encode_code s) m.funcs
  end;
  section buf 10 s;
  (* Data section *)
  let s = Buf.create () in
  if m.datas <> [] then begin
    Buf.u32 (List.length m.datas) s;
    List.iter
      (fun (d : Ast.data_segment) ->
        Buf.u32 0 s;
        encode_expr s d.d_offset;
        Buf.bytes d.d_init s)
      m.datas
  end;
  section buf 11 s;
  (* Custom "name" section: preserve function debug names across the
     round-trip so instrumented binaries keep their action-function names. *)
  let named =
    let n_imp = Ast.num_func_imports m in
    Array.to_list m.funcs
    |> List.mapi (fun i (f : Ast.func) ->
           match f.fname with Some n -> Some (n_imp + i, n) | None -> None)
    |> List.filter_map Fun.id
  in
  if named <> [] then begin
    let sub = Buf.create () in
    Buf.u32 (List.length named) sub;
    List.iter
      (fun (idx, n) ->
        Buf.u32 idx sub;
        Buf.name n sub)
      named;
    let payload = Buf.create () in
    Buf.name "name" payload;
    Buf.byte 1 payload;
    Buf.u32 (Buffer.length sub) payload;
    Buffer.add_buffer payload sub;
    section buf 0 payload
  end;
  Buffer.contents buf
