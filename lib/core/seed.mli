(** Seeds Γ⟨φ, ρ⃗⟩ and the per-action seed pool (§3.1, §3.3.2): a circular
    queue per action, with untried adaptive seeds taking priority. *)

open Wasai_eosio

type t = {
  sd_action : Name.t;
  sd_args : Abi.value list;
  sd_provenance : provenance;
}

and provenance =
  | Random_seed
  | Adaptive of int  (** site that was flipped *)
  | Imported  (** replayed from a persistent corpus *)

val to_string : t -> string

val random_args :
  Wasai_support.Rand.t -> identities:Name.t list -> Abi.action_def -> Abi.value list
(** Random arguments; name-typed parameters are drawn from [identities]
    (only existing accounts can authorise). *)

val random :
  Wasai_support.Rand.t -> identities:Name.t list -> Abi.action_def -> t

type pool

val create_pool : unit -> pool

val add : pool -> t -> unit
(** Adaptive and imported seeds jump the queue. *)

val take_fresh : pool -> Name.t -> t option
(** An untried adaptive seed, if any. *)

val next : pool -> Name.t -> t option
(** Untried adaptive seeds first, then pop the head of the circular queue
    and cycle it to the tail. *)

val size : pool -> Name.t -> int
val total : pool -> int
