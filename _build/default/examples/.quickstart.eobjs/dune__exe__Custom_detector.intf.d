examples/custom_detector.mli:
