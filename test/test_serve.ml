(* Tests for the serve subsystem: wire grammar round-trip and
   strictness, admission control (explicit BUSY backpressure), streamed
   verdict parity with a batch campaign, cached replay, and the headline
   restart-safety property — kill -9 (simulated in-process and real,
   via fork + SIGKILL) followed by --resume yields per-tenant reports
   byte-identical to an uninterrupted run. *)

module Core = Wasai_core
module Wasm = Wasai_wasm
module BG = Wasai_benchgen
module Campaign = Wasai_campaign
module Serve = Wasai_serve
open Wasai_eosio

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Unix-domain socket paths are capped around 104 bytes, so anchor
   everything under a short /tmp directory instead of TMPDIR. *)
let scratch tag =
  let dir =
    Printf.sprintf "/tmp/wasai-serve-%d-%s-%d" (Unix.getpid ()) tag
      (int_of_float (Unix.gettimeofday () *. 1000.) mod 1_000_000)
  in
  Unix.mkdir dir 0o755;
  dir

let engine rounds =
  (Core.Engine.make_config ~rounds:(rounds) ())

(* The same coverage-set samples the campaign tests fuzz, as wire-ready
   contracts: both the serve submission and the batch campaign decode
   identical bytes, so their verdicts must match bit-for-bit. *)
let sample_contracts ~count =
  List.mapi
    (fun i (s : BG.Corpus.sample) ->
      let name =
        Printf.sprintf "trgt%c" (Char.chr (Char.code 'a' + i))
      in
      ( name,
        Wasm.Encode.encode s.BG.Corpus.smp_module,
        Abi.to_text s.BG.Corpus.smp_abi ))
    (BG.Corpus.coverage_set ~count ())

let client_contracts contracts =
  List.map
    (fun (name, wasm, abi) ->
      { Serve.Client.ct_name = name; ct_wasm = wasm; ct_abi = Some abi })
    contracts

let batch_campaign_report ~rounds contracts =
  let targets =
    List.map
      (fun (name, wasm, abi) ->
        {
          Campaign.Campaign.sp_name = name;
          sp_size = String.length wasm;
          sp_load =
            (fun () ->
              {
                Core.Engine.tgt_account = Name.of_string name;
                tgt_module = Wasm.Decode.decode wasm;
                tgt_abi = Abi.of_text abi;
              });
        })
      contracts
  in
  Campaign.Campaign.run
    (Campaign.Campaign.make_config ~jobs:2 ~engine:(engine rounds) ())
    targets

(* ------------------------------------------------------------------ *)
(* Wire grammar                                                        *)
(* ------------------------------------------------------------------ *)

let test_wire_hex () =
  let all = String.init 256 Char.chr in
  (match Serve.Wire.string_of_hex (Serve.Wire.hex_of_string all) with
   | Ok s -> Alcotest.(check string) "all bytes round-trip" all s
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "odd length rejected" true
    (Result.is_error (Serve.Wire.string_of_hex "abc"));
  Alcotest.(check bool) "bad digit rejected" true
    (Result.is_error (Serve.Wire.string_of_hex "zz"));
  Alcotest.(check bool) "uppercase rejected (canonical form only)" true
    (Result.is_error (Serve.Wire.string_of_hex "AB"))

let test_wire_names () =
  Alcotest.(check bool) "tenant ok" true (Serve.Wire.valid_tenant "alice-02");
  Alcotest.(check bool) "tenant dot-dot refused" false
    (Serve.Wire.valid_tenant "..");
  Alcotest.(check bool) "tenant slash refused" false
    (Serve.Wire.valid_tenant "a/b");
  Alcotest.(check bool) "tenant uppercase refused" false
    (Serve.Wire.valid_tenant "Alice");
  Alcotest.(check bool) "tenant >32 refused" false
    (Serve.Wire.valid_tenant (String.make 33 'a'));
  Alcotest.(check bool) "target ok" true (Serve.Wire.valid_target "lottery.one");
  Alcotest.(check bool) "target digit 0 refused" false
    (Serve.Wire.valid_target "acc0unt");
  Alcotest.(check bool) "target >12 refused" false
    (Serve.Wire.valid_target "averylongname")

let test_wire_request_roundtrip () =
  let reqs =
    [
      Serve.Wire.Submit
        {
          rq_tenant = "alice";
          rq_name = "lottery";
          rq_wasm = "\x00asm\x01\x00\x00\x00";
          rq_abi = Some "transfer(from:name)";
          rq_slices = 1;
        };
      Serve.Wire.Submit
        {
          rq_tenant = "bob";
          rq_name = "dice";
          rq_wasm = "\xff";
          rq_abi = None;
          rq_slices = 1;
        };
      Serve.Wire.Submit
        {
          rq_tenant = "alice";
          rq_name = "lottery";
          rq_wasm = "\x00asm\x01\x00\x00\x00";
          rq_abi = None;
          rq_slices = 4;
        };
      Serve.Wire.Ping;
      Serve.Wire.Stats "alice";
      Serve.Wire.Metrics;
      Serve.Wire.Shutdown;
    ]
  in
  List.iter
    (fun rq ->
      match Serve.Wire.request_of_line (Serve.Wire.line_of_request rq) with
      | Ok rq' -> Alcotest.(check bool) "request round-trips" true (rq = rq')
      | Error e -> Alcotest.fail ("round-trip rejected: " ^ e))
    reqs

let test_wire_request_strict () =
  let bad =
    [
      ("empty", "");
      ("bad magic", "wasai-serve-v0\tPING");
      ("unknown verb", "wasai-serve-v1\tNOPE");
      ("submit missing fields", "wasai-serve-v1\tSUBMIT\talice\tdice");
      ( "submit bad tenant",
        "wasai-serve-v1\tSUBMIT\tAlice\tdice\t00\t-" );
      ( "submit traversal tenant",
        "wasai-serve-v1\tSUBMIT\t..\tdice\t00\t-" );
      ("submit bad name", "wasai-serve-v1\tSUBMIT\talice\tD1CE\t00\t-");
      ("submit odd hex", "wasai-serve-v1\tSUBMIT\talice\tdice\t0\t-");
      ("submit empty module", "wasai-serve-v1\tSUBMIT\talice\tdice\t\t-");
      ("submit zero slices", "wasai-serve-v1\tSUBMIT\talice\tdice\t00\t-\tslices=0");
      ("submit junk slices", "wasai-serve-v1\tSUBMIT\talice\tdice\t00\t-\tslices=x");
      ("submit wrong trailing key", "wasai-serve-v1\tSUBMIT\talice\tdice\t00\t-\tshards=2");
      ("ping with junk", "wasai-serve-v1\tPING\textra");
      ("metrics with junk", "wasai-serve-v1\tMETRICS\textra");
      ("stats bad tenant", "wasai-serve-v1\tSTATS\ta b");
    ]
  in
  List.iter
    (fun (what, line) ->
      match Serve.Wire.request_of_line line with
      | Ok _ -> Alcotest.fail ("accepted " ^ what)
      | Error _ -> ())
    bad;
  Alcotest.check_raises "producer rejects empty module"
    (Invalid_argument "Wire.line_of_request: empty module bytes") (fun () ->
      ignore
        (Serve.Wire.line_of_request
           (Serve.Wire.Submit
              { rq_tenant = "a"; rq_name = "b"; rq_wasm = ""; rq_abi = None; rq_slices = 1 })))

(* A real journal entry — stamp, solver counters, exploit evidence — to
   embed in VERDICT lines: fuzz one vulnerable sample. *)
let sample_entry =
  lazy
    (let s = List.hd (BG.Corpus.coverage_set ~count:1 ()) in
     let outcome =
       Core.Engine.fuzz ~cfg:(engine 12)
         {
           Core.Engine.tgt_account = Name.of_string "trgta";
           tgt_module = s.BG.Corpus.smp_module;
           tgt_abi = s.BG.Corpus.smp_abi;
         }
     in
     Campaign.Journal.of_outcome ~name:"trgta" ~elapsed:0.25
       ~stamp:
         {
           Campaign.Journal.js_shard = Campaign.Shard.whole;
           js_seed = Core.Engine.default_config.Core.Engine.cfg_rng_seed;
           js_rounds = 12;
         }
       outcome)

let test_wire_response_roundtrip () =
  let entry = Lazy.force sample_entry in
  let resps =
    [
      Serve.Wire.Queued { rp_tenant = "alice"; rp_name = "dice"; rp_depth = 3 };
      Serve.Wire.Busy
        { rp_tenant = "alice"; rp_name = "dice"; rp_retry_ms = 450; rp_depth = 16 };
      Serve.Wire.Verdict
        { rp_tenant = "alice"; rp_kind = Serve.Wire.Fresh; rp_wait_ms = 1200; rp_entry = entry };
      Serve.Wire.Verdict
        { rp_tenant = "bob"; rp_kind = Serve.Wire.Cached; rp_wait_ms = 0; rp_entry = entry };
      Serve.Wire.Err { rp_name = Some "dice"; rp_reason = "decode failed" };
      Serve.Wire.Err { rp_name = None; rp_reason = "tab\there newline\nthere" };
      Serve.Wire.Pong { rp_jobs = 4; rp_tenants = 2 };
      Serve.Wire.StatsReply
        {
          rp_tenant = "alice";
          rp_submitted = 10;
          rp_completed = 7;
          rp_rejected = 2;
          rp_qwait = "n:7,mean:0.010000,p50:0.010000,p90:0.020000,p99:0.020000,max:0.020000";
          rp_latency = "n:7,mean:0.100000,p50:0.100000,p90:0.200000,p99:0.200000,max:0.200000";
          rp_uptime_ms = 481200;
          rp_backend = "compiled";
        };
      Serve.Wire.MetricsReply
        {
          rp_body =
            "# TYPE wasai_jobs gauge\nwasai_jobs 2\n\
             wasai_tenant_submitted_total{tenant=\"alice\"} 10\n";
        };
      Serve.Wire.Bye { rp_completed = 7 };
    ]
  in
  List.iter
    (fun rp ->
      let line = Serve.Wire.line_of_response rp in
      match Serve.Wire.response_of_line line with
      | Error e -> Alcotest.fail ("round-trip rejected: " ^ e)
      | Ok rp' -> (
          match (rp, rp') with
          | ( Serve.Wire.Err { rp_reason = "tab\there newline\nthere"; _ },
              Serve.Wire.Err { rp_reason; rp_name = None } ) ->
              (* the only lossy field: reasons are flattened to one line *)
              Alcotest.(check string) "reason flattened" "tab here newline there"
                rp_reason
          | ( Serve.Wire.Verdict { rp_entry = a; rp_kind = ka; _ },
              Serve.Wire.Verdict { rp_entry = b; rp_kind = kb; _ } ) ->
              Alcotest.(check bool) "verdict kind survives" true (ka = kb);
              (* entry equality via the canonical line rendering *)
              Alcotest.(check string) "embedded journal line survives"
                (Campaign.Journal.line_of_entry a)
                (Campaign.Journal.line_of_entry b)
          | _ -> Alcotest.(check bool) "response round-trips" true (rp = rp')))
    resps;
  (* the embedded entry really carries evidence: the VERDICT stream
     pushes wire-encoded exploits, not just flags *)
  Alcotest.(check bool) "sample entry has exploits" true
    (entry.Campaign.Journal.je_exploits <> [])

let test_wire_response_strict () =
  let bad =
    [
      ("bad magic", "nope\tPONG\tjobs=1\ttenants=0");
      ("bad kind", "wasai-serve-v1\tVERDICT\talice\tstale\twait=3\tx");
      ("verdict without journal line", "wasai-serve-v1\tVERDICT\talice\tfresh\twait=3");
      ("bad depth", "wasai-serve-v1\tQUEUED\talice\tdice\tdepth=-1");
      ("missing key", "wasai-serve-v1\tQUEUED\talice\tdice\t7");
      ("junk in int", "wasai-serve-v1\tBYE\tcompleted=7x");
      ("stats histogram with space", "wasai-serve-v1\tSTATS\ta\tsubmitted=1\tcompleted=1\trejected=0\tqwait=n 1\tlatency=n:1\tuptime=5\tbackend=auto");
      ("stats without uptime/backend", "wasai-serve-v1\tSTATS\ta\tsubmitted=1\tcompleted=1\trejected=0\tqwait=n:1\tlatency=n:1");
      ("metrics with odd-length hex", "wasai-serve-v1\tMETRICS\tabc");
      ("metrics with non-hex body", "wasai-serve-v1\tMETRICS\tzz");
    ]
  in
  List.iter
    (fun (what, line) ->
      match Serve.Wire.response_of_line line with
      | Ok _ -> Alcotest.fail ("accepted " ^ what)
      | Error _ -> ())
    bad;
  (* a verdict embedding a corrupt journal line is rejected by the
     journal parser, not silently accepted *)
  let entry = Lazy.force sample_entry in
  let good =
    Serve.Wire.line_of_response
      (Serve.Wire.Verdict
         { rp_tenant = "a"; rp_kind = Serve.Wire.Fresh; rp_wait_ms = 1; rp_entry = entry })
  in
  (* tear off the journal line's last field: the strict field-count
     check must reject it (truncating mid-payload can leave a shorter
     but still well-formed value, so cut at a field boundary) *)
  let corrupt = String.sub good 0 (String.rindex good '\t') in
  Alcotest.(check bool) "torn verdict payload rejected" true
    (Result.is_error (Serve.Wire.response_of_line corrupt));
  let extra = good ^ "\tsurplus" in
  Alcotest.(check bool) "surplus field rejected" true
    (Result.is_error (Serve.Wire.response_of_line extra))

(* ------------------------------------------------------------------ *)
(* Daemon harness                                                      *)
(* ------------------------------------------------------------------ *)

let with_daemon cfg f =
  let t = Serve.Serve.create cfg in
  let d = Domain.spawn (fun () -> Serve.Serve.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Serve.request_stop t;
      Domain.join d)
    (fun () -> f t)

let connect_retry path =
  let rec go n =
    match Serve.Client.connect path with
    | c -> c
    | exception Unix.Unix_error _ when n > 0 ->
        Unix.sleepf 0.05;
        go (n - 1)
  in
  go 100

(* ------------------------------------------------------------------ *)
(* End-to-end                                                          *)
(* ------------------------------------------------------------------ *)

let test_serve_parity_and_cache () =
  let dir = scratch "parity" in
  let rounds = 6 in
  let contracts = sample_contracts ~count:4 in
  let cfg =
    Serve.Serve.make_config ~root:(Filename.concat dir "root")
      ~socket:(Filename.concat dir "s.sock") ~jobs:2 ~depth:16
      ~engine:(engine rounds) ()
  in
  with_daemon cfg (fun _ ->
      let c = connect_retry cfg.Serve.Serve.sv_socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          (* liveness *)
          Serve.Client.send c Serve.Wire.Ping;
          (match Serve.Client.next c with
           | Serve.Wire.Pong { rp_jobs; _ } ->
               Alcotest.(check int) "pong jobs" 2 rp_jobs
           | _ -> Alcotest.fail "expected PONG");
          let batch =
            Serve.Client.submit_batch c ~tenant:"alice"
              (client_contracts contracts)
          in
          Alcotest.(check int) "all verdicts arrived" (List.length contracts)
            (List.length batch.Serve.Client.bt_verdicts);
          Alcotest.(check (list string)) "no errors" []
            (List.map fst batch.Serve.Client.bt_errors);
          List.iter
            (fun (_, kind, _) ->
              Alcotest.(check bool) "first run is fresh" true
                (kind = Serve.Wire.Fresh))
            batch.Serve.Client.bt_verdicts;
          (* streamed verdicts == batch campaign over the same bytes *)
          let serve_report =
            Campaign.Campaign.of_entries
              (List.map (fun (_, _, e) -> e) batch.Serve.Client.bt_verdicts)
          in
          let campaign_report = batch_campaign_report ~rounds contracts in
          Alcotest.(check string) "verdict parity with batch campaign"
            (Campaign.Campaign.verdicts_text campaign_report)
            (Campaign.Campaign.verdicts_text serve_report);
          Alcotest.(check string) "evidence parity with batch campaign"
            (Campaign.Campaign.evidence_text campaign_report)
            (Campaign.Campaign.evidence_text serve_report);
          (* sliced submissions: the slice count K must be invisible in
             the merged verdict — fresh tenants at K=2 and K=4 over the
             same bytes produce byte-identical reports, and agree with
             the unsliced run on every verdict flag (the round-space
             decomposition draws from different RNG streams, so raw
             counters may differ from the unsliced path) *)
          let sliced_report tenant slices =
            let b =
              Serve.Client.submit_batch c ~tenant ~slices
                (client_contracts contracts)
            in
            Alcotest.(check (list string))
              (Printf.sprintf "sliced K=%d: no errors" slices)
              []
              (List.map fst b.Serve.Client.bt_errors);
            Campaign.Campaign.of_entries
              (List.map (fun (_, _, e) -> e) b.Serve.Client.bt_verdicts)
          in
          let k2 = sliced_report "bob" 2 and k4 = sliced_report "carol" 4 in
          Alcotest.(check string) "K=2 and K=4 verdicts byte-identical"
            (Campaign.Campaign.verdicts_text k2)
            (Campaign.Campaign.verdicts_text k4);
          Alcotest.(check string) "K=2 and K=4 evidence byte-identical"
            (Campaign.Campaign.evidence_text k2)
            (Campaign.Campaign.evidence_text k4);
          Alcotest.(check string) "sliced flags match the unsliced run"
            (Campaign.Campaign.flags_text serve_report)
            (Campaign.Campaign.flags_text k4);
          (* resubmission replays from the journal without re-fuzzing *)
          let again =
            Serve.Client.submit_batch c ~tenant:"alice"
              (client_contracts contracts)
          in
          List.iter
            (fun (_, kind, _) ->
              Alcotest.(check bool) "second run is cached" true
                (kind = Serve.Wire.Cached))
            again.Serve.Client.bt_verdicts;
          (* per-tenant stats expose the latency histograms *)
          Serve.Client.send c (Serve.Wire.Stats "alice");
          (match Serve.Client.next c with
           | Serve.Wire.StatsReply
               {
                 rp_completed;
                 rp_submitted;
                 rp_latency;
                 rp_uptime_ms;
                 rp_backend;
                 _;
               } ->
               Alcotest.(check int) "stats completed" (List.length contracts)
                 rp_completed;
               Alcotest.(check int) "stats submitted counts cached replays"
                 (2 * List.length contracts)
                 rp_submitted;
               Alcotest.(check bool) "latency histogram populated" true
                 (contains ~sub:(Printf.sprintf "n:%d" (List.length contracts))
                    rp_latency);
               Alcotest.(check bool) "uptime is non-negative" true
                 (rp_uptime_ms >= 0);
               Alcotest.(check string) "backend is the configured one"
                 (Core.Exec_backend.to_string
                    cfg.Serve.Serve.sv_engine.Core.Engine.cfg_backend)
                 rp_backend
           | _ -> Alcotest.fail "expected STATS reply");
          (* METRICS returns a Prometheus exposition covering this tenant *)
          Serve.Client.send c Serve.Wire.Metrics;
          match Serve.Client.next c with
          | Serve.Wire.MetricsReply { rp_body } ->
              Alcotest.(check bool) "exposition names the tenant" true
                (contains ~sub:"wasai_tenant_completed_total{tenant=\"alice\"}"
                   rp_body);
              Alcotest.(check bool) "exposition covers telemetry stages" true
                (contains ~sub:"wasai_stage_seconds_total{stage=" rp_body);
              (* every non-comment line is `name[{labels}] value` *)
              List.iter
                (fun line ->
                  if line <> "" && line.[0] <> '#' then
                    match String.rindex_opt line ' ' with
                    | None ->
                        Alcotest.fail ("metric line without value: " ^ line)
                    | Some i -> (
                        let v =
                          String.sub line (i + 1) (String.length line - i - 1)
                        in
                        match float_of_string_opt v with
                        | Some f ->
                            Alcotest.(check bool) "metric value is finite" true
                              (Float.is_finite f)
                        | None ->
                            Alcotest.fail ("unparsable metric value: " ^ line)))
                (String.split_on_char '\n' rp_body)
          | _ -> Alcotest.fail "expected METRICS reply"))

let test_serve_backpressure () =
  let dir = scratch "busy" in
  let contracts = sample_contracts ~count:4 in
  let cfg =
    Serve.Serve.make_config ~root:(Filename.concat dir "root")
      ~socket:(Filename.concat dir "s.sock") ~jobs:1 ~depth:1
      ~engine:(engine 6) ()
  in
  with_daemon cfg (fun _ ->
      let c = connect_retry cfg.Serve.Serve.sv_socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          (* Fire every submission before reading a single reply: with
             depth=1 the first is queued and at least one later one must
             be refused with an explicit BUSY (admission is serialised
             in the I/O loop; fuzzing takes milliseconds, the
             submissions arrive microseconds apart). *)
          List.iter
            (fun (name, wasm, abi) ->
              Serve.Client.send c
                (Serve.Wire.Submit
                   {
                     rq_tenant = "alice";
                     rq_name = name;
                     rq_wasm = wasm;
                     rq_abi = Some abi;
                  rq_slices = 1;
                   }))
            contracts;
          (* one admission reply per submission (verdicts may
             interleave; count only admission replies) *)
          let queued = ref 0 and busy = ref 0 in
          let admissions = ref 0 in
          while !admissions < List.length contracts do
            match Serve.Client.next c with
            | Serve.Wire.Queued { rp_depth; _ } ->
                incr queued;
                incr admissions;
                Alcotest.(check bool) "depth bounded" true (rp_depth <= 1)
            | Serve.Wire.Busy { rp_retry_ms; _ } ->
                incr busy;
                incr admissions;
                Alcotest.(check bool) "retry hint positive" true
                  (rp_retry_ms >= 100)
            | Serve.Wire.Verdict _ -> ()
            | other ->
                Alcotest.fail
                  ("unexpected reply: " ^ Serve.Wire.line_of_response other)
          done;
          Alcotest.(check bool) "some submission admitted" true (!queued >= 1);
          Alcotest.(check bool) "saturated queue answered BUSY" true (!busy >= 1);
          (* the admitted raw submissions still stream their verdicts —
             drain them so they are not mistaken for batch replies *)
          for _ = 1 to !queued do
            match Serve.Client.next c with
            | Serve.Wire.Verdict _ -> ()
            | other ->
                Alcotest.fail
                  ("expected raw verdict, got "
                  ^ Serve.Wire.line_of_response other)
          done;
          (* the client-side retry loop eventually lands every target *)
          let batch =
            Serve.Client.submit_batch c ~tenant:"alice"
              (client_contracts contracts)
          in
          Alcotest.(check int) "retry loop completes the batch"
            (List.length contracts)
            (List.length batch.Serve.Client.bt_verdicts)))

(* ------------------------------------------------------------------ *)
(* Restart safety                                                      *)
(* ------------------------------------------------------------------ *)

let run_uninterrupted ~dir ~rounds contracts =
  let cfg =
    Serve.Serve.make_config ~root:(Filename.concat dir "root-uninterrupted")
      ~socket:(Filename.concat dir "u.sock") ~jobs:2 ~depth:16
      ~engine:(engine rounds) ()
  in
  with_daemon cfg (fun _ ->
      let c = connect_retry cfg.Serve.Serve.sv_socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          ignore
            (Serve.Client.submit_batch c ~tenant:"alice"
               (client_contracts contracts))));
  Serve.Serve.tenant_report ~root:cfg.Serve.Serve.sv_root
    ~engine:(engine rounds) "alice"

(* In-process kill -9: abort drops the queued backlog un-journaled, the
   resumed daemon replays the journal and re-fuzzes only the rest. *)
let test_abort_resume_identity () =
  let dir = scratch "abort" in
  let rounds = 6 in
  let contracts = sample_contracts ~count:6 in
  let reference = run_uninterrupted ~dir ~rounds contracts in
  let root = Filename.concat dir "root" in
  let socket = Filename.concat dir "s.sock" in
  let cfg =
    Serve.Serve.make_config ~root ~socket ~jobs:1 ~depth:16
      ~engine:(engine rounds) ()
  in
  (* phase 1: submit everything, abort after the first verdict *)
  let t = Serve.Serve.create cfg in
  let d = Domain.spawn (fun () -> Serve.Serve.serve t) in
  let c = connect_retry socket in
  List.iter
    (fun (name, wasm, abi) ->
      Serve.Client.send c
        (Serve.Wire.Submit
           { rq_tenant = "alice"; rq_name = name; rq_wasm = wasm; rq_abi = Some abi; rq_slices = 1 }))
    contracts;
  let rec await_first_verdict () =
    match Serve.Client.next c with
    | Serve.Wire.Verdict _ -> ()
    | _ -> await_first_verdict ()
  in
  await_first_verdict ();
  Serve.Serve.request_abort t;
  Domain.join d;
  Serve.Client.close c;
  let journaled =
    List.length
      (Serve.Serve.tenant_entries ~root ~engine:(engine rounds) "alice")
  in
  Alcotest.(check bool) "aborted mid-queue" true
    (journaled >= 1 && journaled < List.length contracts);
  (* phase 2: restart with resume, resubmit everything *)
  let cfg2 =
    Serve.Serve.make_config ~root ~socket ~jobs:2 ~depth:16 ~resume:true
      ~engine:(engine rounds) ()
  in
  with_daemon cfg2 (fun _ ->
      let c = connect_retry socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let batch =
            Serve.Client.submit_batch c ~tenant:"alice"
              (client_contracts contracts)
          in
          let cached =
            List.length
              (List.filter
                 (fun (_, k, _) -> k = Serve.Wire.Cached)
                 batch.Serve.Client.bt_verdicts)
          in
          Alcotest.(check int) "journaled targets replay from cache" journaled
            cached));
  let resumed =
    Serve.Serve.tenant_report ~root ~engine:(engine rounds) "alice"
  in
  Alcotest.(check string)
    "resumed report byte-identical to uninterrupted run" reference resumed

(* The real fork + SIGKILL variant lives in test_serve_kill.ml: OCaml 5
   forbids Unix.fork once any domain has been spawned, and the daemon
   tests above spawn domains in this process, so the kill test needs a
   process where the fork happens first. *)

(* A resumed daemon must reject journals stamped under a different
   engine configuration — Campaign.merge's validation discipline. *)
let test_resume_rejects_mismatched_stamp () =
  let dir = scratch "stamp" in
  let rounds = 6 in
  let contracts = sample_contracts ~count:1 in
  let root = Filename.concat dir "root" in
  let socket = Filename.concat dir "s.sock" in
  let cfg =
    Serve.Serve.make_config ~root ~socket ~jobs:1 ~depth:4
      ~engine:(engine rounds) ()
  in
  with_daemon cfg (fun _ ->
      let c = connect_retry socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          ignore
            (Serve.Client.submit_batch c ~tenant:"alice"
               (client_contracts contracts))));
  match
    Serve.Serve.create
      (Serve.Serve.make_config ~root ~socket ~jobs:1 ~depth:4 ~resume:true
         ~engine:(engine (rounds + 1)) ())
  with
  | _ -> Alcotest.fail "resume accepted a journal from a different budget"
  | exception Failure msg ->
      Alcotest.(check bool) "refuses to mix configurations" true
        (contains ~sub:"refusing to mix configurations" msg)

let () =
  Alcotest.run "wasai_serve"
    [
      ( "wire",
        [
          Alcotest.test_case "hex codec" `Quick test_wire_hex;
          Alcotest.test_case "tenant/target alphabets" `Quick test_wire_names;
          Alcotest.test_case "request roundtrip" `Quick
            test_wire_request_roundtrip;
          Alcotest.test_case "request strictness" `Quick
            test_wire_request_strict;
          Alcotest.test_case "response roundtrip (incl. verdict payload)"
            `Quick test_wire_response_roundtrip;
          Alcotest.test_case "response strictness" `Quick
            test_wire_response_strict;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "streamed verdicts = batch campaign; cache"
            `Quick test_serve_parity_and_cache;
          Alcotest.test_case "saturated queue answers BUSY" `Quick
            test_serve_backpressure;
        ] );
      ( "restart",
        [
          Alcotest.test_case "abort + resume byte-identity" `Quick
            test_abort_resume_identity;
          Alcotest.test_case "mismatched stamp rejected on resume" `Quick
            test_resume_rejects_mismatched_stamp;
        ] );
    ]
