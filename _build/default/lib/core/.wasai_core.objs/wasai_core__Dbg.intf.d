lib/core/dbg.mli: Database Name Wasai_eosio
