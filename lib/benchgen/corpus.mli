(** Benchmark corpora mirroring the paper's §4.2–§4.4 datasets, generated
    deterministically from a seed.  [scale] divides per-class counts
    while preserving composition. *)

module Wasm = Wasai_wasm
open Wasai_eosio

type sample = {
  smp_id : int;
  smp_class : Contracts.vuln;  (** the benchmark row this sample belongs to *)
  smp_truth : bool;  (** vulnerable with respect to its class *)
  smp_spec : Contracts.spec;
  smp_module : Wasm.Ast.module_;
  smp_abi : Abi.t;
}

val paper_counts : (Contracts.vuln * int) list
(** Table 4's per-class sample counts (254/1378/890/400/418). *)

val verification_counts : (Contracts.vuln * int) list
(** Table 6's counts (190/1178/756/400/400). *)

val extension_counts : (Contracts.vuln * int) list
(** Per-class counts of the related-work extension corpus
    (StateIo / FakeTransfer / AssetOverflow, 60 each). *)

val ground_truth : ?seed:int64 -> ?scale:int -> unit -> sample list
(** The Table-4 balanced benchmark. *)

val extension : ?seed:int64 -> ?scale:int -> unit -> sample list
(** The related-work extension benchmark: the three added classes, half
    vulnerable per class, generated from a separate RNG stream so the
    legacy corpora stay bit-identical. *)

val obfuscated : ?seed:int64 -> ?scale:int -> unit -> sample list
(** The Table-5 corpus: ground-truth samples after the obfuscator. *)

val verification : ?seed:int64 -> ?scale:int -> unit -> sample list
(** The Table-6 corpus: entry-injected verification chains. *)

val coverage_set : ?seed:int64 -> ?count:int -> unit -> sample list
(** The RQ1 coverage set: branch-rich contracts with milestone trees. *)
