;; The paper's Listing 4: a lottery whose reveal uses block-info
;; pseudo-randomness (tapos_block_prefix * tapos_block_num) and pays the
;; winner through an inline action — so the whole gamble sits inside the
;; caller's transaction and a losing bet can be reverted (Rollback), and
;; the "randomness" is attacker-predictable (BlockinfoDep).
;;
;; Assemble with:  wasai build listing4_rollback.wat listing4.wasm

(module
  (import "env" "read_action_data" (func (param i32 i32) (result i32)))
  (import "env" "action_data_size" (func (result i32)))
  (import "env" "send_inline" (func (param i32 i32)))
  (import "env" "eosio_assert" (func (param i32 i32)))
  (import "env" "tapos_block_prefix" (func (result i32)))
  (import "env" "tapos_block_num" (func (result i32)))
  (memory 2)
  (data (i32.const 2048) "revert\00")

  ;; reveal(self, from, to, quantity_ptr, memo_ptr) — Listing 4's body.
  (func $reveal (param i64 i64 i64 i32 i32)
    local.get 1
    local.get 0
    i64.eq
    (if (then return))
    ;; eosio_assert(quantity >= 10.0000 EOS, "revert")
    local.get 3
    i64.load
    i64.const 100000
    i64.ge_s
    i32.const 2048
    call 3
    ;; a = tapos_block_prefix() * tapos_block_num()
    call 4
    call 5
    i32.mul
    ;; if (a % 2) { pay double through an inline action }
    i32.const 2
    i32.rem_u
    (if
      (then
        i32.const 128
        i64.const 6138663591592764928   ;; eosio.token
        i64.store
        i32.const 136
        i64.const -3617168760277827584  ;; "transfer"
        i64.store
        i32.const 144
        i32.const 33
        i32.store
        i32.const 148
        local.get 0
        i64.store
        i32.const 156
        local.get 1
        i64.store
        i32.const 164
        local.get 3
        i64.load
        i64.const 1
        i64.shl                         ;; double or nothing
        i64.store
        i32.const 172
        local.get 3
        i64.load offset=8
        i64.store
        i32.const 180
        i32.const 0
        i32.store8
        i32.const 128
        i32.const 53
        call 2                          ;; send_inline — the Rollback bug
      )
    )
  )

  ;; apply(receiver, code, action): if (action == N(transfer)) run(reveal)
  (func $apply (param i64 i64 i64)
    local.get 2
    i64.const -3617168760277827584
    i64.eq
    (if
      (then
        i32.const 1024
        call 1
        call 0
        drop
        local.get 0
        i32.const 1024
        i64.load
        i32.const 1024
        i64.load offset=8
        i32.const 1040
        i32.const 1056
        call $reveal
      )
    )
  )

  (export "apply" (func $apply))
)
