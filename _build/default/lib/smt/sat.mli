(** CDCL SAT solver (MiniSat-style): two-literal watching, first-UIP
    conflict analysis, VSIDS branching and Luby restarts.  The conflict
    budget stands in for the paper's 3,000 ms per-query cap —
    deterministic, so experiments reproduce exactly.

    Literal encoding: variable [v] (0-based) has positive literal [2v] and
    negative literal [2v+1]. *)

type result = Sat | Unsat | Unknown

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val lit_of_var : int -> positive:bool -> int
val var_of_lit : int -> int
val neg : int -> int

val add_clause : t -> int list -> bool
(** Add a clause of literals; returns [false] if the instance is already
    unsatisfiable. *)

val solve : ?conflict_budget:int -> t -> result
(** Decide the instance; [Unknown] when the budget is exhausted. *)

val model_value : t -> int -> bool
(** Value of a variable in the satisfying assignment (after [solve]
    returned [Sat]; unassigned variables default to [false]). *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int
