lib/benchgen/verification.mli: Contracts Wasai_support Wasai_wasm
