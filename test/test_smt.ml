(* Tests for the SMT substrate: SAT solver, expression semantics,
   bit-blasting correctness against the evaluator, and the two-tier
   solver. *)

open Wasai_smt

(* ------------------------------------------------------------------ *)
(* SAT                                                                  *)
(* ------------------------------------------------------------------ *)

let lit v ~pos = Sat.lit_of_var v ~positive:pos

let test_sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  ignore (Sat.add_clause s [ lit a ~pos:true; lit b ~pos:true ]);
  ignore (Sat.add_clause s [ lit a ~pos:false ]);
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "a false" false (Sat.model_value s a);
  Alcotest.(check bool) "b true" true (Sat.model_value s b)

let test_sat_unsat () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  ignore (Sat.add_clause s [ lit a ~pos:true; lit b ~pos:true ]);
  ignore (Sat.add_clause s [ lit a ~pos:true; lit b ~pos:false ]);
  ignore (Sat.add_clause s [ lit a ~pos:false; lit b ~pos:true ]);
  ignore (Sat.add_clause s [ lit a ~pos:false; lit b ~pos:false ]);
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

(* Pigeonhole principle PHP(n+1, n): always unsat, needs real conflict
   analysis to finish quickly. *)
let pigeonhole n =
  let s = Sat.create () in
  let v = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Sat.new_var s)) in
  (* Every pigeon in some hole. *)
  for p = 0 to n do
    ignore
      (Sat.add_clause s (List.init n (fun h -> lit v.(p).(h) ~pos:true)))
  done;
  (* No two pigeons share a hole. *)
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        ignore
          (Sat.add_clause s [ lit v.(p1).(h) ~pos:false; lit v.(p2).(h) ~pos:false ])
      done
    done
  done;
  Sat.solve s

let test_sat_pigeonhole () =
  Alcotest.(check bool) "php(5,4) unsat" true (pigeonhole 4 = Sat.Unsat);
  Alcotest.(check bool) "php(7,6) unsat" true (pigeonhole 6 = Sat.Unsat)

(* Random 3-SAT near the phase transition: whatever the answer, a SAT
   answer must come with a genuine model. *)
let qcheck_random_3sat =
  QCheck.Test.make ~name:"random 3-SAT models are genuine" ~count:60
    QCheck.(pair (int_bound 1000000) (int_range 8 20))
    (fun (seed, nv) ->
      let rng = Wasai_support.Rand.create (Int64.of_int seed) in
      let s = Sat.create () in
      let vars = Array.init nv (fun _ -> Sat.new_var s) in
      let ncl = int_of_float (4.0 *. float_of_int nv) in
      let clauses = ref [] in
      for _ = 1 to ncl do
        let cl =
          List.init 3 (fun _ ->
              lit vars.(Wasai_support.Rand.int rng nv)
                ~pos:(Wasai_support.Rand.bool rng))
        in
        clauses := cl :: !clauses;
        ignore (Sat.add_clause s cl)
      done;
      match Sat.solve s with
      | Sat.Unsat | Sat.Unknown -> true
      | Sat.Sat ->
          List.for_all
            (fun cl ->
              List.exists
                (fun l ->
                  let v = Sat.var_of_lit l in
                  let positive = l land 1 = 0 in
                  Sat.model_value s v = positive)
                cl)
            !clauses)

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let test_expr_fold () =
  let open Expr in
  Alcotest.(check bool) "const fold add" true
    (binop Add (const 32 7L) (const 32 5L) = const 32 12L);
  Alcotest.(check bool) "mask wraps" true
    (binop Add (const 8 255L) (const 8 1L) = const 8 0L);
  Alcotest.(check bool) "eq fold" true (cmp Eq (const 64 3L) (const 64 3L) = true_);
  let v = var (fresh_var ~name:"x" 64) in
  Alcotest.(check bool) "x + 0 = x" true (binop Add v (const 64 0L) = v);
  Alcotest.(check bool) "x * 0 = 0" true (binop Mul v (const 64 0L) = const 64 0L);
  Alcotest.(check bool) "not not x = x" true (unop Not (unop Not v) = v)

let test_expr_invert_rules () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 in
  (* ((x + 5) == 12) folds to (x == 7). *)
  let e = cmp Eq (binop Add (var x) (const 64 5L)) (const 64 12L) in
  (match e.node with
   | Cmp (Eq, { node = Var v; _ }, { node = Const (_, 7L); _ }) ->
       Alcotest.(check int) "var preserved" x.vid v.vid
   | _ -> Alcotest.failf "unexpected shape: %s" (to_string e));
  (* ((x ^ c) == d) folds to (x == c^d). *)
  let e2 = cmp Eq (binop Xor (const 64 0xFFL) (var x)) (const 64 0x0FL) in
  match e2.node with
  | Cmp (Eq, { node = Var _; _ }, { node = Const (_, 0xF0L); _ }) -> ()
  | _ -> Alcotest.failf "unexpected shape: %s" (to_string e2)

let test_expr_signedness () =
  let open Expr in
  Alcotest.(check int64) "to_signed 8-bit" (-1L) (to_signed 8 255L);
  Alcotest.(check bool) "slt signed" true
    (cmp Slt (const 8 255L) (const 8 1L) = true_);
  Alcotest.(check bool) "ult unsigned" true
    (cmp Ult (const 8 1L) (const 8 255L) = true_)

let test_expr_popcnt_clz () =
  let open Expr in
  Alcotest.(check bool) "popcnt" true (unop Popcnt (const 64 0xF0F0L) = const 64 8L);
  Alcotest.(check bool) "clz 32" true (unop Clz (const 32 1L) = const 32 31L);
  Alcotest.(check bool) "ctz" true (unop Ctz (const 32 8L) = const 32 3L);
  Alcotest.(check bool) "clz 0" true (unop Clz (const 16 0L) = const 16 16L)

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                         *)
(* ------------------------------------------------------------------ *)

let test_hashcons_sharing () =
  let open Expr in
  let x = var (fresh_var ~name:"hx" 64) and y = var (fresh_var ~name:"hy" 64) in
  (* Commutative operands are canonically ordered, so both spellings
     intern to the same physical node. *)
  Alcotest.(check bool) "x+y == y+x physically" true
    (binop Add x y == binop Add y x);
  Alcotest.(check bool) "nested rebuilds share" true
    (binop Mul (binop Add x y) x == binop Mul (binop Add y x) x);
  Alcotest.(check bool) "hash agrees across spellings" true
    (hash (binop And x y) = hash (binop And y x));
  Alcotest.(check bool) "equal across spellings" true
    (equal (binop Or x y) (binop Or y x));
  (* Idempotence / annihilation folds. *)
  Alcotest.(check bool) "x & x = x" true (binop And x x == x);
  Alcotest.(check bool) "x | x = x" true (binop Or x x == x);
  Alcotest.(check bool) "x ^ x = 0" true (binop Xor x x == const 64 0L);
  Alcotest.(check bool) "x - x = 0" true (binop Sub x x == const 64 0L);
  Alcotest.(check bool) "x <= x reflexive" true (cmp Ule x x == true_);
  Alcotest.(check bool) "x < x irreflexive" true (cmp Ult x x == false_);
  Alcotest.(check bool) "double negation" true (unop Not (unop Not x) == x)

(* Property: building an expression through the interning, normalizing
   smart constructors never changes its concrete semantics.  The naive
   side is a plain ADT tree evaluated directly with [eval_unop] & co.;
   the hash-consed side goes through every rewrite rule and the memoized
   DAG evaluator. *)
type ntree =
  | N_x
  | N_y
  | N_const of int64
  | N_unop of Expr.unop * ntree
  | N_binop of Expr.binop * ntree * ntree
  | N_ite of ntree * ntree * ntree  (** ite (c <u a) a b, as in [gen_expr] *)

let all_binops =
  Expr.
    [
      Add; Sub; Mul; And; Or; Xor; Shl; Lshr; Ashr; Udiv; Urem; Sdiv; Srem;
      Rotl; Rotr;
    ]

let all_unops = Expr.[ Not; Neg; Popcnt; Clz; Ctz ]

let gen_ntree =
  let open QCheck.Gen in
  fix
    (fun self n ->
      if n <= 0 then
        oneof
          [ return N_x; return N_y; map (fun v -> N_const (Int64.of_int v)) int ]
      else
        frequency
          [
            (1, return N_x);
            (1, return N_y);
            ( 4,
              map3
                (fun op a b -> N_binop (op, a, b))
                (oneofl all_binops) (self (n / 2)) (self (n / 2)) );
            ( 2,
              map2 (fun op a -> N_unop (op, a)) (oneofl all_unops)
                (self (n - 1)) );
            ( 1,
              map3
                (fun c a b -> N_ite (c, a, b))
                (self (n / 2)) (self (n / 2)) (self (n / 2)) );
          ])
    4

let rec build_expr width x y = function
  | N_x -> Expr.var x
  | N_y -> Expr.var y
  | N_const c -> Expr.const width c
  | N_unop (op, a) -> Expr.unop op (build_expr width x y a)
  | N_binop (op, a, b) ->
      Expr.binop op (build_expr width x y a) (build_expr width x y b)
  | N_ite (c, a, b) ->
      let c = build_expr width x y c
      and a = build_expr width x y a
      and b = build_expr width x y b in
      Expr.ite (Expr.cmp Expr.Ult c a) a b

let rec naive_eval width xv yv = function
  | N_x -> Expr.mask width xv
  | N_y -> Expr.mask width yv
  | N_const c -> Expr.mask width c
  | N_unop (op, a) -> Expr.eval_unop width op (naive_eval width xv yv a)
  | N_binop (op, a, b) ->
      Expr.eval_binop width op (naive_eval width xv yv a)
        (naive_eval width xv yv b)
  | N_ite (c, a, b) ->
      let cv = naive_eval width xv yv c and av = naive_eval width xv yv a in
      if Expr.eval_cmp width Expr.Ult cv av then av
      else naive_eval width xv yv b

let qcheck_hashcons_eval_identity width =
  let x = Expr.fresh_var ~name:"nx" width in
  let y = Expr.fresh_var ~name:"ny" width in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "hash-consed normal form = naive tree (width %d)" width)
    ~count:400
    (QCheck.make
       QCheck.Gen.(
         triple gen_ntree (map Int64.of_int int) (map Int64.of_int int)))
    (fun (t, xv, yv) ->
      let e = build_expr width x y t in
      let env = Hashtbl.create 4 in
      Hashtbl.replace env x.Expr.vid xv;
      Hashtbl.replace env y.Expr.vid yv;
      Expr.eval env e = naive_eval width xv yv t)

(* ------------------------------------------------------------------ *)
(* Bit-blasting vs. evaluator                                           *)
(* ------------------------------------------------------------------ *)

(* Generate random expressions over two variables. *)
let gen_expr width =
  let open QCheck.Gen in
  let binops =
    Expr.
      [
        Add; Sub; Mul; And; Or; Xor; Shl; Lshr; Ashr; Udiv; Urem; Sdiv; Srem;
        Rotl; Rotr;
      ]
  in
  let unops = Expr.[ Not; Neg; Popcnt; Clz; Ctz ] in
  fun (x : Expr.var) (y : Expr.var) ->
    fix
      (fun self n ->
        if n <= 0 then
          oneof
            [
              return (Expr.var x);
              return (Expr.var y);
              map (fun v -> Expr.const width (Int64.of_int v)) int;
            ]
        else
          frequency
            [
              (1, return (Expr.var x));
              (1, return (Expr.var y));
              ( 4,
                map3
                  (fun op a b -> Expr.binop op a b)
                  (oneofl binops) (self (n / 2)) (self (n / 2)) );
              ( 2,
                map2 (fun op a -> Expr.unop op a) (oneofl unops) (self (n - 1)) );
              ( 1,
                map3
                  (fun c a b -> Expr.ite (Expr.cmp Expr.Ult c a) a b)
                  (self (n / 2)) (self (n / 2)) (self (n / 2)) );
            ])
      4

let blast_agrees_with_eval ?(count = 150) width =
  let x = Expr.fresh_var ~name:"x" width in
  let y = Expr.fresh_var ~name:"y" width in
  let gen =
    QCheck.Gen.(
      triple (gen_expr width x y) (map Int64.of_int int) (map Int64.of_int int))
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "bitblast = eval (width %d)" width)
    ~count
    (QCheck.make gen ~print:(fun (e, a, b) ->
         Printf.sprintf "%s with x=%Ld y=%Ld" (Expr.to_string e) a b))
    (fun (e, xv, yv) ->
      let env = Hashtbl.create 4 in
      Hashtbl.replace env x.Expr.vid xv;
      Hashtbl.replace env y.Expr.vid yv;
      let expected = Expr.eval env e in
      (* Pin x and y, assert e == expected: must be SAT. *)
      let pin =
        Expr.
          [
            cmp Eq (var x) (const width xv);
            cmp Eq (var y) (const width yv);
          ]
      in
      let c_eq = Expr.cmp Expr.Eq e (Expr.const width expected) in
      let ctx = Bitblast.create () in
      List.iter (Bitblast.assert_true ctx) (c_eq :: pin);
      match Sat.solve ctx.Bitblast.sat with
      | Sat.Sat -> (
          (* And e != expected must be UNSAT. *)
          let ctx2 = Bitblast.create () in
          List.iter (Bitblast.assert_true ctx2)
            (Expr.not_ c_eq :: pin);
          match Sat.solve ctx2.Bitblast.sat with
          | Sat.Unsat -> true
          | _ -> false)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Solver                                                               *)
(* ------------------------------------------------------------------ *)

let test_solver_quick_path () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 and y = fresh_var ~name:"y" 64 in
  let session = Solver.Session.create () in
  (match
     Solver.check ~session
       [
         cmp Eq (var x) (const 64 42L);
         cmp Eq (binop Add (var y) (const 64 1L)) (const 64 100L);
       ]
   with
  | Solver.Sat m ->
      Alcotest.(check int64) "x" 42L (Hashtbl.find m x.vid);
      Alcotest.(check int64) "y" 99L (Hashtbl.find m y.vid)
  | _ -> Alcotest.fail "expected sat");
  let st = Solver.Session.stats session in
  Alcotest.(check int) "went through quick path" 1 st.Solver.st_quick;
  Alcotest.(check int) "no blasting" 0 st.Solver.st_blasted

let test_solver_blast_path () =
  let open Expr in
  let x = fresh_var ~name:"x" 32 in
  (* popcnt(x) == 17 and x < 2^20: genuinely needs the circuit. *)
  match
    Solver.check
      [
        cmp Eq (unop Popcnt (var x)) (const 32 17L);
        cmp Ult (var x) (const 32 0x100000L);
      ]
  with
  | Solver.Sat m ->
      let xv = Hashtbl.find m x.vid in
      let pc = Expr.eval_unop 32 Expr.Popcnt xv in
      Alcotest.(check int64) "model has 17 bits set" 17L pc;
      Alcotest.(check bool) "bound respected" true
        (Int64.unsigned_compare (Expr.mask 32 xv) 0x100000L < 0)
  | _ -> Alcotest.fail "expected sat"

let test_solver_mul_equation () =
  let open Expr in
  let x = fresh_var ~name:"x" 16 in
  match
    Solver.check [ cmp Eq (binop Mul (var x) (const 16 3L)) (const 16 21L) ]
  with
  | Solver.Sat m ->
      let xv = Expr.mask 16 (Hashtbl.find m x.vid) in
      Alcotest.(check int64) "3x = 21 (mod 2^16)" 21L
        (Expr.mask 16 (Int64.mul xv 3L))
  | _ -> Alcotest.fail "expected sat"

let test_solver_unsat () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 in
  match
    Solver.check
      [
        cmp Ult (var x) (const 64 2L);
        cmp Ult (const 64 5L) (var x);
      ]
  with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solver_conflicting_equalities () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 in
  match
    Solver.check [ cmp Eq (var x) (const 64 1L); cmp Eq (var x) (const 64 2L) ]
  with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat via quick path contradiction"

let test_solver_budget_unknown () =
  let open Expr in
  (* A 24-bit factoring-flavoured instance with a conflict budget of 1
     should exhaust. *)
  let x = fresh_var ~name:"x" 24 and y = fresh_var ~name:"y" 24 in
  let product = binop Mul (var x) (var y) in
  let r =
    Solver.check ~conflict_budget:1
      [
        cmp Eq product (const 24 (Int64.of_int 0x7F4C2D));
        cmp Ult (const 24 1L) (var x);
        cmp Ult (const 24 1L) (var y);
      ]
  in
  match r with
  | Solver.Unknown -> ()
  | Solver.Sat _ -> ()  (* found before first conflict: acceptable *)
  | Solver.Unsat -> Alcotest.fail "cannot be unsat before exploring"

let test_solver_popcount_unsat () =
  let open Expr in
  (* No 32-bit value has 33 set bits. *)
  let x = fresh_var ~name:"x" 32 in
  match Solver.check [ cmp Eq (unop Popcnt (var x)) (const 32 33L) ] with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solver_division_semantics () =
  let open Expr in
  (* x / 0 is all-ones in our semantics: (x udiv 0) == 2^16-1 must be SAT
     for every x, and == 0 must be UNSAT. *)
  let x = fresh_var ~name:"x" 16 in
  (match
     Solver.check
       [ cmp Eq (binop Udiv (var x) (const 16 0L)) (const 16 0xFFFFL) ]
   with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "div-by-zero convention should be satisfiable");
  match
    Solver.check [ cmp Eq (binop Udiv (var x) (const 16 0L)) (const 16 0L) ]
  with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_validate_model () =
  let open Expr in
  let x = fresh_var ~name:"x" 64 in
  let cs = [ cmp Eq (var x) (const 64 9L) ] in
  let good = Hashtbl.create 1 in
  Hashtbl.replace good x.vid 9L;
  let bad = Hashtbl.create 1 in
  Hashtbl.replace bad x.vid 8L;
  Alcotest.(check bool) "good model" true (Solver.validate_model cs good);
  Alcotest.(check bool) "bad model" false (Solver.validate_model cs bad)

let qcheck_solver_models_validate =
  QCheck.Test.make ~name:"solver models satisfy constraints" ~count:100
    QCheck.(pair (int_bound 10_000) (int_bound 255))
    (fun (a, b) ->
      let open Expr in
      let x = fresh_var ~name:"x" 32 in
      let cs =
        [
          cmp Eq
            (binop And (var x) (const 32 0xFFL))
            (const 32 (Int64.of_int b));
          cmp Ule (const 32 (Int64.of_int a)) (var x);
        ]
      in
      match Solver.check cs with
      | Solver.Sat m -> Solver.validate_model cs m
      | Solver.Unsat -> false (* always satisfiable *)
      | Solver.Unknown -> true)

(* ------------------------------------------------------------------ *)
(* Session cache                                                        *)
(* ------------------------------------------------------------------ *)

let verdict_of cs = function
  | Solver.Sat m -> `Sat (Solver.validate_model cs m)
  | Solver.Unsat -> `Unsat
  | Solver.Unknown -> `Unknown

(* The cache must be a pure memoization: verdicts identical with the
   cache on (hits included), off (capacity 0), and absent (no session). *)
let qcheck_cache_verdict_identity =
  QCheck.Test.make ~name:"Solver.check verdicts identical cache on/off"
    ~count:80
    QCheck.(pair (int_bound 0xFFFF) (int_bound 255))
    (fun (a, b) ->
      let open Expr in
      let x = fresh_var ~name:"cx" 16 in
      let sets =
        [
          [
            cmp Eq
              (binop And (var x) (const 16 0xFFL))
              (const 16 (Int64.of_int b));
            cmp Ule (const 16 (Int64.of_int a)) (var x);
          ];
          [ cmp Eq (binop Mul (var x) (const 16 5L)) (const 16 (Int64.of_int b)) ];
        ]
      in
      let cached = Solver.Session.create () in
      let uncached = Solver.Session.create ~cache_capacity:0 () in
      List.for_all
        (fun cs ->
          let plain = verdict_of cs (Solver.check cs) in
          let off = verdict_of cs (Solver.check ~session:uncached cs) in
          let on1 = verdict_of cs (Solver.check ~session:cached cs) in
          let on2 = verdict_of cs (Solver.check ~session:cached cs) in
          plain = off && off = on1 && on1 = on2)
        sets
      && (Solver.Session.stats cached).Solver.st_cache_hits > 0
      && (Solver.Session.stats uncached).Solver.st_cache_hits = 0)

let test_session_counters_and_lru () =
  let open Expr in
  let x = fresh_var ~name:"lx" 64 in
  let q i = [ cmp Eq (var x) (const 64 (Int64.of_int i)) ] in
  let s = Solver.Session.create ~cache_capacity:2 () in
  ignore (Solver.check ~session:s (q 1)); (* miss, quick *)
  ignore (Solver.check ~session:s (q 1)); (* hit *)
  ignore (Solver.check ~session:s (q 2)); (* miss, quick *)
  (* The cache is now full with q1 and q2; q1's last touch (its hit)
     predates q2's insert, so q1 is the LRU victim of the next insert. *)
  ignore (Solver.check ~session:s (q 3)); (* miss, evicts q1 *)
  ignore (Solver.check ~session:s (q 2)); (* hit: q2 survived *)
  ignore (Solver.check ~session:s (q 1)); (* miss: q1 was evicted *)
  let st = Solver.Session.stats s in
  Alcotest.(check int) "hits" 2 st.Solver.st_cache_hits;
  Alcotest.(check int) "misses" 4 st.Solver.st_cache_misses;
  Alcotest.(check int) "quick solves" 4 st.Solver.st_quick

let test_session_never_caches_unknown () =
  let open Expr in
  let x = fresh_var ~name:"ux" 24 and y = fresh_var ~name:"uy" 24 in
  let cs =
    [
      cmp Eq (binop Mul (var x) (var y)) (const 24 (Int64.of_int 0x7F4C2D));
      cmp Ult (const 24 1L) (var x);
      cmp Ult (const 24 1L) (var y);
    ]
  in
  let s = Solver.Session.create ~conflict_budget:1 () in
  match Solver.check ~session:s cs with
  | Solver.Unknown ->
      (* Unknown is a budget artefact: re-asking must miss again, so a
         later query under a bigger budget could still decide the set. *)
      ignore (Solver.check ~session:s cs);
      let st = Solver.Session.stats s in
      Alcotest.(check int) "no hits on unknown" 0 st.Solver.st_cache_hits;
      Alcotest.(check int) "both misses" 2 st.Solver.st_cache_misses
  | Solver.Sat _ -> () (* decided before the first conflict: acceptable *)
  | Solver.Unsat -> Alcotest.fail "cannot be unsat before exploring"

(* The engine's adaptive retuning halves and doubles the session budget
   mid-run: the accessor pair must round-trip any positive value and
   reject the degenerate ones. *)
let test_session_budget_roundtrip () =
  let s = Solver.Session.create ~conflict_budget:20_000 () in
  Alcotest.(check int) "initial" 20_000 (Solver.Session.conflict_budget s);
  Solver.Session.set_conflict_budget s 1_250;
  Alcotest.(check int) "halved repeatedly" 1_250
    (Solver.Session.conflict_budget s);
  Solver.Session.set_conflict_budget s 80_000;
  Alcotest.(check int) "doubled past the default" 80_000
    (Solver.Session.conflict_budget s);
  (match Solver.Session.set_conflict_budget s 0 with
   | () -> Alcotest.fail "budget 0 accepted"
   | exception Invalid_argument _ -> ());
  Alcotest.(check int) "rejected set leaves budget unchanged" 80_000
    (Solver.Session.conflict_budget s)

let test_session_budget_precedence () =
  let open Expr in
  let x = fresh_var ~name:"bx" 24 and y = fresh_var ~name:"by" 24 in
  let cs =
    [
      cmp Eq (binop Mul (var x) (var y)) (const 24 (Int64.of_int 0x5E3F71));
      cmp Ult (const 24 1L) (var x);
      cmp Ult (const 24 1L) (var y);
    ]
  in
  (* An explicit per-call budget overrides the session's: a starvation
     budget of 1 must exhaust even though the session carries the
     (ample) default. *)
  let s = Solver.Session.create ~cache_capacity:0 () in
  match Solver.check ~session:s ~conflict_budget:1 cs with
  | Solver.Unknown -> ()
  | Solver.Sat _ -> () (* decided before the first conflict: acceptable *)
  | Solver.Unsat -> Alcotest.fail "cannot be unsat before exploring"

(* Unsat subset subsumption: once an Unsat constraint set is cached, any
   superset query is refuted without solving — a conjunction only grows
   stronger.  Sat entries must never subsume, and subsumed queries are
   never themselves inserted. *)
let test_session_unsat_subsumption () =
  let open Expr in
  let x = fresh_var ~name:"sx" 32 and y = fresh_var ~name:"sy" 32 in
  let c1 = cmp Eq (var x) (const 32 1L) in
  let c2 = cmp Eq (var x) (const 32 2L) in
  let c3 = cmp Eq (var y) (const 32 3L) in
  let s = Solver.Session.create () in
  (match Solver.check ~session:s [ c1; c2 ] with
   | Solver.Unsat -> ()
   | _ -> Alcotest.fail "core not unsat");
  Alcotest.(check int) "no subsumption yet" 0 (Solver.Session.subsumed s);
  (match Solver.check ~session:s [ c1; c2; c3 ] with
   | Solver.Unsat -> ()
   | _ -> Alcotest.fail "superset not unsat");
  Alcotest.(check int) "answered by subsumption" 1 (Solver.Session.subsumed s);
  let st = Solver.Session.stats s in
  Alcotest.(check int) "subsumption counts as a hit" 1 st.Solver.st_cache_hits;
  Alcotest.(check int) "only the core missed" 1 st.Solver.st_cache_misses;
  (* Subsumed queries are not inserted: re-asking subsumes again instead
     of hitting an exact entry. *)
  (match Solver.check ~session:s [ c1; c2; c3 ] with
   | Solver.Unsat -> ()
   | _ -> Alcotest.fail "superset not unsat on re-ask");
  Alcotest.(check int) "subsumed again, no insert" 2 (Solver.Session.subsumed s);
  (* A cached Sat set must never refute its supersets. *)
  let s2 = Solver.Session.create () in
  (match Solver.check ~session:s2 [ c1 ] with
   | Solver.Sat _ -> ()
   | _ -> Alcotest.fail "singleton not sat");
  (match Solver.check ~session:s2 [ c1; c3 ] with
   | Solver.Sat _ -> ()
   | _ -> Alcotest.fail "sat superset mis-refuted");
  Alcotest.(check int) "sat entries never subsume" 0 (Solver.Session.subsumed s2)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "wasai_smt"
    [
      ( "sat",
        [
          Alcotest.test_case "basic" `Quick test_sat_basic;
          Alcotest.test_case "unsat" `Quick test_sat_unsat;
          Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
          qc qcheck_random_3sat;
        ] );
      ( "expr",
        [
          Alcotest.test_case "constant folding" `Quick test_expr_fold;
          Alcotest.test_case "inversion rules" `Quick test_expr_invert_rules;
          Alcotest.test_case "signedness" `Quick test_expr_signedness;
          Alcotest.test_case "popcnt/clz/ctz" `Quick test_expr_popcnt_clz;
        ] );
      ( "hashcons",
        [
          Alcotest.test_case "physical sharing" `Quick test_hashcons_sharing;
          qc (qcheck_hashcons_eval_identity 8);
          qc (qcheck_hashcons_eval_identity 32);
          qc (qcheck_hashcons_eval_identity 64);
        ] );
      ( "bitblast",
        [
          qc (blast_agrees_with_eval 8);
          qc (blast_agrees_with_eval 16);
          qc (blast_agrees_with_eval 32);
          qc (blast_agrees_with_eval ~count:15 64);
          Alcotest.test_case "width-1 booleans blast" `Quick (fun () ->
              let open Expr in
              let p = fresh_var ~name:"p" 1 and q = fresh_var ~name:"q" 1 in
              (* p && !q, q == 0: satisfiable with p=1,q=0. *)
              match
                Solver.check
                  [
                    and_ (var p) (not_ (var q));
                    cmp Eq (var q) (const 1 0L);
                  ]
              with
              | Solver.Sat m ->
                  Alcotest.(check int64) "p" 1L (Hashtbl.find m p.vid)
              | _ -> Alcotest.fail "expected sat");
        ] );
      ( "solver",
        [
          Alcotest.test_case "quick path" `Quick test_solver_quick_path;
          Alcotest.test_case "popcount via blast" `Quick test_solver_blast_path;
          Alcotest.test_case "mul equation" `Quick test_solver_mul_equation;
          Alcotest.test_case "unsat interval" `Quick test_solver_unsat;
          Alcotest.test_case "conflicting equalities" `Quick
            test_solver_conflicting_equalities;
          Alcotest.test_case "budget => unknown" `Quick test_solver_budget_unknown;
          Alcotest.test_case "popcount unsat" `Quick test_solver_popcount_unsat;
          Alcotest.test_case "division semantics" `Quick
            test_solver_division_semantics;
          Alcotest.test_case "validate_model" `Quick test_validate_model;
          qc qcheck_solver_models_validate;
        ] );
      ( "session",
        [
          qc qcheck_cache_verdict_identity;
          Alcotest.test_case "counters and LRU eviction" `Quick
            test_session_counters_and_lru;
          Alcotest.test_case "unknown never cached" `Quick
            test_session_never_caches_unknown;
          Alcotest.test_case "explicit budget wins" `Quick
            test_session_budget_precedence;
          Alcotest.test_case "budget accessor round-trip" `Quick
            test_session_budget_roundtrip;
          Alcotest.test_case "unsat subset subsumption" `Quick
            test_session_unsat_subsumption;
        ] );
    ]
