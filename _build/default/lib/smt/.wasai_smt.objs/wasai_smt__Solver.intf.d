lib/smt/solver.mli: Expr Hashtbl
