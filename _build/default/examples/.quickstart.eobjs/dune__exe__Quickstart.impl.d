examples/quickstart.ml: Array List Name Printf String Wasai_benchgen Wasai_core Wasai_eosio Wasai_wasm
