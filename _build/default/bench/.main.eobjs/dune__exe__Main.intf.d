bench/main.mli:
