(** Binary-classification metrics used by every evaluation table. *)

type confusion = {
  mutable tp : int;
  mutable fp : int;
  mutable tn : int;
  mutable fn : int;
}

let empty () = { tp = 0; fp = 0; tn = 0; fn = 0 }

let record c ~truth ~predicted =
  match (truth, predicted) with
  | true, true -> c.tp <- c.tp + 1
  | false, true -> c.fp <- c.fp + 1
  | false, false -> c.tn <- c.tn + 1
  | true, false -> c.fn <- c.fn + 1

let merge a b =
  { tp = a.tp + b.tp; fp = a.fp + b.fp; tn = a.tn + b.tn; fn = a.fn + b.fn }

let total c = c.tp + c.fp + c.tn + c.fn

let precision c =
  if c.tp + c.fp = 0 then 0.0 else float_of_int c.tp /. float_of_int (c.tp + c.fp)

let recall c =
  if c.tp + c.fn = 0 then 0.0 else float_of_int c.tp /. float_of_int (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let pct x = 100.0 *. x

(** "100%" / "98.4%" style rendering used in the paper's tables. *)
let pct_string x =
  let v = pct x in
  if Float.abs (v -. Float.round v) < 0.05 then Printf.sprintf "%.0f%%" v
  else Printf.sprintf "%.1f%%" v

let row_string c =
  Printf.sprintf "P=%s R=%s F1=%s" (pct_string (precision c))
    (pct_string (recall c)) (pct_string (f1 c))

(** "hits/total (rate%)" rendering for cache-style counters; "0/0" when
    nothing was counted. *)
let rate_string ~hits ~total =
  if total <= 0 then Printf.sprintf "%d/%d" hits total
  else
    Printf.sprintf "%d/%d (%s)" hits total
      (pct_string (float_of_int hits /. float_of_int total))

(** Fixed-bucket latency histogram used by the campaign orchestrator to
    report per-target latency percentiles.  Buckets are geometric powers
    of two over seconds, from 100 µs up to ~100 s, so merging histograms
    from different workers is exact (identical bounds everywhere). *)
module Histogram = struct
  let bucket_base = 1e-4 (* seconds *)
  let bucket_count = 21 (* last finite bound: 1e-4 * 2^20 ≈ 105 s *)

  (* Upper bound of bucket [i]; samples above the last bound land in the
     overflow bucket. *)
  let bound i = bucket_base *. (2.0 ** float_of_int (i + 1))

  type t = {
    counts : int array;  (** [bucket_count] finite buckets + 1 overflow *)
    mutable n : int;
    mutable sum : float;
    mutable max : float;
  }

  let create () =
    { counts = Array.make (bucket_count + 1) 0; n = 0; sum = 0.0; max = 0.0 }

  let bucket_of (v : float) =
    let rec find i =
      if i >= bucket_count then bucket_count
      else if v <= bound i then i
      else find (i + 1)
    in
    find 0

  let add t (v : float) =
    let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
    let i = bucket_of v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v > t.max then t.max <- v

  let count t = t.n
  let sum t = t.sum
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  (** Per-bucket (upper bound, count) pairs, overflow last with an
      infinite bound — the exact shape a Prometheus [le]-labelled
      exposition needs (cumulated by the renderer). *)
  let buckets t =
    Array.to_list
      (Array.mapi
         (fun i c ->
           ((if i >= bucket_count then Float.infinity else bound i), c))
         t.counts)

  (** Exact merge: bucket bounds are identical across instances. *)
  let merge a b =
    let t = create () in
    Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
    t.n <- a.n + b.n;
    t.sum <- a.sum +. b.sum;
    t.max <- Float.max a.max b.max;
    t

  (** [percentile t p] is an upper bound on the [p]-th percentile sample
      ([p] in [0,100]): the bound of the first bucket whose cumulative
      count reaches the rank.  The overflow bucket reports the observed
      maximum. *)
  let percentile t (p : float) =
    if t.n = 0 then 0.0
    else begin
      let p = Float.min 100.0 (Float.max 0.0 p) in
      let rank =
        let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
        if r < 1 then 1 else r
      in
      let rec walk i acc =
        if i > bucket_count then t.max
        else
          let acc = acc + t.counts.(i) in
          if acc >= rank then
            if i = bucket_count then t.max else Float.min (bound i) t.max
          else walk (i + 1) acc
      in
      walk 0 0
    end

  (* Compact single-token rendering for wire protocols: no spaces or
     tabs, so it can ride inside a tab-separated grammar field. *)
  let to_wire t =
    Printf.sprintf "n:%d,mean:%.6f,p50:%.6f,p90:%.6f,p99:%.6f,max:%.6f" t.n
      (mean t) (percentile t 50.0) (percentile t 90.0) (percentile t 99.0)
      t.max

  let to_string t =
    if t.n = 0 then "latency: no samples"
    else
      Printf.sprintf
        "latency: n=%d mean=%.4fs p50<=%.4fs p90<=%.4fs p99<=%.4fs max=%.4fs"
        t.n (mean t) (percentile t 50.0) (percentile t 90.0)
        (percentile t 99.0) t.max
end
