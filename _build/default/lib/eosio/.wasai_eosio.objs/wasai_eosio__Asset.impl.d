lib/eosio/asset.ml: Buffer Char Format Int64 Printf String
