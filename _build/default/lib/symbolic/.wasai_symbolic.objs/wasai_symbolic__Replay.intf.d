lib/symbolic/replay.mli: Convention Memmodel Wasai_smt Wasai_wasabi
