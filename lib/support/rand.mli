(** Deterministic splitmix64 pseudo-random generator.

    All corpus generation and fuzzing randomness flows through this module
    so experiments are exactly reproducible from a seed. *)

type t

val create : int64 -> t
(** Generator seeded with the given value. *)

val next_u64 : t -> int64
(** Next raw 64-bit value. *)

val split : t -> t
(** Independent child generator. *)

val next_i32 : t -> int32

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val bool : t -> bool

val flip : t -> p:float -> bool
(** Biased coin: [true] with probability [p]. *)

val choose : t -> 'a list -> 'a
val choose_arr : t -> 'a array -> 'a

val shuffle : t -> 'a array -> 'a array
(** Fisher-Yates shuffle; returns a fresh array. *)

val eosio_name_string : t -> int -> string
(** Random identifier drawn from the EOSIO name alphabet (no dots). *)

val ascii_string : t -> int -> string
(** Random printable ASCII string. *)

val mix : int64 -> int64 -> int64
(** [mix root id] deterministically combines a root seed with a 64-bit
    identity (e.g. an EOSIO account name) into a well-mixed derived seed.
    Depends only on the pair — not on call order — so parallel and serial
    schedules derive identical per-target seeds. *)

val mix3 : int64 -> int64 -> int64 -> int64
(** [mix3 root id idx] extends {!mix} with a third component, used to
    derive the disjoint per-cell RNG streams of a partitioned round
    budget: the seed depends only on the triple (never on which worker,
    slice grouping or schedule runs the cell), which is what makes a
    K-way sliced run merge to the same result as any other K'. *)
