lib/core/scanner.mli: Abi Name Wasai_eosio Wasai_wasabi Wasai_wasm
