(** Crash-safe append-only journal of completed campaign targets.

    Line format — tab-separated, fixed field order:

    {v
    wasai-journal-v1 <name> <flags> branches=N rounds=N seeds=N
      adaptive=N tx=N sat=N imprecise=N elapsed=F
      [solver=q:N,b:N,u:N,h:N,m:N]
    v}

    where [<flags>] is [FakeEOS=0,FakeNotif=1,...] covering exactly
    {!Core.Scanner.all_flags} in order.  The trailing [solver=] field is
    the v2 extension carrying per-target solver/cache counters; writers
    always emit it, while the parser accepts plain v1 lines (no 12th
    field — counters read as zero) so old journals still resume.
    Parsing is otherwise strict: wrong magic, wrong field count, unknown
    keys, out-of-order flags or unparseable numbers all reject the line
    (so a line torn by a crash is reported, not skipped). *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver

type entry = {
  je_name : string;
  je_flags : (Core.Scanner.flag * bool) list;
  je_branches : int;
  je_rounds : int;
  je_seeds_total : int;
  je_adaptive_seeds : int;
  je_transactions : int;
  je_solver_sat : int;
  je_imprecise : int;
  je_elapsed : float;
  je_solver : Solver.stats;
}

let magic = "wasai-journal-v1"

let of_outcome ~name ~elapsed (o : Core.Engine.outcome) =
  {
    je_name = name;
    (* Normalise to the canonical flag order so journal lines and report
       text never depend on scanner-internal ordering. *)
    je_flags =
      List.map
        (fun f ->
          (f, match List.assoc_opt f o.Core.Engine.out_flags with
              | Some b -> b
              | None -> false))
        Core.Scanner.all_flags;
    je_branches = o.Core.Engine.out_branches;
    je_rounds = o.Core.Engine.out_rounds;
    je_seeds_total = o.Core.Engine.out_seeds_total;
    je_adaptive_seeds = o.Core.Engine.out_adaptive_seeds;
    je_transactions = o.Core.Engine.out_transactions;
    je_solver_sat = o.Core.Engine.out_solver_sat;
    je_imprecise = o.Core.Engine.out_imprecise;
    je_elapsed = elapsed;
    je_solver = o.Core.Engine.out_solver;
  }

let line_of_entry (e : entry) =
  let flags =
    String.concat ","
      (List.map
         (fun (f, b) ->
           Printf.sprintf "%s=%d" (Core.Scanner.string_of_flag f)
             (if b then 1 else 0))
         e.je_flags)
  in
  String.concat "\t"
    [
      magic; e.je_name; flags;
      Printf.sprintf "branches=%d" e.je_branches;
      Printf.sprintf "rounds=%d" e.je_rounds;
      Printf.sprintf "seeds=%d" e.je_seeds_total;
      Printf.sprintf "adaptive=%d" e.je_adaptive_seeds;
      Printf.sprintf "tx=%d" e.je_transactions;
      Printf.sprintf "sat=%d" e.je_solver_sat;
      Printf.sprintf "imprecise=%d" e.je_imprecise;
      Printf.sprintf "elapsed=%.6f" e.je_elapsed;
      Printf.sprintf "solver=q:%d,b:%d,u:%d,h:%d,m:%d"
        e.je_solver.Solver.st_quick e.je_solver.Solver.st_blasted
        e.je_solver.Solver.st_unknown e.je_solver.Solver.st_cache_hits
        e.je_solver.Solver.st_cache_misses;
    ]

(* ------------------------------------------------------------------ *)
(* Strict parsing                                                      *)
(* ------------------------------------------------------------------ *)

let keyed key conv field =
  match String.index_opt field '=' with
  | Some i when String.sub field 0 i = key -> (
      let v = String.sub field (i + 1) (String.length field - i - 1) in
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S: bad value %S" key v))
  | _ -> Error (Printf.sprintf "expected field %S, got %S" key field)

let parse_flags (field : string) =
  let parts = String.split_on_char ',' field in
  let expected = Core.Scanner.all_flags in
  if List.length parts <> List.length expected then
    Error
      (Printf.sprintf "flag field %S: expected %d flags" field
         (List.length expected))
  else
    let rec go acc parts flags =
      match (parts, flags) with
      | [], [] -> Ok (List.rev acc)
      | p :: parts, f :: flags -> (
          let name = Core.Scanner.string_of_flag f in
          match keyed name int_of_string_opt p with
          | Ok 0 -> go ((f, false) :: acc) parts flags
          | Ok 1 -> go ((f, true) :: acc) parts flags
          | Ok n -> Error (Printf.sprintf "flag %s: bad verdict %d" name n)
          | Error e -> Error e)
      | _ -> assert false
    in
    go [] parts expected

(* The v2 solver extension: [solver=q:N,b:N,u:N,h:N,m:N], parsed as
   strictly as every other field — fixed counter order, no unknown keys. *)
let parse_solver (field : string) : (Solver.stats, string) result =
  let ( let* ) = Result.bind in
  let* v = keyed "solver" Option.some field in
  let counter key part =
    match String.index_opt part ':' with
    | Some i when String.sub part 0 i = key ->
        int_of_string_opt (String.sub part (i + 1) (String.length part - i - 1))
    | _ -> None
  in
  match String.split_on_char ',' v with
  | [ q; b; u; h; m ] -> (
      match
        (counter "q" q, counter "b" b, counter "u" u, counter "h" h,
         counter "m" m)
      with
      | ( Some st_quick, Some st_blasted, Some st_unknown, Some st_cache_hits,
          Some st_cache_misses ) ->
          Ok
            {
              Solver.st_quick; st_blasted; st_unknown; st_cache_hits;
              st_cache_misses;
            }
      | _ -> Error (Printf.sprintf "solver field %S: bad counters" v))
  | _ -> Error (Printf.sprintf "solver field %S: expected 5 counters" v)

let entry_of_line (line : string) : (entry, string) result =
  let ( let* ) = Result.bind in
  let parse m name flags branches rounds seeds adaptive tx sat imprecise
      elapsed solver =
    if m <> magic then Error (Printf.sprintf "bad magic %S" m)
    else if name = "" then Error "empty target name"
    else
      let* je_flags = parse_flags flags in
      let* je_branches = keyed "branches" int_of_string_opt branches in
      let* je_rounds = keyed "rounds" int_of_string_opt rounds in
      let* je_seeds_total = keyed "seeds" int_of_string_opt seeds in
      let* je_adaptive_seeds = keyed "adaptive" int_of_string_opt adaptive in
      let* je_transactions = keyed "tx" int_of_string_opt tx in
      let* je_solver_sat = keyed "sat" int_of_string_opt sat in
      let* je_imprecise = keyed "imprecise" int_of_string_opt imprecise in
      let* je_elapsed = keyed "elapsed" float_of_string_opt elapsed in
      let* je_solver =
        match solver with
        (* v1 line: the run predates solver accounting — counters zero. *)
        | None -> Ok Solver.stats_zero
        | Some s -> parse_solver s
      in
      Ok
        {
          je_name = name; je_flags; je_branches; je_rounds; je_seeds_total;
          je_adaptive_seeds; je_transactions; je_solver_sat; je_imprecise;
          je_elapsed; je_solver;
        }
  in
  match String.split_on_char '\t' line with
  | [ m; name; flags; branches; rounds; seeds; adaptive; tx; sat; imprecise;
      elapsed ] ->
      parse m name flags branches rounds seeds adaptive tx sat imprecise
        elapsed None
  | [ m; name; flags; branches; rounds; seeds; adaptive; tx; sat; imprecise;
      elapsed; solver ] ->
      parse m name flags branches rounds seeds adaptive tx sat imprecise
        elapsed (Some solver)
  | fields ->
      Error (Printf.sprintf "expected 11 or 12 tab-separated fields, got %d"
               (List.length fields))

exception Malformed of string

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc line_no =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            match entry_of_line line with
            | Ok e -> go (e :: acc) (line_no + 1)
            | Error reason ->
                raise
                  (Malformed
                     (Printf.sprintf
                        "%s:%d: malformed journal line (%s); refusing to \
                         resume from a corrupt journal"
                        path line_no reason)))
      in
      go [] 1)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = { oc : out_channel; wlock : Mutex.t }

let open_writer path =
  { oc = open_out_gen [ Open_append; Open_creat ] 0o644 path;
    wlock = Mutex.create () }

let append w e =
  Mutex.protect w.wlock (fun () ->
      output_string w.oc (line_of_entry e);
      output_char w.oc '\n';
      flush w.oc;
      (* The line must reach disk before the target counts as done:
         a resume must never skip work whose result a crash threw away. *)
      Unix.fsync (Unix.descr_of_out_channel w.oc))

let close_writer w = Mutex.protect w.wlock (fun () -> close_out_noerr w.oc)
