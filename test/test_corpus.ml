(* Tests for the persistent seed corpus: typed argument wire
   round-trips, record line round-trip, strict parse rejections,
   dedupe-on-insert, greedy set-cover minimisation, load/save
   round-trip and Writer crash-safety discipline. *)

module Corpus = Wasai_corpus.Corpus
module Trace = Wasai_wasabi.Trace
module Solver = Wasai_smt.Solver
open Wasai_eosio

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let stats =
  {
    Solver.st_quick = 3; st_blasted = 2; st_unknown = 1; st_cache_hits = 5;
    st_cache_misses = 4;
  }

let record ?(target = "vault") ?(action = "transfer")
    ?(args = [ Abi.V_u64 42L ]) ?(cover = [ (1, 0l); (1, 1l); (7, 0l) ]) () =
  {
    Corpus.rc_target = target;
    rc_action = Name.of_string action;
    rc_args = args;
    rc_sig = Trace.edge_signature cover;
    rc_cover = cover;
    rc_new_edges = List.length cover;
    rc_round = 3;
    rc_shard = (0, 2);
    rc_seed = 99L;
    rc_rounds = 24;
    rc_solver = stats;
    rc_solver_budget = 20000;
  }

(* ------------------------------------------------------------------ *)
(* Line round-trip                                                      *)
(* ------------------------------------------------------------------ *)

let roundtrip r =
  match Corpus.record_of_line (Corpus.line_of_record r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "round-trip rejected: %s" e

let test_line_roundtrip () =
  let r =
    record
      ~args:
        [
          Abi.V_name (Name.of_string "alice");
          Abi.V_u64 0xdeadbeefL;
          Abi.V_u32 7l;
          Abi.V_asset { Asset.amount = 10_000L; symbol = Asset.Symbol.eos };
          Abi.V_string "hi\tthere\n\x00\xff";
        ]
      ()
  in
  let r' = roundtrip r in
  Alcotest.(check bool) "identical record" true (r = r');
  Alcotest.(check bool) "single line" true
    (not (String.contains (Corpus.line_of_record r) '\n'))

let test_empty_args_roundtrip () =
  let r = record ~args:[] () in
  let r' = roundtrip r in
  Alcotest.(check bool) "empty args survive" true (r'.Corpus.rc_args = []);
  Alcotest.(check bool) "wire uses the - placeholder" true
    (contains ~sub:"args=-" (Corpus.line_of_record r))

let reject ~why line =
  match Corpus.record_of_line line with
  | Ok _ -> Alcotest.failf "accepted a line that should be rejected (%s)" why
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "reason mentions %s" why)
        true
        (contains ~sub:why e)

let swap_field line i value =
  let fields = String.split_on_char '\t' line in
  String.concat "\t" (List.mapi (fun j f -> if j = i then value else f) fields)

let test_strict_rejections () =
  let line = Corpus.line_of_record (record ()) in
  reject ~why:"magic" (swap_field line 0 "wasai-corpus-v0");
  reject ~why:"13" (line ^ "\textra=1");
  reject ~why:"13"
    (String.concat "\t"
       (List.filteri (fun i _ -> i < 12) (String.split_on_char '\t' line)));
  (* A signature that does not match the recomputed cover hash: a torn
     or hand-edited line must not be admitted under a stale index key. *)
  reject ~why:"signature" (swap_field line 3 "sig=0000000000000000");
  reject ~why:"sorted" (swap_field line 4 "cover=7:0,1:0");
  reject ~why:"edge" (swap_field line 4 "cover=");
  reject ~why:"target" (swap_field line 1 "NotAName!");
  reject ~why:"shard" (swap_field line 7 "shard=2/2");
  reject ~why:"counters" (swap_field line 10 "solver=q:1,b:2,u:3,h:4");
  reject ~why:"tag" (swap_field line 12 "args=z:boom");
  reject ~why:"hex" (swap_field line 12 "args=s:0g");
  reject ~why:"u64" (swap_field line 12 "args=u:")

(* ------------------------------------------------------------------ *)
(* In-memory corpus: dedupe, canonical order                            *)
(* ------------------------------------------------------------------ *)

let test_dedupe_on_insert () =
  let c = Corpus.create () in
  let r = record () in
  Alcotest.(check bool) "first insert" true (Corpus.add c r);
  Alcotest.(check bool) "same (target, sig) rejected" false
    (Corpus.add c { r with rc_round = 9 });
  Alcotest.(check bool) "same sig, other target accepted" true
    (Corpus.add c { r with rc_target = "bank" });
  Alcotest.(check bool) "other cover accepted" true
    (Corpus.add c (record ~cover:[ (2, 1l) ] ()));
  Alcotest.(check int) "size counts distinct keys" 3 (Corpus.size c);
  Alcotest.(check bool) "mem sees stored sig" true
    (Corpus.mem c ~target:"vault" (record ()).Corpus.rc_sig);
  Alcotest.(check (list string)) "targets sorted" [ "bank"; "vault" ]
    (Corpus.targets c)

let test_preload_canonical_order () =
  let c = Corpus.create () in
  (* Inserted out of order; preload must come back canonically. *)
  let r1 = record ~action:"reveal" ~cover:[ (9, 1l) ] () in
  let r2 = record ~action:"deposit" ~cover:[ (5, 0l) ] () in
  let r3 = record ~action:"deposit" ~cover:[ (4, 1l) ] () in
  List.iter (fun r -> ignore (Corpus.add c r)) [ r1; r2; r3 ];
  let names =
    List.map (fun (a, _) -> Name.to_string a) (Corpus.preload c ~target:"vault")
  in
  Alcotest.(check int) "all seeds preloaded" 3 (List.length names);
  Alcotest.(check bool) "action-major order" true
    (match names with
     | [ "deposit"; "deposit"; "reveal" ] -> true
     | _ -> false);
  Alcotest.(check (list string)) "unknown target preloads nothing" []
    (List.map
       (fun (a, _) -> Name.to_string a)
       (Corpus.preload c ~target:"ghost"))

(* ------------------------------------------------------------------ *)
(* Minimisation                                                         *)
(* ------------------------------------------------------------------ *)

let test_minimize_set_cover () =
  let c = Corpus.create () in
  (* A seed covering everything, two partial seeds it subsumes, and a
     seed holding a unique edge: greedy cover keeps exactly two. *)
  let big = record ~cover:[ (1, 0l); (2, 0l); (3, 0l) ] () in
  let sub1 = record ~cover:[ (1, 0l); (2, 0l) ] () in
  let sub2 = record ~cover:[ (3, 0l) ] () in
  let unique = record ~cover:[ (8, 1l) ] () in
  List.iter (fun r -> ignore (Corpus.add c r)) [ sub1; sub2; big; unique ];
  let m = Corpus.minimize c in
  Alcotest.(check int) "redundant seeds dropped" 2 (Corpus.size m);
  Alcotest.(check int) "edge union preserved" 4
    (Corpus.edge_union (Corpus.records_for m ~target:"vault"));
  Alcotest.(check bool) "kept the dominating seed" true
    (Corpus.mem m ~target:"vault" big.Corpus.rc_sig);
  Alcotest.(check bool) "kept the unique edge" true
    (Corpus.mem m ~target:"vault" unique.Corpus.rc_sig);
  (* Minimisation is per target: another target's seeds are untouched. *)
  let c2 = Corpus.create () in
  ignore (Corpus.add c2 (record ~target:"bank" ~cover:[ (1, 0l) ] ()));
  ignore (Corpus.add c2 (record ~cover:[ (1, 0l) ] ()));
  Alcotest.(check int) "covers do not alias across targets" 2
    (Corpus.size (Corpus.minimize c2))

(* ------------------------------------------------------------------ *)
(* Persistence                                                          *)
(* ------------------------------------------------------------------ *)

let temp_path () =
  let p = Filename.temp_file "wasai-test-corpus" ".seeds" in
  Sys.remove p;
  p

let test_save_load_roundtrip () =
  let c = Corpus.create () in
  let rs =
    [
      record ();
      record ~target:"bank" ~cover:[ (2, 1l) ] ();
      record ~action:"deposit" ~args:[] ~cover:[ (5, 0l) ] ();
    ]
  in
  List.iter (fun r -> ignore (Corpus.add c r)) rs;
  let path = temp_path () in
  Corpus.save c path;
  let c' = Corpus.load path in
  Alcotest.(check int) "same size" (Corpus.size c) (Corpus.size c');
  Alcotest.(check bool) "same records in same order" true
    (Corpus.records c = Corpus.records c');
  (* Canonical save is idempotent: save(load(f)) is byte-identical. *)
  let path2 = temp_path () in
  Corpus.save c' path2;
  let read p =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic; s
  in
  Alcotest.(check string) "canonical form is a fixpoint" (read path)
    (read path2);
  Sys.remove path; Sys.remove path2

let test_load_rejects_corrupt_line () =
  let c = Corpus.create () in
  ignore (Corpus.add c (record ()));
  let path = temp_path () in
  Corpus.save c path;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "wasai-corpus-v1\ttorn";
  close_out oc;
  (match Corpus.load path with
   | _ -> Alcotest.fail "corrupt line admitted"
   | exception Corpus.Malformed msg ->
       Alcotest.(check bool) "error names the line" true
         (contains ~sub:":2: malformed" msg));
  Sys.remove path

let test_writer_appends_durably () =
  let path = temp_path () in
  let w = Corpus.Writer.open_ path in
  let r1 = record () and r2 = record ~cover:[ (4, 0l) ] () in
  Corpus.Writer.append w r1;
  (* Visible before close: append is flush+fsync, not buffered. *)
  let c = Corpus.load path in
  Alcotest.(check int) "first append visible immediately" 1 (Corpus.size c);
  Corpus.Writer.append w r2;
  Corpus.Writer.close w;
  let w2 = Corpus.Writer.open_ path in
  Corpus.Writer.append w2 r1;  (* duplicate: load dedupes *)
  Corpus.Writer.close w2;
  let c' = Corpus.load path in
  Alcotest.(check int) "reopen appends; load dedupes" 2 (Corpus.size c');
  Sys.remove path

let test_stats_text () =
  let c = Corpus.create () in
  ignore (Corpus.add c (record ()));
  ignore (Corpus.add c (record ~cover:[ (2, 0l); (3, 1l) ] ()));
  ignore (Corpus.add c (record ~target:"bank" ~cover:[ (1, 1l) ] ()));
  let s = Corpus.stats_text c in
  Alcotest.(check bool) "header totals" true
    (contains ~sub:"3 seeds across 2 targets" s);
  Alcotest.(check bool) "per-target edge union" true
    (contains ~sub:"edges=5" s)

let () =
  Alcotest.run "wasai_corpus"
    [
      ( "line",
        [
          Alcotest.test_case "value wire + record round-trip" `Quick
            test_line_roundtrip;
          Alcotest.test_case "empty args" `Quick test_empty_args_roundtrip;
          Alcotest.test_case "strict rejections" `Quick test_strict_rejections;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "dedupe on insert" `Quick test_dedupe_on_insert;
          Alcotest.test_case "canonical preload order" `Quick
            test_preload_canonical_order;
          Alcotest.test_case "minimize is a greedy set cover" `Quick
            test_minimize_set_cover;
          Alcotest.test_case "stats text" `Quick test_stats_text;
        ] );
      ( "disk",
        [
          Alcotest.test_case "save/load round-trip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "corrupt line rejected" `Quick
            test_load_rejects_corrupt_line;
          Alcotest.test_case "writer appends durably" `Quick
            test_writer_appends_durably;
        ] );
    ]
