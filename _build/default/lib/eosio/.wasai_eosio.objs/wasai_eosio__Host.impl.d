lib/eosio/host.ml: Action Buffer Chain Char Database Int32 Int64 List Name Printf Queue String Wasai_wasm
