(** Evaluation harness: regenerates every table and figure of the paper's
    evaluation (§4), plus ablation and micro benchmarks.

    Usage: [main.exe [experiment] [--scale N] [--rounds N] [--count N]
    [--backend interp|compiled|auto] [--json FILE]]

    Experiments: fig3 table4 table5 table6 table-ext rq4 ablation solver
    campaign campaign-smoke slice-smoke shard shard-smoke corpus corpus-smoke trace
    trace-smoke serve-smoke oracle-smoke compile compile-smoke telemetry
    telemetry-smoke micro all (default: all).  [--scale]
    divides the corpus sizes (default 20; use [--full] for the paper-sized
    corpora — minutes of CPU).  [campaign] measures multi-domain scaling
    (1/2/4 workers) over a generated corpus plus an LPT-vs-name-order
    scheduling datapoint; [campaign-smoke] is a <10 s
    parity + resume check; [slice-smoke] is a <10 s round-space
    partitioning check (off-vs-sliced verdict parity, K=1/K=8 merge
    byte-identity and a >= 1.5x modelled 4-worker makespan win on a
    one-dominant-module corpus); [shard] measures distributed 2/4-way sharding
    against an unsharded baseline and verifies merge identity;
    [shard-smoke] is a <10 s 2-shard merge byte-identity check; [solver]
    is a <10 s cache-on/off microbenchmark over a repeated-flip
    workload; [corpus] measures warm-vs-cold rounds-to-verdict with the
    persistent seed corpus; [corpus-smoke] is a <10 s warm-reuse parity
    check; [trace] measures the flat event-buffer collector against the
    historical list collector (records/sec and allocated bytes per
    payload, requires >= 2x fewer); [trace-smoke] is a <10 s
    streaming-vs-materialised identity check; [serve-smoke] is a <10 s
    serve-daemon check (two concurrent tenants vs batch parity, BUSY
    backpressure, kill + resume byte-identity); [table-ext] is the
    P/R/F1 table for the three related-work extension classes;
    [oracle-smoke] is a <10 s 8-class detection + legacy byte-identity
    check of the oracle registry; [compile] measures the closure-compiled
    execution tier against the interpreter (payloads/sec over the legacy
    ground-truth corpus, verdict/coverage parity required, >= 2x target);
    [compile-smoke] is a <10 s parity + not-slower check of the same;
    [telemetry] prints the per-stage critical-path breakdown of a
    telemetry-on campaign and measures the probes' overhead;
    [telemetry-smoke] is a <10 s zero-interference check (journal/report
    byte-identity off vs on at jobs 1 and 2, stage coverage, METRICS
    exposition, overhead <= 3%); [--backend] forces every WASAI engine
    run in the harness onto one execution tier; [--json FILE] writes a
    machine-readable summary (experiment names, metrics, asserted
    bounds) alongside the text scoreboard. *)

open Wasai_support
module BG = Wasai_benchgen
module Core = Wasai_core
module BL = Wasai_baselines
open Harness

(* ------------------------------------------------------------------ *)
(* Figure 3: branch coverage over time                                  *)
(* ------------------------------------------------------------------ *)

let fig3 (opts : options) =
  Printf.printf "\n=== Figure 3: cumulative distinct branches vs fuzzing time ===\n";
  Printf.printf "(%d contracts, %d rounds each; paper: 100 contracts, 5 min each)\n"
    opts.opt_fig3_contracts opts.opt_rounds;
  let contracts = BG.Corpus.coverage_set ~count:opts.opt_fig3_contracts () in
  let collect run = List.map run contracts in
  let wasai_tls =
    collect (fun s ->
        let o =
          Core.Engine.fuzz
            ~cfg:
              (Core.Engine.make_config ~rounds:(opts.opt_rounds) ~rng_seed:(Int64.of_int s.BG.Corpus.smp_id) ~backend:opts.opt_backend ())
            (target_of_sample s)
        in
        List.map (fun (_, t, b) -> (t, b)) o.Core.Engine.out_timeline)
  in
  let ef_tls =
    collect (fun s ->
        let o =
          BL.Eosfuzzer.fuzz ~rounds:opts.opt_rounds
            ~rng_seed:(Int64.of_int ((s.BG.Corpus.smp_id * 13) + 1))
            (target_of_sample s)
        in
        List.map (fun (_, t, b) -> (t, b)) o.BL.Eosfuzzer.ef_timeline)
  in
  let total_at tls t =
    List.fold_left
      (fun acc tl ->
        let v =
          List.fold_left (fun best (tt, b) -> if tt <= t then b else best) 0 tl
        in
        acc + v)
      0 tls
  in
  let t_max =
    List.fold_left
      (fun m tl -> List.fold_left (fun m (t, _) -> max m t) m tl)
      0.001 (wasai_tls @ ef_tls)
  in
  let buckets =
    List.init 13 (fun i -> t_max *. ((float_of_int i /. 12.) ** 2.0))
  in
  Printf.printf "%-12s %-10s %-10s %-6s\n" "time (s)" "WASAI" "EOSFuzzer" "ratio";
  List.iter
    (fun t ->
      let w = total_at wasai_tls t and e = total_at ef_tls t in
      Printf.printf "%-12.4f %-10d %-10d %-6.2f\n" t w e
        (float_of_int w /. float_of_int (max 1 e)))
    buckets;
  let w_end = total_at wasai_tls t_max and e_end = total_at ef_tls t_max in
  Printf.printf
    "final: WASAI %d vs EOSFuzzer %d -> %.2fx  (paper: ~75,000 vs ~37,000 -> ~2x)\n"
    w_end e_end
    (float_of_int w_end /. float_of_int (max 1 e_end))

(* ------------------------------------------------------------------ *)
(* Tables 4 / 5 / 6                                                     *)
(* ------------------------------------------------------------------ *)

let table4 (opts : options) =
  let corpus = BG.Corpus.ground_truth ~seed:opts.opt_seed ~scale:opts.opt_scale () in
  Printf.printf "\nTable 4 corpus: %d samples (scale 1/%d of 3,340)\n"
    (List.length corpus) opts.opt_scale;
  let rows = evaluate_corpus ~rounds:opts.opt_rounds ~backend:opts.opt_backend corpus in
  print_table ~title:"Table 4: accuracy on the ground-truth benchmark (RQ2)"
    ~paper:paper_table4 rows

let table5 (opts : options) =
  let corpus = BG.Corpus.obfuscated ~seed:opts.opt_seed ~scale:opts.opt_scale () in
  Printf.printf "\nTable 5 corpus: %d obfuscated samples\n" (List.length corpus);
  let rows = evaluate_corpus ~rounds:opts.opt_rounds ~backend:opts.opt_backend corpus in
  print_table ~title:"Table 5: impact of code obfuscation (RQ3)"
    ~paper:paper_table5 rows

let table6 (opts : options) =
  let corpus = BG.Corpus.verification ~scale:opts.opt_scale () in
  Printf.printf "\nTable 6 corpus: %d complicated-verification samples\n"
    (List.length corpus);
  let rows = evaluate_corpus ~rounds:opts.opt_rounds ~backend:opts.opt_backend corpus in
  print_table ~title:"Table 6: impact of complicated verification (RQ3)"
    ~paper:paper_table6 rows

(* The related-work extension classes (StateIo / FakeTransfer /
   AssetOverflow) have no paper reference row — the poster's evaluation
   covers the five legacy classes only — so the paper column is empty. *)
let table_ext (opts : options) =
  let corpus = BG.Corpus.extension ~scale:(max 1 (opts.opt_scale / 4)) () in
  Printf.printf "\nExtension corpus: %d samples over the 3 related-work classes\n"
    (List.length corpus);
  let rows = evaluate_corpus ~rounds:opts.opt_rounds ~backend:opts.opt_backend corpus in
  print_table
    ~title:
      "Extension: related-work classes (WACANA state I/O, EVulHunter fake \
       transfer, asset overflow)"
    ~paper:[] rows

(* ------------------------------------------------------------------ *)
(* RQ4: vulnerabilities in the wild                                     *)
(* ------------------------------------------------------------------ *)

let rq4 (opts : options) =
  let count = min 991 (max 40 (991 * 4 / max 1 opts.opt_scale)) in
  Printf.printf
    "\n=== RQ4: the synthetic mainnet population (%d contracts; paper: 991) ===\n"
    count;
  let population = BG.Mainnet.generate ~count () in
  let flag_counts = Hashtbl.create 8 in
  let bump f =
    Hashtbl.replace flag_counts f
      (1 + Option.value ~default:0 (Hashtbl.find_opt flag_counts f))
  in
  let verify = Metrics.empty () in
  let flagged_contracts =
    List.filter
      (fun (d : BG.Mainnet.deployed) ->
        let o =
          Core.Engine.fuzz
            ~cfg:
              (Core.Engine.make_config ~rounds:(opts.opt_rounds) ~rng_seed:(Int64.of_int d.BG.Mainnet.dep_id) ~backend:opts.opt_backend ())
            {
              Core.Engine.tgt_account = d.BG.Mainnet.dep_account;
              tgt_module = d.BG.Mainnet.dep_module;
              tgt_abi = d.BG.Mainnet.dep_abi;
            }
        in
        List.iter (fun (f, b) -> if b then bump f) o.Core.Engine.out_flags;
        let flagged = Core.Engine.any_flagged o in
        (* The paper's manual-verification step (100 sampled contracts,
           dynamic debugging): here the planted ground truth verifies
           every contract. *)
        Metrics.record verify ~truth:(BG.Mainnet.truth_any d) ~predicted:flagged;
        flagged)
      population
  in
  let n_flagged = List.length flagged_contracts in
  let pct x total = 100.0 *. float_of_int x /. float_of_int total in
  Printf.printf "flagged vulnerable: %d/%d (%.1f%%)   paper: 707/991 (71.3%%)\n"
    n_flagged count (pct n_flagged count);
  List.iter
    (fun (f, paper_n) ->
      let n = Option.value ~default:0 (Hashtbl.find_opt flag_counts f) in
      Printf.printf "  %-14s %4d (%.1f%%)   paper: %d (%.1f%%)\n"
        (Core.Scanner.string_of_flag f) n (pct n count) paper_n (pct paper_n 991))
    [
      (Core.Scanner.Fake_eos, 241);
      (Core.Scanner.Fake_notif, 264);
      (Core.Scanner.Miss_auth, 470);
      (Core.Scanner.Blockinfo_dep, 22);
      (Core.Scanner.Rollback, 122);
    ];
  (* Patch-history analysis of the flagged contracts. *)
  let abandoned, operating =
    List.partition
      (fun (d : BG.Mainnet.deployed) ->
        d.BG.Mainnet.dep_history = BG.Mainnet.Abandoned)
      flagged_contracts
  in
  (* Verify patches by re-fuzzing the latest version (paper footnote 1). *)
  let patched, exposed =
    List.partition
      (fun (d : BG.Mainnet.deployed) ->
        match BG.Mainnet.latest_version d with
        | None -> false
        | Some (m, abi) ->
            let o =
              Core.Engine.fuzz
                ~cfg:
                  (Core.Engine.make_config ~rounds:(opts.opt_rounds) ~rng_seed:(Int64.of_int (d.BG.Mainnet.dep_id + 99)) ~backend:opts.opt_backend ())
                {
                  Core.Engine.tgt_account = d.BG.Mainnet.dep_account;
                  tgt_module = m;
                  tgt_abi = abi;
                }
            in
            not (Core.Engine.any_flagged o))
      operating
  in
  Printf.printf
    "of flagged: %d abandoned, %d operating (%.1f%%; paper 58.4%%), of which %d patched / %d still exposed\n"
    (List.length abandoned) (List.length operating)
    (pct (List.length operating) (max 1 n_flagged))
    (List.length patched) (List.length exposed);
  Printf.printf "paper: 413 operating, 72 patched, 341 exposed\n";
  Printf.printf
    "verification against planted ground truth: %d FP / %d FN over %d contracts (paper's manual check: 2 FPs, 1 FN in a 100-sample audit)\n"
    verify.Metrics.fp verify.Metrics.fn (Metrics.total verify)

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ablation (opts : options) =
  Printf.printf "\n=== Ablations ===\n";
  (* 1. Feedback on/off: detection and coverage on a deep-gated contract. *)
  let rng = Rand.create 11L in
  let spec =
    {
      (BG.Contracts.default_spec (Wasai_eosio.Name.of_string "victim")) with
      BG.Contracts.sp_payout_inline = true;
      sp_checks =
        [
          { BG.Contracts.chk_target = BG.Contracts.Chk_amount; chk_value = 123456789L };
          {
            BG.Contracts.chk_target = BG.Contracts.Chk_symbol;
            chk_value = Wasai_eosio.Asset.Symbol.eos;
          };
        ];
      sp_milestones = BG.Verification.random_milestones rng ~depth:10;
    }
  in
  let m, abi = BG.Contracts.build spec in
  let target =
    {
      Core.Engine.tgt_account = Wasai_eosio.Name.of_string "victim";
      tgt_module = m;
      tgt_abi = abi;
    }
  in
  let with_fb =
    Core.Engine.fuzz
      ~cfg:(Core.Engine.make_config ~rounds:(opts.opt_rounds) ~backend:opts.opt_backend ())
      target
  in
  let without_fb =
    Core.Engine.fuzz
      ~cfg:
        (Core.Engine.make_config ~rounds:(opts.opt_rounds) ~feedback:false ~backend:opts.opt_backend ())
      target
  in
  Printf.printf
    "symbolic feedback: ON  -> branches=%d rollback-found=%b | OFF -> branches=%d rollback-found=%b\n"
    with_fb.Core.Engine.out_branches
    (Core.Engine.flagged with_fb Core.Scanner.Rollback)
    without_fb.Core.Engine.out_branches
    (Core.Engine.flagged without_fb Core.Scanner.Rollback);
  (* 2. Memory model: concrete-address vs EOSAFE merge-map. *)
  let n_ops = 3000 in
  let _, t_wasai =
    time_it (fun () ->
        let mem = Wasai_symbolic.Memmodel.create () in
        for i = 0 to n_ops - 1 do
          Wasai_symbolic.Memmodel.store mem ~addr:(i * 8 mod 4096) ~width_bytes:8
            (Wasai_smt.Expr.const 64 (Int64.of_int i));
          ignore
            (Wasai_symbolic.Memmodel.load mem ~addr:(i * 8 mod 4096) ~width_bytes:8)
        done)
  in
  let work, t_eosafe =
    time_it (fun () ->
        let mem = Wasai_symbolic.Eosafe_memory.create () in
        for i = 0 to (n_ops / 10) - 1 do
          Wasai_symbolic.Eosafe_memory.store mem
            ~addr:(Wasai_smt.Expr.const 32 (Int64.of_int (i * 8 mod 4096)))
            ~width_bytes:8
            (Wasai_smt.Expr.const 64 (Int64.of_int i));
          ignore
            (Wasai_symbolic.Eosafe_memory.load mem
               ~addr:(Wasai_smt.Expr.const 32 (Int64.of_int (i * 8 mod 4096)))
               ~width_bytes:8)
        done;
        Wasai_symbolic.Eosafe_memory.work mem)
  in
  Printf.printf
    "memory model: WASAI concrete-address %d ops in %.3fs | EOSAFE merge-map %d ops in %.3fs (scanned %d entries)\n"
    (2 * n_ops) t_wasai (2 * n_ops / 10) t_eosafe work;
  (* 3. Solver tiers: quick path vs bit-blasting, tallied by a private
     session (solver accounting is per-session, not global). *)
  let open Wasai_smt in
  let session = Solver.Session.create () in
  let x = Expr.fresh_var ~name:"x" 64 in
  let _, t_quick =
    time_it (fun () ->
        for i = 0 to 499 do
          ignore
            (Solver.check ~session
               [ Expr.cmp Expr.Eq (Expr.var x) (Expr.const 64 (Int64.of_int i)) ])
        done)
  in
  let _, t_blast =
    time_it (fun () ->
        for i = 0 to 19 do
          let y = Expr.fresh_var ~name:"y" 32 in
          ignore
            (Solver.check ~session
               [
                 Expr.cmp Expr.Eq
                   (Expr.unop Expr.Popcnt (Expr.var y))
                   (Expr.const 32 (Int64.of_int (1 + (i mod 20))));
               ])
        done)
  in
  let st = Solver.Session.stats session in
  Printf.printf
    "solver: 500 equality chains via quick path in %.4fs (quick-path hits +%d) | 20 popcount queries via bit-blasting in %.3fs (blasted %d)\n"
    t_quick st.Solver.st_quick t_blast st.Solver.st_blasted

(* ------------------------------------------------------------------ *)
(* Solver: per-session constraint cache                                 *)
(* ------------------------------------------------------------------ *)

(* Repeated-flip workload: the engine re-derives near-identical constraint
   sets round after round (the same path prefix with one condition
   negated), which is exactly what the per-session cache memoises.  Build
   a ~10-deep path over symbolic inputs — equality guards the quick path
   solves, plus small-width arithmetic conditions that force bit-blasting
   — submit every (prefix, flipped) candidate, and repeat the whole sweep
   for several rounds as the engine does.  Run once with the cache
   disabled (capacity 0, the pre-cache baseline) and once with the
   default session; verdict sequences must be identical. *)
let solver_exp () =
  Printf.printf "\n=== Solver: per-session constraint cache ===\n%!";
  let open Wasai_smt in
  let x = Expr.fresh_var ~name:"sx" 64 in
  let y = Expr.fresh_var ~name:"sy" 16 in
  let conds =
    Array.init 10 (fun i ->
        if i mod 3 = 2 then
          (* Small-width multiply: outside the quick path, must blast. *)
          Expr.(
            cmp Ule
              (binop Mul (var y) (const 16 (Int64.of_int (3 + i))))
              (const 16 (Int64.of_int (6000 + (1000 * i)))))
        else
          (* Equality guard the propagation quick path picks off. *)
          Expr.(
            cmp Eq
              (binop Add (var x) (const 64 (Int64.of_int (17 * i))))
              (const 64 (Int64.of_int (1000 + (100 * i))))))
  in
  (* One query per flip candidate: the prefix as taken, then ¬cond. *)
  let queries =
    List.init (Array.length conds) (fun i ->
        List.init i (fun j -> conds.(j)) @ [ Expr.not_ conds.(i) ])
  in
  let rounds = 8 in
  let n = rounds * List.length queries in
  let run session =
    let verdicts = ref [] in
    let _, t =
      time_it (fun () ->
          for _ = 1 to rounds do
            List.iter
              (fun q ->
                verdicts :=
                  (match Solver.check ~session q with
                   | Solver.Sat _ -> `Sat
                   | Solver.Unsat -> `Unsat
                   | Solver.Unknown -> `Unknown)
                  :: !verdicts)
              queries
          done)
    in
    (List.rev !verdicts, Solver.Session.stats session, t)
  in
  let v0, st0, t0 = run (Solver.Session.create ~cache_capacity:0 ()) in
  let v1, st1, t1 = run (Solver.Session.create ()) in
  let per_query t = 1e6 *. t /. float_of_int n in
  Printf.printf
    "  cache off: %d queries  quick=%d blasted=%d unknown=%d  %.4fs (%.1f us/query)\n"
    n st0.Solver.st_quick st0.Solver.st_blasted st0.Solver.st_unknown t0
    (per_query t0);
  Printf.printf
    "  cache on:  %d queries  quick=%d blasted=%d unknown=%d  hits=%s  %.4fs (%.1f us/query)\n"
    n st1.Solver.st_quick st1.Solver.st_blasted st1.Solver.st_unknown
    (Metrics.rate_string ~hits:st1.Solver.st_cache_hits
       ~total:(st1.Solver.st_cache_hits + st1.Solver.st_cache_misses))
    t1 (per_query t1);
  let ok =
    v0 = v1 && st1.Solver.st_cache_hits > 0
    && st1.Solver.st_blasted < st0.Solver.st_blasted
  in
  Printf.printf
    "  verdicts identical: %b  blasting runs saved: %d\n"
    (v0 = v1)
    (st0.Solver.st_blasted - st1.Solver.st_blasted);
  json_record ~experiment:"solver"
    ~bounds:
      [
        {
          jb_name = "verdict_parity";
          jb_bound = "cache on/off verdicts identical";
          jb_pass = v0 = v1;
        };
        {
          jb_name = "blasting_saved";
          jb_bound = "cache hits > 0 and fewer blasts";
          jb_pass =
            st1.Solver.st_cache_hits > 0
            && st1.Solver.st_blasted < st0.Solver.st_blasted;
        };
      ]
    [
      ("queries", float_of_int n);
      ("cache_off_s", t0);
      ("cache_on_s", t1);
      ("cache_hits", float_of_int st1.Solver.st_cache_hits);
      ("blasts_saved", float_of_int (st0.Solver.st_blasted - st1.Solver.st_blasted));
    ];
  if not ok then begin
    Printf.printf "solver cache benchmark FAILED\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Campaign: multi-domain scaling                                       *)
(* ------------------------------------------------------------------ *)

module Campaign = Wasai_campaign

(* Unique per-sample deployment accounts: verdicts derive from the account
   name, so every target needs a stable identity of its own. *)
let campaign_account i =
  let b = Buffer.create 8 in
  Buffer.add_string b "camp";
  let rec go i =
    if i >= 26 then go (i / 26);
    Buffer.add_char b (Char.chr (Char.code 'a' + (i mod 26)))
  in
  go i;
  Wasai_eosio.Name.of_string (Buffer.contents b)

let campaign_targets ?(sized = true) ~count () =
  List.mapi
    (fun i (s : BG.Corpus.sample) ->
      let account = campaign_account i in
      {
        Campaign.Campaign.sp_name = Wasai_eosio.Name.to_string account;
        (* Encoded byte size feeds the campaign's biggest-first (LPT)
           scheduling; [sized:false] zeroes it to get plain name order
           for the scheduling comparison. *)
        sp_size =
          (if sized then
             String.length (Wasai_wasm.Encode.encode s.BG.Corpus.smp_module)
           else 0);
        sp_load =
          (fun () ->
            {
              Core.Engine.tgt_account = account;
              tgt_module = s.BG.Corpus.smp_module;
              tgt_abi = s.BG.Corpus.smp_abi;
            });
      })
    (BG.Corpus.coverage_set ~count ())

let campaign_config ?journal ?resume ?max_targets ?shard ~rounds ~jobs () =
  Campaign.Campaign.make_config ~jobs ?journal ?resume ?max_targets ?shard
    ~engine:(Core.Engine.make_config ~rounds:(rounds) ())
    ()

let campaign_exp (opts : options) =
  let count = max 16 opts.opt_fig3_contracts in
  let rounds = opts.opt_rounds in
  Printf.printf
    "\n=== Campaign: domain scaling over %d generated contracts (%d rounds \
     each) ===\n"
    count rounds;
  Printf.printf "hardware: %d recommended domain(s)\n%!"
    (Domain.recommended_domain_count ());
  let targets = campaign_targets ~count () in
  let runs =
    List.map
      (fun jobs ->
        let r = Campaign.Campaign.run (campaign_config ~rounds ~jobs ()) targets in
        Printf.printf "  jobs=%d  wall=%.2fs  %s\n%!" jobs
          r.Campaign.Campaign.cr_wall
          (Metrics.Histogram.to_string (Campaign.Campaign.latency_histogram r));
        (jobs, r))
      [ 1; 2; 4 ]
  in
  let _, serial = List.hd runs in
  let serial_text = Campaign.Campaign.verdicts_text serial in
  List.iter
    (fun (jobs, r) ->
      Printf.printf "  jobs=%d speedup vs serial: %.2fx  verdicts identical: %b\n"
        jobs
        (serial.Campaign.Campaign.cr_wall /. r.Campaign.Campaign.cr_wall)
        (String.equal serial_text (Campaign.Campaign.verdicts_text r)))
    runs;
  Printf.printf "fleet: %d/%d vulnerable, %d total branches\n"
    (Campaign.Campaign.vulnerable_count serial)
    count
    (Campaign.Campaign.total_branches serial);
  (* Long-tail scheduling datapoint: biggest-module-first (LPT) vs plain
     name order at 4 domains.  Same targets, same verdicts; only the
     enqueue order — and hence the makespan — differs. *)
  let lpt =
    Campaign.Campaign.run (campaign_config ~rounds ~jobs:4 ()) targets
  in
  let unsorted =
    Campaign.Campaign.run
      (campaign_config ~rounds ~jobs:4 ())
      (campaign_targets ~sized:false ~count ())
  in
  Printf.printf
    "  scheduling (4 domains): LPT makespan=%.2fs vs name-order=%.2fs \
     (%.2fx); verdicts identical: %b\n"
    lpt.Campaign.Campaign.cr_wall unsorted.Campaign.Campaign.cr_wall
    (unsorted.Campaign.Campaign.cr_wall
    /. Float.max 1e-9 lpt.Campaign.Campaign.cr_wall)
    (String.equal
       (Campaign.Campaign.verdicts_text lpt)
       (Campaign.Campaign.verdicts_text unsorted));
  (* Intra-target slicing datapoint.  With a queue this deep (16 targets
     for 4 workers) --slices auto declines to cut anything — fair-share
     says whole targets already balance — while forcing --slices 4
     quadruples the per-target seeding cost for no makespan gain.  The
     payoff case, a queue shallower than the worker pool, is pinned by
     [slice-smoke]. *)
  let slice_cfg slices =
    Campaign.Campaign.make_config ~jobs:4 ~slices
      ~engine:(Core.Engine.make_config ~rounds:(rounds) ())
      ()
  in
  let auto_plan = Campaign.Campaign.plan (slice_cfg Campaign.Campaign.Auto) targets in
  let auto_units =
    List.fold_left
      (fun acc (r : Campaign.Campaign.plan_row) -> acc + r.Campaign.Campaign.pr_slices)
      0 auto_plan.Campaign.Campaign.pl_rows
  in
  let forced =
    Campaign.Campaign.run (slice_cfg (Campaign.Campaign.Fixed 4)) targets
  in
  (* Per-target flag agreement with the whole-target run: sliced cells
     draw from disjoint RNG streams, so borderline targets may explore
     differently — byte-identity is only promised between slice counts
     of the same decomposition (K vs K'), which slice-smoke pins. *)
  let agree =
    let lines r =
      String.split_on_char '\n' (Campaign.Campaign.flags_text r)
    in
    List.fold_left2
      (fun acc a b -> if String.equal a b then acc + 1 else acc)
      0 (lines serial) (lines forced)
    - 1 (* both texts end with a trailing empty line *)
  in
  Printf.printf
    "  slicing (4 domains): auto plans %d work units over %d targets \
     (queue-deep, K=1); forced K=4 wall=%.2fs vs whole-target wall=%.2fs \
     (%.2fx work amplification from per-cell seeding), flag agreement \
     %d/%d targets\n"
    auto_units count forced.Campaign.Campaign.cr_wall
    lpt.Campaign.Campaign.cr_wall
    (forced.Campaign.Campaign.cr_wall
    /. Float.max 1e-9 lpt.Campaign.Campaign.cr_wall)
    agree count

(* Quick local verification (<10 s): a tiny corpus through the parallel
   path plus an interrupt/resume round-trip on a throwaway journal. *)
let campaign_smoke () =
  Printf.printf "\n=== Campaign smoke (parallel parity + resume) ===\n%!";
  let targets = campaign_targets ~count:6 () in
  let rounds = 6 in
  let full =
    Campaign.Campaign.run (campaign_config ~rounds ~jobs:2 ()) targets
  in
  let journal = Filename.temp_file "wasai-smoke" ".journal" in
  Sys.remove journal;
  let interrupted =
    Campaign.Campaign.run
      (campaign_config ~journal ~max_targets:3 ~rounds ~jobs:2 ())
      targets
  in
  let resumed =
    Campaign.Campaign.run
      (campaign_config ~journal ~resume:true ~rounds ~jobs:2 ())
      targets
  in
  Sys.remove journal;
  let ok =
    List.length interrupted.Campaign.Campaign.cr_results = 3
    && resumed.Campaign.Campaign.cr_skipped = 3
    && String.equal
         (Campaign.Campaign.verdicts_text full)
         (Campaign.Campaign.verdicts_text resumed)
  in
  Printf.printf "parallel run, interrupt at 3/6, resume: %s (wall %.2fs)\n"
    (if ok then "OK" else "MISMATCH")
    (full.Campaign.Campaign.cr_wall +. interrupted.Campaign.Campaign.cr_wall
     +. resumed.Campaign.Campaign.cr_wall);
  json_record ~experiment:"campaign-smoke"
    ~bounds:
      [
        {
          jb_name = "resume_parity";
          jb_bound = "resumed verdicts = uninterrupted verdicts";
          jb_pass = ok;
        };
      ]
    [ ("wall_s", full.Campaign.Campaign.cr_wall) ];
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Campaign: intra-target slicing                                       *)
(* ------------------------------------------------------------------ *)

(* A module whose fuzzing cost is round work rather than setup: deep
   injected verification checks behind popcount-obfuscated guards keep
   the solver busy every round, so a big round budget makes this one
   module dominate a campaign's makespan. *)
let dominant_target () =
  let rng = Rand.create 7L in
  let account = Wasai_eosio.Name.of_string "dominant" in
  let spec =
    {
      (BG.Contracts.default_spec account) with
      BG.Contracts.sp_fake_eos_guard = false;
      sp_checks = BG.Verification.random_checks rng ~depth:6;
    }
  in
  let m, abi = BG.Contracts.build spec in
  let m = BG.Obfuscate.obfuscate m in
  ( account,
    { Core.Engine.tgt_account = account; tgt_module = m; tgt_abi = abi } )

(* Longest-processing-time schedule length for [units] on [workers]
   identical workers: the makespan model the campaign scheduler targets.
   Modelling over serially-measured unit costs keeps the comparison
   meaningful whatever the bench host's real core count. *)
let lpt_makespan ~workers units =
  let loads = Array.make workers 0.0 in
  List.iter
    (fun u ->
      let best = ref 0 in
      Array.iteri (fun i l -> if l < loads.(!best) then best := i) loads;
      loads.(!best) <- loads.(!best) +. u)
    (List.sort (fun a b -> compare (b : float) a) units);
  Array.fold_left Float.max 0.0 loads

(* Quick local verification (<10 s) of round-space partitioning: on a
   one-dominant-module corpus (queue shallower than the worker pool)
   slicing must (a) leave the verdict untouched — Off vs sliced agree on
   every flag, K=1 vs K=8 merge byte-identically, and a campaign run
   with --slices auto journals the same entry line — and (b) cut the
   modelled 4-worker makespan by >= 1.5x even though each cell re-pays
   seeding, because the idle workers absorb the split. *)
let slice_smoke () =
  Printf.printf
    "\n=== Slice smoke (round-space partitioning: parity + makespan) ===\n%!";
  let rounds = 1200 in
  let cfg = Core.Engine.make_config ~rounds () in
  let account, target = dominant_target () in
  let name = Wasai_eosio.Name.to_string account in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let whole, t_whole = time (fun () -> Core.Engine.fuzz ~cfg target) in
  let k8 =
    List.init 8 (fun i ->
        time (fun () -> Core.Engine.Slice.run ~cfg ~slice:i ~count:8 target))
  in
  let k1, _ = time (fun () -> Core.Engine.Slice.run ~cfg ~slice:0 ~count:1 target) in
  let stamp =
    {
      Campaign.Journal.js_shard = Campaign.Shard.whole;
      js_seed = cfg.Core.Engine.cfg_rng_seed;
      js_rounds = rounds;
    }
  in
  let entry_line frags =
    Campaign.Journal.line_of_entry
      (Campaign.Journal.of_outcome ~name ~elapsed:0.0 ~stamp
         (Core.Engine.Slice.outcome_of_fragment
            (Core.Engine.Slice.merge frags)))
  in
  let merged = Core.Engine.Slice.merge (List.map fst k8) in
  let parity =
    (Core.Engine.Slice.outcome_of_fragment merged).Core.Engine.out_flags
    = whole.Core.Engine.out_flags
  in
  let k_identity =
    String.equal (entry_line (List.map fst k8)) (entry_line [ k1 ])
  in
  (* the production path: a 1-target campaign at --slices auto picks
     K=2 for 2 workers and must journal the very same entry line *)
  let spec =
    {
      Campaign.Campaign.sp_name = name;
      sp_size =
        String.length
          (Wasai_wasm.Encode.encode target.Core.Engine.tgt_module);
      sp_load = (fun () -> target);
    }
  in
  let report =
    Campaign.Campaign.run
      (Campaign.Campaign.make_config ~jobs:2
         ~slices:Campaign.Campaign.Auto
         ~engine:(Core.Engine.make_config ~rounds ())
         ())
      [ spec ]
  in
  let campaign_identity =
    match report.Campaign.Campaign.cr_results with
    | [ e ] ->
        String.equal
          (Campaign.Journal.line_of_entry
             { e with Campaign.Journal.je_elapsed = 0.0 })
          (entry_line (List.map fst k8))
    | _ -> false
  in
  (* makespan on 4 workers: Off schedules one indivisible unit (three
     workers idle); sliced schedules the 8 measured slice units *)
  let ms_off = lpt_makespan ~workers:4 [ t_whole ] in
  let ms_sliced = lpt_makespan ~workers:4 (List.map snd k8) in
  let ratio = ms_off /. Float.max 1e-9 ms_sliced in
  let ok = parity && k_identity && campaign_identity && ratio >= 1.5 in
  Printf.printf
    "  verdict parity off-vs-sliced: %b   K=1 vs K=8 entry identity: %b\n"
    parity k_identity;
  Printf.printf "  campaign --slices auto journals the same entry: %b\n"
    campaign_identity;
  Printf.printf
    "  4-worker makespan (modelled over measured unit costs): whole \
     %.3fs vs 8 slices %.3fs -> %.2fx (target >= 1.5x)\n"
    ms_off ms_sliced ratio;
  Printf.printf "slice smoke: %s\n" (if ok then "OK" else "MISMATCH");
  json_record ~experiment:"slice-smoke"
    ~bounds:
      [
        {
          jb_name = "verdict_parity";
          jb_bound = "off and sliced agree on every flag";
          jb_pass = parity;
        };
        {
          jb_name = "merge_identity";
          jb_bound = "K=1 and K=8 merge to byte-identical entries";
          jb_pass = k_identity && campaign_identity;
        };
        {
          jb_name = "makespan";
          jb_bound = "sliced 4-worker makespan >= 1.5x better";
          jb_pass = ratio >= 1.5;
        };
      ]
    [
      ("whole_s", t_whole);
      ("sliced_makespan_s", ms_sliced);
      ("makespan_ratio", ratio);
    ];
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Campaign: distributed sharding                                       *)
(* ------------------------------------------------------------------ *)

(* Fuzz each shard slice in its own journal (as N independent machines
   would), then recombine with [Campaign.merge].  Returns the merged
   report plus each shard's (targets, wall). *)
let run_sharded ~rounds ~jobs ~shards targets =
  let journals =
    List.init shards (fun i ->
        let j =
          Filename.temp_file (Printf.sprintf "wasai-shard%d-" i) ".journal"
        in
        Sys.remove j;
        j)
  in
  let walls =
    List.mapi
      (fun i journal ->
        let shard = Campaign.Shard.make ~index:i ~count:shards in
        let r =
          Campaign.Campaign.run
            (campaign_config ~journal ~shard ~rounds ~jobs ())
            targets
        in
        (r.Campaign.Campaign.cr_requested, r.Campaign.Campaign.cr_wall))
      journals
  in
  let merged = Campaign.Campaign.merge journals in
  List.iter Sys.remove journals;
  (merged, walls)

let exploit_count (r : Campaign.Campaign.report) =
  List.fold_left
    (fun acc (e : Campaign.Journal.entry) ->
      acc + List.length e.Campaign.Journal.je_exploits)
    0 r.Campaign.Campaign.cr_results

let shard_exp (opts : options) =
  let count = max 16 opts.opt_fig3_contracts in
  let rounds = opts.opt_rounds in
  Printf.printf
    "\n=== Campaign: distributed sharding over %d generated contracts (%d \
     rounds each) ===\n%!"
    count rounds;
  let targets = campaign_targets ~count () in
  let unsharded =
    Campaign.Campaign.run (campaign_config ~rounds ~jobs:1 ()) targets
  in
  Printf.printf "  unsharded: %d targets, wall=%.2fs\n%!" count
    unsharded.Campaign.Campaign.cr_wall;
  let v0 = Campaign.Campaign.verdicts_text unsharded in
  let e0 = Campaign.Campaign.evidence_text unsharded in
  List.iter
    (fun shards ->
      let merged, walls = run_sharded ~rounds ~jobs:1 ~shards targets in
      let makespan = List.fold_left (fun m (_, w) -> max m w) 0.0 walls in
      Printf.printf "  %d shards: slices [%s], fleet makespan=%.2fs \
                     (%.2fx), merge identical: verdicts=%b evidence=%b\n%!"
        shards
        (String.concat "; "
           (List.map (fun (n, w) -> Printf.sprintf "%d targets %.2fs" n w) walls))
        makespan
        (unsharded.Campaign.Campaign.cr_wall /. Float.max 1e-9 makespan)
        (String.equal v0 (Campaign.Campaign.verdicts_text merged))
        (String.equal e0 (Campaign.Campaign.evidence_text merged)))
    [ 2; 4 ];
  Printf.printf "  exploit evidence: %d payloads over %d vulnerable targets\n"
    (exploit_count unsharded)
    (Campaign.Campaign.vulnerable_count unsharded)

(* Quick local verification (<10 s): 2 shards over a tiny corpus, merged,
   must reproduce the unsharded verdict AND evidence sections
   byte-for-byte, with every vulnerable target carrying replayable
   exploit payloads round-tripped through the v3 journal. *)
let shard_smoke () =
  Printf.printf "\n=== Shard smoke (2 shards + merge vs unsharded) ===\n%!";
  let targets = campaign_targets ~count:8 () in
  let rounds = 6 in
  let unsharded =
    Campaign.Campaign.run (campaign_config ~rounds ~jobs:2 ()) targets
  in
  let merged, walls = run_sharded ~rounds ~jobs:2 ~shards:2 targets in
  let verdicts_ok =
    String.equal
      (Campaign.Campaign.verdicts_text unsharded)
      (Campaign.Campaign.verdicts_text merged)
  in
  let evidence_ok =
    String.equal
      (Campaign.Campaign.evidence_text unsharded)
      (Campaign.Campaign.evidence_text merged)
  in
  let vulnerable = Campaign.Campaign.vulnerable_count merged in
  let exploits = exploit_count merged in
  let ok = verdicts_ok && evidence_ok && vulnerable > 0 && exploits > 0 in
  Printf.printf
    "slices: [%s]; merged %d targets, %d vulnerable, %d exploit payloads; \
     verdicts identical: %b, evidence identical: %b -> %s\n"
    (String.concat "; "
       (List.map (fun (n, w) -> Printf.sprintf "%d targets %.2fs" n w) walls))
    (List.length merged.Campaign.Campaign.cr_results)
    vulnerable exploits verdicts_ok evidence_ok
    (if ok then "OK" else "MISMATCH");
  json_record ~experiment:"shard-smoke"
    ~bounds:
      [
        {
          jb_name = "merge_identity";
          jb_bound = "merged verdicts+evidence = unsharded";
          jb_pass = verdicts_ok && evidence_ok;
        };
      ]
    [
      ("vulnerable", float_of_int vulnerable);
      ("exploits", float_of_int exploits);
    ];
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Corpus: persistent seed reuse (warm vs cold)                         *)
(* ------------------------------------------------------------------ *)

module SeedCorpus = Wasai_corpus.Corpus

let preload_of_outcome (o : Core.Engine.outcome) =
  List.map
    (fun (i : Core.Engine.interesting) ->
      (i.Core.Engine.is_action, i.Core.Engine.is_args))
    o.Core.Engine.out_interesting

let fired_flags (o : Core.Engine.outcome) = List.filter snd o.Core.Engine.out_flags

(* The quantity a preload actually saves: solver runs (quick-path +
   bit-blasted).  Replayed seeds re-open the prior run's branches
   without re-deriving the flips that found them, so a warm run's
   feedback loop has far less left to solve.  Verdict *rounds* are the
   wrong axis: they are bounded below by cross-round chain mechanics
   (db-gated actions need a writer round before the reader, the action
   schedule cycles mod |actions|) that replaying seeds cannot shortcut. *)
let solver_runs (o : Core.Engine.outcome) =
  o.Core.Engine.out_solver.Wasai_smt.Solver.st_quick
  + o.Core.Engine.out_solver.Wasai_smt.Solver.st_blasted

(* Engine-level warm-vs-cold over one sample: fuzz cold, preload the
   cold run's interesting seeds, fuzz again. *)
let warm_cold ~rounds (s : BG.Corpus.sample) =
  let cfg =
    (Core.Engine.make_config ~rounds:(rounds) ~rng_seed:(Int64.of_int s.BG.Corpus.smp_id) ())
  in
  let cold = Core.Engine.fuzz ~cfg (target_of_sample s) in
  let warm =
    Core.Engine.fuzz
      ~cfg:{ cfg with Core.Engine.cfg_preload = preload_of_outcome cold }
      (target_of_sample s)
  in
  (cold, warm)

let corpus_exp (opts : options) =
  let count = max 16 opts.opt_fig3_contracts in
  let rounds = opts.opt_rounds in
  Printf.printf
    "\n=== Corpus: cross-run seed reuse over %d generated contracts (%d \
     rounds each) ===\n%!"
    count rounds;
  (* Engine level: solver runs to the same verdict set, cold vs warm. *)
  let cold_q, warm_q, cold_vr, warm_vr, parity, seeds =
    List.fold_left
      (fun (cq, wq, cv, wv, ok, n) s ->
        let cold, warm = warm_cold ~rounds s in
        ( cq + solver_runs cold,
          wq + solver_runs warm,
          cv + max 1 cold.Core.Engine.out_verdict_round,
          wv + max 1 warm.Core.Engine.out_verdict_round,
          ok && fired_flags cold = fired_flags warm,
          n + List.length cold.Core.Engine.out_interesting ))
      (0, 0, 0, 0, true, 0)
      (BG.Corpus.coverage_set ~count ())
  in
  Printf.printf
    "  engine: cold solver runs=%d, warm (preloaded)=%d -> %.2fx fewer; \
     verdict parity: %b; rounds-to-verdict cold=%d warm=%d; %d \
     interesting seeds\n"
    cold_q warm_q
    (float_of_int cold_q /. float_of_int (max 1 warm_q))
    parity cold_vr warm_vr seeds;
  (* Campaign level: a cold campaign fills the corpus file; warm reruns
     must reproduce the verdict flags, byte-identically across --jobs. *)
  let targets = campaign_targets ~count () in
  let corpus_file = Filename.temp_file "wasai-corpus" ".seeds" in
  Sys.remove corpus_file;
  let campaign ~jobs ~corpus =
    Campaign.Campaign.run
      (Campaign.Campaign.make_config ~jobs ~corpus
         ~engine:
           (Core.Engine.make_config ~rounds:(rounds) ())
         ())
      targets
  in
  let cold_r = campaign ~jobs:2 ~corpus:corpus_file in
  let warm1_file = corpus_file ^ ".w1" and warm2_file = corpus_file ^ ".w2" in
  let copy src dst = SeedCorpus.save (SeedCorpus.load src) dst in
  copy corpus_file warm1_file;
  copy corpus_file warm2_file;
  let warm1 = campaign ~jobs:1 ~corpus:warm1_file in
  let warm2 = campaign ~jobs:2 ~corpus:warm2_file in
  let stored = SeedCorpus.load corpus_file in
  let minimized = SeedCorpus.minimize stored in
  (* Flag parity per target: chain state is part of a trace, so a replay
     can steer a warm run onto a trajectory that misses (or adds) a
     state-dependent flag.  Report the distribution, not a boolean. *)
  let flag_lines r =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Campaign.Campaign.flags_text r))
  in
  let agree =
    List.fold_left2
      (fun n c w -> if String.equal c w then n + 1 else n)
      0 (flag_lines cold_r) (flag_lines warm1)
  in
  let total = List.length (flag_lines cold_r) in
  Printf.printf
    "  campaign: %d seeds stored cold; warm preloaded %d; flag parity \
     warm-vs-cold: %d/%d targets; warm verdicts byte-identical across \
     jobs 1/2: %b\n"
    cold_r.Campaign.Campaign.cr_corpus_added
    warm1.Campaign.Campaign.cr_corpus_preloaded agree total
    (String.equal
       (Campaign.Campaign.verdicts_text warm1)
       (Campaign.Campaign.verdicts_text warm2));
  Printf.printf "  minimize: %d -> %d seeds (greedy set cover)\n"
    (SeedCorpus.size stored) (SeedCorpus.size minimized);
  List.iter Sys.remove [ corpus_file; warm1_file; warm2_file ]

(* Quick local verification (<10 s): a warm rerun must reach the cold
   run's exact verdict set with at least 2x fewer solver runs in
   aggregate, campaign warm/cold flag parity must hold byte-for-byte and
   stay byte-identical across worker counts, and minimize must preserve
   the per-target edge union. *)
let corpus_smoke () =
  Printf.printf "\n=== Corpus smoke (warm seed reuse + parity) ===\n%!";
  let rounds = 8 in
  let samples = BG.Corpus.coverage_set ~count:6 () in
  let cold_sum, warm_sum, parity =
    List.fold_left
      (fun (c, w, ok) s ->
        let cold, warm = warm_cold ~rounds s in
        ( c + solver_runs cold,
          w + solver_runs warm,
          ok && fired_flags cold = fired_flags warm ))
      (0, 0, true) samples
  in
  let targets = campaign_targets ~count:6 () in
  let corpus_file = Filename.temp_file "wasai-smoke" ".seeds" in
  Sys.remove corpus_file;
  let campaign ~jobs ~corpus =
    Campaign.Campaign.run
      (Campaign.Campaign.make_config ~jobs ~corpus
         ~engine:
           (Core.Engine.make_config ~rounds:(rounds) ())
         ())
      targets
  in
  let cold_r = campaign ~jobs:2 ~corpus:corpus_file in
  let warm1_file = corpus_file ^ ".w1" and warm2_file = corpus_file ^ ".w2" in
  let copy src dst = SeedCorpus.save (SeedCorpus.load src) dst in
  copy corpus_file warm1_file;
  copy corpus_file warm2_file;
  let warm1 = campaign ~jobs:1 ~corpus:warm1_file in
  let warm2 = campaign ~jobs:2 ~corpus:warm2_file in
  let stored = SeedCorpus.load corpus_file in
  let minimized = SeedCorpus.minimize stored in
  let flags_ok =
    String.equal
      (Campaign.Campaign.flags_text cold_r)
      (Campaign.Campaign.flags_text warm1)
  in
  let jobs_ok =
    String.equal
      (Campaign.Campaign.verdicts_text warm1)
      (Campaign.Campaign.verdicts_text warm2)
  in
  let minimize_ok =
    SeedCorpus.size minimized <= SeedCorpus.size stored
    && SeedCorpus.targets minimized = SeedCorpus.targets stored
    && List.for_all
         (fun target ->
           SeedCorpus.edge_union (SeedCorpus.records_for minimized ~target)
           = SeedCorpus.edge_union (SeedCorpus.records_for stored ~target))
         (SeedCorpus.targets stored)
  in
  let speedup_ok = 2 * warm_sum <= cold_sum in
  List.iter Sys.remove [ corpus_file; warm1_file; warm2_file ];
  let ok = parity && flags_ok && jobs_ok && minimize_ok && speedup_ok in
  Printf.printf
    "cold solver runs=%d warm=%d (>=2x fewer: %b); verdict parity: %b; \
     campaign flags warm=cold: %b; warm verdicts identical jobs 1/2: %b; \
     minimize %d -> %d keeps coverage: %b -> %s\n"
    cold_sum warm_sum speedup_ok parity flags_ok jobs_ok
    (SeedCorpus.size stored) (SeedCorpus.size minimized) minimize_ok
    (if ok then "OK" else "MISMATCH");
  json_record ~experiment:"corpus-smoke"
    ~bounds:
      [
        {
          jb_name = "warm_speedup";
          jb_bound = ">= 2x fewer solver runs";
          jb_pass = speedup_ok;
        };
        {
          jb_name = "parity";
          jb_bound = "warm = cold flags, jobs 1 = jobs 2";
          jb_pass = parity && flags_ok && jobs_ok;
        };
      ]
    [
      ("cold_solver_runs", float_of_int cold_sum);
      ("warm_solver_runs", float_of_int warm_sum);
    ];
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Trace: flat event buffer vs the historical list collector            *)
(* ------------------------------------------------------------------ *)

module Wasabi = Wasai_wasabi
module Trace = Wasabi.Trace

(* The pre-buffer collector, reconstructed as the allocation baseline:
   one heap record per event, operands consed onto a per-record list,
   the payload reversed into a materialised [record list] at drain —
   exactly the profile the flat tape removed. *)
module List_collector = struct
  type pending =
    | P_none
    | P_instr of int * Wasai_wasm.Values.value list
    | P_pre of int * Wasai_wasm.Values.value list
    | P_post of int * Wasai_wasm.Values.value list

  type t = { mutable acc : Trace.record list; mutable pending : pending }

  let create () = { acc = []; pending = P_none }

  let flush t =
    (match t.pending with
    | P_none -> ()
    | P_instr (site, ops) ->
        t.acc <- Trace.R_instr { site; ops = List.rev ops } :: t.acc
    | P_pre (site, args) ->
        t.acc <- Trace.R_call_pre { site; args = List.rev args } :: t.acc
    | P_post (site, results) ->
        t.acc <- Trace.R_call_post { site; results = List.rev results } :: t.acc);
    t.pending <- P_none

  let begin_instr t s =
    flush t;
    t.pending <- P_instr (s, [])

  let begin_call_pre t s =
    flush t;
    t.pending <- P_pre (s, [])

  let begin_call_post t s =
    flush t;
    t.pending <- P_post (s, [])

  let operand t v =
    match t.pending with
    | P_none -> ()
    | P_instr (s, ops) -> t.pending <- P_instr (s, v :: ops)
    | P_pre (s, ops) -> t.pending <- P_pre (s, v :: ops)
    | P_post (s, ops) -> t.pending <- P_post (s, v :: ops)

  let func_begin t f =
    flush t;
    t.acc <- Trace.R_func_begin f :: t.acc

  let func_end t f =
    flush t;
    t.acc <- Trace.R_func_end f :: t.acc

  let drain t =
    flush t;
    let r = List.rev t.acc in
    t.acc <- [];
    r
end

(* Re-drive one captured payload through a collector's hook API, exactly
   as the instrumented contract's wasai.* imports would. *)
let replay_hooks ~begin_instr ~begin_call_pre ~begin_call_post ~operand
    ~func_begin ~func_end records =
  List.iter
    (fun r ->
      match r with
      | Trace.R_instr { site; ops } ->
          begin_instr site;
          List.iter operand ops
      | Trace.R_call_pre { site; args } ->
          begin_call_pre site;
          List.iter operand args
      | Trace.R_call_post { site; results } ->
          begin_call_post site;
          List.iter operand results
      | Trace.R_func_begin f -> func_begin f
      | Trace.R_func_end f -> func_end f)
    records

(* Capture the per-payload record streams (plus each payload's fused
   scan) of a short real run over a DB-gated victim, so instr,
   call-pre/post and func events all appear in the workload. *)
let trace_payloads () =
  let spec =
    {
      (BG.Contracts.default_spec (Wasai_eosio.Name.of_string "victim")) with
      BG.Contracts.sp_fake_eos_guard = false;
      sp_db_gate = true;
      sp_payout_inline = true;
      sp_blockinfo = true;
    }
  in
  let m, abi = BG.Contracts.build spec in
  let s =
    Core.Engine.setup
      (Core.Engine.make_config ~rounds:(2) ())
      {
        Core.Engine.tgt_account = Wasai_eosio.Name.of_string "victim";
        tgt_module = m;
        tgt_abi = abi;
      }
  in
  let actions = Array.of_list abi.Wasai_eosio.Abi.abi_actions in
  let payloads = ref [] in
  for round = 0 to 5 do
    let def = actions.(round mod Array.length actions) in
    let seed =
      Core.Seed.random s.Core.Engine.rng ~identities:s.Core.Engine.identities
        def
    in
    let channels =
      if
        Wasai_eosio.Name.equal def.Wasai_eosio.Abi.act_name
          Wasai_eosio.Name.transfer
      then
        Core.Scanner.[ Ch_genuine; Ch_direct; Ch_fake_token; Ch_fake_notif ]
      else [ Core.Scanner.Ch_action def.Wasai_eosio.Abi.act_name ]
    in
    List.iter
      (fun channel ->
        let ex = Core.Engine.run_one s seed channel in
        payloads :=
          (Trace.Compat.to_list ex.Core.Engine.ex_trace, ex.Core.Engine.ex_scan)
          :: !payloads)
      channels
  done;
  (s, List.rev !payloads)

let trace_exp () =
  Printf.printf "\n=== Trace: flat event buffer vs list collector ===\n%!";
  let _, payloads = trace_payloads () in
  let streams = List.map fst payloads in
  let records_per_sweep =
    List.fold_left (fun n rs -> n + List.length rs) 0 streams
  in
  let reps = 400 in
  let payload_count = reps * List.length streams in
  let bench name f =
    Gc.compact ();
    let a0 = Gc.allocated_bytes () in
    let _, t =
      time_it (fun () ->
          for _ = 1 to reps do
            f ()
          done)
    in
    let per_payload =
      (Gc.allocated_bytes () -. a0) /. float_of_int payload_count
    in
    Printf.printf "  %-8s %8.2f Mrecords/s  %10.0f allocated bytes/payload\n%!"
      name
      (float_of_int (reps * records_per_sweep) /. t /. 1e6)
      per_payload;
    per_payload
  in
  let lc = List_collector.create () in
  let list_bytes =
    bench "list" (fun () ->
        List.iter
          (fun rs ->
            replay_hooks
              ~begin_instr:(List_collector.begin_instr lc)
              ~begin_call_pre:(List_collector.begin_call_pre lc)
              ~begin_call_post:(List_collector.begin_call_post lc)
              ~operand:(List_collector.operand lc)
              ~func_begin:(List_collector.func_begin lc)
              ~func_end:(List_collector.func_end lc) rs;
            ignore (List_collector.drain lc))
          streams)
  in
  let buf = Trace.create () in
  let buffer_bytes =
    bench "buffer" (fun () ->
        List.iter
          (fun rs ->
            Trace.reset buf;
            replay_hooks ~begin_instr:(Trace.begin_instr buf)
              ~begin_call_pre:(Trace.begin_call_pre buf)
              ~begin_call_post:(Trace.begin_call_post buf)
              ~operand:(Trace.operand buf) ~func_begin:(Trace.func_begin buf)
              ~func_end:(Trace.func_end buf) rs;
            ignore (Trace.Buffer.length buf))
          streams)
  in
  let ratio = list_bytes /. Float.max 1.0 buffer_bytes in
  let ok = ratio >= 2.0 in
  Printf.printf
    "  %d payloads x %d reps, %d records/sweep; allocation ratio list/buffer \
     = %.1fx (required >= 2x): %b\n"
    (List.length streams) reps records_per_sweep ratio ok;
  if not ok then begin
    Printf.printf "trace buffer benchmark FAILED\n";
    exit 1
  end

(* Quick local verification (<10 s): the streaming pipeline must be
   observationally identical to the historical materialised view.
   Per-payload branch edges recomputed from the compat record list must
   equal the fused scan's (hence equal coverage signatures), feeding the
   record list back through the append path must round-trip losslessly,
   and two identically-seeded fuzz runs through the buffer pipeline must
   fire the same verdicts with the same coverage signature. *)
let trace_smoke () =
  Printf.printf "\n=== Trace smoke (streaming pipeline identity) ===\n%!";
  let s, payloads = trace_payloads () in
  let meta = s.Core.Engine.meta in
  let ref_edges records =
    List.filter_map
      (fun r ->
        match r with
        | Trace.R_instr { site; ops = [ Wasai_wasm.Values.I32 c ] } -> (
            match (Trace.site_of meta site).Trace.site_instr with
            | Wasai_wasm.Ast.Br_if _ | Wasai_wasm.Ast.If _ ->
                Some (site, if c = 0l then 0l else 1l)
            | Wasai_wasm.Ast.Br_table _ -> Some (site, c)
            | _ -> None)
        | _ -> None)
      records
  in
  let scan_ok, roundtrip_ok =
    List.fold_left
      (fun (sok, rok) (records, (sc : Core.Engine.scan)) ->
        let edges = ref_edges records in
        ( sok
          && sc.Core.Engine.sc_edges = edges
          && Int64.equal
               (Trace.edge_signature sc.Core.Engine.sc_edges)
               (Trace.edge_signature edges),
          rok && Trace.Compat.to_list (Trace.Compat.of_records records) = records
        ))
      (true, true) payloads
  in
  let cover_signature (o : Core.Engine.outcome) =
    Trace.edge_signature
      (List.concat_map
         (fun (i : Core.Engine.interesting) -> i.Core.Engine.is_cover)
         o.Core.Engine.out_interesting)
  in
  let verdict_ok, signature_ok, truncated_ok =
    List.fold_left
      (fun (vok, gok, tok) smp ->
        let cfg =
          (Core.Engine.make_config ~rounds:(6) ~rng_seed:(Int64.of_int smp.BG.Corpus.smp_id) ())
        in
        let o1 = Core.Engine.fuzz ~cfg (target_of_sample smp) in
        let o2 = Core.Engine.fuzz ~cfg (target_of_sample smp) in
        ( vok && o1.Core.Engine.out_flags = o2.Core.Engine.out_flags,
          gok
          && Int64.equal (cover_signature o1) (cover_signature o2)
          && o1.Core.Engine.out_branches = o2.Core.Engine.out_branches,
          tok && o1.Core.Engine.out_truncated = 0 ))
      (true, true, true)
      (BG.Corpus.coverage_set ~count:4 ())
  in
  let ok = scan_ok && roundtrip_ok && verdict_ok && signature_ok && truncated_ok in
  Printf.printf
    "%d payloads: fused scan edges = list-pass edges: %b; record round-trip \
     lossless: %b; rerun verdicts identical: %b; coverage signatures \
     identical: %b; no spurious truncation: %b -> %s\n"
    (List.length payloads) scan_ok roundtrip_ok verdict_ok signature_ok
    truncated_ok
    (if ok then "OK" else "MISMATCH");
  json_record ~experiment:"trace-smoke"
    ~bounds:
      [
        {
          jb_name = "pipeline_identity";
          jb_bound = "fused scan = list pass, reruns identical";
          jb_pass = ok;
        };
      ]
    [ ("payloads", float_of_int (List.length payloads)) ];
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Serve: fuzzing as a service                                          *)
(* ------------------------------------------------------------------ *)

module Serve = Wasai_serve

(* <10 s check of the serve daemon: two tenants submitting concurrently
   stream the same verdicts a batch campaign computes over the same
   bytes, a saturated tenant queue answers explicit BUSY backpressure,
   and an aborted (simulated kill -9) root resumes to a tenant report
   byte-identical to the uninterrupted run's. *)
let serve_smoke () =
  Printf.printf
    "\n=== Serve smoke (two tenants + backpressure + kill/resume) ===\n%!";
  let rounds = 6 in
  let engine =
    (Core.Engine.make_config ~rounds:(rounds) ())
  in
  (* short /tmp anchor: Unix-domain socket paths cap around 104 bytes *)
  let dir =
    Printf.sprintf "/tmp/wasai-serve-smoke-%d-%d" (Unix.getpid ())
      (int_of_float (Unix.gettimeofday () *. 1000.) mod 1_000_000)
  in
  Unix.mkdir dir 0o755;
  let contracts =
    List.mapi
      (fun i (s : BG.Corpus.sample) ->
        ( Wasai_eosio.Name.to_string (campaign_account i),
          Wasai_wasm.Encode.encode s.BG.Corpus.smp_module,
          Wasai_eosio.Abi.to_text s.BG.Corpus.smp_abi ))
      (BG.Corpus.coverage_set ~count:8 ())
  in
  let alice = List.filteri (fun i _ -> i mod 2 = 0) contracts in
  let bob = List.filteri (fun i _ -> i mod 2 = 1) contracts in
  let client_contracts cs =
    List.map
      (fun (name, wasm, abi) ->
        { Serve.Client.ct_name = name; ct_wasm = wasm; ct_abi = Some abi })
      cs
  in
  let connect_retry path =
    let rec go n =
      match Serve.Client.connect path with
      | c -> c
      | exception Unix.Unix_error _ when n > 0 ->
          Unix.sleepf 0.05;
          go (n - 1)
    in
    go 100
  in
  let submit ~tenant socket cs =
    let c = connect_retry socket in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () -> Serve.Client.submit_batch c ~tenant (client_contracts cs))
  in
  (* batch reference over the same encoded bytes the daemon decodes *)
  let batch_verdicts cs =
    let targets =
      List.map
        (fun (name, wasm, abi) ->
          {
            Campaign.Campaign.sp_name = name;
            sp_size = String.length wasm;
            sp_load =
              (fun () ->
                {
                  Core.Engine.tgt_account = Wasai_eosio.Name.of_string name;
                  tgt_module = Wasai_wasm.Decode.decode wasm;
                  tgt_abi = Wasai_eosio.Abi.of_text abi;
                });
          })
        cs
    in
    Campaign.Campaign.verdicts_text
      (Campaign.Campaign.run
         (Campaign.Campaign.make_config ~jobs:2 ~engine ())
         targets)
  in
  let streamed_verdicts (b : Serve.Client.batch) =
    Campaign.Campaign.verdicts_text
      (Campaign.Campaign.of_entries
         (List.map (fun (_, _, e) -> e) b.Serve.Client.bt_verdicts))
  in
  (* phase 1: one daemon, two tenants submitting from concurrent domains;
     depth 2 < 4 submissions per tenant forces BUSY backpressure, which
     the client retry loop absorbs *)
  let root1 = Filename.concat dir "root" in
  let socket1 = Filename.concat dir "s.sock" in
  let t =
    Serve.Serve.create
      (Serve.Serve.make_config ~root:root1 ~socket:socket1 ~jobs:2 ~depth:2
         ~engine ())
  in
  let d = Domain.spawn (fun () -> Serve.Serve.serve t) in
  let da = Domain.spawn (fun () -> submit ~tenant:"alice" socket1 alice) in
  let db = Domain.spawn (fun () -> submit ~tenant:"bob" socket1 bob) in
  let ba = Domain.join da in
  let bb = Domain.join db in
  Serve.Serve.request_stop t;
  Domain.join d;
  let parity_a = String.equal (streamed_verdicts ba) (batch_verdicts alice) in
  let parity_b = String.equal (streamed_verdicts bb) (batch_verdicts bob) in
  let busy = ba.Serve.Client.bt_retries + bb.Serve.Client.bt_retries in
  Printf.printf
    "  two tenants: alice parity %b, bob parity %b, BUSY backpressure \
     replies absorbed: %d\n%!"
    parity_a parity_b busy;
  (* phase 2: kill (abort drops the queued backlog un-journaled, as
     kill -9 would) and resume; the resumed report must be byte-identical
     to phase 1's uninterrupted alice report *)
  let root2 = Filename.concat dir "root2" in
  let socket2 = Filename.concat dir "k.sock" in
  let t2 =
    Serve.Serve.create
      (Serve.Serve.make_config ~root:root2 ~socket:socket2 ~jobs:1 ~depth:8
         ~engine ())
  in
  let d2 = Domain.spawn (fun () -> Serve.Serve.serve t2) in
  let c = connect_retry socket2 in
  List.iter
    (fun (name, wasm, abi) ->
      Serve.Client.send c
        (Serve.Wire.Submit
           {
             rq_tenant = "alice";
             rq_name = name;
             rq_wasm = wasm;
             rq_abi = Some abi;
                  rq_slices = 1;
           }))
    alice;
  let rec await_first_verdict () =
    match Serve.Client.next c with
    | Serve.Wire.Verdict _ -> ()
    | _ -> await_first_verdict ()
  in
  await_first_verdict ();
  Serve.Serve.request_abort t2;
  Domain.join d2;
  Serve.Client.close c;
  let journaled =
    List.length (Serve.Serve.tenant_entries ~root:root2 ~engine "alice")
  in
  let t3 =
    Serve.Serve.create
      (Serve.Serve.make_config ~root:root2 ~socket:socket2 ~jobs:2 ~depth:8
         ~resume:true ~engine ())
  in
  let d3 = Domain.spawn (fun () -> Serve.Serve.serve t3) in
  ignore (submit ~tenant:"alice" socket2 alice);
  Serve.Serve.request_stop t3;
  Domain.join d3;
  let reference = Serve.Serve.tenant_report ~root:root1 ~engine "alice" in
  let resumed = Serve.Serve.tenant_report ~root:root2 ~engine "alice" in
  let partial = journaled >= 1 && journaled < List.length alice in
  let identical = String.equal reference resumed in
  Printf.printf
    "  kill/resume: %d/%d journaled at kill, resumed report identical: %b\n%!"
    journaled (List.length alice) identical;
  let ok = parity_a && parity_b && busy >= 1 && partial && identical in
  Printf.printf "serve smoke: %s\n" (if ok then "OK" else "MISMATCH");
  json_record ~experiment:"serve-smoke"
    ~bounds:
      [
        {
          jb_name = "tenant_parity";
          jb_bound = "streamed verdicts = batch campaign";
          jb_pass = parity_a && parity_b;
        };
        {
          jb_name = "kill_resume";
          jb_bound = "resumed report byte-identical";
          jb_pass = partial && identical;
        };
      ]
    [ ("busy_retries", float_of_int busy) ];
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Oracle registry: 8-class smoke                                       *)
(* ------------------------------------------------------------------ *)

(* Quick local verification (<10 s) of the pluggable oracle layer.
   Detection: over small slices of the ground-truth and extension
   corpora, WASAI's per-class precision and recall must be >= every
   baseline that supports the class, and the three extension classes
   must come out perfect — every planted bug found, zero false positives
   on their safe variants.  Byte-identity: the extension oracles must
   stay silent on the legacy corpus, and a campaign over legacy targets
   must produce journal lines and a verdict report that never mention an
   extension flag, with every journal line round-tripping byte-for-byte
   through the strict parser. *)
let oracle_smoke () =
  Printf.printf
    "\n=== Oracle smoke (8-class detection + legacy byte-identity) ===\n%!";
  let rounds = 24 in
  let legacy = BG.Corpus.ground_truth ~scale:100 () in
  let ext = BG.Corpus.extension ~scale:10 () in
  let conf : (string * BG.Contracts.vuln, Metrics.confusion) Hashtbl.t =
    Hashtbl.create 32
  in
  let get tool cls =
    match Hashtbl.find_opt conf (tool, cls) with
    | Some c -> c
    | None ->
        let c = Metrics.empty () in
        Hashtbl.replace conf (tool, cls) c;
        c
  in
  let ext_fires_on_legacy = ref 0 in
  let eval ~check_ext_silence (s : BG.Corpus.sample) =
    let flag = flag_of_class s.BG.Corpus.smp_class in
    let wasai = run_wasai ~rounds s in
    let record tool verdict =
      match verdict flag with
      | Some predicted ->
          Metrics.record (get tool s.BG.Corpus.smp_class)
            ~truth:s.BG.Corpus.smp_truth ~predicted
      | None -> ()
    in
    record "WASAI" wasai;
    record "EOSFuzzer" (run_eosfuzzer ~rounds s);
    record "EOSAFE" (run_eosafe s);
    if check_ext_silence then
      List.iter
        (fun f -> if wasai f = Some true then incr ext_fires_on_legacy)
        Core.Scanner.extension_flags
  in
  List.iter (eval ~check_ext_silence:true) legacy;
  List.iter (eval ~check_ext_silence:false) ext;
  let classes =
    List.map fst (BG.Corpus.paper_counts @ BG.Corpus.extension_counts)
  in
  let detection_ok =
    List.for_all
      (fun cls ->
        match Hashtbl.find_opt conf ("WASAI", cls) with
        | None -> false
        | Some w ->
            let beats tool =
              match Hashtbl.find_opt conf (tool, cls) with
              | None -> true
              | Some b ->
                  Metrics.precision w >= Metrics.precision b
                  && Metrics.recall w >= Metrics.recall b
            in
            let ok = beats "EOSFuzzer" && beats "EOSAFE" in
            Printf.printf "  %-14s WASAI %s%s\n"
              (BG.Contracts.string_of_vuln cls)
              (Metrics.row_string w)
              (if ok then "" else "  << below a baseline");
            ok)
      classes
  in
  let ext_perfect =
    List.for_all
      (fun (cls, _) ->
        match Hashtbl.find_opt conf ("WASAI", cls) with
        | Some c ->
            c.Metrics.tp > 0 && c.Metrics.tn > 0 && c.Metrics.fp = 0
            && c.Metrics.fn = 0
        | None -> false)
      BG.Corpus.extension_counts
  in
  (* Byte-identity of the legacy wire: journal + verdict report. *)
  let targets =
    List.mapi
      (fun i (s : BG.Corpus.sample) ->
        let account = campaign_account i in
        {
          Campaign.Campaign.sp_name = Wasai_eosio.Name.to_string account;
          sp_size =
            String.length (Wasai_wasm.Encode.encode s.BG.Corpus.smp_module);
          sp_load =
            (fun () ->
              {
                Core.Engine.tgt_account = account;
                tgt_module = s.BG.Corpus.smp_module;
                tgt_abi = s.BG.Corpus.smp_abi;
              });
        })
      (List.filteri (fun i _ -> i < 8) legacy)
  in
  let journal = Filename.temp_file "wasai-oracle-smoke" ".journal" in
  Sys.remove journal;
  let report =
    Campaign.Campaign.run (campaign_config ~journal ~rounds ~jobs:2 ()) targets
  in
  let lines =
    let ic = open_in journal in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  Sys.remove journal;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let mentions_ext s =
    List.exists
      (fun f -> contains s (Core.Scanner.string_of_flag f))
      Core.Scanner.extension_flags
  in
  (* Campaign journals open with the backend header line; it must
     round-trip too, and the entry lines after it must stay on the
     legacy wire. *)
  let header_ok, entry_lines =
    match lines with
    | first :: rest -> (
        match Campaign.Journal.header_of_line first with
        | Ok h ->
            (String.equal (Campaign.Journal.line_of_header h) first, rest)
        | Error _ -> (false, rest))
    | [] -> (false, [])
  in
  let journal_ok =
    header_ok
    && List.length entry_lines = List.length targets
    && List.for_all
         (fun line ->
           (not (mentions_ext line))
           &&
           match Campaign.Journal.entry_of_line line with
           | Ok e -> String.equal (Campaign.Journal.line_of_entry e) line
           | Error _ -> false)
         entry_lines
  in
  let report_ok = not (mentions_ext (Campaign.Campaign.verdicts_text report)) in
  let silent_ok = !ext_fires_on_legacy = 0 in
  let ok = detection_ok && ext_perfect && silent_ok && journal_ok && report_ok in
  Printf.printf
    "detection >= baselines on all 8 classes: %b; extension classes perfect \
     (planted bugs found, zero FPs): %b; extension oracles silent on %d \
     legacy contracts: %b; header + %d journal lines round-tripping \
     byte-identically and extension-free: %b; verdict report \
     extension-free: %b -> %s\n"
    detection_ok ext_perfect (List.length legacy) silent_ok
    (List.length entry_lines) journal_ok report_ok
    (if ok then "OK" else "MISMATCH");
  json_record ~experiment:"oracle-smoke"
    ~bounds:
      [
        {
          jb_name = "detection";
          jb_bound = ">= baselines on all 8 classes";
          jb_pass = detection_ok;
        };
        {
          jb_name = "legacy_byte_identity";
          jb_bound = "journal + report extension-free";
          jb_pass = silent_ok && journal_ok && report_ok;
        };
      ]
    [ ("legacy_contracts", float_of_int (List.length legacy)) ];
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Compiled execution tier (Exec_backend)                               *)
(* ------------------------------------------------------------------ *)

(* Run one tier over a corpus with symbolic feedback off, so wall-clock
   is dominated by payload execution — the component the compiled tier
   accelerates — rather than the solver.  Returns one canonical
   verdict+coverage line per sample (the parity artefact), total pushed
   transactions, and wall-clock seconds. *)
let run_tier ~rounds ~backend samples =
  let t0 = Unix.gettimeofday () in
  let lines, tx =
    List.fold_left
      (fun (lines, tx) (s : BG.Corpus.sample) ->
        let o =
          Core.Engine.fuzz
            ~cfg:
              (Core.Engine.make_config ~rounds
                 ~rng_seed:(Int64.of_int s.BG.Corpus.smp_id)
                 ~feedback:false ~backend ())
            (target_of_sample s)
        in
        let name =
          Wasai_eosio.Name.to_string s.BG.Corpus.smp_spec.BG.Contracts.sp_account
        in
        let line =
          Printf.sprintf "%s b=%d %s" name o.Core.Engine.out_branches
            (String.concat ","
               (List.filter_map
                  (fun (f, b) ->
                    if b then Some (Core.Scanner.string_of_flag f) else None)
                  o.Core.Engine.out_flags))
        in
        (line :: lines, tx + o.Core.Engine.out_transactions))
      ([], 0) samples
  in
  (List.rev lines, tx, Unix.gettimeofday () -. t0)

(* Figure 3 throughput of the compiled tier vs the interpreter over the
   legacy ground-truth corpus: the tentpole target is >= 2x payloads/sec
   at identical verdicts and coverage. *)
let compile_exp (opts : options) =
  Printf.printf "\n=== Compiled execution tier: throughput vs interpreter ===\n";
  let samples = BG.Corpus.coverage_set ~count:opts.opt_fig3_contracts () in
  let rounds = opts.opt_rounds in
  Printf.printf "(%d branch-rich Figure 3 contracts, %d rounds each, symbolic feedback off)\n%!"
    (List.length samples) rounds;
  let i_lines, i_tx, i_wall = run_tier ~rounds ~backend:Core.Exec_backend.Interp samples in
  let c_lines, c_tx, c_wall = run_tier ~rounds ~backend:Core.Exec_backend.Compiled samples in
  let parity = i_lines = c_lines && i_tx = c_tx in
  let ipps = float_of_int i_tx /. i_wall in
  let cpps = float_of_int c_tx /. c_wall in
  Printf.printf "  interp   : %6d payloads in %6.2f s -> %8.0f payloads/sec\n"
    i_tx i_wall ipps;
  Printf.printf "  compiled : %6d payloads in %6.2f s -> %8.0f payloads/sec\n"
    c_tx c_wall cpps;
  Printf.printf
    "  speedup %.2fx (target >= 2x); verdict/coverage parity: %b\n%!"
    (cpps /. ipps) parity;
  json_record ~experiment:"compile"
    ~bounds:
      [
        {
          jb_name = "parity";
          jb_bound = "verdict/coverage identical across tiers";
          jb_pass = parity;
        };
      ]
    [
      ("interp_payloads_per_s", ipps);
      ("compiled_payloads_per_s", cpps);
      ("speedup", cpps /. ipps);
    ]

(* Quick local verification (<10 s) of the compiled tier: over a small
   legacy slice, the compiled backend must reach byte-identical
   verdict+coverage lines and push counts, and must not be slower than
   the interpreter. *)
let compile_smoke () =
  Printf.printf "\n=== Compile smoke (tier parity + throughput) ===\n%!";
  let samples = BG.Corpus.ground_truth ~scale:100 () in
  let rounds = 16 in
  let i_lines, i_tx, i_wall = run_tier ~rounds ~backend:Core.Exec_backend.Interp samples in
  let c_lines, c_tx, c_wall = run_tier ~rounds ~backend:Core.Exec_backend.Compiled samples in
  let parity = i_lines = c_lines && i_tx = c_tx in
  let ipps = float_of_int i_tx /. i_wall in
  let cpps = float_of_int c_tx /. c_wall in
  let faster = cpps >= ipps in
  let ok = parity && faster in
  Printf.printf
    "%d contracts, %d payloads: verdict+coverage parity: %b; interp %.0f \
     payloads/sec vs compiled %.0f payloads/sec (%.2fx, must be >= 1x): %b \
     -> %s\n"
    (List.length samples) i_tx parity ipps cpps (cpps /. ipps) faster
    (if ok then "OK" else "MISMATCH");
  json_record ~experiment:"compile-smoke"
    ~bounds:
      [
        {
          jb_name = "parity";
          jb_bound = "verdict/coverage identical across tiers";
          jb_pass = parity;
        };
        { jb_name = "speed"; jb_bound = ">= 1x interpreter"; jb_pass = faster };
      ]
    [
      ("interp_payloads_per_s", ipps);
      ("compiled_payloads_per_s", cpps);
      ("speedup", cpps /. ipps);
    ];
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Telemetry: zero-interference observability                           *)
(* ------------------------------------------------------------------ *)

module Telemetry = Wasai_telemetry.Telemetry

(* Best-of-[reps] wall-clock of the pure-execution sweep (symbolic
   feedback off) over a corpus slice, telemetry off vs on, interleaved
   so machine drift hits both sides equally.  Minima, not means: the
   question is the probes' intrinsic cost, and every slower run is
   scheduler noise on top of it. *)
let telemetry_overhead ~reps ~rounds samples =
  let sweep ?(rounds = rounds) () =
    let _, _, wall =
      run_tier ~rounds ~backend:Core.Exec_backend.Auto samples
    in
    wall
  in
  (* Warm up first: the opening sweep pays one-off costs (code paging,
     compiled-pool population, GC sizing) that would otherwise land on
     whichever side runs first. *)
  Telemetry.disable ();
  ignore (sweep ~rounds:(max 2 (rounds / 8)) ());
  let best_off = ref infinity and best_on = ref infinity in
  for _ = 1 to reps do
    Telemetry.disable ();
    Telemetry.reset ();
    best_off := Float.min !best_off (sweep ());
    Telemetry.reset ();
    Telemetry.enable ();
    best_on := Float.min !best_on (sweep ());
    Telemetry.disable ()
  done;
  Telemetry.reset ();
  (!best_off, !best_on)

let telemetry_exp (opts : options) =
  Printf.printf "\n=== Telemetry: per-stage critical path + probe overhead ===\n%!";
  (* A telemetry-on campaign over generated contracts: the per-stage /
     per-target breakdown the --telemetry flag prints. *)
  let count = max 8 (opts.opt_fig3_contracts / 2) in
  let rounds = opts.opt_rounds in
  let targets = campaign_targets ~count () in
  let journal = Filename.temp_file "wasai-telemetry" ".journal" in
  Sys.remove journal;
  let r =
    Campaign.Campaign.run
      (Campaign.Campaign.make_config ~jobs:2 ~journal ~telemetry:true
         ~engine:(Core.Engine.make_config ~rounds ~backend:opts.opt_backend ())
         ())
      targets
  in
  Sys.remove journal;
  let snap = Telemetry.snapshot () in
  print_string (Telemetry.report_text snap);
  Telemetry.disable ();
  Telemetry.reset ();
  Printf.printf "  (campaign: %d targets, wall=%.2fs)\n" count
    r.Campaign.Campaign.cr_wall;
  (* Probe overhead on the execution-bound workload. *)
  let samples = BG.Corpus.ground_truth ~scale:100 () in
  let off, on = telemetry_overhead ~reps:3 ~rounds:16 samples in
  let ratio = on /. Float.max 1e-9 off in
  Printf.printf
    "  overhead on the compile-smoke corpus (best of 3): off=%.3fs on=%.3fs \
     -> %.2f%%\n"
    off on
    (100. *. (ratio -. 1.));
  json_record ~experiment:"telemetry"
    [
      ("spans", float_of_int snap.Telemetry.ts_spans);
      ("campaign_wall_s", r.Campaign.Campaign.cr_wall);
      ("overhead_off_s", off);
      ("overhead_on_s", on);
      ("overhead_ratio", ratio);
    ]

(* Quick local verification (<10 s) of the zero-interference contract:
   telemetry on/off campaigns must produce byte-identical journal entry
   lines and verdict reports at jobs 1 and 2 (the on-journal differing
   only by the additive header stamp), the on-run's report must cover
   the exec/solver/oracle/journal stages, a serve daemon's METRICS
   exposition must parse line-by-line, and the probes' measured overhead
   on the compile-smoke corpus must stay within 3%. *)
let telemetry_smoke () =
  Printf.printf
    "\n=== Telemetry smoke (byte-identity + stage coverage + overhead) ===\n%!";
  (* Probe overhead first, while the process is quiet: the campaign and
     serve phases below leave worker domains' GC debris behind that
     makes wall-clock deltas noisy.  The sweep must also dwarf timer
     jitter (a 30 ms sweep makes 1 ms of noise read as 3%), hence the
     branch-rich coverage contracts at ~100 ms per sweep. *)
  let off, on =
    telemetry_overhead ~reps:4 ~rounds:48 (BG.Corpus.coverage_set ~count:30 ())
  in
  let ratio = on /. Float.max 1e-9 off in
  let overhead_ok = ratio <= 1.03 in
  let targets = campaign_targets ~count:6 () in
  let rounds = 6 in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let read_lines path =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  (* One campaign run at [jobs] with telemetry [tele]; returns the
     journal header, entry lines and canonical verdict report.  The
     [elapsed=] field is measured wall-clock — nondeterministic between
     any two runs, telemetry or not — so it is zeroed through an entry
     round-trip; every other byte of the line is compared as written. *)
  let canonical_entry line =
    match Campaign.Journal.entry_of_line line with
    | Ok e ->
        Campaign.Journal.line_of_entry
          { e with Campaign.Journal.je_elapsed = 0. }
    | Error _ -> line
  in
  let run_campaign ~jobs ~tele =
    let journal = Filename.temp_file "wasai-tsmoke" ".journal" in
    Sys.remove journal;
    let r =
      Campaign.Campaign.run
        (Campaign.Campaign.make_config ~jobs ~journal ~telemetry:tele
           ~engine:(Core.Engine.make_config ~rounds ())
           ())
        targets
    in
    let header, entries =
      match read_lines journal with
      | h :: rest -> (h, List.map canonical_entry rest)
      | [] -> ("", [])
    in
    Sys.remove journal;
    (header, entries, Campaign.Campaign.verdicts_text r)
  in
  let h_off1, e_off1, v_off1 = run_campaign ~jobs:1 ~tele:false in
  let h_on1, e_on1, v_on1 = run_campaign ~jobs:1 ~tele:true in
  (* capture the stage breakdown while the on-run's spans are still hot *)
  let report = Telemetry.report_text (Telemetry.snapshot ()) in
  Telemetry.disable ();
  Telemetry.reset ();
  let h_off2, e_off2, v_off2 = run_campaign ~jobs:2 ~tele:false in
  let h_on2, e_on2, v_on2 = run_campaign ~jobs:2 ~tele:true in
  Telemetry.disable ();
  Telemetry.reset ();
  let sorted = List.sort compare in
  let identity_ok =
    (* off = the legacy two-field header, byte-for-byte *)
    h_off1 = "wasai-journal-hdr\tbackend=auto"
    && h_off2 = h_off1
    (* on = the same header plus only the additive stamp *)
    && h_on1 = h_off1 ^ "\ttelemetry=on"
    && h_on2 = h_on1
    (* entry lines never change: byte-identical at jobs 1, identical as
       a multiset at jobs 2 (worker completion order is not canonical) *)
    && e_on1 = e_off1
    && sorted e_on2 = sorted e_off2
    && sorted e_off2 = sorted e_off1
  in
  let report_ok =
    List.for_all (fun v -> String.equal v v_off1) [ v_on1; v_off2; v_on2 ]
  in
  let stages_ok =
    List.for_all
      (fun s -> contains report s)
      [ "exec_"; "solver_"; "oracle"; "journal_fsync" ]
  in
  (* METRICS exposition from a live daemon parses line-by-line. *)
  let dir =
    Printf.sprintf "/tmp/wasai-telemetry-smoke-%d-%d" (Unix.getpid ())
      (int_of_float (Unix.gettimeofday () *. 1000.) mod 1_000_000)
  in
  Unix.mkdir dir 0o755;
  let socket = Filename.concat dir "t.sock" in
  let t =
    Serve.Serve.create
      (Serve.Serve.make_config ~root:(Filename.concat dir "root") ~socket
         ~jobs:1 ~depth:4
         ~engine:(Core.Engine.make_config ~rounds ())
         ())
  in
  let d = Domain.spawn (fun () -> Serve.Serve.serve t) in
  let connect_retry path =
    let rec go n =
      match Serve.Client.connect path with
      | c -> c
      | exception Unix.Unix_error _ when n > 0 ->
          Unix.sleepf 0.05;
          go (n - 1)
    in
    go 100
  in
  let c = connect_retry socket in
  let sample = List.hd (BG.Corpus.coverage_set ~count:1 ()) in
  ignore
    (Serve.Client.submit_batch c ~tenant:"alice"
       [
         {
           Serve.Client.ct_name = "trgta";
           ct_wasm = Wasai_wasm.Encode.encode sample.BG.Corpus.smp_module;
           ct_abi = Some (Wasai_eosio.Abi.to_text sample.BG.Corpus.smp_abi);
         };
       ]);
  Serve.Client.send c Serve.Wire.Metrics;
  let exposition =
    match Serve.Client.next c with
    | Serve.Wire.MetricsReply { rp_body } -> rp_body
    | _ -> ""
  in
  Serve.Client.close c;
  Serve.Serve.request_stop t;
  Domain.join d;
  Telemetry.disable ();
  Telemetry.reset ();
  let metrics_ok =
    exposition <> ""
    && contains exposition "wasai_tenant_completed_total{tenant=\"alice\"} 1"
    && contains exposition "wasai_stage_seconds_total{stage="
    && List.for_all
         (fun line ->
           line = ""
           || line.[0] = '#'
           ||
           match String.rindex_opt line ' ' with
           | None -> false
           | Some i ->
               let v =
                 String.sub line (i + 1) (String.length line - i - 1)
               in
               (match float_of_string_opt v with
               | Some f -> Float.is_finite f
               | None -> false))
         (String.split_on_char '\n' exposition)
  in
  let ok = identity_ok && report_ok && stages_ok && metrics_ok && overhead_ok in
  Printf.printf
    "journal byte-identity off/on at jobs 1+2 (header stamp only): %b; \
     verdict reports identical: %b; on-report covers \
     exec/solver/oracle/journal stages: %b; serve METRICS exposition \
     parses: %b; probe overhead best-of-4 off=%.3fs on=%.3fs (%.2f%%, \
     bound 3%%): %b -> %s\n"
    identity_ok report_ok stages_ok metrics_ok off on
    (100. *. (ratio -. 1.))
    overhead_ok
    (if ok then "OK" else "MISMATCH");
  json_record ~experiment:"telemetry-smoke"
    ~bounds:
      [
        {
          jb_name = "journal_byte_identity";
          jb_bound = "off/on identical modulo header stamp";
          jb_pass = identity_ok;
        };
        {
          jb_name = "report_identity";
          jb_bound = "verdict reports byte-identical";
          jb_pass = report_ok;
        };
        {
          jb_name = "stage_coverage";
          jb_bound = "exec/solver/oracle/journal_fsync present";
          jb_pass = stages_ok;
        };
        {
          jb_name = "metrics_exposition";
          jb_bound = "every METRICS line parses";
          jb_pass = metrics_ok;
        };
        { jb_name = "overhead"; jb_bound = "<= 1.03x"; jb_pass = overhead_ok };
      ]
    [
      ("overhead_off_s", off);
      ("overhead_on_s", on);
      ("overhead_ratio", ratio);
    ];
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  Printf.printf "\n=== Micro benchmarks (Bechamel) ===\n%!";
  let open Bechamel in
  let open Toolkit in
  let spec = BG.Contracts.default_spec (Wasai_eosio.Name.of_string "victim") in
  let m, _abi = BG.Contracts.build spec in
  let bin = Wasai_wasm.Encode.encode m in
  let tests =
    [
      Test.make ~name:"wasm.decode-contract"
        (Staged.stage (fun () -> ignore (Wasai_wasm.Decode.decode bin)));
      Test.make ~name:"wasm.validate-contract"
        (Staged.stage (fun () -> Wasai_wasm.Validate.check_module m));
      Test.make ~name:"wasabi.instrument-contract"
        (Staged.stage (fun () -> ignore (Wasai_wasabi.Instrument.instrument m)));
      (let mem = Wasai_symbolic.Memmodel.create () in
       Test.make ~name:"symbolic.memmodel-store-load"
         (Staged.stage (fun () ->
              Wasai_symbolic.Memmodel.store mem ~addr:128 ~width_bytes:8
                (Wasai_smt.Expr.const 64 99L);
              ignore (Wasai_symbolic.Memmodel.load mem ~addr:128 ~width_bytes:8))));
      (let x = Wasai_smt.Expr.fresh_var ~name:"x" 64 in
       Test.make ~name:"smt.quick-equality"
         (Staged.stage (fun () ->
              ignore
                (Wasai_smt.Solver.check
                   [ Wasai_smt.Expr.(cmp Eq (var x) (const 64 7L)) ]))));
      Test.make ~name:"smt.blast-16bit-mul"
        (Staged.stage (fun () ->
             let y = Wasai_smt.Expr.fresh_var ~name:"y" 16 in
             ignore
               (Wasai_smt.Solver.check
                  [
                    Wasai_smt.Expr.(
                      cmp Eq (binop Mul (var y) (const 16 3L)) (const 16 21L));
                  ])));
    ]
  in
  List.iter
    (fun t ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ())
          Instance.[ monotonic_clock ]
          t
      in
      let a =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-36s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        a)
    tests

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let () =
  let opts = ref default_options in
  let experiments = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        opts := { !opts with opt_scale = int_of_string v };
        parse rest
    | "--rounds" :: v :: rest ->
        opts := { !opts with opt_rounds = int_of_string v };
        parse rest
    | "--count" :: v :: rest ->
        opts := { !opts with opt_fig3_contracts = int_of_string v };
        parse rest
    | "--backend" :: v :: rest ->
        (match Core.Exec_backend.of_string v with
        | Ok b -> opts := { !opts with opt_backend = b }
        | Error msg -> failwith msg);
        parse rest
    | "--json" :: v :: rest ->
        json_path := Some v;
        parse rest
    | "--full" :: rest ->
        opts :=
          { !opts with opt_scale = 1; opt_rounds = 60; opt_fig3_contracts = 100 };
        parse rest
    | x :: rest ->
        experiments := x :: !experiments;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let experiments =
    match List.rev !experiments with [] -> [ "all" ] | e -> e
  in
  let opts = !opts in
  Printf.printf "WASAI evaluation harness  (scale 1/%d, %d rounds/contract)\n"
    opts.opt_scale opts.opt_rounds;
  let run = function
    | "fig3" -> fig3 opts
    | "table4" -> table4 opts
    | "table5" -> table5 opts
    | "table6" -> table6 opts
    | "table-ext" -> table_ext opts
    | "rq4" -> rq4 opts
    | "ablation" -> ablation opts
    | "solver" -> solver_exp ()
    | "campaign" -> campaign_exp opts
    | "campaign-smoke" -> campaign_smoke ()
    | "slice-smoke" -> slice_smoke ()
    | "shard" -> shard_exp opts
    | "shard-smoke" -> shard_smoke ()
    | "corpus" -> corpus_exp opts
    | "corpus-smoke" -> corpus_smoke ()
    | "trace" -> trace_exp ()
    | "trace-smoke" -> trace_smoke ()
    | "serve-smoke" -> serve_smoke ()
    | "oracle-smoke" -> oracle_smoke ()
    | "compile" -> compile_exp opts
    | "compile-smoke" -> compile_smoke ()
    | "telemetry" -> telemetry_exp opts
    | "telemetry-smoke" -> telemetry_smoke ()
    | "micro" -> micro ()
    | "all" ->
        fig3 opts;
        table4 opts;
        table5 opts;
        table6 opts;
        table_ext opts;
        rq4 opts;
        ablation opts;
        solver_exp ();
        campaign_exp opts;
        shard_exp opts;
        corpus_exp opts;
        trace_exp ();
        compile_exp opts;
        telemetry_exp opts;
        micro ()
    | other -> Printf.eprintf "unknown experiment %s\n" other
  in
  List.iter run experiments;
  json_flush ()
