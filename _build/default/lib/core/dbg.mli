(** The database dependency graph (§3.3.2): per-action read/write table
    sets learned from observed [db_*] accesses.  Deliberately
    table-granular — the paper's §5 names this coarseness as a real
    limitation. *)

open Wasai_eosio

type t

val create : unit -> t
val record_access : t -> action:Name.t -> Database.access -> unit

val record_read_miss : t -> action:Name.t -> Name.t -> unit
(** The action's most recent run read [table] and found nothing. *)

val clear_read_miss : t -> action:Name.t -> unit
val writers : t -> Name.t -> Name.t list

val dependency_for : t -> Name.t -> Name.t option
(** If the action's last run missed a table read, an action that writes
    that table. *)

val tables_read : t -> Name.t -> Name.t list
val tables_written : t -> Name.t -> Name.t list
