lib/benchgen/mainnet.mli: Abi Contracts Name Wasai_eosio Wasai_wasm
