(** Closeable multi-producer/multi-consumer work queue for the campaign
    domains (stdlib Mutex/Condition only).

    Producers [push] then [close]; each worker domain loops on [take]
    until it returns [None].  FIFO order is preserved, but consumers may
    interleave arbitrarily — campaign determinism therefore never relies
    on which worker drains which item. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if the queue is closed. *)

val push_all : 'a t -> 'a list -> unit
(** Enqueue a batch in list order under one lock acquisition.  Raises
    [Invalid_argument] if the queue is closed. *)

val close : 'a t -> unit
(** No further pushes; blocked takers drain the backlog then see [None].
    Idempotent. *)

val take : 'a t -> 'a option
(** Next item, blocking while the queue is open and empty; [None] once
    the queue is closed and drained. *)

val length : 'a t -> int
