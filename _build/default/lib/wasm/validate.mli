(** Module validator: the type-checking algorithm from the specification
    appendix, including unreachable-code polymorphism.  Every
    programmatically built or instrumented module is validated before it
    runs. *)

exception Invalid of string

val check_func : Ast.module_ -> Ast.func -> unit
val check_module : Ast.module_ -> unit
(** Raises {!Invalid} on the first error. *)

val is_valid : Ast.module_ -> bool

val cvtop_types : Ast.cvtop -> Types.value_type * Types.value_type
(** (source, destination) types of a conversion. *)
