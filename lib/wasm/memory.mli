(** Growable byte-addressable linear memory (one Wasm page = 64 KiB).
    Loads and stores are little-endian and trap on out-of-bounds access. *)

val page_size : int

type t

val create : Types.memory_type -> t
val size_pages : t -> int
val size_bytes : t -> int

val grow : t -> int -> int32
(** Grow by N pages; returns the previous size, or [-1l] on failure (the
    [memory.grow] contract). *)

val check_bounds : t -> int -> int -> unit
val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit

val load_bytes_le : t -> int -> int -> int64
(** Load 1..8 little-endian bytes as an unsigned value. *)

val store_bytes_le : t -> int -> int -> int64 -> unit
val load_string : t -> int -> int -> string
val store_string : t -> int -> string -> unit

val extend_to_i64 : signed:bool -> bits:int -> int64 -> int64
(** Sign- or zero-extend an unsigned [bits]-wide value. *)

val load_value : t -> Ast.loadop -> int -> Values.value
(** Execute a load operation at an effective address. *)

val store_value : t -> Ast.storeop -> int -> Values.value -> unit

val loadop_width : Ast.loadop -> int
(** Bytes moved by the operation. *)

val storeop_width : Ast.storeop -> int

val snapshot : t -> string
(** Copy of the full current contents, for later {!restore}. *)

val restore : t -> string -> unit
(** Return the memory to a snapshotted state: contents and page count.
    Writes are tracked with a dirty watermark, so restoring a memory
    that saw few stores since the last restore only blits the modified
    prefix.  The image must come from {!snapshot} on this memory. *)
