lib/support/metrics.ml: Float Printf
