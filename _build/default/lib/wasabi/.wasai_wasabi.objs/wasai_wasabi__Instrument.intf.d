lib/wasabi/instrument.mli: Trace Wasai_eosio Wasai_wasm
