lib/wasm/interp.mli: Ast Memory Types Values
