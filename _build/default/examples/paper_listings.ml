(* The paper's code listings, as hand-written WAT, analysed by WASAI.

     dune exec examples/paper_listings.exe

   `examples/contracts/listing1_fake_eos.wat` is Listing 1 without the
   line-4 patch; `listing4_rollback.wat` is the Listing-4 lottery.  Both
   are assembled by the bundled text parser, deployed as real binaries,
   and fuzzed — showing the toolchain end to end without the generator. *)

module Wasm = Wasai_wasm
module Core = Wasai_core
open Wasai_eosio

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let transfer_abi = { Abi.abi_actions = [ Abi.transfer_action ] }

let analyze label path expectations =
  let source = read_file path in
  let m = Wasm.Text.parse source in
  (* Prove these are real binaries: assemble, then decode again. *)
  let m = Wasm.Decode.decode (Wasm.Encode.encode m) in
  let outcome =
    Core.Engine.fuzz
      {
        Core.Engine.tgt_account = Name.of_string "victim";
        tgt_module = m;
        tgt_abi = transfer_abi;
      }
  in
  Printf.printf "%s (%s):\n" label path;
  List.iter
    (fun (f, b) ->
      Printf.printf "  %-14s %s\n"
        (Core.Scanner.string_of_flag f)
        (if b then "VULNERABLE" else "ok"))
    outcome.Core.Engine.out_flags;
  List.iter
    (fun (flag, expected) ->
      assert (Core.Engine.flagged outcome flag = expected))
    expectations;
  (match outcome.Core.Engine.out_exploits with
   | (f, e) :: _ ->
       Printf.printf "  e.g. %s: %s\n"
         (Core.Scanner.string_of_flag f)
         (Core.Scanner.string_of_evidence ~abi:transfer_abi e)
   | [] -> ());
  print_newline ()

let () =
  let base =
    (* Run from the repo root (dune exec) or from the examples dir. *)
    if Sys.file_exists "examples/contracts/listing1_fake_eos.wat" then
      "examples/contracts/"
    else "contracts/"
  in
  print_endline "== The paper's listings, straight from WAT ==\n";
  analyze "Listing 1 (unpatched dispatcher)"
    (base ^ "listing1_fake_eos.wat")
    [
      (Core.Scanner.Fake_eos, true);
      (Core.Scanner.Fake_notif, true);  (* no to == _self guard either *)
      (Core.Scanner.Miss_auth, true);  (* pays without require_auth *)
      (Core.Scanner.Blockinfo_dep, false);
    ];
  analyze "Listing 4 (block-info lottery)"
    (base ^ "listing4_rollback.wat")
    [
      (Core.Scanner.Blockinfo_dep, true);
      (Core.Scanner.Rollback, true);
    ];
  analyze "Listings 1+2, patched"
    (base ^ "listing2_patched.wat")
    [
      (Core.Scanner.Fake_eos, false);
      (Core.Scanner.Fake_notif, false);
      (Core.Scanner.Miss_auth, false);
      (Core.Scanner.Blockinfo_dep, false);
      (Core.Scanner.Rollback, false);
    ];
  print_endline
    "the vulnerable listings reproduce their advertised bugs; the patched\n\
     version comes back clean."
