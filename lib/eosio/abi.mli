(** Application Binary Interface of a contract: the action signatures the
    compiler emits next to the Wasm binary, plus the binary
    (de)serialisation of action data.

    Serialisation is little-endian: [name]/[u64] are 8 bytes, [u32] is 4,
    [asset] is 16 (amount then symbol), [string] is one length byte
    followed by the content (≤ 255 bytes), matching the memory layout of
    the paper's Table 2. *)

type param_type =
  | T_name
  | T_u64
  | T_u32
  | T_asset
  | T_string

type value =
  | V_name of Name.t
  | V_u64 of int64
  | V_u32 of int32
  | V_asset of Asset.t
  | V_string of string

type action_def = {
  act_name : Name.t;
  act_params : (string * param_type) list;
}

type t = { abi_actions : action_def list }

val find_action : t -> Name.t -> action_def option
val string_of_param_type : param_type -> string
val type_of_value : value -> param_type
val string_of_value : value -> string
val serialized_size : value -> int

val add_le : Buffer.t -> int -> int64 -> unit
(** Append a little-endian fixed-width integer. *)

val serialize : value list -> string
(** Serialise action arguments into the byte stream fed to contracts. *)

val read_le : string -> int -> int -> int64

exception Deserialize_error of string

val deserialize : action_def -> string -> value list

val static_offsets : action_def -> (string * param_type * int) list
(** Offsets of each parameter in the serialised stream, up to the first
    string (Table 2's layout). *)

(** {1 Textual ABI format}

    One action per line, e.g.
    [transfer(from:name,to:name,quantity:asset,memo:string)];
    ['#'] starts a comment. *)

exception Parse_error of string

val of_text : string -> t
val to_text : t -> string

val transfer_action : action_def
(** The canonical [transfer] signature every eosponser shares. *)

val default_profitable : t
(** The canonical profitable-contract ABI:
    [transfer(from:name,to:name,quantity:asset,memo:string)] plus
    [deposit(player:name,amount:u64)], [setup(value:u64)] and
    [reveal(player:name)].  The CLI and campaign discovery use it when a
    contract ships no ABI sidecar; the benchmark generator emits its
    contracts against the same action set, so the fallback is always
    consistent with generated corpora. *)

val token_abi : t
