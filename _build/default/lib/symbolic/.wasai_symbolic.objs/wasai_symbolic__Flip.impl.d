lib/symbolic/flip.ml: Array Char Convention Hashtbl Int64 List Replay String Wasai_eosio Wasai_smt
