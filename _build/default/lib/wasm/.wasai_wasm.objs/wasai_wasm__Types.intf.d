lib/wasm/types.mli: Format
