(** Module validator: the type-checking algorithm from the specification
    appendix, with the usual operand/control stack treatment of
    unreachable-code polymorphism.

    The benchmark generator and the instrumenter both produce modules
    programmatically; validating every module before execution turns
    construction bugs into immediate, located errors instead of runtime
    stack corruption. *)

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* An operand is a known type or Unknown (below an unreachable). *)
type operand = Known of Types.value_type | Unknown

type ctrl_frame = {
  label_types : Types.value_type list;  (** types a branch must provide *)
  end_types : Types.value_type list;  (** types on fall-through *)
  height : int;
  mutable unreachable : bool;
}

type ctx = {
  module_ : Ast.module_;
  locals : Types.value_type array;
  mutable opds : operand list;
  mutable ctrls : ctrl_frame list;
}

let push_opd ctx o = ctx.opds <- o :: ctx.opds

let pop_opd ctx : operand =
  match ctx.ctrls with
  | [] -> invalid "control stack empty"
  | frame :: _ -> (
      if List.length ctx.opds = frame.height then
        if frame.unreachable then Unknown
        else invalid "operand stack underflow"
      else
        match ctx.opds with
        | o :: rest ->
            ctx.opds <- rest;
            o
        | [] -> invalid "operand stack underflow")

let pop_expect ctx (t : Types.value_type) =
  match pop_opd ctx with
  | Unknown -> ()
  | Known t' ->
      if t' <> t then
        invalid "type mismatch: expected %s, got %s"
          (Types.string_of_value_type t)
          (Types.string_of_value_type t')

let push_ctrl ctx label_types end_types =
  ctx.ctrls <-
    { label_types; end_types; height = List.length ctx.opds; unreachable = false }
    :: ctx.ctrls

let pop_ctrl ctx : ctrl_frame =
  match ctx.ctrls with
  | [] -> invalid "control stack empty"
  | frame :: rest ->
      List.iter (fun t -> pop_expect ctx t) (List.rev frame.end_types);
      if List.length ctx.opds <> frame.height then
        invalid "values remaining on stack at end of block";
      ctx.ctrls <- rest;
      frame

let set_unreachable ctx =
  match ctx.ctrls with
  | [] -> invalid "control stack empty"
  | frame :: _ ->
      (* Drop operands above the frame height. *)
      let rec drop opds n = if n <= 0 then opds else
          match opds with [] -> [] | _ :: r -> drop r (n - 1)
      in
      ctx.opds <- drop ctx.opds (List.length ctx.opds - frame.height);
      frame.unreachable <- true

let label_types_at ctx n =
  match List.nth_opt ctx.ctrls n with
  | Some f -> f.label_types
  | None -> invalid "unknown label %d" n

let block_type_types : Ast.block_type -> Types.value_type list = function
  | None -> []
  | Some t -> [ t ]

let num_globals ctx =
  Array.length ctx.module_.globals
  + List.length
      (List.filter
         (fun (i : Ast.import) ->
           match i.idesc with Ast.Global_import _ -> true | _ -> false)
         ctx.module_.imports)

let global_type_at ctx n : Types.global_type =
  let imported =
    List.filter_map
      (fun (i : Ast.import) ->
        match i.idesc with Ast.Global_import g -> Some g | _ -> None)
      ctx.module_.imports
  in
  let n_imp = List.length imported in
  if n < n_imp then List.nth imported n
  else if n - n_imp < Array.length ctx.module_.globals then
    ctx.module_.globals.(n - n_imp).gtype
  else invalid "unknown global %d" n

let rec check_instr ctx (i : Ast.instr) =
  let m = ctx.module_ in
  match i with
  | Ast.Unreachable -> set_unreachable ctx
  | Ast.Nop -> ()
  | Ast.Block (bt, body) ->
      push_ctrl ctx (block_type_types bt) (block_type_types bt);
      check_body ctx body;
      let frame = pop_ctrl ctx in
      List.iter (fun t -> push_opd ctx (Known t)) frame.end_types
  | Ast.Loop (bt, body) ->
      (* A branch to a loop label re-enters the loop: it expects the loop's
         parameters, which are empty in the MVP. *)
      push_ctrl ctx [] (block_type_types bt);
      check_body ctx body;
      let frame = pop_ctrl ctx in
      List.iter (fun t -> push_opd ctx (Known t)) frame.end_types
  | Ast.If (bt, then_, else_) ->
      pop_expect ctx Types.I32;
      let tys = block_type_types bt in
      push_ctrl ctx tys tys;
      check_body ctx then_;
      let frame = pop_ctrl ctx in
      if else_ = [] && frame.end_types <> [] then
        invalid "if without else must have empty result";
      push_ctrl ctx tys tys;
      check_body ctx else_;
      let frame = pop_ctrl ctx in
      List.iter (fun t -> push_opd ctx (Known t)) frame.end_types
  | Ast.Br n ->
      List.iter (fun t -> pop_expect ctx t) (List.rev (label_types_at ctx n));
      set_unreachable ctx
  | Ast.Br_if n ->
      pop_expect ctx Types.I32;
      let tys = label_types_at ctx n in
      List.iter (fun t -> pop_expect ctx t) (List.rev tys);
      List.iter (fun t -> push_opd ctx (Known t)) tys
  | Ast.Br_table (targets, default) ->
      pop_expect ctx Types.I32;
      let d_tys = label_types_at ctx default in
      List.iter
        (fun t ->
          if label_types_at ctx t <> d_tys then
            invalid "br_table target arity mismatch")
        targets;
      List.iter (fun t -> pop_expect ctx t) (List.rev d_tys);
      set_unreachable ctx
  | Ast.Return ->
      (* The outermost control frame carries the function's result types. *)
      let frame = List.nth ctx.ctrls (List.length ctx.ctrls - 1) in
      List.iter (fun t -> pop_expect ctx t) (List.rev frame.end_types);
      set_unreachable ctx
  | Ast.Call fi ->
      let n_funcs = Ast.num_func_imports m + Array.length m.funcs in
      if fi < 0 || fi >= n_funcs then invalid "unknown function %d" fi;
      let ft = Ast.func_type_at m fi in
      List.iter (fun t -> pop_expect ctx t) (List.rev ft.params);
      List.iter (fun t -> push_opd ctx (Known t)) ft.results
  | Ast.Call_indirect ti ->
      if m.tables = [] then invalid "call_indirect without table";
      if ti < 0 || ti >= Array.length m.types then invalid "unknown type %d" ti;
      pop_expect ctx Types.I32;
      let ft = m.types.(ti) in
      List.iter (fun t -> pop_expect ctx t) (List.rev ft.params);
      List.iter (fun t -> push_opd ctx (Known t)) ft.results
  | Ast.Drop -> ignore (pop_opd ctx)
  | Ast.Select -> (
      pop_expect ctx Types.I32;
      let a = pop_opd ctx in
      let b = pop_opd ctx in
      match (a, b) with
      | Known ta, Known tb ->
          if ta <> tb then invalid "select type mismatch";
          push_opd ctx (Known ta)
      | Known t, Unknown | Unknown, Known t -> push_opd ctx (Known t)
      | Unknown, Unknown -> push_opd ctx Unknown)
  | Ast.Local_get n ->
      if n < 0 || n >= Array.length ctx.locals then invalid "unknown local %d" n;
      push_opd ctx (Known ctx.locals.(n))
  | Ast.Local_set n ->
      if n < 0 || n >= Array.length ctx.locals then invalid "unknown local %d" n;
      pop_expect ctx ctx.locals.(n)
  | Ast.Local_tee n ->
      if n < 0 || n >= Array.length ctx.locals then invalid "unknown local %d" n;
      pop_expect ctx ctx.locals.(n);
      push_opd ctx (Known ctx.locals.(n))
  | Ast.Global_get n ->
      if n >= num_globals ctx then invalid "unknown global %d" n;
      push_opd ctx (Known (global_type_at ctx n).gt_type)
  | Ast.Global_set n ->
      if n >= num_globals ctx then invalid "unknown global %d" n;
      let gt = global_type_at ctx n in
      if gt.gt_mut <> Types.Mutable then invalid "global %d is immutable" n;
      pop_expect ctx gt.gt_type
  | Ast.Load op ->
      if m.memories = [] && not (has_memory_import m) then
        invalid "load without memory";
      pop_expect ctx Types.I32;
      push_opd ctx (Known op.l_ty)
  | Ast.Store op ->
      if m.memories = [] && not (has_memory_import m) then
        invalid "store without memory";
      pop_expect ctx op.s_ty;
      pop_expect ctx Types.I32
  | Ast.Memory_size -> push_opd ctx (Known Types.I32)
  | Ast.Memory_grow ->
      pop_expect ctx Types.I32;
      push_opd ctx (Known Types.I32)
  | Ast.Const v -> push_opd ctx (Known (Values.type_of v))
  | Ast.Eqz ty ->
      if not (Types.is_int_type ty) then invalid "eqz on float";
      pop_expect ctx ty;
      push_opd ctx (Known Types.I32)
  | Ast.Int_compare (ty, _) ->
      pop_expect ctx ty;
      pop_expect ctx ty;
      push_opd ctx (Known Types.I32)
  | Ast.Float_compare (ty, _) ->
      pop_expect ctx ty;
      pop_expect ctx ty;
      push_opd ctx (Known Types.I32)
  | Ast.Int_unary (ty, _) | Ast.Float_unary (ty, _) ->
      pop_expect ctx ty;
      push_opd ctx (Known ty)
  | Ast.Int_binary (ty, _) | Ast.Float_binary (ty, _) ->
      pop_expect ctx ty;
      pop_expect ctx ty;
      push_opd ctx (Known ty)
  | Ast.Convert op ->
      let src, dst = cvtop_types op in
      pop_expect ctx src;
      push_opd ctx (Known dst)

and cvtop_types : Ast.cvtop -> Types.value_type * Types.value_type = function
  | Ast.I32_wrap_i64 -> (Types.I64, Types.I32)
  | Ast.I64_extend_i32_s | Ast.I64_extend_i32_u -> (Types.I32, Types.I64)
  | Ast.I32_trunc_f32_s | Ast.I32_trunc_f32_u -> (Types.F32, Types.I32)
  | Ast.I32_trunc_f64_s | Ast.I32_trunc_f64_u -> (Types.F64, Types.I32)
  | Ast.I64_trunc_f32_s | Ast.I64_trunc_f32_u -> (Types.F32, Types.I64)
  | Ast.I64_trunc_f64_s | Ast.I64_trunc_f64_u -> (Types.F64, Types.I64)
  | Ast.F32_convert_i32_s | Ast.F32_convert_i32_u -> (Types.I32, Types.F32)
  | Ast.F32_convert_i64_s | Ast.F32_convert_i64_u -> (Types.I64, Types.F32)
  | Ast.F64_convert_i32_s | Ast.F64_convert_i32_u -> (Types.I32, Types.F64)
  | Ast.F64_convert_i64_s | Ast.F64_convert_i64_u -> (Types.I64, Types.F64)
  | Ast.F32_demote_f64 -> (Types.F64, Types.F32)
  | Ast.F64_promote_f32 -> (Types.F32, Types.F64)
  | Ast.I32_reinterpret_f32 -> (Types.F32, Types.I32)
  | Ast.I64_reinterpret_f64 -> (Types.F64, Types.I64)
  | Ast.F32_reinterpret_i32 -> (Types.I32, Types.F32)
  | Ast.F64_reinterpret_i64 -> (Types.I64, Types.F64)

and has_memory_import (m : Ast.module_) =
  List.exists
    (fun (i : Ast.import) ->
      match i.idesc with Ast.Memory_import _ -> true | _ -> false)
    m.imports

and check_body ctx body = List.iter (check_instr ctx) body

let check_func (m : Ast.module_) (f : Ast.func) =
  if f.ftype < 0 || f.ftype >= Array.length m.types then
    invalid "unknown type index %d" f.ftype;
  let ft = m.types.(f.ftype) in
  let ctx =
    {
      module_ = m;
      locals = Array.of_list (ft.params @ f.locals);
      opds = [];
      ctrls = [];
    }
  in
  push_ctrl ctx ft.results ft.results;
  check_body ctx f.body;
  ignore (pop_ctrl ctx)

let check_const_expr (_m : Ast.module_) (e : Ast.instr list)
    (expected : Types.value_type) =
  match e with
  | [ Ast.Const v ] ->
      if Values.type_of v <> expected then invalid "const expr type mismatch"
  | [ Ast.Global_get _ ] -> ()
  | _ -> invalid "non-constant initializer expression"

(** Validate a whole module; raises {!Invalid} on the first error. *)
let check_module (m : Ast.module_) =
  let n_funcs = Ast.num_func_imports m + Array.length m.funcs in
  Array.iter
    (fun (f : Ast.func) ->
      try check_func m f
      with Invalid msg ->
        invalid "in function %s: %s"
          (match f.fname with Some n -> n | None -> "<anon>")
          msg)
    m.funcs;
  Array.iter (fun (g : Ast.global) -> check_const_expr m g.ginit g.gtype.gt_type)
    m.globals;
  List.iter
    (fun (e : Ast.export) ->
      match e.edesc with
      | Ast.Func_export i ->
          if i < 0 || i >= n_funcs then invalid "export %s: unknown function" e.ename
      | Ast.Table_export i ->
          if i <> 0 || m.tables = [] then invalid "export %s: unknown table" e.ename
      | Ast.Memory_export i ->
          if i <> 0 || (m.memories = [] && not (has_memory_import m)) then
            invalid "export %s: unknown memory" e.ename
      | Ast.Global_export i ->
          if i < 0 || i >= Array.length m.globals then
            invalid "export %s: unknown global" e.ename)
    m.exports;
  List.iter
    (fun (e : Ast.elem_segment) ->
      check_const_expr m e.e_offset Types.I32;
      List.iter
        (fun fi -> if fi < 0 || fi >= n_funcs then invalid "elem: unknown function %d" fi)
        e.e_init)
    m.elems;
  List.iter (fun (d : Ast.data_segment) -> check_const_expr m d.d_offset Types.I32)
    m.datas;
  match m.start with
  | Some fi ->
      if fi < 0 || fi >= n_funcs then invalid "start: unknown function %d" fi;
      let ft = Ast.func_type_at m fi in
      if ft.params <> [] || ft.results <> [] then
        invalid "start function must have type [] -> []"
  | None -> ()

let is_valid m =
  match check_module m with () -> true | exception Invalid _ -> false
