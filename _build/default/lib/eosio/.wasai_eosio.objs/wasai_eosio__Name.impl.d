lib/eosio/name.ml: Buffer Char Format Int64 Printf String
