(** Closeable MPMC work queue: a stdlib [Queue.t] under a mutex, with a
    condition variable waking takers on push and on close. *)

type 'a t = {
  items : 'a Queue.t;
  lock : Mutex.t;
  wake : Condition.t;
  mutable closed : bool;
}

let create () =
  { items = Queue.create (); lock = Mutex.create (); wake = Condition.create ();
    closed = false }

let push t x =
  Mutex.protect t.lock (fun () ->
      if t.closed then invalid_arg "Work_queue.push: closed";
      Queue.add x t.items;
      Condition.signal t.wake)

(* One lock acquisition for a whole batch, preserving list order — the
   campaign seeds its queue with the full (priority-sorted) target list
   in one shot. *)
let push_all t xs =
  Mutex.protect t.lock (fun () ->
      if t.closed then invalid_arg "Work_queue.push_all: closed";
      List.iter (fun x -> Queue.add x t.items) xs;
      Condition.broadcast t.wake)

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      (* Every blocked taker must re-check the closed flag. *)
      Condition.broadcast t.wake)

let take t =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        match Queue.take_opt t.items with
        | Some x -> Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.wake t.lock;
              wait ()
            end
      in
      wait ())

let length t = Mutex.protect t.lock (fun () -> Queue.length t.items)
