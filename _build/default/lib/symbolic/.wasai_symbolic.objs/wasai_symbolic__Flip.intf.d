lib/symbolic/flip.mli: Convention Hashtbl Replay Wasai_eosio Wasai_smt
