(** Seeds Γ⟨φ, ρ⃗⟩ and the per-action seed pool (§3.1, §3.3.2).

    The pool maps each action name to a circular queue of argument
    vectors; selection pops the head and pushes it back to the tail, as
    the paper describes. *)

open Wasai_eosio

type t = {
  sd_action : Name.t;
  sd_args : Abi.value list;
  sd_provenance : provenance;
}

and provenance =
  | Random_seed
  | Adaptive of int  (** site that was flipped *)
  | Imported  (** replayed from a persistent corpus *)

let to_string (s : t) =
  Printf.sprintf "Γ⟨%s, [%s]⟩"
    (Name.to_string s.sd_action)
    (String.concat "; " (List.map Abi.string_of_value s.sd_args))

(* ------------------------------------------------------------------ *)
(* Random seed generation                                              *)
(* ------------------------------------------------------------------ *)

(** Random arguments for an action signature.  Name-typed parameters are
    drawn from [identities] — only existing accounts can appear in
    authorisations and ownership rows, as on a real chain. *)
let random_args (rng : Wasai_support.Rand.t) ~(identities : Name.t list)
    (def : Abi.action_def) : Abi.value list =
  List.map
    (fun (_, ty) ->
      match (ty : Abi.param_type) with
      | Abi.T_name -> Abi.V_name (Wasai_support.Rand.choose rng identities)
      | Abi.T_u64 -> Abi.V_u64 (Wasai_support.Rand.next_u64 rng)
      | Abi.T_u32 -> Abi.V_u32 (Wasai_support.Rand.next_i32 rng)
      | Abi.T_asset ->
          Abi.V_asset
            (Asset.eos_of_units
               (Int64.of_int (1 + Wasai_support.Rand.int rng 1_000_000)))
      | Abi.T_string ->
          let n = Wasai_support.Rand.int rng 16 in
          Abi.V_string (Wasai_support.Rand.ascii_string rng n))
    def.Abi.act_params

let random (rng : Wasai_support.Rand.t) ~identities (def : Abi.action_def) : t =
  {
    sd_action = def.Abi.act_name;
    sd_args = random_args rng ~identities def;
    sd_provenance = Random_seed;
  }

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

type entry = {
  queue : t Queue.t;  (** circular queue of already-tried seeds *)
  mutable fresh : t list;  (** untried adaptive seeds, consumed first *)
}

type pool = {
  queues : (Name.t, entry) Hashtbl.t;
  mutable total_added : int;
}

let create_pool () = { queues = Hashtbl.create 8; total_added = 0 }

let entry_of pool action =
  match Hashtbl.find_opt pool.queues action with
  | Some e -> e
  | None ->
      let e = { queue = Queue.create (); fresh = [] } in
      Hashtbl.replace pool.queues action e;
      e

(** Adaptive seeds jump the queue: they were solved to reach a specific
    unexplored branch and lose their value if stale state moves on.
    Imported corpus seeds take the same priority — they are known to open
    coverage, so they should run before fresh random generation. *)
let add pool (s : t) =
  let e = entry_of pool s.sd_action in
  (match s.sd_provenance with
   | Adaptive _ | Imported -> e.fresh <- e.fresh @ [ s ]
   | Random_seed -> Queue.add s e.queue);
  pool.total_added <- pool.total_added + 1

(** Take an untried adaptive seed, if any (it moves to the circular
    queue). *)
let take_fresh pool (action : Name.t) : t option =
  let e = entry_of pool action in
  match e.fresh with
  | s :: rest ->
      e.fresh <- rest;
      Queue.add s e.queue;
      Some s
  | [] -> None

(** Take the next seed: untried adaptive seeds first, then pop the head of
    the circular queue and cycle it to the tail (§3.3.2). *)
let next pool (action : Name.t) : t option =
  let e = entry_of pool action in
  match e.fresh with
  | s :: rest ->
      e.fresh <- rest;
      Queue.add s e.queue;
      Some s
  | [] -> (
      match Queue.take_opt e.queue with
      | None -> None
      | Some s ->
          Queue.add s e.queue;
          Some s)

let size pool action =
  let e = entry_of pool action in
  Queue.length e.queue + List.length e.fresh

let total pool = pool.total_added
