(** WAT-style pretty printer.  Output is human-oriented and not meant to
    be re-parsed. *)

val to_string : Ast.module_ -> string
