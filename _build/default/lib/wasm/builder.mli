(** Programmatic module construction.  Function indices are allocated in
    declaration order with all imports first (mirroring the binary index
    space); declaring a function before setting its body supports
    recursion and indirect-call tables. *)

type t

val create : unit -> t

val add_type : t -> Types.func_type -> int
(** Intern a function type, returning its index. *)

val import_func : t -> module_:string -> name:string -> Types.func_type -> int
(** Import a function; must precede all local function declarations. *)

val declare_func : t -> ?name:string -> Types.func_type -> int
(** Reserve a function index; supply the body later with {!set_body}. *)

val set_body :
  t -> int -> ?locals:Types.value_type list -> Ast.instr list -> unit

val add_func :
  t ->
  ?name:string ->
  ?locals:Types.value_type list ->
  Types.func_type ->
  Ast.instr list ->
  int
(** Declare a function and set its body at once; returns its index. *)

val add_global : t -> ?mut:Types.mutability -> Values.value -> int
val add_memory : t -> ?max:int -> int -> unit
val add_table : t -> int -> unit

val add_elem : t -> offset:int -> int list -> unit
(** Populate the indirect-call table (grows it as needed). *)

val add_data : t -> offset:int -> string -> unit
val export_func : t -> string -> int -> unit
val export_memory : t -> string -> unit
val set_start : t -> int -> unit

val build : t -> Ast.module_

(** Short-hand instruction constructors; open locally when assembling
    bodies. *)
module I : sig
  val i32 : int -> Ast.instr
  val i32l : int32 -> Ast.instr
  val i64 : int64 -> Ast.instr
  val f32 : float -> Ast.instr
  val f64 : float -> Ast.instr
  val local_get : int -> Ast.instr
  val local_set : int -> Ast.instr
  val local_tee : int -> Ast.instr
  val global_get : int -> Ast.instr
  val global_set : int -> Ast.instr
  val call : int -> Ast.instr
  val call_indirect : int -> Ast.instr
  val drop : Ast.instr
  val select : Ast.instr
  val nop : Ast.instr
  val unreachable : Ast.instr
  val return : Ast.instr
  val br : int -> Ast.instr
  val br_if : int -> Ast.instr
  val br_table : int list -> int -> Ast.instr
  val block : ?result:Types.value_type -> Ast.instr list -> Ast.instr
  val loop : ?result:Types.value_type -> Ast.instr list -> Ast.instr

  val if_ :
    ?result:Types.value_type -> Ast.instr list -> Ast.instr list -> Ast.instr

  val i32_eqz : Ast.instr
  val i64_eqz : Ast.instr
  val i32_eq : Ast.instr
  val i32_ne : Ast.instr
  val i32_lt_s : Ast.instr
  val i32_lt_u : Ast.instr
  val i32_gt_s : Ast.instr
  val i32_gt_u : Ast.instr
  val i32_le_s : Ast.instr
  val i32_ge_s : Ast.instr
  val i32_ge_u : Ast.instr
  val i64_eq : Ast.instr
  val i64_ne : Ast.instr
  val i64_lt_s : Ast.instr
  val i64_lt_u : Ast.instr
  val i64_gt_s : Ast.instr
  val i64_gt_u : Ast.instr
  val i64_le_s : Ast.instr
  val i64_ge_s : Ast.instr
  val i64_ge_u : Ast.instr
  val i32_add : Ast.instr
  val i32_sub : Ast.instr
  val i32_mul : Ast.instr
  val i32_and : Ast.instr
  val i32_or : Ast.instr
  val i32_xor : Ast.instr
  val i32_shl : Ast.instr
  val i32_shr_u : Ast.instr
  val i32_rem_u : Ast.instr
  val i32_div_u : Ast.instr
  val i32_popcnt : Ast.instr
  val i64_add : Ast.instr
  val i64_sub : Ast.instr
  val i64_mul : Ast.instr
  val i64_and : Ast.instr
  val i64_or : Ast.instr
  val i64_xor : Ast.instr
  val i64_shl : Ast.instr
  val i64_shr_u : Ast.instr
  val i64_rem_u : Ast.instr
  val i64_rem_s : Ast.instr
  val i64_div_u : Ast.instr
  val i64_popcnt : Ast.instr
  val i32_wrap_i64 : Ast.instr
  val i64_extend_i32_u : Ast.instr
  val i64_extend_i32_s : Ast.instr
  val load : Types.num_type -> ?offset:int -> unit -> Ast.instr
  val i32_load : ?offset:int -> unit -> Ast.instr
  val i64_load : ?offset:int -> unit -> Ast.instr
  val i32_load8_u : ?offset:int -> unit -> Ast.instr
  val store : Types.num_type -> ?offset:int -> unit -> Ast.instr
  val i32_store : ?offset:int -> unit -> Ast.instr
  val i64_store : ?offset:int -> unit -> Ast.instr
  val i32_store8 : ?offset:int -> unit -> Ast.instr
end
