(** Complicated-verification injection (RQ3, §4.3): [if (field != const)
    unreachable] chains at the entry of a module's eosponser, at the
    bytecode level.  Only seeds satisfying every equality reach the rest
    of the function. *)

val check_instrs : Contracts.check list -> Wasai_wasm.Ast.instr list

val inject :
  ?fname:string -> Wasai_wasm.Ast.module_ -> Contracts.check list ->
  Wasai_wasm.Ast.module_
(** Prepend checks to the named function (default "eosponser"); the
    result is validated. *)

val random_checks :
  ?targets:Contracts.check_target array ->
  Wasai_support.Rand.t ->
  depth:int ->
  Contracts.check list
(** Random equality chain over distinct fields (satisfiable). *)

val payload_targets : Contracts.check_target array
(** Fields the payload controls on every adversary channel (quantity and
    memo, not the payer/payee the notification mechanism fixes). *)

val random_milestones :
  Wasai_support.Rand.t -> depth:int -> Contracts.milestone list
(** Milestone chain over distinct (field, byte) slots: amount and memo
    bytes first (channel-free), payer/payee bytes deeper. *)
