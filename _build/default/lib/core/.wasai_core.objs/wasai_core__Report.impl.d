lib/core/report.ml: Buffer Engine List Printf Scanner String Wasai_eosio
