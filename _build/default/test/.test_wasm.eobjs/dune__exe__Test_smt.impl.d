test/test_smt.ml: Alcotest Array Bitblast Expr Hashtbl Int64 List Printf QCheck QCheck_alcotest Sat Solver Wasai_smt Wasai_support
