(** The serve daemon — see serve.mli for the architecture overview. *)

module Core = Wasai_core
module Wasm = Wasai_wasm
module Campaign = Wasai_campaign.Campaign
module Journal = Wasai_campaign.Journal
module Shard = Wasai_campaign.Shard
module Work_queue = Wasai_campaign.Work_queue
module Discover = Wasai_campaign.Discover
module Corpus = Wasai_corpus.Corpus
module Metrics = Wasai_support.Metrics
module Fsutil = Wasai_support.Fsutil
module Telemetry = Wasai_telemetry.Telemetry
open Wasai_eosio

(* Longest accepted request line: a hex-encoded module rides in one
   line, so the cap bounds uploads at 32 MiB of wasm. *)
let max_line = 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  sv_root : string;
  sv_socket : string;
  sv_jobs : int;
  sv_depth : int;
  sv_resume : bool;
  sv_engine : Core.Engine.config;
}

let make_config ~root ~socket ?(jobs = 1) ?(depth = 16) ?(resume = false)
    ~engine () =
  if jobs < 1 then invalid_arg "Serve.make_config: jobs must be >= 1";
  if depth < 1 then invalid_arg "Serve.make_config: depth must be >= 1";
  (* Cold runs only: the per-tenant corpus is write-only (see .mli). *)
  let engine = { engine with Core.Engine.cfg_preload = [] } in
  {
    sv_root = root;
    sv_socket = socket;
    sv_jobs = jobs;
    sv_depth = depth;
    sv_resume = resume;
    sv_engine = engine;
  }

(* Serve runs are unsharded: the tenant registry, not a shard hash,
   partitions the work. *)
let stamp_of_engine (engine : Core.Engine.config) : Journal.stamp =
  {
    Journal.js_shard = Shard.whole;
    js_seed = engine.Core.Engine.cfg_rng_seed;
    js_rounds = engine.Core.Engine.cfg_rounds;
  }

let tenant_dir ~root tenant = Filename.concat root tenant
let journal_path ~root tenant = Filename.concat (tenant_dir ~root tenant) "journal"
let corpus_path ~root tenant = Filename.concat (tenant_dir ~root tenant) "corpus"

(* ------------------------------------------------------------------ *)
(* Daemon state                                                        *)
(* ------------------------------------------------------------------ *)

type job = {
  jb_conn : int;
  jb_tenant : string;
  jb_name : string;
  jb_wasm : string;
  jb_abi : string option;
  jb_submitted : float;
  jb_slice : int;  (** 0-based slice index (0 on the whole-target path) *)
  jb_count : int;  (** K; 1 = classic whole-target job *)
}

type tenant_state = {
  tn_name : string;
  tn_journal : Journal.writer;
  tn_corpus : Corpus.t;  (** in-memory dedupe index over appended seeds *)
  tn_corpus_w : Corpus.Writer.w;
  tn_done : (string, Journal.entry) Hashtbl.t;
  tn_inflight : (string, unit) Hashtbl.t;
  tn_frags : (string, int * (int, Core.Engine.Slice.fragment) Hashtbl.t) Hashtbl.t;
      (** per-name partial slice sets: journaled by a previous daemon
          run and/or collected by this one; merged into [tn_done] when
          complete *)
  tn_qwait : Metrics.Histogram.t;
  tn_latency : Metrics.Histogram.t;
  mutable tn_submitted : int;
  mutable tn_completed : int;
  mutable tn_rejected : int;
}

type conn = {
  cn_id : int;
  cn_fd : Unix.file_descr;
  mutable cn_in : string;  (** bytes read, not yet split into a line *)
  mutable cn_out : string;  (** bytes queued, not yet written *)
  mutable cn_closing : bool;  (** close once [cn_out] drains *)
}

type t = {
  cfg : config;
  stamp : Journal.stamp;
  started : float;  (** [Unix.gettimeofday] at {!create}, for uptime *)
  lock : Mutex.t;  (** guards tenants and completions *)
  tenants : (string, tenant_state) Hashtbl.t;
  queue : job Work_queue.t;
  completions : (int * Wire.response) Queue.t;
  outstanding : int Atomic.t;  (** admitted jobs not yet completed *)
  aborting : bool Atomic.t;
  stop_flag : bool Atomic.t;
      (** set by {!request_stop} (possibly from a signal handler, hence
          no lock); the I/O loop turns it into [Work_queue.close] *)
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;  (** self-pipe: workers nudge the select loop *)
  wake_w : Unix.file_descr;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable workers : unit Domain.t list;
}

let wake t =
  (* Nonblocking and best-effort: one pending byte already guarantees a
     wakeup, so a full pipe can be ignored. *)
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Tenant registry                                                     *)
(* ------------------------------------------------------------------ *)

(* Fold a tenant's complete slice set for [name] into its final journal
   entry, with the campaign durability discipline: corpus seeds first,
   then the (byte-identical for every K) merged v4 entry.  Caller holds
   the daemon lock, or is single-threaded (tenant load). *)
let merge_slice_set ~stamp (tn : tenant_state) name : Journal.entry =
  let k, tbl = Hashtbl.find tn.tn_frags name in
  let merged = Core.Engine.Slice.merge (List.init k (Hashtbl.find tbl)) in
  let outcome = Core.Engine.Slice.outcome_of_fragment merged in
  let entry =
    Journal.of_outcome ~name
      ~elapsed:merged.Core.Engine.Slice.fg_elapsed
      ~stamp outcome
  in
  let t_corpus = Telemetry.start () in
  List.iter
    (fun r ->
      if Corpus.add tn.tn_corpus r then Corpus.Writer.append tn.tn_corpus_w r)
    (Campaign.corpus_records_of ~name stamp outcome);
  Telemetry.stop Telemetry.Corpus_io t_corpus;
  Journal.append tn.tn_journal entry;
  Hashtbl.replace tn.tn_done name entry;
  Hashtbl.remove tn.tn_frags name;
  entry

let load_tenant ~root ~resume ~backend stamp tenant : tenant_state =
  let dir = tenant_dir ~root tenant in
  Fsutil.mkdir_p dir;
  let jpath = journal_path ~root tenant in
  let done_ = Hashtbl.create 64 in
  let pending_frags = ref [] in
  if Sys.file_exists jpath then begin
    if not resume then
      failwith
        (Printf.sprintf
           "serve: tenant %S already has a journal under %s; pass --resume \
            to continue it"
           tenant root);
    let header, entries, frags = Journal.load_full jpath in
    Campaign.validate_header
      ~context:(Printf.sprintf "serve tenant %s" tenant)
      backend header;
    Campaign.validate_entries
      ~context:(Printf.sprintf "serve tenant %s" tenant)
      stamp entries;
    Campaign.validate_fragments
      ~context:(Printf.sprintf "serve tenant %s" tenant)
      stamp frags;
    (* Last entry per name wins, as campaign resume does. *)
    List.iter (fun (e : Journal.entry) -> Hashtbl.replace done_ e.Journal.je_name e) entries;
    (* Fragments of journaled names are stale leftovers of the run that
       merged them; only pending sets are reconstructed. *)
    pending_frags :=
      List.filter
        (fun (f : Journal.fragment) -> not (Hashtbl.mem done_ f.Journal.jf_name))
        frags
  end;
  let cpath = corpus_path ~root tenant in
  let corpus = if Sys.file_exists cpath then Corpus.load cpath else Corpus.create () in
  let tn =
    {
      tn_name = tenant;
      (* Tenant journals keep the legacy backend-only header even though
         the daemon records telemetry: the [telemetry=] stamp exists so
         campaign resumes agree about their report's breakdown, and serve
         exposes its breakdown live over METRICS instead — journal bytes
         stay identical to every earlier daemon build. *)
      tn_journal =
        Journal.open_writer
          ~header:{ Journal.jh_backend = backend; jh_telemetry = false }
          jpath;
      tn_corpus = corpus;
      tn_corpus_w = Corpus.Writer.open_ cpath;
      tn_done = done_;
      tn_inflight = Hashtbl.create 16;
      tn_frags =
        Campaign.group_fragments
          ~context:(Printf.sprintf "serve tenant %s" tenant)
          !pending_frags;
      tn_qwait = Metrics.Histogram.create ();
      tn_latency = Metrics.Histogram.create ();
      tn_submitted = 0;
      tn_completed = 0;
      tn_rejected = 0;
    }
  in
  (* Slice sets completed on disk but never merged (a crash between the
     last fragment and the entry line): finish them now, so a
     resubmission replays the cached verdict. *)
  let complete =
    Hashtbl.fold
      (fun name (k, tbl) acc ->
        if Hashtbl.length tbl = k then name :: acc else acc)
      tn.tn_frags []
  in
  List.iter
    (fun name -> ignore (merge_slice_set ~stamp tn name))
    (List.sort compare complete);
  tn

let scan_root root =
  if not (Sys.file_exists root) then []
  else
    Sys.readdir root |> Array.to_list |> List.sort compare
    |> List.filter (fun d ->
           Sys.is_directory (tenant_dir ~root d)
           && Sys.file_exists (journal_path ~root d))

let total_completed t =
  Hashtbl.fold (fun _ tn acc -> acc + tn.tn_completed) t.tenants 0

(* ------------------------------------------------------------------ *)
(* Worker domains                                                      *)
(* ------------------------------------------------------------------ *)

let target_of_job (jb : job) : Core.Engine.target =
  let account = Name.of_string jb.jb_name in
  let t_load = Telemetry.start () in
  let m =
    (* Clients send file bytes verbatim: binary modules carry the
       \x00asm magic, anything else is treated as .wat text. *)
    if String.length jb.jb_wasm >= 4 && String.sub jb.jb_wasm 0 4 = "\x00asm"
    then Wasm.Decode.decode jb.jb_wasm
    else Wasm.Text.parse jb.jb_wasm
  in
  let abi =
    match jb.jb_abi with
    | Some text -> Abi.of_text text
    | None -> Discover.default_abi
  in
  Telemetry.stop Telemetry.Load_validate t_load;
  { Core.Engine.tgt_account = account; tgt_module = m; tgt_abi = abi }

let run_job (t : t) (jb : job) : Core.Engine.outcome =
  (* Attribute this domain's spans to the submission until the next job. *)
  if Telemetry.enabled () then
    Telemetry.set_target (Telemetry.target_id (jb.jb_tenant ^ "/" ^ jb.jb_name));
  Core.Engine.fuzz ~cfg:t.cfg.sv_engine (target_of_job jb)

(* One slice of a partitioned submission: same decode, but only the
   slice's cell range of the round budget runs; spans are attributed per
   (submission, slice). *)
let run_slice (t : t) (jb : job) : Core.Engine.Slice.fragment =
  if Telemetry.enabled () then
    Telemetry.set_target
      (Telemetry.target_id
         (Printf.sprintf "%s/%s#%d/%d" jb.jb_tenant jb.jb_name jb.jb_slice
            jb.jb_count));
  Core.Engine.Slice.run ~cfg:t.cfg.sv_engine ~slice:jb.jb_slice
    ~count:jb.jb_count (target_of_job jb)

let drop_inflight t jb =
  match Hashtbl.find_opt t.tenants jb.jb_tenant with
  | Some tn -> Hashtbl.remove tn.tn_inflight jb.jb_name
  | None -> ()

(* A submission's verdict reached the journal: bump the tenant counters,
   record its latencies and stream the VERDICT line.  Caller holds
   t.lock. *)
let finish_submission t (jb : job) ~started (tn : tenant_state)
    (entry : Journal.entry) =
  Hashtbl.remove tn.tn_inflight jb.jb_name;
  tn.tn_completed <- tn.tn_completed + 1;
  let finished = Unix.gettimeofday () in
  Metrics.Histogram.add tn.tn_qwait (started -. jb.jb_submitted);
  Metrics.Histogram.add tn.tn_latency (finished -. jb.jb_submitted);
  Queue.add
    ( jb.jb_conn,
      Wire.Verdict
        {
          rp_tenant = jb.jb_tenant;
          rp_kind = Wire.Fresh;
          rp_wait_ms = int_of_float (1000. *. (finished -. jb.jb_submitted));
          rp_entry = entry;
        } )
    t.completions

let worker (t : t) () =
  let rec go () =
    match Work_queue.take t.queue with
    | None -> ()
    | Some jb ->
        (if Atomic.get t.aborting then
           (* Simulated kill -9: the job dies un-journaled, exactly as a
              queued submission would under a real SIGKILL. *)
           Mutex.protect t.lock (fun () -> drop_inflight t jb)
         else if jb.jb_count = 1 then begin
           let started = Unix.gettimeofday () in
           match run_job t jb with
           | outcome ->
               let elapsed = Unix.gettimeofday () -. started in
               let entry =
                 Journal.of_outcome ~name:jb.jb_name ~elapsed ~stamp:t.stamp
                   outcome
               in
               let recs =
                 Campaign.corpus_records_of ~name:jb.jb_name t.stamp outcome
               in
               Mutex.protect t.lock (fun () ->
                   match Hashtbl.find_opt t.tenants jb.jb_tenant with
                   | None -> ()
                   | Some tn ->
                       (* Seeds reach disk before the journal line: a
                          journaled target is never re-fuzzed on
                          resume, so a seed lost here would be lost
                          forever (campaign discipline). *)
                       let t_corpus = Telemetry.start () in
                       List.iter
                         (fun r ->
                           if Corpus.add tn.tn_corpus r then
                             Corpus.Writer.append tn.tn_corpus_w r)
                         recs;
                       Telemetry.stop Telemetry.Corpus_io t_corpus;
                       Journal.append tn.tn_journal entry;
                       Hashtbl.replace tn.tn_done jb.jb_name entry;
                       finish_submission t jb ~started tn entry)
           | exception e ->
               let reason = Printexc.to_string e in
               Mutex.protect t.lock (fun () ->
                   drop_inflight t jb;
                   Queue.add
                     ( jb.jb_conn,
                       Wire.Err { rp_name = Some jb.jb_name; rp_reason = reason }
                     )
                     t.completions)
         end
         else begin
           let started = Unix.gettimeofday () in
           match run_slice t jb with
           | frag ->
               Mutex.protect t.lock (fun () ->
                   match Hashtbl.find_opt t.tenants jb.jb_tenant with
                   | None -> ()
                   | Some tn ->
                       (* The fragment line is durable before the slice
                          counts as done: a daemon crash costs at most
                          the in-flight slices, and a resumed daemon
                          reconstructs the set from these lines. *)
                       Journal.append_fragment tn.tn_journal
                         {
                           Journal.jf_name = jb.jb_name;
                           jf_stamp = t.stamp;
                           jf_frag = frag;
                         };
                       let k, tbl =
                         match Hashtbl.find_opt tn.tn_frags jb.jb_name with
                         | Some kt -> kt
                         | None ->
                             let tbl = Hashtbl.create 8 in
                             Hashtbl.replace tn.tn_frags jb.jb_name
                               (jb.jb_count, tbl);
                             (jb.jb_count, tbl)
                       in
                       Hashtbl.replace tbl jb.jb_slice frag;
                       if Hashtbl.length tbl = k then
                         finish_submission t jb ~started tn
                           (merge_slice_set ~stamp:t.stamp tn jb.jb_name))
           | exception e ->
               (* One failed slice fails the submission (the first
                  failure wins — sibling failures of the same name stay
                  silent); fragments the other slices still journal stay
                  pending and a resubmission re-runs only the missing
                  ones. *)
               let reason = Printexc.to_string e in
               Mutex.protect t.lock (fun () ->
                   let first_failure =
                     match Hashtbl.find_opt t.tenants jb.jb_tenant with
                     | Some tn -> Hashtbl.mem tn.tn_inflight jb.jb_name
                     | None -> false
                   in
                   if first_failure then begin
                     drop_inflight t jb;
                     Queue.add
                       ( jb.jb_conn,
                         Wire.Err
                           {
                             rp_name = Some jb.jb_name;
                             rp_reason =
                               Printf.sprintf "slice %d/%d: %s" jb.jb_slice
                                 jb.jb_count reason;
                           } )
                       t.completions
                   end)
         end);
        (* Completion is enqueued before the decrement, so once the loop
           observes outstanding = 0 every verdict is already visible. *)
        Atomic.decr t.outstanding;
        wake t;
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Admission control (runs in the I/O loop, under t.lock)              *)
(* ------------------------------------------------------------------ *)

let retry_hint t tn =
  (* Expected time for one queue slot to free up: mean end-to-end
     latency spread over the worker pool, floored at 100 ms.  A fresh
     tenant has no samples yet; assume half a second. *)
  let mean =
    if Metrics.Histogram.count tn.tn_latency > 0 then
      Metrics.Histogram.mean tn.tn_latency
    else 0.5
  in
  let inflight = float_of_int (Hashtbl.length tn.tn_inflight) in
  max 100
    (int_of_float (1000. *. mean *. inflight /. float_of_int t.cfg.sv_jobs))

let find_or_create_tenant t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some tn -> tn
  | None ->
      let tn =
        load_tenant ~root:t.cfg.sv_root ~resume:t.cfg.sv_resume ~backend:t.cfg.sv_engine.Core.Engine.cfg_backend t.stamp tenant
      in
      Hashtbl.replace t.tenants tenant tn;
      tn

let admit t conn_id now (tenant : string) (name : string) wasm abi slices :
    Wire.response =
  Mutex.protect t.lock (fun () ->
      if Atomic.get t.stop_flag then
        Wire.Err { rp_name = Some name; rp_reason = "daemon is shutting down" }
      else
        match find_or_create_tenant t tenant with
        | exception Failure reason ->
            Wire.Err { rp_name = Some name; rp_reason = reason }
        | exception e ->
            Wire.Err { rp_name = Some name; rp_reason = Printexc.to_string e }
        | tn -> (
            match Hashtbl.find_opt tn.tn_done name with
            | Some entry ->
                (* Same name, already journaled: replay the recorded
                   verdict instead of re-fuzzing (resume discipline). *)
                tn.tn_submitted <- tn.tn_submitted + 1;
                Wire.Verdict
                  {
                    rp_tenant = tenant;
                    rp_kind = Wire.Cached;
                    rp_wait_ms = 0;
                    rp_entry = entry;
                  }
            | None ->
                let depth = Hashtbl.length tn.tn_inflight in
                if Hashtbl.mem tn.tn_inflight name || depth >= t.cfg.sv_depth
                then begin
                  tn.tn_rejected <- tn.tn_rejected + 1;
                  Wire.Busy
                    {
                      rp_tenant = tenant;
                      rp_name = name;
                      rp_retry_ms = retry_hint t tn;
                      rp_depth = depth;
                    }
                end
                else begin
                  (* The requested K, clamped to the budget's cell
                     granularity — except that a name with journaled
                     fragments keeps its recorded K (a mixed-K set
                     cannot merge), and only its missing slices are
                     enqueued. *)
                  let k, have =
                    match Hashtbl.find_opt tn.tn_frags name with
                    | Some (k, tbl) -> (k, tbl)
                    | None ->
                        ( max 1
                            (min slices
                               (Core.Engine.Slice.granularity
                                  ~rounds:
                                    t.cfg.sv_engine.Core.Engine.cfg_rounds)),
                          Hashtbl.create 1 )
                  in
                  let missing =
                    List.filter
                      (fun i -> not (Hashtbl.mem have i))
                      (List.init k Fun.id)
                  in
                  if missing = [] then begin
                    (* Complete sets are merged at tenant load, so this
                       is unreachable in practice — but a daemon must
                       not park a name in-flight with nothing queued. *)
                    tn.tn_submitted <- tn.tn_submitted + 1;
                    Wire.Verdict
                      {
                        rp_tenant = tenant;
                        rp_kind = Wire.Cached;
                        rp_wait_ms = 0;
                        rp_entry = merge_slice_set ~stamp:t.stamp tn name;
                      }
                  end
                  else begin
                  Hashtbl.replace tn.tn_inflight name ();
                  tn.tn_submitted <- tn.tn_submitted + 1;
                  List.iter
                    (fun slice ->
                      Atomic.incr t.outstanding;
                      Work_queue.push t.queue
                        {
                          jb_conn = conn_id;
                          jb_tenant = tenant;
                          jb_name = name;
                          jb_wasm = wasm;
                          jb_abi = abi;
                          jb_submitted = now;
                          jb_slice = slice;
                          jb_count = k;
                        })
                    missing;
                  Wire.Queued
                    {
                      rp_tenant = tenant;
                      rp_name = name;
                      rp_depth = Hashtbl.length tn.tn_inflight;
                    }
                  end
                end))

let uptime_ms t = int_of_float (1000. *. (Unix.gettimeofday () -. t.started))

let stats_reply t tenant : Wire.response =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tenants tenant with
      | None ->
          Wire.Err { rp_name = Some tenant; rp_reason = "unknown tenant" }
      | Some tn ->
          Wire.StatsReply
            {
              rp_tenant = tenant;
              rp_submitted = tn.tn_submitted;
              rp_completed = tn.tn_completed;
              rp_rejected = tn.tn_rejected;
              rp_qwait = Metrics.Histogram.to_wire tn.tn_qwait;
              rp_latency = Metrics.Histogram.to_wire tn.tn_latency;
              rp_uptime_ms = uptime_ms t;
              rp_backend =
                Core.Exec_backend.to_string
                  t.cfg.sv_engine.Core.Engine.cfg_backend;
            })

(* The Prometheus text exposition behind the METRICS verb: per-tenant
   counters and queue histograms (read under the daemon lock — the same
   lock every worker bumps them under, so the merge across domains is
   exact), plus the telemetry per-stage aggregates (exact integer sums
   over every domain's recorder). *)
let metrics_body t : string =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  Mutex.protect t.lock (fun () ->
      line "# HELP wasai_uptime_seconds Daemon uptime.";
      line "# TYPE wasai_uptime_seconds gauge";
      line "wasai_uptime_seconds %.3f" (Unix.gettimeofday () -. t.started);
      line "# HELP wasai_backend_info Active execution backend (label).";
      line "# TYPE wasai_backend_info gauge";
      line "wasai_backend_info{backend=\"%s\"} 1"
        (Core.Exec_backend.to_string t.cfg.sv_engine.Core.Engine.cfg_backend);
      line "# HELP wasai_jobs Worker domains.";
      line "# TYPE wasai_jobs gauge";
      line "wasai_jobs %d" t.cfg.sv_jobs;
      let tenants =
        Hashtbl.fold (fun _ tn acc -> tn :: acc) t.tenants []
        |> List.sort (fun a b -> compare a.tn_name b.tn_name)
      in
      List.iter
        (fun (what, get) ->
          line "# HELP wasai_tenant_%s_total Per-tenant %s submissions." what
            what;
          line "# TYPE wasai_tenant_%s_total counter" what;
          List.iter
            (fun tn ->
              line "wasai_tenant_%s_total{tenant=\"%s\"} %d" what tn.tn_name
                (get tn))
            tenants)
        [
          ("submitted", fun tn -> tn.tn_submitted);
          ("completed", fun tn -> tn.tn_completed);
          ("rejected", fun tn -> tn.tn_rejected);
        ];
      List.iter
        (fun (what, get) ->
          line "# HELP wasai_%s_seconds Per-tenant %s histogram." what what;
          line "# TYPE wasai_%s_seconds histogram" what;
          List.iter
            (fun tn ->
              let h = get tn in
              let cum = ref 0 in
              List.iter
                (fun (bound, c) ->
                  cum := !cum + c;
                  let le =
                    if Float.is_integer bound && bound <> Float.infinity then
                      Printf.sprintf "%.1f" bound
                    else if bound = Float.infinity then "+Inf"
                    else Printf.sprintf "%.6f" bound
                  in
                  line "wasai_%s_seconds_bucket{tenant=\"%s\",le=\"%s\"} %d"
                    what tn.tn_name le !cum)
                (Metrics.Histogram.buckets h);
              line "wasai_%s_seconds_sum{tenant=\"%s\"} %.6f" what tn.tn_name
                (Metrics.Histogram.sum h);
              line "wasai_%s_seconds_count{tenant=\"%s\"} %d" what tn.tn_name
                (Metrics.Histogram.count h))
            tenants)
        [
          ("queue_wait", fun tn -> tn.tn_qwait);
          ("latency", fun tn -> tn.tn_latency);
        ]);
  (* The stage aggregates live outside t.lock: the telemetry registry
     has its own, and snapshot sums are exact per recorded span. *)
  Buffer.add_string b (Telemetry.prometheus (Telemetry.snapshot ()));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

(* Only an atomic store and a pipe write: callable from a signal
   handler without risking a self-deadlock on t.lock.  The I/O loop
   performs the actual (idempotent) queue close. *)
let request_stop t =
  Atomic.set t.stop_flag true;
  wake t

let request_abort t =
  Atomic.set t.aborting true;
  request_stop t

let create cfg : t =
  let stamp = stamp_of_engine cfg.sv_engine in
  let prior = scan_root cfg.sv_root in
  if prior <> [] && not cfg.sv_resume then
    failwith
      (Printf.sprintf
         "serve: %s already holds journals for %d tenant(s) (%s); pass \
          --resume to continue them"
         cfg.sv_root (List.length prior)
         (String.concat ", " prior));
  Fsutil.mkdir_p cfg.sv_root;
  let tenants = Hashtbl.create 8 in
  List.iter
    (fun tenant ->
      Hashtbl.replace tenants tenant
        (load_tenant ~root:cfg.sv_root ~resume:cfg.sv_resume ~backend:cfg.sv_engine.Core.Engine.cfg_backend stamp tenant))
    prior;
  (* A singleton daemon owns the socket path: a leftover file from a
     killed daemon is stale by construction, so unlink and rebind. *)
  if Sys.file_exists cfg.sv_socket then (
    try Unix.unlink cfg.sv_socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.sv_socket);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  (* Span recording is always on in the daemon: METRICS must answer
     with real stage data, and the zero-interference contract (plus the
     legacy tenant-journal header above) keeps every journal line and
     verdict byte-identical to a build without telemetry.  Enabled
     before the workers spawn so every domain sees one setting. *)
  Telemetry.enable ();
  let t =
    {
      cfg;
      stamp;
      started = Unix.gettimeofday ();
      lock = Mutex.create ();
      tenants;
      queue = Work_queue.create ();
      completions = Queue.create ();
      outstanding = Atomic.make 0;
      aborting = Atomic.make false;
      stop_flag = Atomic.make false;
      listen_fd;
      wake_r;
      wake_w;
      conns = Hashtbl.create 16;
      next_conn = 0;
      workers = [];
    }
  in
  t.workers <- List.init cfg.sv_jobs (fun _ -> Domain.spawn (worker t));
  t

(* ------------------------------------------------------------------ *)
(* I/O loop                                                            *)
(* ------------------------------------------------------------------ *)

let send_response conn resp =
  conn.cn_out <- conn.cn_out ^ Wire.line_of_response resp ^ "\n"

let close_conn t conn =
  Hashtbl.remove t.conns conn.cn_id;
  try Unix.close conn.cn_fd with Unix.Unix_error _ -> ()

let handle_request t conn (req : Wire.request) =
  match req with
  | Wire.Ping ->
      let tenants = Mutex.protect t.lock (fun () -> Hashtbl.length t.tenants) in
      send_response conn
        (Wire.Pong { rp_jobs = t.cfg.sv_jobs; rp_tenants = tenants })
  | Wire.Stats tenant -> send_response conn (stats_reply t tenant)
  | Wire.Metrics ->
      send_response conn (Wire.MetricsReply { rp_body = metrics_body t })
  | Wire.Submit { rq_tenant; rq_name; rq_wasm; rq_abi; rq_slices } ->
      send_response conn
        (admit t conn.cn_id (Unix.gettimeofday ()) rq_tenant rq_name rq_wasm
           rq_abi rq_slices)
  | Wire.Shutdown ->
      let completed = Mutex.protect t.lock (fun () -> total_completed t) in
      send_response conn (Wire.Bye { rp_completed = completed });
      conn.cn_closing <- true;
      request_stop t

let handle_line t conn line =
  match Wire.request_of_line line with
  | Ok req -> handle_request t conn req
  | Error reason ->
      (* Strict grammar: a malformed request gets one ERR line and the
         connection is dropped. *)
      send_response conn (Wire.Err { rp_name = None; rp_reason = reason });
      conn.cn_closing <- true

let feed_conn t conn chunk =
  conn.cn_in <- conn.cn_in ^ chunk;
  let rec split () =
    match String.index_opt conn.cn_in '\n' with
    | Some i ->
        let line = String.sub conn.cn_in 0 i in
        conn.cn_in <-
          String.sub conn.cn_in (i + 1) (String.length conn.cn_in - i - 1);
        if not conn.cn_closing then handle_line t conn line;
        split ()
    | None ->
        if String.length conn.cn_in > max_line then begin
          send_response conn
            (Wire.Err { rp_name = None; rp_reason = "request line too long" });
          conn.cn_closing <- true
        end
  in
  split ()

let accept_conns t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        let id = t.next_conn in
        t.next_conn <- id + 1;
        Hashtbl.replace t.conns id
          { cn_id = id; cn_fd = fd; cn_in = ""; cn_out = ""; cn_closing = false };
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Stream completed verdicts to their submitting connections; a client
   that disconnected early just loses its stream (the journal already
   has the result). *)
let flush_completions t =
  let pending =
    Mutex.protect t.lock (fun () ->
        let xs = List.of_seq (Queue.to_seq t.completions) in
        Queue.clear t.completions;
        xs)
  in
  List.iter
    (fun (conn_id, resp) ->
      match Hashtbl.find_opt t.conns conn_id with
      | Some conn when not conn.cn_closing -> send_response conn resp
      | _ -> ())
    pending

let read_conn t conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.cn_fd buf 0 65536 with
  | 0 -> close_conn t conn
  | n -> feed_conn t conn (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_conn t conn

let write_conn t conn =
  match
    Unix.write_substring conn.cn_fd conn.cn_out 0 (String.length conn.cn_out)
  with
  | n ->
      conn.cn_out <- String.sub conn.cn_out n (String.length conn.cn_out - n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_conn t conn

let serve t =
  (* A client hanging up mid-stream must not kill the daemon. *)
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      match prev_sigpipe with
      | Some h -> ( try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
      | None -> ())
    (fun () ->
      let finished = ref false in
      while not !finished do
        (* The stop flag may have been set asynchronously (signal
           handler, another domain); only the I/O loop closes the queue,
           so admission (also only in this loop) can never push after
           close. *)
        if Atomic.get t.stop_flag then Work_queue.close t.queue;
        flush_completions t;
        let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
        let reads =
          t.listen_fd :: t.wake_r
          :: List.filter_map
               (fun c -> if c.cn_closing then None else Some c.cn_fd)
               conns
        in
        let writes =
          List.filter_map
            (fun c -> if c.cn_out <> "" then Some c.cn_fd else None)
            conns
        in
        (match Unix.select reads writes [] 0.2 with
         | readable, writable, _ ->
             if List.mem t.wake_r readable then drain_wake t;
             if List.mem t.listen_fd readable then accept_conns t;
             List.iter
               (fun c ->
                 if Hashtbl.mem t.conns c.cn_id && List.mem c.cn_fd readable
                 then read_conn t c)
               conns;
             List.iter
               (fun c ->
                 if Hashtbl.mem t.conns c.cn_id && List.mem c.cn_fd writable
                 then write_conn t c)
               conns
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        (* Completed jobs may have landed during select. *)
        flush_completions t;
        (* Drop connections whose goodbye has fully drained. *)
        Hashtbl.iter
          (fun _ c -> if c.cn_closing && c.cn_out = "" then close_conn t c)
          (Hashtbl.copy t.conns);
        if Atomic.get t.stop_flag && Atomic.get t.outstanding = 0 then begin
          Work_queue.close t.queue;
          (* Workers are idle on a closed, drained queue: join them,
             then flush what their last completions queued. *)
          List.iter Domain.join t.workers;
          t.workers <- [];
          flush_completions t;
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec drain_out () =
            let pending =
              Hashtbl.fold
                (fun _ c acc -> if c.cn_out <> "" then c :: acc else acc)
                t.conns []
            in
            if pending <> [] && Unix.gettimeofday () < deadline then begin
              (match
                 Unix.select [] (List.map (fun c -> c.cn_fd) pending) [] 0.2
               with
               | _, writable, _ ->
                   List.iter
                     (fun c ->
                       if Hashtbl.mem t.conns c.cn_id
                          && List.mem c.cn_fd writable
                       then write_conn t c)
                     pending
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
              drain_out ()
            end
          in
          drain_out ();
          Hashtbl.iter (fun _ c -> close_conn t c) (Hashtbl.copy t.conns);
          (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
          (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
          (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
          Mutex.protect t.lock (fun () ->
              Hashtbl.iter
                (fun _ tn ->
                  Journal.close_writer tn.tn_journal;
                  Corpus.Writer.close tn.tn_corpus_w)
                t.tenants);
          (* A real kill -9 leaves the socket file behind; the simulated
             one does too, so resume tests exercise the stale-socket
             path. *)
          if not (Atomic.get t.aborting) then (
            try Unix.unlink t.cfg.sv_socket with Unix.Unix_error _ -> ());
          finished := true
        end
      done)

(* ------------------------------------------------------------------ *)
(* Offline tenant reports                                              *)
(* ------------------------------------------------------------------ *)

let tenants ~root = scan_root root

let tenant_entries ~root ~engine tenant =
  let stamp = stamp_of_engine engine in
  let header, entries = Journal.load_with_header (journal_path ~root tenant) in
  Campaign.validate_header
    ~context:(Printf.sprintf "serve tenant %s" tenant)
    engine.Core.Engine.cfg_backend header;
  Campaign.validate_entries
    ~context:(Printf.sprintf "serve tenant %s" tenant)
    stamp entries;
  (* Collapse duplicates to the last entry per name, newest wins, then
     canonical name order — Campaign.of_entries does exactly this. *)
  (Campaign.of_entries entries).Campaign.cr_results

let tenant_report ~root ~engine tenant =
  let entries = tenant_entries ~root ~engine tenant in
  let report = Campaign.of_entries entries in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "tenant %s: targets=%d\n" tenant (List.length entries));
  Buffer.add_string b (Campaign.verdicts_text report);
  let evidence = Campaign.evidence_text report in
  if evidence <> "" then begin
    Buffer.add_string b "exploit evidence:\n";
    Buffer.add_string b evidence
  end;
  Buffer.contents b
