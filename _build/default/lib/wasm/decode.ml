(** Decoder for the Wasm binary format (MVP), the inverse of {!Encode}.

    Raises {!Decode_error} with a byte offset and message on malformed
    input. *)

exception Decode_error of int * string

let error pos fmt =
  Printf.ksprintf (fun s -> raise (Decode_error (pos, s))) fmt

type stream = {
  src : string;
  mutable pos : int;
  limit : int;
}

let of_string ?(pos = 0) ?limit src =
  { src; pos; limit = (match limit with Some l -> l | None -> String.length src) }

let eos s = s.pos >= s.limit

let byte s =
  if eos s then error s.pos "unexpected end of input";
  let b = Char.code s.src.[s.pos] in
  s.pos <- s.pos + 1;
  b

let peek s = if eos s then -1 else Char.code s.src.[s.pos]

let get_string s n =
  if s.pos + n > s.limit then error s.pos "string extends past end";
  let r = String.sub s.src s.pos n in
  s.pos <- s.pos + n;
  r

(* Unsigned LEB128, at most 64 bits. *)
let u64 s =
  let rec go shift acc =
    let b = byte s in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
    if b land 0x80 <> 0 then begin
      if shift >= 63 then error s.pos "u64 too long";
      go (shift + 7) acc
    end
    else acc
  in
  go 0 0L

let u32 s =
  let v = u64 s in
  if Int64.unsigned_compare v 0xFFFF_FFFFL > 0 then error s.pos "u32 out of range";
  Int64.to_int v

(* Signed LEB128. *)
let s64 s =
  let rec go shift acc =
    let b = byte s in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc
    else if shift + 7 < 64 && b land 0x40 <> 0 then
      (* sign-extend *)
      Int64.logor acc (Int64.shift_left (-1L) (shift + 7))
    else acc
  in
  go 0 0L

let s32 s = Int64.to_int32 (s64 s)

let f32 s =
  let bits = ref 0l in
  for i = 0 to 3 do
    bits := Int32.logor !bits (Int32.shift_left (Int32.of_int (byte s)) (8 * i))
  done;
  Int32.float_of_bits !bits

let f64 s =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte s)) (8 * i))
  done;
  Int64.float_of_bits !bits

let name s =
  let n = u32 s in
  get_string s n

let vec f s =
  let n = u32 s in
  List.init n (fun _ -> f s)

let value_type s : Types.value_type =
  match byte s with
  | 0x7f -> Types.I32
  | 0x7e -> Types.I64
  | 0x7d -> Types.F32
  | 0x7c -> Types.F64
  | b -> error s.pos "bad value type 0x%02x" b

let block_type s : Ast.block_type =
  match peek s with
  | 0x40 ->
      ignore (byte s);
      None
  | _ -> Some (value_type s)

let func_type s : Types.func_type =
  (match byte s with 0x60 -> () | b -> error s.pos "bad functype tag 0x%02x" b);
  let params = vec value_type s in
  let results = vec value_type s in
  { Types.params; results }

let limits s : Types.limits =
  match byte s with
  | 0x00 ->
      let lim_min = u32 s in
      { Types.lim_min; lim_max = None }
  | 0x01 ->
      let lim_min = u32 s in
      let m = u32 s in
      { Types.lim_min; lim_max = Some m }
  | b -> error s.pos "bad limits tag 0x%02x" b

let global_type s : Types.global_type =
  let gt_type = value_type s in
  let gt_mut =
    match byte s with
    | 0x00 -> Types.Immutable
    | 0x01 -> Types.Mutable
    | b -> error s.pos "bad mutability 0x%02x" b
  in
  { Types.gt_mut; gt_type }

let memarg s =
  let align = u32 s in
  let offset = u32 s in
  (align, Int32.of_int offset)

let loadop ty pack s : Ast.loadop =
  let align, offset = memarg s in
  { Ast.l_ty = ty; l_pack = pack; l_align = align; l_offset = offset }

let storeop ty pack s : Ast.storeop =
  let align, offset = memarg s in
  { Ast.s_ty = ty; s_pack = pack; s_align = align; s_offset = offset }

(** Decode instructions until a terminator ([end] or [else]); returns the
    instruction list and the terminator byte. *)
let rec instr_seq s : Ast.instr list * int =
  let rec go acc =
    let op = byte s in
    if op = 0x0b || op = 0x05 then (List.rev acc, op)
    else
      let i = instr s op in
      go (i :: acc)
  in
  go []

and instr s op : Ast.instr =
  let open Ast in
  match op with
  | 0x00 -> Unreachable
  | 0x01 -> Nop
  | 0x02 ->
      let bt = block_type s in
      let body, term = instr_seq s in
      if term <> 0x0b then error s.pos "block: expected end";
      Block (bt, body)
  | 0x03 ->
      let bt = block_type s in
      let body, term = instr_seq s in
      if term <> 0x0b then error s.pos "loop: expected end";
      Loop (bt, body)
  | 0x04 ->
      let bt = block_type s in
      let then_, term = instr_seq s in
      if term = 0x05 then begin
        let else_, term2 = instr_seq s in
        if term2 <> 0x0b then error s.pos "if: expected end";
        If (bt, then_, else_)
      end
      else If (bt, then_, [])
  | 0x0c -> Br (u32 s)
  | 0x0d -> Br_if (u32 s)
  | 0x0e ->
      let targets = vec u32 s in
      let default = u32 s in
      Br_table (targets, default)
  | 0x0f -> Return
  | 0x10 -> Call (u32 s)
  | 0x11 ->
      let ti = u32 s in
      let tbl = byte s in
      if tbl <> 0x00 then error s.pos "call_indirect: bad table index";
      Call_indirect ti
  | 0x1a -> Drop
  | 0x1b -> Select
  | 0x20 -> Local_get (u32 s)
  | 0x21 -> Local_set (u32 s)
  | 0x22 -> Local_tee (u32 s)
  | 0x23 -> Global_get (u32 s)
  | 0x24 -> Global_set (u32 s)
  | 0x28 -> Load (loadop Types.I32 None s)
  | 0x29 -> Load (loadop Types.I64 None s)
  | 0x2a -> Load (loadop Types.F32 None s)
  | 0x2b -> Load (loadop Types.F64 None s)
  | 0x2c -> Load (loadop Types.I32 (Some (Pack8, SX)) s)
  | 0x2d -> Load (loadop Types.I32 (Some (Pack8, ZX)) s)
  | 0x2e -> Load (loadop Types.I32 (Some (Pack16, SX)) s)
  | 0x2f -> Load (loadop Types.I32 (Some (Pack16, ZX)) s)
  | 0x30 -> Load (loadop Types.I64 (Some (Pack8, SX)) s)
  | 0x31 -> Load (loadop Types.I64 (Some (Pack8, ZX)) s)
  | 0x32 -> Load (loadop Types.I64 (Some (Pack16, SX)) s)
  | 0x33 -> Load (loadop Types.I64 (Some (Pack16, ZX)) s)
  | 0x34 -> Load (loadop Types.I64 (Some (Pack32, SX)) s)
  | 0x35 -> Load (loadop Types.I64 (Some (Pack32, ZX)) s)
  | 0x36 -> Store (storeop Types.I32 None s)
  | 0x37 -> Store (storeop Types.I64 None s)
  | 0x38 -> Store (storeop Types.F32 None s)
  | 0x39 -> Store (storeop Types.F64 None s)
  | 0x3a -> Store (storeop Types.I32 (Some Pack8) s)
  | 0x3b -> Store (storeop Types.I32 (Some Pack16) s)
  | 0x3c -> Store (storeop Types.I64 (Some Pack8) s)
  | 0x3d -> Store (storeop Types.I64 (Some Pack16) s)
  | 0x3e -> Store (storeop Types.I64 (Some Pack32) s)
  | 0x3f ->
      ignore (byte s);
      Memory_size
  | 0x40 ->
      ignore (byte s);
      Memory_grow
  | 0x41 -> Const (Values.I32 (s32 s))
  | 0x42 -> Const (Values.I64 (s64 s))
  | 0x43 -> Const (Values.F32 (f32 s))
  | 0x44 -> Const (Values.F64 (f64 s))
  | 0x45 -> Eqz Types.I32
  | 0x50 -> Eqz Types.I64
  | b when b >= 0x46 && b <= 0x4f ->
      Int_compare (Types.I32, int_relop_of (b - 0x46))
  | b when b >= 0x51 && b <= 0x5a ->
      Int_compare (Types.I64, int_relop_of (b - 0x51))
  | b when b >= 0x5b && b <= 0x60 ->
      Float_compare (Types.F32, float_relop_of (b - 0x5b))
  | b when b >= 0x61 && b <= 0x66 ->
      Float_compare (Types.F64, float_relop_of (b - 0x61))
  | b when b >= 0x67 && b <= 0x69 -> Int_unary (Types.I32, int_unop_of (b - 0x67))
  | b when b >= 0x6a && b <= 0x78 ->
      Int_binary (Types.I32, int_binop_of (b - 0x6a))
  | b when b >= 0x79 && b <= 0x7b -> Int_unary (Types.I64, int_unop_of (b - 0x79))
  | b when b >= 0x7c && b <= 0x8a ->
      Int_binary (Types.I64, int_binop_of (b - 0x7c))
  | b when b >= 0x8b && b <= 0x91 ->
      Float_unary (Types.F32, float_unop_of (b - 0x8b))
  | b when b >= 0x92 && b <= 0x98 ->
      Float_binary (Types.F32, float_binop_of (b - 0x92))
  | b when b >= 0x99 && b <= 0x9f ->
      Float_unary (Types.F64, float_unop_of (b - 0x99))
  | b when b >= 0xa0 && b <= 0xa6 ->
      Float_binary (Types.F64, float_binop_of (b - 0xa0))
  | b when b >= 0xa7 && b <= 0xbf -> Convert (cvtop_of b)
  | b -> error s.pos "unknown opcode 0x%02x" b

and int_relop_of = function
  | 0 -> Ast.Eq | 1 -> Ast.Ne | 2 -> Ast.Lt_s | 3 -> Ast.Lt_u
  | 4 -> Ast.Gt_s | 5 -> Ast.Gt_u | 6 -> Ast.Le_s | 7 -> Ast.Le_u
  | 8 -> Ast.Ge_s | 9 -> Ast.Ge_u
  | _ -> assert false

and float_relop_of = function
  | 0 -> Ast.Feq | 1 -> Ast.Fne | 2 -> Ast.Flt | 3 -> Ast.Fgt
  | 4 -> Ast.Fle | 5 -> Ast.Fge
  | _ -> assert false

and int_unop_of = function
  | 0 -> Ast.Clz | 1 -> Ast.Ctz | 2 -> Ast.Popcnt | _ -> assert false

and int_binop_of = function
  | 0 -> Ast.Add | 1 -> Ast.Sub | 2 -> Ast.Mul
  | 3 -> Ast.Div_s | 4 -> Ast.Div_u | 5 -> Ast.Rem_s | 6 -> Ast.Rem_u
  | 7 -> Ast.And | 8 -> Ast.Or | 9 -> Ast.Xor
  | 10 -> Ast.Shl | 11 -> Ast.Shr_s | 12 -> Ast.Shr_u
  | 13 -> Ast.Rotl | 14 -> Ast.Rotr
  | _ -> assert false

and float_unop_of = function
  | 0 -> Ast.Fabs | 1 -> Ast.Fneg | 2 -> Ast.Fceil | 3 -> Ast.Ffloor
  | 4 -> Ast.Ftrunc | 5 -> Ast.Fnearest | 6 -> Ast.Fsqrt
  | _ -> assert false

and float_binop_of = function
  | 0 -> Ast.Fadd | 1 -> Ast.Fsub | 2 -> Ast.Fmul | 3 -> Ast.Fdiv
  | 4 -> Ast.Fmin | 5 -> Ast.Fmax | 6 -> Ast.Fcopysign
  | _ -> assert false

and cvtop_of = function
  | 0xa7 -> Ast.I32_wrap_i64
  | 0xa8 -> Ast.I32_trunc_f32_s
  | 0xa9 -> Ast.I32_trunc_f32_u
  | 0xaa -> Ast.I32_trunc_f64_s
  | 0xab -> Ast.I32_trunc_f64_u
  | 0xac -> Ast.I64_extend_i32_s
  | 0xad -> Ast.I64_extend_i32_u
  | 0xae -> Ast.I64_trunc_f32_s
  | 0xaf -> Ast.I64_trunc_f32_u
  | 0xb0 -> Ast.I64_trunc_f64_s
  | 0xb1 -> Ast.I64_trunc_f64_u
  | 0xb2 -> Ast.F32_convert_i32_s
  | 0xb3 -> Ast.F32_convert_i32_u
  | 0xb4 -> Ast.F32_convert_i64_s
  | 0xb5 -> Ast.F32_convert_i64_u
  | 0xb6 -> Ast.F32_demote_f64
  | 0xb7 -> Ast.F64_convert_i32_s
  | 0xb8 -> Ast.F64_convert_i32_u
  | 0xb9 -> Ast.F64_convert_i64_s
  | 0xba -> Ast.F64_convert_i64_u
  | 0xbb -> Ast.F64_promote_f32
  | 0xbc -> Ast.I32_reinterpret_f32
  | 0xbd -> Ast.I64_reinterpret_f64
  | 0xbe -> Ast.F32_reinterpret_i32
  | 0xbf -> Ast.F64_reinterpret_i64
  | _ -> assert false

let expr s =
  let body, term = instr_seq s in
  if term <> 0x0b then error s.pos "expr: expected end";
  body

let import s : Ast.import =
  let imp_module = name s in
  let imp_name = name s in
  let idesc =
    match byte s with
    | 0x00 -> Ast.Func_import (u32 s)
    | 0x01 ->
        (match byte s with
         | 0x70 -> ()
         | b -> error s.pos "bad elemtype 0x%02x" b);
        Ast.Table_import { Types.tbl_limits = limits s }
    | 0x02 -> Ast.Memory_import { Types.mem_limits = limits s }
    | 0x03 -> Ast.Global_import (global_type s)
    | b -> error s.pos "bad import kind 0x%02x" b
  in
  { Ast.imp_module; imp_name; idesc }

let export s : Ast.export =
  let ename = name s in
  let edesc =
    match byte s with
    | 0x00 -> Ast.Func_export (u32 s)
    | 0x01 -> Ast.Table_export (u32 s)
    | 0x02 -> Ast.Memory_export (u32 s)
    | 0x03 -> Ast.Global_export (u32 s)
    | b -> error s.pos "bad export kind 0x%02x" b
  in
  { Ast.ename; edesc }

type code_entry = { ce_locals : Types.value_type list; ce_body : Ast.instr list }

let code s : code_entry =
  let size = u32 s in
  let endp = s.pos + size in
  let runs = vec (fun s ->
      let n = u32 s in
      let t = value_type s in
      (n, t)) s
  in
  let ce_locals =
    List.concat_map (fun (n, t) -> List.init n (fun _ -> t)) runs
  in
  let ce_body = expr s in
  if s.pos <> endp then error s.pos "code entry size mismatch";
  { ce_locals; ce_body }

(** Parse the custom "name" section's function-name subsection. *)
let parse_name_section payload : (int * string) list =
  let s = of_string payload in
  let rec subsections acc =
    if eos s then acc
    else begin
      let id = byte s in
      let size = u32 s in
      let endp = s.pos + size in
      let acc =
        if id = 1 then
          let n = u32 s in
          let entries =
            List.init n (fun _ ->
                let idx = u32 s in
                let nm = name s in
                (idx, nm))
          in
          acc @ entries
        else begin
          s.pos <- endp;
          acc
        end
      in
      s.pos <- endp;
      subsections acc
    end
  in
  subsections []

(** Decode a complete binary module. *)
let decode (bin : string) : Ast.module_ =
  let s = of_string bin in
  if get_string s 4 <> "\x00asm" then error 0 "bad magic";
  if get_string s 4 <> "\x01\x00\x00\x00" then error 4 "bad version";
  let types = ref [||] in
  let imports = ref [] in
  let func_types = ref [] in
  let tables = ref [] in
  let memories = ref [] in
  let globals = ref [||] in
  let exports = ref [] in
  let start = ref None in
  let elems = ref [] in
  let codes = ref [] in
  let datas = ref [] in
  let fnames = ref [] in
  while not (eos s) do
    let id = byte s in
    let size = u32 s in
    let endp = s.pos + size in
    (match id with
     | 0 ->
         let sec_name = name s in
         let payload = get_string s (endp - s.pos) in
         if sec_name = "name" then fnames := parse_name_section payload
     | 1 -> types := Array.of_list (vec func_type s)
     | 2 -> imports := vec import s
     | 3 -> func_types := vec u32 s
     | 4 ->
         tables :=
           vec
             (fun s ->
               (match byte s with
                | 0x70 -> ()
                | b -> error s.pos "bad elemtype 0x%02x" b);
               { Types.tbl_limits = limits s })
             s
     | 5 -> memories := vec (fun s -> { Types.mem_limits = limits s }) s
     | 6 ->
         globals :=
           Array.of_list
             (vec
                (fun s ->
                  let gtype = global_type s in
                  let ginit = expr s in
                  { Ast.gtype; ginit })
                s)
     | 7 -> exports := vec export s
     | 8 -> start := Some (u32 s)
     | 9 ->
         elems :=
           vec
             (fun s ->
               let tbl = u32 s in
               if tbl <> 0 then error s.pos "bad elem table index";
               let e_offset = expr s in
               let e_init = vec u32 s in
               { Ast.e_offset; e_init })
             s
     | 10 -> codes := vec code s
     | 11 ->
         datas :=
           vec
             (fun s ->
               let mem = u32 s in
               if mem <> 0 then error s.pos "bad data memory index";
               let d_offset = expr s in
               let n = u32 s in
               let d_init = get_string s n in
               { Ast.d_offset; d_init })
             s
     | _ -> error s.pos "unknown section id %d" id);
    if s.pos <> endp then error s.pos "section %d size mismatch" id
  done;
  if List.length !func_types <> List.length !codes then
    error s.pos "function/code section mismatch";
  let n_imports =
    List.length
      (List.filter
         (fun (i : Ast.import) ->
           match i.idesc with Ast.Func_import _ -> true | _ -> false)
         !imports)
  in
  let funcs =
    Array.of_list
      (List.mapi
         (fun i (ftype, (ce : code_entry)) ->
           let abs_idx = n_imports + i in
           let fname = List.assoc_opt abs_idx !fnames in
           { Ast.ftype; locals = ce.ce_locals; body = ce.ce_body; fname })
         (List.combine !func_types !codes))
  in
  {
    Ast.types = !types;
    imports = !imports;
    funcs;
    tables = !tables;
    memories = !memories;
    globals = !globals;
    exports = !exports;
    start = !start;
    elems = !elems;
    datas = !datas;
  }
