(** Bit-blasting: translate bitvector expressions to CNF (Tseitin
    encoding) over the {!Sat} solver.  Expressions become arrays of SAT
    literals, least-significant bit first. *)

type ctx = {
  sat : Sat.t;
  var_bits : (int, int array) Hashtbl.t;  (** expression variable id -> literals *)
  cache : (int, int array) Hashtbl.t;  (** expression tag -> literals *)
  true_lit : int;  (** a literal pinned true *)
}

val create : unit -> ctx

val blast : ctx -> Expr.t -> int array
(** Literals of an expression (cached structurally). *)

val assert_true : ctx -> Expr.t -> unit
(** Assert a width-1 expression. *)

val model_of_var : ctx -> Expr.var -> int64
(** Extract a variable's value from the SAT model (after a [Sat] answer);
    unconstrained variables yield 0. *)
