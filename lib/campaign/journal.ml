(** Crash-safe append-only journal of completed campaign targets.

    Four line formats share the file, all tab-separated with fixed field
    order:

    {v
    v1: wasai-journal-v1 <name> <flags> branches= rounds= seeds=
          adaptive= tx= sat= imprecise= elapsed=                (11 fields)
    v2: v1 + solver=q:N,b:N,u:N,h:N,m:N                         (12 fields)
    v3: wasai-journal-v3 <11 v1 fields> solver= shard=i/N seed=S
          budget=N exploits=<recs|->                            (16 fields)
    v4: v3 with magic wasai-journal-v4 and a sixth solver counter
          solver=q:N,b:N,u:N,h:N,m:N,fb:N                       (16 fields)
    v}

    where [<flags>] is [FakeEOS=0,FakeNotif=1,...] covering exactly
    {!Core.Scanner.legacy_flags} in order, followed by the fired subset
    of {!Core.Scanner.extension_flags} in canonical order (each as
    [Name=1]; quiet extension flags are omitted).  That split keeps every
    line written for a contract with no extension-class findings
    byte-identical to pre-extension builds, while new classes still
    round-trip strictly — an extension flag that is out of order,
    duplicated, unknown, or carries any verdict other than [1] rejects
    the line.  The v3 extension stamps each
    entry with its campaign provenance — the shard slice, the engine RNG
    root seed and the round budget — so a merge can validate that input
    journals came from one consistent fleet configuration, and persists
    the exploit payloads behind every positive verdict ([;]-separated
    [FLAG@channel@account@action@auth@hex] records, [-] when none) so a
    resumed or merged report replays evidence instead of only counting
    verdicts.  The v4 extension appends the engine's final adaptively
    retuned solver conflict budget as the [fb] counter of the [solver=]
    field (the field count stays 16, which is why the magic changes).

    Writers emit v4 whenever the entry carries a stamp (campaign runs
    always stamp) and legacy v2 otherwise; the parser accepts all four
    versions, reading absent counters as zero and absent stamps/exploits
    as none, so old journals still resume.  Parsing is otherwise strict:
    wrong magic, wrong field count, a [fb] counter on a v3 line or a
    missing one on a v4 line, unknown keys, out-of-order flags,
    duplicate exploit flags or unparseable numbers all reject the line
    (so a line torn by a crash is reported, not skipped). *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver
module Name = Wasai_eosio.Name
module Corpus = Wasai_corpus.Corpus
module Wasabi = Wasai_wasabi

(** Campaign provenance of an entry: which shard produced it, under which
    engine configuration.  Merge validation keys on all three fields. *)
type stamp = {
  js_shard : Shard.t;
  js_seed : int64;  (** engine [cfg_rng_seed] *)
  js_rounds : int;  (** engine [cfg_rounds] budget *)
}

type entry = {
  je_name : string;
  je_flags : (Core.Scanner.flag * bool) list;
  je_branches : int;
  je_rounds : int;
  je_seeds_total : int;
  je_adaptive_seeds : int;
  je_transactions : int;
  je_solver_sat : int;
  je_imprecise : int;
  je_elapsed : float;
  je_solver : Solver.stats;
  je_final_budget : int;
      (** the engine's final adaptive solver budget (0 on pre-v4 lines) *)
  je_stamp : stamp option;
  je_exploits : (Core.Scanner.flag * Core.Scanner.evidence) list;
}

let magic_v1 = "wasai-journal-v1"
let magic_v3 = "wasai-journal-v3"
let magic_v4 = "wasai-journal-v4"
let magic_v5 = "wasai-journal-v5"
let magic_hdr = "wasai-journal-hdr"

(** One slice's durable result: the v5 line format.  A sliced campaign
    journals each completed slice as a fragment line the moment it
    finishes (so a crash loses at most in-flight slices), then appends
    the standard v4 entry once the whole slice set has merged — the
    final line is byte-identical to the one an unsliced run would have
    written.  [jf_stamp.js_rounds] carries the {e full} per-target
    budget (not the slice's share): that is what merge-time cell
    reconstruction and fleet-consistency validation key on. *)
type fragment = {
  jf_name : string;
  jf_stamp : stamp;
  jf_frag : Core.Engine.Slice.fragment;
}

(** File-level provenance, stamped once as the first line of a fresh
    journal: the execution backend the fleet ran under.  Verdicts are
    backend-invariant by contract, but a resume mixing tiers would make
    that contract unauditable — so, like the per-entry (seed, budget)
    stamp, the header makes the configuration explicit and lets resume
    refuse a mismatch.  Entry lines are unchanged: a v4 line is
    byte-identical whichever backend produced it.

    [jh_telemetry] records whether the campaign ran with span profiling
    enabled.  Telemetry cannot change a verdict (that is its whole
    contract), but a resume silently flipping it would skew the
    per-stage breakdown the final report prints — so resumes must agree.
    The stamp is strictly additive: with telemetry off the header line
    is byte-identical to the two-field form every earlier build wrote,
    and the parser accepts both forms. *)
type header = {
  jh_backend : Wasai_core.Exec_backend.choice;
  jh_telemetry : bool;
}

let line_of_header (h : header) =
  Printf.sprintf "%s\tbackend=%s%s" magic_hdr
    (Core.Exec_backend.to_string h.jh_backend)
    (if h.jh_telemetry then "\ttelemetry=on" else "")

let of_outcome ~name ~elapsed ?stamp (o : Core.Engine.outcome) =
  {
    je_name = name;
    (* Normalise to the canonical flag order so journal lines and report
       text never depend on scanner-internal ordering. *)
    je_flags =
      List.map
        (fun f ->
          (f, match List.assoc_opt f o.Core.Engine.out_flags with
              | Some b -> b
              | None -> false))
        Core.Scanner.all_flags;
    je_branches = o.Core.Engine.out_branches;
    je_rounds = o.Core.Engine.out_rounds;
    je_seeds_total = o.Core.Engine.out_seeds_total;
    je_adaptive_seeds = o.Core.Engine.out_adaptive_seeds;
    je_transactions = o.Core.Engine.out_transactions;
    je_solver_sat = o.Core.Engine.out_solver_sat;
    je_imprecise = o.Core.Engine.out_imprecise;
    je_elapsed = elapsed;
    je_solver = o.Core.Engine.out_solver;
    je_final_budget = o.Core.Engine.out_final_budget;
    je_stamp = stamp;
    je_exploits =
      (* Keep the canonical flag order here too. *)
      List.filter_map
        (fun f ->
          Option.map (fun e -> (f, e))
            (List.assoc_opt f o.Core.Engine.out_exploits))
        Core.Scanner.all_flags;
  }

let exploits_field (exploits : (Core.Scanner.flag * Core.Scanner.evidence) list)
    =
  match exploits with
  | [] -> "-"
  | _ ->
      String.concat ";"
        (List.map
           (fun (f, e) ->
             Core.Scanner.string_of_flag f ^ "@"
             ^ Core.Scanner.evidence_to_wire e)
           exploits)

(* Legacy flags are always written in their fixed order; extension flags
   appear only when fired.  Lookups go through the canonical flag lists
   (not the record's order) so the field never depends on how the record
   was built.  Shared by entry (v1-v4) and fragment (v5) lines. *)
let flags_field (value_flags : (Core.Scanner.flag * bool) list) =
  let value f =
    match List.assoc_opt f value_flags with Some b -> b | None -> false
  in
  let legacy =
    List.map
      (fun f ->
        Printf.sprintf "%s=%d" (Core.Scanner.string_of_flag f)
          (if value f then 1 else 0))
      Core.Scanner.legacy_flags
  in
  let fired_ext =
    List.filter_map
      (fun f ->
        if value f then Some (Core.Scanner.string_of_flag f ^ "=1") else None)
      Core.Scanner.extension_flags
  in
  String.concat "," (legacy @ fired_ext)

let line_of_entry (e : entry) =
  let flags = flags_field e.je_flags in
  let common ~with_budget =
    [
      e.je_name; flags;
      Printf.sprintf "branches=%d" e.je_branches;
      Printf.sprintf "rounds=%d" e.je_rounds;
      Printf.sprintf "seeds=%d" e.je_seeds_total;
      Printf.sprintf "adaptive=%d" e.je_adaptive_seeds;
      Printf.sprintf "tx=%d" e.je_transactions;
      Printf.sprintf "sat=%d" e.je_solver_sat;
      Printf.sprintf "imprecise=%d" e.je_imprecise;
      Printf.sprintf "elapsed=%.6f" e.je_elapsed;
      Printf.sprintf "solver=q:%d,b:%d,u:%d,h:%d,m:%d%s"
        e.je_solver.Solver.st_quick e.je_solver.Solver.st_blasted
        e.je_solver.Solver.st_unknown e.je_solver.Solver.st_cache_hits
        e.je_solver.Solver.st_cache_misses
        (if with_budget then Printf.sprintf ",fb:%d" e.je_final_budget else "");
    ]
  in
  match e.je_stamp with
  | None ->
      (* Unstamped entries (hand-built, or parsed from an old journal)
         keep the legacy v2 shape; exploits and the final-budget counter
         need a stamped v4 line. *)
      String.concat "\t" (magic_v1 :: common ~with_budget:false)
  | Some st ->
      String.concat "\t"
        ((magic_v4 :: common ~with_budget:true)
        @ [
            Printf.sprintf "shard=%s" (Shard.to_string st.js_shard);
            Printf.sprintf "seed=%Ld" st.js_seed;
            Printf.sprintf "budget=%d" st.js_rounds;
            "exploits=" ^ exploits_field e.je_exploits;
          ])

(* The v5 interesting-seed field: [-] for none, else [;]-separated
   [round@action@sig@new@cover@args] records.  The sub-separators are
   safe by construction: action names use the EOSIO alphabet, the cover
   list uses [,]/[:], and the corpus args wire is limited to hex, name
   characters, [,] and [:] — none of them can contain [@] or [;]. *)
let interesting_field (xs : Core.Engine.interesting list) =
  match xs with
  | [] -> "-"
  | _ ->
      String.concat ";"
        (List.map
           (fun (i : Core.Engine.interesting) ->
             Printf.sprintf "%d@%s@%016Lx@%d@%s@%s" i.Core.Engine.is_round
               (Name.to_string i.Core.Engine.is_action)
               i.Core.Engine.is_signature i.Core.Engine.is_new_edges
               (String.concat ","
                  (List.map
                     (fun (site, dir) -> Printf.sprintf "%d:%ld" site dir)
                     i.Core.Engine.is_cover))
               (Corpus.wire_of_args i.Core.Engine.is_args))
           xs)

let trunc_field (count : int) (first : (int * Name.t) option) =
  match first with
  | None -> Printf.sprintf "trunc=%d" count
  | Some (tx, action) ->
      Printf.sprintf "trunc=%d:%d:%s" count tx (Name.to_string action)

let line_of_fragment (f : fragment) =
  let fr = f.jf_frag in
  let st = f.jf_stamp in
  String.concat "\t"
    [
      magic_v5; f.jf_name;
      Printf.sprintf "slice=%d/%d" fr.Core.Engine.Slice.fg_slice
        fr.Core.Engine.Slice.fg_count;
      flags_field fr.Core.Engine.Slice.fg_flags;
      Printf.sprintf "branches=%d"
        (List.length fr.Core.Engine.Slice.fg_edges);
      Printf.sprintf "rounds=%d" fr.Core.Engine.Slice.fg_rounds;
      Printf.sprintf "seeds=%d" fr.Core.Engine.Slice.fg_seeds_total;
      Printf.sprintf "adaptive=%d" fr.Core.Engine.Slice.fg_adaptive_seeds;
      Printf.sprintf "tx=%d" fr.Core.Engine.Slice.fg_transactions;
      Printf.sprintf "sat=%d" fr.Core.Engine.Slice.fg_solver_sat;
      Printf.sprintf "imprecise=%d" fr.Core.Engine.Slice.fg_imprecise;
      Printf.sprintf "elapsed=%.6f" fr.Core.Engine.Slice.fg_elapsed;
      Printf.sprintf "solver=q:%d,b:%d,u:%d,h:%d,m:%d,fb:%d"
        fr.Core.Engine.Slice.fg_solver.Solver.st_quick
        fr.Core.Engine.Slice.fg_solver.Solver.st_blasted
        fr.Core.Engine.Slice.fg_solver.Solver.st_unknown
        fr.Core.Engine.Slice.fg_solver.Solver.st_cache_hits
        fr.Core.Engine.Slice.fg_solver.Solver.st_cache_misses
        fr.Core.Engine.Slice.fg_final_budget;
      Printf.sprintf "shard=%s" (Shard.to_string st.js_shard);
      Printf.sprintf "seed=%Ld" st.js_seed;
      Printf.sprintf "budget=%d" st.js_rounds;
      "exploits=" ^ exploits_field fr.Core.Engine.Slice.fg_exploits;
      "interesting=" ^ interesting_field fr.Core.Engine.Slice.fg_interesting;
      Printf.sprintf "vround=%d" fr.Core.Engine.Slice.fg_verdict_round;
      trunc_field fr.Core.Engine.Slice.fg_truncated
        fr.Core.Engine.Slice.fg_first_truncated;
    ]

(* ------------------------------------------------------------------ *)
(* Strict parsing                                                      *)
(* ------------------------------------------------------------------ *)

let keyed key conv field =
  match String.index_opt field '=' with
  | Some i when String.sub field 0 i = key -> (
      let v = String.sub field (i + 1) (String.length field - i - 1) in
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S: bad value %S" key v))
  | _ -> Error (Printf.sprintf "expected field %S, got %S" key field)

let header_of_line (line : string) : (header, string) result =
  let backend_of field k =
    match keyed "backend" Option.some field with
    | Error e -> Error e
    | Ok v -> (
        match Core.Exec_backend.of_string v with
        | Ok b -> k b
        | Error e -> Error e)
  in
  match String.split_on_char '\t' line with
  | [ m; backend ] when m = magic_hdr ->
      backend_of backend (fun jh_backend ->
          Ok { jh_backend; jh_telemetry = false })
  | [ m; backend; telemetry ] when m = magic_hdr ->
      backend_of backend (fun jh_backend ->
          match keyed "telemetry" Option.some telemetry with
          | Error e -> Error e
          | Ok "on" -> Ok { jh_backend; jh_telemetry = true }
          | Ok v -> Error (Printf.sprintf "field \"telemetry\": bad value %S" v))
  | m :: _ when m = magic_hdr ->
      Error "header line: expected 2 or 3 tab-separated fields"
  | _ -> Error (Printf.sprintf "bad magic %S" magic_hdr)

let parse_flags (field : string) =
  let ( let* ) = Result.bind in
  let parts = String.split_on_char ',' field in
  let legacy = Core.Scanner.legacy_flags in
  if List.length parts < List.length legacy then
    Error
      (Printf.sprintf "flag field %S: expected at least %d flags" field
         (List.length legacy))
  else
    (* The first five parts are the legacy flags, fixed order, 0 or 1. *)
    let rec take_legacy acc parts flags =
      match (parts, flags) with
      | parts, [] -> Ok (List.rev acc, parts)
      | p :: parts, f :: flags -> (
          let name = Core.Scanner.string_of_flag f in
          match keyed name int_of_string_opt p with
          | Ok 0 -> take_legacy ((f, false) :: acc) parts flags
          | Ok 1 -> take_legacy ((f, true) :: acc) parts flags
          | Ok n -> Error (Printf.sprintf "flag %s: bad verdict %d" name n)
          | Error e -> Error e)
      | [], _ :: _ -> assert false (* length checked above *)
    in
    let* legacy_verdicts, rest = take_legacy [] parts legacy in
    (* The remaining parts must be a subsequence of the extension flags
       in canonical order, each fired ([Name=1]): writers omit quiet
       extension flags, so an explicit [=0], a duplicate, an unknown
       name or an out-of-order flag is a corrupt line. *)
    let rec take_ext fired parts flags =
      match parts with
      | [] -> Ok fired
      | p :: parts' -> (
          match flags with
          | [] ->
              Error
                (Printf.sprintf
                   "flag field %S: unknown, duplicate or out-of-order flag %S"
                   field p)
          | f :: flags' -> (
              let name = Core.Scanner.string_of_flag f in
              match keyed name int_of_string_opt p with
              | Ok 1 -> take_ext (f :: fired) parts' flags'
              | Ok n ->
                  Error
                    (Printf.sprintf
                       "flag %s: bad verdict %d (extension flags are only \
                        journaled when fired)"
                       name n)
              | Error _ ->
                  (* Not this canonical flag; try the next one. *)
                  take_ext fired parts flags'))
    in
    let* fired_ext = take_ext [] rest Core.Scanner.extension_flags in
    Ok
      (legacy_verdicts
      @ List.map
          (fun f -> (f, List.mem f fired_ext))
          Core.Scanner.extension_flags)

(* The v2 solver extension: [solver=q:N,b:N,u:N,h:N,m:N], parsed as
   strictly as every other field — fixed counter order, no unknown keys.
   v4 lines append a sixth [fb:N] counter (the final adaptive budget);
   [with_budget] selects which shape is the only accepted one. *)
let parse_solver ~with_budget (field : string) :
    (Solver.stats * int, string) result =
  let ( let* ) = Result.bind in
  let* v = keyed "solver" Option.some field in
  let counter key part =
    match String.index_opt part ':' with
    | Some i when String.sub part 0 i = key ->
        int_of_string_opt (String.sub part (i + 1) (String.length part - i - 1))
    | _ -> None
  in
  let stats q b u h m =
    match
      (counter "q" q, counter "b" b, counter "u" u, counter "h" h,
       counter "m" m)
    with
    | ( Some st_quick, Some st_blasted, Some st_unknown, Some st_cache_hits,
        Some st_cache_misses ) ->
        Ok
          {
            Solver.st_quick; st_blasted; st_unknown; st_cache_hits;
            st_cache_misses;
          }
    | _ -> Error (Printf.sprintf "solver field %S: bad counters" v)
  in
  match (String.split_on_char ',' v, with_budget) with
  | [ q; b; u; h; m ], false ->
      let* st = stats q b u h m in
      Ok (st, 0)
  | [ q; b; u; h; m; fb ], true -> (
      let* st = stats q b u h m in
      match counter "fb" fb with
      | Some budget -> Ok (st, budget)
      | None -> Error (Printf.sprintf "solver field %S: bad fb counter" v))
  | parts, _ ->
      Error
        (Printf.sprintf "solver field %S: expected %d counters, got %d" v
           (if with_budget then 6 else 5)
           (List.length parts))

(* The v3 provenance stamp, three consecutive fields. *)
let parse_stamp shard seed budget : (stamp, string) result =
  let ( let* ) = Result.bind in
  let* js_shard =
    let* s = keyed "shard" Option.some shard in
    Shard.of_string s
  in
  let* js_seed = keyed "seed" Int64.of_string_opt seed in
  let* js_rounds = keyed "budget" int_of_string_opt budget in
  Ok { js_shard; js_seed; js_rounds }

(* The v3 exploit list: [-] for none, else [;]-separated
   [FLAG@<evidence wire>] records with distinct flags. *)
let parse_exploits (field : string) :
    ((Core.Scanner.flag * Core.Scanner.evidence) list, string) result =
  let ( let* ) = Result.bind in
  let* v = keyed "exploits" Option.some field in
  if v = "-" then Ok []
  else
    let parse_one rec_ =
      match String.index_opt rec_ '@' with
      | None -> Error (Printf.sprintf "exploit %S: missing flag" rec_)
      | Some i -> (
          let flag_s = String.sub rec_ 0 i in
          let rest = String.sub rec_ (i + 1) (String.length rec_ - i - 1) in
          match Core.Scanner.flag_of_string flag_s with
          | None -> Error (Printf.sprintf "exploit %S: unknown flag" rec_)
          | Some f ->
              Result.map (fun e -> (f, e)) (Core.Scanner.evidence_of_wire rest))
    in
    let* exploits =
      List.fold_left
        (fun acc rec_ ->
          let* acc = acc in
          let* x = parse_one rec_ in
          Ok (x :: acc))
        (Ok [])
        (String.split_on_char ';' v)
      |> Result.map List.rev
    in
    let flags = List.map fst exploits in
    if List.length (List.sort_uniq compare flags) <> List.length flags then
      Error (Printf.sprintf "exploits field %S: duplicate flag" v)
    else Ok exploits

let entry_of_line (line : string) : (entry, string) result =
  let ( let* ) = Result.bind in
  let parse ~expect_magic ~with_budget m name flags branches rounds seeds
      adaptive tx sat imprecise elapsed solver stamp exploits =
    if m <> expect_magic then Error (Printf.sprintf "bad magic %S" m)
    else if name = "" then Error "empty target name"
    else
      let* je_flags = parse_flags flags in
      let* je_branches = keyed "branches" int_of_string_opt branches in
      let* je_rounds = keyed "rounds" int_of_string_opt rounds in
      let* je_seeds_total = keyed "seeds" int_of_string_opt seeds in
      let* je_adaptive_seeds = keyed "adaptive" int_of_string_opt adaptive in
      let* je_transactions = keyed "tx" int_of_string_opt tx in
      let* je_solver_sat = keyed "sat" int_of_string_opt sat in
      let* je_imprecise = keyed "imprecise" int_of_string_opt imprecise in
      let* je_elapsed = keyed "elapsed" float_of_string_opt elapsed in
      let* je_solver, je_final_budget =
        match solver with
        (* v1 line: the run predates solver accounting — counters zero. *)
        | None -> Ok (Solver.stats_zero, 0)
        | Some s -> parse_solver ~with_budget s
      in
      let* je_stamp =
        match stamp with
        | None -> Ok None
        | Some (shard, seed, budget) ->
            Result.map Option.some (parse_stamp shard seed budget)
      in
      let* je_exploits =
        match exploits with None -> Ok [] | Some e -> parse_exploits e
      in
      Ok
        {
          je_name = name; je_flags; je_branches; je_rounds; je_seeds_total;
          je_adaptive_seeds; je_transactions; je_solver_sat; je_imprecise;
          je_elapsed; je_solver; je_final_budget; je_stamp; je_exploits;
        }
  in
  match String.split_on_char '\t' line with
  | [ m; name; flags; branches; rounds; seeds; adaptive; tx; sat; imprecise;
      elapsed ] ->
      parse ~expect_magic:magic_v1 ~with_budget:false m name flags branches
        rounds seeds adaptive tx sat imprecise elapsed None None None
  | [ m; name; flags; branches; rounds; seeds; adaptive; tx; sat; imprecise;
      elapsed; solver ] ->
      parse ~expect_magic:magic_v1 ~with_budget:false m name flags branches
        rounds seeds adaptive tx sat imprecise elapsed (Some solver) None None
  | [ m; name; flags; branches; rounds; seeds; adaptive; tx; sat; imprecise;
      elapsed; solver; shard; seed; budget; exploits ] ->
      (* 16 fields is v3 or v4; the magic picks the solver-field shape
         (5 counters vs 6), and [parse] still insists the magic matches
         the shape that was picked. *)
      let expect_magic, with_budget =
        if m = magic_v4 then (magic_v4, true) else (magic_v3, false)
      in
      parse ~expect_magic ~with_budget m name flags branches rounds seeds
        adaptive tx sat imprecise elapsed (Some solver)
        (Some (shard, seed, budget))
        (Some exploits)
  | fields ->
      Error
        (Printf.sprintf "expected 11, 12 or 16 tab-separated fields, got %d"
           (List.length fields))

(* ------------------------------------------------------------------ *)
(* v5 fragment parsing                                                 *)
(* ------------------------------------------------------------------ *)

let parse_slice (field : string) : (int * int, string) result =
  let ( let* ) = Result.bind in
  let* v = keyed "slice" Option.some field in
  match String.index_opt v '/' with
  | Some i -> (
      let a = String.sub v 0 i
      and b = String.sub v (i + 1) (String.length v - i - 1) in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some i, Some k when k >= 1 && i >= 0 && i < k -> Ok (i, k)
      | _ ->
          Error
            (Printf.sprintf "slice field %S: want i/K with 0 <= i < K" v))
  | None -> Error (Printf.sprintf "slice field %S: want i/K" v)

let parse_eosio_name ~what (s : string) : (Name.t, string) result =
  match Name.of_string s with
  | n -> Ok n
  | exception Invalid_argument _ ->
      Error (Printf.sprintf "%s: bad EOSIO name %S" what s)

let parse_cover (s : string) : ((int * int32) list, string) result =
  let ( let* ) = Result.bind in
  let* cover =
    List.fold_left
      (fun acc part ->
        let* acc = acc in
        match String.index_opt part ':' with
        | Some i -> (
            let site = String.sub part 0 i
            and dir = String.sub part (i + 1) (String.length part - i - 1) in
            match (int_of_string_opt site, Int32.of_string_opt dir) with
            | Some site, Some dir when site >= 0 -> Ok ((site, dir) :: acc)
            | _ -> Error (Printf.sprintf "cover edge %S: want site:dir" part))
        | None -> Error (Printf.sprintf "cover edge %S: want site:dir" part))
      (Ok []) (String.split_on_char ',' s)
    |> Result.map List.rev
  in
  let rec ascending = function
    | a :: (b :: _ as rest) -> compare a b < 0 && ascending rest
    | _ -> true
  in
  if cover = [] then Error "empty cover"
  else if not (ascending cover) then
    Error (Printf.sprintf "cover %S: not sorted strictly ascending" s)
  else Ok cover

(* One [round@action@sig@new@cover@args] record; the signature must
   recompute from the cover, exactly as the corpus parser insists. *)
let parse_interesting_record (rec_ : string) :
    (Core.Engine.interesting, string) result =
  let ( let* ) = Result.bind in
  match String.split_on_char '@' rec_ with
  | [ round; action; sig_; new_; cover; args ] -> (
      match (int_of_string_opt round, int_of_string_opt new_) with
      | Some is_round, Some is_new_edges when is_round >= 0 && is_new_edges >= 1
        ->
          let* is_action =
            parse_eosio_name ~what:(Printf.sprintf "interesting %S" rec_)
              action
          in
          let* is_signature =
            if String.length sig_ = 16 then
              match Int64.of_string_opt ("0x" ^ sig_) with
              | Some s when Printf.sprintf "%016Lx" s = sig_ -> Ok s
              | _ ->
                  Error
                    (Printf.sprintf "interesting %S: bad signature" rec_)
            else
              Error
                (Printf.sprintf
                   "interesting %S: signature is not 16 hex digits" rec_)
          in
          let* is_cover = parse_cover cover in
          let* is_args =
            Result.map_error
              (fun e -> Printf.sprintf "interesting %S: %s" rec_ e)
              (Corpus.args_of_wire args)
          in
          if Wasabi.Trace.edge_signature is_cover <> is_signature then
            Error
              (Printf.sprintf
                 "interesting %S: signature does not match its cover" rec_)
          else if is_new_edges > List.length is_cover then
            Error
              (Printf.sprintf
                 "interesting %S: more new edges than cover edges" rec_)
          else
            Ok
              {
                Core.Engine.is_round; is_action; is_args; is_cover;
                is_signature; is_new_edges;
              }
      | _ ->
          Error
            (Printf.sprintf "interesting %S: bad round or new-edge count"
               rec_))
  | _ ->
      Error
        (Printf.sprintf
           "interesting %S: want round@action@sig@new@cover@args" rec_)

let parse_interesting (field : string) :
    (Core.Engine.interesting list, string) result =
  let ( let* ) = Result.bind in
  let* v = keyed "interesting" Option.some field in
  if v = "-" then Ok []
  else
    let* xs =
      List.fold_left
        (fun acc rec_ ->
          let* acc = acc in
          let* x = parse_interesting_record rec_ in
          Ok (x :: acc))
        (Ok [])
        (String.split_on_char ';' v)
      |> Result.map List.rev
    in
    let sigs = List.map (fun i -> i.Core.Engine.is_signature) xs in
    if List.length (List.sort_uniq compare sigs) <> List.length sigs then
      Error (Printf.sprintf "interesting field %S: duplicate signature" v)
    else Ok xs

let parse_trunc (field : string) :
    (int * (int * Name.t) option, string) result =
  let ( let* ) = Result.bind in
  let* v = keyed "trunc" Option.some field in
  match String.split_on_char ':' v with
  | [ n ] -> (
      match int_of_string_opt n with
      | Some 0 -> Ok (0, None)
      | Some _ ->
          Error
            (Printf.sprintf
               "trunc field %S: positive count needs its first witness" v)
      | None -> Error (Printf.sprintf "trunc field %S: bad count" v))
  | [ n; tx; action ] -> (
      match (int_of_string_opt n, int_of_string_opt tx) with
      | Some n, Some tx when n >= 1 && tx >= 1 ->
          let* action =
            parse_eosio_name ~what:(Printf.sprintf "trunc field %S" v) action
          in
          Ok (n, Some (tx, action))
      | _ -> Error (Printf.sprintf "trunc field %S: bad counts" v))
  | _ -> Error (Printf.sprintf "trunc field %S: want N or N:tx:action" v)

let fragment_of_line (line : string) : (fragment, string) result =
  let ( let* ) = Result.bind in
  match String.split_on_char '\t' line with
  | [ m; name; slice; flags; branches; rounds; seeds; adaptive; tx; sat;
      imprecise; elapsed; solver; shard; seed; budget; exploits; interesting;
      vround; trunc ]
    when m = magic_v5 ->
      if name = "" then Error "empty target name"
      else
        let* fg_slice, fg_count = parse_slice slice in
        let* fg_flags = parse_flags flags in
        let* branches = keyed "branches" int_of_string_opt branches in
        let* fg_rounds = keyed "rounds" int_of_string_opt rounds in
        let* fg_seeds_total = keyed "seeds" int_of_string_opt seeds in
        let* fg_adaptive_seeds = keyed "adaptive" int_of_string_opt adaptive in
        let* fg_transactions = keyed "tx" int_of_string_opt tx in
        let* fg_solver_sat = keyed "sat" int_of_string_opt sat in
        let* fg_imprecise = keyed "imprecise" int_of_string_opt imprecise in
        let* fg_elapsed = keyed "elapsed" float_of_string_opt elapsed in
        let* fg_solver, fg_final_budget =
          parse_solver ~with_budget:true solver
        in
        let* jf_stamp = parse_stamp shard seed budget in
        let* fg_exploits = parse_exploits exploits in
        let* fg_interesting = parse_interesting interesting in
        let* fg_verdict_round = keyed "vround" int_of_string_opt vround in
        let* fg_truncated, fg_first_truncated = parse_trunc trunc in
        if jf_stamp.js_rounds < 1 then
          Error "budget field: a sliced run needs a positive round budget"
        else if
          fg_count > Core.Engine.Slice.granularity ~rounds:jf_stamp.js_rounds
        then
          Error
            (Printf.sprintf
               "slice count %d exceeds the granularity %d of a %d-round \
                budget"
               fg_count
               (Core.Engine.Slice.granularity ~rounds:jf_stamp.js_rounds)
               jf_stamp.js_rounds)
        else if fg_verdict_round < 0 || fg_verdict_round > jf_stamp.js_rounds
        then Error (Printf.sprintf "vround %d outside the round budget"
                      fg_verdict_round)
        else if fg_rounds > jf_stamp.js_rounds then
          Error "rounds field exceeds the full budget"
        else
          let fg_edges =
            List.sort_uniq compare
              (List.concat_map
                 (fun (i : Core.Engine.interesting) -> i.Core.Engine.is_cover)
                 fg_interesting)
          in
          if List.length fg_edges <> branches then
            Error
              (Printf.sprintf
                 "branches=%d disagrees with the %d distinct edges of the \
                  interesting covers"
                 branches (List.length fg_edges))
          else
            Ok
              {
                jf_name = name;
                jf_stamp;
                jf_frag =
                  {
                    Core.Engine.Slice.fg_slice; fg_count; fg_flags;
                    fg_custom = []; fg_exploits; fg_edges; fg_rounds;
                    fg_seeds_total; fg_adaptive_seeds; fg_transactions;
                    fg_solver_sat; fg_imprecise; fg_solver; fg_final_budget;
                    fg_interesting; fg_verdict_round; fg_truncated;
                    fg_first_truncated; fg_timeline = []; fg_elapsed;
                  };
              }
  | m :: _ when m = magic_v5 ->
      Error "expected 20 tab-separated fields on a v5 fragment line"
  | _ -> Error (Printf.sprintf "bad magic %S" magic_v5)

exception Malformed of string

let has_prefix ~prefix line =
  String.length line >= String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

let load_full path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let bad line_no reason =
        raise
          (Malformed
             (Printf.sprintf
                "%s:%d: malformed journal line (%s); refusing to resume from \
                 a corrupt journal"
                path line_no reason))
      in
      (* Entry (v1-v4) and fragment (v5) lines interleave freely after
         the optional header; each list keeps file order. *)
      let parse_line line_no line (entries, frags) k =
        if has_prefix ~prefix:magic_hdr line then
          (* The header is only valid as line 1, where it was consumed
             below; anywhere else it is a torn or spliced file. *)
          bad line_no "header line after line 1"
        else if has_prefix ~prefix:(magic_v5 ^ "\t") line then
          match fragment_of_line line with
          | Ok f -> k (entries, f :: frags)
          | Error reason -> bad line_no reason
        else
          match entry_of_line line with
          | Ok e -> k (e :: entries, frags)
          | Error reason -> bad line_no reason
      in
      let rec go acc line_no =
        match input_line ic with
        | exception End_of_file ->
            let entries, frags = acc in
            (List.rev entries, List.rev frags)
        | line -> parse_line line_no line acc (fun acc -> go acc (line_no + 1))
      in
      match input_line ic with
      | exception End_of_file -> (None, [], [])
      | first when has_prefix ~prefix:magic_hdr first -> (
          match header_of_line first with
          | Ok h ->
              let entries, frags = go ([], []) 2 in
              (Some h, entries, frags)
          | Error reason -> bad 1 reason)
      | first ->
          parse_line 1 first ([], []) (fun acc ->
              let entries, frags = go acc 2 in
              (None, entries, frags)))

let load_with_header path =
  let header, entries, _frags = load_full path in
  (header, entries)

let load path =
  let _, entries, _ = load_full path in
  entries

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = { oc : out_channel; wlock : Mutex.t }

let open_writer ?header path =
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  (* A crash right after creating the journal must not lose the file
     itself: the fsync-per-line discipline below only covers contents,
     not the new directory entry. *)
  if fresh then Wasai_support.Fsutil.fsync_dir (Filename.dirname path);
  (* The header goes on fresh files only: appending one mid-file would
     corrupt an existing journal, and resume validates the existing
     header against the run's configuration before reaching here. *)
  (match header with
  | Some h when fresh ->
      output_string oc (line_of_header h);
      output_char oc '\n';
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc)
  | _ -> ());
  { oc; wlock = Mutex.create () }

let append_line w line =
  Mutex.protect w.wlock (fun () ->
      let t0 = Wasai_telemetry.Telemetry.start () in
      output_string w.oc line;
      output_char w.oc '\n';
      flush w.oc;
      (* The line must reach disk before the work counts as done:
         a resume must never skip work whose result a crash threw away. *)
      Unix.fsync (Unix.descr_of_out_channel w.oc);
      Wasai_telemetry.Telemetry.stop Wasai_telemetry.Telemetry.Journal_fsync t0)

let append w e = append_line w (line_of_entry e)
let append_fragment w f = append_line w (line_of_fragment f)

let close_writer w = Mutex.protect w.wlock (fun () -> close_out_noerr w.oc)
