(* Tests for the benchmark generator: contract families, the obfuscator,
   the verification injector, corpora and the mainnet population. *)

module Wasm = Wasai_wasm
module BG = Wasai_benchgen
open Wasai_eosio

let n = Name.of_string

(* Random spec generator for property tests. *)
let random_spec (rng : Wasai_support.Rand.t) : BG.Contracts.spec =
  let base = BG.Contracts.default_spec (n "victim") in
  {
    base with
    BG.Contracts.sp_fake_eos_guard = Wasai_support.Rand.bool rng;
    sp_eos_guard_style =
      (if Wasai_support.Rand.bool rng then BG.Contracts.Guard_assert
       else BG.Contracts.Guard_if_return);
    sp_fake_notif_guard = Wasai_support.Rand.bool rng;
    sp_auth_check = Wasai_support.Rand.bool rng;
    sp_blockinfo = Wasai_support.Rand.bool rng;
    sp_payout_inline = Wasai_support.Rand.bool rng;
    sp_has_payout = Wasai_support.Rand.bool rng;
    sp_db_gate = Wasai_support.Rand.bool rng;
    sp_multi_table = Wasai_support.Rand.bool rng;
    sp_admin_reveal = Wasai_support.Rand.bool rng;
    sp_dead_template = Wasai_support.Rand.bool rng;
    sp_min_bet =
      (if Wasai_support.Rand.bool rng then Some 100L else None);
    sp_memo_gate =
      (if Wasai_support.Rand.bool rng then Some "action:buy" else None);
    sp_checks = BG.Verification.random_checks rng ~depth:(Wasai_support.Rand.int rng 4);
    sp_milestones =
      BG.Verification.random_milestones rng ~depth:(Wasai_support.Rand.int rng 6);
    sp_dispatcher =
      (if Wasai_support.Rand.bool rng then BG.Contracts.Indirect
       else BG.Contracts.Direct);
    sp_log_notifications = Wasai_support.Rand.bool rng;
    sp_claim_loop = Wasai_support.Rand.bool rng;
    sp_double_payout = Wasai_support.Rand.bool rng;
    sp_fair_coin = Wasai_support.Rand.bool rng;
  }

(* Every random spec must build into a valid module that also survives a
   binary round-trip and obfuscation. *)
let qcheck_specs_build =
  QCheck.Test.make ~name:"random specs build valid modules" ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Wasai_support.Rand.create (Int64.of_int seed) in
      let spec = random_spec rng in
      let m, _ = BG.Contracts.build spec in
      Wasm.Validate.check_module m;
      let m' = Wasm.Decode.decode (Wasm.Encode.encode m) in
      Wasm.Validate.check_module m';
      let obf = BG.Obfuscate.obfuscate m in
      Wasm.Validate.check_module obf;
      true)

(* The WAT printer/parser round-trip preserves whole contracts, function
   body for function body. *)
let qcheck_wat_roundtrip =
  QCheck.Test.make ~name:"WAT print/parse roundtrip on contracts" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Wasai_support.Rand.create (Int64.of_int seed) in
      let spec = random_spec rng in
      let m, _ = BG.Contracts.build spec in
      let m = if seed mod 3 = 0 then BG.Obfuscate.obfuscate m else m in
      let m' = Wasm.Text.parse (Wasm.Wat.to_string m) in
      Array.length m'.Wasm.Ast.funcs = Array.length m.Wasm.Ast.funcs
      && Array.for_all2
           (fun (a : Wasm.Ast.func) (b : Wasm.Ast.func) ->
             a.Wasm.Ast.body = b.Wasm.Ast.body
             && a.Wasm.Ast.locals = b.Wasm.Ast.locals)
           m.Wasm.Ast.funcs m'.Wasm.Ast.funcs
      && m'.Wasm.Ast.exports = m.Wasm.Ast.exports
      && m'.Wasm.Ast.datas = m.Wasm.Ast.datas)

(* ------------------------------------------------------------------ *)
(* Obfuscator                                                           *)
(* ------------------------------------------------------------------ *)

(* Deploy a module and run a fixed scenario, returning (tx results,
   console output).  Used to compare plain vs obfuscated behaviour. *)
let run_scenario (m : Wasm.Ast.module_) (abi : Abi.t) =
  let chain = Host.create_chain () in
  Token.bootstrap chain ~treasury:(n "treasury") ~supply:1_000_000_0000L;
  List.iter (fun a -> ignore (Chain.create_account chain a)) [ n "alice"; n "victim" ];
  ignore
    (Chain.push_action chain
       (Token.transfer_action ~token:Name.eosio_token ~from:(n "treasury")
          ~to_:(n "alice") ~quantity:(Asset.eos_of_units 1000_0000L) ~memo:""));
  Token.set_balance chain ~token:Name.eosio_token ~owner:(n "victim")
    ~symbol:Asset.Symbol.eos 1000_0000L;
  Chain.set_code chain (n "victim") m abi;
  let results =
    List.map
      (fun act -> (Chain.push_action chain act).Chain.tx_ok)
      [
        Action.of_args ~account:(n "victim") ~name:(n "deposit")
          ~args:[ Abi.V_name (n "alice"); Abi.V_u64 5L ]
          ~auth:[ n "alice" ];
        Token.transfer_action ~token:Name.eosio_token ~from:(n "alice")
          ~to_:(n "victim") ~quantity:(Asset.eos_of_units 100L) ~memo:"hello";
        Action.of_args ~account:(n "victim") ~name:Name.transfer
          ~args:
            [
              Abi.V_name (n "alice"); Abi.V_name (n "victim");
              Abi.V_asset (Asset.eos_of_units 3L); Abi.V_string "x";
            ]
          ~auth:[ n "alice" ];
      ]
  in
  (results, Chain.console_output chain, Token.eos_balance chain ~owner:(n "alice"))

let qcheck_obfuscation_preserves_semantics =
  QCheck.Test.make ~name:"obfuscation preserves observable behaviour" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Wasai_support.Rand.create (Int64.of_int seed) in
      let spec = random_spec rng in
      let m, abi = BG.Contracts.build spec in
      run_scenario m abi = run_scenario (BG.Obfuscate.obfuscate m) abi)

let test_obfuscation_shape () =
  let m, _ = BG.Contracts.build (BG.Contracts.default_spec (n "victim")) in
  let obf = BG.Obfuscate.obfuscate m in
  Alcotest.(check int) "one opaque function appended"
    (Array.length m.Wasm.Ast.funcs + 1)
    (Array.length obf.Wasm.Ast.funcs);
  (* Every original i64 eq/ne disappears. *)
  let count_eq (mm : Wasm.Ast.module_) =
    let c = ref 0 in
    Array.iter
      (fun (f : Wasm.Ast.func) ->
        Wasm.Ast.iter_instrs
          (fun i ->
            match i with
            | Wasm.Ast.Int_compare (Wasm.Types.I64, (Wasm.Ast.Eq | Wasm.Ast.Ne)) ->
                incr c
            | _ -> ())
          f.Wasm.Ast.body)
      mm.Wasm.Ast.funcs;
    !c
  in
  Alcotest.(check bool) "originals had comparisons" true (count_eq m > 0);
  Alcotest.(check int) "all eq/ne encoded away" 0 (count_eq obf);
  (* A call-graph cycle now exists (the opaque recursion). *)
  Alcotest.(check bool) "opaque recursion forms a cycle" true
    (Wasai_baselines.Eosafe.has_cycle obf
       (Option.get (Wasm.Ast.exported_func obf "apply")))

(* ------------------------------------------------------------------ *)
(* Verification injector                                                *)
(* ------------------------------------------------------------------ *)

let test_claim_loop_sums_deposits () =
  (* The claim action's db_next loop folds every players row. *)
  let spec =
    { (BG.Contracts.default_spec (n "victim")) with BG.Contracts.sp_claim_loop = true }
  in
  let m, abi = BG.Contracts.build spec in
  let chain = Host.create_chain () in
  Token.bootstrap chain ~treasury:(n "treasury") ~supply:1_000_000_0000L;
  List.iter (fun a -> ignore (Chain.create_account chain a))
    [ n "alice"; n "bob"; n "victim" ];
  Chain.set_code chain (n "victim") m abi;
  List.iter
    (fun (player, amount) ->
      let r =
        Chain.push_action chain
          (Action.of_args ~account:(n "victim") ~name:(n "deposit")
             ~args:[ Abi.V_name player; Abi.V_u64 amount ]
             ~auth:[ player ])
      in
      Alcotest.(check bool) "deposit ok" true r.Chain.tx_ok)
    [ (n "alice", 11L); (n "bob", 31L) ];
  let r =
    Chain.push_action chain
      (Action.of_args ~account:(n "victim") ~name:(n "claim") ~args:[]
         ~auth:[ n "alice" ])
  in
  Alcotest.(check bool) "claim ok" true r.Chain.tx_ok;
  Alcotest.(check string) "sum printed" "42" (Chain.console_output chain)

let test_verification_inject () =
  let m, abi = BG.Contracts.build (BG.Contracts.default_spec (n "victim")) in
  let checks =
    [ { BG.Contracts.chk_target = BG.Contracts.Chk_amount; chk_value = 424242L } ]
  in
  let m' = BG.Verification.inject m checks in
  Wasm.Validate.check_module m';
  (* A transfer with the wrong amount now traps; the right amount passes. *)
  let run amount =
    let chain = Host.create_chain () in
    Token.bootstrap chain ~treasury:(n "treasury") ~supply:1_000_000_0000L;
    ignore (Chain.create_account chain (n "alice"));
    ignore (Chain.create_account chain (n "victim"));
    ignore
      (Chain.push_action chain
         (Token.transfer_action ~token:Name.eosio_token ~from:(n "treasury")
            ~to_:(n "alice") ~quantity:(Asset.eos_of_units 1_000_0000L) ~memo:""));
    Chain.set_code chain (n "victim") m' abi;
    (Chain.push_action chain
       (Token.transfer_action ~token:Name.eosio_token ~from:(n "alice")
          ~to_:(n "victim") ~quantity:(Asset.eos_of_units amount) ~memo:""))
      .Chain.tx_ok
  in
  Alcotest.(check bool) "wrong amount trapped" false (run 100L);
  Alcotest.(check bool) "gate amount passes" true (run 424242L)

let test_random_checks_satisfiable () =
  (* Distinct fields only: the conjunction must stay satisfiable. *)
  let rng = Wasai_support.Rand.create 3L in
  for _ = 1 to 50 do
    let checks = BG.Verification.random_checks rng ~depth:5 in
    let targets = List.map (fun c -> c.BG.Contracts.chk_target) checks in
    Alcotest.(check int) "no duplicate fields" (List.length targets)
      (List.length (List.sort_uniq compare targets))
  done

let test_random_milestones_distinct () =
  let rng = Wasai_support.Rand.create 4L in
  let ms = BG.Verification.random_milestones rng ~depth:20 in
  let slots = List.map (fun m -> (m.BG.Contracts.ml_field, m.BG.Contracts.ml_byte)) ms in
  Alcotest.(check int) "distinct (field, byte) slots" (List.length slots)
    (List.length (List.sort_uniq compare slots))

(* ------------------------------------------------------------------ *)
(* Corpora                                                              *)
(* ------------------------------------------------------------------ *)

let test_corpus_composition () =
  let corpus = BG.Corpus.ground_truth ~scale:20 () in
  (* Scaled class counts with half/half labels. *)
  List.iter
    (fun (cls, paper_n) ->
      let of_cls =
        List.filter (fun s -> s.BG.Corpus.smp_class = cls) corpus
      in
      Alcotest.(check int)
        (BG.Contracts.string_of_vuln cls ^ " count")
        (max 2 (paper_n / 20))
        (List.length of_cls);
      let vuln = List.filter (fun s -> s.BG.Corpus.smp_truth) of_cls in
      Alcotest.(check int)
        (BG.Contracts.string_of_vuln cls ^ " balanced")
        ((List.length of_cls + 1) / 2)
        (List.length vuln))
    BG.Corpus.paper_counts

let test_corpus_truth_consistency () =
  List.iter
    (fun (s : BG.Corpus.sample) ->
      Alcotest.(check bool) "label matches spec" s.BG.Corpus.smp_truth
        (BG.Contracts.ground_truth s.BG.Corpus.smp_spec s.BG.Corpus.smp_class))
    (BG.Corpus.ground_truth ~scale:40 ())

let test_corpus_determinism () =
  let a = BG.Corpus.ground_truth ~scale:40 () in
  let b = BG.Corpus.ground_truth ~scale:40 () in
  Alcotest.(check bool) "same seed, same corpus" true
    (List.for_all2 (fun x y -> x.BG.Corpus.smp_module = y.BG.Corpus.smp_module) a b)

let test_mainnet_population () =
  let pop = BG.Mainnet.generate ~count:300 () in
  Alcotest.(check int) "population size" 300 (List.length pop);
  let vuln = List.filter BG.Mainnet.truth_any pop in
  let frac = float_of_int (List.length vuln) /. 300.0 in
  (* The paper reports 71.3% vulnerable; the sampler should land nearby. *)
  Alcotest.(check bool)
    (Printf.sprintf "vulnerable fraction %.2f within [0.55, 0.85]" frac)
    true
    (frac > 0.55 && frac < 0.85);
  (* Patched latest versions are genuinely patched. *)
  let patched =
    List.filter
      (fun d -> d.BG.Mainnet.dep_history = BG.Mainnet.Operating_patched)
      pop
  in
  Alcotest.(check bool) "some patched contracts" true (List.length patched > 0);
  List.iter
    (fun d ->
      match BG.Mainnet.latest_version d with
      | Some (m, _) -> Wasm.Validate.check_module m
      | None -> Alcotest.fail "patched contract has no latest version")
    patched

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "wasai_benchgen"
    [
      ( "contracts",
        [ qc qcheck_specs_build; qc qcheck_wat_roundtrip ] );
      ( "obfuscate",
        [
          qc qcheck_obfuscation_preserves_semantics;
          Alcotest.test_case "structural effects" `Quick test_obfuscation_shape;
        ] );
      ( "verification",
        [
          Alcotest.test_case "claim loop sums deposits" `Quick
            test_claim_loop_sums_deposits;
          Alcotest.test_case "bytecode injection" `Quick test_verification_inject;
          Alcotest.test_case "checks satisfiable" `Quick test_random_checks_satisfiable;
          Alcotest.test_case "milestones distinct" `Quick
            test_random_milestones_distinct;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "composition" `Quick test_corpus_composition;
          Alcotest.test_case "truth consistency" `Quick test_corpus_truth_consistency;
          Alcotest.test_case "determinism" `Quick test_corpus_determinism;
          Alcotest.test_case "mainnet population" `Quick test_mainnet_population;
        ] );
    ]
