(** Deterministic campaign sharding (see the interface for the contract).

    The hash must be stable across machines, OCaml versions and runs —
    it is written into journals and two fleet members must never disagree
    on an assignment — so it is spelled out here (FNV-1a 64-bit) instead
    of borrowing [Hashtbl.hash]. *)

type t = { sh_index : int; sh_count : int }

let make ~index ~count =
  if count < 1 then
    invalid_arg (Printf.sprintf "Shard.make: count %d < 1" count);
  if index < 0 || index >= count then
    invalid_arg
      (Printf.sprintf "Shard.make: index %d outside 0..%d" index (count - 1));
  { sh_index = index; sh_count = count }

let whole = { sh_index = 0; sh_count = 1 }
let is_whole t = t.sh_count = 1
let equal a b = a.sh_index = b.sh_index && a.sh_count = b.sh_count
let to_string t = Printf.sprintf "%d/%d" t.sh_index t.sh_count

let of_string s =
  match String.index_opt s '/' with
  | None -> Error (Printf.sprintf "shard %S: expected \"i/N\"" s)
  | Some slash -> (
      let index_s = String.sub s 0 slash in
      let count_s = String.sub s (slash + 1) (String.length s - slash - 1) in
      match (int_of_string_opt index_s, int_of_string_opt count_s) with
      | Some index, Some count -> (
          match make ~index ~count with
          | t -> Ok t
          | exception Invalid_argument msg -> Error msg)
      | _ -> Error (Printf.sprintf "shard %S: expected \"i/N\"" s))

(* FNV-1a, 64-bit: simple, well-distributed on short ASCII names, and
   trivially portable to a coordinator written in any language. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash (s : string) : int64 =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let assign ~count (name : string) : int =
  if count < 1 then
    invalid_arg (Printf.sprintf "Shard.assign: count %d < 1" count);
  Int64.to_int (Int64.unsigned_rem (hash name) (Int64.of_int count))

let member t name = assign ~count:t.sh_count name = t.sh_index
