(** Complicated-verification injection (RQ3, §4.3).

    Injects [if (field != constant) unreachable] chains at the entry of a
    module's eosponser, at the bytecode level — the paper's example forces
    [quantity] to equal "100.0000 EOS" before the contract proceeds.  Only
    seeds that satisfy every equality can reach the rest of the function,
    which is what defeats random fuzzing. *)

module Wasm = Wasai_wasm
module Ast = Wasm.Ast

(* The generated check code is shared with the contract generator. *)
let check_instrs (checks : Contracts.check list) : Ast.instr list =
  List.concat_map Contracts.check_code checks

(** Inject [checks] at the entry of the function named [fname]
    (default "eosponser").  Returns the rewritten module. *)
let inject ?(fname = "eosponser") (m : Ast.module_)
    (checks : Contracts.check list) : Ast.module_ =
  let injected = ref false in
  let funcs =
    Array.map
      (fun (f : Ast.func) ->
        if f.Ast.fname = Some fname then begin
          injected := true;
          { f with Ast.body = check_instrs checks @ f.Ast.body }
        end
        else f)
      m.Ast.funcs
  in
  if not !injected then invalid_arg ("Verification.inject: no function " ^ fname);
  let m' = { m with Ast.funcs } in
  Wasm.Validate.check_module m';
  m'

(** Random check chain over the transfer parameters, mirroring the
    paper's generator ("each branch verifies several function parameters
    with random constants"). *)
let random_checks ?targets (rng : Wasai_support.Rand.t) ~(depth : int) :
    Contracts.check list =
  let pool =
    match targets with
    | Some ts -> ts
    | None ->
        Contracts.[| Chk_from; Chk_to; Chk_amount; Chk_symbol; Chk_memo_len |]
  in
  (* Sample distinct fields so the conjunction stays satisfiable. *)
  let targets = Wasai_support.Rand.shuffle rng pool in
  let depth = min depth (Array.length targets) in
  List.init depth (fun i ->
      let target = targets.(i) in
      let value =
        match target with
        | Contracts.Chk_amount ->
            Int64.of_int (1 + Wasai_support.Rand.int rng 1_000_000)
        | Contracts.Chk_symbol -> Wasai_eosio.Asset.Symbol.eos
        | Contracts.Chk_memo_len ->
            Int64.of_int (Wasai_support.Rand.int rng 32)
        | Contracts.Chk_from | Contracts.Chk_to | Contracts.Chk_memo_prefix ->
            Wasai_eosio.Name.of_string
              (Wasai_support.Rand.eosio_name_string rng 8)
      in
      { Contracts.chk_target = target; chk_value = value })

(** The §4.3 example constrains the transfer's [quantity] (and memo) —
    fields the payload controls on every adversary channel, unlike the
    payer/payee names the notification mechanism fixes. *)
let payload_targets =
  Contracts.[| Chk_amount; Chk_symbol; Chk_memo_len |]

(** Random milestone chain of [depth] levels over distinct (field, byte)
    pairs — always satisfiable end to end. *)
let random_milestones (rng : Wasai_support.Rand.t) ~(depth : int) :
    Contracts.milestone list =
  (* Amount bytes first: the payload controls them on every channel.
     Deeper levels constrain the payer/payee names, which only the
     forged-action channel can set. *)
  (* Amount byte 7 stays free so the amount can remain positive and
     payable; memo bytes are nonzero so the string length extension is
     well-defined. *)
  let payload_slots =
    Wasai_support.Rand.shuffle rng
      (Array.append
         (Array.init 7 (fun b -> (Contracts.Ml_amount, b)))
         (Array.init 8 (fun b -> (Contracts.Ml_memo, b))))
  in
  let name_slots =
    Wasai_support.Rand.shuffle rng
      (Array.init 16 (fun i ->
           ((if i mod 2 = 0 then Contracts.Ml_from else Contracts.Ml_to), i / 2)))
  in
  let order = Array.append payload_slots name_slots in
  List.init (min depth (Array.length order)) (fun k ->
      let field, byte = order.(k) in
      {
        Contracts.ml_field = field;
        ml_byte = byte;
        ml_value =
          (match field with
           | Contracts.Ml_memo -> 33 + Wasai_support.Rand.int rng 94
           | _ -> Wasai_support.Rand.int rng 256);
      })
