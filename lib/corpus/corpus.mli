(** Persistent coverage-indexed seed corpus with cross-run reuse.

    The corpus stores every {e interesting} seed a fuzzing run found — a
    seed whose executions opened at least one new branch edge — keyed by
    the stable {!Wasai_wasabi.Trace.edge_signature} of its covered edge
    set, together with its provenance (target, campaign shard stamp,
    engine round, solver counters).  A later campaign preloads these
    seeds into each target's pool before fresh generation, replaying the
    prior run's coverage in its first rounds instead of re-deriving the
    same solver flips from scratch.

    On disk the corpus is a journal-style append-only file: one strict,
    versioned, tab-separated line per seed ([wasai-corpus-v1], 13
    fields), each append flushed and fsync'd before it is acknowledged.
    See [corpus.ml] for the full grammar.  Loading validates every field
    and recomputes every signature; any torn or edited line raises
    {!Malformed} rather than corrupting the index.

    Determinism: everything derived from a corpus — {!records},
    {!preload} lists, {!minimize} output, {!save} files, {!stats_text} —
    is canonically ordered by (target, action, signature), so it is a
    pure function of the corpus {e contents}, independent of on-disk
    append order, worker scheduling, or machine. *)

module Solver = Wasai_smt.Solver
open Wasai_eosio

type record = {
  rc_target : string;  (** campaign target name (an EOSIO account) *)
  rc_action : Name.t;
  rc_args : Abi.value list;
  rc_sig : int64;
      (** {!Wasai_wasabi.Trace.edge_signature} of [rc_cover]; the dedupe
          key together with [rc_target] *)
  rc_cover : (int * int32) list;  (** sorted strictly ascending, non-empty *)
  rc_new_edges : int;  (** edges of [rc_cover] that were new when recorded *)
  rc_round : int;  (** engine round that executed the seed *)
  rc_shard : int * int;  (** producing campaign's shard slice (i, N) *)
  rc_seed : int64;  (** producing campaign's engine root RNG seed *)
  rc_rounds : int;  (** producing campaign's engine round budget *)
  rc_solver : Solver.stats;  (** producing run's solver counters *)
  rc_solver_budget : int;
      (** producing run's final (adaptively retuned) conflict budget *)
}

val wire_of_args : Abi.value list -> string
(** Whitespace-free argument-vector wire: ["-"] for the empty vector,
    else comma-separated tagged values ([n:]/[u:]/[w:]/[a:]/[s:]).  The
    alphabet is limited to hex digits, EOSIO name characters, [,] and
    [:] — no [@], [;] or tabs — so the wire can be embedded verbatim in
    the journal's [@]-structured interesting-seed records. *)

val args_of_wire : string -> (Abi.value list, string) result
(** Strict inverse of {!wire_of_args}. *)

val line_of_record : record -> string
(** Single-line record, no trailing newline. *)

val record_of_line : string -> (record, string) result
(** Strict inverse of {!line_of_record}: wrong magic, wrong field count,
    unsorted cover, a signature that does not match the cover, unknown
    value tags and unparseable numbers all reject with a reason. *)

exception Malformed of string
(** Raised by {!load}; the message carries path, 1-based line number and
    reason. *)

(** An in-memory corpus: records plus a (target, signature) index. *)
type t

val create : unit -> t
val size : t -> int

val add : t -> record -> bool
(** Dedupe-on-insert: [false] (and no change) when a record with the
    same (target, signature) pair is already present. *)

val mem : t -> target:string -> int64 -> bool

val records : t -> record list
(** All records in canonical (target, action, signature) order. *)

val targets : t -> string list
(** Distinct target names, sorted. *)

val records_for : t -> target:string -> record list

val preload : t -> target:string -> (Name.t * Abi.value list) list
(** The seed vectors to inject into an engine run for [target]
    ({!Wasai_core} [Engine.config.cfg_preload]), in canonical order —
    the same list for the same corpus contents, however they were
    appended and wherever they are loaded. *)

val load : string -> t
(** Parse a corpus file, deduplicating as it goes (re-appended
    duplicates collapse silently).  Raises {!Malformed} on any bad line
    and [Sys_error] if the file cannot be read. *)

val save : t -> string -> unit
(** Write the canonical form: records in canonical order, temp file +
    fsync + atomic rename, so a crash never leaves a half-written
    corpus. *)

val minimize : t -> t
(** Greedy set-cover minimisation, per target: keep a subset of seeds
    whose covers union to the same edge set, repeatedly taking the seed
    that covers the most still-uncovered edges (ties broken by canonical
    order; deterministic).  Redundant seeds — every edge already covered
    by the kept set — are dropped. *)

val edge_union : record list -> int
(** Distinct branch edges covered by the union of the records' covers
    (meaningful within one target, where site indices share a module). *)

val stats_text : t -> string
(** Summary plus one line per target (seeds, distinct actions, distinct
    edges), canonically ordered. *)

(** Append-side handle, following the journal's crash-safety discipline:
    each line is flushed and fsync'd before [append] returns.  [append]
    does not deduplicate — pair it with {!add} on an in-memory corpus
    (the campaign does) or dedupe at {!load} time. *)
module Writer : sig
  type w

  val open_ : string -> w
  (** Opens (creating if needed) in append mode. *)

  val append : w -> record -> unit
  val close : w -> unit
end
