test/test_baselines.ml: Alcotest Name Printf Wasai_baselines Wasai_benchgen Wasai_core Wasai_eosio Wasai_support
