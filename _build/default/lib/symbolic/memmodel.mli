(** The concrete-address memory model (challenge C2 of the paper).

    Addresses come from the runtime trace and are concrete integers, so a
    byte-indexed table suffices — no symbolic aliasing to resolve.
    Contents are symbolic: each byte holds an 8-bit expression.  A load
    from a byte never stored creates a *symbolic load object*, a fresh
    variable memoised at that address. *)

module Expr = Wasai_smt.Expr

type t

val create : unit -> t

val store : t -> addr:int -> width_bytes:int -> Expr.t -> unit
(** Little-endian store of the low [8 * width_bytes] bits. *)

val byte_at : t -> int -> Expr.t

val load : t -> addr:int -> width_bytes:int -> Expr.t
(** Little-endian load as a bitvector of [8 * width_bytes] bits. *)

val store_concrete_string : t -> addr:int -> string -> unit

val stats : t -> int * int * int
(** (stores, loads, symbolic load objects). *)
