(** Constraint solving entry point.

    [check] decides a conjunction of width-1 constraints and produces a
    model (variable id → value).  Two tiers:

    1. a propagation quick-path that solves the very common
       "variable (or invertible 1-var term) equals constant" chains the
       complicated-verification contracts produce, without touching SAT;
    2. full bit-blasting + CDCL for everything else, under a deterministic
       conflict budget standing in for the paper's 3,000 ms Z3 cap.

    Accounting and caching are per {!Session}: each engine run (one
    target) owns a session carrying its conflict budget, counters, and a
    bounded LRU of decided constraint sets, so campaign workers never
    contend on shared state and never share cached verdicts across
    domains. *)

type model = (int, int64) Hashtbl.t
(** expr variable id → value *)

type result =
  | Sat of model
  | Unsat
  | Unknown  (** budget exhausted *)

type stats = {
  st_quick : int;
  st_blasted : int;
  st_unknown : int;
  st_cache_hits : int;
  st_cache_misses : int;
}

let stats_zero =
  { st_quick = 0; st_blasted = 0; st_unknown = 0; st_cache_hits = 0; st_cache_misses = 0 }

let stats_add a b =
  {
    st_quick = a.st_quick + b.st_quick;
    st_blasted = a.st_blasted + b.st_blasted;
    st_unknown = a.st_unknown + b.st_unknown;
    st_cache_hits = a.st_cache_hits + b.st_cache_hits;
    st_cache_misses = a.st_cache_misses + b.st_cache_misses;
  }

(* ------------------------------------------------------------------ *)
(* Quick path                                                          *)
(* ------------------------------------------------------------------ *)

(* Try to rewrite [e == value] into an assignment of a single variable.
   Handles the invertible wrappers the calling convention and the popcount
   obfuscation produce around inputs. *)
let rec invert (e : Expr.t) (value : int64) : (Expr.var * int64) option =
  let open Expr in
  match e.node with
  | Var v -> Some (v, mask v.vwidth value)
  | Zext (_, inner) ->
      (* Invertible iff the value fits in the inner width. *)
      let wi = width_of inner in
      if mask wi value = value then invert inner value else None
  | Sext (w, inner) ->
      let wi = width_of inner in
      if mask w (to_signed wi (mask wi value)) = mask w value then
        invert inner (mask wi value)
      else None
  | Extract (hi, lo, inner) when lo = 0 && hi = width_of inner - 1 ->
      invert inner value
  | Binop (Add, { node = Const (w, c); _ }, inner) ->
      invert inner (mask w (Int64.sub value c))
  | Binop (Xor, { node = Const (_, c); _ }, inner) ->
      invert inner (Int64.logxor value c)
  | Binop (Sub, inner, { node = Const (w, c); _ }) ->
      invert inner (mask w (Int64.add value c))
  | _ -> None

(* One round of propagation: pick off constraints of the form
   [invertible == const]; substitute; repeat to fixpoint. *)
let quick_path (constraints : Expr.t list) :
    [ `Solved of model | `Contradiction | `Residual of Expr.t list * model ] =
  let model : model = Hashtbl.create 8 in
  let subst_known e =
    Expr.subst
      (fun v ->
        match Hashtbl.find_opt model v.Expr.vid with
        | Some value -> Some (Expr.const v.Expr.vwidth value)
        | None -> None)
      e
  in
  let rec loop (cs : Expr.t list) =
    let cs = List.map subst_known cs in
    if List.exists Expr.is_false cs then `Contradiction
    else begin
      let cs = List.filter (fun c -> not (Expr.is_true c)) cs in
      let progress = ref false in
      let residual =
        List.filter
          (fun c ->
            match c.Expr.node with
            | Expr.Cmp (Expr.Eq, lhs, { Expr.node = Expr.Const (_, value); _ })
            | Expr.Cmp (Expr.Eq, { Expr.node = Expr.Const (_, value); _ }, lhs)
              -> (
                match invert lhs value with
                | Some (v, assigned) when not (Hashtbl.mem model v.Expr.vid) ->
                    Hashtbl.replace model v.Expr.vid assigned;
                    progress := true;
                    false
                | _ -> true)
            | _ -> true)
          cs
      in
      if residual = [] then `Solved model
      else if !progress then loop residual
      else `Residual (residual, model)
    end
  in
  loop constraints

(* ------------------------------------------------------------------ *)
(* Full check                                                          *)
(* ------------------------------------------------------------------ *)

let blast_check ~conflict_budget (constraints : Expr.t list)
    (pre_model : model) : result =
  let ctx = Bitblast.create () in
  List.iter (Bitblast.assert_true ctx) constraints;
  match Sat.solve ~conflict_budget ctx.Bitblast.sat with
  | Sat.Unsat -> Unsat
  | Sat.Unknown -> Unknown
  | Sat.Sat ->
      let model = Hashtbl.copy pre_model in
      (* Collect every variable mentioned in the constraints. *)
      let seen = Hashtbl.create 16 in
      List.iter
        (fun c ->
          Expr.iter_vars
            (fun v ->
              if not (Hashtbl.mem seen v.Expr.vid) then begin
                Hashtbl.replace seen v.Expr.vid ();
                Hashtbl.replace model v.Expr.vid (Bitblast.model_of_var ctx v)
              end)
            c)
        constraints;
      Sat model

(* Decide without any session bookkeeping; the second component says
   which tier produced the answer so callers can tally. *)
let solve_raw ~conflict_budget (constraints : Expr.t list) :
    result * [ `Trivial | `Quick | `Blasted | `Blast_unknown ] =
  if List.exists Expr.is_false constraints then (Unsat, `Trivial)
  else
    match quick_path constraints with
    | `Solved model -> (Sat model, `Quick)
    | `Contradiction -> (Unsat, `Trivial)
    | `Residual (residual, model) -> (
        match blast_check ~conflict_budget residual model with
        | Unknown -> (Unknown, `Blast_unknown)
        | r -> (r, `Blasted))

let default_conflict_budget = 50_000

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

module Session = struct
  (* Cached verdicts store models as plain assoc snapshots so a hit can
     hand every caller a fresh hashtable (callers may extend models). *)
  type verdict = C_sat of (int * int64) list | C_unsat

  type entry = { ce_verdict : verdict; mutable ce_stamp : int }

  type t = {
    mutable sx_budget : int;
    sx_capacity : int;
    sx_cache : (int list, entry) Hashtbl.t;
    mutable sx_clock : int;
    mutable sx_quick : int;
    mutable sx_blasted : int;
    mutable sx_unknown : int;
    mutable sx_hits : int;
    mutable sx_misses : int;
    mutable sx_subsumed : int;
  }

  let create ?(conflict_budget = default_conflict_budget)
      ?(cache_capacity = 512) () =
    (* A session boundary is the only safe point to bound the per-domain
       hash-consing table: compacting mid-session would degrade sharing
       between a cached constraint set and its re-built twin. *)
    Expr.hashcons_compact ();
    {
      sx_budget = conflict_budget;
      sx_capacity = max 0 cache_capacity;
      sx_cache = Hashtbl.create 64;
      sx_clock = 0;
      sx_quick = 0;
      sx_blasted = 0;
      sx_unknown = 0;
      sx_hits = 0;
      sx_misses = 0;
      sx_subsumed = 0;
    }

  let conflict_budget t = t.sx_budget

  (* Retuning the budget mid-session is sound with respect to the verdict
     cache: Sat and Unsat are budget-independent (a model or a refutation
     stays valid under any budget), and Unknown — the only budget-
     dependent verdict — is never cached. *)
  let set_conflict_budget t budget =
    if budget < 1 then
      invalid_arg
        (Printf.sprintf "Solver.Session.set_conflict_budget: budget %d < 1"
           budget);
    t.sx_budget <- budget

  let stats t =
    {
      st_quick = t.sx_quick;
      st_blasted = t.sx_blasted;
      st_unknown = t.sx_unknown;
      st_cache_hits = t.sx_hits;
      st_cache_misses = t.sx_misses;
    }

  let subsumed t = t.sx_subsumed

  (* The cache key is the multiset of constraint identities, canonicalised
     by sorting the (interned) tags.  Tag values are scheduling-dependent,
     but multiset equality is not: within one session, two queries collide
     iff they assert structurally identical constraint sets, so the
     hit/miss pattern — and therefore every verdict — is a pure function
     of the target, independent of --jobs (sessions are never shared
     across domains). *)
  let key_of (constraints : Expr.t list) : int list =
    List.sort Int.compare (List.map Expr.tag constraints)

  (* [small] is a sub-multiset of [big]; both ascending-sorted. *)
  let rec is_submultiset (small : int list) (big : int list) : bool =
    match (small, big) with
    | [], _ -> true
    | _ :: _, [] -> false
    | s :: small', b :: big' ->
        if s = b then is_submultiset small' big'
        else if s > b then is_submultiset small big'
        else false

  (* Unsat-subset subsumption: a conjunction only grows stronger, so any
     cached Unsat set contained in the query refutes the query too.  The
     fold asks only whether {e some} such entry exists — an
     iteration-order-independent question, so the determinism contract
     survives even though tag values (and hence Hashtbl layout) are
     scheduling-dependent.  For the same reason the matching entry's LRU
     stamp is deliberately {e not} refreshed, and the subsumed query is
     not inserted: both would make cache evolution depend on which entry
     the iteration found. *)
  let subsumes_unsat t (key : int list) : bool =
    Hashtbl.fold
      (fun k e acc ->
        acc || (e.ce_verdict = C_unsat && is_submultiset k key))
      t.sx_cache false

  let find t key =
    if t.sx_capacity = 0 then begin
      t.sx_misses <- t.sx_misses + 1;
      None
    end
    else
      match Hashtbl.find_opt t.sx_cache key with
      | Some e ->
          t.sx_clock <- t.sx_clock + 1;
          e.ce_stamp <- t.sx_clock;
          t.sx_hits <- t.sx_hits + 1;
          Some e.ce_verdict
      | None ->
          if subsumes_unsat t key then begin
            t.sx_hits <- t.sx_hits + 1;
            t.sx_subsumed <- t.sx_subsumed + 1;
            Some C_unsat
          end
          else begin
            t.sx_misses <- t.sx_misses + 1;
            None
          end

  let add t key verdict =
    if t.sx_capacity > 0 then begin
      if
        Hashtbl.length t.sx_cache >= t.sx_capacity
        && not (Hashtbl.mem t.sx_cache key)
      then begin
        (* Evict the least-recently-used entry (O(capacity) scan; the
           capacity is small and eviction only runs once the cache is
           full). *)
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, stamp) when stamp <= e.ce_stamp -> acc
              | _ -> Some (k, e.ce_stamp))
            t.sx_cache None
        in
        match victim with
        | Some (k, _) -> Hashtbl.remove t.sx_cache k
        | None -> ()
      end;
      t.sx_clock <- t.sx_clock + 1;
      Hashtbl.replace t.sx_cache key { ce_verdict = verdict; ce_stamp = t.sx_clock }
    end

  let snapshot_model (m : model) : (int * int64) list =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) m []

  let hydrate_model (assoc : (int * int64) list) : model =
    let m = Hashtbl.create (List.length assoc) in
    List.iter (fun (k, v) -> Hashtbl.replace m k v) assoc;
    m
end

(** Decide the conjunction of [constraints]. *)
let check ?session ?conflict_budget (constraints : Expr.t list) : result =
  let module T = Wasai_telemetry.Telemetry in
  let t0 = T.start () in
  let stage_of_tier = function
    | `Trivial | `Quick -> T.Solver_quick
    | `Blasted | `Blast_unknown -> T.Solver_blast
  in
  let budget =
    match (conflict_budget, session) with
    | Some b, _ -> b
    | None, Some s -> Session.conflict_budget s
    | None, None -> default_conflict_budget
  in
  match session with
  | None ->
      let result, tier = solve_raw ~conflict_budget:budget constraints in
      T.stop (stage_of_tier tier) t0;
      result
  | Some s -> (
      if List.exists Expr.is_false constraints then begin
        T.stop T.Solver_quick t0;
        Unsat
      end
      else
        let key = Session.key_of constraints in
        match Session.find s key with
        | Some (Session.C_sat assoc) ->
            let m = Sat (Session.hydrate_model assoc) in
            T.stop T.Solver_cache t0;
            m
        | Some Session.C_unsat ->
            T.stop T.Solver_cache t0;
            Unsat
        | None ->
            let result, tier = solve_raw ~conflict_budget:budget constraints in
            (match tier with
            | `Trivial -> ()
            | `Quick -> s.Session.sx_quick <- s.Session.sx_quick + 1
            | `Blasted -> s.Session.sx_blasted <- s.Session.sx_blasted + 1
            | `Blast_unknown ->
                s.Session.sx_blasted <- s.Session.sx_blasted + 1;
                s.Session.sx_unknown <- s.Session.sx_unknown + 1);
            (match result with
            | Sat m ->
                Session.add s key (Session.C_sat (Session.snapshot_model m))
            | Unsat -> Session.add s key Session.C_unsat
            | Unknown ->
                (* Unknown is a budget artefact, not a verdict: never
                   cache it, so a later query under a bigger budget can
                   still decide the set. *)
                ());
            T.stop (stage_of_tier tier) t0;
            result)

(** Verify a model against constraints (defence in depth for the solver:
    used by tests and by the engine before trusting a seed). *)
let validate_model (constraints : Expr.t list) (model : model) : bool =
  let env = Hashtbl.create 16 in
  Hashtbl.iter (fun k v -> Hashtbl.replace env k v) model;
  List.for_all
    (fun c ->
      (* Unassigned variables default to zero. *)
      Expr.iter_vars
        (fun v ->
          if not (Hashtbl.mem env v.Expr.vid) then
            Hashtbl.replace env v.Expr.vid 0L)
        c;
      match Expr.eval env c with 1L -> true | _ -> false)
    constraints
