(* Tests for the campaign orchestrator: latency histogram, work queue,
   shard assignment, journal round-trip and strictness (v1/v2/v3),
   multi-domain/serial verdict parity, interrupt/resume equivalence, and
   distributed shard-merge identity. *)

module Core = Wasai_core
module BG = Wasai_benchgen
module Campaign = Wasai_campaign
module Metrics = Wasai_support.Metrics
open Wasai_eosio

(* ------------------------------------------------------------------ *)
(* Metrics.Histogram                                                    *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_hist_basic () =
  let h = Metrics.Histogram.create () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0
    (Metrics.Histogram.percentile h 99.0);
  for _ = 1 to 50 do Metrics.Histogram.add h 0.001 done;
  for _ = 1 to 50 do Metrics.Histogram.add h 0.1 done;
  Alcotest.(check int) "count" 100 (Metrics.Histogram.count h);
  Alcotest.(check bool) "mean between modes" true
    (let m = Metrics.Histogram.mean h in
     m > 0.04 && m < 0.06);
  Alcotest.(check bool) "p50 in the low bucket" true
    (Metrics.Histogram.percentile h 50.0 <= 0.002);
  Alcotest.(check bool) "p90 bounds the high mode" true
    (let p = Metrics.Histogram.percentile h 90.0 in
     p >= 0.1 && p <= 0.11);
  Alcotest.(check bool) "p100 capped at max" true
    (Metrics.Histogram.percentile h 100.0 <= 0.1)

let test_hist_merge () =
  let a = Metrics.Histogram.create () and b = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.add a) [ 0.001; 0.002; 0.003 ];
  List.iter (Metrics.Histogram.add b) [ 0.2; 0.3 ];
  let m = Metrics.Histogram.merge a b in
  Alcotest.(check int) "merged count" 5 (Metrics.Histogram.count m);
  Alcotest.(check bool) "merged p99 from b" true
    (Metrics.Histogram.percentile m 99.0 >= 0.2);
  Alcotest.(check bool) "merge leaves inputs alone" true
    (Metrics.Histogram.count a = 3 && Metrics.Histogram.count b = 2);
  Alcotest.(check bool) "to_string mentions count" true
    (let s = Metrics.Histogram.to_string m in
     String.length s > 0
     && contains ~sub:"n=5" s)

let test_hist_to_wire () =
  let h = Metrics.Histogram.create () in
  Alcotest.(check bool) "empty renders n:0" true
    (contains ~sub:"n:0" (Metrics.Histogram.to_wire h));
  List.iter (Metrics.Histogram.add h) [ 0.001; 0.002; 0.2 ];
  let s = Metrics.Histogram.to_wire h in
  (* One token: embeddable in a tab-separated wire field. *)
  Alcotest.(check bool) "no whitespace" false
    (String.exists (function ' ' | '\t' | '\n' -> true | _ -> false) s);
  Alcotest.(check bool) "counts samples" true (contains ~sub:"n:3" s);
  Alcotest.(check bool) "all keys present" true
    (List.for_all
       (fun k -> contains ~sub:k s)
       [ "mean:"; "p50:"; "p90:"; "p99:"; "max:" ])

(* ------------------------------------------------------------------ *)
(* Work queue                                                           *)
(* ------------------------------------------------------------------ *)

let test_queue_fifo_and_close () =
  let q = Campaign.Work_queue.create () in
  List.iter (Campaign.Work_queue.push q) [ 1; 2; 3 ];
  Campaign.Work_queue.close q;
  Alcotest.(check (list int)) "fifo drain" [ 1; 2; 3 ]
    (List.filter_map (fun _ -> Campaign.Work_queue.take q) [ (); (); () ]);
  Alcotest.(check bool) "drained + closed" true (Campaign.Work_queue.take q = None);
  Alcotest.check_raises "push after close"
    (Invalid_argument "Work_queue.push: closed") (fun () ->
      Campaign.Work_queue.push q 4)

let test_queue_parallel_drain () =
  let q = Campaign.Work_queue.create () in
  let n = 200 in
  for i = 1 to n do Campaign.Work_queue.push q i done;
  Campaign.Work_queue.close q;
  let drain () =
    let rec go acc = match Campaign.Work_queue.take q with
      | Some x -> go (x + acc)
      | None -> acc
    in
    go 0
  in
  let others = List.init 3 (fun _ -> Domain.spawn drain) in
  let total = List.fold_left (fun acc d -> acc + Domain.join d) (drain ()) others in
  Alcotest.(check int) "every item taken exactly once" (n * (n + 1) / 2) total

(* Shutdown semantics under blocked consumers: closing the queue while
   workers sit in Condition.wait must wake every one of them — the serve
   daemon's graceful stop relies on it.  A missed broadcast deadlocks
   the join and hangs the test. *)
let test_queue_close_wakes_blocked () =
  List.iter
    (fun domains ->
      let q : int Campaign.Work_queue.t = Campaign.Work_queue.create () in
      let workers =
        List.init domains (fun _ ->
            Domain.spawn (fun () -> Campaign.Work_queue.take q))
      in
      (* Give every worker time to block in take on the empty queue, so
         close exercises the wake-from-Condition.wait path rather than a
         take-after-close fast path. *)
      Unix.sleepf 0.05;
      Campaign.Work_queue.close q;
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "worker woke with None (%d domains)" domains)
            true
            (Domain.join d = None))
        workers)
    [ 1; 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Shard assignment                                                     *)
(* ------------------------------------------------------------------ *)

let test_shard_partition () =
  (* Every name lands in exactly one slice, for any shard count: the
     slices are disjoint and cover the fleet. *)
  let names =
    List.init 60 (fun i ->
        Printf.sprintf "acct%c%c"
          (Char.chr (Char.code 'a' + (i mod 26)))
          (Char.chr (Char.code 'a' + (i / 26))))
  in
  List.iter
    (fun count ->
      let shards =
        List.init count (fun index -> Campaign.Shard.make ~index ~count)
      in
      List.iter
        (fun name ->
          let homes =
            List.filter (fun s -> Campaign.Shard.member s name) shards
          in
          Alcotest.(check int)
            (Printf.sprintf "%S in exactly one of %d slices" name count)
            1 (List.length homes);
          let i = Campaign.Shard.assign ~count name in
          Alcotest.(check bool) "assign within range" true
            (0 <= i && i < count))
        names)
    [ 1; 2; 3; 5; 8 ]

let test_shard_hash_stable () =
  (* The journal stamp is only portable if the hash never changes: pin
     the FNV-1a 64 reference values. *)
  Alcotest.(check int64) "offset basis" 0xcbf29ce484222325L
    (Campaign.Shard.hash "");
  Alcotest.(check int64) "fnv-1a of \"a\"" 0xaf63dc4c8601ec8cL
    (Campaign.Shard.hash "a")

let test_shard_string () =
  List.iter
    (fun (index, count) ->
      let s = Campaign.Shard.make ~index ~count in
      match Campaign.Shard.of_string (Campaign.Shard.to_string s) with
      | Ok s' ->
          Alcotest.(check bool)
            (Campaign.Shard.to_string s ^ " round-trips")
            true
            (Campaign.Shard.equal s s')
      | Error e -> Alcotest.fail e)
    [ (0, 1); (0, 2); (1, 2); (7, 8) ];
  Alcotest.(check bool) "whole is unsharded" true
    (Campaign.Shard.is_whole Campaign.Shard.whole);
  List.iter
    (fun bad ->
      match Campaign.Shard.of_string bad with
      | Ok _ -> Alcotest.fail ("accepted bad shard " ^ bad)
      | Error _ -> ())
    [ ""; "1"; "a/2"; "1/"; "/2"; "2/2"; "-1/2"; "0/0"; "1/2/3"; " 1/2" ];
  match Campaign.Shard.make ~index:2 ~count:2 with
  | _ -> Alcotest.fail "make accepted index = count"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Journal                                                              *)
(* ------------------------------------------------------------------ *)

let sample_entry =
  {
    Campaign.Journal.je_name = "alice";
    je_flags =
      List.map
        (fun f -> (f, f = Core.Scanner.Fake_eos || f = Core.Scanner.Rollback))
        Core.Scanner.all_flags;
    je_branches = 42;
    je_rounds = 12;
    je_seeds_total = 30;
    je_adaptive_seeds = 4;
    je_transactions = 99;
    je_solver_sat = 7;
    je_imprecise = 1;
    je_elapsed = 1.5;
    je_solver =
      {
        Wasai_smt.Solver.st_quick = 21;
        st_blasted = 6;
        st_unknown = 2;
        st_cache_hits = 15;
        st_cache_misses = 29;
      };
    je_stamp = None;
    je_exploits = [];
    je_final_budget = 64;
  }

let sample_stamp =
  {
    Campaign.Journal.js_shard = Campaign.Shard.make ~index:1 ~count:4;
    js_seed = 0x1234_5678L;
    js_rounds = 12;
  }

let sample_evidence channel data =
  {
    Core.Scanner.ev_channel = channel;
    ev_payload =
      Action.make
        ~account:(Name.of_string "victim")
        ~name:(Name.of_string "transfer")
        ~data
        ~auth:[ Name.of_string "attacker"; Name.of_string "proxy" ];
  }

let stamped_entry =
  {
    sample_entry with
    Campaign.Journal.je_stamp = Some sample_stamp;
    je_exploits =
      [
        ( Core.Scanner.Fake_eos,
          sample_evidence Core.Scanner.Ch_fake_token "\x00\x01\xfftail" );
        ( Core.Scanner.Rollback,
          sample_evidence
            (Core.Scanner.Ch_action (Name.of_string "reveal"))
            "" );
      ];
  }

let test_journal_roundtrip () =
  let line = Campaign.Journal.line_of_entry sample_entry in
  match Campaign.Journal.entry_of_line line with
  | Ok e ->
      Alcotest.(check string) "name" "alice" e.Campaign.Journal.je_name;
      Alcotest.(check bool) "flags" true
        (e.Campaign.Journal.je_flags = sample_entry.Campaign.Journal.je_flags);
      Alcotest.(check int) "branches" 42 e.Campaign.Journal.je_branches;
      Alcotest.(check (float 1e-6)) "elapsed" 1.5 e.Campaign.Journal.je_elapsed;
      Alcotest.(check bool) "solver counters" true
        (e.Campaign.Journal.je_solver
         = sample_entry.Campaign.Journal.je_solver)
  | Error e -> Alcotest.fail ("roundtrip failed: " ^ e)

(* Old journals predate the solver counters (11-field v1 lines); resume
   must still accept them, reading the counters as zero. *)
let test_journal_v1_compat () =
  let v2 = Campaign.Journal.line_of_entry sample_entry in
  let v1 =
    match List.rev (String.split_on_char '\t' v2) with
    | _solver :: rest -> String.concat "\t" (List.rev rest)
    | [] -> assert false
  in
  match Campaign.Journal.entry_of_line v1 with
  | Ok e ->
      Alcotest.(check string) "name" "alice" e.Campaign.Journal.je_name;
      Alcotest.(check int) "branches" 42 e.Campaign.Journal.je_branches;
      Alcotest.(check bool) "counters read as zero" true
        (e.Campaign.Journal.je_solver = Wasai_smt.Solver.stats_zero)
  | Error e -> Alcotest.fail ("v1 line rejected: " ^ e)

let test_journal_v3_roundtrip () =
  let line = Campaign.Journal.line_of_entry stamped_entry in
  Alcotest.(check bool) "stamped entries serialise as v4" true
    (String.length line > 16 && String.sub line 0 16 = "wasai-journal-v4");
  match Campaign.Journal.entry_of_line line with
  | Error e -> Alcotest.fail ("v3 roundtrip failed: " ^ e)
  | Ok e ->
      (match e.Campaign.Journal.je_stamp with
       | None -> Alcotest.fail "stamp lost in round-trip"
       | Some st ->
           Alcotest.(check bool) "shard survives" true
             (Campaign.Shard.equal st.Campaign.Journal.js_shard
                sample_stamp.Campaign.Journal.js_shard);
           Alcotest.(check int64) "seed survives"
             sample_stamp.Campaign.Journal.js_seed
             st.Campaign.Journal.js_seed;
           Alcotest.(check int) "budget survives" 12
             st.Campaign.Journal.js_rounds);
      Alcotest.(check bool)
        "exploit payloads round-trip byte-exactly (channel, action, raw data)"
        true
        (e.Campaign.Journal.je_exploits
         = stamped_entry.Campaign.Journal.je_exploits);
      Alcotest.(check int) "final adaptive budget survives" 64
        e.Campaign.Journal.je_final_budget

let reject line reason_fragment =
  match Campaign.Journal.entry_of_line line with
  | Ok _ -> Alcotest.fail ("accepted malformed line: " ^ line)
  | Error reason ->
      Alcotest.(check bool)
        (Printf.sprintf "reason %S mentions %S" reason reason_fragment)
        true
        (contains ~sub:reason_fragment reason)

let test_journal_strict () =
  reject "garbage" "11, 12 or 16 tab-separated fields";
  reject
    (Campaign.Journal.line_of_entry sample_entry ^ "\textra")
    "11, 12 or 16 tab-separated fields";
  (* A line torn mid-write by a crash. *)
  let full = Campaign.Journal.line_of_entry sample_entry in
  reject (String.sub full 0 (String.length full - 20)) "field";
  reject (String.concat "\t" (String.split_on_char '\t' full |> List.map (fun f ->
      if f = "tx=99" then "tx=banana" else f)))
    "tx";
  (* The v2 solver field is parsed as strictly as the rest. *)
  let swap_solver replacement =
    String.concat "\t"
      (String.split_on_char '\t' full
      |> List.map (fun f ->
             if String.length f > 7 && String.sub f 0 7 = "solver=" then
               replacement
             else f))
  in
  reject (swap_solver "solver=q:21,b:6,u:2,h:15") "5 counters";
  reject (swap_solver "solver=q:21,b:6,u:2,h:15,m:oops") "bad counters";
  reject (swap_solver "solver=q:21,b:6,u:2,m:29,h:15") "bad counters"

(* The v3 stamp and exploit fields are parsed as strictly as the rest:
   any tampered or torn value is rejected, never read as "no stamp". *)
let test_journal_v3_strict () =
  let full = Campaign.Journal.line_of_entry stamped_entry in
  let swap prefix replacement =
    String.concat "\t"
      (String.split_on_char '\t' full
      |> List.map (fun f ->
             if
               String.length f >= String.length prefix
               && String.sub f 0 (String.length prefix) = prefix
             then replacement
             else f))
  in
  reject (swap "shard=" "shard=4/4") "index 4 outside";
  reject (swap "shard=" "shard=1-4") "shard";
  reject (swap "seed=" "seed=banana") "seed";
  reject (swap "budget=" "budget=") "budget";
  (* Truncated v3 (15 fields) is neither v2 nor v3. *)
  (match List.rev (String.split_on_char '\t' full) with
   | _ :: rest ->
       reject
         (String.concat "\t" (List.rev rest))
         "11, 12 or 16 tab-separated fields"
   | [] -> assert false);
  (* Exploit records: flag, channel, names and hex are all validated. *)
  let wire =
    Core.Scanner.evidence_to_wire (sample_evidence Core.Scanner.Ch_direct "ab")
  in
  reject (swap "exploits=" "exploits=") "flag";
  reject (swap "exploits=" ("exploits=Bogus@" ^ wire)) "unknown flag";
  reject
    (swap "exploits="
       ("exploits=FakeEOS@" ^ wire ^ ";FakeEOS@" ^ wire))
    "duplicate flag";
  reject (swap "exploits=" "exploits=FakeEOS@direct@victim@transfer@@zz") "hex";
  reject
    (swap "exploits=" "exploits=FakeEOS@direct@VICTIM@transfer@@6162")
    "bad name";
  reject
    (swap "exploits=" "exploits=FakeEOS@carrier@victim@transfer@@6162")
    "channel"

(* Extension flags (StateIo / FakeTransfer / AssetOverflow) are appended
   to the flags field only when fired, in canonical order; quiet ones
   leave the line byte-identical to a pre-extension build's. *)
let test_journal_extension_flags () =
  let legacy_line = Campaign.Journal.line_of_entry sample_entry in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Core.Scanner.string_of_flag f ^ " absent when quiet")
        false
        (contains ~sub:(Core.Scanner.string_of_flag f) legacy_line))
    Core.Scanner.extension_flags;
  let fired =
    [ Core.Scanner.Fake_eos; Core.Scanner.State_io;
      Core.Scanner.Asset_overflow ]
  in
  let entry =
    {
      sample_entry with
      Campaign.Journal.je_flags =
        List.map (fun f -> (f, List.mem f fired)) Core.Scanner.all_flags;
    }
  in
  let line = Campaign.Journal.line_of_entry entry in
  Alcotest.(check bool) "fired extensions serialised in canonical order" true
    (contains ~sub:"StateIo=1,AssetOverflow=1" line);
  match Campaign.Journal.entry_of_line line with
  | Error e -> Alcotest.fail ("extension round-trip failed: " ^ e)
  | Ok e ->
      Alcotest.(check bool) "normalised over all eight flags" true
        (e.Campaign.Journal.je_flags
        = List.map (fun f -> (f, List.mem f fired)) Core.Scanner.all_flags)

(* The extension grammar is parsed as strictly as the rest: an explicit
   [=0], a duplicate, an out-of-order pair or an unknown name is a
   corrupt line, never a value to guess at. *)
let test_journal_extension_strict () =
  let base = Campaign.Journal.line_of_entry sample_entry in
  let app suffix =
    match String.split_on_char '\t' base with
    | magic :: name :: flags :: rest ->
        String.concat "\t" (magic :: name :: (flags ^ suffix) :: rest)
    | _ -> assert false
  in
  reject (app ",StateIo=0") "only journaled when fired";
  reject (app ",StateIo=1,StateIo=1") "unknown, duplicate or out-of-order";
  reject (app ",FakeTransfer=1,StateIo=1") "unknown, duplicate or out-of-order";
  reject (app ",Bogus=1") "unknown, duplicate or out-of-order";
  match
    Campaign.Journal.entry_of_line
      (app ",StateIo=1,FakeTransfer=1,AssetOverflow=1")
  with
  | Error e -> Alcotest.fail ("canonical extension suffix rejected: " ^ e)
  | Ok e ->
      Alcotest.(check bool) "all extensions fired" true
        (List.for_all
           (fun f -> List.assoc f e.Campaign.Journal.je_flags)
           Core.Scanner.extension_flags)

(* Stamped v3 journals predate the adaptive-budget counter; resume must
   still accept them, reading the final budget as zero. *)
let test_journal_v3_budget_compat () =
  let v4 = Campaign.Journal.line_of_entry stamped_entry in
  let v3 =
    String.concat "\t"
      (String.split_on_char '\t' v4
      |> List.map (fun f ->
             if f = "wasai-journal-v4" then "wasai-journal-v3"
             else if String.length f > 7 && String.sub f 0 7 = "solver=" then
               String.concat ","
                 (List.filter
                    (fun p -> String.length p < 3 || String.sub p 0 3 <> "fb:")
                    (String.split_on_char ',' f))
             else f))
  in
  match Campaign.Journal.entry_of_line v3 with
  | Error e -> Alcotest.fail ("v3 line rejected: " ^ e)
  | Ok e ->
      Alcotest.(check int) "final budget reads as zero" 0
        e.Campaign.Journal.je_final_budget;
      Alcotest.(check bool) "stamp still parsed" true
        (e.Campaign.Journal.je_stamp <> None)

(* The magic picks the solver-field shape exactly: an fb counter on a
   v3 line, or a missing one on a v4 line, is a torn write, not a
   variant to guess at. *)
let test_journal_v4_strict () =
  let v4 = Campaign.Journal.line_of_entry stamped_entry in
  let swap f' =
    String.concat "\t" (String.split_on_char '\t' v4 |> List.map f')
  in
  reject
    (swap (fun f ->
         if f = "wasai-journal-v4" then "wasai-journal-v3" else f))
    "expected 5 counters, got 6";
  reject
    (swap (fun f ->
         if String.length f > 7 && String.sub f 0 7 = "solver=" then
           String.concat ","
             (List.filter
                (fun p -> String.length p < 3 || String.sub p 0 3 <> "fb:")
                (String.split_on_char ',' f))
         else f))
    "expected 6 counters, got 5";
  reject
    (swap (fun f ->
         if String.length f > 7 && String.sub f 0 7 = "solver=" then
           f ^ ",fb:banana"
         else f))
    "counters"

let test_journal_load_malformed () =
  let path = Filename.temp_file "wasai-test" ".journal" in
  let oc = open_out path in
  output_string oc (Campaign.Journal.line_of_entry sample_entry ^ "\n");
  output_string oc "this is not a journal line\n";
  close_out oc;
  (match Campaign.Journal.load path with
   | _ -> Alcotest.fail "corrupt journal accepted"
   | exception Campaign.Journal.Malformed msg ->
       Alcotest.(check bool)
         (Printf.sprintf "error %S names the line" msg)
         true
         (contains ~sub:":2:" msg));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Campaign runs over a generated corpus                                *)
(* ------------------------------------------------------------------ *)

let test_targets ~count =
  List.mapi
    (fun i (s : BG.Corpus.sample) ->
      let account =
        Name.of_string (Printf.sprintf "trgt%c" (Char.chr (Char.code 'a' + i)))
      in
      {
        Campaign.Campaign.sp_name = Name.to_string account;
        sp_size = 0;
        sp_load =
          (fun () ->
            {
              Core.Engine.tgt_account = account;
              tgt_module = s.BG.Corpus.smp_module;
              tgt_abi = s.BG.Corpus.smp_abi;
            });
      })
    (BG.Corpus.coverage_set ~count ())

let campaign_config ?journal ?resume ?max_targets ?shard ?corpus ~jobs () =
  Campaign.Campaign.make_config ~jobs ?journal ?resume ?max_targets ?shard
    ?corpus
    ~engine:(Core.Engine.make_config ~rounds:(6) ())
    ()

let temp_journal tag =
  let j = Filename.temp_file ("wasai-test-" ^ tag) ".journal" in
  Sys.remove j;
  j

let flag_sets (r : Campaign.Campaign.report) =
  List.map
    (fun (e : Campaign.Journal.entry) ->
      ( e.Campaign.Journal.je_name,
        List.filter_map (fun (f, b) -> if b then Some f else None)
          e.Campaign.Journal.je_flags ))
    r.Campaign.Campaign.cr_results

let test_make_config_validation () =
  (match campaign_config ~jobs:0 () with
   | _ -> Alcotest.fail "jobs = 0 accepted"
   | exception Invalid_argument _ -> ());
  match campaign_config ~resume:true ~jobs:1 () with
  | _ -> Alcotest.fail "resume without a journal accepted"
  | exception Invalid_argument _ -> ()

let test_parallel_parity () =
  let targets = test_targets ~count:8 in
  let serial = Campaign.Campaign.run (campaign_config ~jobs:1 ()) targets in
  let parallel = Campaign.Campaign.run (campaign_config ~jobs:4 ()) targets in
  Alcotest.(check int) "all targets fuzzed" 8
    (List.length parallel.Campaign.Campaign.cr_results);
  Alcotest.(check bool) "per-contract flag sets identical" true
    (flag_sets serial = flag_sets parallel);
  Alcotest.(check string) "canonical verdicts byte-identical"
    (Campaign.Campaign.verdicts_text serial)
    (Campaign.Campaign.verdicts_text parallel)

let test_resume () =
  let targets = test_targets ~count:8 in
  let uninterrupted =
    Campaign.Campaign.run (campaign_config ~jobs:2 ()) targets
  in
  let journal = temp_journal "resume" in
  (* "Kill" the campaign after 5 targets by budget, then resume. *)
  let interrupted =
    Campaign.Campaign.run
      (campaign_config ~journal ~max_targets:5 ~jobs:2 ())
      targets
  in
  Alcotest.(check int) "interrupted at 5" 5
    (List.length interrupted.Campaign.Campaign.cr_results);
  let resumed =
    Campaign.Campaign.run
      (campaign_config ~journal ~resume:true ~jobs:2 ())
      targets
  in
  Alcotest.(check int) "resume skips the journaled 5" 5
    resumed.Campaign.Campaign.cr_skipped;
  Alcotest.(check int) "resume completes the remaining 3" 3
    (List.length resumed.Campaign.Campaign.cr_results
     - resumed.Campaign.Campaign.cr_skipped);
  Alcotest.(check string) "merged report equals the uninterrupted run"
    (Campaign.Campaign.verdicts_text uninterrupted)
    (Campaign.Campaign.verdicts_text resumed);
  (* A journal appended to by a non-resume rerun holds duplicate lines per
     name; resume must collapse them, not double-count. *)
  let _rerun_without_resume =
    Campaign.Campaign.run (campaign_config ~journal ~jobs:1 ()) targets
  in
  let resumed_again =
    Campaign.Campaign.run
      (campaign_config ~journal ~resume:true ~jobs:1 ())
      targets
  in
  Alcotest.(check int) "duplicate journal lines collapse on resume" 8
    (List.length resumed_again.Campaign.Campaign.cr_results);
  Alcotest.(check string) "deduped resume still equals the uninterrupted run"
    (Campaign.Campaign.verdicts_text uninterrupted)
    (Campaign.Campaign.verdicts_text resumed_again);
  Sys.remove journal

let test_resume_rejects_corrupt_journal () =
  let targets = test_targets ~count:2 in
  let journal = Filename.temp_file "wasai-test" ".journal" in
  let oc = open_out journal in
  output_string oc "corrupted by a crash\n";
  close_out oc;
  (match
     Campaign.Campaign.run
       (campaign_config ~journal ~resume:true ~jobs:1 ())
       targets
   with
   | _ -> Alcotest.fail "campaign resumed from a corrupt journal"
   | exception Campaign.Journal.Malformed _ -> ());
  Sys.remove journal

(* Resuming under a different engine configuration would silently mix
   verdicts computed under different budgets; the stamp catches it. *)
let test_resume_rejects_mismatched_stamp () =
  let targets = test_targets ~count:4 in
  let journal = temp_journal "mismatch" in
  let _ = Campaign.Campaign.run (campaign_config ~journal ~jobs:1 ()) targets in
  let other_budget =
    Campaign.Campaign.make_config ~jobs:1 ~journal ~resume:true
      ~engine:(Core.Engine.make_config ~rounds:(7) ())
      ()
  in
  (match Campaign.Campaign.run other_budget targets with
   | _ -> Alcotest.fail "resumed a journal recorded under a different budget"
   | exception Failure msg ->
       Alcotest.(check bool) "refuses to mix configurations" true
         (contains ~sub:"refusing to mix configurations" msg));
  Sys.remove journal

let test_duplicate_names_rejected () =
  let t = List.hd (test_targets ~count:1) in
  match Campaign.Campaign.run (campaign_config ~jobs:1 ()) [ t; t ] with
  | _ -> Alcotest.fail "duplicate target names accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Seed corpus: warm reruns, scheduling, dry-run plans                  *)
(* ------------------------------------------------------------------ *)

module SeedCorpus = Wasai_corpus.Corpus

let temp_corpus tag =
  let p = Filename.temp_file ("wasai-test-" ^ tag) ".seeds" in
  Sys.remove p;
  p

(* The corpus acceptance bar: a cold campaign fills the corpus; warm
   reruns preload it, reproduce the cold flag verdicts byte-for-byte
   (on this fixed workload) and stay byte-identical across --jobs. *)
let test_corpus_warm_cold () =
  let targets = test_targets ~count:4 in
  let cold_file = temp_corpus "cold" in
  let cold =
    Campaign.Campaign.run (campaign_config ~corpus:cold_file ~jobs:2 ()) targets
  in
  Alcotest.(check bool) "cold run stored seeds" true
    (cold.Campaign.Campaign.cr_corpus_added > 0);
  Alcotest.(check int) "cold run preloaded nothing" 0
    cold.Campaign.Campaign.cr_corpus_preloaded;
  let w1 = temp_corpus "warm1" and w2 = temp_corpus "warm2" in
  SeedCorpus.save (SeedCorpus.load cold_file) w1;
  SeedCorpus.save (SeedCorpus.load cold_file) w2;
  let warm1 =
    Campaign.Campaign.run (campaign_config ~corpus:w1 ~jobs:1 ()) targets
  in
  let warm2 =
    Campaign.Campaign.run (campaign_config ~corpus:w2 ~jobs:2 ()) targets
  in
  Alcotest.(check int) "warm run preloads every stored seed"
    cold.Campaign.Campaign.cr_corpus_added
    warm1.Campaign.Campaign.cr_corpus_preloaded;
  Alcotest.(check string) "warm flags reproduce cold flags"
    (Campaign.Campaign.flags_text cold)
    (Campaign.Campaign.flags_text warm1);
  Alcotest.(check string) "warm verdicts byte-identical across jobs"
    (Campaign.Campaign.verdicts_text warm1)
    (Campaign.Campaign.verdicts_text warm2);
  List.iter Sys.remove [ cold_file; w1; w2 ]

let sized_targets sizes =
  List.map2
    (fun t size -> { t with Campaign.Campaign.sp_size = size })
    (test_targets ~count:(List.length sizes))
    sizes

(* jobs=1 drains the queue in order, so the journal's append order is
   the execution order: biggest module first (LPT), names as
   tie-break.  (The report's [cr_results] is name-sorted, so the
   journal file is the observable.) *)
let test_size_ordering () =
  let targets = sized_targets [ 10; 40; 20; 40 ] in
  let journal = temp_journal "lpt" in
  ignore (Campaign.Campaign.run (campaign_config ~journal ~jobs:1 ()) targets);
  let entries = Campaign.Journal.load journal in
  Sys.remove journal;
  Alcotest.(check (list string)) "biggest-first, ties by name"
    [ "trgtb"; "trgtd"; "trgtc"; "trgta" ]
    (List.map
       (fun (e : Campaign.Journal.entry) -> e.Campaign.Journal.je_name)
       entries)

let test_plan_dry_run () =
  let targets = sized_targets [ 10; 40; 20 ] in
  (* Seed a corpus with one target's worth of seeds. *)
  let corpus_file = temp_corpus "plan" in
  let c = SeedCorpus.create () in
  let seed_record cover =
    {
      SeedCorpus.rc_target = "trgtc";
      rc_action = Name.of_string "transfer";
      rc_args = [];
      rc_sig = Wasai_wasabi.Trace.edge_signature cover;
      rc_cover = cover;
      rc_new_edges = 1;
      rc_round = 0;
      rc_shard = (0, 1);
      rc_seed = 7L;
      rc_rounds = 6;
      rc_solver = Wasai_smt.Solver.stats_zero;
      rc_solver_budget = 0;
    }
  in
  ignore (SeedCorpus.add c (seed_record [ (1, 0l) ]));
  ignore (SeedCorpus.add c (seed_record [ (2, 1l) ]));
  SeedCorpus.save c corpus_file;
  let plan =
    Campaign.Campaign.plan
      (campaign_config ~corpus:corpus_file ~max_targets:2 ~jobs:2 ())
      targets
  in
  let row name =
    List.find
      (fun (r : Campaign.Campaign.plan_row) -> r.pr_name = name)
      plan.Campaign.Campaign.pl_rows
  in
  Alcotest.(check (option int)) "biggest target runs first" (Some 1)
    (row "trgtb").Campaign.Campaign.pr_order;
  Alcotest.(check (option int)) "second-biggest runs second" (Some 2)
    (row "trgtc").Campaign.Campaign.pr_order;
  Alcotest.(check (option int)) "smallest capped out" None
    (row "trgta").Campaign.Campaign.pr_order;
  Alcotest.(check int) "corpus preload counted" 2
    (row "trgtc").Campaign.Campaign.pr_preload;
  Alcotest.(check int) "no seeds for other targets" 0
    (row "trgtb").Campaign.Campaign.pr_preload;
  let text = Campaign.Campaign.plan_text plan in
  Alcotest.(check bool) "text mentions the cap" true
    (contains ~sub:"capped" text);
  Alcotest.(check bool) "text totals the preload" true
    (contains ~sub:"corpus preload: 2 seeds" text);
  (* Planning must not fuzz: nothing was loaded, no journal written. *)
  Alcotest.(check int) "plan covers every target" 3
    (List.length plan.Campaign.Campaign.pl_rows);
  Sys.remove corpus_file

(* ------------------------------------------------------------------ *)
(* Distributed sharding and journal merge                               *)
(* ------------------------------------------------------------------ *)

let run_shard ~count ~index ~journal targets =
  Campaign.Campaign.run
    (campaign_config ~journal
       ~shard:(Campaign.Shard.make ~index ~count)
       ~jobs:2 ())
    targets

(* The acceptance bar of the sharding redesign: fuzzing shard 0/2 and
   1/2 on "separate machines" (separate journals) and merging must
   reproduce the unsharded run's canonical verdict AND exploit-evidence
   sections byte-for-byte — evidence having round-tripped through the v3
   wire format on the way. *)
let test_shard_merge_identity () =
  let targets = test_targets ~count:8 in
  let unsharded = Campaign.Campaign.run (campaign_config ~jobs:2 ()) targets in
  let j0 = temp_journal "shard0" and j1 = temp_journal "shard1" in
  let r0 = run_shard ~count:2 ~index:0 ~journal:j0 targets in
  let r1 = run_shard ~count:2 ~index:1 ~journal:j1 targets in
  Alcotest.(check int) "slices cover the fleet" 8
    (r0.Campaign.Campaign.cr_requested + r1.Campaign.Campaign.cr_requested);
  Alcotest.(check bool) "both slices non-empty" true
    (r0.Campaign.Campaign.cr_requested > 0
     && r1.Campaign.Campaign.cr_requested > 0);
  (* Order of the journal arguments must not matter. *)
  let merged = Campaign.Campaign.merge [ j1; j0 ] in
  Alcotest.(check string) "verdicts byte-identical to the unsharded run"
    (Campaign.Campaign.verdicts_text unsharded)
    (Campaign.Campaign.verdicts_text merged);
  Alcotest.(check string) "exploit evidence byte-identical too"
    (Campaign.Campaign.evidence_text unsharded)
    (Campaign.Campaign.evidence_text merged);
  Alcotest.(check bool) "evidence section non-empty" true
    (String.length (Campaign.Campaign.evidence_text merged) > 0);
  Alcotest.(check bool) "every vulnerable target carries a payload" true
    (List.for_all
       (fun (e : Campaign.Journal.entry) ->
         (not (List.exists snd e.Campaign.Journal.je_flags))
         || e.Campaign.Journal.je_exploits <> [])
       merged.Campaign.Campaign.cr_results);
  Sys.remove j0;
  Sys.remove j1

let expect_merge_failure name journals frag =
  match Campaign.Campaign.merge journals with
  | _ -> Alcotest.fail (name ^ ": merge accepted an inconsistent fleet")
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" name msg frag)
        true (contains ~sub:frag msg)

let test_merge_validation () =
  let targets = test_targets ~count:8 in
  let j0 = temp_journal "val0" and j1 = temp_journal "val1" in
  let _ = run_shard ~count:2 ~index:0 ~journal:j0 targets in
  let _ = run_shard ~count:2 ~index:1 ~journal:j1 targets in
  expect_merge_failure "same slice twice" [ j0; j0 ] "overlapping";
  expect_merge_failure "missing slice" [ j0 ] "missing";
  (* A shard fuzzed under a different seed is a different fleet. *)
  let j2 = temp_journal "val2" in
  let other_seed =
    Campaign.Campaign.make_config ~jobs:1 ~journal:j2
      ~shard:(Campaign.Shard.make ~index:1 ~count:2)
      ~engine:
        (Core.Engine.make_config ~rounds:(6) ~rng_seed:(99L) ())
      ()
  in
  let _ = Campaign.Campaign.run other_seed targets in
  expect_merge_failure "seed mismatch" [ j0; j2 ]
    "different fleet configurations";
  (* Unstamped (v1/v2) entries cannot prove which slice they belong to. *)
  let j3 = temp_journal "val3" in
  let oc = open_out j3 in
  output_string oc (Campaign.Journal.line_of_entry sample_entry ^ "\n");
  close_out oc;
  expect_merge_failure "unstamped entries" [ j3 ] "no shard stamp";
  List.iter Sys.remove [ j0; j1; j2; j3 ]

(* ------------------------------------------------------------------ *)
(* Discovery                                                            *)
(* ------------------------------------------------------------------ *)

let test_account_of_filename () =
  let n s = Name.to_string (Campaign.Discover.account_of_filename s) in
  Alcotest.(check string) "plain" "lottery" (n "lottery.wasm");
  Alcotest.(check string) "digits and underscores map deterministically"
    (n "Contract_07.wasm") (n "contract.og.wat");
  Alcotest.(check bool) "truncated to 12" true
    (String.length (n "averyveryverylongcontractname.wasm") = 12)

(* Service-grade directory hardening: one bad upload must be skipped
   with a warning, never abort the scan. *)
let test_contract_files_skips_bad_entries () =
  let dir = Filename.temp_file "wasai-test-discover" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let write name contents =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "good.wasm" "\x00asm\x01\x00\x00\x00";
  write "good.wasm.abi" "transfer(from:name)";
  write "empty.wasm" "";
  write "notes.txt" "not a contract";
  Unix.mkdir (Filename.concat dir "subdir.wasm") 0o755;
  Alcotest.(check (list string))
    "only the usable contract survives" [ "good.wasm" ]
    (Campaign.Discover.contract_files dir);
  (* dir still discovers campaign targets from the survivors *)
  Alcotest.(check (list string))
    "dir targets match" [ "good" ]
    (List.map
       (fun (t : Campaign.Campaign.target_spec) -> t.Campaign.Campaign.sp_name)
       (Campaign.Discover.dir dir))

(* ------------------------------------------------------------------ *)
(* Sliced execution: partitioned round-space                            *)
(* ------------------------------------------------------------------ *)

module Slice = Core.Engine.Slice

let sliced_config ?journal ?resume ?corpus ?backend ~slices ~jobs () =
  Campaign.Campaign.make_config ~jobs ?journal ?resume ?corpus ~slices
    ~engine:(Core.Engine.make_config ~rounds:6 ?backend ())
    ()

let test_slice_partition_props () =
  Alcotest.(check int) "granularity caps at max_cells" Slice.max_cells
    (Slice.granularity ~rounds:100);
  Alcotest.(check int) "granularity is rounds when small" 6
    (Slice.granularity ~rounds:6);
  List.iter
    (fun (total, parts) ->
      let shares = List.init parts (Slice.share total parts) in
      Alcotest.(check int)
        (Printf.sprintf "shares of %d/%d sum to the total" total parts)
        total
        (List.fold_left ( + ) 0 shares);
      List.iteri
        (fun i sh ->
          Alcotest.(check int)
            (Printf.sprintf "part %d of %d/%d is contiguous" i total parts)
            (Slice.base total parts i + sh)
            (if i + 1 < parts then Slice.base total parts (i + 1) else total))
        shares)
    [ (8, 1); (8, 3); (6, 4); (200, 8); (7, 7) ]

(* Journal entry lines with the only wall-clock field zeroed: the
   byte-identity artefact for comparing journals across slicings. *)
let entry_lines journal =
  String.concat "\n"
    (List.map
       (fun (e : Campaign.Journal.entry) ->
         Campaign.Journal.line_of_entry
           { e with Campaign.Journal.je_elapsed = 0.0 })
       (Campaign.Journal.load journal))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The tentpole acceptance bar: for one round budget, every slicing K and
   every job count must merge to byte-identical verdicts, evidence,
   journal verdict lines and corpus additions — on both execution
   backends. *)
let test_slice_merge_identity () =
  let targets = test_targets ~count:3 in
  List.iter
    (fun backend ->
      let run_k k jobs =
        let journal = temp_journal "slice" and corpus = temp_corpus "slice" in
        let r =
          Campaign.Campaign.run
            (sliced_config ~journal ~corpus ~backend
               ~slices:(Campaign.Campaign.Fixed k) ~jobs ())
            targets
        in
        let lines = entry_lines journal and seeds = read_file corpus in
        Sys.remove journal;
        Sys.remove corpus;
        (r, lines, seeds)
      in
      let r1, lines1, seeds1 = run_k 1 1 in
      List.iter
        (fun (k, jobs) ->
          let rk, linesk, seedsk = run_k k jobs in
          let tag what =
            Printf.sprintf "%s identical (K=%d, jobs=%d, %s)" what k jobs
              (Core.Exec_backend.to_string backend)
          in
          Alcotest.(check string) (tag "verdicts")
            (Campaign.Campaign.verdicts_text r1)
            (Campaign.Campaign.verdicts_text rk);
          Alcotest.(check string) (tag "evidence")
            (Campaign.Campaign.evidence_text r1)
            (Campaign.Campaign.evidence_text rk);
          Alcotest.(check string) (tag "journal verdict lines") lines1 linesk;
          Alcotest.(check string) (tag "corpus additions") seeds1 seedsk)
        [ (2, 1); (2, 2); (4, 1); (4, 2) ])
    [ Core.Exec_backend.Interp; Core.Exec_backend.Compiled ]

(* Off is the legacy whole-target path; slicing re-cuts the round space
   into cells with their own RNG streams, so the contract across the two
   modes is verdict parity, not byte identity. *)
let test_slice_off_parity () =
  let targets = test_targets ~count:3 in
  let off =
    Campaign.Campaign.run
      (sliced_config ~slices:Campaign.Campaign.Off ~jobs:1 ())
      targets
  in
  let sliced =
    Campaign.Campaign.run
      (sliced_config ~slices:(Campaign.Campaign.Fixed 4) ~jobs:2 ())
      targets
  in
  Alcotest.(check string) "per-target flag verdicts agree"
    (Campaign.Campaign.flags_text off)
    (Campaign.Campaign.flags_text sliced)

(* Crash mid-slice-set: drop the final merged entry and one fragment
   from a K=4 journal, then resume.  The recorded K must be adopted
   (even under a different requested policy), only the missing slice
   re-run, and the final report must be byte-identical. *)
let test_slice_resume_mid_set () =
  let targets = test_targets ~count:2 in
  let journal = temp_journal "slice-resume" in
  let full =
    Campaign.Campaign.run
      (sliced_config ~journal ~slices:(Campaign.Campaign.Fixed 4) ~jobs:2 ())
      targets
  in
  let full_lines = entry_lines journal in
  (* Rewrite the journal as a crash would have left it: every line up to
     but excluding the last target's merged v4 entry, minus one of its
     fragments. *)
  let lines =
    String.split_on_char '\n' (read_file journal)
    |> List.filter (fun l -> l <> "")
  in
  let last_entry =
    List.filter (fun l -> not (contains ~sub:"slice=" l)) lines
    |> List.rev |> List.hd
  in
  let victim_name =
    match Campaign.Journal.entry_of_line last_entry with
    | Ok e -> e.Campaign.Journal.je_name
    | Error e -> Alcotest.fail e
  in
  let dropped_frag = ref false in
  let torn =
    List.filter
      (fun l ->
        if l = last_entry then false
        else if
          (not !dropped_frag)
          && contains ~sub:"slice=2/4" l
          && contains ~sub:("\t" ^ victim_name ^ "\t") l
        then (
          dropped_frag := true;
          false)
        else true)
      lines
  in
  Alcotest.(check bool) "one fragment dropped" true !dropped_frag;
  let oc = open_out journal in
  List.iter (fun l -> output_string oc (l ^ "\n")) torn;
  close_out oc;
  (* Off refuses: pending fragments need slicing to finish. *)
  (match
     Campaign.Campaign.run
       (sliced_config ~journal ~resume:true ~slices:Campaign.Campaign.Off
          ~jobs:1 ())
       targets
   with
  | _ -> Alcotest.fail "resumed fragments with slicing off"
  | exception Failure msg ->
      Alcotest.(check bool) "failure names the pending fragments" true
        (contains ~sub:"slice fragments" msg));
  (* Auto adopts the recorded K=4 and completes the set. *)
  let resumed =
    Campaign.Campaign.run
      (sliced_config ~journal ~resume:true ~slices:Campaign.Campaign.Auto
         ~jobs:2 ())
      targets
  in
  Alcotest.(check int) "one target resumed from fragments" 1
    (List.length resumed.Campaign.Campaign.cr_results
    - resumed.Campaign.Campaign.cr_skipped);
  Alcotest.(check string) "resumed journal byte-identical to uninterrupted"
    full_lines (entry_lines journal);
  Alcotest.(check string) "resumed verdicts byte-identical"
    (Campaign.Campaign.verdicts_text full)
    (Campaign.Campaign.verdicts_text resumed);
  Sys.remove journal

(* v4 journals (whole-target entries only) resume under a sliced policy:
   done targets stay done, fresh ones are sliced. *)
let test_slice_resume_v4_compat () =
  let targets = test_targets ~count:4 in
  let journal = temp_journal "slice-v4" in
  let _ =
    Campaign.Campaign.run
      (sliced_config ~journal ~slices:Campaign.Campaign.Off ~jobs:1 ())
      (List.filteri (fun i _ -> i < 2) targets)
  in
  let resumed =
    Campaign.Campaign.run
      (sliced_config ~journal ~resume:true
         ~slices:(Campaign.Campaign.Fixed 2) ~jobs:2 ())
      targets
  in
  Alcotest.(check int) "v4 entries satisfied the first two" 2
    resumed.Campaign.Campaign.cr_skipped;
  let unsliced =
    Campaign.Campaign.run
      (sliced_config ~slices:Campaign.Campaign.Off ~jobs:1 ())
      targets
  in
  Alcotest.(check string) "mixed-journal flags match the unsliced run"
    (Campaign.Campaign.flags_text unsliced)
    (Campaign.Campaign.flags_text resumed);
  Sys.remove journal

(* A real fragment (with interesting seeds, covers, verdicts) must
   round-trip the v5 wire format, and every strictness rule must fire. *)
let test_journal_v5_roundtrip_and_strict () =
  let target = List.hd (test_targets ~count:1) in
  let cfg = Core.Engine.make_config ~rounds:6 () in
  let frag =
    Slice.run ~cfg ~slice:0 ~count:2 (target.Campaign.Campaign.sp_load ())
  in
  let stamp =
    {
      Campaign.Journal.js_shard = Campaign.Shard.whole;
      js_seed = cfg.Core.Engine.cfg_rng_seed;
      js_rounds = cfg.Core.Engine.cfg_rounds;
    }
  in
  let jf =
    { Campaign.Journal.jf_name = "trgta"; jf_stamp = stamp; jf_frag = frag }
  in
  let line = Campaign.Journal.line_of_fragment jf in
  (match Campaign.Journal.fragment_of_line line with
  | Error e -> Alcotest.fail ("roundtrip rejected: " ^ e)
  | Ok parsed ->
      Alcotest.(check string) "reserialisation is the identity" line
        (Campaign.Journal.line_of_fragment parsed);
      Alcotest.(check int) "slice preserved" 0
        parsed.Campaign.Journal.jf_frag.Slice.fg_slice;
      Alcotest.(check int) "count preserved" 2
        parsed.Campaign.Journal.jf_frag.Slice.fg_count;
      Alcotest.(check bool) "interesting seeds survive" true
        (List.length parsed.Campaign.Journal.jf_frag.Slice.fg_interesting
        = List.length frag.Slice.fg_interesting));
  let fields = String.split_on_char '\t' line in
  let with_field i v =
    String.concat "\t" (List.mapi (fun j f -> if j = i then v else f) fields)
  in
  let expect_reject what mutated =
    match Campaign.Journal.fragment_of_line mutated with
    | Ok _ -> Alcotest.fail (what ^ ": malformed v5 line accepted")
    | Error _ -> ()
  in
  expect_reject "slice index out of range" (with_field 2 "slice=2/2");
  expect_reject "zero slice count" (with_field 2 "slice=0/0");
  expect_reject "slice count above granularity" (with_field 2 "slice=0/7");
  expect_reject "branch count not the cover union"
    (with_field 4 "branches=99");
  expect_reject "truncation without witness" (with_field 19 "trunc=3");
  expect_reject "field dropped"
    (String.concat "\t" (List.filteri (fun i _ -> i <> 5) fields));
  (* Forge the signature of the first interesting record: the parser
     recomputes it from the cover and must notice. *)
  (match
     List.find_opt (fun f -> String.length f > 12
                             && String.sub f 0 12 = "interesting=") fields
   with
  | Some f when f <> "interesting=-" ->
      let idx = ref (-1) in
      List.iteri (fun i g -> if g = f then idx := i) fields;
      (* Flip one hex digit of the recorded signature. *)
      let payload = String.sub f 12 (String.length f - 12) in
      (match String.index_opt payload '@' with
      | Some at ->
          let sig_start = at + 1 in
          let c = payload.[sig_start] in
          let flipped = if c = '0' then '1' else '0' in
          let payload' =
            String.mapi
              (fun i ch -> if i = sig_start then flipped else ch)
              payload
          in
          expect_reject "forged signature"
            (with_field !idx ("interesting=" ^ payload'))
      | None -> ())
  | _ -> ())

let () =
  Alcotest.run "wasai_campaign"
    [
      ( "histogram",
        [
          Alcotest.test_case "basic percentiles" `Quick test_hist_basic;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "wire rendering" `Quick test_hist_to_wire;
        ] );
      ( "work_queue",
        [
          Alcotest.test_case "fifo and close" `Quick test_queue_fifo_and_close;
          Alcotest.test_case "parallel drain" `Quick test_queue_parallel_drain;
          Alcotest.test_case "close wakes blocked takers (1/2/8 domains)"
            `Quick test_queue_close_wakes_blocked;
        ] );
      ( "shard",
        [
          Alcotest.test_case "partition for any N" `Quick test_shard_partition;
          Alcotest.test_case "hash pinned to FNV-1a 64" `Quick
            test_shard_hash_stable;
          Alcotest.test_case "i/N notation" `Quick test_shard_string;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "v1 lines still parse" `Quick
            test_journal_v1_compat;
          Alcotest.test_case "v3 roundtrip (stamp + exploits)" `Quick
            test_journal_v3_roundtrip;
          Alcotest.test_case "strict parse" `Quick test_journal_strict;
          Alcotest.test_case "strict v3 parse" `Quick test_journal_v3_strict;
          Alcotest.test_case "v3 budget compat" `Quick
            test_journal_v3_budget_compat;
          Alcotest.test_case "strict v4 parse" `Quick test_journal_v4_strict;
          Alcotest.test_case "extension flags round-trip" `Quick
            test_journal_extension_flags;
          Alcotest.test_case "strict extension grammar" `Quick
            test_journal_extension_strict;
          Alcotest.test_case "load rejects malformed" `Quick
            test_journal_load_malformed;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "config validation" `Quick
            test_make_config_validation;
          Alcotest.test_case "parallel/serial parity" `Quick test_parallel_parity;
          Alcotest.test_case "interrupt and resume" `Quick test_resume;
          Alcotest.test_case "corrupt journal rejected" `Quick
            test_resume_rejects_corrupt_journal;
          Alcotest.test_case "mismatched stamp rejected" `Quick
            test_resume_rejects_mismatched_stamp;
          Alcotest.test_case "duplicate names rejected" `Quick
            test_duplicate_names_rejected;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "warm rerun reproduces cold verdicts" `Quick
            test_corpus_warm_cold;
          Alcotest.test_case "biggest-first scheduling" `Quick
            test_size_ordering;
          Alcotest.test_case "dry-run plan" `Quick test_plan_dry_run;
        ] );
      ( "merge",
        [
          Alcotest.test_case "2-shard merge is byte-identical" `Quick
            test_shard_merge_identity;
          Alcotest.test_case "inconsistent fleets rejected" `Quick
            test_merge_validation;
        ] );
      ( "slices",
        [
          Alcotest.test_case "balanced partition properties" `Quick
            test_slice_partition_props;
          Alcotest.test_case "K in {1,2,4} merges byte-identical (both backends)"
            `Quick test_slice_merge_identity;
          Alcotest.test_case "off/sliced verdict parity" `Quick
            test_slice_off_parity;
          Alcotest.test_case "resume mid-slice-set" `Quick
            test_slice_resume_mid_set;
          Alcotest.test_case "v4 journal resumes under slicing" `Quick
            test_slice_resume_v4_compat;
          Alcotest.test_case "v5 roundtrip and strictness" `Quick
            test_journal_v5_roundtrip_and_strict;
        ] );
      ( "discover",
        [
          Alcotest.test_case "account derivation" `Quick test_account_of_filename;
          Alcotest.test_case "bad entries skipped, not fatal" `Quick
            test_contract_files_skips_bad_entries;
        ] );
    ]
