lib/wasm/text.mli: Ast
