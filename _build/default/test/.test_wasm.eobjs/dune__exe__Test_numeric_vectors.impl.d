test/test_numeric_vectors.ml: Alcotest Ast Float Int32 Int64 Interp List Printf QCheck QCheck_alcotest Types Values Wasai_smt Wasai_wasm
