test/test_eosio.ml: Abi Action Alcotest Asset Chain Database Fun Host Int64 List Name QCheck QCheck_alcotest Queue String Token Wasai_eosio Wasai_support Wasai_wasm
