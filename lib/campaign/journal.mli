(** Crash-safe campaign journal: one line per completed target, appended
    under a lock and fsync'd before the write is acknowledged, so a killed
    campaign can be resumed from exactly the set of targets whose results
    reached disk.

    The format is versioned and parsed strictly: any line that is not a
    well-formed record (including a line torn by a crash mid-write) makes
    {!load} raise {!Malformed} with the offending path, line number and
    reason — a corrupt journal is never silently skipped over.

    Stamped entries are written as v4 lines, which extend the v2 format
    (trailing [solver=] counters) with the campaign provenance stamp
    ([shard=i/N], the engine root [seed=], the round [budget=]), the
    serialized exploit payloads behind every positive verdict
    ([exploits=]), and — new in v4 — the engine's final adaptively
    retuned solver conflict budget as a sixth [fb:] counter inside the
    [solver=] field.  The stamp is what lets
    {!Campaign.merge} check that shard journals from different machines
    belong to one consistent fleet configuration; the exploit records are
    what lets a resumed or merged report replay evidence.  The parser
    additionally accepts v3 (16-field, 5 solver counters), v2 (12-field)
    and v1 (11-field) lines, whose absent counters read as zero and whose
    absent stamp/exploits read as none, so old journals still resume.

    Sliced campaigns add a fifth line format: a 20-field v5 {e fragment}
    line per completed slice ([slice=i/K] provenance, the slice's
    verdict flags, counters, exploit payloads and interesting seeds),
    journaled the moment the slice finishes so a crash loses at most
    in-flight slices.  Once a target's whole slice set is on disk the
    merged result is appended as a standard v4 entry — byte-identical to
    the unpartitioned line — so v3/v4 consumers (merge, report, resume)
    keep working; resume reconstructs partially-completed slice sets
    from the fragment lines.  v5 parsing is as strict as the rest:
    besides per-field validation, the interesting-seed covers must
    recompute to their recorded signatures and union to the recorded
    branch count. *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver

(** Campaign provenance of an entry, recorded so that merges can reject
    journals produced under different configurations (different seeds or
    budgets yield different verdicts for the same target). *)
type stamp = {
  js_shard : Shard.t;  (** the slice this entry was fuzzed under *)
  js_seed : int64;  (** engine [cfg_rng_seed] *)
  js_rounds : int;  (** engine [cfg_rounds] budget *)
}

(** One completed target: its verdicts plus the deterministic outcome
    counters (everything of {!Core.Engine.outcome} that the campaign
    report aggregates).  [je_elapsed] is wall-clock and is the only
    scheduling-dependent field; report canonicalisation excludes it. *)
type entry = {
  je_name : string;  (** target name (unique within a campaign) *)
  je_flags : (Core.Scanner.flag * bool) list;
      (** normalised over {!Core.Scanner.all_flags} in order (parsed
          lines default absent extension flags to [false]) *)
  je_branches : int;
  je_rounds : int;
  je_seeds_total : int;
  je_adaptive_seeds : int;
  je_transactions : int;
  je_solver_sat : int;
  je_imprecise : int;
  je_elapsed : float;  (** seconds spent fuzzing this target *)
  je_solver : Solver.stats;
      (** per-target solver/cache counters (zero when parsed from a v1
          line) *)
  je_final_budget : int;
      (** the engine's final adaptive solver conflict budget
          ({!Core.Engine.outcome.out_final_budget}; 0 when parsed from a
          pre-v4 line) *)
  je_stamp : stamp option;  (** [None] when parsed from a v1/v2 line *)
  je_exploits : (Core.Scanner.flag * Core.Scanner.evidence) list;
      (** exploit payload behind each positive verdict, in canonical flag
          order (empty when parsed from a v1/v2 line) *)
}

val of_outcome :
  name:string -> elapsed:float -> ?stamp:stamp -> Core.Engine.outcome -> entry
(** Exploit payloads are carried over from the outcome in canonical flag
    order; pass [~stamp] (campaign runs always do) to make them
    persistable — {!line_of_entry} only serialises exploits on stamped v3
    lines. *)

val line_of_entry : entry -> string
(** Single-line record, no trailing newline: 16-field v4 when
    [je_stamp] is present, legacy 12-field v2 otherwise (in which case
    [je_exploits] and [je_final_budget] are not serialised). *)

val entry_of_line : string -> (entry, string) result
(** Accepts v1 (11 fields), v2 (12), v3 (16, 5 solver counters) and v4
    (16, 6 solver counters) lines; each field is validated strictly. *)

(** One completed slice of a partitioned target, as journaled on a v5
    line.  [jf_stamp.js_rounds] is the {e full} per-target budget — the
    value cell reconstruction and fleet validation key on — while the
    fragment's own [fg_rounds] counts the rounds its slice actually
    ran. *)
type fragment = {
  jf_name : string;
  jf_stamp : stamp;
  jf_frag : Core.Engine.Slice.fragment;
}

val line_of_fragment : fragment -> string
(** Single-line 20-field v5 record, no trailing newline.  [fg_custom]
    and [fg_timeline] are not serialised (neither reaches a journal
    entry); a parsed fragment reads them back empty. *)

val fragment_of_line : string -> (fragment, string) result
(** Strict inverse of {!line_of_fragment}: wrong magic or field count, a
    slice index outside [0..K-1], a K above the budget's granularity, an
    interesting record whose signature does not recompute from its
    cover, a duplicate signature, a [branches=] count that is not the
    cardinality of the union of the covers, or a positive truncation
    count without its witness all reject the line. *)

(** File-level provenance, stamped once as the first line of a fresh
    journal ([wasai-journal-hdr] followed by [backend=interp|compiled|auto]):
    the execution backend the fleet ran under.  Verdicts are
    backend-invariant by contract, but a resume mixing tiers would make
    that contract unauditable, so — like the per-entry (seed, budget)
    stamp — resume refuses a mismatch.  Entry lines are unchanged: a v4
    line is byte-identical whichever backend produced it, and headerless
    legacy journals still load.

    [jh_telemetry] stamps whether span profiling was on, so a resume
    cannot silently flip it and skew the report's per-stage breakdown.
    Off is the default and writes the legacy two-field line byte for
    byte; [telemetry=on] appends a third field. *)
type header = {
  jh_backend : Core.Exec_backend.choice;
  jh_telemetry : bool;
}

val line_of_header : header -> string
val header_of_line : string -> (header, string) result

exception Malformed of string
(** Raised by {!load}; the message carries path, 1-based line number and
    reason. *)

val load : string -> entry list
(** All entries, in file order (skipping a leading header line).  Raises
    {!Malformed} on any bad line and [Sys_error] if the file cannot be
    read. *)

val load_with_header : string -> header option * entry list
(** Like {!load}, also returning the header when the file starts with
    one ([None] on headerless legacy journals).  A header line anywhere
    but line 1 raises {!Malformed}. *)

val load_full : string -> header option * entry list * fragment list
(** Everything in the file: header, entries and v5 slice fragments, each
    list in file order.  {!load} and {!load_with_header} are projections
    of this (they still {e validate} fragment lines — a torn v5 line
    raises {!Malformed} everywhere — but drop them), so entry-level
    consumers like merge and report see a sliced journal as exactly its
    completed targets. *)

(** Append-side handle; [append] serialises concurrent writers with an
    internal mutex and fsyncs after every line. *)
type writer

val open_writer : ?header:header -> string -> writer
(** Opens (creating if needed) in append mode: resuming a campaign keeps
    the prior entries and extends the same file.  [header] is written
    (and fsync'd) as the first line of freshly-created files only —
    existing files are never rewritten, and resume is expected to have
    validated their header already. *)

val append : writer -> entry -> unit

val append_fragment : writer -> fragment -> unit
(** Same fsync-before-acknowledge discipline as {!append}: a slice only
    counts as done once its fragment line is durable. *)

val close_writer : writer -> unit
