lib/symbolic/memmodel.mli: Wasai_smt
