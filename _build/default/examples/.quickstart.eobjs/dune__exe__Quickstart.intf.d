examples/quickstart.mli:
