lib/wasabi/instrument.ml: Array Int32 List Option Trace Wasai_eosio Wasai_wasm
