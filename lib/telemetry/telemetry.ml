type stage =
  | Load_validate
  | Instrument
  | Compile
  | Exec_interp
  | Exec_compiled
  | Trace_scan
  | Oracle
  | Solver_quick
  | Solver_blast
  | Solver_cache
  | Corpus_io
  | Journal_fsync

let stages =
  [
    Load_validate;
    Instrument;
    Compile;
    Exec_interp;
    Exec_compiled;
    Trace_scan;
    Oracle;
    Solver_quick;
    Solver_blast;
    Solver_cache;
    Corpus_io;
    Journal_fsync;
  ]

let n_stages = List.length stages

(* Constant constructors compile to their declaration index; the match
   keeps that mapping honest without a runtime cost. *)
let index = function
  | Load_validate -> 0
  | Instrument -> 1
  | Compile -> 2
  | Exec_interp -> 3
  | Exec_compiled -> 4
  | Trace_scan -> 5
  | Oracle -> 6
  | Solver_quick -> 7
  | Solver_blast -> 8
  | Solver_cache -> 9
  | Corpus_io -> 10
  | Journal_fsync -> 11

let stage_name = function
  | Load_validate -> "load_validate"
  | Instrument -> "instrument"
  | Compile -> "compile"
  | Exec_interp -> "exec_interp"
  | Exec_compiled -> "exec_compiled"
  | Trace_scan -> "trace_scan"
  | Oracle -> "oracle"
  | Solver_quick -> "solver_quick"
  | Solver_blast -> "solver_blast"
  | Solver_cache -> "solver_cache"
  | Corpus_io -> "corpus_io"
  | Journal_fsync -> "journal_fsync"

external now_ns : unit -> (int[@untagged])
  = "wasai_now_ns_byte" "wasai_now_ns_native"
[@@noalloc]

(* ------------------------------------------------------------------ *)
(* Per-domain recorders                                                *)
(* ------------------------------------------------------------------ *)

let ring_bits = 14
let ring_capacity = 1 lsl ring_bits (* 16384 spans, 512 KiB per domain *)
let ring_mask = ring_capacity - 1

type recorder = {
  (* The span ring: four parallel int arrays, one slot per span, oldest
     overwritten on wrap.  [ring_pos] counts spans ever recorded. *)
  ring_stage : int array;
  ring_target : int array;
  ring_start : int array;
  ring_dur : int array;
  mutable ring_pos : int;
  (* Exact running aggregates, bumped in place on every span. *)
  stage_count : int array; (* [n_stages] *)
  stage_ns : int array;
  mutable tgt_count : int array array; (* [n_stages][targets], grown cold *)
  mutable tgt_ns : int array array;
  mutable cur_target : int;
}

let fresh_recorder () =
  {
    ring_stage = Array.make ring_capacity 0;
    ring_target = Array.make ring_capacity 0;
    ring_start = Array.make ring_capacity 0;
    ring_dur = Array.make ring_capacity 0;
    ring_pos = 0;
    stage_count = Array.make n_stages 0;
    stage_ns = Array.make n_stages 0;
    tgt_count = Array.init n_stages (fun _ -> Array.make 1 0);
    tgt_ns = Array.init n_stages (fun _ -> Array.make 1 0);
    cur_target = 0;
  }

(* Global state: the on/off switch, the recorder registry and the target
   intern table.  All cold-path mutations take [lock]; the hot path only
   reads [switched_on] and writes its own domain's recorder. *)

let switched_on = Atomic.make false
let lock = Mutex.create ()
let recorders : recorder list ref = ref []
let target_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let target_names : string list ref = ref [] (* reverse order, sans id 0 *)
let target_next = ref 1

let key =
  Domain.DLS.new_key (fun () ->
      let r = fresh_recorder () in
      Mutex.protect lock (fun () -> recorders := r :: !recorders);
      r)

let enable () = Atomic.set switched_on true
let disable () = Atomic.set switched_on false
let enabled () = Atomic.get switched_on

let reset () =
  Mutex.protect lock (fun () ->
      List.iter
        (fun r ->
          r.ring_pos <- 0;
          Array.fill r.stage_count 0 n_stages 0;
          Array.fill r.stage_ns 0 n_stages 0;
          r.tgt_count <- Array.init n_stages (fun _ -> Array.make 1 0);
          r.tgt_ns <- Array.init n_stages (fun _ -> Array.make 1 0);
          r.cur_target <- 0)
        !recorders;
      Hashtbl.reset target_tbl;
      target_names := [];
      target_next := 1)

(* ------------------------------------------------------------------ *)
(* Hot path                                                            *)
(* ------------------------------------------------------------------ *)

let start () = if Atomic.get switched_on then now_ns () else 0

let stop st t0 =
  if t0 <> 0 then begin
    let dur = now_ns () - t0 in
    let dur = if dur < 0 then 0 else dur in
    let r = Domain.DLS.get key in
    let s = index st in
    let slot = r.ring_pos land ring_mask in
    r.ring_stage.(slot) <- s;
    r.ring_target.(slot) <- r.cur_target;
    r.ring_start.(slot) <- t0;
    r.ring_dur.(slot) <- dur;
    r.ring_pos <- r.ring_pos + 1;
    r.stage_count.(s) <- r.stage_count.(s) + 1;
    r.stage_ns.(s) <- r.stage_ns.(s) + dur;
    let row = r.tgt_count.(s) in
    let t = r.cur_target in
    if t < Array.length row then begin
      row.(t) <- row.(t) + 1;
      r.tgt_ns.(s).(t) <- r.tgt_ns.(s).(t) + dur
    end
  end

(* ------------------------------------------------------------------ *)
(* Target attribution (cold path)                                      *)
(* ------------------------------------------------------------------ *)

let no_target = 0

let target_id name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt target_tbl name with
      | Some id -> id
      | None ->
          let id = !target_next in
          incr target_next;
          Hashtbl.replace target_tbl name id;
          target_names := name :: !target_names;
          id)

let grow rows want =
  Array.map
    (fun row ->
      let n = Array.length row in
      if want <= n then row
      else begin
        let bigger = Array.make (max want (2 * n)) 0 in
        Array.blit row 0 bigger 0 n;
        bigger
      end)
    rows

let set_target id =
  let r = Domain.DLS.get key in
  if id >= Array.length r.tgt_count.(0) then begin
    r.tgt_count <- grow r.tgt_count (id + 1);
    r.tgt_ns <- grow r.tgt_ns (id + 1)
  end;
  r.cur_target <- id

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  ts_spans : int;
  ts_stages : (stage * int * int) list;
  ts_targets : (string * (stage * int * int) list) list;
}

let snapshot () =
  Mutex.protect lock (fun () ->
      let rs = !recorders in
      let spans = List.fold_left (fun acc r -> acc + r.ring_pos) 0 rs in
      let count = Array.make n_stages 0 and ns = Array.make n_stages 0 in
      List.iter
        (fun r ->
          for s = 0 to n_stages - 1 do
            count.(s) <- count.(s) + r.stage_count.(s);
            ns.(s) <- ns.(s) + r.stage_ns.(s)
          done)
        rs;
      let names = List.rev !target_names in
      let per_target =
        List.mapi
          (fun i name ->
            let id = i + 1 in
            let rows =
              List.filter_map
                (fun st ->
                  let s = index st in
                  let c, n =
                    List.fold_left
                      (fun (c, n) r ->
                        if id < Array.length r.tgt_count.(s) then
                          (c + r.tgt_count.(s).(id), n + r.tgt_ns.(s).(id))
                        else (c, n))
                      (0, 0) rs
                  in
                  if c = 0 then None else Some (st, c, n))
                stages
            in
            (name, rows))
          names
      in
      {
        ts_spans = spans;
        ts_stages = List.map (fun st -> (st, count.(index st), ns.(index st))) stages;
        ts_targets = List.filter (fun (_, rows) -> rows <> []) per_target;
      })

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let seconds ns = float_of_int ns /. 1e9

let report_text (s : snapshot) =
  let b = Buffer.create 1024 in
  let total_ns =
    List.fold_left (fun acc (_, _, ns) -> acc + ns) 0 s.ts_stages
  in
  Buffer.add_string b
    (Printf.sprintf "telemetry: %d spans, %.3fs instrumented time\n" s.ts_spans
       (seconds total_ns));
  Buffer.add_string b "per-stage critical path:\n";
  let busy =
    List.filter (fun (_, c, _) -> c > 0) s.ts_stages
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  in
  List.iter
    (fun (st, c, ns) ->
      let share =
        if total_ns = 0 then 0. else 100. *. float_of_int ns /. float_of_int total_ns
      in
      Buffer.add_string b
        (Printf.sprintf "  %-14s %8d spans  %9.3fs  %8.3fms/span  %5.1f%%\n"
           (stage_name st) c (seconds ns)
           (if c = 0 then 0. else seconds ns *. 1000. /. float_of_int c)
           share))
    busy;
  if s.ts_targets <> [] then begin
    Buffer.add_string b "per-target hotspots:\n";
    let tagged =
      List.map
        (fun (name, rows) ->
          let t = List.fold_left (fun acc (_, _, ns) -> acc + ns) 0 rows in
          (name, rows, t))
        s.ts_targets
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    in
    List.iter
      (fun (name, rows, t) ->
        let top =
          List.sort (fun (_, _, a) (_, _, b) -> compare b a) rows
          |> List.filteri (fun i _ -> i < 3)
          |> List.map (fun (st, _, ns) ->
                 Printf.sprintf "%s %.1f%%" (stage_name st)
                   (if t = 0 then 0.
                    else 100. *. float_of_int ns /. float_of_int t))
          |> String.concat ", "
        in
        Buffer.add_string b
          (Printf.sprintf "  %-13s %9.3fs  %s\n" name (seconds t) top))
      tagged
  end;
  Buffer.contents b

let prometheus (s : snapshot) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "# HELP wasai_stage_seconds_total Instrumented time per pipeline stage.\n";
  Buffer.add_string b "# TYPE wasai_stage_seconds_total counter\n";
  List.iter
    (fun (st, _, ns) ->
      Buffer.add_string b
        (Printf.sprintf "wasai_stage_seconds_total{stage=\"%s\"} %.6f\n"
           (stage_name st) (seconds ns)))
    s.ts_stages;
  Buffer.add_string b
    "# HELP wasai_stage_spans_total Recorded spans per pipeline stage.\n";
  Buffer.add_string b "# TYPE wasai_stage_spans_total counter\n";
  List.iter
    (fun (st, c, _) ->
      Buffer.add_string b
        (Printf.sprintf "wasai_stage_spans_total{stage=\"%s\"} %d\n"
           (stage_name st) c))
    s.ts_stages;
  Buffer.contents b
