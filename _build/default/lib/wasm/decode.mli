(** Decoder for the Wasm binary format, the inverse of {!Encode}. *)

exception Decode_error of int * string
(** Byte offset and message of the first malformed construct. *)

type stream
(** Byte-stream cursor (exposed for tests of the LEB128 primitives). *)

val of_string : ?pos:int -> ?limit:int -> string -> stream
val u64 : stream -> int64
val u32 : stream -> int
val s64 : stream -> int64

val decode : string -> Ast.module_
(** Decode a complete binary module. *)
