(** Parallel fuzzing-campaign orchestrator.

    Drives {!Core.Engine.fuzz} over an arbitrary set of contracts: a
    shared {!Work_queue} drained by N OCaml domains, an optional
    crash-safe {!Journal} enabling resumption after a kill, and an
    aggregation layer merging per-target outcomes into a fleet report.

    Fleet scale comes from {!Shard}: a run configured with
    [shard = i/N] fuzzes only the targets whose stable name hash lands in
    slice [i], so N machines given the same directory and the same engine
    configuration partition the fleet with no coordination; their
    journals — each entry stamped with its (shard, seed, budget)
    provenance — recombine through {!merge} into the same canonical
    report an unsharded run would have produced.

    Determinism: per-target verdicts depend only on
    [(cfg_engine.cfg_rng_seed, target)] — the engine seeds each target's
    RNG from its account name (see {!Core.Engine.fuzz}) — and the report
    is canonicalised by target name, so {!verdicts_text} and
    {!evidence_text} are byte-identical for any [cc_jobs], any
    scheduling, and any sharding of the same target set, provided
    [cc_engine.cfg_time_limit = None]. *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver
module Metrics = Wasai_support.Metrics
module Corpus = Wasai_corpus.Corpus

(** Intra-target parallelism policy: how a fresh target's round budget
    is partitioned into independently schedulable slices
    ({!Core.Engine.Slice}).  [Off] (the default) is the legacy
    whole-target path, byte-identical to previous releases including the
    journal (no v5 fragment lines are written).  [Fixed k] splits every
    fresh target into [min k granularity] slices.  [Auto] lets the
    scheduler decide per target: with at least two whole targets per
    worker domain LPT already saturates the fleet, so nothing is sliced;
    on a shallow queue each target gets a K proportional to its share of
    the remaining work.  Whatever the policy and K, merged results are
    byte-identical to the unpartitioned [Off] run of the same budget —
    slicing affects wall-clock only. *)
type slicing = Off | Auto | Fixed of int

val string_of_slicing : slicing -> string
(** ["off"], ["auto"] or the decimal K. *)

val slicing_of_string : string -> (slicing, string) result
(** Inverse of {!string_of_slicing}; any positive integer parses as
    [Fixed]. *)

type target_spec = {
  sp_name : string;
      (** campaign-unique identity; doubles as the deployment account, so
          it must be a valid EOSIO name (the RNG seed derives from it) *)
  sp_size : int;
      (** module byte size (0 when unknown) — the long-tail scheduling
          heuristic: fresh targets are enqueued biggest-first (LPT), so
          one huge contract never serialises the campaign tail.  Affects
          only scheduling, never verdicts. *)
  sp_load : unit -> Core.Engine.target;
      (** called in the worker domain, so parsing/generation cost is paid
          in parallel too *)
}

type config = {
  cc_jobs : int;  (** worker domains, including the calling one; >= 1 *)
  cc_engine : Core.Engine.config;
  cc_journal : string option;  (** append completed targets here *)
  cc_resume : bool;
      (** skip targets already present in [cc_journal]; their journal
          entries are merged into the final report *)
  cc_max_targets : int option;
      (** stop after this many fresh targets (simulates an interrupted
          campaign; also the smoke-test budget) *)
  cc_progress : (Journal.entry -> unit) option;
      (** called under the campaign lock after each completed target *)
  cc_shard : Shard.t;
      (** restrict the run to this slice of the fleet
          ({!Shard.whole} = everything) *)
  cc_corpus : string option;
      (** persistent seed-corpus file ({!Corpus}): loaded once at campaign
          start to preload each fresh target's queue with its stored
          interesting seeds, and appended to (crash-safely, under the
          campaign lock) with every new coverage-bearing seed this run
          discovers.  The file need not exist yet. *)
  cc_telemetry : bool;
      (** enable {!Wasai_telemetry.Telemetry} span recording for the
          run (flipped before any worker spawns) and stamp the journal
          header with [telemetry=on] so resumes agree.  Off (the
          default) leaves journals, reports and verdicts byte-identical
          to a build without telemetry. *)
  cc_slices : slicing;
      (** partition fresh targets' round budgets into parallel slices;
          {!run} journals each completed slice as a v5 fragment line and
          appends the merged (byte-identical) v4 entry once the set is
          complete.  Resume adopts the recorded K of any
          partially-completed slice set, and refuses to resume a
          journal holding pending fragments when set to [Off]. *)
}

val make_config :
  jobs:int ->
  ?journal:string ->
  ?resume:bool ->
  ?max_targets:int ->
  ?progress:(Journal.entry -> unit) ->
  ?shard:Shard.t ->
  ?corpus:string ->
  ?telemetry:bool ->
  ?slices:slicing ->
  engine:Core.Engine.config ->
  unit ->
  config
(** The only supported way to build a {!config}: validates at
    construction time instead of deep inside {!run}.  Raises
    [Invalid_argument] when [jobs < 1], when [resume] is requested
    without a [journal], or when [slices] is [Fixed k] with [k < 1].
    [resume] defaults to [false], [shard] to {!Shard.whole},
    [telemetry] to [false], [slices] to [Off]; [journal],
    [max_targets], [progress] and [corpus] default to absent. *)

type report = {
  cr_results : Journal.entry list;  (** sorted by target name *)
  cr_requested : int;  (** targets in this run's (shard-filtered) input set *)
  cr_skipped : int;  (** satisfied from the journal instead of re-fuzzed *)
  cr_jobs : int;  (** 0 for a report built purely from journals *)
  cr_wall : float;  (** campaign wall-clock, seconds *)
  cr_shard : Shard.t;  (** the slice this report covers *)
  cr_corpus_preloaded : int;
      (** corpus seeds handed to fresh targets' queues before generation *)
  cr_corpus_added : int;
      (** new seeds this run appended to the corpus (post-dedupe) *)
}

val run : config -> target_spec list -> report
(** Raises [Invalid_argument] on duplicate target names,
    {!Journal.Malformed} when resuming from a corrupt journal,
    {!Corpus.Malformed} when [cc_corpus] exists but is corrupt, and
    [Failure] when a resumed journal was stamped under a different
    (shard, seed, budget) configuration or when a target's load/fuzz
    raised (after all workers have drained; the journal keeps every
    target completed before the failure).

    Targets outside [cc_shard] are filtered out before anything else:
    they are not fuzzed, not journaled, and not counted in
    [cr_requested].  Fresh targets are fuzzed biggest-first ([sp_size]
    descending, name ascending on ties).

    With [cc_corpus] set, each fresh target's engine queue is preloaded
    with the corpus seeds stored for it ({!Corpus.preload}), and every
    interesting seed the engine reports is deduped into the corpus and
    appended to the file {e before} the target's journal line — a
    journaled target is never re-fuzzed on resume, so its seeds must
    already be durable.  Preloads are resolved from the corpus file as
    it stood at campaign start, so verdicts remain a pure function of
    (engine seed, target, corpus state): {!verdicts_text} is still
    byte-identical across [cc_jobs] for a fixed starting corpus. *)

val stamp_of_config : config -> Journal.stamp
(** The (shard, seed, budget) provenance every journal entry of a run
    under [config] carries. *)

val validate_entries :
  context:string -> Journal.stamp -> Journal.entry list -> unit
(** Check that every stamped entry was recorded under exactly this
    (shard, seed, budget) provenance — {!run}'s resume discipline,
    exported for external journal owners (the serve tenant registry).
    Raises [Failure] (prefixed with [context]) on the first mismatch;
    unstamped v1/v2 entries pass, as in {!run}. *)

val validate_fragments :
  context:string -> Journal.stamp -> Journal.fragment list -> unit
(** The v5 counterpart of {!validate_entries}: every slice fragment must
    carry exactly this (shard, seed, budget) provenance (fragments are
    always stamped).  Raises [Failure] (prefixed with [context]) on the
    first mismatch. *)

val group_fragments :
  context:string ->
  Journal.fragment list ->
  (string, int * (int, Core.Engine.Slice.fragment) Hashtbl.t) Hashtbl.t
(** Reconstruct partially-completed slice sets from journaled fragments:
    name to (K, slice-indexed fragments).  Later lines win per
    (name, slice), matching the last-entry-wins discipline for duplicate
    entries; raises [Failure] (prefixed with [context]) when one name
    carries fragments of two different Ks.  {!run}'s resume path,
    exported for external journal owners (the serve tenant registry). *)

val validate_header :
  context:string ->
  ?telemetry:bool ->
  Core.Exec_backend.choice ->
  Journal.header option ->
  unit
(** Check that the journal's file-level backend header matches this
    run's execution tier — the backend counterpart of
    {!validate_entries}, applied on resume.  The comparison is strict
    choice equality ([Auto] and [Compiled] are distinct stamps even
    though they execute identically).  [telemetry] (default [false])
    must likewise match the header's [telemetry=] stamp, so a resumed
    report's per-stage breakdown covers every journaled target or none.
    Raises [Failure] (prefixed with [context]) on mismatch; headerless
    legacy journals pass. *)

val corpus_records_of :
  name:string -> Journal.stamp -> Core.Engine.outcome -> Corpus.record list
(** The corpus records a completed target contributes: one per
    interesting seed in the outcome, stamped with the run's provenance.
    What {!run} appends to [cc_corpus]; exported so external
    orchestrators (serve) persist seeds under the same schema. *)

val of_entries : Journal.entry list -> report
(** Wrap already-journaled entries as a report without fuzzing anything
    ([cr_jobs = 0]; every entry counts as skipped).  Duplicate entries per
    name collapse to the last, as {!run}'s resume does.  The basis of
    [wasai campaign report]. *)

val merge : string list -> report
(** Load N shard journals and recombine them into the fleet report.

    Validation (all failures raise [Failure] with the offending path):
    every entry must carry a v3 stamp; each journal must be internally
    consistent (one stamp, and every target name must hash into the
    stamped slice); all journals must agree on (seed, budget, shard
    count); the shard indices must be pairwise distinct (disjointness)
    and cover 0..N-1 (coverage).  Duplicate lines per name collapse to
    the last, as {!run}'s resume does.  Raises {!Journal.Malformed} on a
    corrupt journal and [Invalid_argument] on an empty path list.

    Because per-target verdicts are independent of sharding, the merged
    report's {!verdicts_text} and {!evidence_text} are byte-identical to
    those of an unsharded run over the union of the targets. *)

(** {2 Dry-run planning} *)

type plan_row = {
  pr_name : string;
  pr_size : int;  (** module byte size ([sp_size]) *)
  pr_shard : int;  (** the slice {!Shard.assign} maps this name to *)
  pr_member : bool;  (** belongs to this run's [cc_shard] *)
  pr_done : bool;  (** member already satisfied by the resume journal *)
  pr_order : int option;
      (** 1-based position in the execution order, [None] when the target
          would not be fuzzed (foreign shard, resumed, or capped by
          [cc_max_targets]) *)
  pr_preload : int;  (** corpus seeds this target's queue would receive *)
  pr_slices : int;
      (** K this target would be partitioned into (a resumed slice
          set's recorded K wins over the scheduler's choice); 1 when
          slicing is off or the target is not fuzzed *)
  pr_slices_done : int;
      (** journaled slice fragments a resume would keep instead of
          re-running *)
}

type plan = {
  pl_rows : plan_row list;
      (** targets to fuzz first (in execution order), then the rest in
          name order *)
  pl_shard : Shard.t;
  pl_jobs : int;
  pl_slicing : slicing;
  pl_granularity : int;
      (** fixed cell count per target at this round budget
          ({!Core.Engine.Slice.granularity}) — the ceiling on any K *)
  pl_fair : int option;
      (** [Auto]'s fair per-domain share of the fresh size total
          (heuristic input), present only when the shallow-queue rule
          actually slices *)
}

val plan : config -> target_spec list -> plan
(** Everything {!run} would decide before spawning a worker — shard
    membership, resume skips, LPT execution order, per-target corpus
    preloads — without loading or fuzzing anything.  Raises exactly the
    input-validation errors {!run} would ([Invalid_argument] on duplicate
    names, journal/corpus load failures). *)

val plan_text : plan -> string
(** Human-readable rendering of {!plan}: summary lines then one row per
    target, followed — only when slicing is on, so unsliced plans stay
    byte-identical to previous releases — by the slice plan (K and
    resumed-fragment count per fuzzed target, with the heuristic inputs:
    granularity, fair share, job count).  The basis of
    [wasai campaign run --dry-run]. *)

(** {2 Aggregation} *)

val flag_counts : report -> (Core.Scanner.flag * int) list
(** Per-flag count of flagged contracts, in {!Core.Scanner.all_flags}
    order. *)

val vulnerable_count : report -> int
val total_branches : report -> int

val solver_totals : report -> Solver.stats
(** Fleet-wide sum of per-target solver/cache counters.  Deterministic
    for any [cc_jobs]: solver sessions are per-target and never shared
    across domains, so each addend is a function of its target alone. *)

val latency_histogram : report -> Metrics.Histogram.t
(** Per-target fuzzing latencies (merged as if per-worker). *)

val verdicts_text : report -> string
(** Canonical per-target verdict lines, sorted by name, with every
    scheduling-dependent field (latency, wall-clock) excluded — the
    byte-identical artefact for comparing runs at different [cc_jobs] or
    different shardings (for a fixed starting corpus state). *)

val flags_text : report -> string
(** The counter-free projection of {!verdicts_text}: one line per target
    with only its name and verdict flags.  Warm (corpus-preloaded) and
    cold runs reach the same verdicts in different numbers of rounds and
    seeds, so their full verdict lines differ; this projection is the
    byte-identical artefact for comparing them. *)

val evidence_text : report -> string
(** Canonical exploit-evidence lines (target, flag, replayable payload),
    in target order then flag order; empty when nothing fired.  As
    scheduling-independent as {!verdicts_text}: the payload behind a
    verdict is a pure function of the per-target run. *)

val to_text : report -> string
(** Full human-readable campaign report: fleet summary, per-flag contract
    counts, latency percentiles, then {!verdicts_text} and — when any
    exploit was captured — {!evidence_text}. *)
