(* Extending WASAI with a custom bug detector (the paper's §5:
   "the bug detectors can be extended in two steps: (1) adding oracles …
   (2) analyzing traces to confirm the exploit events").

     dune exec examples/custom_detector.exe

   We register two extra oracles alongside the built-in five:
   - "uses-deferred": fires when the contract schedules deferred
     transactions at all (an auditing signal, not a vulnerability);
   - "unbounded-payout": fires when an inline transfer leaves the
     contract for more than a sanity threshold — a crude drain detector
     built from the trace-analysis helpers. *)

module BG = Wasai_benchgen
module Core = Wasai_core
module Wasabi = Wasai_wasabi
open Wasai_eosio

let n = Name.of_string

(* Oracle 1: any call to the send_deferred host API. *)
let uses_deferred meta : Core.Scanner.custom_oracle =
  {
    Core.Scanner.co_name = "uses-deferred";
    co_detect =
      (fun _channel records ->
        Core.Scanner.calls_env_import meta "send_deferred" records);
  }

(* Oracle 2: an inline action whose serialised payload pays out more than
   the threshold.  The buffer pointer/length are in the call's arguments;
   here we settle for the cheap signal that send_inline ran on a
   fake-token payload — money left for free. *)
let unbounded_payout meta : Core.Scanner.custom_oracle =
  {
    Core.Scanner.co_name = "free-money";
    co_detect =
      (fun channel records ->
        match channel with
        | Core.Scanner.Ch_fake_token | Core.Scanner.Ch_direct ->
            Core.Scanner.calls_env_import meta "send_inline" records
        | _ -> false);
  }

let () =
  print_endline "== Custom detectors on top of the WASAI engine ==\n";
  let spec =
    {
      (BG.Contracts.default_spec (n "victim")) with
      BG.Contracts.sp_fake_eos_guard = false;  (* fake tokens accepted *)
      sp_payout_inline = true;  (* pays through send_inline *)
    }
  in
  let m, abi = BG.Contracts.build spec in
  let target =
    { Core.Engine.tgt_account = n "victim"; tgt_module = m; tgt_abi = abi }
  in
  (* The oracle builder receives the engine's instrumentation metadata,
     which is how it resolves host-API ids in trace records. *)
  let outcome =
    Core.Engine.fuzz
      ~oracles:(fun meta -> [ uses_deferred meta; unbounded_payout meta ])
      target
  in
  print_endline "built-in verdicts:";
  List.iter
    (fun (f, b) ->
      Printf.printf "  %-14s %s\n"
        (Core.Scanner.string_of_flag f)
        (if b then "VULNERABLE" else "ok"))
    outcome.Core.Engine.out_flags;
  print_endline "custom verdicts:";
  List.iter
    (fun (name, b) ->
      Printf.printf "  %-14s %s\n" name (if b then "FIRED" else "quiet"))
    outcome.Core.Engine.out_custom;
  assert (List.assoc "free-money" outcome.Core.Engine.out_custom = true);
  (* The contract pays inline, not deferred. *)
  assert (List.assoc "uses-deferred" outcome.Core.Engine.out_custom = false);
  print_endline
    "\nthe drain detector fired on the fake-token payout; writing a new\n\
     detector is a trace predicate plus a registration call."
