lib/baselines/eosfuzzer.ml: Abi Array Chain Hashtbl List Name Unix Wasai_core Wasai_eosio Wasai_wasabi Wasai_wasm
