lib/wasm/encode.mli: Ast Buffer
