lib/core/report.mli: Engine Wasai_eosio
