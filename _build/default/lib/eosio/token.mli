(** The [eosio.token] contract, implemented natively against the same
    chain interfaces a Wasm contract sees.  The same code deployed under a
    different account is the paper's fake-token attack vector. *)

val accounts_tbl : Name.t
val stat_tbl : Name.t

val balance_of : Chain.t -> token:Name.t -> owner:Name.t -> symbol:Asset.Symbol.t -> int64
val set_balance : Chain.t -> token:Name.t -> owner:Name.t -> symbol:Asset.Symbol.t -> int64 -> unit
val issuer_of : Chain.t -> token:Name.t -> symbol:Asset.Symbol.t -> Name.t option

val apply : Chain.context -> unit
(** The token contract's apply (create / issue / transfer). *)

val deploy : Chain.t -> Name.t -> unit
(** Deploy the token code under an account ([Name.eosio_token] for the
    official token, anything else for a fake one). *)

val bootstrap : Chain.t -> treasury:Name.t -> supply:int64 -> unit
(** Deploy the official token, create EOS and issue [supply] units to the
    treasury. *)

val transfer_action :
  token:Name.t -> from:Name.t -> to_:Name.t -> quantity:Asset.t -> memo:string -> Action.t

val eos_balance : Chain.t -> owner:Name.t -> int64
