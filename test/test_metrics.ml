(* Edge-case tests for Metrics.Histogram — the latency histogram every
   campaign worker and serve tenant relies on — plus the telemetry
   recorder's aggregation invariants: empty/one-sample percentiles,
   exact merge associativity, NaN/negative clamping, and to_wire
   stability under extreme (sub-microsecond, >100 s) samples. *)

module Metrics = Wasai_support.Metrics
module Histogram = Wasai_support.Metrics.Histogram
module Telemetry = Wasai_telemetry.Telemetry

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let feq what a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%g vs %g)" what a b)
    true
    (Float.abs (a -. b) <= 1e-12 *. Float.max 1.0 (Float.max a b))

(* ------------------------------------------------------------------ *)
(* Percentile edges                                                    *)
(* ------------------------------------------------------------------ *)

let test_percentile_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  feq "empty sum" 0.0 (Histogram.sum h);
  feq "empty mean" 0.0 (Histogram.mean h);
  List.iter
    (fun p -> feq (Printf.sprintf "empty p%g" p) 0.0 (Histogram.percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ];
  (* out-of-range percentiles clamp rather than raise *)
  feq "empty p(-5)" 0.0 (Histogram.percentile h (-5.0));
  feq "empty p200" 0.0 (Histogram.percentile h 200.0);
  Alcotest.(check string) "empty to_string" "latency: no samples"
    (Histogram.to_string h)

let test_percentile_one_sample () =
  let v = 0.0123 in
  let h = Histogram.create () in
  Histogram.add h v;
  Alcotest.(check int) "one count" 1 (Histogram.count h);
  feq "one sum" v (Histogram.sum h);
  feq "one mean" v (Histogram.mean h);
  (* with a single sample every percentile is capped at the observed
     maximum, i.e. the sample itself *)
  List.iter
    (fun p -> feq (Printf.sprintf "one p%g" p) v (Histogram.percentile h p))
    [ 0.0; 1.0; 50.0; 99.0; 100.0 ]

(* ------------------------------------------------------------------ *)
(* Merge algebra                                                       *)
(* ------------------------------------------------------------------ *)

let histogram_of samples =
  let h = Histogram.create () in
  List.iter (Histogram.add h) samples;
  h

let check_same what a b =
  Alcotest.(check int) (what ^ ": count") (Histogram.count a)
    (Histogram.count b);
  feq (what ^ ": sum") (Histogram.sum a) (Histogram.sum b);
  Alcotest.(check (list (pair (float 0.0) int)))
    (what ^ ": buckets")
    (Histogram.buckets a) (Histogram.buckets b);
  Alcotest.(check string) (what ^ ": to_wire") (Histogram.to_wire a)
    (Histogram.to_wire b)

let test_merge_associative () =
  let a = histogram_of [ 0.0001; 0.004; 0.004 ]
  and b = histogram_of [ 2.5; 0.00009 ]
  and c = histogram_of [ 130.0; 0.02; 0.3 ] in
  check_same "assoc"
    (Histogram.merge (Histogram.merge a b) c)
    (Histogram.merge a (Histogram.merge b c));
  check_same "commut" (Histogram.merge a b) (Histogram.merge b a);
  (* merging the empty histogram is the identity *)
  check_same "unit" (Histogram.merge a (Histogram.create ())) a;
  (* merge is exact: bucket counts add, never re-bucket *)
  check_same "exactness"
    (Histogram.merge a b)
    (histogram_of [ 0.0001; 0.004; 0.004; 2.5; 0.00009 ])

let test_clamp () =
  let h = Histogram.create () in
  Histogram.add h Float.nan;
  Histogram.add h (-3.0);
  Histogram.add h Float.neg_infinity;
  Alcotest.(check int) "clamped samples still counted" 3 (Histogram.count h);
  feq "clamped sum" 0.0 (Histogram.sum h);
  feq "clamped p99" 0.0 (Histogram.percentile h 99.0);
  (* clamped zeros land in the first bucket, not the overflow bucket *)
  (match Histogram.buckets h with
  | (bound0, c0) :: _ ->
      Alcotest.(check int) "first bucket holds the clamps" 3 c0;
      Alcotest.(check bool) "first bound is finite" true
        (Float.is_finite bound0)
  | [] -> Alcotest.fail "no buckets");
  (* a NaN mixed into real samples must not poison the aggregates *)
  Histogram.add h 0.5;
  feq "mean after clamp+real" 0.125 (Histogram.mean h);
  feq "max percentile tracks the real sample" 0.5
    (Histogram.percentile h 100.0)

(* ------------------------------------------------------------------ *)
(* Wire rendering under extremes                                       *)
(* ------------------------------------------------------------------ *)

let test_to_wire_extremes () =
  let h = histogram_of [ 1e-7; 250.0 ] in
  let wire = Histogram.to_wire h in
  (* the token must survive tab-separated wire grammars untouched *)
  String.iter
    (fun ch ->
      Alcotest.(check bool) "wire token has no separators" false
        (ch = '\t' || ch = ' ' || ch = '\n'))
    wire;
  Alcotest.(check bool) "wire names every field" true
    (List.for_all
       (fun f -> contains ~sub:f wire)
       [ "n:"; "mean:"; "p50:"; "p90:"; "p99:"; "max:" ]);
  Alcotest.(check bool) "overflow sample reports the observed max" true
    (contains ~sub:"max:250.000000" wire);
  (* rendering is a pure function of the recorded samples: merging with
     an empty histogram or rebuilding from scratch reproduces it *)
  Alcotest.(check string) "wire stable under identity merge" wire
    (Histogram.to_wire (Histogram.merge h (Histogram.create ())));
  Alcotest.(check string) "wire stable under rebuild" wire
    (Histogram.to_wire (histogram_of [ 250.0; 1e-7 ]));
  (* buckets expose the extremes at the right ends: the sub-µs sample in
     the first bucket, the >100 s sample in the +Inf overflow bucket *)
  let buckets = Histogram.buckets h in
  (match buckets with
  | (_, c0) :: _ ->
      Alcotest.(check int) "sub-microsecond sample in first bucket" 1 c0
  | [] -> Alcotest.fail "no buckets");
  (match List.rev buckets with
  | (bound, c) :: _ ->
      Alcotest.(check bool) "overflow bound is +Inf" true (bound = Float.infinity);
      Alcotest.(check int) "overflow holds the 250 s sample" 1 c
  | [] -> Alcotest.fail "no buckets");
  Alcotest.(check int) "bucket counts total the sample count"
    (Histogram.count h)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets)

(* ------------------------------------------------------------------ *)
(* Telemetry recorder invariants                                       *)
(* ------------------------------------------------------------------ *)

let test_telemetry_disabled_is_inert () =
  Telemetry.disable ();
  Telemetry.reset ();
  Alcotest.(check bool) "disabled" false (Telemetry.enabled ());
  let t0 = Telemetry.start () in
  Alcotest.(check int) "disabled start is the zero token" 0 t0;
  Telemetry.stop Telemetry.Oracle t0;
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "no spans recorded while disabled" 0
    snap.Telemetry.ts_spans

let test_telemetry_records_and_resets () =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    (fun () ->
      Telemetry.set_target (Telemetry.target_id "trgta");
      let t0 = Telemetry.start () in
      Alcotest.(check bool) "enabled start is a real timestamp" true (t0 > 0);
      Telemetry.stop Telemetry.Solver_quick t0;
      let t1 = Telemetry.start () in
      Telemetry.stop Telemetry.Exec_interp t1;
      let snap = Telemetry.snapshot () in
      Alcotest.(check int) "two spans" 2 snap.Telemetry.ts_spans;
      let count_of stage =
        match
          List.find_opt (fun (s, _, _) -> s = stage) snap.Telemetry.ts_stages
        with
        | Some (_, n, _) -> n
        | None -> 0
      in
      Alcotest.(check int) "solver span counted" 1
        (count_of Telemetry.Solver_quick);
      Alcotest.(check int) "exec span counted" 1
        (count_of Telemetry.Exec_interp);
      Alcotest.(check bool) "target attribution survives" true
        (List.mem_assoc "trgta" snap.Telemetry.ts_targets);
      (* every stage renders under a distinct snake_case name *)
      let names = List.map Telemetry.stage_name Telemetry.stages in
      Alcotest.(check int) "stage names are distinct"
        (List.length names)
        (List.length (List.sort_uniq compare names));
      let report = Telemetry.report_text snap in
      Alcotest.(check bool) "report names the hot stage" true
        (contains ~sub:"solver_quick" report);
      let prom = Telemetry.prometheus snap in
      Alcotest.(check bool) "prometheus exposes span totals" true
        (contains ~sub:"wasai_stage_spans_total{stage=\"exec_interp\"} 1" prom);
      (* reset really forgets: a fresh snapshot is empty *)
      Telemetry.reset ();
      Alcotest.(check int) "reset clears spans" 0
        (Telemetry.snapshot ()).Telemetry.ts_spans)

let () =
  Alcotest.run "wasai_metrics"
    [
      ( "histogram",
        [
          Alcotest.test_case "percentile on empty" `Quick test_percentile_empty;
          Alcotest.test_case "percentile on one sample" `Quick
            test_percentile_one_sample;
          Alcotest.test_case "merge associativity/exactness" `Quick
            test_merge_associative;
          Alcotest.test_case "NaN/negative clamp" `Quick test_clamp;
          Alcotest.test_case "to_wire under extreme samples" `Quick
            test_to_wire_extremes;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "disabled recorder is inert" `Quick
            test_telemetry_disabled_is_inert;
          Alcotest.test_case "spans aggregate and reset" `Quick
            test_telemetry_records_and_resets;
        ] );
    ]
