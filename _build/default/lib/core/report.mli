(** Textual vulnerability reports for engine outcomes. *)

type t = {
  rpt_target : string;  (** contract identifier (file or account) *)
  rpt_outcome : Engine.outcome;
  rpt_elapsed : float option;
  rpt_abi : Wasai_eosio.Abi.t option;  (** decodes exploit arguments *)
}

val make :
  ?elapsed:float -> ?abi:Wasai_eosio.Abi.t -> target:string -> Engine.outcome -> t
val vulnerable : t -> bool
val flags_found : t -> string list

val summary : t -> string
(** One-line summary: ["<target>: VULNERABLE [FakeEOS; Rollback]"]. *)

val to_text : ?verbose:bool -> t -> string
