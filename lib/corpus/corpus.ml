(** Persistent coverage-indexed seed corpus.

    One line per interesting seed (a seed whose executions opened at
    least one new branch edge), tab-separated with fixed field order:

    {v
    wasai-corpus-v1 <target> <action> sig=%016Lx cover=site:dir,...
      new=N round=N shard=i/N seed=S budget=R
      solver=q:N,b:N,u:N,h:N,m:N sbudget=N args=<wire|->   (13 fields)
    v}

    [sig] is {!Wasai_wasabi.Trace.edge_signature} of the [cover] edge
    set; the parser recomputes it, so a line whose cover was torn by a
    crash — or edited by hand — is rejected rather than silently
    admitted with a stale index key.  [cover] must be sorted strictly
    ascending (the canonical form the signature is defined over).
    [shard]/[seed]/[budget] carry the producing campaign's provenance
    stamp (same notation as the journal), [round] the engine round that
    executed the seed, [solver]/[sbudget] the producing run's solver
    counters and final adaptive conflict budget.

    [args] is a self-describing typed wire — [,]-separated
    [tag:payload] items ([n:] name, [u:] u64 hex, [w:] u32 hex,
    [a:amount-hex:symbol-hex] asset, [s:] hex-encoded string bytes), or
    [-] for an empty vector — so a corpus can be parsed, deduplicated
    and minimised without the target's ABI on hand.

    Writes follow the journal's crash-safety discipline: append a full
    line, flush, fsync, and only then acknowledge.  Parsing is strict:
    wrong magic, wrong field count, unknown keys or tags, unsorted
    covers, signature mismatches and unparseable numbers all reject the
    line with its reason. *)

module Trace = Wasai_wasabi.Trace
module Solver = Wasai_smt.Solver
open Wasai_eosio

type record = {
  rc_target : string;  (** campaign target name (an EOSIO account) *)
  rc_action : Name.t;
  rc_args : Abi.value list;
  rc_sig : int64;  (** {!Trace.edge_signature} of [rc_cover] *)
  rc_cover : (int * int32) list;  (** sorted strictly ascending, non-empty *)
  rc_new_edges : int;  (** edges of [rc_cover] that were new when recorded *)
  rc_round : int;  (** engine round that executed the seed *)
  rc_shard : int * int;  (** producing campaign's shard slice (i, N) *)
  rc_seed : int64;  (** producing campaign's engine root RNG seed *)
  rc_rounds : int;  (** producing campaign's engine round budget *)
  rc_solver : Solver.stats;  (** producing run's solver counters *)
  rc_solver_budget : int;  (** producing run's final adaptive budget *)
}

let magic = "wasai-corpus-v1"

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let hex_encode (s : string) =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.init (String.length s) (fun i -> Char.code s.[i])))

let hex_decode (s : string) : (string, string) result =
  let n = String.length s in
  if n mod 2 <> 0 then Error (Printf.sprintf "odd-length hex %S" s)
  else
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    let buf = Buffer.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else
        match (digit s.[i], digit s.[i + 1]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> Error (Printf.sprintf "bad hex digit in %S" s)
    in
    go 0

let wire_of_value (v : Abi.value) : string =
  match v with
  | Abi.V_name n -> "n:" ^ Name.to_string n
  | Abi.V_u64 x -> Printf.sprintf "u:%Lx" x
  | Abi.V_u32 x -> Printf.sprintf "w:%lx" x
  | Abi.V_asset a ->
      Printf.sprintf "a:%Lx:%Lx" a.Asset.amount (a.Asset.symbol : Asset.Symbol.t)
  | Abi.V_string s -> "s:" ^ hex_encode s

let value_of_wire (item : string) : (Abi.value, string) result =
  let ( let* ) = Result.bind in
  let payload tag =
    let p = String.length tag in
    if
      String.length item > p
      && String.sub item 0 p = tag
      && item.[p] = ':'
    then Some (String.sub item (p + 1) (String.length item - p - 1))
    else None
  in
  let int64_hex s =
    if s = "" then None else Int64.of_string_opt ("0x" ^ s)
  in
  match (payload "n", payload "u", payload "w", payload "a", payload "s") with
  | Some n, _, _, _, _ -> (
      match Name.of_string n with
      | name -> Ok (Abi.V_name name)
      | exception Invalid_argument _ ->
          Error (Printf.sprintf "bad name %S" n))
  | _, Some u, _, _, _ -> (
      match int64_hex u with
      | Some x -> Ok (Abi.V_u64 x)
      | None -> Error (Printf.sprintf "bad u64 %S" u))
  | _, _, Some w, _, _ -> (
      match if w = "" then None else Int32.of_string_opt ("0x" ^ w) with
      | Some x -> Ok (Abi.V_u32 x)
      | None -> Error (Printf.sprintf "bad u32 %S" w))
  | _, _, _, Some a, _ -> (
      match String.split_on_char ':' a with
      | [ amount; symbol ] -> (
          match (int64_hex amount, int64_hex symbol) with
          | Some amount, Some symbol ->
              Ok (Abi.V_asset { Asset.amount; symbol })
          | _ -> Error (Printf.sprintf "bad asset %S" a))
      | _ -> Error (Printf.sprintf "bad asset %S" a))
  | _, _, _, _, Some s ->
      let* bytes = hex_decode s in
      if String.length bytes > 255 then
        Error (Printf.sprintf "string payload over 255 bytes (%d)" (String.length bytes))
      else Ok (Abi.V_string bytes)
  | _ -> Error (Printf.sprintf "unknown value tag in %S" item)

let wire_of_args (args : Abi.value list) : string =
  match args with
  | [] -> "-"
  | _ -> String.concat "," (List.map wire_of_value args)

let args_of_wire (s : string) : (Abi.value list, string) result =
  if s = "-" then Ok []
  else
    List.fold_left
      (fun acc item ->
        Result.bind acc (fun acc ->
            Result.map (fun v -> v :: acc) (value_of_wire item)))
      (Ok [])
      (String.split_on_char ',' s)
    |> Result.map List.rev

let line_of_record (r : record) : string =
  let cover =
    String.concat ","
      (List.map (fun (site, dir) -> Printf.sprintf "%d:%ld" site dir) r.rc_cover)
  in
  String.concat "\t"
    [
      magic;
      r.rc_target;
      Name.to_string r.rc_action;
      Printf.sprintf "sig=%016Lx" r.rc_sig;
      "cover=" ^ cover;
      Printf.sprintf "new=%d" r.rc_new_edges;
      Printf.sprintf "round=%d" r.rc_round;
      Printf.sprintf "shard=%d/%d" (fst r.rc_shard) (snd r.rc_shard);
      Printf.sprintf "seed=%Ld" r.rc_seed;
      Printf.sprintf "budget=%d" r.rc_rounds;
      Printf.sprintf "solver=q:%d,b:%d,u:%d,h:%d,m:%d" r.rc_solver.Solver.st_quick
        r.rc_solver.Solver.st_blasted r.rc_solver.Solver.st_unknown
        r.rc_solver.Solver.st_cache_hits r.rc_solver.Solver.st_cache_misses;
      Printf.sprintf "sbudget=%d" r.rc_solver_budget;
      "args=" ^ wire_of_args r.rc_args;
    ]

(* ------------------------------------------------------------------ *)
(* Strict parsing                                                      *)
(* ------------------------------------------------------------------ *)

let keyed key conv field =
  match String.index_opt field '=' with
  | Some i when String.sub field 0 i = key -> (
      let v = String.sub field (i + 1) (String.length field - i - 1) in
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S: bad value %S" key v))
  | _ -> Error (Printf.sprintf "expected field %S, got %S" key field)

let parse_cover (v : string) : ((int * int32) list, string) result =
  let ( let* ) = Result.bind in
  let edge item =
    match String.index_opt item ':' with
    | Some i -> (
        let site = String.sub item 0 i in
        let dir = String.sub item (i + 1) (String.length item - i - 1) in
        match (int_of_string_opt site, Int32.of_string_opt dir) with
        | Some site, Some dir -> Ok (site, dir)
        | _ -> Error (Printf.sprintf "bad edge %S" item))
    | None -> Error (Printf.sprintf "bad edge %S" item)
  in
  let* edges =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* e = edge item in
        Ok (e :: acc))
      (Ok [])
      (String.split_on_char ',' v)
    |> Result.map List.rev
  in
  if edges = [] then Error "empty cover"
  else
    let rec sorted = function
      | a :: (b :: _ as rest) ->
          if compare a b < 0 then sorted rest
          else Error (Printf.sprintf "cover not sorted strictly ascending at %d:%ld" (fst b) (snd b))
      | _ -> Ok edges
    in
    sorted edges

let parse_shard (v : string) : (int * int, string) result =
  match String.index_opt v '/' with
  | Some i -> (
      let idx = String.sub v 0 i in
      let count = String.sub v (i + 1) (String.length v - i - 1) in
      match (int_of_string_opt idx, int_of_string_opt count) with
      | Some idx, Some count when count >= 1 && idx >= 0 && idx < count ->
          Ok (idx, count)
      | _ -> Error (Printf.sprintf "bad shard %S" v))
  | None -> Error (Printf.sprintf "bad shard %S" v)

let parse_solver (v : string) : (Solver.stats, string) result =
  let counter key part =
    match String.index_opt part ':' with
    | Some i when String.sub part 0 i = key ->
        int_of_string_opt (String.sub part (i + 1) (String.length part - i - 1))
    | _ -> None
  in
  match String.split_on_char ',' v with
  | [ q; b; u; h; m ] -> (
      match
        (counter "q" q, counter "b" b, counter "u" u, counter "h" h,
         counter "m" m)
      with
      | ( Some st_quick, Some st_blasted, Some st_unknown, Some st_cache_hits,
          Some st_cache_misses ) ->
          Ok
            {
              Solver.st_quick; st_blasted; st_unknown; st_cache_hits;
              st_cache_misses;
            }
      | _ -> Error (Printf.sprintf "solver field %S: bad counters" v))
  | _ -> Error (Printf.sprintf "solver field %S: expected 5 counters" v)

let sig_hex (v : string) : int64 option =
  if String.length v = 16 then Int64.of_string_opt ("0x" ^ v) else None

let record_of_line (line : string) : (record, string) result =
  let ( let* ) = Result.bind in
  match String.split_on_char '\t' line with
  | [ m; target; action; sg; cover; new_; round; shard; seed; budget; solver;
      sbudget; args ] ->
      if m <> magic then Error (Printf.sprintf "bad magic %S" m)
      else
        let* rc_target =
          match Name.of_string target with
          | _ -> Ok target
          | exception Invalid_argument _ ->
              Error (Printf.sprintf "target %S is not an EOSIO name" target)
        in
        let* rc_action =
          match Name.of_string action with
          | a -> Ok a
          | exception Invalid_argument _ ->
              Error (Printf.sprintf "action %S is not an EOSIO name" action)
        in
        let* rc_sig = keyed "sig" sig_hex sg in
        let* rc_cover = Result.bind (keyed "cover" Option.some cover) parse_cover in
        let* rc_new_edges = keyed "new" int_of_string_opt new_ in
        let* rc_round = keyed "round" int_of_string_opt round in
        let* rc_shard = Result.bind (keyed "shard" Option.some shard) parse_shard in
        let* rc_seed = keyed "seed" Int64.of_string_opt seed in
        let* rc_rounds = keyed "budget" int_of_string_opt budget in
        let* rc_solver = Result.bind (keyed "solver" Option.some solver) parse_solver in
        let* rc_solver_budget = keyed "sbudget" int_of_string_opt sbudget in
        let* rc_args = Result.bind (keyed "args" Option.some args) args_of_wire in
        if rc_new_edges < 1 || rc_new_edges > List.length rc_cover then
          Error
            (Printf.sprintf "new=%d outside 1..%d (the cover size)"
               rc_new_edges (List.length rc_cover))
        else
          let expect = Trace.edge_signature rc_cover in
          if expect <> rc_sig then
            Error
              (Printf.sprintf
                 "signature %016Lx does not match the cover (expected %016Lx) \
                  — torn or edited line"
                 rc_sig expect)
          else
            Ok
              {
                rc_target; rc_action; rc_args; rc_sig; rc_cover; rc_new_edges;
                rc_round; rc_shard; rc_seed; rc_rounds; rc_solver;
                rc_solver_budget;
              }
  | fields ->
      Error
        (Printf.sprintf "expected 13 tab-separated fields, got %d"
           (List.length fields))

exception Malformed of string

(* ------------------------------------------------------------------ *)
(* In-memory corpus with a signature index                             *)
(* ------------------------------------------------------------------ *)

type t = {
  mutable items : record list;  (** newest first *)
  index : (string * int64, unit) Hashtbl.t;  (** (target, signature) *)
}

let create () = { items = []; index = Hashtbl.create 64 }
let size t = List.length t.items
let mem t ~target sg = Hashtbl.mem t.index (target, sg)

(** Dedupe-on-insert: a seed whose (target, coverage-signature) pair is
    already present adds nothing — its edge set is already replayable. *)
let add t (r : record) : bool =
  let key = (r.rc_target, r.rc_sig) in
  if Hashtbl.mem t.index key then false
  else begin
    Hashtbl.replace t.index key ();
    t.items <- r :: t.items;
    true
  end

(* Canonical record order — (target, action, signature) — so everything
   derived from a corpus (preload lists, minimised corpora, saved files,
   stats) is independent of the on-disk append order. *)
let record_compare (a : record) (b : record) =
  compare
    (a.rc_target, Name.to_string a.rc_action, a.rc_sig)
    (b.rc_target, Name.to_string b.rc_action, b.rc_sig)

let records t = List.sort record_compare t.items

let targets t =
  List.sort_uniq compare (List.map (fun r -> r.rc_target) t.items)

let records_for t ~target =
  List.filter (fun r -> r.rc_target = target) (records t)

let preload t ~target =
  List.map (fun r -> (r.rc_action, r.rc_args)) (records_for t ~target)

let load path : t =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let t = create () in
      let rec go line_no =
        match input_line ic with
        | exception End_of_file -> t
        | line -> (
            match record_of_line line with
            | Ok r ->
                ignore (add t r);
                go (line_no + 1)
            | Error reason ->
                raise
                  (Malformed
                     (Printf.sprintf
                        "%s:%d: malformed corpus line (%s); refusing to load \
                         a corrupt corpus"
                        path line_no reason)))
      in
      go 1)

let save t path =
  (* Atomic replace: write a sibling temp file, fsync, rename over. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (line_of_record r);
          output_char oc '\n')
        (records t);
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path;
  (* Persist the rename itself, not just the file contents. *)
  Wasai_support.Fsutil.fsync_dir (Filename.dirname path)

(* ------------------------------------------------------------------ *)
(* Greedy set-cover minimisation                                       *)
(* ------------------------------------------------------------------ *)

(** Per target, keep a subset of seeds whose covers union to the same
    edge set, chosen greedily: repeatedly take the seed covering the
    most still-uncovered edges (ties broken by canonical record order,
    so the result is deterministic); stop when no seed adds an edge.
    The classic ln(n)-approximation — exact minimality is NP-hard, but
    the greedy pick is what corpus minimisers (afl-cmin et al.) ship. *)
let minimize t : t =
  let out = create () in
  List.iter
    (fun target ->
      let recs = records_for t ~target in
      let covered = Hashtbl.create 256 in
      let gain r =
        List.length
          (List.filter (fun e -> not (Hashtbl.mem covered e)) r.rc_cover)
      in
      let remaining = ref recs in
      let continue_ = ref true in
      while !continue_ do
        let best =
          List.fold_left
            (fun acc r ->
              let g = gain r in
              match acc with
              | Some (_, bg) when bg >= g -> acc
              | _ when g > 0 -> Some (r, g)
              | _ -> acc)
            None !remaining
        in
        match best with
        | None -> continue_ := false
        | Some (r, _) ->
            ignore (add out r);
            List.iter (fun e -> Hashtbl.replace covered e ()) r.rc_cover;
            remaining := List.filter (fun r' -> r' != r) !remaining
      done)
    (targets t);
  out

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let edge_union (recs : record list) =
  let edges = Hashtbl.create 256 in
  List.iter
    (fun r -> List.iter (fun e -> Hashtbl.replace edges e ()) r.rc_cover)
    recs;
  Hashtbl.length edges

let stats_text t : string =
  let b = Buffer.create 256 in
  let tgts = targets t in
  Buffer.add_string b
    (Printf.sprintf "corpus: %d seeds across %d targets\n" (size t)
       (List.length tgts));
  List.iter
    (fun target ->
      let recs = records_for t ~target in
      let actions =
        List.sort_uniq compare
          (List.map (fun r -> Name.to_string r.rc_action) recs)
      in
      Buffer.add_string b
        (Printf.sprintf "%-13s seeds=%d actions=%d edges=%d\n" target
           (List.length recs) (List.length actions) (edge_union recs)))
    tgts;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Append-side writer                                                  *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  type w = { oc : out_channel; wlock : Mutex.t }

  let open_ path =
    let fresh = not (Sys.file_exists path) in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    (* As with the journal writer: make the directory entry of a freshly
       created corpus file durable before seeds start landing in it. *)
    if fresh then Wasai_support.Fsutil.fsync_dir (Filename.dirname path);
    { oc; wlock = Mutex.create () }

  let append w r =
    Mutex.protect w.wlock (fun () ->
        output_string w.oc (line_of_record r);
        output_char w.oc '\n';
        flush w.oc;
        (* The seed must reach disk before its target is journaled as
           done: a crash-resumed campaign skips the target, so a seed
           lost here would be lost forever. *)
        Unix.fsync (Unix.descr_of_out_channel w.oc))

  let close w = Mutex.protect w.wlock (fun () -> close_out_noerr w.oc)
end
