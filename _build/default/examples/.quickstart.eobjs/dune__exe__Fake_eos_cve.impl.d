examples/fake_eos_cve.ml: Abi Action Asset Chain Host Int64 List Name Printf Token Wasai_benchgen Wasai_core Wasai_eosio
