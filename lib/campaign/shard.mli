(** Deterministic campaign sharding: split a fleet of targets into N
    disjoint slices by a stable hash of the target name, so independent
    machines given [--shard i/N] fuzz non-overlapping subsets whose union
    is the whole fleet — for any target set, any machine, any scheduling.

    The assignment is a pure function of the name string (FNV-1a 64-bit,
    reduced by unsigned modulo), never of OCaml's [Hashtbl.hash], memory
    layout or discovery order: two machines that discover the same
    directory agree on every target's shard without coordinating. *)

type t = private {
  sh_index : int;  (** this slice, [0 <= sh_index < sh_count] *)
  sh_count : int;  (** total shards in the fleet, [>= 1] *)
}

val make : index:int -> count:int -> t
(** Raises [Invalid_argument] unless [count >= 1] and
    [0 <= index < count]. *)

val whole : t
(** The unsharded campaign, [0/1]: every target is a member. *)

val is_whole : t -> bool
val equal : t -> t -> bool

val to_string : t -> string
(** ["i/N"], the [--shard] notation and the journal-stamp notation. *)

val of_string : string -> (t, string) result
(** Strict inverse of {!to_string}: exactly ["i/N"] with decimal [i], [N]
    satisfying {!make}'s range checks. *)

val hash : string -> int64
(** FNV-1a 64-bit of the raw bytes — the stable hash behind {!assign},
    exposed for tests. *)

val assign : count:int -> string -> int
(** Shard index of a target name in a [count]-shard fleet:
    [hash name mod count], unsigned.  Total: every name lands in exactly
    one of the [count] shards.  Raises [Invalid_argument] when
    [count < 1]. *)

val member : t -> string -> bool
(** [member t name] iff [assign ~count:t.sh_count name = t.sh_index]. *)
