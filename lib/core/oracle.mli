(** The streaming oracle layer: vulnerability detectors as registered
    instances, parametric in a {!Wasai_eosio.Chain_profile}.

    A {!def} names a vulnerability class and constructs per-session
    {!instance}s against one contract's {!env}; instances stream each
    executed payload's trace through a {!Wasai_wasabi.Trace.Cursor} and
    report whether the exploit event occurred.  The scanner harness
    makes fires sticky and captures first-fire evidence. *)

module Trace = Wasai_wasabi.Trace
open Wasai_eosio

(** {1 Channels and flags} *)

(** How a payload reached the contract (the §2.3 adversary oracles). *)
type channel =
  | Ch_genuine  (** real EOS via eosio.token *)
  | Ch_direct  (** eosponser invoked directly with a forged action *)
  | Ch_fake_token  (** EOS issued by an attacker token contract *)
  | Ch_fake_notif  (** notification forwarded by an agent contract *)
  | Ch_action of Name.t  (** ordinary action push *)

val string_of_channel : channel -> string

val channel_of_string : string -> channel option
(** Strict inverse of {!string_of_channel} ([None] on anything else). *)

(** Vulnerability classes: the paper's §3.5 five plus the related-work
    extensions (WACANA state I/O, EVulHunter dispatcher confusion,
    He et al. asset overflow). *)
type flag =
  | Fake_eos
  | Fake_notif
  | Miss_auth
  | Blockinfo_dep
  | Rollback
  | State_io
  | Fake_transfer
  | Asset_overflow

val legacy_flags : flag list
(** The §3.5 five, in the historical journal order.  Journal lines
    always carry these. *)

val extension_flags : flag list
(** Post-§3.5 classes, written to journals only when fired — which is
    what keeps legacy contracts' lines byte-identical across builds. *)

val all_flags : flag list
(** [legacy_flags @ extension_flags]. *)

val string_of_flag : flag -> string

val flag_of_string : string -> flag option
(** Strict inverse of {!string_of_flag}. *)

(** {1 Environment} *)

(** A chain profile's name groups resolved to function-import indices
    of one instrumented contract (absent imports drop out). *)
type host_ids = {
  hi_auth : int list;
  hi_state_writes : int list;
  hi_inline_send : int list;
  hi_blockinfo : int list;
  hi_effects : int list;  (** [hi_inline_send @ hi_state_writes] *)
}

type env = {
  en_meta : Trace.meta;
  en_profile : Chain_profile.t;
  en_ids : host_ids;
  en_victim : Name.t;
  en_fake_notif_agent : Name.t;
  en_fake_token : Name.t;
}

(** Per-payload facts computed once by the scanner harness. *)
type ctx = { cx_channel : channel; cx_eosponser_ran : bool }

(** {1 Instances and definitions} *)

type instance = {
  oi_name : string;
  oi_flag : flag;
  oi_step : ctx -> Trace.Cursor.t -> bool;
      (** called on {e every} payload, even after a fire, so detectors
          with exculpatory state keep accumulating; [true] = the
          exploit event occurred in this payload *)
  oi_verdict : fired:bool -> bool;
      (** session verdict from the sticky fire (identity for most) *)
}

type def = { od_name : string; od_flag : flag; od_make : env -> instance }

val resolve_ids : Trace.meta -> Chain_profile.t -> host_ids

val make_env :
  ?profile:Chain_profile.t ->
  meta:Trace.meta ->
  victim:Name.t ->
  fake_notif_agent:Name.t ->
  fake_token:Name.t ->
  unit ->
  env
(** [profile] defaults to {!Chain_profile.eosio}. *)

(** {1 Registry} *)

val builtins : def list
(** The eight shipped detectors, in canonical flag order. *)

val register : def -> unit
(** Append a detector after the builtins.  Initialisation-time only
    (register before spawning campaign domains); raises
    [Invalid_argument] on a duplicate name. *)

val registered : unit -> def list

val instantiate :
  ?profile:Chain_profile.t ->
  meta:Trace.meta ->
  victim:Name.t ->
  fake_notif_agent:Name.t ->
  fake_token:Name.t ->
  unit ->
  instance list
(** Resolve the environment and construct every registered detector. *)

(** {1 Cursor-level matching helpers} *)

val calls_any : Trace.meta -> Trace.Cursor.t -> int list -> bool
(** Stream to the end of the trace; did any call_pre target one of the
    import indices? *)

val i64_pair_compared : Trace.meta -> Trace.Cursor.t -> int64 -> int64 -> bool
(** Did any instruction compare exactly the i64 pair [{x, y}]?  Matches
    i64.eq/ne plus the xor/sub forms comparison-encoding obfuscation
    rewrites to. *)

val i64_mul_overflows : int64 -> int64 -> bool
(** Signed 64-bit multiplication overflow predicate. *)
