lib/core/engine.ml: Abi Action Array Asset Chain Database Dbg Hashtbl Host List Name Option Queue Scanner Seed Token Unix Wasai_eosio Wasai_support Wasai_symbolic Wasai_wasabi Wasai_wasm
