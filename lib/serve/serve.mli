(** Continuous fuzzing as a service: the campaign machinery run as a
    persistent multi-tenant daemon.

    One daemon owns a served root directory and a Unix-domain socket.
    Clients speak the {!Wire} grammar; each [SUBMIT] names a tenant, and
    every tenant gets an isolated journal + corpus under
    [root/<tenant>/] — the same crash-safe files a batch campaign
    writes, so every batch tool ([wasai campaign report], {!Campaign}
    merge validation, corpus reuse) applies to a tenant directory
    unchanged.

    Architecture: a single-domain I/O loop ([select(2)] over the listen
    socket, a self-pipe, and every client connection) handles accepts,
    request parsing and admission control; [sv_jobs] worker domains
    drain a shared {!Work_queue} of admitted submissions; completed
    verdicts travel back to the I/O loop through a completion queue plus
    self-pipe wakeup and are streamed to the submitting client.  The
    I/O loop never fuzzes and the workers never touch a socket.

    Admission control bounds each tenant to [sv_depth] in-flight
    submissions.  Beyond that the daemon answers [BUSY] with a
    [retry-after] hint instead of buffering without bound — explicit
    backpressure, never an unbounded queue.

    Restart safety: a target counts as done iff its line reached the
    tenant journal (fsync'd before the verdict is streamed), and every
    line carries the daemon's (shard=0/1, seed, budget) provenance
    stamp.  On [--resume] the daemon replays each tenant journal through
    {!Campaign.validate_entries} — {!Campaign.merge}'s discipline — and
    serves already-journaled names from cache, so a [kill -9] mid-queue
    followed by resume + resubmission yields per-tenant reports
    byte-identical to an uninterrupted run.

    Determinism argument for that byte-identity: every serve fuzz is
    {e cold} ([cfg_preload] is forced empty; the per-tenant corpus is
    write-only — recorded for later batch reuse, never preloaded by the
    daemon).  If crashed runs preloaded seeds recorded by earlier ones,
    a target re-fuzzed after a crash could run warm and journal
    different solver counters than its uninterrupted twin. *)

module Core = Wasai_core
module Campaign = Wasai_campaign.Campaign
module Journal = Wasai_campaign.Journal

type config = {
  sv_root : string;  (** served root; one subdirectory per tenant *)
  sv_socket : string;  (** Unix-domain socket path *)
  sv_jobs : int;  (** worker domains (the I/O loop is not one of them) *)
  sv_depth : int;  (** max in-flight (queued + running) per tenant *)
  sv_resume : bool;
      (** continue existing tenant journals; without it, a root that
          already holds journals is refused *)
  sv_engine : Core.Engine.config;
      (** per-submission engine configuration; [cfg_preload] is forced
          empty (see the determinism argument above) *)
}

val make_config :
  root:string ->
  socket:string ->
  ?jobs:int ->
  ?depth:int ->
  ?resume:bool ->
  engine:Core.Engine.config ->
  unit ->
  config
(** Validates at construction: raises [Invalid_argument] when
    [jobs < 1] or [depth < 1].  [jobs] defaults to 1, [depth] to 16,
    [resume] to false. *)

type t

val create : config -> t
(** Bind the socket (unlinking a stale one), create the root, spawn the
    worker domains and — with [sv_resume] — load every existing tenant:
    journal entries are validated against this daemon's (seed, budget)
    stamp via {!Campaign.validate_entries} and become the tenant's
    cached-verdict table.  Raises [Failure] when the root holds tenant
    journals and [sv_resume] is false, or when a journal was stamped
    under a different configuration; {!Journal.Malformed} on a corrupt
    journal. *)

val serve : t -> unit
(** Run the I/O loop until a stop is requested ([SHUTDOWN] on the wire,
    {!request_stop}, or {!request_abort}), then drain: workers finish
    (graceful) or drop (abort) the backlog, pending responses are
    flushed, connections and the socket are closed.  The socket file is
    unlinked on graceful stop and deliberately left behind on abort
    (a [kill -9] would not have cleaned up either). *)

val request_stop : t -> unit
(** Graceful stop from another domain (e.g. a signal handler): admitted
    submissions still run to completion and their verdicts are
    streamed; further submissions are refused.  Idempotent. *)

val request_abort : t -> unit
(** Simulated [kill -9] for tests: queued submissions are dropped
    without journaling anything (running ones finish — a real kill may
    also land after a line's fsync), and {!serve} returns without
    cleanup.  Idempotent. *)

(** {2 Tenant reports}

    Offline views over a served root; they read only the journals and
    are usable whether or not a daemon is running. *)

val tenants : root:string -> string list
(** Tenant directories under [root] that hold a journal, sorted.  Empty
    when [root] does not exist. *)

val tenant_entries :
  root:string -> engine:Core.Engine.config -> string -> Journal.entry list
(** A tenant's journal entries, validated against the (seed, budget)
    stamp the daemon would use and collapsed to the last entry per name
    (resume discipline).  Raises [Failure] on a stamp mismatch,
    {!Journal.Malformed} on a corrupt journal. *)

val tenant_report :
  root:string -> engine:Core.Engine.config -> string -> string
(** The per-tenant report: a [tenant <name>: targets=N] header, the
    campaign's canonical {!Campaign.verdicts_text}, and — when any
    exploit was captured — {!Campaign.evidence_text}.  Every field is
    deterministic (no wall-clock, no scheduling), so two roots that
    journaled the same submissions render byte-identical reports: the
    kill -9 acceptance artefact. *)
