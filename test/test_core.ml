(* Tests for the WASAI core: seed pool, DBG, and the full detection matrix
   of the engine against ground-truth contracts. *)

module Core = Wasai_core
module BG = Wasai_benchgen
open Wasai_eosio

let n = Name.of_string

(* ------------------------------------------------------------------ *)
(* Seed pool                                                            *)
(* ------------------------------------------------------------------ *)

let mk_seed ?(prov = Core.Seed.Random_seed) action v =
  { Core.Seed.sd_action = action; sd_args = [ Abi.V_u64 v ]; sd_provenance = prov }

let seed_val (s : Core.Seed.t) =
  match s.Core.Seed.sd_args with [ Abi.V_u64 v ] -> v | _ -> -1L

let test_pool_circular () =
  let pool = Core.Seed.create_pool () in
  let a = n "act" in
  List.iter (fun v -> Core.Seed.add pool (mk_seed a v)) [ 1L; 2L; 3L ];
  let got = List.init 5 (fun _ -> seed_val (Option.get (Core.Seed.next pool a))) in
  (* Head popped, pushed back to the tail: 1 2 3 1 2. *)
  Alcotest.(check (list int64)) "circular order" [ 1L; 2L; 3L; 1L; 2L ] got

let test_pool_fresh_priority () =
  let pool = Core.Seed.create_pool () in
  let a = n "act" in
  Core.Seed.add pool (mk_seed a 1L);
  Core.Seed.add pool (mk_seed ~prov:(Core.Seed.Adaptive 9) a 100L);
  Alcotest.(check int64) "adaptive seed jumps the queue" 100L
    (seed_val (Option.get (Core.Seed.next pool a)));
  Alcotest.(check int64) "then the queue resumes" 1L
    (seed_val (Option.get (Core.Seed.next pool a)))

let test_pool_take_fresh () =
  let pool = Core.Seed.create_pool () in
  let a = n "act" in
  Core.Seed.add pool (mk_seed a 1L);
  Alcotest.(check bool) "no fresh yet" true (Core.Seed.take_fresh pool a = None);
  Core.Seed.add pool (mk_seed ~prov:(Core.Seed.Adaptive 3) a 42L);
  (match Core.Seed.take_fresh pool a with
   | Some s -> Alcotest.(check int64) "fresh taken" 42L (seed_val s)
   | None -> Alcotest.fail "fresh seed missing");
  Alcotest.(check bool) "fresh drained" true (Core.Seed.take_fresh pool a = None)

(* ------------------------------------------------------------------ *)
(* DBG                                                                  *)
(* ------------------------------------------------------------------ *)

let test_dbg_dependency () =
  let g = Core.Dbg.create () in
  let write_acc table =
    { Database.acc_kind = Database.Write; acc_code = n "c"; acc_table = table }
  in
  Core.Dbg.record_access g ~action:(n "deposit") (write_acc (n "players"));
  Core.Dbg.record_read_miss g ~action:(n "transfer") (n "players");
  Alcotest.(check (option int64)) "writer found" (Some (n "deposit"))
    (Core.Dbg.dependency_for g (n "transfer"));
  Core.Dbg.clear_read_miss g ~action:(n "transfer");
  Alcotest.(check (option int64)) "cleared" None
    (Core.Dbg.dependency_for g (n "transfer"))

let test_dbg_no_self_dependency () =
  let g = Core.Dbg.create () in
  let acc k table =
    { Database.acc_kind = k; acc_code = n "c"; acc_table = table }
  in
  (* The blocked action itself also writes the table; it must not be its
     own resolution. *)
  Core.Dbg.record_access g ~action:(n "transfer") (acc Database.Write (n "t"));
  Core.Dbg.record_read_miss g ~action:(n "transfer") (n "t");
  Alcotest.(check (option int64)) "no self-writer" None
    (Core.Dbg.dependency_for g (n "transfer"))

(* ------------------------------------------------------------------ *)
(* Detection matrix                                                     *)
(* ------------------------------------------------------------------ *)

let fuzz ?(rounds = 40) spec =
  let m, abi = BG.Contracts.build spec in
  Core.Engine.fuzz
    ~cfg:(Core.Engine.make_config ~rounds:(rounds) ())
    {
      Core.Engine.tgt_account = spec.BG.Contracts.sp_account;
      tgt_module = m;
      tgt_abi = abi;
    }

let base = BG.Contracts.default_spec (n "victim")

let check_matrix name spec =
  let o = fuzz spec in
  List.iter
    (fun (cls, flag) ->
      let expected = BG.Contracts.ground_truth spec cls in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s" name (BG.Contracts.string_of_vuln cls))
        expected
        (Core.Engine.flagged o flag))
    [
      (BG.Contracts.Fake_eos, Core.Scanner.Fake_eos);
      (BG.Contracts.Fake_notif, Core.Scanner.Fake_notif);
      (BG.Contracts.Miss_auth, Core.Scanner.Miss_auth);
      (BG.Contracts.Blockinfo_dep, Core.Scanner.Blockinfo_dep);
      (BG.Contracts.Rollback, Core.Scanner.Rollback);
    ]

let test_matrix_safe () = check_matrix "safe" base

let test_matrix_fake_eos () =
  check_matrix "fake-eos" { base with BG.Contracts.sp_fake_eos_guard = false }

let test_matrix_fake_notif () =
  check_matrix "fake-notif" { base with BG.Contracts.sp_fake_notif_guard = false }

let test_matrix_miss_auth () =
  check_matrix "miss-auth" { base with BG.Contracts.sp_auth_check = false }

let test_matrix_blockinfo () =
  check_matrix "blockinfo" { base with BG.Contracts.sp_blockinfo = true }

let test_matrix_rollback () =
  check_matrix "rollback" { base with BG.Contracts.sp_payout_inline = true }

let test_matrix_all_with_gates () =
  check_matrix "all+gates"
    {
      base with
      BG.Contracts.sp_fake_eos_guard = false;
      sp_fake_notif_guard = false;
      sp_auth_check = false;
      sp_blockinfo = true;
      sp_payout_inline = true;
      sp_db_gate = true;
      sp_min_bet = Some 10L;
    }

let test_matrix_dead_template () =
  (* Inaccessible-branch negatives must not be flagged (no FPs from
     syntactic presence of the template). *)
  check_matrix "dead-template"
    {
      base with
      BG.Contracts.sp_blockinfo = true;
      sp_payout_inline = true;
      sp_dead_template = true;
    }

let test_admin_reveal_is_fn () =
  (* The paper's documented FN: the only inline payout sits behind an
     admin-only action whose authority is not in the identity pool. *)
  let spec =
    {
      base with
      BG.Contracts.sp_has_payout = false;
      sp_admin_reveal = true;
      sp_payout_inline = true;
    }
  in
  Alcotest.(check bool) "ground truth vulnerable" true
    (BG.Contracts.ground_truth spec BG.Contracts.Rollback);
  let o = fuzz spec in
  Alcotest.(check bool) "engine misses it (no address pool)" false
    (Core.Engine.flagged o Core.Scanner.Rollback)

let test_deep_gates_need_feedback () =
  let spec =
    {
      base with
      BG.Contracts.sp_payout_inline = true;
      sp_memo_gate = Some "action:buy";
      sp_checks =
        [
          { BG.Contracts.chk_target = BG.Contracts.Chk_amount; chk_value = 123456789L };
          {
            BG.Contracts.chk_target = BG.Contracts.Chk_symbol;
            chk_value = Asset.Symbol.eos;
          };
        ];
    }
  in
  let m, abi = BG.Contracts.build spec in
  let target =
    {
      Core.Engine.tgt_account = n "victim";
      tgt_module = m;
      tgt_abi = abi;
    }
  in
  let with_fb =
    Core.Engine.fuzz
      ~cfg:(Core.Engine.make_config ~rounds:(40) ())
      target
  in
  let without_fb =
    Core.Engine.fuzz
      ~cfg:
        (Core.Engine.make_config ~rounds:(40) ~feedback:false ())
      target
  in
  Alcotest.(check bool) "feedback finds the gated payout" true
    (Core.Engine.flagged with_fb Core.Scanner.Rollback);
  Alcotest.(check bool) "random fuzzing misses it" false
    (Core.Engine.flagged without_fb Core.Scanner.Rollback);
  Alcotest.(check bool) "feedback covers more branches" true
    (with_fb.Core.Engine.out_branches > without_fb.Core.Engine.out_branches)

let test_db_gate_resolved_by_dbg () =
  (* The players-table gate requires a prior deposit; the DBG-driven seed
     selector must sequence it. *)
  let spec =
    { base with BG.Contracts.sp_db_gate = true; sp_payout_inline = true }
  in
  let o = fuzz spec in
  Alcotest.(check bool) "payout behind DB gate reached" true
    (Core.Engine.flagged o Core.Scanner.Rollback)

let test_multi_table_fn () =
  (* Table-level DBG granularity cannot correlate the setup parameter
     with the transfer payer: the paper's documented FN. *)
  let spec =
    {
      base with
      BG.Contracts.sp_auth_check = false;
      sp_deposit_auth = Some true;
      sp_db_gate = true;
      sp_multi_table = true;
    }
  in
  Alcotest.(check bool) "ground truth vulnerable" true
    (BG.Contracts.ground_truth spec BG.Contracts.Miss_auth);
  let o = fuzz spec in
  Alcotest.(check bool) "engine cannot satisfy the meta gate" false
    (Core.Engine.flagged o Core.Scanner.Miss_auth)

let test_obfuscated_detection_stable () =
  let spec =
    {
      base with
      BG.Contracts.sp_fake_eos_guard = false;
      sp_auth_check = false;
      sp_payout_inline = true;
    }
  in
  let m, abi = BG.Contracts.build spec in
  let obf = BG.Obfuscate.obfuscate m in
  let run module_ =
    Core.Engine.fuzz
      ~cfg:(Core.Engine.make_config ~rounds:(24) ())
      { Core.Engine.tgt_account = n "victim"; tgt_module = module_; tgt_abi = abi }
  in
  let o1 = run m and o2 = run obf in
  Alcotest.(check bool) "same verdicts plain/obfuscated" true
    (o1.Core.Engine.out_flags = o2.Core.Engine.out_flags)

let test_exploit_payloads () =
  (* Every positive verdict comes with a concrete exploit payload (the
     paper's "WASAI can produce exploit payloads"). *)
  let spec =
    {
      base with
      BG.Contracts.sp_fake_eos_guard = false;
      sp_payout_inline = true;
      sp_checks =
        [ { BG.Contracts.chk_target = BG.Contracts.Chk_amount; chk_value = 55555L } ];
    }
  in
  let m, abi = BG.Contracts.build spec in
  let o =
    Core.Engine.fuzz
      ~cfg:(Core.Engine.make_config ~rounds:(40) ())
      { Core.Engine.tgt_account = n "victim"; tgt_module = m; tgt_abi = abi }
  in
  List.iter
    (fun (f, fired) ->
      if fired then
        Alcotest.(check bool)
          (Core.Scanner.string_of_flag f ^ " has evidence")
          true
          (List.mem_assoc f o.Core.Engine.out_exploits))
    o.Core.Engine.out_flags;
  (* The Rollback payload must itself satisfy the amount gate: replaying
     it verbatim reaches send_inline. *)
  match List.assoc_opt Core.Scanner.Rollback o.Core.Engine.out_exploits with
  | None -> Alcotest.fail "rollback evidence missing"
  | Some e ->
      let rendered = Core.Scanner.string_of_evidence ~abi e in
      Alcotest.(check bool) "payload decodes with the ABI" true
        (String.length rendered > 0
        &&
        let sub = "5.5555 EOS" in
        let rec contains i =
          i + String.length sub <= String.length rendered
          && (String.sub rendered i (String.length sub) = sub || contains (i + 1))
        in
        contains 0)

let test_time_limit () =
  (* A zero wall-clock budget stops the loop immediately.  Built as a raw
     record on purpose: [make_config] rejects [time_limit <= 0], and this
     test exercises exactly the degenerate engine behaviour the
     validation exists to keep out of real runs. *)
  let m, abi = BG.Contracts.build base in
  let o =
    Core.Engine.fuzz
      ~cfg:
        {
          Core.Engine.default_config with
          Core.Engine.cfg_rounds = 1000;
          cfg_time_limit = Some 0.0;
        }
      { Core.Engine.tgt_account = n "victim"; tgt_module = m; tgt_abi = abi }
  in
  Alcotest.(check int) "no rounds under a zero budget" 0 o.Core.Engine.out_rounds

let test_outcome_accounting () =
  let o = fuzz { base with BG.Contracts.sp_fake_eos_guard = false } in
  Alcotest.(check bool) "transactions ran" true (o.Core.Engine.out_transactions > 0);
  Alcotest.(check bool) "branches found" true (o.Core.Engine.out_branches > 0);
  Alcotest.(check int) "timeline covers rounds" o.Core.Engine.out_rounds
    (List.length o.Core.Engine.out_timeline);
  (* Timeline is monotone. *)
  let rec mono = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "coverage monotone" true (mono o.Core.Engine.out_timeline)

(* A healthy target never hits the collector limit; when a truncated
   trace is reported the text warns that verdicts are best-effort. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_truncation_warning () =
  let o = fuzz { base with BG.Contracts.sp_fake_eos_guard = false } in
  Alcotest.(check int) "healthy target: no truncation" 0
    o.Core.Engine.out_truncated;
  let text_of o = Core.Report.to_text (Core.Report.make ~target:"victim" o) in
  Alcotest.(check bool) "no warning when clean" false
    (contains (text_of o) "WARNING");
  let text = text_of { o with Core.Engine.out_truncated = 2 } in
  Alcotest.(check bool) "warning present" true (contains text "WARNING");
  Alcotest.(check bool) "counts payloads" true
    (contains text "2 payload traces truncated at the collector limit")

(* Corpus preload: a warm run fed the cold run's interesting seeds must
   reproduce the cold verdicts with no more solver work (the replays
   re-open the branches the solver would otherwise have to re-derive),
   and stale vectors — unknown actions, wrong signatures — are skipped,
   not fatal. *)
let test_preload_warm_run () =
  let spec = { base with BG.Contracts.sp_fake_eos_guard = false } in
  let m, abi = BG.Contracts.build spec in
  let tgt =
    { Core.Engine.tgt_account = n "victim"; tgt_module = m; tgt_abi = abi }
  in
  let cfg =
    (Core.Engine.make_config ~rounds:(12) ())
  in
  let cold = Core.Engine.fuzz ~cfg tgt in
  let preload =
    List.map
      (fun (i : Core.Engine.interesting) ->
        (i.Core.Engine.is_action, i.Core.Engine.is_args))
      cold.Core.Engine.out_interesting
  in
  let warm =
    Core.Engine.fuzz ~cfg:{ cfg with Core.Engine.cfg_preload = preload } tgt
  in
  let fired o = List.filter snd o.Core.Engine.out_flags in
  let solver_runs o =
    o.Core.Engine.out_solver.Wasai_smt.Solver.st_quick
    + o.Core.Engine.out_solver.Wasai_smt.Solver.st_blasted
  in
  Alcotest.(check bool) "verdict parity" true (fired cold = fired warm);
  Alcotest.(check bool) "solver work does not grow" true
    (solver_runs warm <= solver_runs cold);
  Alcotest.(check bool) "warm run still covers branches" true
    (warm.Core.Engine.out_branches > 0)

let test_preload_skips_stale_vectors () =
  let m, abi = BG.Contracts.build base in
  let tgt =
    { Core.Engine.tgt_account = n "victim"; tgt_module = m; tgt_abi = abi }
  in
  let stale =
    [
      (n "nosuchact", []);  (* action the ABI does not have *)
      (n "transfer", [ Wasai_eosio.Abi.V_u32 1l ]);  (* wrong signature *)
    ]
  in
  let o =
    Core.Engine.fuzz
      ~cfg:
        (Core.Engine.make_config ~rounds:(4) ~preload:(stale) ())
      tgt
  in
  Alcotest.(check int) "stale vectors ignored, run completes" 4
    o.Core.Engine.out_rounds

(* ------------------------------------------------------------------ *)
(* Flag / channel codecs                                               *)
(* ------------------------------------------------------------------ *)

(* The journal and serve wire formats both lean on these codecs being
   strict inverses: every canonical rendering parses back to the same
   value, and nothing else parses at all. *)
let test_flag_codec () =
  Alcotest.(check int) "eight classes" 8 (List.length Core.Scanner.all_flags);
  Alcotest.(check bool) "all = legacy @ extension" true
    (Core.Scanner.all_flags
    = Core.Scanner.legacy_flags @ Core.Scanner.extension_flags);
  List.iter
    (fun f ->
      let s = Core.Scanner.string_of_flag f in
      Alcotest.(check bool) (s ^ " roundtrips") true
        (Core.Scanner.flag_of_string s = Some f))
    Core.Scanner.all_flags;
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
        (Core.Scanner.flag_of_string s = None))
    [
      ""; "fakeeos"; "FakeEos"; "FakeEOS "; " FakeEOS"; "StateIO"; "stateio";
      "Asset_overflow"; "FakeEOS=1"; "FakeTransfer\n";
    ]

let test_channel_codec () =
  List.iter
    (fun c ->
      let s = Core.Scanner.string_of_channel c in
      Alcotest.(check bool) (s ^ " roundtrips") true
        (Core.Scanner.channel_of_string s = Some c))
    [
      Core.Scanner.Ch_genuine; Core.Scanner.Ch_direct;
      Core.Scanner.Ch_fake_token; Core.Scanner.Ch_fake_notif;
      Core.Scanner.Ch_action (n "deposit");
      Core.Scanner.Ch_action (n "a.b.c");
    ];
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
        (Core.Scanner.channel_of_string s = None))
    [
      ""; "Genuine"; "fake_token"; "fake-token "; "direct\n"; "action:";
      "action:BAD"; "action:0digit"; "action:waytoolongname";
    ]

(* ------------------------------------------------------------------ *)
(* Fused trace scan vs reference list passes                            *)
(* ------------------------------------------------------------------ *)

module Wasabi = Wasai_wasabi
module Wasm = Wasai_wasm

(* The three historical list passes the fused [Engine.scan_trace]
   replaced, reimplemented over the compat record view as the oracle. *)
let ref_edges (meta : Wasabi.Trace.meta) records =
  List.filter_map
    (fun r ->
      match r with
      | Wasabi.Trace.R_instr { site; ops = [ Wasm.Values.I32 c ] } -> (
          match (Wasabi.Trace.site_of meta site).Wasabi.Trace.site_instr with
          | Wasm.Ast.Br_if _ | Wasm.Ast.If _ ->
              Some (site, if c = 0l then 0l else 1l)
          | Wasm.Ast.Br_table _ -> Some (site, c)
          | _ -> None)
      | _ -> None)
    records

let ref_executed records =
  List.filter_map
    (function Wasabi.Trace.R_func_begin f -> Some f | _ -> None)
    records

let ref_read_miss (meta : Wasabi.Trace.meta) db_find records =
  match db_find with
  | None -> (None, None)
  | Some fi ->
      let missed = ref None and hit = ref None in
      let pending = ref None in
      List.iter
        (fun r ->
          match r with
          | Wasabi.Trace.R_call_pre { site; args } -> (
              match (Wasabi.Trace.site_of meta site).Wasabi.Trace.site_instr with
              | Wasm.Ast.Call f when f = fi -> pending := Some args
              | _ -> pending := None)
          | Wasabi.Trace.R_call_post { results; _ } ->
              (match (!pending, results) with
               | ( Some [ _code; _scope; Wasm.Values.I64 table; _id ],
                   [ Wasm.Values.I32 itr ] ) ->
                   if itr = -1l then missed := Some table else hit := Some table
               | _ -> ());
              pending := None
          | _ -> ())
        records;
      (!missed, !hit)

(* Real executions (all adversary channels, DB-gated contract so the
   read-miss machine is exercised both ways): the single streaming pass
   must agree with the reference passes on every payload. *)
let qcheck_fused_scan_equivalence =
  QCheck.Test.make ~name:"fused trace scan = reference list passes" ~count:10
    QCheck.(int_bound 1_000_000)
    (fun rng_seed ->
      let spec =
        {
          base with
          BG.Contracts.sp_fake_eos_guard = false;
          sp_db_gate = true;
          sp_payout_inline = true;
          sp_blockinfo = true;
        }
      in
      let m, abi = BG.Contracts.build spec in
      let cfg =
        (Core.Engine.make_config ~rounds:(2) ~rng_seed:(Int64.of_int rng_seed) ())
      in
      let s =
        Core.Engine.setup cfg
          { Core.Engine.tgt_account = n "victim"; tgt_module = m; tgt_abi = abi }
      in
      let actions = Array.of_list abi.Abi.abi_actions in
      let ok = ref true in
      for round = 0 to 5 do
        let def = actions.(round mod Array.length actions) in
        let seed =
          Core.Seed.random s.Core.Engine.rng
            ~identities:s.Core.Engine.identities def
        in
        let channels =
          if Name.equal def.Abi.act_name Name.transfer then
            Core.Scanner.[ Ch_genuine; Ch_direct; Ch_fake_token; Ch_fake_notif ]
          else [ Core.Scanner.Ch_action def.Abi.act_name ]
        in
        List.iter
          (fun channel ->
            let ex = Core.Engine.run_one s seed channel in
            let records = Wasabi.Trace.Compat.to_list ex.Core.Engine.ex_trace in
            let meta = s.Core.Engine.meta in
            let sc = ex.Core.Engine.ex_scan in
            let missed, hit =
              ref_read_miss meta s.Core.Engine.db_find_import records
            in
            if
              sc.Core.Engine.sc_edges <> ref_edges meta records
              || sc.Core.Engine.sc_executed <> ref_executed records
              || sc.Core.Engine.sc_read_missed <> missed
              || sc.Core.Engine.sc_read_hit <> hit
            then ok := false)
          channels
      done;
      !ok)

(* The adaptive conflict budget never leaves [configured/16,
   configured*4], and a blind run (no feedback, hence no solving) never
   retunes at all. *)
let test_adaptive_budget_bounds () =
  let spec = { base with BG.Contracts.sp_fake_eos_guard = false } in
  let m, abi = BG.Contracts.build spec in
  let tgt =
    { Core.Engine.tgt_account = n "victim"; tgt_module = m; tgt_abi = abi }
  in
  let cfg =
    (Core.Engine.make_config ~rounds:(12) ())
  in
  let o = Core.Engine.fuzz ~cfg tgt in
  let b = cfg.Core.Engine.cfg_solver_budget in
  Alcotest.(check bool) "final budget within [b/16, 4b]" true
    (o.Core.Engine.out_final_budget >= max 1 (b / 16)
    && o.Core.Engine.out_final_budget <= 4 * b);
  let blind =
    Core.Engine.fuzz
      ~cfg:{ cfg with Core.Engine.cfg_feedback = false }
      tgt
  in
  Alcotest.(check int) "blind run never retunes" b
    blind.Core.Engine.out_final_budget

let () =
  Alcotest.run "wasai_core"
    [
      ( "seed-pool",
        [
          Alcotest.test_case "circular queue" `Quick test_pool_circular;
          Alcotest.test_case "adaptive priority" `Quick test_pool_fresh_priority;
          Alcotest.test_case "take_fresh" `Quick test_pool_take_fresh;
        ] );
      ( "dbg",
        [
          Alcotest.test_case "dependency resolution" `Quick test_dbg_dependency;
          Alcotest.test_case "no self dependency" `Quick test_dbg_no_self_dependency;
        ] );
      ( "detection-matrix",
        [
          Alcotest.test_case "all safe" `Quick test_matrix_safe;
          Alcotest.test_case "fake eos" `Quick test_matrix_fake_eos;
          Alcotest.test_case "fake notif" `Quick test_matrix_fake_notif;
          Alcotest.test_case "miss auth" `Quick test_matrix_miss_auth;
          Alcotest.test_case "blockinfo" `Quick test_matrix_blockinfo;
          Alcotest.test_case "rollback" `Quick test_matrix_rollback;
          Alcotest.test_case "everything + gates" `Quick test_matrix_all_with_gates;
          Alcotest.test_case "dead template stays clean" `Quick
            test_matrix_dead_template;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "flag strings are a strict inverse pair" `Quick
            test_flag_codec;
          Alcotest.test_case "channel strings are a strict inverse pair" `Quick
            test_channel_codec;
        ] );
      ( "engine",
        [
          Alcotest.test_case "admin-reveal FN (paper §4.2)" `Quick
            test_admin_reveal_is_fn;
          Alcotest.test_case "deep gates need feedback" `Quick
            test_deep_gates_need_feedback;
          Alcotest.test_case "DB gate via DBG" `Quick test_db_gate_resolved_by_dbg;
          Alcotest.test_case "multi-table FN (paper §5)" `Quick test_multi_table_fn;
          Alcotest.test_case "verdicts stable under obfuscation" `Quick
            test_obfuscated_detection_stable;
          Alcotest.test_case "exploit payloads produced" `Quick
            test_exploit_payloads;
          Alcotest.test_case "wall-clock budget" `Quick test_time_limit;
          Alcotest.test_case "outcome accounting" `Quick test_outcome_accounting;
          Alcotest.test_case "truncation warning" `Quick test_truncation_warning;
          Alcotest.test_case "preloaded warm run" `Quick test_preload_warm_run;
          Alcotest.test_case "stale preload vectors skipped" `Quick
            test_preload_skips_stale_vectors;
          Alcotest.test_case "adaptive budget bounds" `Quick
            test_adaptive_budget_bounds;
          QCheck_alcotest.to_alcotest qcheck_fused_scan_equivalence;
        ] );
    ]
