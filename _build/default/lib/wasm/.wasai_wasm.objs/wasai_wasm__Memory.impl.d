lib/wasm/memory.ml: Ast Bytes Char Int32 Int64 String Types Values
