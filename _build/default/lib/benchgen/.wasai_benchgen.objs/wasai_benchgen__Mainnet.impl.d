lib/benchgen/mainnet.ml: Abi Contracts Int64 List Name Printf Verification Wasai_eosio Wasai_support Wasai_wasm
