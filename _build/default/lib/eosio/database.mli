(** The chain's key-value store behind the [db_*_i64] host API.

    Rows live in tables addressed by (code, scope, table); each row is an
    id → bytes binding.  Values are immutable maps, so a snapshot is a
    shallow copy — which is what makes whole-transaction rollback cheap.

    Every operation is reported to [on_access]; WASAI's Engine listens to
    build the database-dependency graph (§3.3.2). *)

module I64Map : Map.S with type key = int64

type table_key = { tk_code : Name.t; tk_scope : Name.t; tk_table : Name.t }

type access_kind = Read | Write

type access = {
  acc_kind : access_kind;
  acc_code : Name.t;
  acc_table : Name.t;
}

type iterator_target = { it_key : table_key; it_id : int64 }

type t = {
  mutable tables : (table_key, string I64Map.t) Hashtbl.t;
  iterators : (int, iterator_target) Hashtbl.t;
  mutable next_iterator : int;
  mutable on_access : (access -> unit) option;
}

type snapshot

val create : unit -> t

(** {1 The db_*_i64 intrinsics} *)

val store :
  t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> id:int64 -> data:string -> int
(** Store a new row; traps on duplicate primary key.  Returns an
    iterator. *)

val find : t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> id:int64 -> int
(** Iterator of the row, or -1. *)

val lowerbound :
  t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> id:int64 -> int

val get : t -> int -> string
val update : t -> int -> data:string -> unit
val remove : t -> int -> unit

val next : t -> int -> int * int64
(** Next row: (iterator, primary id), or (-1, 0). *)

val primary : t -> int -> int64

val iterator_target : t -> int -> iterator_target
(** Resolve an iterator handle; traps when stale. *)

(** {1 Higher-level helpers (native contracts)} *)

val get_row :
  t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> id:int64 -> string option

val put_row :
  t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> id:int64 -> data:string -> unit

val delete_row : t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> id:int64 -> unit
val rows : t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> (int64 * string) list

(** {1 Secondary indexes (db_idx64)}

    Parallel u64-keyed indexes mapping a secondary key to the row's
    primary key, stored under a derived table so snapshots and rollback
    cover them automatically. *)

val idx64_store :
  t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> primary:int64 ->
  secondary:int64 -> int

val idx64_remove :
  t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> primary:int64 -> unit

val idx64_update :
  t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> primary:int64 ->
  secondary:int64 -> unit

val idx64_find_secondary :
  t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> secondary:int64 ->
  int * int64
(** (iterator, primary) of the first row with that secondary key, or
    (-1, 0). *)

val idx64_lowerbound :
  t -> code:Name.t -> scope:Name.t -> tbl:Name.t -> secondary:int64 ->
  int * int64

(** {1 Snapshots} *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val clear : t -> unit
