(** [wasai-serve-v1] — see wire.mli for the grammar.  The implementation
    follows the journal/corpus parsers: build lines by concatenation,
    parse by exact field-count match, validate every field, reject with
    a reason. *)

module Journal = Wasai_campaign.Journal

let magic = "wasai-serve-v1"

(* ------------------------------------------------------------------ *)
(* Alphabets                                                           *)
(* ------------------------------------------------------------------ *)

let valid_tenant s =
  let n = String.length s in
  n >= 1 && n <= 32 && s <> "." && s <> ".."
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       s

let valid_target s =
  let n = String.length s in
  n >= 1 && n <= 12
  && String.for_all (function 'a' .. 'z' | '1' .. '5' | '.' -> true | _ -> false) s

(* ------------------------------------------------------------------ *)
(* Hex codec                                                           *)
(* ------------------------------------------------------------------ *)

let hex_of_string s =
  let digit n = "0123456789abcdef".[n] in
  String.init
    (2 * String.length s)
    (fun i ->
      let c = Char.code s.[i / 2] in
      if i mod 2 = 0 then digit (c lsr 4) else digit (c land 0xf))

exception Bad_hex

let string_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex"
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | _ -> raise Bad_hex
    in
    match
      String.init (n / 2) (fun i ->
          Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
    with
    | bytes -> Ok bytes
    | exception Bad_hex -> Error "bad hex digit"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type request =
  | Submit of {
      rq_tenant : string;
      rq_name : string;
      rq_wasm : string;
      rq_abi : string option;
      rq_slices : int;
    }
  | Ping
  | Stats of string
  | Metrics
  | Shutdown

type verdict_kind = Fresh | Cached

type response =
  | Queued of { rp_tenant : string; rp_name : string; rp_depth : int }
  | Busy of {
      rp_tenant : string;
      rp_name : string;
      rp_retry_ms : int;
      rp_depth : int;
    }
  | Verdict of {
      rp_tenant : string;
      rp_kind : verdict_kind;
      rp_wait_ms : int;
      rp_entry : Journal.entry;
    }
  | Err of { rp_name : string option; rp_reason : string }
  | Pong of { rp_jobs : int; rp_tenants : int }
  | StatsReply of {
      rp_tenant : string;
      rp_submitted : int;
      rp_completed : int;
      rp_rejected : int;
      rp_qwait : string;
      rp_latency : string;
      rp_uptime_ms : int;
      rp_backend : string;
    }
  | MetricsReply of { rp_body : string }
  | Bye of { rp_completed : int }

(* ------------------------------------------------------------------ *)
(* Field helpers                                                       *)
(* ------------------------------------------------------------------ *)

(* "key=1234" with a strict non-negative decimal payload. *)
let keyed key n = Printf.sprintf "%s=%d" key n

let parse_keyed key s =
  let prefix = key ^ "=" in
  let pn = String.length prefix in
  if String.length s <= pn || not (String.starts_with ~prefix s) then
    Error (Printf.sprintf "expected %s=<int>, got %S" key s)
  else
    let digits = String.sub s pn (String.length s - pn) in
    if not (String.for_all (function '0' .. '9' -> true | _ -> false) digits)
    then Error (Printf.sprintf "non-decimal %s value %S" key digits)
    else
      match int_of_string_opt digits with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "unparseable %s value %S" key digits)

(* "key=token" where the token is opaque but must be tab/space-free and
   non-empty (the histogram wire rendering). *)
let keyed_str key s = key ^ "=" ^ s

let parse_keyed_str key s =
  let prefix = key ^ "=" in
  let pn = String.length prefix in
  if String.length s <= pn || not (String.starts_with ~prefix s) then
    Error (Printf.sprintf "expected %s=<token>, got %S" key s)
  else
    let v = String.sub s pn (String.length s - pn) in
    if String.exists (function ' ' | '\t' -> true | _ -> false) v then
      Error (Printf.sprintf "%s token contains whitespace" key)
    else Ok v

let sanitize_reason reason =
  let flat =
    String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) reason
  in
  if flat = "" then "error" else flat

let check_tenant t =
  if valid_tenant t then Ok t else Error (Printf.sprintf "invalid tenant %S" t)

let check_target n =
  if valid_target n then Ok n
  else Error (Printf.sprintf "invalid target name %S" n)

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let line_of_request = function
  | Ping -> magic ^ "\tPING"
  | Metrics -> magic ^ "\tMETRICS"
  | Shutdown -> magic ^ "\tSHUTDOWN"
  | Stats tenant ->
      if not (valid_tenant tenant) then
        invalid_arg (Printf.sprintf "Wire.line_of_request: invalid tenant %S" tenant);
      String.concat "\t" [ magic; "STATS"; tenant ]
  | Submit { rq_tenant; rq_name; rq_wasm; rq_abi; rq_slices } ->
      if not (valid_tenant rq_tenant) then
        invalid_arg
          (Printf.sprintf "Wire.line_of_request: invalid tenant %S" rq_tenant);
      if not (valid_target rq_name) then
        invalid_arg
          (Printf.sprintf "Wire.line_of_request: invalid target name %S" rq_name);
      if rq_wasm = "" then
        invalid_arg "Wire.line_of_request: empty module bytes";
      if rq_slices < 1 then
        invalid_arg "Wire.line_of_request: slices must be >= 1";
      String.concat "\t"
        ([
           magic;
           "SUBMIT";
           rq_tenant;
           rq_name;
           hex_of_string rq_wasm;
           (match rq_abi with Some abi -> hex_of_string abi | None -> "-");
         ]
        (* the unsliced form stays the classic 6-field line byte for
           byte, so v1 peers interoperate *)
        @ if rq_slices = 1 then [] else [ keyed "slices" rq_slices ])

let request_of_line line =
  match String.split_on_char '\t' line with
  | m :: _ when m <> magic -> Error (Printf.sprintf "bad magic %S" m)
  | [ _; "PING" ] -> Ok Ping
  | [ _; "METRICS" ] -> Ok Metrics
  | [ _; "SHUTDOWN" ] -> Ok Shutdown
  | [ _; "STATS"; tenant ] ->
      let* tenant = check_tenant tenant in
      Ok (Stats tenant)
  | [ _; "SUBMIT"; tenant; name; wasmhex; abihex ]
  | [ _; "SUBMIT"; tenant; name; wasmhex; abihex; _ ] -> (
      let slices_field =
        match String.split_on_char '\t' line with
        | [ _; _; _; _; _; _; s ] -> Some s
        | _ -> None
      in
      let* tenant = check_tenant tenant in
      let* name = check_target name in
      let* wasm = string_of_hex wasmhex in
      if wasm = "" then Error "empty module bytes"
      else
        let* abi =
          if abihex = "-" then Ok None
          else
            let* abi = string_of_hex abihex in
            Ok (Some abi)
        in
        let* slices =
          match slices_field with
          | None -> Ok 1
          | Some s ->
              let* k = parse_keyed "slices" s in
              if k < 1 then Error "slices must be >= 1" else Ok k
        in
        Ok
          (Submit
             {
               rq_tenant = tenant;
               rq_name = name;
               rq_wasm = wasm;
               rq_abi = abi;
               rq_slices = slices;
             }))
  | _ :: verb :: _ ->
      Error (Printf.sprintf "unknown or malformed request %S" verb)
  | _ -> Error "empty request"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let string_of_kind = function Fresh -> "fresh" | Cached -> "cached"

let kind_of_string = function
  | "fresh" -> Ok Fresh
  | "cached" -> Ok Cached
  | s -> Error (Printf.sprintf "unknown verdict kind %S" s)

let line_of_response = function
  | Queued { rp_tenant; rp_name; rp_depth } ->
      String.concat "\t"
        [ magic; "QUEUED"; rp_tenant; rp_name; keyed "depth" rp_depth ]
  | Busy { rp_tenant; rp_name; rp_retry_ms; rp_depth } ->
      String.concat "\t"
        [
          magic;
          "BUSY";
          rp_tenant;
          rp_name;
          keyed "retry-after" rp_retry_ms;
          keyed "depth" rp_depth;
        ]
  | Verdict { rp_tenant; rp_kind; rp_wait_ms; rp_entry } ->
      String.concat "\t"
        [
          magic;
          "VERDICT";
          rp_tenant;
          string_of_kind rp_kind;
          keyed "wait" rp_wait_ms;
          (* the journal line carries tabs of its own; the parser rejoins
             every remaining field *)
          Journal.line_of_entry rp_entry;
        ]
  | Err { rp_name; rp_reason } ->
      String.concat "\t"
        [
          magic;
          "ERR";
          (match rp_name with Some n -> n | None -> "-");
          sanitize_reason rp_reason;
        ]
  | Pong { rp_jobs; rp_tenants } ->
      String.concat "\t"
        [ magic; "PONG"; keyed "jobs" rp_jobs; keyed "tenants" rp_tenants ]
  | StatsReply
      {
        rp_tenant;
        rp_submitted;
        rp_completed;
        rp_rejected;
        rp_qwait;
        rp_latency;
        rp_uptime_ms;
        rp_backend;
      } ->
      String.concat "\t"
        [
          magic;
          "STATS";
          rp_tenant;
          keyed "submitted" rp_submitted;
          keyed "completed" rp_completed;
          keyed "rejected" rp_rejected;
          keyed_str "qwait" rp_qwait;
          keyed_str "latency" rp_latency;
          keyed "uptime" rp_uptime_ms;
          keyed_str "backend" rp_backend;
        ]
  | MetricsReply { rp_body } ->
      (* The exposition is free multi-line text; the hex codec that
         carries module bytes on SUBMIT flattens it into one token. *)
      String.concat "\t" [ magic; "METRICS"; hex_of_string rp_body ]
  | Bye { rp_completed } ->
      String.concat "\t" [ magic; "BYE"; keyed "completed" rp_completed ]

let response_of_line line =
  match String.split_on_char '\t' line with
  | m :: _ when m <> magic -> Error (Printf.sprintf "bad magic %S" m)
  | [ _; "QUEUED"; tenant; name; depth ] ->
      let* tenant = check_tenant tenant in
      let* name = check_target name in
      let* depth = parse_keyed "depth" depth in
      Ok (Queued { rp_tenant = tenant; rp_name = name; rp_depth = depth })
  | [ _; "BUSY"; tenant; name; retry; depth ] ->
      let* tenant = check_tenant tenant in
      let* name = check_target name in
      let* retry = parse_keyed "retry-after" retry in
      let* depth = parse_keyed "depth" depth in
      Ok
        (Busy
           { rp_tenant = tenant; rp_name = name; rp_retry_ms = retry; rp_depth = depth })
  | _ :: "VERDICT" :: tenant :: kind :: wait :: (_ :: _ as rest) ->
      let* tenant = check_tenant tenant in
      let* kind = kind_of_string kind in
      let* wait = parse_keyed "wait" wait in
      let* entry =
        (* the embedded journal line was split with the envelope *)
        Journal.entry_of_line (String.concat "\t" rest)
      in
      Ok
        (Verdict
           { rp_tenant = tenant; rp_kind = kind; rp_wait_ms = wait; rp_entry = entry })
  | [ _; "ERR"; name; reason ] ->
      let* name =
        (* the subject is a target name for submission failures and a
           tenant name for STATS failures *)
        if name = "-" then Ok None
        else if valid_target name || valid_tenant name then Ok (Some name)
        else Error (Printf.sprintf "invalid error subject %S" name)
      in
      Ok (Err { rp_name = name; rp_reason = reason })
  | [ _; "PONG"; jobs; tenants ] ->
      let* jobs = parse_keyed "jobs" jobs in
      let* tenants = parse_keyed "tenants" tenants in
      Ok (Pong { rp_jobs = jobs; rp_tenants = tenants })
  | [
      _; "STATS"; tenant; submitted; completed; rejected; qwait; latency;
      uptime; backend;
    ] ->
      let* tenant = check_tenant tenant in
      let* submitted = parse_keyed "submitted" submitted in
      let* completed = parse_keyed "completed" completed in
      let* rejected = parse_keyed "rejected" rejected in
      let* qwait = parse_keyed_str "qwait" qwait in
      let* latency = parse_keyed_str "latency" latency in
      let* uptime = parse_keyed "uptime" uptime in
      let* backend = parse_keyed_str "backend" backend in
      Ok
        (StatsReply
           {
             rp_tenant = tenant;
             rp_submitted = submitted;
             rp_completed = completed;
             rp_rejected = rejected;
             rp_qwait = qwait;
             rp_latency = latency;
             rp_uptime_ms = uptime;
             rp_backend = backend;
           })
  | [ _; "METRICS"; bodyhex ] ->
      let* body = string_of_hex bodyhex in
      Ok (MetricsReply { rp_body = body })
  | [ _; "BYE"; completed ] ->
      let* completed = parse_keyed "completed" completed in
      Ok (Bye { rp_completed = completed })
  | _ :: verb :: _ ->
      Error (Printf.sprintf "unknown or malformed response %S" verb)
  | _ -> Error "empty response"
