(** Calling-convention input inference (challenge C3, §3.4.2, Table 2).

    Symbolic execution starts at the action function, skipping the
    dispatcher and deserialisation code.  The deserialised inputs live in
    the action function's Local section: scalar parameters are locals
    directly; [asset] and [string] parameters are i32 pointers whose
    pointees get symbolic bytes in the memory model.  Local 0 is the SDK's
    receiver/object handle.

    This module also locates candidate action functions, using the
    indirect-call-table pattern the EOSIO SDK emits, falling back to
    direct callees of [apply] with an action-like signature. *)

module Wasm = Wasai_wasm
module Expr = Wasai_smt.Expr
module Abi = Wasai_eosio.Abi

type sym_param =
  | SP_scalar of Expr.var  (** name / u64 / u32 *)
  | SP_asset of { amount : Expr.var; symbol : Expr.var }
  | SP_string of { len : Expr.var; content : Expr.var array }

type layout = {
  lay_def : Abi.action_def;
  lay_params : (string * Abi.param_type * sym_param) list;
  lay_locals : (int * Expr.t) list;
      (** initial Local-section bindings of the action function *)
}

(** Build the symbolic layout for an action invocation.  [concrete_args]
    are the runtime argument values observed in the call_pre trace record
    (used for the pointer locals, which stay concrete — the memory model
    is concrete-address). *)
let infer (def : Abi.action_def)
    (concrete_args : Wasm.Values.value list) : layout =
  let args = Array.of_list concrete_args in
  let locals = ref [] in
  let params = ref [] in
  (* Local 0: the receiver handle, kept concrete. *)
  (if Array.length args > 0 then
     locals := (0, Expr.const 64 (Wasm.Values.raw_bits args.(0))) :: !locals);
  List.iteri
    (fun i (pname, ty) ->
      let slot = i + 1 in
      let concrete () =
        if slot < Array.length args then Wasm.Values.raw_bits args.(slot)
        else 0L
      in
      match (ty : Abi.param_type) with
      | Abi.T_name | Abi.T_u64 ->
          let v = Expr.fresh_var ~name:pname 64 in
          locals := (slot, Expr.var v) :: !locals;
          params := (pname, ty, SP_scalar v) :: !params
      | Abi.T_u32 ->
          let v = Expr.fresh_var ~name:pname 32 in
          locals := (slot, Expr.var v) :: !locals;
          params := (pname, ty, SP_scalar v) :: !params
      | Abi.T_asset ->
          (* Pointer local stays concrete; pointee becomes symbolic. *)
          let ptr = Int64.to_int (concrete ()) in
          let amount = Expr.fresh_var ~name:(pname ^ ".amount") 64 in
          let symbol = Expr.fresh_var ~name:(pname ^ ".symbol") 64 in
          locals := (slot, Expr.const 32 (Int64.of_int ptr)) :: !locals;
          params := (pname, ty, SP_asset { amount; symbol }) :: !params
      | Abi.T_string ->
          let ptr = Int64.to_int (concrete ()) in
          let len = Expr.fresh_var ~name:(pname ^ ".len") 8 in
          (* Content variables cover a bounded window; the engine decides
             how many bytes the mutated seed actually carries. *)
          let content =
            Array.init 32 (fun k ->
                Expr.fresh_var ~name:(Printf.sprintf "%s[%d]" pname k) 8)
          in
          ignore ptr;
          locals := (slot, Expr.const 32 (Int64.of_int ptr)) :: !locals;
          params := (pname, ty, SP_string { len; content }) :: !params)
    def.Abi.act_params;
  { lay_def = def; lay_params = List.rev !params; lay_locals = List.rev !locals }

(** Seed the memory model with the symbolic pointees of asset/string
    parameters (paper Table 2's linear-memory column). *)
let init_memory (lay : layout) (concrete_args : Wasm.Values.value list)
    (mem : Memmodel.t) =
  let args = Array.of_list concrete_args in
  List.iteri
    (fun i (_, ty, sp) ->
      let slot = i + 1 in
      let ptr () =
        if slot < Array.length args then
          Int64.to_int (Wasm.Values.raw_bits args.(slot))
        else 0
      in
      match (ty, sp) with
      | Abi.T_asset, SP_asset { amount; symbol } ->
          let p = ptr () in
          Memmodel.store mem ~addr:p ~width_bytes:8 (Expr.var amount);
          Memmodel.store mem ~addr:(p + 8) ~width_bytes:8 (Expr.var symbol)
      | Abi.T_string, SP_string { len; content } ->
          let p = ptr () in
          Memmodel.store mem ~addr:p ~width_bytes:1 (Expr.var len);
          Array.iteri
            (fun k v -> Memmodel.store mem ~addr:(p + 1 + k) ~width_bytes:1 (Expr.var v))
            content
      | _ -> ())
    lay.lay_params

(* ------------------------------------------------------------------ *)
(* Locating action functions                                          *)
(* ------------------------------------------------------------------ *)

(* Does a function type look like an action function?  The SDK passes the
   i64 receiver handle first, then at least one action parameter, and
   action functions return nothing. *)
let action_like (ft : Wasm.Types.func_type) =
  match ft.Wasm.Types.params with
  | Wasm.Types.I64 :: _ :: _ -> ft.Wasm.Types.results = []
  | _ -> false

(** Candidate action-function indices of a module: entries of the
    indirect-call table (the SDK dispatcher pattern, §3.4.2) plus direct
    callees of the exported [apply] with an action-like signature. *)
let find_action_functions (m : Wasm.Ast.module_) : int list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Wasm.Ast.elem_segment) ->
      List.iter
        (fun fi ->
          if action_like (Wasm.Ast.func_type_at m fi) then
            Hashtbl.replace tbl fi ())
        e.Wasm.Ast.e_init)
    m.Wasm.Ast.elems;
  (match Wasm.Ast.exported_func m "apply" with
   | None -> ()
   | Some apply_idx ->
       let n_imp = Wasm.Ast.num_func_imports m in
       if apply_idx >= n_imp then begin
         let f = m.Wasm.Ast.funcs.(apply_idx - n_imp) in
         Wasm.Ast.iter_instrs
           (fun i ->
             match i with
             | Wasm.Ast.Call fi
               when fi >= n_imp && action_like (Wasm.Ast.func_type_at m fi) ->
                 Hashtbl.replace tbl fi ()
             | _ -> ())
           f.Wasm.Ast.body
       end);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

(* ------------------------------------------------------------------ *)
(* Model → seed concretisation                                        *)
(* ------------------------------------------------------------------ *)

let model_value (model : Wasai_smt.Solver.model) (v : Expr.var) ~(default : int64) =
  match Hashtbl.find_opt model v.Expr.vid with
  | Some x -> Expr.mask v.Expr.vwidth x
  | None -> default

(** Turn a solver model into concrete action arguments, falling back to
    the current seed's values for unconstrained parameters. *)
let concretize (lay : layout) (model : Wasai_smt.Solver.model)
    ~(current : Abi.value list) : Abi.value list =
  let current = Array.of_list current in
  List.mapi
    (fun i (_, ty, sp) ->
      let cur () = if i < Array.length current then Some current.(i) else None in
      match (ty, sp) with
      | (Abi.T_name | Abi.T_u64), SP_scalar v ->
          let default =
            match cur () with
            | Some (Abi.V_name n) -> n
            | Some (Abi.V_u64 x) -> x
            | _ -> 0L
          in
          let value = model_value model v ~default in
          if ty = Abi.T_name then Abi.V_name value else Abi.V_u64 value
      | Abi.T_u32, SP_scalar v ->
          let default =
            match cur () with Some (Abi.V_u32 x) -> Int64.of_int32 x | _ -> 0L
          in
          Abi.V_u32 (Int64.to_int32 (model_value model v ~default))
      | Abi.T_asset, SP_asset { amount; symbol } ->
          let cur_asset =
            match cur () with
            | Some (Abi.V_asset a) -> a
            | _ -> Wasai_eosio.Asset.eos_of_units 0L
          in
          let amt = model_value model amount ~default:cur_asset.Wasai_eosio.Asset.amount in
          let sym = model_value model symbol ~default:cur_asset.Wasai_eosio.Asset.symbol in
          Abi.V_asset (Wasai_eosio.Asset.make amt sym)
      | Abi.T_string, SP_string { len; content } ->
          let cur_s = match cur () with Some (Abi.V_string s) -> s | _ -> "" in
          let target_len =
            Int64.to_int (model_value model len ~default:(Int64.of_int (String.length cur_s)))
          in
          (* If the model constrains a content byte to something *new*
             (different from the current seed's byte at that index), the
             string must grow to carry it.  Bytes merely pinned to their
             current values must not override a solved length. *)
          let needed =
            Array.to_list content
            |> List.mapi (fun k v ->
                   match Hashtbl.find_opt model v.Expr.vid with
                   | Some x ->
                       let x = Expr.mask 8 x in
                       let cur_byte =
                         if k < String.length cur_s then
                           Some (Int64.of_int (Char.code cur_s.[k]))
                         else None
                       in
                       if cur_byte = Some x || x = 0L then 0 else k + 1
                   | None -> 0)
            |> List.fold_left max 0
          in
          let target_len = max target_len needed in
          let target_len = max 0 (min 255 target_len) in
          Abi.V_string
            (String.init target_len (fun k ->
                 let default =
                   if k < String.length cur_s then
                     Int64.of_int (Char.code cur_s.[k])
                   else 97L (* 'a' *)
                 in
                 let b =
                   if k < Array.length content then
                     model_value model content.(k) ~default
                   else default
                 in
                 Char.chr (Int64.to_int (Int64.logand b 0xFFL))))
      | _ -> ( match cur () with Some v -> v | None -> Abi.V_u64 0L))
    lay.lay_params
