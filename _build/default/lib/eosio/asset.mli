(** EOSIO assets: a 64-bit signed amount plus a symbol packing precision
    and up to seven uppercase letters, as in Nodeos.  "100.0000 EOS" has
    amount 1000000 and symbol [4,"EOS"]. *)

module Symbol : sig
  type t = int64

  val make : precision:int -> string -> t
  val precision : t -> int
  val code : t -> string
  val to_string : t -> string
  val equal : t -> t -> bool

  val eos : t
  (** The official EOS symbol: precision 4, code "EOS". *)
end

type t = { amount : int64; symbol : Symbol.t }

val make : int64 -> Symbol.t -> t

val eos_of_units : int64 -> t
(** EOS with the canonical 4-decimal precision; the unit is 0.0001 EOS. *)

val of_string : string -> t
(** Parse "10.0000 EOS" style literals. *)

val to_string : t -> string
val add : t -> t -> t
val sub : t -> t -> t
val is_valid : t -> bool
val equal : t -> t -> bool
val compare_amount : t -> t -> int
val pp : Format.formatter -> t -> unit
