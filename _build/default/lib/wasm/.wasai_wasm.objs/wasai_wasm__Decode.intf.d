lib/wasm/decode.mli: Ast
