;; The paper's Listing 1, unpatched: the dispatcher runs the eosponser for
;; any action named "transfer", never checking that the notification came
;; from the official token (code == N(eosio.token)).  Anyone can invoke it
;; directly or pay with counterfeit EOS.
;;
;; Constants: N(transfer) = -3617168760277827584
;;            N(eosio.token) = 6138663591592764928
;;
;; Assemble with:  wasai build listing1_fake_eos.wat listing1.wasm

(module
  (import "env" "read_action_data" (func (param i32 i32) (result i32)))
  (import "env" "action_data_size" (func (result i32)))
  (import "env" "send_inline" (func (param i32 i32)))
  (memory 2)

  ;; eosponser(self, from, to, quantity_ptr, memo_ptr):
  ;; reward the payer by echoing the quantity back through an inline
  ;; transfer — without ever asking which token contract notified us.
  (func $eosponser (param i64 i64 i64 i32 i32)
    ;; ignore our own outgoing transfers
    local.get 1
    local.get 0
    i64.eq
    (if (then return))
    ;; inline action buffer at 128:
    ;;   account | name | datalen | from | to | amount | symbol | memo len
    i32.const 128
    i64.const 6138663591592764928   ;; eosio.token
    i64.store
    i32.const 136
    i64.const -3617168760277827584  ;; "transfer"
    i64.store
    i32.const 144
    i32.const 33
    i32.store
    i32.const 148
    local.get 0                     ;; from = self
    i64.store
    i32.const 156
    local.get 1                     ;; to = the payer
    i64.store
    i32.const 164
    local.get 3
    i64.load                        ;; amount = incoming quantity
    i64.store
    i32.const 172
    local.get 3
    i64.load offset=8               ;; symbol
    i64.store
    i32.const 180
    i32.const 0                     ;; empty memo
    i32.store8
    i32.const 128
    i32.const 53
    call 2                          ;; send_inline
  )

  ;; apply(receiver, code, action) — Listing 1 without line 4's patch.
  (func $apply (param i64 i64 i64)
    local.get 2
    i64.const -3617168760277827584  ;; N(transfer)
    i64.eq
    (if
      (then
        ;; deserialize: read_action_data(1024, action_data_size())
        i32.const 1024
        call 1
        call 0
        drop
        ;; run(eosponser) — the vulnerable line 5
        local.get 0
        i32.const 1024
        i64.load
        i32.const 1024
        i64.load offset=8
        i32.const 1040
        i32.const 1056
        call $eosponser
      )
    )
  )

  (export "apply" (func $apply))
)
