(** Client side of the serve protocol: connect to a daemon's socket,
    submit contracts, stream verdicts — the library behind
    [wasai submit]. *)

module Core = Wasai_core
module Journal = Wasai_campaign.Journal

exception Protocol_error of string
(** The daemon hung up, answered a malformed line, or reported a
    protocol-level [ERR] (no subject). *)

type t

val connect : string -> t
(** Connect to the daemon socket.  Raises [Unix.Unix_error] when no
    daemon is listening. *)

val close : t -> unit

val send : t -> Wire.request -> unit
(** Write one request line (blocking until fully written). *)

val next : t -> Wire.response
(** Read the next response line (blocking).  Raises {!Protocol_error}
    on EOF or a malformed line. *)

(** {2 Contract loading} *)

type contract = {
  ct_name : string;
      (** the submission's target name, derived from the file basename
          exactly as batch discovery does
          ({!Wasai_campaign.Discover.account_of_filename}) — so a serve
          submission and a batch campaign over the same directory key
          their journals identically *)
  ct_wasm : string;  (** raw file bytes (binary Wasm or .wat text) *)
  ct_abi : string option;  (** ABI sidecar text, when present *)
}

val contract_of_file : string -> contract
(** Load one [.wasm]/[.wat] file and its optional [<file>.abi] /
    [<base>.abi] sidecar.  Raises [Sys_error] on an unreadable file. *)

val contracts_of_path : string -> contract list
(** A single file, or every usable contract in a directory (via
    {!Wasai_campaign.Discover.contract_files}, which skips bad entries
    with a warning). *)

(** {2 Batch submission} *)

type batch = {
  bt_verdicts : (string * Wire.verdict_kind * Journal.entry) list;
      (** completed submissions in verdict-arrival order *)
  bt_retries : int;  (** BUSY backpressure replies absorbed (after back-off) *)
  bt_errors : (string * string) list;  (** per-submission failures *)
}

val submit_batch :
  ?progress:(Wire.response -> unit) ->
  ?slices:int ->
  t ->
  tenant:string ->
  contract list ->
  batch
(** Submit every contract under [tenant] and wait for all verdicts.
    Streamed verdicts for earlier submissions are consumed (and handed
    to [progress]) while later admissions are still in flight; a [BUSY]
    reply sleeps for the daemon's [retry-after] hint and resubmits.
    [slices] (default 1 — the classic wire form) asks the daemon to
    partition each submission's round budget into K parallel slices;
    the daemon clamps K and the verdict is byte-identical whatever K.
    Raises {!Protocol_error} on a protocol-level failure. *)
