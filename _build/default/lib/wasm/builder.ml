(** Programmatic module construction.

    The benchmark generator assembles whole contracts with this builder,
    then encodes them to real binaries.  Function indices are allocated in
    the order of declaration, with all imports first (mirroring the binary
    index space); declaring a function before setting its body supports
    recursion and indirect-call tables. *)

type t = {
  mutable types : Types.func_type list;  (** reversed *)
  mutable n_types : int;
  mutable imports : Ast.import list;  (** reversed *)
  mutable n_func_imports : int;
  mutable funcs : Ast.func option array;
  mutable n_funcs : int;
  mutable globals : Ast.global list;  (** reversed *)
  mutable n_globals : int;
  mutable exports : Ast.export list;  (** reversed *)
  mutable memory : Types.memory_type option;
  mutable table : Types.table_type option;
  mutable elems : Ast.elem_segment list;  (** reversed *)
  mutable datas : Ast.data_segment list;  (** reversed *)
  mutable start : int option;
  mutable sealed_imports : bool;
}

let create () =
  {
    types = [];
    n_types = 0;
    imports = [];
    n_func_imports = 0;
    funcs = Array.make 8 None;
    n_funcs = 0;
    globals = [];
    n_globals = 0;
    exports = [];
    memory = None;
    table = None;
    elems = [];
    datas = [];
    start = None;
    sealed_imports = false;
  }

(** Intern a function type, returning its index. *)
let add_type b (ft : Types.func_type) : int =
  let rec find i = function
    | [] -> None
    | t :: rest ->
        if Types.equal_func_type t ft then Some (b.n_types - 1 - i)
        else find (i + 1) rest
  in
  match find 0 b.types with
  | Some i -> i
  | None ->
      b.types <- ft :: b.types;
      b.n_types <- b.n_types + 1;
      b.n_types - 1

(** Import a function; must precede all local function declarations. *)
let import_func b ~module_:m ~name (ft : Types.func_type) : int =
  if b.sealed_imports then
    invalid_arg "Builder.import_func: imports must precede local functions";
  let ti = add_type b ft in
  b.imports <-
    { Ast.imp_module = m; imp_name = name; idesc = Ast.Func_import ti }
    :: b.imports;
  b.n_func_imports <- b.n_func_imports + 1;
  b.n_func_imports - 1

let ensure_capacity b =
  if b.n_funcs >= Array.length b.funcs then begin
    let bigger = Array.make (2 * Array.length b.funcs) None in
    Array.blit b.funcs 0 bigger 0 b.n_funcs;
    b.funcs <- bigger
  end

(** Reserve a function index; the body is supplied later via {!set_body}. *)
let declare_func b ?name (ft : Types.func_type) : int =
  b.sealed_imports <- true;
  ensure_capacity b;
  let ti = add_type b ft in
  let idx = b.n_func_imports + b.n_funcs in
  b.funcs.(b.n_funcs) <-
    Some { Ast.ftype = ti; locals = []; body = [ Ast.Unreachable ]; fname = name };
  b.n_funcs <- b.n_funcs + 1;
  idx

let set_body b idx ?(locals = []) body =
  let local_idx = idx - b.n_func_imports in
  if local_idx < 0 || local_idx >= b.n_funcs then
    invalid_arg "Builder.set_body: not a local function index";
  match b.funcs.(local_idx) with
  | None -> assert false
  | Some f -> b.funcs.(local_idx) <- Some { f with Ast.locals; body }

(** Declare a function and set its body at once. *)
let add_func b ?name ?(locals = []) (ft : Types.func_type) body : int =
  let idx = declare_func b ?name ft in
  set_body b idx ~locals body;
  idx

let add_global b ?(mut = Types.Mutable) (init : Values.value) : int =
  b.globals <-
    {
      Ast.gtype = { Types.gt_mut = mut; gt_type = Values.type_of init };
      ginit = [ Ast.Const init ];
    }
    :: b.globals;
  b.n_globals <- b.n_globals + 1;
  b.n_globals - 1

let add_memory b ?max pages =
  b.memory <- Some { Types.mem_limits = { Types.lim_min = pages; lim_max = max } }

let add_table b size =
  b.table <-
    Some { Types.tbl_limits = { Types.lim_min = size; lim_max = Some size } }

let add_elem b ~offset (funcs : int list) =
  (match b.table with
   | None -> add_table b (offset + List.length funcs)
   | Some tt ->
       let needed = offset + List.length funcs in
       if tt.tbl_limits.lim_min < needed then
         b.table <-
           Some { Types.tbl_limits = { Types.lim_min = needed; lim_max = Some needed } });
  b.elems <-
    { Ast.e_offset = [ Ast.Const (Values.I32 (Int32.of_int offset)) ]; e_init = funcs }
    :: b.elems

let add_data b ~offset (s : string) =
  b.datas <-
    { Ast.d_offset = [ Ast.Const (Values.I32 (Int32.of_int offset)) ]; d_init = s }
    :: b.datas

let export_func b name idx =
  b.exports <- { Ast.ename = name; edesc = Ast.Func_export idx } :: b.exports

let export_memory b name =
  b.exports <- { Ast.ename = name; edesc = Ast.Memory_export 0 } :: b.exports

let set_start b idx = b.start <- Some idx

let build b : Ast.module_ =
  {
    Ast.types = Array.of_list (List.rev b.types);
    imports = List.rev b.imports;
    funcs =
      Array.init b.n_funcs (fun i ->
          match b.funcs.(i) with Some f -> f | None -> assert false);
    tables = (match b.table with Some t -> [ t ] | None -> []);
    memories = (match b.memory with Some m -> [ m ] | None -> []);
    globals = Array.of_list (List.rev b.globals);
    exports = List.rev b.exports;
    start = b.start;
    elems = List.rev b.elems;
    datas = List.rev b.datas;
  }

(* ------------------------------------------------------------------ *)
(* Instruction combinators                                             *)
(* ------------------------------------------------------------------ *)

(** Short-hand constructors for instruction sequences; open this module
    locally when assembling function bodies. *)
module I = struct
  let i32 (v : int) = Ast.Const (Values.I32 (Int32.of_int v))
  let i32l (v : int32) = Ast.Const (Values.I32 v)
  let i64 (v : int64) = Ast.Const (Values.I64 v)
  let f32 (v : float) = Ast.Const (Values.F32 (Values.to_f32 v))
  let f64 (v : float) = Ast.Const (Values.F64 v)
  let local_get n = Ast.Local_get n
  let local_set n = Ast.Local_set n
  let local_tee n = Ast.Local_tee n
  let global_get n = Ast.Global_get n
  let global_set n = Ast.Global_set n
  let call f = Ast.Call f
  let call_indirect ti = Ast.Call_indirect ti
  let drop = Ast.Drop
  let select = Ast.Select
  let nop = Ast.Nop
  let unreachable = Ast.Unreachable
  let return = Ast.Return
  let br n = Ast.Br n
  let br_if n = Ast.Br_if n
  let br_table ts d = Ast.Br_table (ts, d)
  let block ?result body = Ast.Block (result, body)
  let loop ?result body = Ast.Loop (result, body)
  let if_ ?result then_ else_ = Ast.If (result, then_, else_)

  let i32_eqz = Ast.Eqz Types.I32
  let i64_eqz = Ast.Eqz Types.I64
  let i32_eq = Ast.Int_compare (Types.I32, Ast.Eq)
  let i32_ne = Ast.Int_compare (Types.I32, Ast.Ne)
  let i32_lt_s = Ast.Int_compare (Types.I32, Ast.Lt_s)
  let i32_lt_u = Ast.Int_compare (Types.I32, Ast.Lt_u)
  let i32_gt_s = Ast.Int_compare (Types.I32, Ast.Gt_s)
  let i32_gt_u = Ast.Int_compare (Types.I32, Ast.Gt_u)
  let i32_le_s = Ast.Int_compare (Types.I32, Ast.Le_s)
  let i32_ge_s = Ast.Int_compare (Types.I32, Ast.Ge_s)
  let i32_ge_u = Ast.Int_compare (Types.I32, Ast.Ge_u)
  let i64_eq = Ast.Int_compare (Types.I64, Ast.Eq)
  let i64_ne = Ast.Int_compare (Types.I64, Ast.Ne)
  let i64_lt_s = Ast.Int_compare (Types.I64, Ast.Lt_s)
  let i64_lt_u = Ast.Int_compare (Types.I64, Ast.Lt_u)
  let i64_gt_s = Ast.Int_compare (Types.I64, Ast.Gt_s)
  let i64_gt_u = Ast.Int_compare (Types.I64, Ast.Gt_u)
  let i64_le_s = Ast.Int_compare (Types.I64, Ast.Le_s)
  let i64_ge_s = Ast.Int_compare (Types.I64, Ast.Ge_s)
  let i64_ge_u = Ast.Int_compare (Types.I64, Ast.Ge_u)

  let i32_add = Ast.Int_binary (Types.I32, Ast.Add)
  let i32_sub = Ast.Int_binary (Types.I32, Ast.Sub)
  let i32_mul = Ast.Int_binary (Types.I32, Ast.Mul)
  let i32_and = Ast.Int_binary (Types.I32, Ast.And)
  let i32_or = Ast.Int_binary (Types.I32, Ast.Or)
  let i32_xor = Ast.Int_binary (Types.I32, Ast.Xor)
  let i32_shl = Ast.Int_binary (Types.I32, Ast.Shl)
  let i32_shr_u = Ast.Int_binary (Types.I32, Ast.Shr_u)
  let i32_rem_u = Ast.Int_binary (Types.I32, Ast.Rem_u)
  let i32_div_u = Ast.Int_binary (Types.I32, Ast.Div_u)
  let i32_popcnt = Ast.Int_unary (Types.I32, Ast.Popcnt)
  let i64_add = Ast.Int_binary (Types.I64, Ast.Add)
  let i64_sub = Ast.Int_binary (Types.I64, Ast.Sub)
  let i64_mul = Ast.Int_binary (Types.I64, Ast.Mul)
  let i64_and = Ast.Int_binary (Types.I64, Ast.And)
  let i64_or = Ast.Int_binary (Types.I64, Ast.Or)
  let i64_xor = Ast.Int_binary (Types.I64, Ast.Xor)
  let i64_shl = Ast.Int_binary (Types.I64, Ast.Shl)
  let i64_shr_u = Ast.Int_binary (Types.I64, Ast.Shr_u)
  let i64_rem_u = Ast.Int_binary (Types.I64, Ast.Rem_u)
  let i64_rem_s = Ast.Int_binary (Types.I64, Ast.Rem_s)
  let i64_div_u = Ast.Int_binary (Types.I64, Ast.Div_u)
  let i64_popcnt = Ast.Int_unary (Types.I64, Ast.Popcnt)

  let i32_wrap_i64 = Ast.Convert Ast.I32_wrap_i64
  let i64_extend_i32_u = Ast.Convert Ast.I64_extend_i32_u
  let i64_extend_i32_s = Ast.Convert Ast.I64_extend_i32_s

  let load ty ?(offset = 0) () =
    Ast.Load
      { Ast.l_ty = ty; l_pack = None; l_align = 0; l_offset = Int32.of_int offset }

  let i32_load ?(offset = 0) () = load Types.I32 ~offset ()
  let i64_load ?(offset = 0) () = load Types.I64 ~offset ()

  let i32_load8_u ?(offset = 0) () =
    Ast.Load
      {
        Ast.l_ty = Types.I32;
        l_pack = Some (Ast.Pack8, Ast.ZX);
        l_align = 0;
        l_offset = Int32.of_int offset;
      }

  let store ty ?(offset = 0) () =
    Ast.Store
      { Ast.s_ty = ty; s_pack = None; s_align = 0; s_offset = Int32.of_int offset }

  let i32_store ?(offset = 0) () = store Types.I32 ~offset ()
  let i64_store ?(offset = 0) () = store Types.I64 ~offset ()

  let i32_store8 ?(offset = 0) () =
    Ast.Store
      {
        Ast.s_ty = Types.I32;
        s_pack = Some Ast.Pack8;
        s_align = 0;
        s_offset = Int32.of_int offset;
      }
end
