(** Serve protocol client — see client.mli. *)

module Core = Wasai_core
module Journal = Wasai_campaign.Journal
module Discover = Wasai_campaign.Discover
open Wasai_eosio

exception Protocol_error of string

type t = { cl_fd : Unix.file_descr; mutable cl_in : string }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
   | () -> ()
   | exception e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
  { cl_fd = fd; cl_in = "" }

let close t = try Unix.close t.cl_fd with Unix.Unix_error _ -> ()

let send t req =
  let line = Wire.line_of_request req ^ "\n" in
  let n = String.length line in
  let rec go off =
    if off < n then
      match Unix.write_substring t.cl_fd line off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_line t =
  let rec go () =
    match String.index_opt t.cl_in '\n' with
    | Some i ->
        let line = String.sub t.cl_in 0 i in
        t.cl_in <-
          String.sub t.cl_in (i + 1) (String.length t.cl_in - i - 1);
        line
    | None -> (
        let buf = Bytes.create 65536 in
        match Unix.read t.cl_fd buf 0 65536 with
        | 0 -> raise (Protocol_error "connection closed by daemon")
        | n ->
            t.cl_in <- t.cl_in ^ Bytes.sub_string buf 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let next t =
  match Wire.response_of_line (read_line t) with
  | Ok resp -> resp
  | Error reason -> raise (Protocol_error ("malformed response: " ^ reason))

(* ------------------------------------------------------------------ *)
(* Contract loading                                                    *)
(* ------------------------------------------------------------------ *)

type contract = { ct_name : string; ct_wasm : string; ct_abi : string option }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contract_of_file path =
  let name = Name.to_string (Discover.account_of_filename path) in
  let wasm = read_file path in
  let abi =
    let candidates =
      [ path ^ ".abi"; Filename.remove_extension path ^ ".abi" ]
    in
    Option.map read_file (List.find_opt Sys.file_exists candidates)
  in
  { ct_name = name; ct_wasm = wasm; ct_abi = abi }

let contracts_of_path path =
  if Sys.is_directory path then
    List.map
      (fun f -> contract_of_file (Filename.concat path f))
      (Discover.contract_files path)
  else [ contract_of_file path ]

(* ------------------------------------------------------------------ *)
(* Batch submission                                                    *)
(* ------------------------------------------------------------------ *)

type batch = {
  bt_verdicts : (string * Wire.verdict_kind * Journal.entry) list;
  bt_retries : int;
  bt_errors : (string * string) list;
}

let submit_batch ?(progress = fun (_ : Wire.response) -> ()) ?(slices = 1) t
    ~tenant contracts =
  let awaiting = Hashtbl.create 16 in
  let verdicts = ref [] in
  let errors = ref [] in
  let retries = ref 0 in
  (* Classify one response, recording verdicts/errors as they stream
     in; admission replies bubble up to the submitting loop. *)
  let handle resp =
    progress resp;
    match resp with
    | Wire.Verdict { rp_entry; rp_kind; _ } ->
        let name = rp_entry.Journal.je_name in
        Hashtbl.remove awaiting name;
        verdicts := (name, rp_kind, rp_entry) :: !verdicts;
        `Settled name
    | Wire.Queued { rp_name; _ } -> `Queued rp_name
    | Wire.Busy { rp_name; rp_retry_ms; _ } ->
        incr retries;
        `Busy (rp_name, rp_retry_ms)
    | Wire.Err { rp_name = Some name; rp_reason } ->
        Hashtbl.remove awaiting name;
        errors := (name, rp_reason) :: !errors;
        `Settled name
    | Wire.Err { rp_name = None; rp_reason } ->
        raise (Protocol_error rp_reason)
    | Wire.Bye _ -> raise (Protocol_error "daemon said BYE mid-batch")
    | Wire.Pong _ | Wire.StatsReply _ | Wire.MetricsReply _ -> `Other
  in
  let rec submit c =
    send t
      (Wire.Submit
         {
           rq_tenant = tenant;
           rq_name = c.ct_name;
           rq_wasm = c.ct_wasm;
           rq_abi = c.ct_abi;
           rq_slices = slices;
         });
    (* Interleaving: verdicts for earlier submissions may stream in
       before this submission's admission reply. *)
    let rec wait_reply () =
      match handle (next t) with
      | `Queued name when name = c.ct_name -> Hashtbl.replace awaiting name ()
      | `Busy (name, retry_ms) when name = c.ct_name ->
          (* Explicit backpressure: honour the daemon's hint, retry. *)
          Unix.sleepf (float_of_int retry_ms /. 1000.);
          submit c
      | `Settled name when name = c.ct_name -> ()
      | _ -> wait_reply ()
    in
    wait_reply ()
  in
  List.iter submit contracts;
  while Hashtbl.length awaiting > 0 do
    ignore (handle (next t))
  done;
  {
    bt_verdicts = List.rev !verdicts;
    bt_retries = !retries;
    bt_errors = List.rev !errors;
  }
