(** Stack-machine interpreter for Wasm modules.

    Execution is fuel-metered (EOSIO imposes a deadline per action; we impose
    an instruction budget) and re-entrant: host functions invoked from Wasm
    may themselves invoke other instances, which is how inline actions and
    notifications execute nested contract code. *)

exception Exhaustion of string
(** Raised when the fuel budget runs out or the call stack is too deep. *)

type host_func = {
  hf_name : string;
  hf_type : Types.func_type;
  hf_fn : instance -> Values.value list -> Values.value list;
}

and func_inst =
  | Host_func of host_func
  | Wasm_func of instance * Ast.func * Types.func_type

and instance = {
  module_ : Ast.module_;
  mutable funcs : func_inst array;  (** whole function index space *)
  memory : Memory.t option;
  globals : Values.value array;
  table : func_inst option array;
  mutable fuel : int;
  mutable depth : int;
  max_depth : int;
}

type extern =
  | Extern_func of host_func
  | Extern_memory of Memory.t
  | Extern_global of Values.value

(** Import resolver: maps (module, name) to a host-provided definition. *)
type resolver = string -> string -> extern option

exception Link_error of string

let func_type_of = function
  | Host_func h -> h.hf_type
  | Wasm_func (_, _, ft) -> ft

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

let eval_const_expr (globals : Values.value array) (e : Ast.instr list) :
    Values.value =
  match e with
  | [ Ast.Const v ] -> v
  | [ Ast.Global_get i ] -> globals.(i)
  | _ -> Values.trap "unsupported constant expression"

(* Allocation phase of instantiation: imports, memory, globals, table,
   element and data segments.  The public [instantiate] below also runs
   the start function. *)
(* Resolve every import of [m], raising [Link_error] exactly as linking
   does.  Shared between first-time allocation and pooled re-linking. *)
let resolve_imports (resolver : resolver) (m : Ast.module_) :
    func_inst array * Memory.t option =
  let imported_funcs = ref [] in
  let imported_memory = ref None in
  List.iter
    (fun (imp : Ast.import) ->
      let resolved = resolver imp.imp_module imp.imp_name in
      match (imp.idesc, resolved) with
      | Ast.Func_import ti, Some (Extern_func hf) ->
          if not (Types.equal_func_type m.types.(ti) hf.hf_type) then
            raise
              (Link_error
                 (Printf.sprintf "import %s.%s: type mismatch (%s vs %s)"
                    imp.imp_module imp.imp_name
                    (Types.string_of_func_type m.types.(ti))
                    (Types.string_of_func_type hf.hf_type)));
          imported_funcs := Host_func hf :: !imported_funcs
      | Ast.Memory_import _, Some (Extern_memory mem) ->
          imported_memory := Some mem
      | Ast.Global_import _, Some (Extern_global _) -> ()
      | _, None ->
          raise
            (Link_error
               (Printf.sprintf "unresolved import %s.%s" imp.imp_module
                  imp.imp_name))
      | _ ->
          raise
            (Link_error
               (Printf.sprintf "import kind mismatch for %s.%s" imp.imp_module
                  imp.imp_name)))
    m.imports;
  (Array.of_list (List.rev !imported_funcs), !imported_memory)

let alloc_instance ?(fuel = max_int) ?(max_depth = 256) (resolver : resolver)
    (m : Ast.module_) : instance =
  let imported_funcs, imported_memory = resolve_imports resolver m in
  let imported_memory = ref imported_memory in
  let memory =
    match !imported_memory with
    | Some mem -> Some mem
    | None -> (
        match m.memories with
        | mt :: _ -> Some (Memory.create mt)
        | [] -> None)
  in
  let globals =
    Array.map (fun (g : Ast.global) -> eval_const_expr [||] g.ginit) m.globals
  in
  let table_size =
    match m.tables with
    | tt :: _ -> tt.tbl_limits.lim_min
    | [] -> 0
  in
  let inst =
    {
      module_ = m;
      funcs = [||];
      memory;
      globals;
      table = Array.make table_size None;
      fuel;
      depth = 0;
      max_depth;
    }
  in
  let own_funcs =
    Array.map (fun (f : Ast.func) -> Wasm_func (inst, f, m.types.(f.ftype))) m.funcs
  in
  inst.funcs <- Array.append imported_funcs own_funcs;
  (* Element segments populate the indirect-call table. *)
  List.iter
    (fun (e : Ast.elem_segment) ->
      let base = Values.as_i32 (eval_const_expr globals e.e_offset) in
      List.iteri
        (fun i fi ->
          let idx = Int32.to_int base + i in
          if idx < 0 || idx >= Array.length inst.table then
            Values.trap "element segment out of bounds";
          inst.table.(idx) <- Some inst.funcs.(fi))
        e.e_init)
    m.elems;
  (* Data segments initialise linear memory. *)
  List.iter
    (fun (d : Ast.data_segment) ->
      match memory with
      | None -> Values.trap "data segment without memory"
      | Some mem ->
          let base = Values.as_i32 (eval_const_expr globals d.d_offset) in
          Memory.store_string mem (Int32.to_int base) d.d_init)
    m.datas;
  inst

let get_memory inst =
  match inst.memory with
  | Some m -> m
  | None -> Values.trap "no linear memory"

(* Pooled-instance support: re-resolve the function imports against a new
   resolver (host functions close over per-action state, so a reused
   instance must rebind them), and return globals to their initial
   values.  Both raise exactly as first-time allocation would, and
   [rebind_imports] only mutates [funcs] after the whole import list has
   resolved. *)
let rebind_imports (inst : instance) (resolver : resolver) : unit =
  let imported_funcs, _ = resolve_imports resolver inst.module_ in
  Array.blit imported_funcs 0 inst.funcs 0 (Array.length imported_funcs)

let reset_globals (inst : instance) : unit =
  Array.iteri
    (fun i (g : Ast.global) -> inst.globals.(i) <- eval_const_expr [||] g.ginit)
    inst.module_.globals

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* Control flow is modelled with exceptions carrying the operand stack at
   the branch point; validated code guarantees the handler finds the values
   it needs on top. *)
exception Br_exn of int * Values.value list
exception Return_exn of Values.value list

type frame = { locals : Values.value array; inst : instance }

let block_arity : Ast.block_type -> int = function None -> 0 | Some _ -> 1

let take n stack =
  let rec go n acc stack =
    if n = 0 then List.rev acc
    else
      match stack with
      | v :: rest -> go (n - 1) (v :: acc) rest
      | [] -> Values.trap "stack underflow"
  in
  go n [] stack

let pop = function
  | v :: rest -> (v, rest)
  | [] -> Values.trap "stack underflow"

let pop2 = function
  | b :: a :: rest -> (a, b, rest)
  | _ -> Values.trap "stack underflow"

let eval_int_unary ty op v : Values.value =
  match (ty, v) with
  | Types.I32, Values.I32 x ->
      Values.I32
        (match op with
         | Ast.Clz -> Values.I32x.clz x
         | Ast.Ctz -> Values.I32x.ctz x
         | Ast.Popcnt -> Values.I32x.popcnt x)
  | Types.I64, Values.I64 x ->
      Values.I64
        (match op with
         | Ast.Clz -> Values.I64x.clz x
         | Ast.Ctz -> Values.I64x.ctz x
         | Ast.Popcnt -> Values.I64x.popcnt x)
  | _ -> Values.trap "int unary type mismatch"

let eval_int_binary ty op a b : Values.value =
  match (ty, a, b) with
  | Types.I32, Values.I32 x, Values.I32 y ->
      Values.I32
        (match op with
         | Ast.Add -> Int32.add x y
         | Ast.Sub -> Int32.sub x y
         | Ast.Mul -> Int32.mul x y
         | Ast.Div_s -> Values.I32x.div_s x y
         | Ast.Div_u -> Values.I32x.div_u x y
         | Ast.Rem_s -> Values.I32x.rem_s x y
         | Ast.Rem_u -> Values.I32x.rem_u x y
         | Ast.And -> Int32.logand x y
         | Ast.Or -> Int32.logor x y
         | Ast.Xor -> Int32.logxor x y
         | Ast.Shl -> Values.I32x.shl x y
         | Ast.Shr_s -> Values.I32x.shr_s x y
         | Ast.Shr_u -> Values.I32x.shr_u x y
         | Ast.Rotl -> Values.I32x.rotl x y
         | Ast.Rotr -> Values.I32x.rotr x y)
  | Types.I64, Values.I64 x, Values.I64 y ->
      Values.I64
        (match op with
         | Ast.Add -> Int64.add x y
         | Ast.Sub -> Int64.sub x y
         | Ast.Mul -> Int64.mul x y
         | Ast.Div_s -> Values.I64x.div_s x y
         | Ast.Div_u -> Values.I64x.div_u x y
         | Ast.Rem_s -> Values.I64x.rem_s x y
         | Ast.Rem_u -> Values.I64x.rem_u x y
         | Ast.And -> Int64.logand x y
         | Ast.Or -> Int64.logor x y
         | Ast.Xor -> Int64.logxor x y
         | Ast.Shl -> Values.I64x.shl x y
         | Ast.Shr_s -> Values.I64x.shr_s x y
         | Ast.Shr_u -> Values.I64x.shr_u x y
         | Ast.Rotl -> Values.I64x.rotl x y
         | Ast.Rotr -> Values.I64x.rotr x y)
  | _ -> Values.trap "int binary type mismatch"

let eval_int_compare ty op a b : Values.value =
  let open Values in
  match (ty, a, b) with
  | Types.I32, I32 x, I32 y ->
      bool_value
        (match op with
         | Ast.Eq -> x = y
         | Ast.Ne -> x <> y
         | Ast.Lt_s -> Int32.compare x y < 0
         | Ast.Lt_u -> I32x.lt_u x y
         | Ast.Gt_s -> Int32.compare x y > 0
         | Ast.Gt_u -> I32x.gt_u x y
         | Ast.Le_s -> Int32.compare x y <= 0
         | Ast.Le_u -> I32x.le_u x y
         | Ast.Ge_s -> Int32.compare x y >= 0
         | Ast.Ge_u -> I32x.ge_u x y)
  | Types.I64, I64 x, I64 y ->
      bool_value
        (match op with
         | Ast.Eq -> x = y
         | Ast.Ne -> x <> y
         | Ast.Lt_s -> Int64.compare x y < 0
         | Ast.Lt_u -> I64x.lt_u x y
         | Ast.Gt_s -> Int64.compare x y > 0
         | Ast.Gt_u -> I64x.gt_u x y
         | Ast.Le_s -> Int64.compare x y <= 0
         | Ast.Le_u -> I64x.le_u x y
         | Ast.Ge_s -> Int64.compare x y >= 0
         | Ast.Ge_u -> I64x.ge_u x y)
  | _ -> Values.trap "int compare type mismatch"

let eval_float_unary ty op v : Values.value =
  let f =
    match op with
    | Ast.Fabs -> Float.abs
    | Ast.Fneg -> Float.neg
    | Ast.Fceil -> Float.ceil
    | Ast.Ffloor -> Float.floor
    | Ast.Ftrunc -> Float.trunc
    | Ast.Fnearest -> Values.Fx.nearest
    | Ast.Fsqrt -> Float.sqrt
  in
  match (ty, v) with
  | Types.F32, Values.F32 x -> Values.F32 (Values.to_f32 (f x))
  | Types.F64, Values.F64 x -> Values.F64 (f x)
  | _ -> Values.trap "float unary type mismatch"

let eval_float_binary ty op a b : Values.value =
  let f =
    match op with
    | Ast.Fadd -> ( +. )
    | Ast.Fsub -> ( -. )
    | Ast.Fmul -> ( *. )
    | Ast.Fdiv -> ( /. )
    | Ast.Fmin -> Values.Fx.min
    | Ast.Fmax -> Values.Fx.max
    | Ast.Fcopysign -> Values.Fx.copysign
  in
  match (ty, a, b) with
  | Types.F32, Values.F32 x, Values.F32 y -> Values.F32 (Values.to_f32 (f x y))
  | Types.F64, Values.F64 x, Values.F64 y -> Values.F64 (f x y)
  | _ -> Values.trap "float binary type mismatch"

let eval_float_compare ty op a b : Values.value =
  let f =
    match op with
    | Ast.Feq -> ( = )
    | Ast.Fne -> ( <> )
    | Ast.Flt -> ( < )
    | Ast.Fgt -> ( > )
    | Ast.Fle -> ( <= )
    | Ast.Fge -> ( >= )
  in
  match (ty, a, b) with
  | Types.F32, Values.F32 x, Values.F32 y -> Values.bool_value (f x y)
  | Types.F64, Values.F64 x, Values.F64 y -> Values.bool_value (f x y)
  | _ -> Values.trap "float compare type mismatch"

let eval_convert op v : Values.value =
  let open Values in
  let open Convert in
  match (op, v) with
  | Ast.I32_wrap_i64, I64 x -> I32 (wrap_i64 x)
  | Ast.I64_extend_i32_s, I32 x -> I64 (extend_s_i32 x)
  | Ast.I64_extend_i32_u, I32 x -> I64 (extend_u_i32 x)
  | Ast.I32_trunc_f32_s, F32 x | Ast.I32_trunc_f64_s, F64 x ->
      I32 (trunc_f_to_i32_s x)
  | Ast.I32_trunc_f32_u, F32 x | Ast.I32_trunc_f64_u, F64 x ->
      I32 (trunc_f_to_i32_u x)
  | Ast.I64_trunc_f32_s, F32 x | Ast.I64_trunc_f64_s, F64 x ->
      I64 (trunc_f_to_i64_s x)
  | Ast.I64_trunc_f32_u, F32 x | Ast.I64_trunc_f64_u, F64 x ->
      I64 (trunc_f_to_i64_u x)
  | Ast.F32_convert_i32_s, I32 x -> F32 (to_f32 (convert_i32_s x))
  | Ast.F32_convert_i32_u, I32 x -> F32 (to_f32 (convert_i32_u x))
  | Ast.F32_convert_i64_s, I64 x -> F32 (to_f32 (convert_i64_s x))
  | Ast.F32_convert_i64_u, I64 x -> F32 (to_f32 (convert_i64_u x))
  | Ast.F64_convert_i32_s, I32 x -> F64 (convert_i32_s x)
  | Ast.F64_convert_i32_u, I32 x -> F64 (convert_i32_u x)
  | Ast.F64_convert_i64_s, I64 x -> F64 (convert_i64_s x)
  | Ast.F64_convert_i64_u, I64 x -> F64 (convert_i64_u x)
  | Ast.F32_demote_f64, F64 x -> F32 (to_f32 x)
  | Ast.F64_promote_f32, F32 x -> F64 x
  | Ast.I32_reinterpret_f32, F32 x -> I32 (Int32.bits_of_float x)
  | Ast.I64_reinterpret_f64, F64 x -> I64 (Int64.bits_of_float x)
  | Ast.F32_reinterpret_i32, I32 x -> F32 (Int32.float_of_bits x)
  | Ast.F64_reinterpret_i64, I64 x -> F64 (Int64.float_of_bits x)
  | _ -> Values.trap "conversion type mismatch"

let rec eval_seq (frame : frame) (stack : Values.value list)
    (body : Ast.instr list) : Values.value list =
  match body with
  | [] -> stack
  | i :: rest ->
      let inst = frame.inst in
      if inst.fuel <= 0 then raise (Exhaustion "instruction budget exhausted");
      inst.fuel <- inst.fuel - 1;
      let stack = eval_instr frame stack i in
      eval_seq frame stack rest

and eval_instr (frame : frame) (stack : Values.value list) (i : Ast.instr) :
    Values.value list =
  let inst = frame.inst in
  match i with
  | Ast.Unreachable -> Values.trap "unreachable executed"
  | Ast.Nop -> stack
  | Ast.Block (bt, body) -> (
      let arity = block_arity bt in
      try
        let st = eval_seq frame [] body in
        List.rev_append (List.rev (take arity st)) stack
      with
      | Br_exn (0, st) -> List.rev_append (List.rev (take arity st)) stack
      | Br_exn (n, st) -> raise (Br_exn (n - 1, st)))
  | Ast.Loop (bt, body) ->
      let arity = block_arity bt in
      let rec go () =
        try
          let st = eval_seq frame [] body in
          take arity st
        with
        | Br_exn (0, _) -> go ()
        | Br_exn (n, st) -> raise (Br_exn (n - 1, st))
      in
      List.rev_append (List.rev (go ())) stack
  | Ast.If (bt, then_, else_) -> (
      let cond, stack = pop stack in
      let body = if Values.as_i32 cond <> 0l then then_ else else_ in
      let arity = block_arity bt in
      try
        let st = eval_seq frame [] body in
        List.rev_append (List.rev (take arity st)) stack
      with
      | Br_exn (0, st) -> List.rev_append (List.rev (take arity st)) stack
      | Br_exn (n, st) -> raise (Br_exn (n - 1, st)))
  | Ast.Br n -> raise (Br_exn (n, stack))
  | Ast.Br_if n ->
      let cond, stack = pop stack in
      if Values.as_i32 cond <> 0l then raise (Br_exn (n, stack)) else stack
  | Ast.Br_table (targets, default) ->
      let idx, stack = pop stack in
      let i = Int32.to_int (Values.as_i32 idx) in
      let target =
        if i >= 0 && i < List.length targets then List.nth targets i else default
      in
      raise (Br_exn (target, stack))
  | Ast.Return -> raise (Return_exn stack)
  | Ast.Call fi ->
      let callee = inst.funcs.(fi) in
      eval_call frame stack callee
  | Ast.Call_indirect ti ->
      let idx, stack = pop stack in
      let i = Int32.to_int (Values.as_i32 idx) in
      if i < 0 || i >= Array.length inst.table then
        Values.trap "undefined element (table index %d)" i;
      let callee =
        match inst.table.(i) with
        | Some f -> f
        | None -> Values.trap "uninitialized element %d" i
      in
      let expected = inst.module_.types.(ti) in
      if not (Types.equal_func_type expected (func_type_of callee)) then
        Values.trap "indirect call type mismatch";
      eval_call frame stack callee
  | Ast.Drop ->
      let _, stack = pop stack in
      stack
  | Ast.Select ->
      let cond, stack = pop stack in
      let a, b, stack = pop2 stack in
      (if Values.as_i32 cond <> 0l then a else b) :: stack
  | Ast.Local_get n -> frame.locals.(n) :: stack
  | Ast.Local_set n ->
      let v, stack = pop stack in
      frame.locals.(n) <- v;
      stack
  | Ast.Local_tee n ->
      let v, stack = pop stack in
      frame.locals.(n) <- v;
      v :: stack
  | Ast.Global_get n -> inst.globals.(n) :: stack
  | Ast.Global_set n ->
      let v, stack = pop stack in
      inst.globals.(n) <- v;
      stack
  | Ast.Load op ->
      let addr, stack = pop stack in
      let ea = Int32.to_int (Values.as_i32 addr) + Int32.to_int op.l_offset in
      Memory.load_value (get_memory inst) op ea :: stack
  | Ast.Store op ->
      let v, stack = pop stack in
      let addr, stack = pop stack in
      let ea = Int32.to_int (Values.as_i32 addr) + Int32.to_int op.s_offset in
      Memory.store_value (get_memory inst) op ea v;
      stack
  | Ast.Memory_size ->
      Values.I32 (Int32.of_int (Memory.size_pages (get_memory inst))) :: stack
  | Ast.Memory_grow ->
      let delta, stack = pop stack in
      let r = Memory.grow (get_memory inst) (Int32.to_int (Values.as_i32 delta)) in
      Values.I32 r :: stack
  | Ast.Const v -> v :: stack
  | Ast.Eqz ty ->
      let v, stack = pop stack in
      (match (ty, v) with
       | Types.I32, Values.I32 x -> Values.bool_value (x = 0l)
       | Types.I64, Values.I64 x -> Values.bool_value (x = 0L)
       | _ -> Values.trap "eqz type mismatch")
      :: stack
  | Ast.Int_compare (ty, op) ->
      let a, b, stack = pop2 stack in
      eval_int_compare ty op a b :: stack
  | Ast.Float_compare (ty, op) ->
      let a, b, stack = pop2 stack in
      eval_float_compare ty op a b :: stack
  | Ast.Int_unary (ty, op) ->
      let v, stack = pop stack in
      eval_int_unary ty op v :: stack
  | Ast.Int_binary (ty, op) ->
      let a, b, stack = pop2 stack in
      eval_int_binary ty op a b :: stack
  | Ast.Float_unary (ty, op) ->
      let v, stack = pop stack in
      eval_float_unary ty op v :: stack
  | Ast.Float_binary (ty, op) ->
      let a, b, stack = pop2 stack in
      eval_float_binary ty op a b :: stack
  | Ast.Convert op ->
      let v, stack = pop stack in
      eval_convert op v :: stack

and eval_call (frame : frame) (stack : Values.value list) (callee : func_inst) :
    Values.value list =
  let ft = func_type_of callee in
  let n_args = List.length ft.params in
  let args = List.rev (take n_args stack) in
  let stack = List.filteri (fun i _ -> i >= n_args) stack in
  let results = invoke_func frame.inst callee args in
  List.rev_append results stack

(** Invoke a function instance with the given arguments.  [caller] provides
    the fuel/depth accounting context for host re-entry. *)
and invoke_func (caller : instance) (callee : func_inst)
    (args : Values.value list) : Values.value list =
  match callee with
  | Host_func h -> h.hf_fn caller args
  | Wasm_func (inst, f, ft) ->
      if inst.depth >= inst.max_depth then
        raise (Exhaustion "call stack exhausted");
      inst.depth <- inst.depth + 1;
      Fun.protect
        ~finally:(fun () -> inst.depth <- inst.depth - 1)
        (fun () ->
          let locals =
            Array.of_list
              (args @ List.map Values.default_value f.locals)
          in
          let frame = { locals; inst } in
          let result_arity = List.length ft.results in
          try
            let st = eval_seq frame [] f.body in
            List.rev (take result_arity st)
          with
          | Return_exn st -> List.rev (take result_arity st)
          | Br_exn (0, st) -> List.rev (take result_arity st))

(** Instantiate [m], resolving its imports through [resolver], and run its
    start function if it declares one.  [fuel] bounds the total number of
    instructions the instance may ever execute (refreshed by the embedder
    per action). *)
let instantiate ?fuel ?max_depth (resolver : resolver) (m : Ast.module_) :
    instance =
  let inst = alloc_instance ?fuel ?max_depth resolver m in
  (match m.start with
   | Some fi -> ignore (invoke_func inst inst.funcs.(fi) [])
   | None -> ());
  inst

(** Invoke an exported function by name. *)
let invoke_export (inst : instance) (name : string) (args : Values.value list) :
    Values.value list =
  match Ast.exported_func inst.module_ name with
  | None -> Values.trap "no exported function named %s" name
  | Some idx -> invoke_func inst inst.funcs.(idx) args

let set_fuel inst fuel = inst.fuel <- fuel
let remaining_fuel inst = inst.fuel
