(* Robustness against code obfuscation (the paper's RQ3).

     dune exec examples/obfuscation_robustness.exe

   The same vulnerable contract is analysed twice — plain, then through
   the bytecode obfuscator (popcount-encoded comparisons plus an opaque
   recursive function).  WASAI's verdicts survive because it replays
   concrete traces; EOSAFE's static exploration dies on the call-graph
   cycle, exactly the contrast of Table 5. *)

module BG = Wasai_benchgen
module BL = Wasai_baselines
module Core = Wasai_core
open Wasai_eosio

let n = Name.of_string

let () =
  print_endline "== Obfuscation robustness (Table 5's contrast, one contract) ==\n";
  let spec =
    {
      (BG.Contracts.default_spec (n "victim")) with
      BG.Contracts.sp_fake_eos_guard = false;
      sp_auth_check = false;
      sp_payout_inline = true;
      sp_min_bet = Some 100L;
    }
  in
  let plain, abi = BG.Contracts.build spec in
  let obfuscated = BG.Obfuscate.obfuscate plain in
  Printf.printf "plain: %d bytes; obfuscated: %d bytes (%d comparisons encoded)\n\n"
    (String.length (Wasai_wasm.Encode.encode plain))
    (String.length (Wasai_wasm.Encode.encode obfuscated))
    (BG.Obfuscate.count_encodable plain);
  let wasai_flags m =
    let o =
      Core.Engine.fuzz
        { Core.Engine.tgt_account = n "victim"; tgt_module = m; tgt_abi = abi }
    in
    List.filter_map (fun (f, b) -> if b then Some (Core.Scanner.string_of_flag f) else None)
      o.Core.Engine.out_flags
  in
  let eosafe_flags m =
    let v = BL.Eosafe.analyze m in
    ( List.filter_map
        (fun (f, r) ->
          if r = Some true then Some (Core.Scanner.string_of_flag f) else None)
        (BL.Eosafe.flags v),
      v.BL.Eosafe.es_timeout )
  in
  let show name flags = Printf.printf "  %-22s [%s]\n" name (String.concat "; " flags) in
  print_endline "WASAI (concolic, trace-based):";
  let w_plain = wasai_flags plain in
  let w_obf = wasai_flags obfuscated in
  show "plain:" w_plain;
  show "obfuscated:" w_obf;
  print_endline "\nEOSAFE (static symbolic execution):";
  let e_plain, to1 = eosafe_flags plain in
  let e_obf, to2 = eosafe_flags obfuscated in
  show (Printf.sprintf "plain (timeout=%b):" to1) e_plain;
  show (Printf.sprintf "obfuscated (timeout=%b):" to2) e_obf;
  (* WASAI's findings are stable; EOSAFE times out on the opaque
     recursion and loses its FakeEOS/MissAuth findings. *)
  assert (w_plain = w_obf);
  assert (List.mem "FakeEOS" e_plain);
  assert (to2 && not (List.mem "FakeEOS" e_obf));
  print_endline
    "\nWASAI's verdicts are identical on both binaries; the static baseline";
  print_endline "times out on the opaque recursion and goes blind."
