lib/symbolic/eosafe_memory.mli: Wasai_smt
