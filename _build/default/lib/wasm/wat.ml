(** WAT-style pretty printer, emitting the folded-control subset that
    {!Text.parse} reads back: [Text.parse (Wat.to_string m)] yields a
    module with the same behaviour (type-section ordering may differ, so
    the round-trip is semantic rather than syntactic). *)

let escape_data (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_string buf (Printf.sprintf "\\%02x" (Char.code c))
      | c when Char.code c >= 32 && Char.code c < 127 -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "\\%02x" (Char.code c)))
    s;
  Buffer.contents buf

let string_of_functype (ft : Types.func_type) : string =
  let part key = function
    | [] -> ""
    | ts ->
        Printf.sprintf " (%s %s)" key
          (String.concat " " (List.map Types.string_of_value_type ts))
  in
  part "param" ft.Types.params ^ part "result" ft.Types.results

let const_text (v : Values.value) =
  match v with
  | Values.I32 x -> Printf.sprintf "i32.const %ld" x
  | Values.I64 x -> Printf.sprintf "i64.const %Ld" x
  | Values.F32 x -> Printf.sprintf "f32.const %h" x
  | Values.F64 x -> Printf.sprintf "f64.const %h" x

let block_result_text : Ast.block_type -> string = function
  | None -> ""
  | Some t -> Printf.sprintf " (result %s)" (Types.string_of_value_type t)

let rec print_instr buf (m : Ast.module_) indent (i : Ast.instr) =
  let pad = String.make indent ' ' in
  let line s = Buffer.add_string buf (pad ^ s ^ "\n") in
  match i with
  | Ast.Block (bt, body) ->
      line (Printf.sprintf "(block%s" (block_result_text bt));
      List.iter (print_instr buf m (indent + 2)) body;
      line ")"
  | Ast.Loop (bt, body) ->
      line (Printf.sprintf "(loop%s" (block_result_text bt));
      List.iter (print_instr buf m (indent + 2)) body;
      line ")"
  | Ast.If (bt, then_, else_) ->
      line (Printf.sprintf "(if%s" (block_result_text bt));
      line "  (then";
      List.iter (print_instr buf m (indent + 4)) then_;
      line "  )";
      if else_ <> [] then begin
        line "  (else";
        List.iter (print_instr buf m (indent + 4)) else_;
        line "  )"
      end;
      line ")"
  | Ast.Const v -> line (const_text v)
  | Ast.Br n -> line (Printf.sprintf "br %d" n)
  | Ast.Br_if n -> line (Printf.sprintf "br_if %d" n)
  | Ast.Br_table (ts, d) ->
      line
        (Printf.sprintf "br_table %s %d"
           (String.concat " " (List.map string_of_int ts))
           d)
  | Ast.Call f -> line (Printf.sprintf "call %d" f)
  | Ast.Call_indirect ti ->
      line
        (Printf.sprintf "call_indirect (type%s)"
           (string_of_functype m.Ast.types.(ti)))
  | Ast.Local_get n -> line (Printf.sprintf "local.get %d" n)
  | Ast.Local_set n -> line (Printf.sprintf "local.set %d" n)
  | Ast.Local_tee n -> line (Printf.sprintf "local.tee %d" n)
  | Ast.Global_get n -> line (Printf.sprintf "global.get %d" n)
  | Ast.Global_set n -> line (Printf.sprintf "global.set %d" n)
  | Ast.Load l ->
      line
        (Ast.string_of_loadop l
        ^ if l.Ast.l_offset <> 0l then Printf.sprintf " offset=%ld" l.Ast.l_offset
          else "")
  | Ast.Store s ->
      line
        (Ast.string_of_storeop s
        ^ if s.Ast.s_offset <> 0l then Printf.sprintf " offset=%ld" s.Ast.s_offset
          else "")
  | _ -> line (Ast.mnemonic i)

let print_func buf (m : Ast.module_) idx (f : Ast.func) =
  let ft = m.Ast.types.(f.Ast.ftype) in
  let abs = Ast.num_func_imports m + idx in
  let name =
    match f.Ast.fname with Some n -> Printf.sprintf " $%s" n | None -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf "  (func%s (;%d;)%s\n" name abs (string_of_functype ft));
  if f.Ast.locals <> [] then
    Buffer.add_string buf
      (Printf.sprintf "    (local %s)\n"
         (String.concat " " (List.map Types.string_of_value_type f.Ast.locals)));
  List.iter (print_instr buf m 4) f.Ast.body;
  Buffer.add_string buf "  )\n"

(** Render a module in the parseable WAT subset. *)
let to_string (m : Ast.module_) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "(module\n";
  List.iter
    (fun (i : Ast.import) ->
      match i.Ast.idesc with
      | Ast.Func_import ti ->
          Buffer.add_string buf
            (Printf.sprintf "  (import \"%s\" \"%s\" (func%s))\n" i.Ast.imp_module
               i.Ast.imp_name
               (string_of_functype m.Ast.types.(ti)))
      | Ast.Memory_import mt ->
          Buffer.add_string buf
            (Printf.sprintf "  ;; unsupported textual import: memory %d\n"
               mt.Types.mem_limits.lim_min)
      | Ast.Table_import _ ->
          Buffer.add_string buf "  ;; unsupported textual import: table\n"
      | Ast.Global_import _ ->
          Buffer.add_string buf "  ;; unsupported textual import: global\n")
    m.Ast.imports;
  List.iter
    (fun (mt : Types.memory_type) ->
      Buffer.add_string buf
        (Printf.sprintf "  (memory %d%s)\n" mt.Types.mem_limits.lim_min
           (match mt.Types.mem_limits.lim_max with
            | Some x -> " " ^ string_of_int x
            | None -> "")))
    m.Ast.memories;
  Array.iter
    (fun (g : Ast.global) ->
      let init =
        match g.Ast.ginit with
        | [ Ast.Const v ] -> const_text v
        | _ -> "i64.const 0"
      in
      let ty = Types.string_of_value_type g.Ast.gtype.Types.gt_type in
      let ty_part =
        match g.Ast.gtype.Types.gt_mut with
        | Types.Mutable -> Printf.sprintf "(mut %s)" ty
        | Types.Immutable -> ty
      in
      Buffer.add_string buf (Printf.sprintf "  (global %s (%s))\n" ty_part init))
    m.Ast.globals;
  (match m.Ast.tables with
   | { Types.tbl_limits = { lim_min; _ } } :: _ ->
       Buffer.add_string buf (Printf.sprintf "  (table %d funcref)\n" lim_min)
   | [] -> ());
  List.iter
    (fun (e : Ast.elem_segment) ->
      let off =
        match e.Ast.e_offset with
        | [ Ast.Const (Values.I32 k) ] -> Int32.to_int k
        | _ -> 0
      in
      Buffer.add_string buf
        (Printf.sprintf "  (elem (i32.const %d) %s)\n" off
           (String.concat " " (List.map string_of_int e.Ast.e_init))))
    m.Ast.elems;
  List.iter
    (fun (d : Ast.data_segment) ->
      let off =
        match d.Ast.d_offset with
        | [ Ast.Const (Values.I32 k) ] -> Int32.to_int k
        | _ -> 0
      in
      Buffer.add_string buf
        (Printf.sprintf "  (data (i32.const %d) \"%s\")\n" off
           (escape_data d.Ast.d_init)))
    m.Ast.datas;
  Array.iteri (fun i f -> print_func buf m i f) m.Ast.funcs;
  List.iter
    (fun (e : Ast.export) ->
      match e.Ast.edesc with
      | Ast.Func_export i ->
          Buffer.add_string buf
            (Printf.sprintf "  (export \"%s\" (func %d))\n" e.Ast.ename i)
      | Ast.Memory_export i ->
          Buffer.add_string buf
            (Printf.sprintf "  (export \"%s\" (memory %d))\n" e.Ast.ename i)
      | Ast.Table_export _ | Ast.Global_export _ -> ())
    m.Ast.exports;
  (match m.Ast.start with
   | Some f -> Buffer.add_string buf (Printf.sprintf "  (start %d)\n" f)
   | None -> ());
  Buffer.add_string buf ")\n";
  Buffer.contents buf
