test/test_eosio.mli:
