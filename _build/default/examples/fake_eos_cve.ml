(* The CVE-2022-27134 scenario (batdappboomx): a contract that pays a
   reward whenever it receives an EOS transfer whose memo is
   "action:buy" — without checking that the tokens are real EOS.

     dune exec examples/fake_eos_cve.exe

   Part 1 replays the exploit by hand: the attacker issues a fake "EOS"
   currency from their own token contract and buys the reward with it.
   Part 2 shows WASAI finding the same bug automatically, solving the
   memo gate on the way. *)

module BG = Wasai_benchgen
module Core = Wasai_core
open Wasai_eosio

let n = Name.of_string
let victim = n "batdappboomx"
let attacker = n "attacker"
let fake_token = n "fake.token"

let build_victim () =
  BG.Contracts.build
    {
      (BG.Contracts.default_spec victim) with
      (* The bug: no [code == eosio.token] check in apply. *)
      BG.Contracts.sp_fake_eos_guard = false;
      sp_auth_check = false;
      sp_payout_inline = true;
      (* The reward only flows for the magic memo. *)
      sp_memo_gate = Some "action:buy";
    }

let () =
  print_endline "== CVE-2022-27134: fake EOS against batdappboomx ==\n";

  (* ---- Part 1: the exploit, by hand -------------------------------- *)
  let chain = Host.create_chain () in
  Token.bootstrap chain ~treasury:(n "treasury") ~supply:1_000_000_0000L;
  List.iter (fun a -> ignore (Chain.create_account chain a))
    [ victim; attacker; fake_token ];
  let m, abi = build_victim () in
  Chain.set_code chain victim m abi;
  (* The victim holds real EOS (its prize pool). *)
  Token.set_balance chain ~token:Name.eosio_token ~owner:victim
    ~symbol:Asset.Symbol.eos 1_000_0000L;
  (* The attacker deploys the token code and issues themselves "EOS". *)
  Token.deploy chain fake_token;
  let push a = Chain.push_action chain a in
  ignore
    (push
       (Action.of_args ~account:fake_token ~name:(n "create")
          ~args:[ Abi.V_name attacker; Abi.V_asset (Asset.eos_of_units 1_000_0000L) ]
          ~auth:[ fake_token ]));
  ignore
    (push
       (Action.of_args ~account:fake_token ~name:(n "issue")
          ~args:
            [
              Abi.V_name attacker;
              Abi.V_asset (Asset.eos_of_units 1_000_0000L);
              Abi.V_string "counterfeit";
            ]
          ~auth:[ attacker ]));
  let real_before = Token.eos_balance chain ~owner:attacker in
  (* The "purchase": 100.0000 fake EOS with the magic memo. *)
  let r =
    push
      (Token.transfer_action ~token:fake_token ~from:attacker ~to_:victim
         ~quantity:(Asset.eos_of_units 100_0000L) ~memo:"action:buy")
  in
  let real_after = Token.eos_balance chain ~owner:attacker in
  Printf.printf "exploit transaction: %s\n"
    (if r.Chain.tx_ok then "committed" else "reverted");
  Printf.printf "attacker real-EOS balance: %Ld -> %Ld units\n" real_before
    real_after;
  assert (Int64.compare real_after real_before > 0);
  Printf.printf "the victim paid %Ld units of REAL EOS for counterfeit tokens.\n\n"
    (Int64.sub real_after real_before);

  (* ---- Part 2: WASAI finds it automatically ------------------------- *)
  print_endline "running WASAI against the same binary...";
  let m, abi = build_victim () in
  let outcome =
    Core.Engine.fuzz
      { Core.Engine.tgt_account = victim; tgt_module = m; tgt_abi = abi }
  in
  List.iter
    (fun (f, b) ->
      Printf.printf "  %-14s %s\n"
        (Core.Scanner.string_of_flag f)
        (if b then "VULNERABLE" else "ok"))
    outcome.Core.Engine.out_flags;
  assert (Core.Engine.flagged outcome Core.Scanner.Fake_eos);
  print_endline
    "\nWASAI solved the memo gate (\"action:buy\") and flagged the fake-EOS path,";
  print_endline "matching the CVE report."
