(** Runtime values and exact numeric semantics of the Wasm MVP.

    Integer operations follow two's-complement wrap-around semantics;
    division and remainder trap on division by zero (and [min_int / -1]
    for signed division overflow), as mandated by the specification.
    [f32] values are represented as OCaml floats but are canonicalised
    to single precision after every operation. *)

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type value =
  | I32 of int32
  | I64 of int64
  | F32 of float  (** always canonicalised to single precision *)
  | F64 of float

let type_of = function
  | I32 _ -> Types.I32
  | I64 _ -> Types.I64
  | F32 _ -> Types.F32
  | F64 _ -> Types.F64

(** Round an OCaml double to the nearest single-precision float. *)
let to_f32 (x : float) : float = Int32.float_of_bits (Int32.bits_of_float x)

let default_value : Types.value_type -> value = function
  | Types.I32 -> I32 0l
  | Types.I64 -> I64 0L
  | Types.F32 -> F32 0.0
  | Types.F64 -> F64 0.0

let string_of_value = function
  | I32 x -> Printf.sprintf "i32:%ld" x
  | I64 x -> Printf.sprintf "i64:%Ld" x
  | F32 x -> Printf.sprintf "f32:%h" x
  | F64 x -> Printf.sprintf "f64:%h" x

let pp fmt v = Format.pp_print_string fmt (string_of_value v)

(* Typed accessors: used by host functions to destructure arguments. *)
let as_i32 = function I32 x -> x | v -> trap "expected i32, got %s" (string_of_value v)
let as_i64 = function I64 x -> x | v -> trap "expected i64, got %s" (string_of_value v)
let as_f32 = function F32 x -> x | v -> trap "expected f32, got %s" (string_of_value v)
let as_f64 = function F64 x -> x | v -> trap "expected f64, got %s" (string_of_value v)

let bool_value b = I32 (if b then 1l else 0l)

(** A 64-bit view of any value's raw bits; used by the tracer. *)
let raw_bits = function
  | I32 x -> Int64.logand (Int64.of_int32 x) 0xFFFF_FFFFL
  | I64 x -> x
  | F32 x -> Int64.logand (Int64.of_int32 (Int32.bits_of_float x)) 0xFFFF_FFFFL
  | F64 x -> Int64.bits_of_float x

(* ------------------------------------------------------------------ *)
(* 32-bit integer primitives                                          *)
(* ------------------------------------------------------------------ *)

module I32x = struct
  open Int32

  let clz x =
    if x = 0l then 32l
    else begin
      let n = ref 0 and x = ref x in
      while logand !x 0x8000_0000l = 0l do incr n; x := shift_left !x 1 done;
      of_int !n
    end

  let ctz x =
    if x = 0l then 32l
    else begin
      let n = ref 0 and x = ref x in
      while logand !x 1l = 0l do incr n; x := shift_right_logical !x 1 done;
      of_int !n
    end

  let popcnt x =
    let n = ref 0 in
    for i = 0 to 31 do
      if logand (shift_right_logical x i) 1l = 1l then incr n
    done;
    of_int !n

  let div_s a b =
    if b = 0l then trap "integer divide by zero"
    else if a = min_int && b = -1l then trap "integer overflow"
    else div a b

  let div_u a b =
    if b = 0l then trap "integer divide by zero" else unsigned_div a b

  let rem_s a b =
    if b = 0l then trap "integer divide by zero"
    else if a = min_int && b = -1l then 0l
    else rem a b

  let rem_u a b =
    if b = 0l then trap "integer divide by zero" else unsigned_rem a b

  let shl a b = shift_left a (to_int (logand b 31l))
  let shr_s a b = shift_right a (to_int (logand b 31l))
  let shr_u a b = shift_right_logical a (to_int (logand b 31l))

  let rotl a b =
    let n = to_int (logand b 31l) in
    if n = 0 then a
    else logor (shift_left a n) (shift_right_logical a (32 - n))

  let rotr a b =
    let n = to_int (logand b 31l) in
    if n = 0 then a
    else logor (shift_right_logical a n) (shift_left a (32 - n))

  let lt_u a b = unsigned_compare a b < 0
  let gt_u a b = unsigned_compare a b > 0
  let le_u a b = unsigned_compare a b <= 0
  let ge_u a b = unsigned_compare a b >= 0
end

(* ------------------------------------------------------------------ *)
(* 64-bit integer primitives                                          *)
(* ------------------------------------------------------------------ *)

module I64x = struct
  open Int64

  let clz x =
    if x = 0L then 64L
    else begin
      let n = ref 0 and x = ref x in
      while logand !x 0x8000_0000_0000_0000L = 0L do
        incr n;
        x := shift_left !x 1
      done;
      of_int !n
    end

  let ctz x =
    if x = 0L then 64L
    else begin
      let n = ref 0 and x = ref x in
      while logand !x 1L = 0L do incr n; x := shift_right_logical !x 1 done;
      of_int !n
    end

  let popcnt x =
    let n = ref 0 in
    for i = 0 to 63 do
      if logand (shift_right_logical x i) 1L = 1L then incr n
    done;
    of_int !n

  let div_s a b =
    if b = 0L then trap "integer divide by zero"
    else if a = min_int && b = -1L then trap "integer overflow"
    else div a b

  let div_u a b =
    if b = 0L then trap "integer divide by zero" else unsigned_div a b

  let rem_s a b =
    if b = 0L then trap "integer divide by zero"
    else if a = min_int && b = -1L then 0L
    else rem a b

  let rem_u a b =
    if b = 0L then trap "integer divide by zero" else unsigned_rem a b

  let shl a b = shift_left a (to_int (logand b 63L))
  let shr_s a b = shift_right a (to_int (logand b 63L))
  let shr_u a b = shift_right_logical a (to_int (logand b 63L))

  let rotl a b =
    let n = to_int (logand b 63L) in
    if n = 0 then a
    else logor (shift_left a n) (shift_right_logical a (64 - n))

  let rotr a b =
    let n = to_int (logand b 63L) in
    if n = 0 then a
    else logor (shift_right_logical a n) (shift_left a (64 - n))

  let lt_u a b = unsigned_compare a b < 0
  let gt_u a b = unsigned_compare a b > 0
  let le_u a b = unsigned_compare a b <= 0
  let ge_u a b = unsigned_compare a b >= 0
end

(* ------------------------------------------------------------------ *)
(* Float primitives                                                    *)
(* ------------------------------------------------------------------ *)

module Fx = struct
  (* [nearest] is round-to-nearest, ties to even, as mandated by Wasm. *)
  let nearest x =
    if Float.is_nan x || Float.is_integer x then x
    else
      let lo = Float.floor x and hi = Float.ceil x in
      let dl = x -. lo and dh = hi -. x in
      if dl < dh then lo
      else if dh < dl then hi
      else if Float.rem lo 2.0 = 0.0 then lo
      else hi

  let min a b =
    if Float.is_nan a || Float.is_nan b then Float.nan
    else if a = 0.0 && b = 0.0 then (if 1.0 /. a < 0.0 || 1.0 /. b < 0.0 then -0.0 else 0.0)
    else Stdlib.min a b

  let max a b =
    if Float.is_nan a || Float.is_nan b then Float.nan
    else if a = 0.0 && b = 0.0 then (if 1.0 /. a > 0.0 || 1.0 /. b > 0.0 then 0.0 else -0.0)
    else Stdlib.max a b

  let copysign a b = Float.copy_sign a b
end

(* ------------------------------------------------------------------ *)
(* Conversions                                                        *)
(* ------------------------------------------------------------------ *)

module Convert = struct
  let wrap_i64 x = Int64.to_int32 x
  let extend_s_i32 x = Int64.of_int32 x
  let extend_u_i32 x = Int64.logand (Int64.of_int32 x) 0xFFFF_FFFFL

  let trunc_f_to_i32_s (x : float) : int32 =
    if Float.is_nan x then trap "invalid conversion to integer"
    else if x >= 2147483648.0 || x < -2147483648.0 then trap "integer overflow"
    else Int32.of_float (Float.trunc x)

  let trunc_f_to_i32_u (x : float) : int32 =
    if Float.is_nan x then trap "invalid conversion to integer"
    else if x >= 4294967296.0 || x <= -1.0 then trap "integer overflow"
    else Int64.to_int32 (Int64.of_float (Float.trunc x))

  let trunc_f_to_i64_s (x : float) : int64 =
    if Float.is_nan x then trap "invalid conversion to integer"
    else if x >= 9.2233720368547758e18 || x < -9.2233720368547758e18 then
      trap "integer overflow"
    else Int64.of_float (Float.trunc x)

  let trunc_f_to_i64_u (x : float) : int64 =
    if Float.is_nan x then trap "invalid conversion to integer"
    else if x >= 1.8446744073709552e19 || x <= -1.0 then trap "integer overflow"
    else if x < 9.2233720368547758e18 then Int64.of_float (Float.trunc x)
    else Int64.add (Int64.of_float (Float.trunc (x -. 9.2233720368547758e18))) Int64.min_int

  let convert_i32_s x = Int32.to_float x

  let convert_i32_u x =
    Int64.to_float (Int64.logand (Int64.of_int32 x) 0xFFFF_FFFFL)

  let convert_i64_s x = Int64.to_float x

  let convert_i64_u x =
    if Int64.compare x 0L >= 0 then Int64.to_float x
    else
      (* Split into top bit and rest to convert an unsigned 64-bit value. *)
      Int64.to_float (Int64.shift_right_logical x 1) *. 2.0
      +. Int64.to_float (Int64.logand x 1L)
end
