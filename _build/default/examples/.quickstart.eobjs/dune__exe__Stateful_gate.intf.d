examples/stateful_gate.mli:
