(** Pluggable execution backends.

    The engine runs a target's instrumented module through one of two
    tiers: the fuel-metered tree-walking interpreter ([Interp]) or the
    closure-compiled threaded-code tier ([Compiled], see
    {!Wasai_wasm.Compile}).  The contract between them is absolute:
    verdicts, coverage signatures, trace event tapes and journal lines
    must be byte-identical whichever tier executes the payloads.

    [Auto] (the default) is the compiled tier with its per-opcode
    interpreter fallback — any function the compiler cannot translate
    runs interpreted, sharing fuel, depth, memory and globals with the
    compiled code around it. *)

module Wasm = Wasai_wasm
module Wasabi = Wasai_wasabi
open Wasai_eosio

type choice = Interp | Compiled | Auto

let to_string = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Auto -> "auto"

let of_string = function
  | "interp" -> Ok Interp
  | "compiled" -> Ok Compiled
  | "auto" -> Ok Auto
  | s -> Error (Printf.sprintf "unknown backend %S (interp|compiled|auto)" s)

let all = [ Interp; Compiled; Auto ]

(** A backend prepares a module once and runs it per action context,
    replicating the interpreter path of [Chain.run_contract] exactly. *)
module type S = sig
  val name : string

  type prepared

  val prepare : ?collector:Wasabi.Trace.t -> Wasm.Ast.module_ -> prepared
  (** One-time translation of a validated module.  [collector], when
      given, lets the backend bind the [wasai] instrumentation hooks to
      direct trace appends — only sound when every instance of this
      prepared module executes with the collector's target as receiver
      (the engine guarantees this by installing the backend only on the
      target account). *)

  val run : prepared -> Chain.context -> unit
  (** Execute one action: instantiate with the context's chain
      extensions as resolver, expose the instance via [ctx_inst], invoke
      [apply], and swallow [Eosio_exit]. *)
end

let resolver_of (ctx : Chain.context) : Wasm.Interp.resolver =
 fun mod_name item ->
  List.find_map (fun ext -> ext ctx mod_name item) ctx.Chain.chain.Chain.extensions

let apply_args (ctx : Chain.context) =
  [
    Wasm.Values.I64 ctx.Chain.ctx_receiver;
    Wasm.Values.I64 ctx.Chain.ctx_code;
    Wasm.Values.I64 ctx.Chain.ctx_action.Action.act_name;
  ]

module Interp_backend : S with type prepared = Wasm.Ast.module_ = struct
  let name = "interp"

  type prepared = Wasm.Ast.module_

  let prepare ?collector:_ m = m

  (* Mirrors the Wasm branch of [Chain.run_contract] exactly; the
     engine's interp backend leaves no executor installed, so in
     production this code path only serves direct [run] callers (the
     differential tests). *)
  let run m (ctx : Chain.context) =
    let inst =
      Wasm.Interp.instantiate ~fuel:ctx.Chain.chain.Chain.fuel_per_action
        (resolver_of ctx) m
    in
    ctx.Chain.ctx_inst <- Some inst;
    try ignore (Wasm.Interp.invoke_export inst "apply" (apply_args ctx))
    with Chain.Eosio_exit -> ()
end

(* Bind the [wasai] hook imports to direct unboxed trace appends.  The
   resolver-bound hooks guard on [ctx_receiver = target]; the compiled
   fast path drops the guard, which is sound because the engine installs
   the compiled executor only on the target account — the receiver of
   every action that reaches it. *)
let fast_hooks (collector : Wasabi.Trace.t) :
    string -> string -> Wasm.Compile.fast_host option =
  let module B = Wasabi.Trace.Buffer in
  fun mod_name item ->
    if mod_name <> "wasai" then None
    else
      match item with
      | "site" ->
          Some
            (Wasm.Compile.Fast_i32
               (fun x -> B.begin_instr collector (Int32.to_int x)))
      | "op_i32" ->
          Some (Wasm.Compile.Fast_i32 (fun x -> B.operand_i32 collector x))
      | "op_i64" ->
          Some (Wasm.Compile.Fast_i64 (fun x -> B.operand_i64 collector x))
      | "op_f32" ->
          Some (Wasm.Compile.Fast_f32 (fun x -> B.operand_f32 collector x))
      | "op_f64" ->
          Some (Wasm.Compile.Fast_f64 (fun x -> B.operand_f64 collector x))
      | "call_pre" ->
          Some
            (Wasm.Compile.Fast_i32
               (fun x -> B.begin_call_pre collector (Int32.to_int x)))
      | "call_post" ->
          Some
            (Wasm.Compile.Fast_i32
               (fun x -> B.begin_call_post collector (Int32.to_int x)))
      | "func_begin" ->
          Some
            (Wasm.Compile.Fast_i32
               (fun x -> B.func_begin collector (Int32.to_int x)))
      | "func_end" ->
          Some
            (Wasm.Compile.Fast_i32
               (fun x -> B.func_end collector (Int32.to_int x)))
      | _ -> None

module Compiled_backend : S with type prepared = Wasm.Compile.pool = struct
  let name = "compiled"

  type prepared = Wasm.Compile.pool

  let prepare ?collector m =
    Wasm.Compile.pool
      (match collector with
      | None -> Wasm.Compile.prepare m
      | Some c -> Wasm.Compile.prepare ~fast_host:(fast_hooks c) m)

  (* The pooled session is reset to the exact fresh-instantiate state per
     action (imports rebound to this context's extensions, globals and
     memory re-initialised, start re-run), so the observable behaviour
     matches the interpreter's instance-per-action path. *)
  let run pl (ctx : Chain.context) =
    Wasm.Compile.with_session pl ~fuel:ctx.Chain.chain.Chain.fuel_per_action
      (resolver_of ctx) (fun sess ->
        ctx.Chain.ctx_inst <- Some (Wasm.Compile.instance sess);
        try ignore (Wasm.Compile.invoke_export sess "apply" (apply_args ctx))
        with Chain.Eosio_exit -> ())
end

let interp : (module S) = (module Interp_backend)
let compiled : (module S) = (module Compiled_backend)

(** Wire the chosen backend into the chain for [account]'s deployed
    module.  [Interp] leaves the chain's native interpreter path in
    place (a single implementation, zero divergence risk); [Compiled]
    and [Auto] install a compiled executor — both rely on the compiler's
    per-opcode fallback, so the distinction is informational (journal
    stamping) rather than behavioural. *)
let install choice ?collector chain account (m : Wasm.Ast.module_) : unit =
  match choice with
  | Interp -> Chain.set_executor chain account None
  | Compiled | Auto ->
      let prep = Compiled_backend.prepare ?collector m in
      Chain.set_executor chain account (Some (Compiled_backend.run prep))
