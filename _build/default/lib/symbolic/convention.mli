(** Calling-convention input inference (challenge C3, §3.4.2, Table 2).

    Symbolic execution starts at the action function: scalar parameters
    become symbolic locals; [asset] and [string] parameters are concrete
    i32 pointers whose pointees get symbolic bytes in the memory model. *)

module Wasm = Wasai_wasm
module Expr = Wasai_smt.Expr
module Abi = Wasai_eosio.Abi

type sym_param =
  | SP_scalar of Expr.var  (** name / u64 / u32 *)
  | SP_asset of { amount : Expr.var; symbol : Expr.var }
  | SP_string of { len : Expr.var; content : Expr.var array }

type layout = {
  lay_def : Abi.action_def;
  lay_params : (string * Abi.param_type * sym_param) list;
  lay_locals : (int * Expr.t) list;
      (** initial Local-section bindings of the action function *)
}

val infer : Abi.action_def -> Wasm.Values.value list -> layout
(** Build the symbolic layout for an invocation; [args] are the concrete
    runtime arguments from the call_pre record (pointer locals stay
    concrete). *)

val init_memory : layout -> Wasm.Values.value list -> Memmodel.t -> unit
(** Seed the memory model with the symbolic pointees (Table 2's
    linear-memory column). *)

val action_like : Wasm.Types.func_type -> bool

val find_action_functions : Wasm.Ast.module_ -> int list
(** Candidate action functions: indirect-call-table entries plus direct
    callees of [apply] with an action-like signature. *)

val model_value : Wasai_smt.Solver.model -> Expr.var -> default:int64 -> int64

val concretize :
  layout -> Wasai_smt.Solver.model -> current:Abi.value list -> Abi.value list
(** Turn a solver model into concrete action arguments; unconstrained
    parameters keep the current seed's values. *)
