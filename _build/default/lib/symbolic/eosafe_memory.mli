(** EOSAFE's memory model, reimplemented for the ablation benchmark:
    every store appends to a history, every load scans the whole history
    newest-first building an ite-chain over address equality.  Sound, but
    O(history) per access — the behaviour §3.2 contrasts against. *)

module Expr = Wasai_smt.Expr

type t

val create : unit -> t
val store : t -> addr:Expr.t -> width_bytes:int -> Expr.t -> unit
val load_byte : t -> Expr.t -> Expr.t
val load : t -> addr:Expr.t -> width_bytes:int -> Expr.t

val work : t -> int
(** Total history entries scanned so far. *)

val size : t -> int
