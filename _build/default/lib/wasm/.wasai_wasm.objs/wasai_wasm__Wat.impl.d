lib/wasm/wat.ml: Array Ast Buffer Char Int32 List Printf String Types Values
