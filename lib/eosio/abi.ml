(** Application Binary Interface of a contract: the action signatures the
    compiler emits next to the Wasm binary, and the binary (de)serialisation
    of action data.

    Serialisation layout (little-endian, matching the paper's Table 2):
    [name]/[u64] are 8 bytes, [u32] is 4 bytes, [asset] is 16 bytes
    (amount then symbol), [string] is one length byte followed by the
    content (strings are ≤ 255 bytes in every workload we model). *)

type param_type =
  | T_name
  | T_u64
  | T_u32
  | T_asset
  | T_string

type value =
  | V_name of Name.t
  | V_u64 of int64
  | V_u32 of int32
  | V_asset of Asset.t
  | V_string of string

type action_def = {
  act_name : Name.t;
  act_params : (string * param_type) list;
}

type t = { abi_actions : action_def list }

let find_action (abi : t) (name : Name.t) =
  List.find_opt (fun a -> Name.equal a.act_name name) abi.abi_actions

let string_of_param_type = function
  | T_name -> "name"
  | T_u64 -> "uint64"
  | T_u32 -> "uint32"
  | T_asset -> "asset"
  | T_string -> "string"

let type_of_value = function
  | V_name _ -> T_name
  | V_u64 _ -> T_u64
  | V_u32 _ -> T_u32
  | V_asset _ -> T_asset
  | V_string _ -> T_string

let string_of_value = function
  | V_name n -> Name.to_string n
  | V_u64 v -> Int64.to_string v
  | V_u32 v -> Int32.to_string v
  | V_asset a -> Asset.to_string a
  | V_string s -> Printf.sprintf "%S" s

(** Byte size of a serialised value. *)
let serialized_size = function
  | V_name _ | V_u64 _ -> 8
  | V_u32 _ -> 4
  | V_asset _ -> 16
  | V_string s -> 1 + String.length s

let add_le buf width (v : int64) =
  for i = 0 to width - 1 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

(** Serialise action arguments to the byte stream fed to the contract. *)
let serialize (args : value list) : string =
  let buf = Buffer.create 64 in
  List.iter
    (fun v ->
      match v with
      | V_name n -> add_le buf 8 n
      | V_u64 x -> add_le buf 8 x
      | V_u32 x -> add_le buf 4 (Int64.of_int32 x)
      | V_asset a ->
          add_le buf 8 a.Asset.amount;
          add_le buf 8 a.Asset.symbol
      | V_string s ->
          if String.length s > 255 then invalid_arg "Abi.serialize: string too long";
          Buffer.add_char buf (Char.chr (String.length s));
          Buffer.add_string buf s)
    args;
  Buffer.contents buf

let read_le (s : string) pos width : int64 =
  let v = ref 0L in
  for i = width - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  !v

exception Deserialize_error of string

(** Deserialise a byte stream according to an action signature. *)
let deserialize (def : action_def) (data : string) : value list =
  let pos = ref 0 in
  let need n =
    if !pos + n > String.length data then
      raise (Deserialize_error
               (Printf.sprintf "action %s: data too short at offset %d"
                  (Name.to_string def.act_name) !pos))
  in
  List.map
    (fun (_, ty) ->
      match ty with
      | T_name ->
          need 8;
          let v = read_le data !pos 8 in
          pos := !pos + 8;
          V_name v
      | T_u64 ->
          need 8;
          let v = read_le data !pos 8 in
          pos := !pos + 8;
          V_u64 v
      | T_u32 ->
          need 4;
          let v = read_le data !pos 4 in
          pos := !pos + 4;
          V_u32 (Int64.to_int32 v)
      | T_asset ->
          need 16;
          let amount = read_le data !pos 8 in
          let symbol = read_le data (!pos + 8) 8 in
          pos := !pos + 16;
          V_asset (Asset.make amount symbol)
      | T_string ->
          need 1;
          let len = Char.code data.[!pos] in
          need (1 + len);
          let s = String.sub data (!pos + 1) len in
          pos := !pos + 1 + len;
          V_string s)
    def.act_params

(** Offsets of each parameter in the serialised stream.  Fixed-size
    parameters have static offsets; a parameter after a string does not,
    and the layout computation stops there (EOSIO contracts conventionally
    put strings last, as [transfer]'s [memo] does). *)
let static_offsets (def : action_def) : (string * param_type * int) list =
  let rec go off = function
    | [] -> []
    | (n, ty) :: rest -> (
        match ty with
        | T_name | T_u64 -> (n, ty, off) :: go (off + 8) rest
        | T_u32 -> (n, ty, off) :: go (off + 4) rest
        | T_asset -> (n, ty, off) :: go (off + 16) rest
        | T_string -> [ (n, ty, off) ])
  in
  go 0 def.act_params

(** The canonical [transfer(name from, name to, asset quantity, string memo)]
    signature every eosponser shares. *)
let transfer_action =
  {
    act_name = Name.transfer;
    act_params =
      [ ("from", T_name); ("to", T_name); ("quantity", T_asset); ("memo", T_string) ];
  }

(** The canonical profitable-contract ABI — [transfer] plus the
    deposit/setup/reveal trio the gambling-style templates share.  This is
    the single source of truth for the default action set: the CLI and
    campaign discovery fall back to it when a contract ships no ABI
    sidecar, and the benchmark generator builds its contracts against it. *)
let default_profitable =
  {
    abi_actions =
      [
        transfer_action;
        {
          act_name = Name.of_string "deposit";
          act_params = [ ("player", T_name); ("amount", T_u64) ];
        };
        { act_name = Name.of_string "setup"; act_params = [ ("value", T_u64) ] };
        {
          act_name = Name.of_string "reveal";
          act_params = [ ("player", T_name) ];
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Textual ABI format                                                  *)
(* ------------------------------------------------------------------ *)

(* One action per line: [name(param:type,param:type)]; '#' comments. *)

exception Parse_error of string

let param_type_of_string = function
  | "name" -> T_name
  | "uint64" | "u64" -> T_u64
  | "uint32" | "u32" -> T_u32
  | "asset" -> T_asset
  | "string" -> T_string
  | s -> raise (Parse_error (Printf.sprintf "unknown type %S" s))

let parse_action_line (line : string) : action_def =
  match String.index_opt line '(' with
  | None -> raise (Parse_error ("missing '(' in " ^ line))
  | Some lp ->
      let rp =
        match String.rindex_opt line ')' with
        | Some i when i > lp -> i
        | _ -> raise (Parse_error ("missing ')' in " ^ line))
      in
      let name = String.trim (String.sub line 0 lp) in
      let params_s = String.sub line (lp + 1) (rp - lp - 1) in
      let params =
        if String.trim params_s = "" then []
        else
          String.split_on_char ',' params_s
          |> List.map (fun p ->
                 match String.split_on_char ':' (String.trim p) with
                 | [ n; ty ] -> (String.trim n, param_type_of_string (String.trim ty))
                 | _ -> raise (Parse_error ("bad parameter " ^ p)))
      in
      { act_name = Name.of_string name; act_params = params }

(** Parse the textual ABI format. *)
let of_text (text : string) : t =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  { abi_actions = List.map parse_action_line lines }

let to_text (abi : t) : string =
  String.concat "\n"
    (List.map
       (fun a ->
         Printf.sprintf "%s(%s)"
           (Name.to_string a.act_name)
           (String.concat ","
              (List.map
                 (fun (n, ty) -> n ^ ":" ^ string_of_param_type ty)
                 a.act_params)))
       abi.abi_actions)
  ^ "\n"

let token_abi =
  {
    abi_actions =
      [
        transfer_action;
        {
          act_name = Name.of_string "issue";
          act_params = [ ("to", T_name); ("quantity", T_asset); ("memo", T_string) ];
        };
        {
          act_name = Name.of_string "create";
          act_params = [ ("issuer", T_name); ("maxsupply", T_asset) ];
        };
      ];
  }
