lib/eosio/database.ml: Char Hashtbl Int64 Map Name String Wasai_wasm
