lib/support/rand.mli:
