lib/core/scanner.ml: Abi Action Int64 List Name Printf String Wasai_eosio Wasai_symbolic Wasai_wasabi Wasai_wasm
