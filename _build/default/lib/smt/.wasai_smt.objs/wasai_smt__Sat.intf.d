lib/smt/sat.mli:
