;; Listings 1+2 with both patches applied: the dispatcher asserts
;; code == N(eosio.token) (Listing 1, line 4) and the eosponser checks
;; to == _self before providing services (Listing 2, line 2), with
;; require_auth(from) in front of the payout.  WASAI must report this
;; contract clean on all five classes.

(module
  (import "env" "read_action_data" (func (param i32 i32) (result i32)))
  (import "env" "action_data_size" (func (result i32)))
  (import "env" "send_deferred" (func (param i64 i64 i32 i32 i32)))
  (import "env" "eosio_assert" (func (param i32 i32)))
  (import "env" "require_auth" (func (param i64)))
  (memory 2)
  (data (i32.const 2048) "only real EOS\00")

  (func $eosponser (param i64 i64 i64 i32 i32)
    ;; ignore our own outgoing transfers
    local.get 1
    local.get 0
    i64.eq
    (if (then return))
    ;; Listing 2's patch: if (to != _self) return;
    local.get 2
    local.get 0
    i64.ne
    (if (then return))
    ;; authorization before the side effect
    local.get 1
    call 4
    ;; pay through a *deferred* action (the Listing 4 patch)
    i32.const 128
    i64.const 6138663591592764928
    i64.store
    i32.const 136
    i64.const -3617168760277827584
    i64.store
    i32.const 144
    i32.const 33
    i32.store
    i32.const 148
    local.get 0
    i64.store
    i32.const 156
    local.get 1
    i64.store
    i32.const 164
    local.get 3
    i64.load
    i64.store
    i32.const 172
    local.get 3
    i64.load offset=8
    i64.store
    i32.const 180
    i32.const 0
    i32.store8
    i64.const 1
    local.get 0
    i32.const 128
    i32.const 53
    i32.const 0
    call 2                          ;; send_deferred
  )

  (func $apply (param i64 i64 i64)
    local.get 2
    i64.const -3617168760277827584  ;; N(transfer)
    i64.eq
    (if
      (then
        ;; Listing 1's patch: assert(code == N(eosio.token), ...)
        local.get 1
        i64.const 6138663591592764928
        i64.eq
        i32.const 2048
        call 3
        i32.const 1024
        call 1
        call 0
        drop
        local.get 0
        i32.const 1024
        i64.load
        i32.const 1024
        i64.load offset=8
        i32.const 1040
        i32.const 1056
        call $eosponser
      )
    )
  )

  (export "apply" (func $apply))
)
