test/test_wasabi.ml: Abi Action Alcotest Asset Chain Hashtbl Host Int32 Int64 List Name Option QCheck QCheck_alcotest Token Wasai_eosio Wasai_wasabi Wasai_wasm
