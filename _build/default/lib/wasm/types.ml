(** Static types of the WebAssembly MVP.

    This module mirrors the type grammar of the core specification:
    number types, function types, limits, and the external (import/export)
    types.  EOSIO contracts only use the MVP feature set, so reference
    types, SIMD and multi-value are deliberately out of scope. *)

type num_type = I32 | I64 | F32 | F64

(** MVP value types are exactly the number types. *)
type value_type = num_type

type func_type = {
  params : value_type list;
  results : value_type list;
}

type limits = {
  lim_min : int;
  lim_max : int option;
}

type mutability = Immutable | Mutable

type global_type = {
  gt_mut : mutability;
  gt_type : value_type;
}

type table_type = {
  tbl_limits : limits;
  (* MVP tables always hold funcrefs. *)
}

type memory_type = { mem_limits : limits }

type extern_type =
  | Extern_func of func_type
  | Extern_table of table_type
  | Extern_memory of memory_type
  | Extern_global of global_type

let string_of_num_type = function
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"

let string_of_value_type = string_of_num_type

let string_of_func_type { params; results } =
  let vts vs = String.concat " " (List.map string_of_value_type vs) in
  Printf.sprintf "(%s) -> (%s)" (vts params) (vts results)

(** Byte width of a value of the given type in linear memory. *)
let size_of_num_type = function
  | I32 | F32 -> 4
  | I64 | F64 -> 8

let is_int_type = function I32 | I64 -> true | F32 | F64 -> false
let is_float_type t = not (is_int_type t)

let func_type ?(results = []) params = { params; results }

let equal_func_type (a : func_type) (b : func_type) =
  a.params = b.params && a.results = b.results

let pp_num_type fmt t = Format.pp_print_string fmt (string_of_num_type t)

let pp_func_type fmt ft =
  Format.pp_print_string fmt (string_of_func_type ft)
