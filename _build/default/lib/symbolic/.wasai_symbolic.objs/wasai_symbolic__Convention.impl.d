lib/symbolic/convention.ml: Array Char Hashtbl Int64 List Memmodel Printf String Wasai_eosio Wasai_smt Wasai_wasm
