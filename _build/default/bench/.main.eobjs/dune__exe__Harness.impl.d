bench/harness.ml: Hashtbl Int64 List Metrics Option Printf Wasai_baselines Wasai_benchgen Wasai_core Wasai_eosio Wasai_support
