lib/wasm/wat.mli: Ast
