(** The EOSVM "library API": host functions exposed to Wasm contracts under
    the [env] import namespace (§2.2 of the paper).

    Covered groups: action data access, permission APIs ([require_auth],
    [has_auth], ...), notifications, assertion, inline/deferred actions,
    blockchain-state APIs ([tapos_*]) and the [db_*_i64] intrinsics. *)

module Wasm = Wasai_wasm
module Interp = Wasm.Interp
module Values = Wasm.Values
module T = Wasm.Types

let ft = T.func_type

let mem (inst : Interp.instance) =
  match inst.Interp.memory with
  | Some m -> m
  | None -> Values.trap "host call without linear memory"

let read_c_string inst ptr =
  let m = mem inst in
  let buf = Buffer.create 32 in
  let rec go p n =
    if n > 256 then ()
    else
      let b = Wasm.Memory.load_byte m p in
      if b <> 0 then begin
        Buffer.add_char buf (Char.chr b);
        go (p + 1) (n + 1)
      end
  in
  go ptr 0;
  Buffer.contents buf

let i64_arg args n = Values.as_i64 (List.nth args n)
let i32_arg args n = Int32.to_int (Values.as_i32 (List.nth args n))

(* Build one host function record. *)
let hf name params results fn =
  {
    Interp.hf_name = name;
    hf_type = ft params ~results;
    hf_fn = fn;
  }

(** All env host functions for a given execution context. *)
let env_functions (ctx : Chain.context) : Interp.host_func list =
  let chain = ctx.Chain.chain in
  let action = ctx.Chain.ctx_action in
  let auth_ok n = List.exists (Name.equal n) action.Action.act_auth in
  [
    (* ---- action data ---------------------------------------------- *)
    hf "read_action_data" [ T.I32; T.I32 ] [ T.I32 ] (fun inst args ->
        let ptr = i32_arg args 0 and len = i32_arg args 1 in
        let data = action.Action.act_data in
        let n = min len (String.length data) in
        Wasm.Memory.store_string (mem inst) ptr (String.sub data 0 n);
        [ Values.I32 (Int32.of_int n) ]);
    hf "action_data_size" [] [ T.I32 ] (fun _ _ ->
        [ Values.I32 (Int32.of_int (String.length action.Action.act_data)) ]);
    (* ---- permission APIs ------------------------------------------ *)
    hf "require_auth" [ T.I64 ] [] (fun _ args ->
        let n = i64_arg args 0 in
        if not (auth_ok n) then
          raise
            (Chain.Assert_failed
               (Printf.sprintf "missing authority of %s" (Name.to_string n)));
        []);
    hf "require_auth2" [ T.I64; T.I64 ] [] (fun _ args ->
        let n = i64_arg args 0 in
        if not (auth_ok n) then
          raise
            (Chain.Assert_failed
               (Printf.sprintf "missing authority of %s" (Name.to_string n)));
        []);
    hf "has_auth" [ T.I64 ] [ T.I32 ] (fun _ args ->
        [ Values.bool_value (auth_ok (i64_arg args 0)) ]);
    hf "require_recipient" [ T.I64 ] [] (fun _ args ->
        Queue.add (i64_arg args 0) ctx.Chain.ctx_notify;
        []);
    hf "is_account" [ T.I64 ] [ T.I32 ] (fun _ args ->
        [ Values.bool_value (Chain.is_account chain (i64_arg args 0)) ]);
    hf "current_receiver" [] [ T.I64 ] (fun _ _ ->
        [ Values.I64 ctx.Chain.ctx_receiver ]);
    (* ---- assertion / exit ----------------------------------------- *)
    hf "eosio_assert" [ T.I32; T.I32 ] [] (fun inst args ->
        if i32_arg args 0 = 0 then
          raise (Chain.Assert_failed (read_c_string inst (i32_arg args 1)));
        []);
    hf "eosio_exit" [ T.I32 ] [] (fun _ _ -> raise Chain.Eosio_exit);
    (* ---- inline / deferred actions -------------------------------- *)
    hf "send_inline" [ T.I32; T.I32 ] [] (fun inst args ->
        let ptr = i32_arg args 0 and len = i32_arg args 1 in
        let raw = Wasm.Memory.load_string (mem inst) ptr len in
        let act =
          Action.deserialize_inline ~auth:[ ctx.Chain.ctx_receiver ] raw
        in
        Queue.add act ctx.Chain.ctx_inline;
        []);
    hf "send_deferred" [ T.I64; T.I64; T.I32; T.I32; T.I32 ] [] (fun inst args ->
        let ptr = i32_arg args 2 and len = i32_arg args 3 in
        let raw = Wasm.Memory.load_string (mem inst) ptr len in
        let act =
          Action.deserialize_inline ~auth:[ ctx.Chain.ctx_receiver ] raw
        in
        chain.Chain.deferred <-
          { Action.tx_actions = [ act ] } :: chain.Chain.deferred;
        []);
    (* ---- blockchain state ----------------------------------------- *)
    hf "tapos_block_num" [] [ T.I32 ] (fun _ _ ->
        [ Values.I32 chain.Chain.block_num ]);
    hf "tapos_block_prefix" [] [ T.I32 ] (fun _ _ ->
        [ Values.I32 chain.Chain.block_prefix ]);
    hf "current_time" [] [ T.I64 ] (fun _ _ ->
        [ Values.I64 chain.Chain.head_time_us ]);
    (* ---- database ------------------------------------------------- *)
    hf "db_store_i64" [ T.I64; T.I64; T.I64; T.I64; T.I32; T.I32 ] [ T.I32 ]
      (fun inst args ->
        let scope = i64_arg args 0
        and tbl = i64_arg args 1
        and id = i64_arg args 3
        and ptr = i32_arg args 4
        and len = i32_arg args 5 in
        let data = Wasm.Memory.load_string (mem inst) ptr len in
        let it =
          Database.store chain.Chain.db ~code:ctx.Chain.ctx_receiver ~scope ~tbl
            ~id ~data
        in
        [ Values.I32 (Int32.of_int it) ]);
    hf "db_find_i64" [ T.I64; T.I64; T.I64; T.I64 ] [ T.I32 ] (fun _ args ->
        let code = i64_arg args 0
        and scope = i64_arg args 1
        and tbl = i64_arg args 2
        and id = i64_arg args 3 in
        [ Values.I32 (Int32.of_int (Database.find chain.Chain.db ~code ~scope ~tbl ~id)) ]);
    hf "db_lowerbound_i64" [ T.I64; T.I64; T.I64; T.I64 ] [ T.I32 ]
      (fun _ args ->
        let code = i64_arg args 0
        and scope = i64_arg args 1
        and tbl = i64_arg args 2
        and id = i64_arg args 3 in
        [
          Values.I32
            (Int32.of_int (Database.lowerbound chain.Chain.db ~code ~scope ~tbl ~id));
        ]);
    hf "db_end_i64" [ T.I64; T.I64; T.I64 ] [ T.I32 ] (fun _ _ ->
        [ Values.I32 (-1l) ]);
    hf "db_get_i64" [ T.I32; T.I32; T.I32 ] [ T.I32 ] (fun inst args ->
        let it = i32_arg args 0 and ptr = i32_arg args 1 and len = i32_arg args 2 in
        let data = Database.get chain.Chain.db it in
        if len > 0 then begin
          let n = min len (String.length data) in
          Wasm.Memory.store_string (mem inst) ptr (String.sub data 0 n)
        end;
        [ Values.I32 (Int32.of_int (String.length data)) ]);
    hf "db_update_i64" [ T.I32; T.I64; T.I32; T.I32 ] [] (fun inst args ->
        let it = i32_arg args 0 and ptr = i32_arg args 2 and len = i32_arg args 3 in
        let data = Wasm.Memory.load_string (mem inst) ptr len in
        Database.update chain.Chain.db it ~data;
        []);
    hf "db_remove_i64" [ T.I32 ] [] (fun _ args ->
        Database.remove chain.Chain.db (i32_arg args 0);
        []);
    hf "db_next_i64" [ T.I32; T.I32 ] [ T.I32 ] (fun inst args ->
        let it = i32_arg args 0 and pptr = i32_arg args 1 in
        let next_it, primary = Database.next chain.Chain.db it in
        if next_it >= 0 then
          Wasm.Memory.store_bytes_le (mem inst) pptr 8 primary;
        [ Values.I32 (Int32.of_int next_it) ]);
    (* ---- secondary indexes (db_idx64) ------------------------------ *)
    hf "db_idx64_store" [ T.I64; T.I64; T.I64; T.I64; T.I32 ] [ T.I32 ]
      (fun inst args ->
        let scope = i64_arg args 0
        and tbl = i64_arg args 1
        and id = i64_arg args 3
        and ptr = i32_arg args 4 in
        let secondary = Wasm.Memory.load_bytes_le (mem inst) ptr 8 in
        [
          Values.I32
            (Int32.of_int
               (Database.idx64_store chain.Chain.db ~code:ctx.Chain.ctx_receiver
                  ~scope ~tbl ~primary:id ~secondary));
        ]);
    hf "db_idx64_update" [ T.I32; T.I64; T.I32 ] [] (fun inst args ->
        (* Nodeos updates through the iterator; we look the row up from
           it so the signature matches. *)
        let it = i32_arg args 0 and ptr = i32_arg args 2 in
        let target = Database.iterator_target chain.Chain.db it in
        let secondary = Wasm.Memory.load_bytes_le (mem inst) ptr 8 in
        Database.idx64_update chain.Chain.db
          ~code:target.Database.it_key.Database.tk_code
          ~scope:target.Database.it_key.Database.tk_scope
          ~tbl:
            (Int64.logxor target.Database.it_key.Database.tk_table Int64.min_int)
          ~primary:target.Database.it_id ~secondary;
        []);
    hf "db_idx64_find_secondary" [ T.I64; T.I64; T.I64; T.I32; T.I32 ]
      [ T.I32 ] (fun inst args ->
        let code = i64_arg args 0
        and scope = i64_arg args 1
        and tbl = i64_arg args 2
        and ptr = i32_arg args 3
        and pptr = i32_arg args 4 in
        let secondary = Wasm.Memory.load_bytes_le (mem inst) ptr 8 in
        let it, primary =
          Database.idx64_find_secondary chain.Chain.db ~code ~scope ~tbl
            ~secondary
        in
        if it >= 0 then Wasm.Memory.store_bytes_le (mem inst) pptr 8 primary;
        [ Values.I32 (Int32.of_int it) ]);
    hf "db_idx64_lowerbound" [ T.I64; T.I64; T.I64; T.I32; T.I32 ] [ T.I32 ]
      (fun inst args ->
        let code = i64_arg args 0
        and scope = i64_arg args 1
        and tbl = i64_arg args 2
        and ptr = i32_arg args 3
        and pptr = i32_arg args 4 in
        let secondary = Wasm.Memory.load_bytes_le (mem inst) ptr 8 in
        let it, primary =
          Database.idx64_lowerbound chain.Chain.db ~code ~scope ~tbl ~secondary
        in
        if it >= 0 then Wasm.Memory.store_bytes_le (mem inst) pptr 8 primary;
        [ Values.I32 (Int32.of_int it) ]);
    (* ---- console --------------------------------------------------- *)
    hf "prints" [ T.I32 ] [] (fun inst args ->
        Buffer.add_string chain.Chain.console (read_c_string inst (i32_arg args 0));
        []);
    hf "prints_l" [ T.I32; T.I32 ] [] (fun inst args ->
        Buffer.add_string chain.Chain.console
          (Wasm.Memory.load_string (mem inst) (i32_arg args 0) (i32_arg args 1));
        []);
    hf "printi" [ T.I64 ] [] (fun _ args ->
        Buffer.add_string chain.Chain.console (Int64.to_string (i64_arg args 0));
        []);
    hf "printn" [ T.I64 ] [] (fun _ args ->
        Buffer.add_string chain.Chain.console (Name.to_string (i64_arg args 0));
        []);
    (* ---- libc shims the SDK imports -------------------------------- *)
    hf "memcpy" [ T.I32; T.I32; T.I32 ] [ T.I32 ] (fun inst args ->
        let dst = i32_arg args 0 and src = i32_arg args 1 and n = i32_arg args 2 in
        let m = mem inst in
        Wasm.Memory.store_string m dst (Wasm.Memory.load_string m src n);
        [ Values.I32 (Int32.of_int dst) ]);
    hf "memset" [ T.I32; T.I32; T.I32 ] [ T.I32 ] (fun inst args ->
        let dst = i32_arg args 0 and c = i32_arg args 1 and n = i32_arg args 2 in
        let m = mem inst in
        for i = 0 to n - 1 do
          Wasm.Memory.store_byte m (dst + i) c
        done;
        [ Values.I32 (Int32.of_int dst) ]);
  ]

(** Extension resolving the [env] namespace for a context. *)
let extension : Chain.extension =
 fun ctx mod_name item ->
  if mod_name <> "env" then None
  else
    List.find_map
      (fun (h : Interp.host_func) ->
        if h.Interp.hf_name = item then Some (Interp.Extern_func h) else None)
      (env_functions ctx)

let install chain = Chain.register_extension chain extension

(** A chain with the env host API pre-installed — the common entry point. *)
let create_chain ?fuel_per_action () =
  let chain = Chain.create ?fuel_per_action () in
  install chain;
  chain
