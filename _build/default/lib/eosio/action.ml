(** Actions and transactions.

    An inline action serialised into contract memory uses the layout
    [account:u64][name:u64][datalen:u32][data bytes]; the authorisation of
    an inline action is the sending contract itself, as in EOSIO's
    common case. *)

type t = {
  act_account : Name.t;  (** contract the action targets *)
  act_name : Name.t;  (** action function *)
  act_data : string;  (** serialised arguments *)
  act_auth : Name.t list;  (** authorising actors (active permission) *)
}

type transaction = { tx_actions : t list }

let make ~account ~name ~data ~auth =
  { act_account = account; act_name = name; act_data = data; act_auth = auth }

(** Convenience: build an action from ABI-typed arguments. *)
let of_args ~account ~name ~(args : Abi.value list) ~auth =
  make ~account ~name ~data:(Abi.serialize args) ~auth

let to_string (a : t) =
  Printf.sprintf "%s@%s(%d bytes) auth=[%s]"
    (Name.to_string a.act_name)
    (Name.to_string a.act_account)
    (String.length a.act_data)
    (String.concat "," (List.map Name.to_string a.act_auth))

(* Binary layout used by send_inline / send_deferred buffers. *)

let serialize_for_inline (a : t) : string =
  let buf = Buffer.create 32 in
  Abi.add_le buf 8 a.act_account;
  Abi.add_le buf 8 a.act_name;
  Abi.add_le buf 4 (Int64.of_int (String.length a.act_data));
  Buffer.add_string buf a.act_data;
  Buffer.contents buf

let deserialize_inline ~(auth : Name.t list) (s : string) : t =
  if String.length s < 20 then
    raise (Abi.Deserialize_error "inline action buffer too short");
  let account = Abi.read_le s 0 8 in
  let name = Abi.read_le s 8 8 in
  let len = Int64.to_int (Abi.read_le s 16 4) in
  if String.length s < 20 + len then
    raise (Abi.Deserialize_error "inline action data truncated");
  let data = String.sub s 20 len in
  { act_account = account; act_name = name; act_data = data; act_auth = auth }
