(* The headline restart-safety test with a real kill -9: fork a daemon
   process, SIGKILL it while submissions are still queued, then resume
   over the surviving root and check the tenant report is byte-identical
   to an uninterrupted run's.

   This lives in its own executable because OCaml 5 forbids Unix.fork
   once any domain has been spawned: the fork must be the first
   multiprocessing act of the process, before the parent runs its own
   (domain-spawning) daemons for the reference and resume phases. *)

module Core = Wasai_core
module Wasm = Wasai_wasm
module BG = Wasai_benchgen
module Campaign = Wasai_campaign
module Serve = Wasai_serve
open Wasai_eosio

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Unix-domain socket paths are capped around 104 bytes, so anchor
   everything under a short /tmp directory instead of TMPDIR. *)
let scratch tag =
  let dir =
    Printf.sprintf "/tmp/wasai-kill-%d-%s-%d" (Unix.getpid ()) tag
      (int_of_float (Unix.gettimeofday () *. 1000.) mod 1_000_000)
  in
  Unix.mkdir dir 0o755;
  dir

let rounds = 6
let engine = (Core.Engine.make_config ~rounds:(rounds) ())

let sample_contracts ~count =
  List.mapi
    (fun i (s : BG.Corpus.sample) ->
      let name = Printf.sprintf "trgt%c" (Char.chr (Char.code 'a' + i)) in
      ( name,
        Wasm.Encode.encode s.BG.Corpus.smp_module,
        Abi.to_text s.BG.Corpus.smp_abi ))
    (BG.Corpus.coverage_set ~count ())

let client_contracts contracts =
  List.map
    (fun (name, wasm, abi) ->
      { Serve.Client.ct_name = name; ct_wasm = wasm; ct_abi = Some abi })
    contracts

let connect_retry path =
  let rec go n =
    match Serve.Client.connect path with
    | c -> c
    | exception Unix.Unix_error _ when n > 0 ->
        Unix.sleepf 0.05;
        go (n - 1)
  in
  go 100

let with_daemon cfg f =
  let t = Serve.Serve.create cfg in
  let d = Domain.spawn (fun () -> Serve.Serve.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Serve.request_stop t;
      Domain.join d)
    (fun () -> f t)

let fail fmt = Printf.ksprintf failwith fmt

let () =
  let dir = scratch "sigkill" in
  let contracts = sample_contracts ~count:6 in
  let root = Filename.concat dir "root" in
  let socket = Filename.concat dir "s.sock" in
  let cfg = Serve.Serve.make_config ~root ~socket ~jobs:1 ~depth:16 ~engine () in
  (* phase 1 — fork the daemon, submit everything, kill -9 mid-queue.
     No domain may exist in this process before the fork. *)
  (match Unix.fork () with
   | 0 ->
       (* daemon process; _exit so the parent's at_exit (buffered
          channels) never runs twice *)
       (try Serve.Serve.serve (Serve.Serve.create cfg) with _ -> ());
       Unix._exit 0
   | pid ->
       let c = connect_retry socket in
       List.iter
         (fun (name, wasm, abi) ->
           Serve.Client.send c
             (Serve.Wire.Submit
                {
                  rq_tenant = "alice";
                  rq_name = name;
                  rq_wasm = wasm;
                  rq_abi = Some abi;
                  rq_slices = 1;
                }))
         contracts;
       let rec await_first_verdict () =
         match Serve.Client.next c with
         | Serve.Wire.Verdict _ -> ()
         | _ -> await_first_verdict ()
       in
       await_first_verdict ();
       Unix.kill pid Sys.sigkill;
       ignore (Unix.waitpid [] pid);
       Serve.Client.close c);
  let journaled =
    List.length (Serve.Serve.tenant_entries ~root ~engine "alice")
  in
  if not (journaled >= 1 && journaled < List.length contracts) then
    fail "expected a partial journal after kill -9, found %d/%d entries"
      journaled (List.length contracts);
  (* phase 2 — the surviving root is refused without --resume *)
  (match
     Serve.Serve.create
       (Serve.Serve.make_config ~root ~socket ~jobs:1 ~depth:16 ~engine ())
   with
   | _ -> fail "unresumed restart over existing journals was accepted"
   | exception Failure msg ->
       if not (contains ~sub:"--resume" msg) then
         fail "refusal does not name --resume: %s" msg);
  (* phase 3 — the uninterrupted reference run (fresh root) *)
  let ref_cfg =
    Serve.Serve.make_config
      ~root:(Filename.concat dir "root-uninterrupted")
      ~socket:(Filename.concat dir "u.sock")
      ~jobs:2 ~depth:16 ~engine ()
  in
  with_daemon ref_cfg (fun _ ->
      let c = connect_retry ref_cfg.Serve.Serve.sv_socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          ignore
            (Serve.Client.submit_batch c ~tenant:"alice"
               (client_contracts contracts))));
  let reference =
    Serve.Serve.tenant_report ~root:ref_cfg.Serve.Serve.sv_root ~engine "alice"
  in
  (* phase 4 — resume the killed root; journaled names replay cached *)
  let cfg2 =
    Serve.Serve.make_config ~root ~socket ~jobs:2 ~depth:16 ~resume:true
      ~engine ()
  in
  with_daemon cfg2 (fun _ ->
      let c = connect_retry socket in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let batch =
            Serve.Client.submit_batch c ~tenant:"alice"
              (client_contracts contracts)
          in
          let cached =
            List.length
              (List.filter
                 (fun (_, k, _) -> k = Serve.Wire.Cached)
                 batch.Serve.Client.bt_verdicts)
          in
          if cached <> journaled then
            fail "expected %d cached replays after resume, got %d" journaled
              cached));
  let resumed = Serve.Serve.tenant_report ~root ~engine "alice" in
  if String.equal reference resumed then
    print_endline
      "test_serve_kill: OK (kill -9 + resume report byte-identical)"
  else (
    Printf.printf
      "test_serve_kill: MISMATCH\n--- uninterrupted ---\n%s--- resumed ---\n%s"
      reference resumed;
    exit 1)
