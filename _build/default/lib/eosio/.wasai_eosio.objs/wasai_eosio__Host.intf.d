lib/eosio/host.mli: Chain Wasai_wasm
