examples/fake_eos_cve.mli:
