(** The RQ4 "in the wild" population: a synthetic stand-in for the 991
    profitable EOSIO Mainnet contracts (the real corpus is not
    redistributable and the Mainnet RPC is unreachable offline).

    Vulnerability prevalence is sampled so the population lands near the
    study's reported rates (241 FakeEOS, 264 FakeNotif, 470 MissAuth,
    22 BlockinfoDep, 122 Rollback; 707 of 991 vulnerable overall), and
    each contract carries a later-version history — abandoned, patched,
    or still exposed — mirroring the paper's patch analysis. *)

module Wasm = Wasai_wasm
open Wasai_eosio

type history =
  | Abandoned  (** latest version replaced by an empty file *)
  | Operating_patched
  | Operating_unpatched

type deployed = {
  dep_id : int;
  dep_account : Name.t;
  dep_spec : Contracts.spec;
  dep_module : Wasm.Ast.module_;
  dep_abi : Abi.t;
  dep_history : history;
  dep_deployed_at : string;  (** synthetic deployment date *)
}

(* Patch a spec: enable every guard the original lacked. *)
let patched_spec (s : Contracts.spec) : Contracts.spec =
  {
    s with
    Contracts.sp_fake_eos_guard = true;
    sp_fake_notif_guard = true;
    sp_auth_check = true;
    sp_blockinfo = false;
    sp_payout_inline = false;
  }

let synth_date rng =
  Printf.sprintf "2019-%02d-%02d, %02d:%02d:%02d"
    (1 + Wasai_support.Rand.int rng 12)
    (1 + Wasai_support.Rand.int rng 28)
    (Wasai_support.Rand.int rng 24)
    (Wasai_support.Rand.int rng 60)
    (Wasai_support.Rand.int rng 60)

(** Generate the population. *)
let generate ?(seed = 77L) ?(count = 991) () : deployed list =
  let rng = Wasai_support.Rand.create seed in
  List.init count (fun k ->
      let account = Name.of_string (Wasai_support.Rand.eosio_name_string rng 11) in
      let base = Contracts.default_spec account in
      let spec =
        {
          base with
          Contracts.sp_fake_eos_guard =
            not (Wasai_support.Rand.flip rng ~p:0.243);
          sp_fake_notif_guard = not (Wasai_support.Rand.flip rng ~p:0.266);
          sp_auth_check = not (Wasai_support.Rand.flip rng ~p:0.474);
          sp_blockinfo = Wasai_support.Rand.flip rng ~p:0.022;
          sp_payout_inline = Wasai_support.Rand.flip rng ~p:0.123;
          sp_dispatcher =
            (if Wasai_support.Rand.flip rng ~p:0.45 then Contracts.Indirect
             else Contracts.Direct);
          sp_db_gate = Wasai_support.Rand.flip rng ~p:0.3;
          sp_min_bet =
            (if Wasai_support.Rand.flip rng ~p:0.35 then
               Some (Int64.of_int (1 + Wasai_support.Rand.int rng 1000))
             else None);
          sp_memo_gate =
            (if Wasai_support.Rand.flip rng ~p:0.05 then Some "action:buy"
             else None);
          sp_checks =
            (if Wasai_support.Rand.flip rng ~p:0.25 then
               Verification.random_checks rng
                 ~depth:(1 + Wasai_support.Rand.int rng 2)
             else []);
          sp_log_notifications = Wasai_support.Rand.flip rng ~p:0.08;
        }
      in
      let vulnerable =
        List.exists (Contracts.ground_truth spec) Contracts.all_vulns
      in
      let history =
        if not vulnerable then Operating_unpatched
        else if Wasai_support.Rand.flip rng ~p:0.416 then Abandoned
        else if Wasai_support.Rand.flip rng ~p:0.175 then Operating_patched
        else Operating_unpatched
      in
      let m, abi = Contracts.build spec in
      {
        dep_id = k;
        dep_account = account;
        dep_spec = spec;
        dep_module = m;
        dep_abi = abi;
        dep_history = history;
        dep_deployed_at = synth_date rng;
      })

(** The latest version of a deployed contract, as downloaded from the
    chain: [None] models the empty file of an abandoned contract. *)
let latest_version (d : deployed) : (Wasm.Ast.module_ * Abi.t) option =
  match d.dep_history with
  | Abandoned -> None
  | Operating_patched ->
      let m, abi = Contracts.build (patched_spec d.dep_spec) in
      Some (m, abi)
  | Operating_unpatched -> Some (d.dep_module, d.dep_abi)

let truth_any (d : deployed) =
  List.exists (Contracts.ground_truth d.dep_spec) Contracts.all_vulns
