test/test_numeric_vectors.mli:
