lib/wasm/ast.mli: Types Values
