(** Execution traces.

    The instrumented contract calls hook imports in the [wasai] namespace
    while it runs; the collector receives a flat stream of events (a site
    announcement followed by its duplicated operands) and assembles it into
    structured records τ(i, p⃗) — the trace format of §3.1 of the paper.

    Only instrumented contracts import the hooks, so auxiliary contracts
    (eosio.token, attacker agents) never pollute the trace, exactly as the
    paper's contract-level instrumentation guarantees. *)

module Wasm = Wasai_wasm
module Values = Wasm.Values

(** Static description of one instrumented instruction site. *)
type site = {
  site_id : int;
  site_func : int;  (** absolute function index in the instrumented module *)
  site_instr : Wasm.Ast.instr;  (** post-remap instruction *)
}

(** Static metadata produced by the instrumenter (the analogue of Wasabi's
    static-info file). *)
type meta = {
  sites : site array;
  instrumented : Wasm.Ast.module_;
  original : Wasm.Ast.module_;
  hook_base : int;  (** first hook import index *)
  hook_count : int;
  orig_import_count : int;  (** function imports of the original module *)
}

let site_of (meta : meta) id = meta.sites.(id)

(** Name of an imported function in the instrumented module, e.g.
    "env.require_auth". *)
let import_name (meta : meta) idx : string option =
  Wasm.Ast.func_name_at meta.instrumented idx

(** Absolute index of an [env] import by name, if the contract imports it. *)
let find_env_import (meta : meta) (name : string) : int option =
  let rec go i = function
    | [] -> None
    | (imp : Wasm.Ast.import) :: rest -> (
        match imp.idesc with
        | Wasm.Ast.Func_import _ ->
            if imp.imp_module = "env" && imp.imp_name = name then Some i
            else go (i + 1) rest
        | _ -> go i rest)
  in
  go 0 meta.instrumented.Wasm.Ast.imports

(* ------------------------------------------------------------------ *)
(* Coverage signatures                                                 *)
(* ------------------------------------------------------------------ *)

(* FNV-1a 64 over the canonicalised (sorted, deduplicated) edge set,
   each edge fed as 8 little-endian bytes of the site id followed by 4
   little-endian bytes of the direction.  The same constants as
   Campaign.Shard's name hash, so the value is machine-portable: a
   corpus written on one host deduplicates against one written on
   another. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let edge_signature (edges : (int * int32) list) : int64 =
  let edges = List.sort_uniq compare edges in
  let h = ref fnv_offset in
  let byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) fnv_prime
  in
  List.iter
    (fun (site, dir) ->
      for i = 0 to 7 do
        byte (site lsr (8 * i))
      done;
      let d = Int32.to_int dir in
      for i = 0 to 3 do
        byte (d asr (8 * i))
      done)
    edges;
  !h

(* ------------------------------------------------------------------ *)
(* Structured records                                                  *)
(* ------------------------------------------------------------------ *)

type record =
  | R_instr of { site : int; ops : Values.value list }
      (** an executed instruction with its duplicated operands *)
  | R_call_pre of { site : int; args : Values.value list }
  | R_call_post of { site : int; results : Values.value list }
  | R_func_begin of int  (** absolute function index *)
  | R_func_end of int

let record_site = function
  | R_instr { site; _ } | R_call_pre { site; _ } | R_call_post { site; _ } ->
      Some site
  | R_func_begin _ | R_func_end _ -> None

let string_of_record meta = function
  | R_instr { site; ops } ->
      Printf.sprintf "τ(%s, [%s])"
        (Wasm.Ast.mnemonic (site_of meta site).site_instr)
        (String.concat "; " (List.map Values.string_of_value ops))
  | R_call_pre { site; args } ->
      Printf.sprintf "call_pre@%d [%s]" site
        (String.concat "; " (List.map Values.string_of_value args))
  | R_call_post { site; results } ->
      Printf.sprintf "call_post@%d [%s]" site
        (String.concat "; " (List.map Values.string_of_value results))
  | R_func_begin f -> Printf.sprintf "function_begin %d" f
  | R_func_end f -> Printf.sprintf "function_end %d" f

(* ------------------------------------------------------------------ *)
(* Collector: flat event buffer                                        *)
(* ------------------------------------------------------------------ *)

module Buffer = struct
  (* The trace lives in two growable int arrays instead of a list of
     boxed records:

       tape : 2 words per event — [ (label lsl 3) lor kind ; op_start ]
       pool : 3 words per operand — [ lo32 ; hi32 ; width tag ]

     [label] is the site id (instr / call events) or the absolute
     function index (func events); both are non-negative and far below
     2^60, so packing them above the 3-bit kind is lossless.  Operand
     words hold the value's raw bits split into two unsigned 32-bit
     halves (an [int array] of plain OCaml ints is unboxed, whereas
     [int64 array] elements and [Int64.t] values are not), plus a tag
     recording the wire type.  An event's operands occupy the pool run
     [op_start(i), op_start(i+1)) — operands only ever append to the
     newest operand-bearing event, so runs are contiguous and their
     ends are implied by the next event (or the pool length).

     Appending an event or an operand is a bounds check plus two or
     three int stores: no per-event heap allocation.  [reset] rewinds
     the write cursors but keeps the arrays, so steady-state collection
     across payloads allocates nothing at all. *)

  type kind = K_instr | K_call_pre | K_call_post | K_func_begin | K_func_end

  type t = {
    mutable tape : int array;
    mutable n : int;  (** events collected *)
    mutable pool : int array;
    mutable n_ops : int;
    mutable open_ : bool;
        (** the newest event still accepts operands (it is an
            instr/call event and nothing was appended after it) *)
    mutable truncated_ : bool;
    mutable limit : int;  (** safety valve against pathological traces *)
  }

  let create ?(limit = 2_000_000) () =
    {
      tape = Array.make 256 0;
      n = 0;
      pool = Array.make 384 0;
      n_ops = 0;
      open_ = false;
      truncated_ = false;
      limit;
    }

  let length t = t.n
  let truncated t = t.truncated_

  let grow_tape t =
    let bigger = Array.make (2 * Array.length t.tape) 0 in
    Array.blit t.tape 0 bigger 0 (t.n * 2);
    t.tape <- bigger

  let grow_pool t =
    let bigger = Array.make (2 * Array.length t.pool) 0 in
    Array.blit t.pool 0 bigger 0 (t.n_ops * 3);
    t.pool <- bigger

  (* Integer kind codes (the tape word's low 3 bits). *)
  let k_instr = 0
  let k_call_pre = 1
  let k_call_post = 2
  let k_func_begin = 3
  let k_func_end = 4

  (* A refused append must leave [open_] untouched: the old list
     collector kept its pending event stale across the limit, so
     post-limit operands still append to the last pre-limit instr/call
     event.  The refusal itself is what [truncated] now surfaces. *)
  let push_event t kind label keeps_open =
    if t.n < t.limit then begin
      if (t.n + 1) * 2 > Array.length t.tape then grow_tape t;
      let base = t.n * 2 in
      t.tape.(base) <- (label lsl 3) lor kind;
      t.tape.(base + 1) <- t.n_ops;
      t.n <- t.n + 1;
      t.open_ <- keeps_open
    end
    else t.truncated_ <- true

  let begin_instr t site = push_event t k_instr site true
  let begin_call_pre t site = push_event t k_call_pre site true
  let begin_call_post t site = push_event t k_call_post site true
  let func_begin t f = push_event t k_func_begin f false
  let func_end t f = push_event t k_func_end f false

  let tag_i32 = 0
  let tag_i64 = 1
  let tag_f32 = 2
  let tag_f64 = 3

  (* Shared slow path for all operand appends.  [lo]/[hi] are the raw
     bits split into unsigned 32-bit halves. *)
  let operand_raw t lo hi tag =
    if t.open_ then begin
      if (t.n_ops + 1) * 3 > Array.length t.pool then grow_pool t;
      let base = t.n_ops * 3 in
      t.pool.(base) <- lo;
      t.pool.(base + 1) <- hi;
      t.pool.(base + 2) <- tag;
      t.n_ops <- t.n_ops + 1
    end

  (* Unboxed appends: the compiled execution tier calls these directly
     from its inlined hook closures, skipping the boxed [value]. *)
  let operand_i32 t (x : int32) =
    operand_raw t (Int32.to_int x land 0xFFFF_FFFF) 0 tag_i32

  let operand_i64 t (x : int64) =
    operand_raw t
      (Int64.to_int (Int64.logand x 0xFFFF_FFFFL))
      (Int64.to_int (Int64.logand (Int64.shift_right_logical x 32) 0xFFFF_FFFFL))
      tag_i64

  let operand_f32 t (f : float) =
    operand_raw t (Int32.to_int (Int32.bits_of_float f) land 0xFFFF_FFFF) 0
      tag_f32

  let operand_f64 t (f : float) =
    let b = Int64.bits_of_float f in
    operand_raw t
      (Int64.to_int (Int64.logand b 0xFFFF_FFFFL))
      (Int64.to_int (Int64.logand (Int64.shift_right_logical b 32) 0xFFFF_FFFFL))
      tag_f64

  let operand t (v : Values.value) =
    match v with
    | Values.I32 x -> operand_i32 t x
    | Values.I64 x -> operand_i64 t x
    | Values.F32 f -> operand_f32 t f
    | Values.F64 f -> operand_f64 t f
  (* else: operand with no open event.  Pre-limit this cannot happen
     (hooks emit operands only right after a begin); post-limit it is
     the old collector's silent [P_none -> ()] drop, already flagged by
     the refused event that closed the buffer. *)

  let reset t =
    t.n <- 0;
    t.n_ops <- 0;
    t.open_ <- false;
    t.truncated_ <- false

  (* ---------------- read side (cursor accessors) ------------------ *)

  let kind t i =
    match t.tape.(i * 2) land 7 with
    | 0 -> K_instr
    | 1 -> K_call_pre
    | 2 -> K_call_post
    | 3 -> K_func_begin
    | _ -> K_func_end

  let label t i = t.tape.(i * 2) lsr 3

  let op_start t i = t.tape.((i * 2) + 1)
  let op_end t i = if i + 1 < t.n then op_start t (i + 1) else t.n_ops
  let op_count t i = op_end t i - op_start t i
  let op_tag t i j = t.pool.(((op_start t i + j) * 3) + 2)
  let op_is_i32 t i j = op_tag t i j = tag_i32
  let op_is_i64 t i j = op_tag t i j = tag_i64

  (* Raw bits, zero-extended to 64 — identical to [Values.raw_bits] of
     the decoded value. *)
  let op_bits t i j : int64 =
    let base = (op_start t i + j) * 3 in
    Int64.logor
      (Int64.shift_left (Int64.of_int t.pool.(base + 1)) 32)
      (Int64.of_int t.pool.(base))

  let op_i32 t i j : int32 = Int32.of_int t.pool.((op_start t i + j) * 3)

  let op t i j : Values.value =
    let base = (op_start t i + j) * 3 in
    match t.pool.(base + 2) with
    | 0 -> Values.I32 (Int32.of_int t.pool.(base))
    | 1 -> Values.I64 (op_bits t i j)
    | 2 -> Values.F32 (Int32.float_of_bits (Int32.of_int t.pool.(base)))
    | _ -> Values.F64 (Int64.float_of_bits (op_bits t i j))

  let ops t i : Values.value list =
    let n = op_count t i in
    let rec go j acc = if j < 0 then acc else go (j - 1) (op t i j :: acc) in
    go (n - 1) []
end

(* ------------------------------------------------------------------ *)
(* Cursor: positioned forward iteration                                *)
(* ------------------------------------------------------------------ *)

module Cursor = struct
  (* A cursor is a position into a buffer plus accessors for the event
     under it — the streaming read API oracles and the replayer use
     instead of materialising records.  Reads are the same bounds-checked
     int loads as the raw [Buffer] accessors; no record is built. *)

  type t = { cbuf : Buffer.t; mutable pos : int }

  let make buf = { cbuf = buf; pos = 0 }
  let buffer c = c.cbuf
  let length c = Buffer.length c.cbuf
  let pos c = c.pos
  let seek c i = c.pos <- i
  let reset c = c.pos <- 0
  let at_end c = c.pos >= Buffer.length c.cbuf
  let advance c = c.pos <- c.pos + 1
  let kind c = Buffer.kind c.cbuf c.pos
  let label c = Buffer.label c.cbuf c.pos
  let op_count c = Buffer.op_count c.cbuf c.pos
  let op c j = Buffer.op c.cbuf c.pos j
  let ops c = Buffer.ops c.cbuf c.pos
  let op_bits c j = Buffer.op_bits c.cbuf c.pos j
  let op_i32 c j = Buffer.op_i32 c.cbuf c.pos j
  let op_is_i32 c j = Buffer.op_is_i32 c.cbuf c.pos j
  let op_is_i64 c j = Buffer.op_is_i64 c.cbuf c.pos j
end

(* ------------------------------------------------------------------ *)
(* Compat: materialised structured records (test-only)                  *)
(* ------------------------------------------------------------------ *)

module Compat = struct
  (* Boxed [record] views over the flat buffer, quarantined here so the
     cursor API is the only streaming surface production code sees.
     The equivalence property tests and debug printing are the intended
     consumers. *)

  let record_of t i : record =
    match Buffer.kind t i with
    | Buffer.K_instr -> R_instr { site = Buffer.label t i; ops = Buffer.ops t i }
    | Buffer.K_call_pre ->
        R_call_pre { site = Buffer.label t i; args = Buffer.ops t i }
    | Buffer.K_call_post ->
        R_call_post { site = Buffer.label t i; results = Buffer.ops t i }
    | Buffer.K_func_begin -> R_func_begin (Buffer.label t i)
    | Buffer.K_func_end -> R_func_end (Buffer.label t i)

  let iter f t =
    for i = 0 to Buffer.length t - 1 do
      f (record_of t i)
    done

  let fold f acc t =
    let acc = ref acc in
    iter (fun r -> acc := f !acc r) t;
    !acc

  let to_list t : record list =
    let rec go i acc =
      if i < 0 then acc else go (i - 1) (record_of t i :: acc)
    in
    go (Buffer.length t - 1) []

  (* Feed a record list through the append path — the property tests'
     bridge between the two representations, with the same limit
     semantics as live collection. *)
  let of_records ?limit (records : record list) : Buffer.t =
    let t = Buffer.create ?limit () in
    List.iter
      (fun r ->
        match r with
        | R_instr { site; ops } ->
            Buffer.begin_instr t site;
            List.iter (Buffer.operand t) ops
        | R_call_pre { site; args } ->
            Buffer.begin_call_pre t site;
            List.iter (Buffer.operand t) args
        | R_call_post { site; results } ->
            Buffer.begin_call_post t site;
            List.iter (Buffer.operand t) results
        | R_func_begin f -> Buffer.func_begin t f
        | R_func_end f -> Buffer.func_end t f)
      records;
    t

  (* Materialise the collected trace (oldest first) and reset. *)
  let drain c : record list =
    let r = to_list c in
    Buffer.reset c;
    r
end

(* Hook-facing aliases: the instrumenter's runtime extension drives the
   collector through these. *)
type t = Buffer.t

let create = Buffer.create
let begin_instr = Buffer.begin_instr
let begin_call_pre = Buffer.begin_call_pre
let begin_call_post = Buffer.begin_call_post
let operand = Buffer.operand
let func_begin = Buffer.func_begin
let func_end = Buffer.func_end
let reset = Buffer.reset
