(** Reimplementation of the EOSAFE baseline (He et al. 2021): static
    symbolic execution with the dispatcher-pattern heuristic, per-class
    timeout policies (Fake EOS / MissAuth → negative, Fake Notif →
    positive), path explosion on call-graph cycles, and a Rollback
    detector that ignores branch feasibility. *)

module Ast = Wasai_wasm.Ast

type verdicts = {
  es_fake_eos : bool;
  es_fake_notif : bool;
  es_miss_auth : bool;
  es_rollback : bool;
  es_located : bool;  (** dispatcher heuristic succeeded *)
  es_timeout : bool;
  es_paths : int;
}

val has_cycle : Ast.module_ -> int -> bool
(** Call-graph cycle reachable from a function (exposed for tests). *)

val path_count : ?cap:int -> Ast.instr list -> int

val path_budget : int

val analyze : Ast.module_ -> verdicts
(** Statically analyse a contract binary. *)

val flags : verdicts -> (Wasai_core.Scanner.flag * bool option) list
(** Adapt verdicts to the scanner's flag type; [None] = unsupported. *)
