(* Tests for the Wasm substrate: numeric semantics, memory, codec
   round-trips, validation, and interpreter behaviour. *)

open Wasai_wasm

let ft = Types.func_type

(* Build a single-function module exporting [f] as "f". *)
let module_of_func ?(locals = []) ?(memory = false) params results body =
  let b = Builder.create () in
  if memory then Builder.add_memory b 1;
  let idx = Builder.add_func b ~name:"f" ~locals (ft params ~results) body in
  Builder.export_func b "f" idx;
  Builder.build b

let run_f ?(memory = false) ?locals params results body args =
  let m = module_of_func ?locals ~memory params results body in
  Validate.check_module m;
  let inst = Interp.instantiate (fun _ _ -> None) m in
  Interp.invoke_export inst "f" args

let run1 body args = List.hd (run_f [] [ Types.I32 ] body args)

let check_i32 msg expected v =
  Alcotest.(check int32) msg expected (Values.as_i32 v)

let check_i64 msg expected v =
  Alcotest.(check int64) msg expected (Values.as_i64 v)

(* ------------------------------------------------------------------ *)
(* Numeric semantics                                                   *)
(* ------------------------------------------------------------------ *)

let test_i32_wraparound () =
  let open Builder.I in
  let v = run1 [ i32l Int32.max_int; i32 1; i32_add ] [] in
  check_i32 "max_int + 1 wraps" Int32.min_int v

let test_i32_div_trap () =
  let open Builder.I in
  Alcotest.check_raises "div by zero traps"
    (Values.Trap "integer divide by zero") (fun () ->
      ignore (run1 [ i32 7; i32 0; i32_div_u ] []))

let test_i32_div_s_overflow () =
  let m =
    module_of_func [] [ Types.I32 ]
      [
        Ast.Const (Values.I32 Int32.min_int);
        Ast.Const (Values.I32 (-1l));
        Ast.Int_binary (Types.I32, Ast.Div_s);
      ]
  in
  let inst = Interp.instantiate (fun _ _ -> None) m in
  Alcotest.check_raises "min_int / -1 traps" (Values.Trap "integer overflow")
    (fun () -> ignore (Interp.invoke_export inst "f" []))

let test_clz_ctz_popcnt () =
  check_i32 "clz" 24l (Values.I32 (Values.I32x.clz 0xFFl));
  check_i32 "clz 0" 32l (Values.I32 (Values.I32x.clz 0l));
  check_i32 "ctz" 4l (Values.I32 (Values.I32x.ctz 0x10l));
  check_i32 "ctz 0" 32l (Values.I32 (Values.I32x.ctz 0l));
  check_i32 "popcnt" 8l (Values.I32 (Values.I32x.popcnt 0xFFl));
  check_i64 "popcnt64" 32L (Values.I64 (Values.I64x.popcnt 0xFFFF_FFFFL));
  check_i64 "clz64" 0L (Values.I64 (Values.I64x.clz Int64.min_int))

let test_rotations () =
  check_i32 "rotl" 0x0000_0002l (Values.I32 (Values.I32x.rotl 1l 1l));
  check_i32 "rotl wrap" 1l (Values.I32 (Values.I32x.rotl 0x8000_0000l 1l));
  check_i32 "rotr wrap" 0x8000_0000l (Values.I32 (Values.I32x.rotr 1l 1l));
  check_i64 "rotr64" 0x8000_0000_0000_0000L (Values.I64 (Values.I64x.rotr 1L 1L))

let test_shift_masking () =
  (* Shift amounts are taken modulo the bit width. *)
  check_i32 "shl 33 == shl 1" 2l (Values.I32 (Values.I32x.shl 1l 33l));
  check_i64 "shl 65 == shl 1" 2L (Values.I64 (Values.I64x.shl 1L 65L))

let test_unsigned_compare () =
  Alcotest.(check bool) "-1 >u 1" true (Values.I32x.gt_u (-1l) 1l);
  Alcotest.(check bool) "-1 <u 1 is false" false (Values.I32x.lt_u (-1l) 1l);
  Alcotest.(check bool) "-1L >u 1L" true (Values.I64x.gt_u (-1L) 1L)

let test_f32_rounding () =
  (* 16777217 is not representable in f32; canonicalisation rounds it. *)
  let x = Values.to_f32 16777217.0 in
  Alcotest.(check (float 0.0)) "f32 canonicalisation" 16777216.0 x

let test_trunc_traps () =
  Alcotest.check_raises "NaN trunc traps"
    (Values.Trap "invalid conversion to integer") (fun () ->
      ignore (Values.Convert.trunc_f_to_i32_s Float.nan));
  Alcotest.check_raises "overflow trunc traps" (Values.Trap "integer overflow")
    (fun () -> ignore (Values.Convert.trunc_f_to_i32_s 3.0e9))

let test_convert_i64_u () =
  Alcotest.(check (float 1.0))
    "unsigned i64 max converts near 2^64"
    1.8446744073709552e19
    (Values.Convert.convert_i64_u (-1L))

let test_nearest_ties_even () =
  Alcotest.(check (float 0.0)) "2.5 -> 2" 2.0 (Values.Fx.nearest 2.5);
  Alcotest.(check (float 0.0)) "3.5 -> 4" 4.0 (Values.Fx.nearest 3.5);
  Alcotest.(check (float 0.0)) "-2.5 -> -2" (-2.0) (Values.Fx.nearest (-2.5))

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let mk_mem () = Memory.create { Types.mem_limits = { lim_min = 1; lim_max = Some 2 } }

let test_memory_le () =
  let m = mk_mem () in
  Memory.store_bytes_le m 0 4 0x11223344L;
  Alcotest.(check int) "little-endian byte order" 0x44 (Memory.load_byte m 0);
  Alcotest.(check int) "little-endian high byte" 0x11 (Memory.load_byte m 3);
  check_i64 "roundtrip" 0x11223344L (Values.I64 (Memory.load_bytes_le m 0 4))

let test_memory_bounds () =
  let m = mk_mem () in
  Alcotest.check_raises "oob store traps"
    (Values.Trap
       "out of bounds memory access (addr=65535 len=4 size=65536)")
    (fun () -> Memory.store_bytes_le m 65535 4 0L)

let test_memory_grow () =
  let m = mk_mem () in
  Alcotest.(check int32) "grow returns old size" 1l (Memory.grow m 1);
  Alcotest.(check int) "grown to 2 pages" 2 (Memory.size_pages m);
  Alcotest.(check int32) "grow past max fails" (-1l) (Memory.grow m 1)

let test_packed_load_sign () =
  let m = mk_mem () in
  Memory.store_byte m 10 0xFF;
  let signed =
    Memory.load_value m
      { Ast.l_ty = Types.I32; l_pack = Some (Ast.Pack8, Ast.SX); l_align = 0; l_offset = 0l }
      10
  in
  check_i32 "sign-extended" (-1l) signed;
  let unsigned =
    Memory.load_value m
      { Ast.l_ty = Types.I32; l_pack = Some (Ast.Pack8, Ast.ZX); l_align = 0; l_offset = 0l }
      10
  in
  check_i32 "zero-extended" 255l unsigned

(* ------------------------------------------------------------------ *)
(* Interpreter control flow                                            *)
(* ------------------------------------------------------------------ *)

(* Iterative factorial with a loop and two locals. *)
let factorial_body =
  let open Builder.I in
  [
    i64 1L;
    local_set 1;
    block
      [
        loop
          [
            local_get 0; i64_eqz; br_if 1;
            local_get 1; local_get 0; i64_mul; local_set 1;
            local_get 0; i64 1L; i64_sub; local_set 0;
            br 0;
          ];
      ];
    local_get 1;
  ]

let test_factorial () =
  let r =
    run_f ~locals:[ Types.I64 ] [ Types.I64 ] [ Types.I64 ] factorial_body
      [ Values.I64 10L ]
  in
  check_i64 "10!" 3628800L (List.hd r)

let test_br_table () =
  let open Builder.I in
  (* Nested blocks; br_table dispatches to different constants. *)
  let body =
    [
      block ~result:Types.I32
        [
          block
            [
              block
                [ block [ local_get 0; br_table [ 0; 1 ] 2 ]; i32 100; br 2 ];
              i32 200; br 1;
            ];
          i32 300;
        ];
    ]
  in
  let run v = run_f [ Types.I32 ] [ Types.I32 ] body [ Values.I32 v ] in
  check_i32 "case 0" 100l (List.hd (run 0l));
  check_i32 "case 1" 200l (List.hd (run 1l));
  check_i32 "default" 300l (List.hd (run 7l))

let test_call_indirect () =
  let open Builder.I in
  let b = Builder.create () in
  let t = ft [ Types.I32 ] ~results:[ Types.I32 ] in
  let double = Builder.add_func b ~name:"double" t [ local_get 0; i32 2; i32_mul ] in
  let square = Builder.add_func b ~name:"square" t [ local_get 0; local_get 0; i32_mul ] in
  let ti = Builder.add_type b t in
  let disp =
    Builder.add_func b ~name:"dispatch"
      (ft [ Types.I32; Types.I32 ] ~results:[ Types.I32 ])
      [ local_get 1; local_get 0; call_indirect ti ]
  in
  Builder.add_elem b ~offset:0 [ double; square ];
  Builder.export_func b "dispatch" disp;
  let m = Builder.build b in
  Validate.check_module m;
  let inst = Interp.instantiate (fun _ _ -> None) m in
  let call sel v =
    List.hd (Interp.invoke_export inst "dispatch" [ Values.I32 sel; Values.I32 v ])
  in
  check_i32 "table[0] doubles" 14l (call 0l 7l);
  check_i32 "table[1] squares" 49l (call 1l 7l);
  Alcotest.check_raises "oob index traps"
    (Values.Trap "undefined element (table index 9)") (fun () ->
      ignore (call 9l 7l))

let test_host_call () =
  let open Builder.I in
  let b = Builder.create () in
  let log = Builder.import_func b ~module_:"env" ~name:"log" (ft [ Types.I64 ]) in
  let f =
    Builder.add_func b ~name:"f" (ft [ Types.I64 ])
      [ local_get 0; call log; local_get 0; i64 1L; i64_add; call log ]
  in
  Builder.export_func b "f" f;
  let m = Builder.build b in
  Validate.check_module m;
  let seen = ref [] in
  let resolver mn n =
    if mn = "env" && n = "log" then
      Some
        (Interp.Extern_func
           {
             Interp.hf_name = "log";
             hf_type = ft [ Types.I64 ];
             hf_fn =
               (fun _ args ->
                 seen := Values.as_i64 (List.hd args) :: !seen;
                 []);
           })
    else None
  in
  let inst = Interp.instantiate resolver m in
  ignore (Interp.invoke_export inst "f" [ Values.I64 41L ]);
  Alcotest.(check (list int64)) "host saw both calls" [ 42L; 41L ] !seen

let test_globals () =
  let open Builder.I in
  let b = Builder.create () in
  let g = Builder.add_global b (Values.I64 7L) in
  let f =
    Builder.add_func b ~name:"bump" (ft [] ~results:[ Types.I64 ])
      [ global_get g; i64 1L; i64_add; global_set g; global_get g ]
  in
  Builder.export_func b "bump" f;
  let m = Builder.build b in
  Validate.check_module m;
  let inst = Interp.instantiate (fun _ _ -> None) m in
  check_i64 "first bump" 8L (List.hd (Interp.invoke_export inst "bump" []));
  check_i64 "second bump" 9L (List.hd (Interp.invoke_export inst "bump" []))

let test_select_drop () =
  let open Builder.I in
  let body = [ i32 11; i32 22; local_get 0; select ] in
  check_i32 "select true" 11l
    (List.hd (run_f [ Types.I32 ] [ Types.I32 ] body [ Values.I32 1l ]));
  check_i32 "select false" 22l
    (List.hd (run_f [ Types.I32 ] [ Types.I32 ] body [ Values.I32 0l ]))

let test_fuel_exhaustion () =
  let open Builder.I in
  let m = module_of_func [] [] [ block [ loop [ br 0 ] ] ] in
  let inst = Interp.instantiate ~fuel:10_000 (fun _ _ -> None) m in
  Alcotest.check_raises "infinite loop runs out of fuel"
    (Interp.Exhaustion "instruction budget exhausted") (fun () ->
      ignore (Interp.invoke_export inst "f" []))

let test_call_depth () =
  let open Builder.I in
  let b = Builder.create () in
  let f = Builder.declare_func b ~name:"rec" (ft []) in
  Builder.set_body b f [ call f ];
  Builder.export_func b "rec" f;
  let m = Builder.build b in
  let inst = Interp.instantiate ~max_depth:64 (fun _ _ -> None) m in
  Alcotest.check_raises "unbounded recursion exhausts call stack"
    (Interp.Exhaustion "call stack exhausted") (fun () ->
      ignore (Interp.invoke_export inst "rec" []))

let test_start_and_data () =
  let open Builder.I in
  let b = Builder.create () in
  Builder.add_memory b 1;
  Builder.add_data b ~offset:16 "hello";
  let f =
    Builder.add_func b ~name:"peek" (ft [ Types.I32 ] ~results:[ Types.I32 ])
      [ local_get 0; i32_load8_u () ]
  in
  Builder.export_func b "peek" f;
  (* A start function patches the data before anything is invoked. *)
  let start =
    Builder.add_func b ~name:"start" (ft [])
      [ i32 16; i32 (Char.code 'H'); i32_store8 () ]
  in
  Builder.set_start b start;
  let m = Builder.build b in
  Validate.check_module m;
  let inst = Interp.instantiate (fun _ _ -> None) m in
  check_i32 "start ran over the data segment" (Int32.of_int (Char.code 'H'))
    (List.hd (Interp.invoke_export inst "peek" [ Values.I32 16l ]));
  check_i32 "rest of data intact" (Int32.of_int (Char.code 'e'))
    (List.hd (Interp.invoke_export inst "peek" [ Values.I32 17l ]))

let test_memory_instrs () =
  let open Builder.I in
  let body =
    [
      i32 100; local_get 0; i64_store ();
      i32 100; i64_load (); i64 1L; i64_add;
    ]
  in
  let r =
    run_f ~memory:true [ Types.I64 ] [ Types.I64 ] body [ Values.I64 41L ]
  in
  check_i64 "store/load roundtrip" 42L (List.hd r)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let expect_invalid name m =
  match Validate.check_module m with
  | () -> Alcotest.failf "%s: expected validation failure" name
  | exception Validate.Invalid _ -> ()

let test_validate_rejects_type_mismatch () =
  let open Builder.I in
  expect_invalid "i64+i32"
    (module_of_func [] [ Types.I32 ] [ i64 1L; i32 2; i32_add ])

let test_validate_rejects_underflow () =
  let open Builder.I in
  expect_invalid "underflow" (module_of_func [] [ Types.I32 ] [ i32_add ])

let test_validate_rejects_bad_label () =
  let open Builder.I in
  expect_invalid "bad label" (module_of_func [] [] [ br 3 ])

let test_validate_rejects_bad_local () =
  let open Builder.I in
  expect_invalid "bad local" (module_of_func [] [] [ local_get 5; drop ])

let test_validate_unreachable_polymorphism () =
  let open Builder.I in
  (* After unreachable, any stack shape must be accepted. *)
  let m = module_of_func [] [ Types.I32 ] [ unreachable; i32_add ] in
  Validate.check_module m

let test_validate_leftover_values () =
  let open Builder.I in
  expect_invalid "leftover" (module_of_func [] [] [ i32 1 ])

let test_validate_if_result () =
  let open Builder.I in
  let m =
    module_of_func [ Types.I32 ] [ Types.I32 ]
      [ local_get 0; if_ ~result:Types.I32 [ i32 1 ] [ i32 2 ] ]
  in
  Validate.check_module m

(* ------------------------------------------------------------------ *)
(* Binary codec                                                        *)
(* ------------------------------------------------------------------ *)

let roundtrip m =
  let bin = Encode.encode m in
  Decode.decode bin

let test_roundtrip_simple () =
  let m = module_of_func ~memory:true [ Types.I64 ] [ Types.I64 ] factorial_body in
  let m = { m with Ast.funcs = Array.map (fun f -> { f with Ast.locals = [ Types.I64 ] }) m.Ast.funcs } in
  Validate.check_module m;
  let m' = roundtrip m in
  Alcotest.(check bool) "roundtrip is identity" true (m = m')

let test_roundtrip_rich () =
  let open Builder.I in
  let b = Builder.create () in
  Builder.add_memory b 2 ~max:16;
  let imp = Builder.import_func b ~module_:"env" ~name:"h" (ft [ Types.I32 ] ~results:[ Types.I32 ]) in
  let g = Builder.add_global b (Values.I64 (-1L)) in
  let t = ft [ Types.I32 ] ~results:[ Types.I32 ] in
  let f1 = Builder.add_func b ~name:"f1" t [ local_get 0; call imp ] in
  let f2 =
    Builder.add_func b ~name:"f2" ~locals:[ Types.F64; Types.F64; Types.I32 ] t
      [
        f64 3.25; local_set 1;
        local_get 0;
        if_ ~result:Types.I32 [ i32 1 ] [ i32 0 ];
        global_get g; i32_wrap_i64; i32_and;
      ]
  in
  ignore f2;
  let ti = Builder.add_type b t in
  let f3 =
    Builder.add_func b ~name:"f3" t [ local_get 0; i32 0; call_indirect ti ]
  in
  Builder.add_elem b ~offset:0 [ f1; f3 ];
  Builder.add_data b ~offset:0 "\x01\x02\xff";
  Builder.export_func b "run" f3;
  Builder.export_memory b "memory";
  let m = Builder.build b in
  Validate.check_module m;
  let m' = roundtrip m in
  Alcotest.(check bool) "rich module roundtrips" true (m = m')

let test_decode_rejects_garbage () =
  Alcotest.(check bool) "bad magic rejected" true
    (match Decode.decode "garbage!" with
     | _ -> false
     | exception Decode.Decode_error _ -> true)

let test_leb128_negative () =
  (* Signed LEB128 for negative constants must roundtrip. *)
  let open Builder.I in
  let consts = [ -1L; -64L; -65L; -123456789L; Int64.min_int; Int64.max_int ] in
  List.iter
    (fun c ->
      let m = module_of_func [] [ Types.I64 ] [ i64 c ] in
      let m' = roundtrip m in
      match m'.Ast.funcs.(0).Ast.body with
      | [ Ast.Const (Values.I64 c') ] ->
          Alcotest.(check int64) (Printf.sprintf "const %Ld" c) c c'
      | _ -> Alcotest.fail "unexpected body shape")
    consts

(* QCheck: encode/decode identity over random arithmetic expressions. *)
let gen_arith_body =
  let open QCheck.Gen in
  let leaf = map (fun v -> [ Builder.I.i64 v ]) (map Int64.of_int int) in
  let rec expr n =
    if n <= 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map3
              (fun a b op -> a @ b @ [ op ])
              (expr (n / 2)) (expr (n / 2))
              (oneofl
                 Builder.I.[ i64_add; i64_sub; i64_mul; i64_and; i64_or; i64_xor ])
          );
        ]
  in
  expr 6

let arbitrary_body =
  QCheck.make gen_arith_body ~print:(fun body ->
      String.concat "; " (List.map Ast.mnemonic body))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip of random arithmetic" ~count:200
    arbitrary_body (fun body ->
      let m = module_of_func [] [ Types.I64 ] body in
      roundtrip m = m)

let qcheck_eval_matches_fold =
  (* Interpreting a random constant expression matches direct evaluation. *)
  QCheck.Test.make ~name:"interp matches OCaml fold on arithmetic" ~count:200
    arbitrary_body (fun body ->
      let m = module_of_func [] [ Types.I64 ] body in
      Validate.check_module m;
      let inst = Interp.instantiate (fun _ _ -> None) m in
      let r = Values.as_i64 (List.hd (Interp.invoke_export inst "f" [])) in
      (* Reference evaluation with an explicit stack. *)
      let stack = ref [] in
      List.iter
        (fun i ->
          match (i : Ast.instr) with
          | Ast.Const (Values.I64 v) -> stack := v :: !stack
          | Ast.Int_binary (Types.I64, op) ->
              (match !stack with
               | b :: a :: rest ->
                   let v =
                     match op with
                     | Ast.Add -> Int64.add a b
                     | Ast.Sub -> Int64.sub a b
                     | Ast.Mul -> Int64.mul a b
                     | Ast.And -> Int64.logand a b
                     | Ast.Or -> Int64.logor a b
                     | Ast.Xor -> Int64.logxor a b
                     | _ -> assert false
                   in
                   stack := v :: rest
               | _ -> assert false)
          | _ -> assert false)
        body;
      r = List.hd !stack)

let qcheck_leb64 =
  QCheck.Test.make ~name:"LEB128 u64 roundtrip" ~count:500
    QCheck.(map Int64.of_int int)
    (fun v ->
      let buf = Buffer.create 16 in
      Encode.Buf.u64 v buf;
      let s = Decode.of_string (Buffer.contents buf) in
      Decode.u64 s = v)

let qcheck_sleb64 =
  QCheck.Test.make ~name:"LEB128 s64 roundtrip" ~count:500
    QCheck.(map Int64.of_int int)
    (fun v ->
      let buf = Buffer.create 16 in
      Encode.Buf.s64 v buf;
      let s = Decode.of_string (Buffer.contents buf) in
      Decode.s64 s = v)

(* ------------------------------------------------------------------ *)
(* WAT printer and text parser                                          *)
(* ------------------------------------------------------------------ *)

let test_wat_output () =
  let m = module_of_func ~memory:true [ Types.I64 ] [ Types.I64 ] factorial_body in
  let s = Wat.to_string m in
  Alcotest.(check bool) "mentions module" true
    (String.length s > 0 && String.sub s 0 7 = "(module");
  let contains_sub hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions i64.mul" true (contains_sub s "i64.mul")

let test_wat_text_roundtrip () =
  (* Print then re-parse: function bodies, exports and data must
     survive. *)
  let m =
    module_of_func ~memory:true ~locals:[ Types.I64 ] [ Types.I64 ]
      [ Types.I64 ] factorial_body
  in
  let m = { m with Ast.datas = [ { Ast.d_offset = [ Builder.I.i32 64 ]; d_init = "a\"b\\c\x00d" } ] } in
  let m' = Text.parse (Wat.to_string m) in
  Alcotest.(check bool) "bodies equal" true
    (m'.Ast.funcs.(0).Ast.body = m.Ast.funcs.(0).Ast.body);
  Alcotest.(check bool) "locals equal" true
    (m'.Ast.funcs.(0).Ast.locals = m.Ast.funcs.(0).Ast.locals);
  Alcotest.(check bool) "exports equal" true (m'.Ast.exports = m.Ast.exports);
  (match m'.Ast.datas with
   | [ d ] -> Alcotest.(check string) "data escaped/unescaped" "a\"b\\c\x00d" d.Ast.d_init
   | _ -> Alcotest.fail "data lost");
  (* Parsed module behaves identically. *)
  let inst = Interp.instantiate (fun _ _ -> None) m' in
  check_i64 "parsed module runs" 3628800L
    (List.hd (Interp.invoke_export inst "f" [ Values.I64 10L ]))

let test_text_handwritten () =
  let src = {|
    (module
      ;; a tiny adder with a branch
      (memory 1)
      (func $add3 (param i64 i64) (result i64)
        (block (result i64)
          local.get 0
          local.get 1
          i64.add
          i64.const 3
          i64.add)
      )
      (func $pick (param i32) (result i64)
        local.get 0
        (if (result i64)
          (then i64.const 1)
          (else i64.const 2))
      )
      (export "add3" (func $add3))
      (export "pick" (func 1)))
  |} in
  let m = Text.parse src in
  let inst = Interp.instantiate (fun _ _ -> None) m in
  check_i64 "add3" 10L
    (List.hd (Interp.invoke_export inst "add3" [ Values.I64 3L; Values.I64 4L ]));
  (* (if ...) needs its condition on the stack — push via pick's param. *)
  ignore inst

let test_text_if_condition () =
  let src = {|
    (module
      (func $choose (param i32) (result i64)
        local.get 0
        (if (result i64)
          (then i64.const 111)
          (else i64.const 222)))
      (export "choose" (func $choose)))
  |} in
  let m = Text.parse src in
  let inst = Interp.instantiate (fun _ _ -> None) m in
  check_i64 "true arm" 111L
    (List.hd (Interp.invoke_export inst "choose" [ Values.I32 1l ]));
  check_i64 "false arm" 222L
    (List.hd (Interp.invoke_export inst "choose" [ Values.I32 0l ]))

let test_text_rejects_garbage () =
  List.iter
    (fun src ->
      match Text.parse src with
      | _ -> Alcotest.failf "accepted %S" src
      | exception Text.Parse_error _ -> ()
      | exception Validate.Invalid _ -> ())
    [
      "(module (func bogus.instr))";
      "(module (func i64.const))";
      "(module (export \"f\" (func $missing)))";
      "(module (func local.get 3))";
      "(module";
    ]

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "wasai_wasm"
    [
      ( "numeric",
        [
          Alcotest.test_case "i32 wraparound" `Quick test_i32_wraparound;
          Alcotest.test_case "i32 div trap" `Quick test_i32_div_trap;
          Alcotest.test_case "i32 div_s overflow" `Quick test_i32_div_s_overflow;
          Alcotest.test_case "clz/ctz/popcnt" `Quick test_clz_ctz_popcnt;
          Alcotest.test_case "rotl/rotr" `Quick test_rotations;
          Alcotest.test_case "shift masking" `Quick test_shift_masking;
          Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
          Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
          Alcotest.test_case "trunc traps" `Quick test_trunc_traps;
          Alcotest.test_case "convert i64 unsigned" `Quick test_convert_i64_u;
          Alcotest.test_case "nearest ties-to-even" `Quick test_nearest_ties_even;
        ] );
      ( "memory",
        [
          Alcotest.test_case "little-endian" `Quick test_memory_le;
          Alcotest.test_case "bounds check" `Quick test_memory_bounds;
          Alcotest.test_case "grow" `Quick test_memory_grow;
          Alcotest.test_case "packed sign extension" `Quick test_packed_load_sign;
        ] );
      ( "interp",
        [
          Alcotest.test_case "factorial loop" `Quick test_factorial;
          Alcotest.test_case "br_table" `Quick test_br_table;
          Alcotest.test_case "call_indirect" `Quick test_call_indirect;
          Alcotest.test_case "host call" `Quick test_host_call;
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "select" `Quick test_select_drop;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "call depth" `Quick test_call_depth;
          Alcotest.test_case "data segments" `Quick test_start_and_data;
          Alcotest.test_case "memory instructions" `Quick test_memory_instrs;
        ] );
      ( "validate",
        [
          Alcotest.test_case "rejects type mismatch" `Quick
            test_validate_rejects_type_mismatch;
          Alcotest.test_case "rejects underflow" `Quick
            test_validate_rejects_underflow;
          Alcotest.test_case "rejects bad label" `Quick
            test_validate_rejects_bad_label;
          Alcotest.test_case "rejects bad local" `Quick
            test_validate_rejects_bad_local;
          Alcotest.test_case "unreachable polymorphism" `Quick
            test_validate_unreachable_polymorphism;
          Alcotest.test_case "rejects leftover values" `Quick
            test_validate_leftover_values;
          Alcotest.test_case "if with result" `Quick test_validate_if_result;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
          Alcotest.test_case "roundtrip rich" `Quick test_roundtrip_rich;
          Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "negative LEB128" `Quick test_leb128_negative;
          qc qcheck_roundtrip;
          qc qcheck_eval_matches_fold;
          qc qcheck_leb64;
          qc qcheck_sleb64;
        ] );
      ( "wat",
        [
          Alcotest.test_case "printer smoke" `Quick test_wat_output;
          Alcotest.test_case "print/parse roundtrip" `Quick
            test_wat_text_roundtrip;
          Alcotest.test_case "hand-written source" `Quick test_text_handwritten;
          Alcotest.test_case "if condition from stack" `Quick
            test_text_if_condition;
          Alcotest.test_case "rejects garbage" `Quick test_text_rejects_garbage;
        ] );
    ]
