lib/wasm/values.mli: Format Types
