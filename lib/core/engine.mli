(** The WASAI engine: Algorithm 1 of the paper.

    Per fuzzing target: instrument the bytecode, boot a local chain with
    the auxiliary contracts the adversary oracles need, then loop: select
    a seed honouring transaction dependencies, deliver it through the
    adversary channels, capture the trace, feed the scanner, replay the
    trace symbolically and solve flipped branch constraints into adaptive
    seeds. *)

module Wasm = Wasai_wasm
module Wasabi = Wasai_wasabi
module Solver = Wasai_smt.Solver
open Wasai_eosio

type config = {
  cfg_rounds : int;  (** iteration budget (stands in for the 5-min timeout) *)
  cfg_time_limit : float option;
      (** optional wall-clock cap in seconds (the paper's per-contract
          timeout); whichever of rounds/time runs out first stops the loop *)
  cfg_rng_seed : int64;
      (** root seed; the per-target RNG is seeded from
          [Rand.mix cfg_rng_seed tgt_account], see {!fuzz} *)
  cfg_solver_budget : int;  (** SAT conflicts (stands in for 3,000 ms) *)
  cfg_max_flips : int;  (** solved branches per execution *)
  cfg_fuel : int;
  cfg_feedback : bool;  (** symbolic feedback (off = blind fuzzing) *)
  cfg_preload : (Name.t * Abi.value list) list;
      (** corpus seeds injected into the pool before fresh generation, at
          fresh (adaptive) priority.  Vectors that do not type-check
          against the target's ABI are skipped.  Preloading consumes no
          randomness, so a warm run draws exactly the random seeds a cold
          run would. *)
  cfg_backend : Exec_backend.choice;
      (** execution tier for the target's instrumented module; the
          determinism contract makes the choice invisible in every
          outcome field (default [Auto], the compiled tier with
          per-opcode interpreter fallback) *)
}

val default_config : config

(** Typed validation failures of {!make_config}. *)
type config_error =
  | Bad_rounds of int
  | Bad_time_limit of float
  | Bad_solver_budget of int
  | Bad_max_flips of int
  | Bad_fuel of int
  | Bad_preload

exception Invalid_config of config_error

val string_of_config_error : config_error -> string

val make_config :
  ?rounds:int ->
  ?time_limit:float ->
  ?rng_seed:int64 ->
  ?solver_budget:int ->
  ?max_flips:int ->
  ?fuel:int ->
  ?feedback:bool ->
  ?preload:(Name.t * Abi.value list) list ->
  ?backend:Exec_backend.choice ->
  unit ->
  config
(** Validating constructor over {!default_config}: raises
    {!Invalid_config} when a knob is nonsensical — [rounds], [fuel],
    [solver_budget] or [max_flips] below 1, a non-positive
    [time_limit], or an explicit [preload] with no seeds (a warm-corpus
    run that would silently fuzz cold).  Every CLI/bench/test entry
    point builds its config here so bad knobs fail loudly at startup
    instead of producing a silently-degenerate run. *)

type target = {
  tgt_account : Name.t;
  tgt_module : Wasm.Ast.module_;
  tgt_abi : Abi.t;
}

(** A seed whose executions explored at least one previously-uncovered
    branch edge — the unit a persistent corpus stores. *)
type interesting = {
  is_round : int;  (** round that executed it *)
  is_action : Name.t;
  is_args : Abi.value list;
  is_cover : (int * int32) list;
      (** every (site, direction) edge its executions touched, sorted *)
  is_signature : int64;  (** [Wasabi.Trace.edge_signature is_cover] *)
  is_new_edges : int;  (** edges of [is_cover] that were new *)
}

type outcome = {
  out_flags : (Scanner.flag * bool) list;
  out_custom : (string * bool) list;  (** verdicts of registered custom oracles *)
  out_exploits : (Scanner.flag * Scanner.evidence) list;
      (** the exploit payload behind every positive verdict *)
  out_branches : int;  (** distinct (site, direction) pairs explored *)
  out_timeline : (int * float * int) list;
      (** (round, elapsed seconds, cumulative branches) *)
  out_rounds : int;
  out_seeds_total : int;
  out_adaptive_seeds : int;
  out_transactions : int;
  out_solver_sat : int;
  out_imprecise : int;
  out_solver : Solver.stats;
      (** per-run solver counters (quick-path / blasted / unknown /
          cache hits / cache misses) from the run's solver session *)
  out_interesting : interesting list;
      (** coverage-advancing seeds in discovery order; their covers union
          to the run's final branch set, so replaying them reproduces the
          run's coverage *)
  out_verdict_round : int;
      (** 1-based round after which the final fired-verdict set was
          complete (0 when nothing ever fired) — the convergence metric
          the corpus benchmark compares warm vs cold *)
  out_final_budget : int;
      (** the solver conflict budget after per-round adaptive retuning:
          halved (floored at 1/16 of [cfg_solver_budget]) on rounds
          producing new Unknowns, doubled (capped at 4x) on rounds whose
          fresh-seed queue drained early; equals [cfg_solver_budget]
          when [cfg_feedback] is off *)
  out_truncated : int;
      (** payloads whose trace hit the collector's event limit and was
          cut short; 0 on healthy targets — reports print a warning when
          positive, since verdicts over truncated traces are
          best-effort *)
  out_first_truncated : (int * Name.t) option;
      (** the first such payload, as (1-based transaction ordinal,
          action name) — lets the campaign's per-target warning name a
          concrete offender without logging every truncation *)
}

(** Well-known session accounts. *)

val attacker : Name.t
val player_one : Name.t
val player_two : Name.t
val treasury : Name.t
val fake_token : Name.t
val fake_notif : Name.t

val funding : int64
(** Per-identity balance, restored before every payload. *)

(** Fuzzing session state; exposed so the baselines can reuse the harness
    (EOSFuzzer shares the chain setup and the coverage accounting). *)
type session = {
  cfg : config;
  target : target;
  chain : Chain.t;
  collector : Wasabi.Trace.t;
  meta : Wasabi.Trace.meta;
  scanner : Scanner.t;
  dbg : Dbg.t;
  pool : Seed.pool;
  rng : Wasai_support.Rand.t;
  identities : Name.t list;
  branches : (int * int32, unit) Hashtbl.t;
  solver : Solver.Session.t;
      (** the run's solver session: budget, counters, verdict cache;
          confined to this run's domain *)
  exec_stage : Wasai_telemetry.Telemetry.stage;
      (** the telemetry stage payload execution is attributed to — fixed
          per session by the resolved execution backend *)
  mutable adaptive_seeds : int;
  mutable transactions : int;
  mutable solver_sat : int;
  mutable imprecise : int;
  mutable truncated_payloads : int;
      (** payloads whose trace hit the collector limit *)
  mutable first_truncated : (int * Name.t) option;
      (** (transaction ordinal, action) of the first truncated payload *)
  mutable current_action : Name.t;
  db_find_import : int option;
  seen_seeds : (string, unit) Hashtbl.t;
}

val setup : ?profile:Chain_profile.t -> ?cell:int -> config -> target -> session
(** Instrument, deploy and boot the local chain with the adversary
    auxiliaries (token, fake token, forwarding agent).  [profile] is the
    chain profile the detection oracles resolve host calls against
    (default {!Chain_profile.eosio}).  [cell] selects the partitioned
    RNG stream [Rand.mix3 cfg_rng_seed tgt_account cell] instead of the
    whole-run stream [Rand.mix cfg_rng_seed tgt_account] — see
    {!Slice}. *)

val payload : session -> Seed.t -> Scanner.channel -> Action.t * Abi.value list
(** The action pushed for a seed on a channel, plus the argument vector
    the victim's action function actually observes. *)

(** Everything the engine extracts from one payload's trace, computed in
    a single streaming pass over the event buffer (formerly four
    independent list walks). *)
type scan = {
  sc_edges : (int * int32) list;
      (** (site, direction) edges in trace order, duplicates preserved *)
  sc_executed : int list;  (** function ids that began execution, in order *)
  sc_read_missed : int64 option;
      (** last table a db_find probed and missed (end iterator) *)
  sc_read_hit : int64 option;  (** last table a db_find probed and hit *)
}

val scan_trace :
  meta:Wasabi.Trace.meta -> ?db_find:int -> Wasabi.Trace.Buffer.t -> scan
(** Pure fused pass over a trace buffer; [db_find] is the absolute
    import index of [env.db_find_i64] when the contract imports it.
    Equivalent to — and property-tested against — the historical
    separate list passes. *)

(** One payload's execution.  [ex_trace] aliases the session collector:
    read it before the next {!run_one}, which resets it. *)
type execution = {
  ex_result : Chain.tx_result;
  ex_trace : Wasabi.Trace.Buffer.t;
  ex_scan : scan;
  ex_observed : Abi.value list;
}

val run_one : session -> Seed.t -> Scanner.channel -> execution
(** Execute one payload: replenish balances, push, scan the trace once,
    feed the scanner and the coverage/DBG accounting. *)

val fuzz :
  ?cfg:config ->
  ?profile:Chain_profile.t ->
  ?oracles:(Wasabi.Trace.meta -> Scanner.custom_oracle list) ->
  ?cell:int ->
  target ->
  outcome
(** Fuzz one contract to completion; [profile] selects the chain
    profile the detection oracles match host calls against (default
    {!Chain_profile.eosio}); [oracles] builds additional detectors from
    the instrumentation metadata (the §5 extension interface).

    Determinism contract: given a fixed [cfg] (with [cfg_time_limit =
    None]) and a fixed target, every field of the outcome except
    [out_timeline]'s elapsed-seconds component is a pure function of
    [(cfg_rng_seed, tgt_account, tgt_module, tgt_abi)].  The per-target
    RNG is seeded with [Rand.mix cfg_rng_seed tgt_account] — never from
    global or sequential state — so fuzzing many targets concurrently
    (e.g. the campaign orchestrator's domains) yields byte-identical
    verdicts to fuzzing them one after another, in any order.

    The solver cache does not weaken this contract: each run owns a
    private {!Solver.Session}, and its cache key is the multiset of
    hash-consed constraint identities, so two queries collide iff they
    assert structurally identical constraint sets.  The sequence of
    queries is itself deterministic per target, hence so are the
    hit/miss pattern, the returned models, and [out_solver].  Nothing
    depends on the numeric values of expression tags or variable ids,
    which {e are} scheduling-dependent. *)

val flagged : outcome -> Scanner.flag -> bool
val any_flagged : outcome -> bool

(** Mergeable work units over a target's round budget, for intra-target
    parallelism.

    The budget is cut into a fixed number of {e cells}
    ([granularity ~rounds] of them, independent of the slice count K);
    each cell is an independent engine run over its balanced share of
    the rounds with its own disjoint RNG stream
    ([Rand.mix3 seed target cell]).  A {e slice} — the unit a scheduler
    dispatches — is a contiguous range of cells ([slice i] of [count K]),
    and its {!fragment} is the ordered associative fold of its cells'
    outcomes.  Every merge operation (per-flag OR, first-wins exploit
    selection, sorted edge union, counter addition,
    signature-deduplicated interesting concatenation, budget min,
    verdict-round max, first-[Some] truncation witness) is associative
    under ordered contiguous grouping, so {!merge} over the K fragments
    of {e any} K in [1..granularity] produces one identical result:
    journal lines, corpus additions and reports are byte-identical
    across slice counts at the same total budget. *)
module Slice : sig
  val max_cells : int
  (** The fixed cell-count ceiling (8). *)

  val granularity : rounds:int -> int
  (** [min rounds max_cells]: the number of cells a budget is cut into,
      and therefore the largest admissible slice count. *)

  val share : int -> int -> int -> int
  (** [share total parts i]: size of part [i] of the balanced partition
      of [total] into [parts] (remainder to the lowest indices). *)

  val base : int -> int -> int -> int
  (** [base total parts i]: starting offset of part [i]. *)

  type fragment = {
    fg_slice : int;  (** 0-based slice index *)
    fg_count : int;  (** K, the slice count this fragment was cut under *)
    fg_flags : (Scanner.flag * bool) list;  (** canonical [all_flags] order *)
    fg_custom : (string * bool) list;
    fg_exploits : (Scanner.flag * Scanner.evidence) list;
    fg_edges : (int * int32) list;  (** sorted distinct (site, dir) edges *)
    fg_rounds : int;
    fg_seeds_total : int;
    fg_adaptive_seeds : int;
    fg_transactions : int;
    fg_solver_sat : int;
    fg_imprecise : int;
    fg_solver : Solver.stats;
    fg_final_budget : int;  (** min over the fragment's cells *)
    fg_interesting : interesting list;
        (** cell order, rounds globalised to the full budget's round
            numbers, distinct signatures *)
    fg_verdict_round : int;  (** globalised; 0 = nothing ever fired *)
    fg_truncated : int;
    fg_first_truncated : (int * Name.t) option;
    fg_timeline : (int * float * int) list;  (** rounds globalised *)
    fg_elapsed : float;  (** summed wall seconds the fragment cost *)
  }

  val run :
    ?profile:Chain_profile.t ->
    ?oracles:(Wasabi.Trace.meta -> Scanner.custom_oracle list) ->
    cfg:config ->
    slice:int ->
    count:int ->
    target ->
    fragment
  (** Execute slice [slice] of a [count]-way partition of [cfg]'s round
      budget: run each cell in the slice's contiguous range and fold the
      outcomes.  Raises [Invalid_argument] when [count] is outside
      [1..granularity ~rounds:cfg.cfg_rounds] or [slice] outside
      [0..count-1]. *)

  val merge : fragment list -> fragment
  (** Fold a complete slice set into one whole-run fragment.  The list
      (in any order) must be exactly slices [0..K-1] of one [K]; raises
      [Invalid_argument] on a missing, duplicate or mixed-K set.  The
      result has [fg_slice = 0], [fg_count = 1] — byte-identical for
      every K of the same budget. *)

  val outcome_of_fragment : fragment -> outcome
  (** View a (typically merged) fragment as a standard engine outcome;
      [out_branches] is the edge-set cardinality. *)

  val fragment_of_outcome :
    slice:int -> count:int -> round_base:int -> elapsed:float -> outcome ->
    fragment
  (** Lift one engine outcome into a fragment, globalising its round
      numbers by [round_base] (exposed for journal reconstruction and
      tests; {!run} composes it over cells internally). *)
end
