(** Campaign input discovery: turn a directory of [.wasm]/[.wat] contract
    files (with optional [<file>.abi] / [<base>.abi] sidecars in the
    {!Wasai_eosio.Abi.of_text} format) into campaign targets.

    Each file's deployment account is derived deterministically from its
    basename ({!account_of_filename}), so per-target RNG seeds — and hence
    verdicts — are stable across reorderings, resumptions and machines. *)

module Core = Wasai_core

val account_of_filename : string -> Wasai_eosio.Name.t
(** Deterministic mapping of a file basename (extension dropped) onto the
    12-char EOSIO name alphabet.  Characters outside the alphabet are
    substituted deterministically; the result is truncated to 12 chars. *)

val default_abi : Wasai_eosio.Abi.t
(** The canonical profitable-contract ABI (transfer/deposit/setup/reveal)
    used when a contract ships no ABI sidecar. *)

val load_target : account:Wasai_eosio.Name.t -> string -> Core.Engine.target
(** Parse one contract file ([.wat] is parsed as text, anything else
    decoded as binary Wasm) plus its optional [<file>.abi] /
    [<base>.abi] sidecar into an engine target deployed as [account]. *)

val contract_files : string -> string list
(** Basenames of the usable contract files under [path] (not recursive),
    sorted.  Entries that are unreadable, empty, not regular files, or
    lack a [.wasm]/[.wat] extension are skipped with a one-line warning
    on stderr rather than aborting the scan ([.abi] sidecars and
    directories skip silently) — a single bad tenant upload must not
    take down a queue drain.  Raises [Sys_error] only when [path] itself
    cannot be read. *)

val dir : string -> Campaign.target_spec list
(** [contract_files path] as campaign targets; [sp_size] is the file's
    byte size (the campaign's biggest-first scheduling heuristic) and
    parsing is deferred to the worker via [sp_load].  Raises
    [Failure] when two files map to the same account name (rename one:
    campaign journals are keyed by the derived name) and [Sys_error] when
    the directory cannot be read. *)
