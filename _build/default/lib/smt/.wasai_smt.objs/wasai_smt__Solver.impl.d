lib/smt/solver.ml: Bitblast Expr Hashtbl Int64 List Sat
