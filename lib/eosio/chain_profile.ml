(** Chain profiles: the host-function tables a detection oracle matches
    against.

    The paper's detectors are defined over EOSIO's host API (permission
    checks, database mutations, inline actions, block information).
    WANA's cross-platform framing observes that the *logic* of each
    detector is chain-independent — only the host-function names differ.
    A profile captures exactly that name table, so targeting another
    Wasm chain (an eWASM-style host, say) is a new profile record, not a
    fork of the oracle layer.

    Profiles hold {e names}; they are resolved against one contract's
    instrumentation metadata (import section) by the oracle layer, which
    turns each group into the function-index table the streaming
    detectors match call events against. *)

type t = {
  cp_name : string;  (** profile identifier, e.g. ["eosio"] *)
  cp_auth : string list;
      (** permission APIs: an execution is "authorised" once any of
          these ran *)
  cp_state_writes : string list;
      (** persistent on-chain state mutation APIs *)
  cp_inline_send : string list;
      (** inline/deferred action dispatch (the rollback vector) *)
  cp_blockinfo : string list;
      (** block-information sources an adversary can bias *)
}

(** Visible-effect APIs: every call that mutates chain state or emits an
    action.  The MissAuth detector treats these as the protected set. *)
let effects (p : t) : string list = p.cp_inline_send @ p.cp_state_writes

(* The EOSIO host API of the paper's §3.5 detectors.  The name groups
   are exactly the tables the scanner hardcoded before the oracle layer
   existed, so resolving this profile reproduces the historical ids. *)
let eosio : t =
  {
    cp_name = "eosio";
    cp_auth = [ "require_auth"; "require_auth2"; "has_auth" ];
    cp_state_writes = [ "db_store_i64"; "db_update_i64"; "db_remove_i64" ];
    cp_inline_send = [ "send_inline" ];
    cp_blockinfo = [ "tapos_block_prefix"; "tapos_block_num" ];
  }

(* An eWASM-style demonstration profile (Ethereum-flavoured host
   functions).  No generator targets it yet; it exists to keep the
   oracle layer honest about chain-parametricity — every detector must
   compile against it without EOSIO assumptions. *)
let ewasm : t =
  {
    cp_name = "ewasm";
    cp_auth = [ "getCaller" ];
    cp_state_writes = [ "storageStore"; "selfDestruct" ];
    cp_inline_send = [ "call"; "callDelegate" ];
    cp_blockinfo = [ "getBlockNumber"; "getBlockTimestamp"; "getBlockDifficulty" ];
  }

let all : t list = [ eosio; ewasm ]
let find (name : string) : t option = List.find_opt (fun p -> p.cp_name = name) all
let names () : string list = List.map (fun p -> p.cp_name) all
