(** The concrete-address memory model (challenge C2 of the paper).

    Addresses come from the runtime trace and are concrete integers, so a
    byte-indexed table suffices — no symbolic aliasing to resolve, which is
    exactly why this model beats EOSAFE's merge-on-every-access scheme (we
    reproduce that scheme in {!Eosafe_memory} for the ablation benchmark).

    Contents are symbolic: each byte holds an 8-bit expression.  A load
    from a byte never stored creates a *symbolic load object* — a fresh
    8-bit variable memoised at that address so repeated reads agree. *)

module Expr = Wasai_smt.Expr

type t = {
  bytes : (int, Expr.t) Hashtbl.t;
  mutable symload_count : int;
  mutable store_count : int;
  mutable load_count : int;
}

let create () =
  { bytes = Hashtbl.create 256; symload_count = 0; store_count = 0; load_count = 0 }

(** Store [width_bytes] of [value] (a bitvector expression of at least that
    width) at concrete address [addr], little-endian. *)
let store (m : t) ~(addr : int) ~(width_bytes : int) (value : Expr.t) =
  m.store_count <- m.store_count + 1;
  for i = 0 to width_bytes - 1 do
    let byte = Expr.extract ((8 * i) + 7) (8 * i) value in
    Hashtbl.replace m.bytes (addr + i) byte
  done

let byte_at (m : t) (addr : int) : Expr.t =
  match Hashtbl.find_opt m.bytes addr with
  | Some b -> b
  | None ->
      (* Symbolic load object ⟨addr, 1⟩. *)
      m.symload_count <- m.symload_count + 1;
      let v = Expr.var (Expr.fresh_var ~name:(Printf.sprintf "mem@%d" addr) 8) in
      Hashtbl.replace m.bytes addr v;
      v

(** Load [width_bytes] from [addr] as a bitvector of [8 * width_bytes]
    bits. *)
let load (m : t) ~(addr : int) ~(width_bytes : int) : Expr.t =
  m.load_count <- m.load_count + 1;
  let rec build i acc =
    if i >= width_bytes then acc
    else build (i + 1) (Expr.concat (byte_at m (addr + i)) acc)
  in
  build 1 (byte_at m addr)

(** Store a concrete string (e.g. action data) at [addr]. *)
let store_concrete_string (m : t) ~(addr : int) (s : string) =
  String.iteri
    (fun i c -> Hashtbl.replace m.bytes (addr + i) (Expr.const 8 (Int64.of_int (Char.code c))))
    s

let stats m = (m.store_count, m.load_count, m.symload_count)
