(** EOSAFE's memory model, reimplemented for the ablation benchmark
    (§3.2 "Our Solution" contrasts against it).

    Every store appends an (address expression, width, value) entry; every
    load scans the whole history newest-first, building an if-then-else
    chain over address equality so overlapping stores merge correctly.
    Sound, but each access costs O(history) — the behaviour the paper
    blames for EOSAFE's slowdown on deep code. *)

module Expr = Wasai_smt.Expr

type entry = { e_addr : Expr.t; e_width : int; e_value : Expr.t }

type t = {
  mutable entries : entry list;  (** newest first *)
  mutable load_work : int;  (** total entries scanned, for the benchmark *)
}

let create () = { entries = []; load_work = 0 }

let store (m : t) ~(addr : Expr.t) ~(width_bytes : int) (value : Expr.t) =
  m.entries <- { e_addr = addr; e_width = width_bytes; e_value = value } :: m.entries

(* Byte [k] of an entry value. *)
let entry_byte (e : entry) k = Expr.extract ((8 * k) + 7) (8 * k) e.e_value

(** Load one byte at address expression [addr]: an ite-chain over all
    potentially overlapping stores. *)
let load_byte (m : t) (addr : Expr.t) : Expr.t =
  let w = Expr.width_of addr in
  let rec scan = function
    | [] ->
        (* Nothing known: fresh symbolic content. *)
        Expr.var (Expr.fresh_var ~name:"eosafe_mem" 8)
    | e :: rest ->
        m.load_work <- m.load_work + 1;
        (* If addr falls inside [e_addr, e_addr + width): select that byte. *)
        let rec per_offset k acc =
          if k < 0 then acc
          else
            let hit =
              Expr.cmp Expr.Eq addr
                (Expr.binop Expr.Add e.e_addr (Expr.const w (Int64.of_int k)))
            in
            per_offset (k - 1) (Expr.ite hit (entry_byte e k) acc)
        in
        per_offset (e.e_width - 1) (scan rest)
  in
  scan m.entries

let load (m : t) ~(addr : Expr.t) ~(width_bytes : int) : Expr.t =
  let w = Expr.width_of addr in
  let rec build i acc =
    if i >= width_bytes then acc
    else
      let b =
        load_byte m (Expr.binop Expr.Add addr (Expr.const w (Int64.of_int i)))
      in
      build (i + 1) (Expr.concat b acc)
  in
  build 1 (load_byte m addr)

let work m = m.load_work
let size m = List.length m.entries
