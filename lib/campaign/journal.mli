(** Crash-safe campaign journal: one line per completed target, appended
    under a lock and fsync'd before the write is acknowledged, so a killed
    campaign can be resumed from exactly the set of targets whose results
    reached disk.

    The format is versioned and parsed strictly: any line that is not a
    well-formed record (including a line torn by a crash mid-write) makes
    {!load} raise {!Malformed} with the offending path, line number and
    reason — a corrupt journal is never silently skipped over.  Writers
    emit the v2 format (a trailing [solver=] field with per-target
    solver/cache counters); the parser additionally accepts plain v1
    lines, whose counters read as zero, so old journals still resume. *)

module Core = Wasai_core
module Solver = Wasai_smt.Solver

(** One completed target: its verdicts plus the deterministic outcome
    counters (everything of {!Core.Engine.outcome} that the campaign
    report aggregates).  [je_elapsed] is wall-clock and is the only
    scheduling-dependent field; report canonicalisation excludes it. *)
type entry = {
  je_name : string;  (** target name (unique within a campaign) *)
  je_flags : (Core.Scanner.flag * bool) list;  (** all five, fixed order *)
  je_branches : int;
  je_rounds : int;
  je_seeds_total : int;
  je_adaptive_seeds : int;
  je_transactions : int;
  je_solver_sat : int;
  je_imprecise : int;
  je_elapsed : float;  (** seconds spent fuzzing this target *)
  je_solver : Solver.stats;
      (** per-target solver/cache counters (v2 field; zero when the
          entry was parsed from a v1 journal line) *)
}

val of_outcome : name:string -> elapsed:float -> Core.Engine.outcome -> entry

val line_of_entry : entry -> string
(** Single-line v2 record (12 tab-separated fields), no trailing
    newline. *)

val entry_of_line : string -> (entry, string) result
(** Accepts both v1 (11-field) and v2 (12-field) lines. *)

exception Malformed of string
(** Raised by {!load}; the message carries path, 1-based line number and
    reason. *)

val load : string -> entry list
(** All entries, in file order.  Raises {!Malformed} on any bad line and
    [Sys_error] if the file cannot be read. *)

(** Append-side handle; [append] serialises concurrent writers with an
    internal mutex and fsyncs after every line. *)
type writer

val open_writer : string -> writer
(** Opens (creating if needed) in append mode: resuming a campaign keeps
    the prior entries and extends the same file. *)

val append : writer -> entry -> unit
val close_writer : writer -> unit
