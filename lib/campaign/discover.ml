(** Directory discovery for campaign inputs. *)

module Core = Wasai_core
module Wasm = Wasai_wasm
open Wasai_eosio

(* EOSIO name alphabet: [.12345a-z].  Characters outside it map into the
   letters deterministically so distinct reasonable filenames keep
   distinct accounts; collisions are detected in [dir]. *)
let account_of_filename (filename : string) : Name.t =
  let base = Filename.remove_extension (Filename.basename filename) in
  let sanitize c =
    match Char.lowercase_ascii c with
    | ('a' .. 'z' | '1' .. '5' | '.') as c -> c
    | '0' -> 'o'
    | '6' .. '9' as c -> Char.chr (Char.code 'f' + Char.code c - Char.code '6')
    | '-' | '_' -> '.'
    | c -> Char.chr (Char.code 'a' + (Char.code c mod 26))
  in
  let n = min 12 (String.length base) in
  let name = String.init n (fun i -> sanitize base.[i]) in
  let name = if name = "" then "contract" else name in
  Name.of_string name

let default_abi : Abi.t = Abi.default_profitable

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_target ~account path : Core.Engine.target =
  let m =
    if Filename.check_suffix path ".wat" then Wasm.Text.parse (read_file path)
    else Wasm.Decode.decode (read_file path)
  in
  let abi =
    (* Prefer the full-filename sidecar (scan's convention), then the
       basename sidecar, then the canonical ABI. *)
    let candidates = [ path ^ ".abi"; Filename.remove_extension path ^ ".abi" ] in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> Abi.of_text (read_file p)
    | None -> default_abi
  in
  { Core.Engine.tgt_account = account; tgt_module = m; tgt_abi = abi }

let warn_skip path reason =
  Printf.eprintf "wasai: warning: skipping %s: %s\n%!" path reason

(* Service-grade enumeration: one bad upload in a tenant directory must
   not abort the whole scan, so anything that is not a readable,
   non-empty .wasm/.wat regular file is skipped with a one-line warning
   (.abi sidecars and subdirectories are expected neighbours and skip
   silently). *)
let contract_files (path : string) : string list =
  let entries = Sys.readdir path in
  Array.sort compare entries;
  List.filter
    (fun f ->
      let full = Filename.concat path f in
      let is_contract =
        Filename.check_suffix f ".wasm" || Filename.check_suffix f ".wat"
      in
      match Unix.stat full with
      | exception Unix.Unix_error (e, _, _) ->
          warn_skip full (Unix.error_message e);
          false
      | st when st.Unix.st_kind <> Unix.S_REG ->
          if is_contract then warn_skip full "not a regular file";
          false
      | _ when not is_contract ->
          if
            not
              (Filename.check_suffix f ".abi"
              || Filename.check_suffix f ".abi.json")
          then warn_skip full "not a .wasm/.wat contract";
          false
      | st when st.Unix.st_size = 0 ->
          warn_skip full "empty file";
          false
      | _ -> (
          match Unix.access full [ Unix.R_OK ] with
          | () -> true
          | exception Unix.Unix_error (e, _, _) ->
              warn_skip full (Unix.error_message e);
              false))
    (Array.to_list entries)

let dir (path : string) : Campaign.target_spec list =
  let contracts = contract_files path in
  let by_account = Hashtbl.create 16 in
  List.map
    (fun f ->
      let account = account_of_filename f in
      let name = Name.to_string account in
      (match Hashtbl.find_opt by_account name with
       | Some other ->
           failwith
             (Printf.sprintf
                "campaign: %s and %s both map to account %S; rename one (the \
                 journal is keyed by the derived account name)"
                other f name)
       | None -> Hashtbl.replace by_account name f);
      let full = Filename.concat path f in
      (* The file's byte size is the long-tail scheduling heuristic: the
         campaign starts the biggest module first. *)
      let size = try (Unix.stat full).Unix.st_size with Unix.Unix_error _ -> 0 in
      {
        Campaign.sp_name = name;
        sp_size = size;
        sp_load = (fun () -> load_target ~account full);
      })
    contracts
