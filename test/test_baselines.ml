(* Tests for the baselines: the EOSAFE static analyser's heuristics and
   documented failure modes, and EOSFuzzer's success-based oracles. *)

module BG = Wasai_benchgen
module BL = Wasai_baselines
module Core = Wasai_core
open Wasai_eosio

let n = Name.of_string

let build spec = fst (BG.Contracts.build spec)
let base = BG.Contracts.default_spec (n "victim")

(* ------------------------------------------------------------------ *)
(* EOSAFE                                                               *)
(* ------------------------------------------------------------------ *)

let test_eosafe_guard_detection () =
  let v_safe = BL.Eosafe.analyze (build base) in
  Alcotest.(check bool) "guarded contract clean (fake eos)" false
    v_safe.BL.Eosafe.es_fake_eos;
  Alcotest.(check bool) "guarded contract clean (fake notif)" false
    v_safe.BL.Eosafe.es_fake_notif;
  let v_vuln =
    BL.Eosafe.analyze
      (build { base with BG.Contracts.sp_fake_eos_guard = false;
                         sp_fake_notif_guard = false })
  in
  Alcotest.(check bool) "missing eos guard flagged" true v_vuln.BL.Eosafe.es_fake_eos;
  Alcotest.(check bool) "missing notif guard flagged" true
    v_vuln.BL.Eosafe.es_fake_notif

let test_eosafe_dispatcher_heuristic () =
  (* Indirect dispatchers are located; direct dispatch defeats the
     heuristic and triggers the timeout policy. *)
  let v_ind = BL.Eosafe.analyze (build base) in
  Alcotest.(check bool) "indirect located" true v_ind.BL.Eosafe.es_located;
  Alcotest.(check bool) "no timeout" false v_ind.BL.Eosafe.es_timeout;
  let v_dir =
    BL.Eosafe.analyze
      (build
         { base with BG.Contracts.sp_dispatcher = BG.Contracts.Direct;
                     sp_fake_eos_guard = false })
  in
  Alcotest.(check bool) "direct not located" false v_dir.BL.Eosafe.es_located;
  Alcotest.(check bool) "timeout" true v_dir.BL.Eosafe.es_timeout;
  (* Timeout policy: FakeEOS negative (FN), FakeNotif positive. *)
  Alcotest.(check bool) "fake eos FN under timeout" false v_dir.BL.Eosafe.es_fake_eos;
  Alcotest.(check bool) "fake notif positive under timeout" true
    v_dir.BL.Eosafe.es_fake_notif

let test_eosafe_obfuscation_blinds () =
  let spec =
    { base with BG.Contracts.sp_fake_eos_guard = false; sp_auth_check = false }
  in
  let v_plain = BL.Eosafe.analyze (build spec) in
  Alcotest.(check bool) "plain: fake eos found" true v_plain.BL.Eosafe.es_fake_eos;
  Alcotest.(check bool) "plain: miss auth found" true v_plain.BL.Eosafe.es_miss_auth;
  let v_obf = BL.Eosafe.analyze (BG.Obfuscate.obfuscate (build spec)) in
  Alcotest.(check bool) "obfuscated: timeout" true v_obf.BL.Eosafe.es_timeout;
  Alcotest.(check bool) "obfuscated: fake eos lost" false v_obf.BL.Eosafe.es_fake_eos;
  Alcotest.(check bool) "obfuscated: miss auth lost" false
    v_obf.BL.Eosafe.es_miss_auth

let test_eosafe_rollback_ignores_feasibility () =
  (* send_inline behind an unsatisfiable branch: WASAI stays clean, the
     static all-branches analysis produces a false positive — the 50%
     precision story of §4.2. *)
  let spec =
    {
      base with
      BG.Contracts.sp_payout_inline = true;
      sp_dead_template = true;
      sp_blockinfo = true;
    }
  in
  Alcotest.(check bool) "ground truth safe" false
    (BG.Contracts.ground_truth spec BG.Contracts.Rollback);
  let v = BL.Eosafe.analyze (build spec) in
  Alcotest.(check bool) "EOSAFE flags dead send_inline" true v.BL.Eosafe.es_rollback;
  (* And it survives obfuscation (Table 5's Rollback row). *)
  let v' = BL.Eosafe.analyze (BG.Obfuscate.obfuscate (build spec)) in
  Alcotest.(check bool) "rollback verdict survives obfuscation" true
    v'.BL.Eosafe.es_rollback

let test_eosafe_miss_auth_flow () =
  let v_ok = BL.Eosafe.analyze (build base) in
  Alcotest.(check bool) "authenticated contract clean" false
    v_ok.BL.Eosafe.es_miss_auth;
  let v_bad =
    BL.Eosafe.analyze (build { base with BG.Contracts.sp_auth_check = false })
  in
  Alcotest.(check bool) "unauthenticated effect found" true
    v_bad.BL.Eosafe.es_miss_auth

(* ------------------------------------------------------------------ *)
(* EOSFuzzer                                                            *)
(* ------------------------------------------------------------------ *)

let target_of spec =
  let m, abi = BG.Contracts.build spec in
  { Core.Engine.tgt_account = n "victim"; tgt_module = m; tgt_abi = abi }

let ef_flag spec flag =
  let o = BL.Eosfuzzer.fuzz ~rounds:24 (target_of spec) in
  BL.Eosfuzzer.flagged o flag

let test_ef_detects_simple_fake_eos () =
  Alcotest.(check (option bool)) "unguarded flagged" (Some true)
    (ef_flag
       { base with BG.Contracts.sp_fake_eos_guard = false }
       Core.Scanner.Fake_eos);
  Alcotest.(check (option bool)) "assert-guarded clean" (Some false)
    (ef_flag base Core.Scanner.Fake_eos)

let test_ef_unsupported_detectors () =
  let o = BL.Eosfuzzer.fuzz ~rounds:8 (target_of base) in
  Alcotest.(check (option bool)) "no MissAuth detector" None
    (BL.Eosfuzzer.flagged o Core.Scanner.Miss_auth);
  Alcotest.(check (option bool)) "no Rollback detector" None
    (BL.Eosfuzzer.flagged o Core.Scanner.Rollback)

let test_ef_honeypot_fp () =
  (* Silent if-return guard + console logging: the exploit transaction
     succeeds with a visible effect, so the success-based oracle reports
     a false positive on a contract WASAI correctly clears. *)
  let spec =
    {
      base with
      BG.Contracts.sp_eos_guard_style = BG.Contracts.Guard_if_return;
      sp_log_notifications = true;
    }
  in
  Alcotest.(check bool) "ground truth safe" false
    (BG.Contracts.ground_truth spec BG.Contracts.Fake_eos);
  Alcotest.(check (option bool)) "EOSFuzzer false positive" (Some true)
    (ef_flag spec Core.Scanner.Fake_eos);
  let wasai =
    Core.Engine.fuzz
      ~cfg:(Core.Engine.make_config ~rounds:(24) ())
      (target_of spec)
  in
  Alcotest.(check bool) "WASAI stays clean" false
    (Core.Engine.flagged wasai Core.Scanner.Fake_eos)

let test_ef_blind_behind_verification () =
  (* Random seeds cannot satisfy an exact-equality entry check: the
     flag-all flaw fires for Fake EOS (everything positive), and the
     other detectors report nothing — Table 6's EOSFuzzer row. *)
  let spec =
    {
      base with
      BG.Contracts.sp_fake_notif_guard = false;
      sp_blockinfo = true;
      sp_payout_inline = true;
      sp_checks =
        [
          { BG.Contracts.chk_target = BG.Contracts.Chk_amount; chk_value = 987654321L };
        ];
    }
  in
  let o = BL.Eosfuzzer.fuzz ~rounds:24 (target_of spec) in
  Alcotest.(check (option bool)) "flag-all flaw fires" (Some true)
    (BL.Eosfuzzer.flagged o Core.Scanner.Fake_eos);
  Alcotest.(check (option bool)) "fake notif missed" (Some false)
    (BL.Eosfuzzer.flagged o Core.Scanner.Fake_notif);
  Alcotest.(check (option bool)) "blockinfo missed" (Some false)
    (BL.Eosfuzzer.flagged o Core.Scanner.Blockinfo_dep)

let test_ef_no_adaptive_coverage () =
  (* Same contract: WASAI's solver opens the milestone tree, EOSFuzzer
     never passes the first level — the Figure 3 gap on one contract. *)
  let rng = Wasai_support.Rand.create 21L in
  let spec =
    {
      base with
      BG.Contracts.sp_milestones = BG.Verification.random_milestones rng ~depth:8;
    }
  in
  let target = target_of spec in
  let ef = BL.Eosfuzzer.fuzz ~rounds:24 target in
  let wasai =
    Core.Engine.fuzz
      ~cfg:(Core.Engine.make_config ~rounds:(24) ())
      target
  in
  Alcotest.(check bool)
    (Printf.sprintf "WASAI %d > EOSFuzzer %d branches"
       wasai.Core.Engine.out_branches ef.BL.Eosfuzzer.ef_branches)
    true
    (wasai.Core.Engine.out_branches > ef.BL.Eosfuzzer.ef_branches)

let () =
  Alcotest.run "wasai_baselines"
    [
      ( "eosafe",
        [
          Alcotest.test_case "guard detection" `Quick test_eosafe_guard_detection;
          Alcotest.test_case "dispatcher heuristic" `Quick
            test_eosafe_dispatcher_heuristic;
          Alcotest.test_case "obfuscation blinds it" `Quick
            test_eosafe_obfuscation_blinds;
          Alcotest.test_case "rollback ignores feasibility" `Quick
            test_eosafe_rollback_ignores_feasibility;
          Alcotest.test_case "miss-auth flow analysis" `Quick
            test_eosafe_miss_auth_flow;
        ] );
      ( "eosfuzzer",
        [
          Alcotest.test_case "simple fake eos" `Quick test_ef_detects_simple_fake_eos;
          Alcotest.test_case "unsupported detectors" `Quick
            test_ef_unsupported_detectors;
          Alcotest.test_case "honeypot false positive" `Quick test_ef_honeypot_fp;
          Alcotest.test_case "blind behind verification" `Quick
            test_ef_blind_behind_verification;
          Alcotest.test_case "no adaptive coverage" `Quick
            test_ef_no_adaptive_coverage;
        ] );
    ]
