(** Bitvector expressions (widths 1–64), the constraint language of the
    symbolic executor.

    This stands in for Z3's BitVec terms (the sealed container has no Z3);
    booleans are width-1 vectors.  Smart constructors fold constants
    aggressively so that fully concrete replays never reach the solver. *)

type width = int

type var = {
  vid : int;
  vname : string;
  vwidth : width;
}

type unop =
  | Not  (** bitwise complement *)
  | Neg  (** two's complement negation *)
  | Popcnt
  | Clz
  | Ctz

type binop =
  | Add | Sub | Mul
  | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor
  | Shl | Lshr | Ashr
  | Rotl | Rotr

type cmp = Eq | Ult | Slt | Ule | Sle

type t =
  | Const of width * int64  (** value masked to width *)
  | Var of var
  | Unop of unop * t
  | Binop of binop * t * t
  | Cmp of cmp * t * t  (** width-1 result *)
  | Ite of t * t * t  (** condition has width 1 *)
  | Extract of int * int * t  (** [Extract (hi, lo, e)], bits lo..hi inclusive *)
  | Concat of t * t  (** [Concat (hi, lo)]: hi bits above lo bits *)
  | Zext of width * t
  | Sext of width * t

(* ------------------------------------------------------------------ *)
(* Widths and masking                                                  *)
(* ------------------------------------------------------------------ *)

let mask width (v : int64) =
  if width >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let rec width_of = function
  | Const (w, _) -> w
  | Var v -> v.vwidth
  | Unop (_, e) -> width_of e
  | Binop (_, a, _) -> width_of a
  | Cmp _ -> 1
  | Ite (_, a, _) -> width_of a
  | Extract (hi, lo, _) -> hi - lo + 1
  | Concat (a, b) -> width_of a + width_of b
  | Zext (w, _) | Sext (w, _) -> w

(** Interpret a masked value of [width] bits as a signed int64. *)
let to_signed width (v : int64) =
  if width >= 64 then v
  else
    let sign_bit = Int64.shift_left 1L (width - 1) in
    if Int64.logand v sign_bit = 0L then v
    else Int64.sub v (Int64.shift_left 1L width)

(* ------------------------------------------------------------------ *)
(* Variables                                                           *)
(* ------------------------------------------------------------------ *)

(* Atomic so concurrent fuzzing domains never mint duplicate ids; verdicts
   do not depend on the numeric id values, only on their uniqueness. *)
let var_counter = Atomic.make 0

let fresh_var ?(name = "v") width : var =
  { vid = Atomic.fetch_and_add var_counter 1 + 1; vname = name; vwidth = width }

let var v = Var v

(* ------------------------------------------------------------------ *)
(* Constant evaluation of operations                                    *)
(* ------------------------------------------------------------------ *)

let eval_unop w (op : unop) (a : int64) : int64 =
  let a = mask w a in
  match op with
  | Not -> mask w (Int64.lognot a)
  | Neg -> mask w (Int64.neg a)
  | Popcnt ->
      let n = ref 0L in
      for i = 0 to w - 1 do
        if Int64.logand (Int64.shift_right_logical a i) 1L = 1L then
          n := Int64.add !n 1L
      done;
      !n
  | Clz ->
      let rec go i =
        if i < 0 then Int64.of_int w
        else if Int64.logand (Int64.shift_right_logical a i) 1L = 1L then
          Int64.of_int (w - 1 - i)
        else go (i - 1)
      in
      go (w - 1)
  | Ctz ->
      let rec go i =
        if i >= w then Int64.of_int w
        else if Int64.logand (Int64.shift_right_logical a i) 1L = 1L then
          Int64.of_int i
        else go (i + 1)
      in
      go 0

let eval_binop w (op : binop) (a : int64) (b : int64) : int64 =
  let a = mask w a and b = mask w b in
  let sa = to_signed w a and sb = to_signed w b in
  let shift_amt = Int64.to_int (Int64.unsigned_rem b (Int64.of_int w)) in
  match op with
  | Add -> mask w (Int64.add a b)
  | Sub -> mask w (Int64.sub a b)
  | Mul -> mask w (Int64.mul a b)
  | Udiv -> if b = 0L then mask w (-1L) else mask w (Int64.unsigned_div a b)
  | Urem -> if b = 0L then a else mask w (Int64.unsigned_rem a b)
  | Sdiv ->
      if b = 0L then mask w (-1L)
      else if sa = Int64.min_int && sb = -1L then mask w sa
      else mask w (Int64.div sa sb)
  | Srem ->
      if b = 0L then a
      else if sa = Int64.min_int && sb = -1L then 0L
      else mask w (Int64.rem sa sb)
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> mask w (Int64.shift_left a shift_amt)
  | Lshr -> Int64.shift_right_logical a shift_amt
  | Ashr -> mask w (Int64.shift_right (to_signed w a) shift_amt)
  | Rotl ->
      if shift_amt = 0 then a
      else
        mask w
          (Int64.logor
             (Int64.shift_left a shift_amt)
             (Int64.shift_right_logical a (w - shift_amt)))
  | Rotr ->
      if shift_amt = 0 then a
      else
        mask w
          (Int64.logor
             (Int64.shift_right_logical a shift_amt)
             (Int64.shift_left a (w - shift_amt)))

let eval_cmp w (op : cmp) (a : int64) (b : int64) : bool =
  let a = mask w a and b = mask w b in
  match op with
  | Eq -> Int64.equal a b
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Slt -> Int64.compare (to_signed w a) (to_signed w b) < 0
  | Sle -> Int64.compare (to_signed w a) (to_signed w b) <= 0

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                   *)
(* ------------------------------------------------------------------ *)

let const width v = Const (width, mask width v)
let bool_ b = Const (1, if b then 1L else 0L)
let true_ = bool_ true
let false_ = bool_ false
let is_true = function Const (1, 1L) -> true | _ -> false
let is_false = function Const (1, 0L) -> true | _ -> false

let unop op e =
  match e with
  | Const (w, v) -> Const (w, eval_unop w op v)
  | Unop (Not, inner) when op = Not -> inner
  | Unop (Neg, inner) when op = Neg -> inner
  | _ -> Unop (op, e)

let rec binop op a b =
  let w = width_of a in
  match (a, b) with
  | Const (_, va), Const (_, vb) -> Const (w, eval_binop w op va vb)
  | _ -> (
      match (op, a, b) with
      (* Identity / absorption rules keep replay expressions small. *)
      | Add, e, Const (_, 0L) | Add, Const (_, 0L), e -> e
      | Sub, e, Const (_, 0L) -> e
      | Mul, _, (Const (_, 0L) as z) | Mul, (Const (_, 0L) as z), _ -> z
      | Mul, e, Const (_, 1L) | Mul, Const (_, 1L), e -> e
      | And, _, (Const (_, 0L) as z) | And, (Const (_, 0L) as z), _ -> z
      | And, e, Const (w', m) when m = mask w' (-1L) -> e
      | And, Const (w', m), e when m = mask w' (-1L) -> e
      | Or, e, Const (_, 0L) | Or, Const (_, 0L), e -> e
      | Xor, e, Const (_, 0L) | Xor, Const (_, 0L), e -> e
      | (Shl | Lshr | Ashr), e, Const (_, 0L) -> e
      (* Constant-on-left normalisation for commutative ops. *)
      | (Add | Mul | And | Or | Xor), e, (Const _ as c) -> Binop (op, c, e)
      (* Reassociate (c1 + (c2 + e)) -> (c1+c2) + e. *)
      | Add, Const (w1, c1), Binop (Add, Const (_, c2), e) ->
          binop Add (Const (w1, mask w1 (Int64.add c1 c2))) e
      | _ -> Binop (op, a, b))

let rec cmp op a b =
  let w = width_of a in
  match (a, b) with
  | Const (_, va), Const (_, vb) -> bool_ (eval_cmp w op va vb)
  | _ when a = b && op = Eq -> true_
  (* popcnt(y) == 0 <=> y == 0, and the same for clz/ctz == width:
     undoes popcount-encoded equality tests without a counting circuit. *)
  | Unop (Popcnt, y), Const (_, 0L) when op = Eq -> cmp Eq y (Const (w, 0L))
  | Const (_, 0L), Unop (Popcnt, y) when op = Eq -> cmp Eq y (Const (w, 0L))
  (* (c1 + e) == c2  <=>  e == c2 - c1 *)
  | Binop (Add, Const (w1, c1), e), Const (_, c2) when op = Eq ->
      cmp Eq e (Const (w1, mask w1 (Int64.sub c2 c1)))
  (* (e xor c1) == c2  <=>  e == c1 xor c2 *)
  | Binop (Xor, Const (w1, c1), e), Const (_, c2) when op = Eq ->
      cmp Eq e (Const (w1, mask w1 (Int64.logxor c1 c2)))
  | _ -> Cmp (op, a, b)

let ite c a b =
  match c with
  | Const (1, 1L) -> a
  | Const (1, 0L) -> b
  | _ -> if a = b then a else Ite (c, a, b)

let rec extract hi lo e =
  let w = width_of e in
  if lo = 0 && hi = w - 1 then e
  else
    match e with
    | Const (_, v) -> const (hi - lo + 1) (Int64.shift_right_logical v lo)
    | Extract (_, lo', inner) -> Extract (hi + lo', lo + lo', inner)
    | Concat (_, b) when hi < width_of b -> extract hi lo b
    | Concat (a, b) when lo >= width_of b ->
        extract (hi - width_of b) (lo - width_of b) a
    | _ -> Extract (hi, lo, e)

let concat hi lo =
  match (hi, lo) with
  | Const (wh, vh), Const (wl, vl) ->
      const (wh + wl) (Int64.logor (Int64.shift_left vh wl) vl)
  | _ -> Concat (hi, lo)

let zext w e =
  let we = width_of e in
  if w = we then e
  else
    match e with
    | Const (_, v) -> const w v
    | _ -> Zext (w, e)

let sext w e =
  let we = width_of e in
  if w = we then e
  else
    match e with
    | Const (_, v) -> const w (to_signed we v)
    | _ -> Sext (w, e)

(* Boolean connectives over width-1 vectors. *)
let not_ e =
  match e with
  | Const (1, v) -> bool_ (v = 0L)
  | _ -> binop Xor e (Const (1, 1L))

let and_ a b =
  if is_false a || is_false b then false_
  else if is_true a then b
  else if is_true b then a
  else binop And a b

let or_ a b =
  if is_true a || is_true b then true_
  else if is_false a then b
  else if is_false b then a
  else binop Or a b

let conj = List.fold_left and_ true_
let eq a b = cmp Eq a b
let ne a b = not_ (cmp Eq a b)

(* ------------------------------------------------------------------ *)
(* Traversals                                                           *)
(* ------------------------------------------------------------------ *)

let rec iter_vars f = function
  | Const _ -> ()
  | Var v -> f v
  | Unop (_, e) | Extract (_, _, e) | Zext (_, e) | Sext (_, e) -> iter_vars f e
  | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) ->
      iter_vars f a;
      iter_vars f b
  | Ite (c, a, b) ->
      iter_vars f c;
      iter_vars f a;
      iter_vars f b

let vars e =
  let tbl = Hashtbl.create 16 in
  iter_vars (fun v -> Hashtbl.replace tbl v.vid v) e;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let contains_var pred e =
  let found = ref false in
  iter_vars (fun v -> if pred v then found := true) e;
  !found

let has_any_var e = contains_var (fun _ -> true) e

(** Substitute variables by [f]; [None] keeps the variable. *)
let rec subst (f : var -> t option) (e : t) : t =
  match e with
  | Const _ -> e
  | Var v -> ( match f v with Some e' -> e' | None -> e)
  | Unop (op, a) -> unop op (subst f a)
  | Binop (op, a, b) -> binop op (subst f a) (subst f b)
  | Cmp (op, a, b) -> cmp op (subst f a) (subst f b)
  | Ite (c, a, b) -> ite (subst f c) (subst f a) (subst f b)
  | Extract (hi, lo, a) -> extract hi lo (subst f a)
  | Concat (a, b) -> concat (subst f a) (subst f b)
  | Zext (w, a) -> zext w (subst f a)
  | Sext (w, a) -> sext w (subst f a)

(** Evaluate under a full assignment; raises [Not_found] on unassigned
    variables. *)
let rec eval (env : (int, int64) Hashtbl.t) (e : t) : int64 =
  match e with
  | Const (_, v) -> v
  | Var v -> mask v.vwidth (Hashtbl.find env v.vid)
  | Unop (op, a) -> eval_unop (width_of a) op (eval env a)
  | Binop (op, a, b) -> eval_binop (width_of a) op (eval env a) (eval env b)
  | Cmp (op, a, b) ->
      if eval_cmp (width_of a) op (eval env a) (eval env b) then 1L else 0L
  | Ite (c, a, b) -> if eval env c = 1L then eval env a else eval env b
  | Extract (hi, lo, a) ->
      mask (hi - lo + 1) (Int64.shift_right_logical (eval env a) lo)
  | Concat (a, b) ->
      Int64.logor (Int64.shift_left (eval env a) (width_of b)) (eval env b)
  | Zext (w, a) -> mask w (eval env a)
  | Sext (w, a) -> mask w (to_signed (width_of a) (eval env a))

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let string_of_unop = function
  | Not -> "not" | Neg -> "neg" | Popcnt -> "popcnt" | Clz -> "clz" | Ctz -> "ctz"

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | Udiv -> "/u" | Urem -> "%u" | Sdiv -> "/s" | Srem -> "%s"
  | And -> "&" | Or -> "|" | Xor -> "^"
  | Shl -> "<<" | Lshr -> ">>u" | Ashr -> ">>s"
  | Rotl -> "rotl" | Rotr -> "rotr"

let string_of_cmp = function
  | Eq -> "==" | Ult -> "<u" | Slt -> "<s" | Ule -> "<=u" | Sle -> "<=s"

let rec to_string = function
  | Const (w, v) -> Printf.sprintf "%Ld:%d" v w
  | Var v -> Printf.sprintf "%s#%d:%d" v.vname v.vid v.vwidth
  | Unop (op, e) -> Printf.sprintf "%s(%s)" (string_of_unop op) (to_string e)
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (string_of_binop op) (to_string b)
  | Cmp (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (string_of_cmp op) (to_string b)
  | Ite (c, a, b) ->
      Printf.sprintf "ite(%s, %s, %s)" (to_string c) (to_string a) (to_string b)
  | Extract (hi, lo, e) -> Printf.sprintf "%s[%d:%d]" (to_string e) hi lo
  | Concat (a, b) -> Printf.sprintf "(%s ++ %s)" (to_string a) (to_string b)
  | Zext (w, e) -> Printf.sprintf "zext%d(%s)" w (to_string e)
  | Sext (w, e) -> Printf.sprintf "sext%d(%s)" w (to_string e)

let pp fmt e = Format.pp_print_string fmt (to_string e)
