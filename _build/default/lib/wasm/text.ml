(** Parser for the WAT text subset {!Wat} prints.

    Supported grammar (s-expressions; folded control flow, flat plain
    instructions):

    {v
    (module
      (import "env" "f" (func $f (param i64 i32) (result i32)))
      (import "env" "mem" (memory 1))
      (memory 2 16)
      (global $g (mut i64) (i64.const 7))
      (table 4 funcref)
      (elem (i32.const 0) $a $b 3)
      (data (i32.const 64) "bytes\00")
      (func $a (param i64) (result i64) (local i32 i32)
        local.get 0
        i64.const 1
        i64.add
        (block (result i64) ... )
        (if (result i64) (then ...) (else ...)))
      (export "apply" (func $a))
      (start $a))
    v}

    Function references may be [$names] or numeric indices; locals,
    globals and labels are numeric.  Load/store offsets are written
    [offset=N]. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* S-expression lexing and reading                                     *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | Str of string | List of sexp list

let lex (src : string) : string list =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
     | '(' when !i + 1 < n && src.[!i + 1] = ';' ->
         (* block comment: skip to ";)" *)
         flush ();
         i := !i + 2;
         while
           !i + 1 < n && not (src.[!i] = ';' && src.[!i + 1] = ')')
         do
           incr i
         done;
         incr i
     | '(' | ')' ->
         flush ();
         out := String.make 1 src.[!i] :: !out
     | ' ' | '\t' | '\n' | '\r' -> flush ()
     | ';' when !i + 1 < n && src.[!i + 1] = ';' ->
         (* line comment *)
         flush ();
         while !i < n && src.[!i] <> '\n' do incr i done
     | '"' ->
         flush ();
         let sbuf = Buffer.create 16 in
         incr i;
         let fin = ref false in
         while not !fin do
           if !i >= n then fail "unterminated string";
           (match src.[!i] with
            | '"' -> fin := true
            | '\\' ->
                if !i + 2 >= n then fail "bad escape";
                let h = String.sub src (!i + 1) 2 in
                (try Buffer.add_char sbuf (Char.chr (int_of_string ("0x" ^ h)))
                 with _ -> fail "bad escape \\%s" h);
                i := !i + 2
            | c -> Buffer.add_char sbuf c);
           incr i
         done;
         i := !i - 1;
         out := ("\"" ^ Buffer.contents sbuf) :: !out
     | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !out

let read_sexps (tokens : string list) : sexp list =
  (* [read] returns the nodes up to end-of-input ([None]) or up to a
     closing paren ([Some rest]). *)
  let rec read toks =
    match toks with
    | [] -> ([], None)
    | ")" :: rest -> ([], Some rest)
    | "(" :: rest -> (
        match read rest with
        | inner, Some rest ->
            let siblings, term = read rest in
            (List inner :: siblings, term)
        | _, None -> fail "missing closing parenthesis")
    | t :: rest ->
        let node =
          if String.length t > 0 && t.[0] = '"' then
            Str (String.sub t 1 (String.length t - 1))
          else Atom t
        in
        let siblings, term = read rest in
        (node :: siblings, term)
  in
  match read tokens with
  | sexps, None -> sexps
  | _, Some _ -> fail "unexpected closing parenthesis"

(* ------------------------------------------------------------------ *)
(* Types and immediates                                                *)
(* ------------------------------------------------------------------ *)

let value_type_of_string = function
  | "i32" -> Types.I32
  | "i64" -> Types.I64
  | "f32" -> Types.F32
  | "f64" -> Types.F64
  | s -> fail "unknown value type %s" s

let is_value_type s =
  match s with "i32" | "i64" | "f32" | "f64" -> true | _ -> false

(* "(param ...)", "(result ...)", "(local ...)" type lists *)
let types_of_fields key (fields : sexp list) : Types.value_type list =
  List.concat_map
    (fun f ->
      match f with
      | List (Atom k :: ts) when k = key ->
          List.map
            (function
              | Atom t when is_value_type t -> value_type_of_string t
              | Atom id when String.length id > 0 && id.[0] = '$' ->
                  fail "named %ss are not supported" key
              | _ -> fail "bad %s" key)
            ts
      | _ -> [])
    fields

let functype_of_fields fields : Types.func_type =
  { Types.params = types_of_fields "param" fields;
    results = types_of_fields "result" fields }

(* ------------------------------------------------------------------ *)
(* Instruction parsing                                                 *)
(* ------------------------------------------------------------------ *)

type fenv = {
  func_index : string -> int;  (** resolve $name or numeric *)
  type_index : Types.func_type -> int;
}

let int_atom = function
  | Atom a -> (
      try int_of_string a with _ -> fail "expected integer, got %s" a)
  | _ -> fail "expected integer"

let parse_offset = function
  | Atom a :: rest when String.length a > 7 && String.sub a 0 7 = "offset=" ->
      (int_of_string (String.sub a 7 (String.length a - 7)), rest)
  | rest -> (0, rest)

let mem_instr name rest : Ast.instr * sexp list =
  let offset, rest = parse_offset rest in
  let l ty pack = Ast.Load { Ast.l_ty = ty; l_pack = pack; l_align = 0; l_offset = Int32.of_int offset } in
  let s ty pack = Ast.Store { Ast.s_ty = ty; s_pack = pack; s_align = 0; s_offset = Int32.of_int offset } in
  let i =
    match name with
    | "i32.load" -> l Types.I32 None
    | "i64.load" -> l Types.I64 None
    | "f32.load" -> l Types.F32 None
    | "f64.load" -> l Types.F64 None
    | "i32.load8_s" -> l Types.I32 (Some (Ast.Pack8, Ast.SX))
    | "i32.load8_u" -> l Types.I32 (Some (Ast.Pack8, Ast.ZX))
    | "i32.load16_s" -> l Types.I32 (Some (Ast.Pack16, Ast.SX))
    | "i32.load16_u" -> l Types.I32 (Some (Ast.Pack16, Ast.ZX))
    | "i64.load8_s" -> l Types.I64 (Some (Ast.Pack8, Ast.SX))
    | "i64.load8_u" -> l Types.I64 (Some (Ast.Pack8, Ast.ZX))
    | "i64.load16_s" -> l Types.I64 (Some (Ast.Pack16, Ast.SX))
    | "i64.load16_u" -> l Types.I64 (Some (Ast.Pack16, Ast.ZX))
    | "i64.load32_s" -> l Types.I64 (Some (Ast.Pack32, Ast.SX))
    | "i64.load32_u" -> l Types.I64 (Some (Ast.Pack32, Ast.ZX))
    | "i32.store" -> s Types.I32 None
    | "i64.store" -> s Types.I64 None
    | "f32.store" -> s Types.F32 None
    | "f64.store" -> s Types.F64 None
    | "i32.store8" -> s Types.I32 (Some Ast.Pack8)
    | "i32.store16" -> s Types.I32 (Some Ast.Pack16)
    | "i64.store8" -> s Types.I64 (Some Ast.Pack8)
    | "i64.store16" -> s Types.I64 (Some Ast.Pack16)
    | "i64.store32" -> s Types.I64 (Some Ast.Pack32)
    | _ -> fail "unknown memory instruction %s" name
  in
  (i, rest)

(* Numeric/parametric instructions by mnemonic (no immediates). *)
let simple_instr (name : string) : Ast.instr option =
  let ty_of prefix =
    match prefix with
    | "i32" -> Some Types.I32
    | "i64" -> Some Types.I64
    | "f32" -> Some Types.F32
    | "f64" -> Some Types.F64
    | _ -> None
  in
  match String.index_opt name '.' with
  | None -> (
      match name with
      | "unreachable" -> Some Ast.Unreachable
      | "nop" -> Some Ast.Nop
      | "return" -> Some Ast.Return
      | "drop" -> Some Ast.Drop
      | "select" -> Some Ast.Select
      | _ -> None)
  | Some dot -> (
      let prefix = String.sub name 0 dot in
      let op = String.sub name (dot + 1) (String.length name - dot - 1) in
      match (ty_of prefix, prefix, op) with
      | _, "memory", "size" -> Some Ast.Memory_size
      | _, "memory", "grow" -> Some Ast.Memory_grow
      | Some ty, _, "eqz" -> Some (Ast.Eqz ty)
      | Some ty, _, _ when Types.is_int_type ty -> (
          let int_relop r = Some (Ast.Int_compare (ty, r)) in
          let int_binop b = Some (Ast.Int_binary (ty, b)) in
          let int_unop u = Some (Ast.Int_unary (ty, u)) in
          match op with
          | "eq" -> int_relop Ast.Eq
          | "ne" -> int_relop Ast.Ne
          | "lt_s" -> int_relop Ast.Lt_s
          | "lt_u" -> int_relop Ast.Lt_u
          | "gt_s" -> int_relop Ast.Gt_s
          | "gt_u" -> int_relop Ast.Gt_u
          | "le_s" -> int_relop Ast.Le_s
          | "le_u" -> int_relop Ast.Le_u
          | "ge_s" -> int_relop Ast.Ge_s
          | "ge_u" -> int_relop Ast.Ge_u
          | "add" -> int_binop Ast.Add
          | "sub" -> int_binop Ast.Sub
          | "mul" -> int_binop Ast.Mul
          | "div_s" -> int_binop Ast.Div_s
          | "div_u" -> int_binop Ast.Div_u
          | "rem_s" -> int_binop Ast.Rem_s
          | "rem_u" -> int_binop Ast.Rem_u
          | "and" -> int_binop Ast.And
          | "or" -> int_binop Ast.Or
          | "xor" -> int_binop Ast.Xor
          | "shl" -> int_binop Ast.Shl
          | "shr_s" -> int_binop Ast.Shr_s
          | "shr_u" -> int_binop Ast.Shr_u
          | "rotl" -> int_binop Ast.Rotl
          | "rotr" -> int_binop Ast.Rotr
          | "clz" -> int_unop Ast.Clz
          | "ctz" -> int_unop Ast.Ctz
          | "popcnt" -> int_unop Ast.Popcnt
          | "wrap_i64" -> Some (Ast.Convert Ast.I32_wrap_i64)
          | "extend_i32_s" -> Some (Ast.Convert Ast.I64_extend_i32_s)
          | "extend_i32_u" -> Some (Ast.Convert Ast.I64_extend_i32_u)
          | "trunc_f32_s" ->
              Some (Ast.Convert (if ty = Types.I32 then Ast.I32_trunc_f32_s else Ast.I64_trunc_f32_s))
          | "trunc_f32_u" ->
              Some (Ast.Convert (if ty = Types.I32 then Ast.I32_trunc_f32_u else Ast.I64_trunc_f32_u))
          | "trunc_f64_s" ->
              Some (Ast.Convert (if ty = Types.I32 then Ast.I32_trunc_f64_s else Ast.I64_trunc_f64_s))
          | "trunc_f64_u" ->
              Some (Ast.Convert (if ty = Types.I32 then Ast.I32_trunc_f64_u else Ast.I64_trunc_f64_u))
          | "reinterpret_f32" -> Some (Ast.Convert Ast.I32_reinterpret_f32)
          | "reinterpret_f64" -> Some (Ast.Convert Ast.I64_reinterpret_f64)
          | _ -> None)
      | Some ty, _, _ -> (
          let float_relop r = Some (Ast.Float_compare (ty, r)) in
          let float_binop b = Some (Ast.Float_binary (ty, b)) in
          let float_unop u = Some (Ast.Float_unary (ty, u)) in
          match op with
          | "eq" -> float_relop Ast.Feq
          | "ne" -> float_relop Ast.Fne
          | "lt" -> float_relop Ast.Flt
          | "gt" -> float_relop Ast.Fgt
          | "le" -> float_relop Ast.Fle
          | "ge" -> float_relop Ast.Fge
          | "add" -> float_binop Ast.Fadd
          | "sub" -> float_binop Ast.Fsub
          | "mul" -> float_binop Ast.Fmul
          | "div" -> float_binop Ast.Fdiv
          | "min" -> float_binop Ast.Fmin
          | "max" -> float_binop Ast.Fmax
          | "copysign" -> float_binop Ast.Fcopysign
          | "abs" -> float_unop Ast.Fabs
          | "neg" -> float_unop Ast.Fneg
          | "ceil" -> float_unop Ast.Fceil
          | "floor" -> float_unop Ast.Ffloor
          | "trunc" -> float_unop Ast.Ftrunc
          | "nearest" -> float_unop Ast.Fnearest
          | "sqrt" -> float_unop Ast.Fsqrt
          | "convert_i32_s" ->
              Some (Ast.Convert (if ty = Types.F32 then Ast.F32_convert_i32_s else Ast.F64_convert_i32_s))
          | "convert_i32_u" ->
              Some (Ast.Convert (if ty = Types.F32 then Ast.F32_convert_i32_u else Ast.F64_convert_i32_u))
          | "convert_i64_s" ->
              Some (Ast.Convert (if ty = Types.F32 then Ast.F32_convert_i64_s else Ast.F64_convert_i64_s))
          | "convert_i64_u" ->
              Some (Ast.Convert (if ty = Types.F32 then Ast.F32_convert_i64_u else Ast.F64_convert_i64_u))
          | "demote_f64" -> Some (Ast.Convert Ast.F32_demote_f64)
          | "promote_f32" -> Some (Ast.Convert Ast.F64_promote_f32)
          | "reinterpret_i32" -> Some (Ast.Convert Ast.F32_reinterpret_i32)
          | "reinterpret_i64" -> Some (Ast.Convert Ast.F64_reinterpret_i64)
          | _ -> None)
      | None, _, _ -> None)

let block_result fields : Ast.block_type * sexp list =
  match fields with
  | List [ Atom "result"; Atom t ] :: rest when is_value_type t ->
      (Some (value_type_of_string t), rest)
  | rest -> (None, rest)

let rec parse_instrs (env : fenv) (body : sexp list) : Ast.instr list =
  match body with
  | [] -> []
  | List (Atom "block" :: fields) :: rest ->
      let bt, inner = block_result fields in
      Ast.Block (bt, parse_instrs env inner) :: parse_instrs env rest
  | List (Atom "loop" :: fields) :: rest ->
      let bt, inner = block_result fields in
      Ast.Loop (bt, parse_instrs env inner) :: parse_instrs env rest
  | List (Atom "if" :: fields) :: rest ->
      let bt, arms = block_result fields in
      let then_, else_ =
        match arms with
        | [ List (Atom "then" :: t) ] -> (t, [])
        | [ List (Atom "then" :: t); List (Atom "else" :: e) ] -> (t, e)
        | _ -> fail "if: expected (then ...) (else ...)?"
      in
      Ast.If (bt, parse_instrs env then_, parse_instrs env else_)
      :: parse_instrs env rest
  | Atom name :: rest -> (
      match simple_instr name with
      | Some i -> i :: parse_instrs env rest
      | None -> (
          match name with
          | "i32.const" -> (
              match rest with
              | Atom v :: rest ->
                  Ast.Const (Values.I32 (Int32.of_string v)) :: parse_instrs env rest
              | _ -> fail "i32.const: missing immediate")
          | "i64.const" -> (
              match rest with
              | Atom v :: rest ->
                  Ast.Const (Values.I64 (Int64.of_string v)) :: parse_instrs env rest
              | _ -> fail "i64.const: missing immediate")
          | "f32.const" -> (
              match rest with
              | Atom v :: rest ->
                  Ast.Const (Values.F32 (Values.to_f32 (float_of_string v)))
                  :: parse_instrs env rest
              | _ -> fail "f32.const: missing immediate")
          | "f64.const" -> (
              match rest with
              | Atom v :: rest ->
                  Ast.Const (Values.F64 (float_of_string v)) :: parse_instrs env rest
              | _ -> fail "f64.const: missing immediate")
          | "local.get" | "local.set" | "local.tee" | "global.get"
          | "global.set" | "br" | "br_if" -> (
              match rest with
              | imm :: rest ->
                  let k = int_atom imm in
                  let i =
                    match name with
                    | "local.get" -> Ast.Local_get k
                    | "local.set" -> Ast.Local_set k
                    | "local.tee" -> Ast.Local_tee k
                    | "global.get" -> Ast.Global_get k
                    | "global.set" -> Ast.Global_set k
                    | "br" -> Ast.Br k
                    | _ -> Ast.Br_if k
                  in
                  i :: parse_instrs env rest
              | [] -> fail "%s: missing immediate" name)
          | "br_table" ->
              (* all leading integers; the last is the default *)
              let rec take acc = function
                | Atom a :: rest when int_of_string_opt a <> None ->
                    take (int_of_string a :: acc) rest
                | rest -> (List.rev acc, rest)
              in
              let ks, rest = take [] rest in
              (match List.rev ks with
               | d :: targets_rev ->
                   Ast.Br_table (List.rev targets_rev, d) :: parse_instrs env rest
               | [] -> fail "br_table: missing targets")
          | "call" -> (
              match rest with
              | Atom f :: rest ->
                  Ast.Call (env.func_index f) :: parse_instrs env rest
              | _ -> fail "call: missing target")
          | "call_indirect" -> (
              match rest with
              | List (Atom "type" :: fields) :: rest ->
                  (* (type (param ...) (result ...)) or (type N) *)
                  let ti =
                    match fields with
                    | [ Atom n ] when int_of_string_opt n <> None ->
                        int_of_string n
                    | _ -> env.type_index (functype_of_fields fields)
                  in
                  Ast.Call_indirect ti :: parse_instrs env rest
              | _ -> fail "call_indirect: expected (type ...)")
          | _ when String.contains name '.' ->
              let i, rest = mem_instr name rest in
              i :: parse_instrs env rest
          | _ -> fail "unknown instruction %s" name))
  | Str _ :: _ -> fail "unexpected string in body"
  | List (Atom k :: _) :: _ -> fail "unexpected (%s ...) in body" k
  | List _ :: _ -> fail "unexpected list in body"

(* ------------------------------------------------------------------ *)
(* Module parsing                                                      *)
(* ------------------------------------------------------------------ *)

let parse (src : string) : Ast.module_ =
  let sexps = read_sexps (lex src) in
  let fields =
    match sexps with
    | [ List (Atom "module" :: fields) ] -> fields
    | _ -> fail "expected a single (module ...)"
  in
  let b = Builder.create () in
  (* Pass 1: collect function names in declaration order (imports first,
     matching the index space). *)
  let names = Hashtbl.create 16 in
  let next_idx = ref 0 in
  let register name_opt =
    (match name_opt with
     | Some id -> Hashtbl.replace names id !next_idx
     | None -> ());
    incr next_idx
  in
  List.iter
    (fun f ->
      match f with
      | List [ Atom "import"; Str _; Str _; List (Atom "func" :: fields) ] -> (
          match fields with
          | Atom id :: _ when String.length id > 0 && id.[0] = '$' ->
              register (Some id)
          | _ -> register None)
      | _ -> ())
    fields;
  List.iter
    (fun f ->
      match f with
      | List (Atom "func" :: Atom id :: _) when String.length id > 0 && id.[0] = '$'
        ->
          register (Some id)
      | List (Atom "func" :: _) -> register None
      | _ -> ())
    fields;
  let func_index (s : string) =
    if String.length s > 0 && s.[0] = '$' then
      match Hashtbl.find_opt names s with
      | Some i -> i
      | None -> fail "unknown function %s" s
    else
      match int_of_string_opt s with
      | Some i -> i
      | None -> fail "bad function reference %s" s
  in
  let env = { func_index; type_index = (fun ft -> Builder.add_type b ft) } in
  (* Pass 2: imports first (builder requires it). *)
  List.iter
    (fun f ->
      match f with
      | List [ Atom "import"; Str m; Str n; List (Atom "func" :: fields) ] ->
          let fields =
            match fields with
            | Atom id :: rest when String.length id > 0 && id.[0] = '$' ->
                ignore id;
                rest
            | rest -> rest
          in
          ignore (Builder.import_func b ~module_:m ~name:n (functype_of_fields fields))
      | List [ Atom "import"; Str _; Str _; List (Atom "memory" :: _) ] ->
          fail "memory imports are not supported by the text parser"
      | _ -> ())
    fields;
  (* Pass 3: everything else, with function bodies deferred so forward
     calls resolve. *)
  let deferred_bodies = ref [] in
  List.iter
    (fun f ->
      match f with
      | List (Atom "import" :: _) -> ()
      | List (Atom "memory" :: dims) -> (
          match dims with
          | [ Atom mn ] -> Builder.add_memory b (int_of_string mn)
          | [ Atom mn; Atom mx ] ->
              Builder.add_memory b ~max:(int_of_string mx) (int_of_string mn)
          | _ -> fail "bad (memory ...)")
      | List (Atom "global" :: spec) -> (
          let spec = match spec with
            | Atom id :: rest when String.length id > 0 && id.[0] = '$' -> rest
            | rest -> rest
          in
          match spec with
          | [ _ty; List [ Atom cname; Atom v ] ] -> (
              let value =
                match cname with
                | "i32.const" -> Values.I32 (Int32.of_string v)
                | "i64.const" -> Values.I64 (Int64.of_string v)
                | "f32.const" -> Values.F32 (Values.to_f32 (float_of_string v))
                | "f64.const" -> Values.F64 (float_of_string v)
                | _ -> fail "bad global initialiser"
              in
              let mut =
                match spec with
                | List [ Atom "mut"; _ ] :: _ -> Types.Mutable
                | _ -> Types.Immutable
              in
              ignore (Builder.add_global b ~mut value))
          | _ -> fail "bad (global ...)")
      | List (Atom "table" :: _) -> ()  (* sized implicitly by (elem) *)
      | List (Atom "elem" :: List [ Atom "i32.const"; Atom off ] :: funcs) ->
          Builder.add_elem b ~offset:(int_of_string off)
            (List.map
               (function
                 | Atom fref -> func_index fref
                 | _ -> fail "bad elem entry")
               funcs)
      | List [ Atom "data"; List [ Atom "i32.const"; Atom off ]; Str s ] ->
          Builder.add_data b ~offset:(int_of_string off) s
      | List [ Atom "export"; Str nm; List [ Atom "func"; Atom fref ] ] ->
          Builder.export_func b nm (func_index fref)
      | List [ Atom "export"; Str nm; List [ Atom "memory"; Atom _ ] ] ->
          Builder.export_memory b nm
      | List [ Atom "start"; Atom fref ] -> Builder.set_start b (func_index fref)
      | List (Atom "func" :: fields) ->
          let name, fields =
            match fields with
            | Atom id :: rest when String.length id > 0 && id.[0] = '$' ->
                (Some (String.sub id 1 (String.length id - 1)), rest)
            | rest -> (None, rest)
          in
          let ft = functype_of_fields fields in
          let locals = types_of_fields "local" fields in
          let body =
            List.filter
              (fun fld ->
                match fld with
                | List (Atom ("param" | "result" | "local") :: _) -> false
                | _ -> true)
              fields
          in
          let idx = Builder.declare_func b ?name ft in
          deferred_bodies := (idx, locals, body) :: !deferred_bodies
      | List (Atom k :: _) -> fail "unknown module field (%s ...)" k
      | _ -> fail "unexpected module field")
    fields;
  List.iter
    (fun (idx, locals, body) ->
      Builder.set_body b idx ~locals (parse_instrs env body))
    (List.rev !deferred_bodies);
  let m = Builder.build b in
  Validate.check_module m;
  m
