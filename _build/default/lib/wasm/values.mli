(** Runtime values and exact numeric semantics of the Wasm MVP:
    two's-complement wrap-around integers with trapping division, and
    single-precision canonicalisation for [f32]. *)

exception Trap of string
(** Wasm trap (also raised by memory bounds violations etc.). *)

val trap : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Trap} with a formatted message. *)

type value =
  | I32 of int32
  | I64 of int64
  | F32 of float  (** always canonicalised to single precision *)
  | F64 of float

val type_of : value -> Types.value_type

val to_f32 : float -> float
(** Round a double to the nearest single-precision value. *)

val default_value : Types.value_type -> value
(** The zero value used to initialise locals. *)

val string_of_value : value -> string
val pp : Format.formatter -> value -> unit

val as_i32 : value -> int32
(** Typed accessors; trap on mismatch. *)

val as_i64 : value -> int64
val as_f32 : value -> float
val as_f64 : value -> float
val bool_value : bool -> value

val raw_bits : value -> int64
(** 64-bit view of the value's raw bits (floats reinterpreted). *)

(** 32-bit integer primitives with Wasm semantics. *)
module I32x : sig
  val clz : int32 -> int32
  val ctz : int32 -> int32
  val popcnt : int32 -> int32
  val div_s : int32 -> int32 -> int32
  val div_u : int32 -> int32 -> int32
  val rem_s : int32 -> int32 -> int32
  val rem_u : int32 -> int32 -> int32
  val shl : int32 -> int32 -> int32
  val shr_s : int32 -> int32 -> int32
  val shr_u : int32 -> int32 -> int32
  val rotl : int32 -> int32 -> int32
  val rotr : int32 -> int32 -> int32
  val lt_u : int32 -> int32 -> bool
  val gt_u : int32 -> int32 -> bool
  val le_u : int32 -> int32 -> bool
  val ge_u : int32 -> int32 -> bool
end

(** 64-bit integer primitives with Wasm semantics. *)
module I64x : sig
  val clz : int64 -> int64
  val ctz : int64 -> int64
  val popcnt : int64 -> int64
  val div_s : int64 -> int64 -> int64
  val div_u : int64 -> int64 -> int64
  val rem_s : int64 -> int64 -> int64
  val rem_u : int64 -> int64 -> int64
  val shl : int64 -> int64 -> int64
  val shr_s : int64 -> int64 -> int64
  val shr_u : int64 -> int64 -> int64
  val rotl : int64 -> int64 -> int64
  val rotr : int64 -> int64 -> int64
  val lt_u : int64 -> int64 -> bool
  val gt_u : int64 -> int64 -> bool
  val le_u : int64 -> int64 -> bool
  val ge_u : int64 -> int64 -> bool
end

(** Float primitives with Wasm rounding/NaN rules. *)
module Fx : sig
  val nearest : float -> float
  (** Round-to-nearest, ties to even. *)

  val min : float -> float -> float
  val max : float -> float -> float
  val copysign : float -> float -> float
end

(** Conversions between number types; trunc operations trap on NaN and
    overflow, as the specification requires. *)
module Convert : sig
  val wrap_i64 : int64 -> int32
  val extend_s_i32 : int32 -> int64
  val extend_u_i32 : int32 -> int64
  val trunc_f_to_i32_s : float -> int32
  val trunc_f_to_i32_u : float -> int32
  val trunc_f_to_i64_s : float -> int64
  val trunc_f_to_i64_u : float -> int64
  val convert_i32_s : int32 -> float
  val convert_i32_u : int32 -> float
  val convert_i64_s : int64 -> float
  val convert_i64_u : int64 -> float
end
