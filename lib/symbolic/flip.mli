(** Constraint flipping and adaptive-seed generation (§3.4.4).

    For every flippable conditional on the executed path, build
    [path-prefix (as taken) ∧ ¬condition] plus payload-sanity and
    one-parameter-mutation pins, solve, and concretise each model into a
    fresh argument vector. *)

module Expr = Wasai_smt.Expr

type candidate = {
  cand_index : int;  (** index of the flipped conditional in the path *)
  cand_site : int;
  cand_flipped_dir : bool option;
      (** direction the flip targets (branch conditionals) *)
  cand_constraints : Expr.t list;
}

val layout_var_ids : Convention.layout -> (int, unit) Hashtbl.t

val candidates : Replay.result -> candidate list
(** Flip candidates, deepest conditional first; asserts and input-free
    conditions are excluded. *)

type solved_seed = {
  seed_args : Wasai_eosio.Abi.value list;
  seed_flipped_site : int;
}

val pin_constraints :
  Convention.layout ->
  current:Wasai_eosio.Abi.value list ->
  free:(int, unit) Hashtbl.t ->
  Expr.t list
(** Equality pins for every input variable not in [free] — the paper's
    "mutate one parameter" discipline. *)

val payload_sanity : Convention.layout -> max_amount:int64 -> Expr.t list
(** Every asset amount must be positive and payable. *)

val solve :
  ?session:Wasai_smt.Solver.Session.t ->
  ?conflict_budget:int ->
  ?max_solved:int ->
  ?side:Expr.t list ->
  ?skip:(candidate -> bool) ->
  Replay.result ->
  current:Wasai_eosio.Abi.value list ->
  solved_seed list
(** [?session] routes every solve through the per-run solver session
    (budget, counters, verdict cache).  Without a session, a standalone
    conflict budget of 20_000 applies unless overridden. *)
