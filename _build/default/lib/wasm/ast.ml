(** Abstract syntax of Wasm MVP modules.

    Instructions are kept structured (nested [Block]/[Loop]/[If]) as in the
    reference interpreter; the binary encoder and decoder translate between
    this tree and the flat bytecode of the binary format. *)

type int_unop = Clz | Ctz | Popcnt

type int_binop =
  | Add | Sub | Mul
  | Div_s | Div_u | Rem_s | Rem_u
  | And | Or | Xor
  | Shl | Shr_s | Shr_u | Rotl | Rotr

type int_relop = Eq | Ne | Lt_s | Lt_u | Gt_s | Gt_u | Le_s | Le_u | Ge_s | Ge_u

type float_unop = Fabs | Fneg | Fceil | Ffloor | Ftrunc | Fnearest | Fsqrt

type float_binop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Fcopysign

type float_relop = Feq | Fne | Flt | Fgt | Fle | Fge

type cvtop =
  | I32_wrap_i64
  | I64_extend_i32_s | I64_extend_i32_u
  | I32_trunc_f32_s | I32_trunc_f32_u | I32_trunc_f64_s | I32_trunc_f64_u
  | I64_trunc_f32_s | I64_trunc_f32_u | I64_trunc_f64_s | I64_trunc_f64_u
  | F32_convert_i32_s | F32_convert_i32_u | F32_convert_i64_s | F32_convert_i64_u
  | F64_convert_i32_s | F64_convert_i32_u | F64_convert_i64_s | F64_convert_i64_u
  | F32_demote_f64 | F64_promote_f32
  | I32_reinterpret_f32 | I64_reinterpret_f64
  | F32_reinterpret_i32 | F64_reinterpret_i64

type pack_size = Pack8 | Pack16 | Pack32

type extension = SX | ZX

type loadop = {
  l_ty : Types.num_type;
  l_pack : (pack_size * extension) option;
  l_align : int;
  l_offset : int32;
}

type storeop = {
  s_ty : Types.num_type;
  s_pack : pack_size option;
  s_align : int;
  s_offset : int32;
}

(** MVP block types: at most one result. *)
type block_type = Types.value_type option

type instr =
  | Unreachable
  | Nop
  | Block of block_type * instr list
  | Loop of block_type * instr list
  | If of block_type * instr list * instr list
  | Br of int
  | Br_if of int
  | Br_table of int list * int
  | Return
  | Call of int
  | Call_indirect of int  (** type index *)
  | Drop
  | Select
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  | Load of loadop
  | Store of storeop
  | Memory_size
  | Memory_grow
  | Const of Values.value
  | Eqz of Types.num_type
  | Int_compare of Types.num_type * int_relop
  | Float_compare of Types.num_type * float_relop
  | Int_unary of Types.num_type * int_unop
  | Int_binary of Types.num_type * int_binop
  | Float_unary of Types.num_type * float_unop
  | Float_binary of Types.num_type * float_binop
  | Convert of cvtop

type func = {
  ftype : int;  (** index into the module's type section *)
  locals : Types.value_type list;
  body : instr list;
  fname : string option;  (** debug name, carried through instrumentation *)
}

type global = {
  gtype : Types.global_type;
  ginit : instr list;
}

type export_desc =
  | Func_export of int
  | Table_export of int
  | Memory_export of int
  | Global_export of int

type export = { ename : string; edesc : export_desc }

type import_desc =
  | Func_import of int  (** type index *)
  | Table_import of Types.table_type
  | Memory_import of Types.memory_type
  | Global_import of Types.global_type

type import = {
  imp_module : string;
  imp_name : string;
  idesc : import_desc;
}

type data_segment = {
  d_offset : instr list;  (** constant expression *)
  d_init : string;
}

type elem_segment = {
  e_offset : instr list;  (** constant expression *)
  e_init : int list;  (** function indices *)
}

type module_ = {
  types : Types.func_type array;
  imports : import list;
  funcs : func array;  (** module-local functions; index space offset by imports *)
  tables : Types.table_type list;
  memories : Types.memory_type list;
  globals : global array;
  exports : export list;
  start : int option;
  elems : elem_segment list;
  datas : data_segment list;
}

let empty_module = {
  types = [||];
  imports = [];
  funcs = [||];
  tables = [];
  memories = [];
  globals = [||];
  exports = [];
  start = None;
  elems = [];
  datas = [];
}

(** Number of imported functions (they precede module-local functions in the
    function index space). *)
let num_func_imports (m : module_) =
  List.length
    (List.filter (fun i -> match i.idesc with Func_import _ -> true | _ -> false)
       m.imports)

let func_imports (m : module_) =
  List.filter (fun i -> match i.idesc with Func_import _ -> true | _ -> false)
    m.imports

(** Type of the function at absolute index [idx] in the function index space. *)
let func_type_at (m : module_) idx : Types.func_type =
  let n_imp = num_func_imports m in
  if idx < n_imp then
    match (List.nth (func_imports m) idx).idesc with
    | Func_import ti -> m.types.(ti)
    | _ -> assert false
  else m.types.(m.funcs.(idx - n_imp).ftype)

(** Debug name of the function at absolute index [idx], if any. *)
let func_name_at (m : module_) idx : string option =
  let n_imp = num_func_imports m in
  if idx < n_imp then
    let i = List.nth (func_imports m) idx in
    Some (i.imp_module ^ "." ^ i.imp_name)
  else m.funcs.(idx - n_imp).fname

let exported_func (m : module_) name : int option =
  List.find_map
    (fun e ->
      match e.edesc with
      | Func_export i when e.ename = name -> Some i
      | _ -> None)
    m.exports

(* ------------------------------------------------------------------ *)
(* Instruction metadata used by the tracer and the symbolic replayer. *)
(* ------------------------------------------------------------------ *)

let string_of_int_unop = function Clz -> "clz" | Ctz -> "ctz" | Popcnt -> "popcnt"

let string_of_int_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Div_s -> "div_s" | Div_u -> "div_u" | Rem_s -> "rem_s" | Rem_u -> "rem_u"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr_s -> "shr_s" | Shr_u -> "shr_u"
  | Rotl -> "rotl" | Rotr -> "rotr"

let string_of_int_relop = function
  | Eq -> "eq" | Ne -> "ne"
  | Lt_s -> "lt_s" | Lt_u -> "lt_u" | Gt_s -> "gt_s" | Gt_u -> "gt_u"
  | Le_s -> "le_s" | Le_u -> "le_u" | Ge_s -> "ge_s" | Ge_u -> "ge_u"

let string_of_float_unop = function
  | Fabs -> "abs" | Fneg -> "neg" | Fceil -> "ceil" | Ffloor -> "floor"
  | Ftrunc -> "trunc" | Fnearest -> "nearest" | Fsqrt -> "sqrt"

let string_of_float_binop = function
  | Fadd -> "add" | Fsub -> "sub" | Fmul -> "mul" | Fdiv -> "div"
  | Fmin -> "min" | Fmax -> "max" | Fcopysign -> "copysign"

let string_of_float_relop = function
  | Feq -> "eq" | Fne -> "ne" | Flt -> "lt" | Fgt -> "gt" | Fle -> "le" | Fge -> "ge"

let string_of_cvtop = function
  | I32_wrap_i64 -> "i32.wrap_i64"
  | I64_extend_i32_s -> "i64.extend_i32_s"
  | I64_extend_i32_u -> "i64.extend_i32_u"
  | I32_trunc_f32_s -> "i32.trunc_f32_s"
  | I32_trunc_f32_u -> "i32.trunc_f32_u"
  | I32_trunc_f64_s -> "i32.trunc_f64_s"
  | I32_trunc_f64_u -> "i32.trunc_f64_u"
  | I64_trunc_f32_s -> "i64.trunc_f32_s"
  | I64_trunc_f32_u -> "i64.trunc_f32_u"
  | I64_trunc_f64_s -> "i64.trunc_f64_s"
  | I64_trunc_f64_u -> "i64.trunc_f64_u"
  | F32_convert_i32_s -> "f32.convert_i32_s"
  | F32_convert_i32_u -> "f32.convert_i32_u"
  | F32_convert_i64_s -> "f32.convert_i64_s"
  | F32_convert_i64_u -> "f32.convert_i64_u"
  | F64_convert_i32_s -> "f64.convert_i32_s"
  | F64_convert_i32_u -> "f64.convert_i32_u"
  | F64_convert_i64_s -> "f64.convert_i64_s"
  | F64_convert_i64_u -> "f64.convert_i64_u"
  | F32_demote_f64 -> "f32.demote_f64"
  | F64_promote_f32 -> "f64.promote_f32"
  | I32_reinterpret_f32 -> "i32.reinterpret_f32"
  | I64_reinterpret_f64 -> "i64.reinterpret_f64"
  | F32_reinterpret_i32 -> "f32.reinterpret_i32"
  | F64_reinterpret_i64 -> "f64.reinterpret_i64"

let string_of_loadop (l : loadop) =
  let base = Types.string_of_num_type l.l_ty ^ ".load" in
  match l.l_pack with
  | None -> base
  | Some (sz, ext) ->
      let bits = match sz with Pack8 -> "8" | Pack16 -> "16" | Pack32 -> "32" in
      let sgn = match ext with SX -> "_s" | ZX -> "_u" in
      base ^ bits ^ sgn

let string_of_storeop (s : storeop) =
  let base = Types.string_of_num_type s.s_ty ^ ".store" in
  match s.s_pack with
  | None -> base
  | Some Pack8 -> base ^ "8"
  | Some Pack16 -> base ^ "16"
  | Some Pack32 -> base ^ "32"

(** Human-readable mnemonic of an instruction, without immediates. *)
let mnemonic : instr -> string = function
  | Unreachable -> "unreachable"
  | Nop -> "nop"
  | Block _ -> "block"
  | Loop _ -> "loop"
  | If _ -> "if"
  | Br _ -> "br"
  | Br_if _ -> "br_if"
  | Br_table _ -> "br_table"
  | Return -> "return"
  | Call _ -> "call"
  | Call_indirect _ -> "call_indirect"
  | Drop -> "drop"
  | Select -> "select"
  | Local_get _ -> "local.get"
  | Local_set _ -> "local.set"
  | Local_tee _ -> "local.tee"
  | Global_get _ -> "global.get"
  | Global_set _ -> "global.set"
  | Load l -> string_of_loadop l
  | Store s -> string_of_storeop s
  | Memory_size -> "memory.size"
  | Memory_grow -> "memory.grow"
  | Const v -> Types.string_of_num_type (Values.type_of v) ^ ".const"
  | Eqz t -> Types.string_of_num_type t ^ ".eqz"
  | Int_compare (t, op) ->
      Types.string_of_num_type t ^ "." ^ string_of_int_relop op
  | Float_compare (t, op) ->
      Types.string_of_num_type t ^ "." ^ string_of_float_relop op
  | Int_unary (t, op) -> Types.string_of_num_type t ^ "." ^ string_of_int_unop op
  | Int_binary (t, op) ->
      Types.string_of_num_type t ^ "." ^ string_of_int_binop op
  | Float_unary (t, op) ->
      Types.string_of_num_type t ^ "." ^ string_of_float_unop op
  | Float_binary (t, op) ->
      Types.string_of_num_type t ^ "." ^ string_of_float_binop op
  | Convert op -> string_of_cvtop op

(** Number of stack operands the instruction consumes.  The tracer uses
    this to know how many values to duplicate before the instruction. *)
let operand_arity : instr -> int = function
  | Unreachable | Nop | Block _ | Loop _ | Br _ | Return | Memory_size
  | Const _ | Local_get _ | Global_get _ | Call _ ->
      0
  | If _ | Br_if _ | Br_table _ | Drop | Local_set _ | Local_tee _
  | Global_set _ | Memory_grow | Eqz _ | Int_unary _ | Float_unary _
  | Convert _ | Load _ | Call_indirect _ ->
      1
  | Int_compare _ | Float_compare _ | Int_binary _ | Float_binary _ | Store _ ->
      2
  | Select -> 3

(** Fold over every instruction in a body, including nested blocks. *)
let rec iter_instrs f (body : instr list) =
  List.iter
    (fun i ->
      f i;
      match i with
      | Block (_, b) | Loop (_, b) -> iter_instrs f b
      | If (_, t, e) ->
          iter_instrs f t;
          iter_instrs f e
      | _ -> ())
    body

(** Total number of instructions in a body, counting nested blocks. *)
let body_size body =
  let n = ref 0 in
  iter_instrs (fun _ -> incr n) body;
  !n
