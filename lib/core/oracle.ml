(** The streaming oracle layer: vulnerability detectors as registered
    instances instead of hardcoded scanner arms.

    An oracle {e definition} names a vulnerability class (flag) and
    knows how to instantiate a per-session {e instance} against one
    contract's environment (instrumentation metadata, resolved chain
    profile, the adversary account names).  An instance streams over
    every executed payload's trace with a {!Trace.Cursor} and reports
    whether the exploit event occurred in that payload; the scanner
    harness makes the fire sticky and keeps the first firing payload as
    exploit evidence.

    Detectors match host calls through a {!Wasai_eosio.Chain_profile}
    resolved once per contract, so a non-EOSIO host-function table is a
    new profile record, not a fork of this layer. *)

module Wasm = Wasai_wasm
module Trace = Wasai_wasabi.Trace
module Cursor = Trace.Cursor
open Wasai_eosio

(* ------------------------------------------------------------------ *)
(* Channels                                                            *)
(* ------------------------------------------------------------------ *)

(** How the payload reached the contract (the §2.3 adversary oracles). *)
type channel =
  | Ch_genuine  (** real EOS via eosio.token *)
  | Ch_direct  (** eosponser invoked directly with a forged action *)
  | Ch_fake_token  (** EOS issued by an attacker token contract *)
  | Ch_fake_notif  (** notification forwarded by an agent contract *)
  | Ch_action of Name.t  (** ordinary action push *)

let string_of_channel = function
  | Ch_genuine -> "genuine"
  | Ch_direct -> "direct"
  | Ch_fake_token -> "fake-token"
  | Ch_fake_notif -> "fake-notif"
  | Ch_action a -> "action:" ^ Name.to_string a

let channel_of_string = function
  | "genuine" -> Some Ch_genuine
  | "direct" -> Some Ch_direct
  | "fake-token" -> Some Ch_fake_token
  | "fake-notif" -> Some Ch_fake_notif
  | s when String.length s > 7 && String.sub s 0 7 = "action:" -> (
      match Name.of_string (String.sub s 7 (String.length s - 7)) with
      | n -> Some (Ch_action n)
      | exception Invalid_argument _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Flags                                                               *)
(* ------------------------------------------------------------------ *)

(** Vulnerability classes.  The first five are the paper's §3.5 set;
    the rest grow the class set from related work (WACANA state I/O,
    EVulHunter dispatcher confusion, He et al. asset overflow). *)
type flag =
  | Fake_eos
  | Fake_notif
  | Miss_auth
  | Blockinfo_dep
  | Rollback
  | State_io
  | Fake_transfer
  | Asset_overflow

(* The split matters to the journal: legacy flags are always written
   (fixed order), extension flags only when fired — which keeps legacy
   contracts' journal lines byte-identical to pre-extension builds. *)
let legacy_flags = [ Fake_eos; Fake_notif; Miss_auth; Blockinfo_dep; Rollback ]
let extension_flags = [ State_io; Fake_transfer; Asset_overflow ]
let all_flags = legacy_flags @ extension_flags

let string_of_flag = function
  | Fake_eos -> "FakeEOS"
  | Fake_notif -> "FakeNotif"
  | Miss_auth -> "MissAuth"
  | Blockinfo_dep -> "BlockinfoDep"
  | Rollback -> "Rollback"
  | State_io -> "StateIo"
  | Fake_transfer -> "FakeTransfer"
  | Asset_overflow -> "AssetOverflow"

let flag_of_string s = List.find_opt (fun f -> string_of_flag f = s) all_flags

(* ------------------------------------------------------------------ *)
(* Environment and instances                                           *)
(* ------------------------------------------------------------------ *)

(** A chain profile's name groups resolved to function-import indices
    of one instrumented contract (absent imports drop out). *)
type host_ids = {
  hi_auth : int list;
  hi_state_writes : int list;
  hi_inline_send : int list;
  hi_blockinfo : int list;
  hi_effects : int list;  (** [hi_inline_send @ hi_state_writes] *)
}

(** Everything an oracle instance may close over, resolved once per
    fuzzing session. *)
type env = {
  en_meta : Trace.meta;
  en_profile : Chain_profile.t;
  en_ids : host_ids;
  en_victim : Name.t;
  en_fake_notif_agent : Name.t;
  en_fake_token : Name.t;
}

(** Per-payload facts the harness computes once and shares with every
    instance (the eosponser identification of §3.5 is stateful and
    lives in the scanner). *)
type ctx = { cx_channel : channel; cx_eosponser_ran : bool }

(** A live detector for one fuzzing session.  [oi_step] is called on
    {e every} executed payload — even after the detector fired — so
    detectors with exculpatory state (Fake_notif's guard detection)
    keep accumulating; it returns [true] when the exploit event
    occurred in this payload.  [oi_verdict] turns the sticky fire into
    the session verdict (identity for most detectors). *)
type instance = {
  oi_name : string;
  oi_flag : flag;
  oi_step : ctx -> Cursor.t -> bool;
  oi_verdict : fired:bool -> bool;
}

(** A registered oracle: a named constructor of instances. *)
type def = { od_name : string; od_flag : flag; od_make : env -> instance }

let resolve_ids (meta : Trace.meta) (p : Chain_profile.t) : host_ids =
  let ids names = List.filter_map (Trace.find_env_import meta) names in
  {
    hi_auth = ids p.Chain_profile.cp_auth;
    hi_state_writes = ids p.Chain_profile.cp_state_writes;
    hi_inline_send = ids p.Chain_profile.cp_inline_send;
    hi_blockinfo = ids p.Chain_profile.cp_blockinfo;
    hi_effects = ids (Chain_profile.effects p);
  }

let make_env ?(profile = Chain_profile.eosio) ~(meta : Trace.meta)
    ~(victim : Name.t) ~(fake_notif_agent : Name.t) ~(fake_token : Name.t) () :
    env =
  {
    en_meta = meta;
    en_profile = profile;
    en_ids = resolve_ids meta profile;
    en_victim = victim;
    en_fake_notif_agent = fake_notif_agent;
    en_fake_token = fake_token;
  }

(* ------------------------------------------------------------------ *)
(* Cursor-level matching helpers                                       *)
(* ------------------------------------------------------------------ *)

(* Import function called by the event under the cursor, if it is a
   call_pre into the import section. *)
let called_import (meta : Trace.meta) (c : Cursor.t) : int option =
  match Cursor.kind c with
  | Trace.Buffer.K_call_pre -> (
      match (Trace.site_of meta (Cursor.label c)).Trace.site_instr with
      | Wasm.Ast.Call fi
        when fi < Wasm.Ast.num_func_imports meta.Trace.instrumented ->
          Some fi
      | _ -> None)
  | _ -> None

(** Stream the cursor to the end, answering whether any call_pre event
    targets one of [ids]. *)
let calls_any (meta : Trace.meta) (c : Cursor.t) (ids : int list) : bool =
  let rec go () =
    (not (Cursor.at_end c))
    && ((match called_import meta c with
         | Some fi -> List.mem fi ids
         | None -> false)
       ||
       (Cursor.advance c;
        go ()))
  in
  ids <> [] && go ()

(* Does any instruction event compare exactly the i64 pair {x, y}?
   Besides i64.eq/ne this matches the xor/sub forms that
   comparison-encoding obfuscation rewrites to — the Listing-2 guard
   matcher, generalised to any pair. *)
let i64_pair_compared (meta : Trace.meta) (c : Cursor.t) (x : int64) (y : int64)
    : bool =
  let rec go () =
    (not (Cursor.at_end c))
    && ((Cursor.kind c = Trace.Buffer.K_instr
         && Cursor.op_count c = 2
         && Cursor.op_is_i64 c 0 && Cursor.op_is_i64 c 1
         && (match (Trace.site_of meta (Cursor.label c)).Trace.site_instr with
             | Wasm.Ast.Int_compare (Wasm.Types.I64, (Wasm.Ast.Eq | Wasm.Ast.Ne))
             | Wasm.Ast.Int_binary (Wasm.Types.I64, (Wasm.Ast.Xor | Wasm.Ast.Sub))
               ->
                 let a = Cursor.op_bits c 0 and b = Cursor.op_bits c 1 in
                 (Int64.equal a x && Int64.equal b y)
                 || (Int64.equal a y && Int64.equal b x)
             | _ -> false))
       ||
       (Cursor.advance c;
        go ()))
  in
  go ()

(* Signed 64-bit multiplication overflow on the recorded operands. *)
let i64_mul_overflows (a : int64) (b : int64) : bool =
  if Int64.equal a 0L || Int64.equal b 0L then false
  else if Int64.equal a Int64.min_int then not (Int64.equal b 1L)
  else if Int64.equal b Int64.min_int then not (Int64.equal a 1L)
  else not (Int64.equal (Int64.div (Int64.mul a b) b) a)

(* ------------------------------------------------------------------ *)
(* The builtin detectors                                               *)
(* ------------------------------------------------------------------ *)

let stateless name flag step =
  {
    od_name = name;
    od_flag = flag;
    od_make =
      (fun env ->
        {
          oi_name = name;
          oi_flag = flag;
          oi_step = step env;
          oi_verdict = (fun ~fired -> fired);
        });
  }

(* FakeEOS (§3.5): the action function identified on the genuine channel
   also ran for a forged direct invocation or a counterfeit token's
   notification. *)
let fake_eos_def =
  stateless "fake-eos" Fake_eos (fun _env ctx _cur ->
      match ctx.cx_channel with
      | Ch_direct | Ch_fake_token -> ctx.cx_eosponser_ran
      | _ -> false)

(* FakeNotif (§3.5): the action function ran for a forwarded
   notification, and no payload ever evaluated the Listing-2
   [to == _self] guard (observing the guard anywhere exculpates). *)
let fake_notif_def =
  {
    od_name = "fake-notif";
    od_flag = Fake_notif;
    od_make =
      (fun env ->
        let guard_seen = ref false in
        {
          oi_name = "fake-notif";
          oi_flag = Fake_notif;
          oi_step =
            (fun ctx cur ->
              if
                i64_pair_compared env.en_meta cur env.en_fake_notif_agent
                  env.en_victim
              then guard_seen := true;
              match ctx.cx_channel with
              | Ch_fake_notif -> ctx.cx_eosponser_ran
              | _ -> false);
          oi_verdict = (fun ~fired -> fired && not !guard_seen);
        });
  }

(* MissAuth (§3.5): an effect API invoked with no permission API
   anywhere before it in the execution chain. *)
let miss_auth_def =
  stateless "miss-auth" Miss_auth (fun env _ctx cur ->
      let auth = env.en_ids.hi_auth and effects = env.en_ids.hi_effects in
      let seen_auth = ref false in
      let hit = ref false in
      while not (Cursor.at_end cur) do
        (match called_import env.en_meta cur with
         | Some fi ->
             if List.mem fi auth then seen_auth := true
             else if (not !seen_auth) && List.mem fi effects then hit := true
         | None -> ());
        Cursor.advance cur
      done;
      !hit)

(* BlockinfoDep (§3.5): the payout path reads adversary-biasable block
   information. *)
let blockinfo_def =
  stateless "blockinfo-dep" Blockinfo_dep (fun env _ctx cur ->
      calls_any env.en_meta cur env.en_ids.hi_blockinfo)

(* Rollback (§3.5): an inline action carries the payout, so a reverting
   caller can roll the bet back. *)
let rollback_def =
  stateless "rollback" Rollback (fun env _ctx cur ->
      calls_any env.en_meta cur env.en_ids.hi_inline_send)

(* StateIo (WACANA's on-chain data vulnerabilities): persistent state
   written while handling a forged payload — the contract trusted
   attacker-controlled input enough to commit it.  Genuine transfers and
   ordinary actions are allowed to write. *)
let state_io_def =
  stateless "state-io" State_io (fun env ctx cur ->
      match ctx.cx_channel with
      | Ch_direct | Ch_fake_token | Ch_fake_notif ->
          calls_any env.en_meta cur env.en_ids.hi_state_writes
      | Ch_genuine | Ch_action _ -> false)

(* FakeTransfer (EVulHunter's dispatcher-confusion variants): the
   dispatcher *did* compare the acting code against the real token
   contract, yet the action function still ran for the forged payload —
   the comparison exists but is wired wrong (e.g. OR-ed with a
   same-contract escape hatch).  Distinguished from FakeEOS, where the
   guard comparison is missing outright. *)
let fake_transfer_def =
  stateless "fake-transfer" Fake_transfer (fun env ctx cur ->
      let code =
        match ctx.cx_channel with
        | Ch_direct -> Some env.en_victim
        | Ch_fake_token -> Some env.en_fake_token
        | _ -> None
      in
      match code with
      | Some code ->
          ctx.cx_eosponser_ran
          && i64_pair_compared env.en_meta cur code Name.eosio_token
      | None -> false)

(* AssetOverflow (He et al.'s asset-arithmetic overflows): a 64-bit
   multiplication whose recorded operands overflow signed range —
   asset amounts silently wrap, so payouts can be inflated or balance
   checks bypassed.  Any channel: a genuine bet can trigger it too. *)
let asset_overflow_def =
  stateless "asset-overflow" Asset_overflow (fun env _ctx cur ->
      let meta = env.en_meta in
      let rec go () =
        (not (Cursor.at_end cur))
        && ((Cursor.kind cur = Trace.Buffer.K_instr
             && Cursor.op_count cur = 2
             && Cursor.op_is_i64 cur 0 && Cursor.op_is_i64 cur 1
             && (match (Trace.site_of meta (Cursor.label cur)).Trace.site_instr with
                 | Wasm.Ast.Int_binary (Wasm.Types.I64, Wasm.Ast.Mul) ->
                     i64_mul_overflows (Cursor.op_bits cur 0)
                       (Cursor.op_bits cur 1)
                 | _ -> false))
           ||
           (Cursor.advance cur;
            go ()))
      in
      go ())

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let builtins : def list =
  [
    fake_eos_def;
    fake_notif_def;
    miss_auth_def;
    blockinfo_def;
    rollback_def;
    state_io_def;
    fake_transfer_def;
    asset_overflow_def;
  ]

(* Extra registrations append after the builtins.  Registration is an
   initialisation-time act: register before spawning campaign domains
   (reads are plain list traversals and safe anywhere). *)
let extra : def list ref = ref []

let register (d : def) =
  if
    List.exists
      (fun d' -> d'.od_name = d.od_name)
      (builtins @ List.rev !extra)
  then invalid_arg (Printf.sprintf "Oracle.register: duplicate oracle %S" d.od_name)
  else extra := d :: !extra

let registered () : def list = builtins @ List.rev !extra

let instantiate ?profile ~(meta : Trace.meta) ~(victim : Name.t)
    ~(fake_notif_agent : Name.t) ~(fake_token : Name.t) () : instance list =
  let env = make_env ?profile ~meta ~victim ~fake_notif_agent ~fake_token () in
  List.map (fun d -> d.od_make env) (registered ())
