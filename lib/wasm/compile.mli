(** Closure-compiled execution tier.

    Translates a validated module once into threaded OCaml closures —
    preallocated local frames, an operand-stack array reused across
    payloads, fuel folded into straight-line-segment entry checks, and
    optional direct unboxed callbacks for selected host imports
    ([fast_host]).  Observationally identical to {!Interp}: same results,
    same trap/exhaustion messages at the same instruction, same host-call
    order, same fuel on every embedder-visible path.  Functions the
    compiler does not cover (or that [exclude] vetoes) transparently fall
    back to the interpreter, together with everything they call. *)

(** Direct unboxed callback for a one-parameter, no-result host import —
    the shape of the instrumentation hooks.  Calls to a matching import
    compile to a plain OCaml call, bypassing the resolver's boxed
    argument lists.  The callback must behave exactly like the host
    function the instance's resolver binds for the same import,
    unconditionally: supply one only when any conditional behaviour of
    the resolver-bound hook (e.g. a receiver guard) is statically known
    to take the same branch for every call through this instance. *)
type fast_host =
  | Fast_i32 of (int32 -> unit)
  | Fast_i64 of (int64 -> unit)
  | Fast_f32 of (float -> unit)
  | Fast_f64 of (float -> unit)

type prepared
(** A module compiled to closures, plus the operand stack reused across
    payloads.  One [prepared] is confined to one domain at a time. *)

val prepare :
  ?fast_host:(string -> string -> fast_host option) ->
  ?exclude:(Ast.instr -> bool) ->
  Ast.module_ ->
  prepared
(** Compile a validated module.  [fast_host mod_name item] may supply a
    direct callback for an import (ignored unless the import's type
    matches the callback's shape).  [exclude] forces any function
    containing a matching instruction onto the interpreter fallback —
    the per-opcode safety valve, also used by the parity tests to
    exercise fallback boundaries. *)

val module_of : prepared -> Ast.module_

val function_counts : prepared -> int * int
(** (compiled, fallback) function counts. *)

type session
(** One instantiation of a prepared module: the analogue of
    {!Interp.instance} for the compiled tier. *)

val instantiate :
  ?fuel:int -> ?max_depth:int -> prepared -> Interp.resolver -> session
(** Allocate an instance through {!Interp.alloc_instance} (identical
    import resolution, memory/global/table/segment setup and trap
    behaviour) and run the start function, if any, through the compiled
    code.  Defaults match {!Interp.instantiate}. *)

val instance : session -> Interp.instance
(** The underlying instance: memory, globals, fuel and depth accounting
    are shared with any interpreter-executed fallback functions. *)

val invoke : session -> int -> Values.value list -> Values.value list
(** Invoke the function at an absolute index. *)

val invoke_export : session -> string -> Values.value list -> Values.value list
(** Invoke an exported function by name; traps if absent, with the same
    message as {!Interp.invoke_export}. *)

type pool
(** An instance pool over one {!prepared} module.  Instantiating a fresh
    instance per action is allocator churn (a new linear memory per
    payload); the pool keeps one live session and returns it to the
    exact post-allocation state before each reuse — imports rebound,
    globals re-evaluated, memory restored from the pre-start image, fuel
    and depth reset, start function re-run.  Observationally identical
    to a fresh {!instantiate} per acquisition. *)

val pool : prepared -> pool

val with_session :
  pool -> ?fuel:int -> ?max_depth:int -> Interp.resolver -> (session -> 'a) -> 'a
(** Run [f] with a session for this pool's module, linked against
    [resolver].  Reuses the pooled instance when possible; falls back to
    a fresh {!instantiate} when the module imports its memory, when the
    pool is already in use (re-entrant nested actions), or when
    [max_depth] differs from the pooled instance's.  Exceptions from [f]
    (and from linking or the start function) propagate unchanged. *)
