(** The database dependency graph (§3.3.2).

    Nodes are action functions; each carries the set of tables it reads
    and writes, learned from the [db_*] accesses observed while the action
    executed.  The seed selector consults the graph: when an action's last
    run read a table and aborted, an action known to write that table is
    scheduled first.

    Tracking is deliberately table-granular — the paper's §5 names this
    coarseness as a real limitation (row identity is not tracked), and the
    multi-table benchmark contracts exploit it. *)

open Wasai_eosio

module NameSet = Set.Make (Int64)

type node = {
  mutable reads : NameSet.t;
  mutable writes : NameSet.t;
  mutable last_read_miss : Name.t option;
      (** table whose read most recently came back empty *)
}

type t = { nodes : (Name.t, node) Hashtbl.t }

let create () = { nodes = Hashtbl.create 8 }

let node_of g action =
  match Hashtbl.find_opt g.nodes action with
  | Some n -> n
  | None ->
      let n = { reads = NameSet.empty; writes = NameSet.empty; last_read_miss = None } in
      Hashtbl.replace g.nodes action n;
      n

let record_access g ~(action : Name.t) (acc : Database.access) =
  let n = node_of g action in
  match acc.Database.acc_kind with
  | Database.Read -> n.reads <- NameSet.add acc.Database.acc_table n.reads
  | Database.Write -> n.writes <- NameSet.add acc.Database.acc_table n.writes

let record_read_miss g ~(action : Name.t) (table : Name.t) =
  (node_of g action).last_read_miss <- Some table

let clear_read_miss g ~(action : Name.t) =
  (node_of g action).last_read_miss <- None

(** Actions known to write [table]. *)
let writers g (table : Name.t) : Name.t list =
  Hashtbl.fold
    (fun action n acc -> if NameSet.mem table n.writes then action :: acc else acc)
    g.nodes []

(** If [action]'s last run missed a table read, an action that writes that
    table (the transaction-dependency resolution step). *)
let dependency_for g (action : Name.t) : Name.t option =
  match (node_of g action).last_read_miss with
  | None -> None
  | Some table -> (
      match List.filter (fun a -> not (Name.equal a action)) (writers g table) with
      | w :: _ -> Some w
      | [] -> None)

let tables_read g action = NameSet.elements (node_of g action).reads
let tables_written g action = NameSet.elements (node_of g action).writes
