lib/wasm/validate.mli: Ast Types
