/* Monotonic nanosecond clock for the telemetry hot path.
 *
 * The native entry returns an untagged intnat so the OCaml side
 * ([external ... [@untagged] [@@noalloc]]) neither boxes nor enters the
 * runtime: one call, one clock_gettime, zero allocation.  63 bits of
 * nanoseconds since boot overflow after ~146 years, so the truncation
 * in the bytecode fallback is theoretical. */

#include <caml/mlvalues.h>
#include <time.h>

static int64_t wasai_now_ns(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

intnat wasai_now_ns_native(value unit)
{
  (void)unit;
  return (intnat)wasai_now_ns();
}

CAMLprim value wasai_now_ns_byte(value unit)
{
  (void)unit;
  return Val_long(wasai_now_ns());
}
