(** The Wasm bytecode obfuscator of RQ3 (§4.3): two semantics-preserving
    transforms applied at the bytecode level.

    - data flow: [x == y] becomes [popcnt(x ^ y) == 0], hiding direct
      comparisons behind counting circuits;
    - control flow: an opaque recursive function (whose self-call guard
      can never hold) is inserted and invoked at the head of every
      original function, adding a call-graph cycle. *)

val popcount_encode :
  Wasai_wasm.Types.num_type ->
  Wasai_wasm.Ast.int_relop ->
  Wasai_wasm.Ast.instr list option
(** The encoded replacement for an eq/ne comparison, if encodable. *)

val obfuscate : Wasai_wasm.Ast.module_ -> Wasai_wasm.Ast.module_
(** Apply both transforms; the result is validated. *)

val count_encodable : Wasai_wasm.Ast.module_ -> int
(** Number of i64/i32 eq/ne sites the data-flow transform targets. *)
