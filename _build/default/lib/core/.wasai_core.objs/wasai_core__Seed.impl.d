lib/core/seed.ml: Abi Asset Hashtbl Int64 List Name Printf Queue String Wasai_eosio Wasai_support
