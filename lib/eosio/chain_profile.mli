(** Chain profiles: named host-function tables parameterising the
    detection oracles.  A new Wasm chain is a new profile record, not a
    fork of the oracle layer (WANA's cross-platform framing). *)

type t = {
  cp_name : string;  (** profile identifier, e.g. ["eosio"] *)
  cp_auth : string list;  (** permission APIs *)
  cp_state_writes : string list;  (** persistent state mutation APIs *)
  cp_inline_send : string list;  (** inline/deferred action dispatch *)
  cp_blockinfo : string list;  (** adversary-biasable block information *)
}

val effects : t -> string list
(** Visible-effect APIs ([cp_inline_send @ cp_state_writes]) — the set
    MissAuth treats as protected. *)

val eosio : t
(** The paper's EOSIO host API; resolving it reproduces the historical
    hardcoded scanner tables exactly. *)

val ewasm : t
(** eWASM-style demonstration profile (keeps the oracle layer honest
    about chain-parametricity; no generator targets it yet). *)

val all : t list
val find : string -> t option
val names : unit -> string list
