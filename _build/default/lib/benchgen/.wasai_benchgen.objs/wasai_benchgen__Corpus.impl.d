lib/benchgen/corpus.ml: Abi Contracts Int64 List Name Obfuscate Verification Wasai_eosio Wasai_support Wasai_wasm
