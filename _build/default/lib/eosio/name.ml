(** EOSIO account/action names: up to 12 characters from
    [.12345abcdefghijklmnopqrstuvwxyz], base-32 packed into a [uint64]
    exactly as Nodeos does (5 bits per character, first 12 characters;
    a 13th character would use the remaining 4 bits and is not needed by
    any contract we model). *)

type t = int64

let char_to_symbol c =
  match c with
  | '.' -> 0
  | '1' .. '5' -> Char.code c - Char.code '1' + 1
  | 'a' .. 'z' -> Char.code c - Char.code 'a' + 6
  | _ -> invalid_arg (Printf.sprintf "Name.of_string: invalid character %c" c)

let symbol_to_char s =
  if s = 0 then '.'
  else if s <= 5 then Char.chr (Char.code '1' + s - 1)
  else Char.chr (Char.code 'a' + s - 6)

(** Encode a string name; accepts 0-12 chars from the EOSIO alphabet. *)
let of_string (s : string) : t =
  if String.length s > 12 then
    invalid_arg (Printf.sprintf "Name.of_string: %S longer than 12 chars" s);
  let v = ref 0L in
  for i = 0 to 11 do
    let sym = if i < String.length s then char_to_symbol s.[i] else 0 in
    (* Character i occupies bits [64-5*(i+1), 64-5*i). *)
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (sym land 0x1f)) (64 - 5 * (i + 1)))
  done;
  !v

let to_string (v : t) : string =
  let buf = Buffer.create 12 in
  for i = 0 to 11 do
    let sym =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (64 - 5 * (i + 1))) 0x1fL)
    in
    Buffer.add_char buf (symbol_to_char sym)
  done;
  (* Trim trailing dots, which are padding. *)
  let s = Buffer.contents buf in
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = '.' do decr n done;
  String.sub s 0 !n

let equal (a : t) (b : t) = Int64.equal a b
let compare = Int64.compare
let pp fmt v = Format.pp_print_string fmt (to_string v)

(* Well-known names used throughout the system. *)
let eosio_token = of_string "eosio.token"
let eosio = of_string "eosio"
let transfer = of_string "transfer"
let active = of_string "active"
