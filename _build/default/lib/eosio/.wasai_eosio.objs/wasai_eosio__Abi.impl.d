lib/eosio/abi.ml: Asset Buffer Char Int32 Int64 List Name Printf String
