(** Actions and transactions.

    The binary layout used by [send_inline]/[send_deferred] buffers is
    [account:u64][name:u64][datalen:u32][data]; the authorisation of an
    inline action is the sending contract. *)

type t = {
  act_account : Name.t;  (** contract the action targets *)
  act_name : Name.t;  (** action function *)
  act_data : string;  (** serialised arguments *)
  act_auth : Name.t list;  (** authorising actors (active permission) *)
}

type transaction = { tx_actions : t list }

val make : account:Name.t -> name:Name.t -> data:string -> auth:Name.t list -> t

val of_args :
  account:Name.t -> name:Name.t -> args:Abi.value list -> auth:Name.t list -> t
(** Build an action from ABI-typed arguments. *)

val to_string : t -> string
val serialize_for_inline : t -> string
val deserialize_inline : auth:Name.t list -> string -> t
