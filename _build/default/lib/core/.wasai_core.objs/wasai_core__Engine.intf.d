lib/core/engine.mli: Abi Action Chain Dbg Hashtbl Name Scanner Seed Wasai_eosio Wasai_support Wasai_wasabi Wasai_wasm
