(** Reimplementation of the EOSFuzzer baseline (Huang et al. 2020) with
    the behaviours §4.2–4.3 documents: purely random seeds with no
    feedback, success-based oracles (FNs behind asserts, FPs on
    honeypot-style logging), the Fake EOS flag-all flaw, and no
    MissAuth/Rollback detectors. *)

module Core = Wasai_core

type outcome = {
  ef_flags : (Core.Scanner.flag * bool option) list;
      (** [None] = detector not supported *)
  ef_branches : int;
  ef_timeline : (int * float * int) list;
  ef_transactions : int;
}

val flagged : outcome -> Core.Scanner.flag -> bool option

val fuzz : ?rounds:int -> ?rng_seed:int64 -> Core.Engine.target -> outcome
