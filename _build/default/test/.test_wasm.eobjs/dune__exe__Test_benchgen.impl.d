test/test_benchgen.ml: Abi Action Alcotest Array Asset Chain Host Int64 List Name Option Printf QCheck QCheck_alcotest Token Wasai_baselines Wasai_benchgen Wasai_eosio Wasai_support Wasai_wasm
