(** Contract-level bytecode instrumentation (the paper's §3.3.1, built on
    the Wasabi idea).

    Every instruction is prefixed with low-level hooks: a site announcement
    ([wasai.site]) followed by calls that duplicate the instruction's stack
    operands through scratch locals ([wasai.op_*]).  Function invocations
    additionally get the five lifecycle hooks of the paper's Table 1
    (call/call_pre/function_begin/function_end/call_post).  The hooks are
    ordinary Wasm [call]s to imported functions, so the instrumented
    contract remains a genuine, encodable module that any host with the
    [wasai] import namespace can run.

    Adding imports shifts the function index space; all call sites, element
    segments, exports and the start function are remapped accordingly. *)

module Wasm = Wasai_wasm
module Ast = Wasm.Ast
module Types = Wasm.Types
module Values = Wasm.Values

(* Hook signatures, in import order. *)
let hook_decls =
  [
    ("site", Types.func_type [ Types.I32 ]);
    ("op_i32", Types.func_type [ Types.I32 ]);
    ("op_i64", Types.func_type [ Types.I64 ]);
    ("op_f32", Types.func_type [ Types.F32 ]);
    ("op_f64", Types.func_type [ Types.F64 ]);
    ("call_pre", Types.func_type [ Types.I32 ]);
    ("call_post", Types.func_type [ Types.I32 ]);
    ("func_begin", Types.func_type [ Types.I32 ]);
    ("func_end", Types.func_type [ Types.I32 ]);
  ]

let hook_count = List.length hook_decls

type hooks = {
  h_site : int;
  h_op_i32 : int;
  h_op_i64 : int;
  h_op_f32 : int;
  h_op_f64 : int;
  h_call_pre : int;
  h_call_post : int;
  h_func_begin : int;
  h_func_end : int;
}

let op_hook hooks : Types.value_type -> int = function
  | Types.I32 -> hooks.h_op_i32
  | Types.I64 -> hooks.h_op_i64
  | Types.F32 -> hooks.h_op_f32
  | Types.F64 -> hooks.h_op_f64

(* Per-function scratch-local allocator. *)
type scratch = {
  base : int;  (** first scratch index = n_params + n_original_locals *)
  mutable extra : Types.value_type list;  (** allocated scratch, reversed *)
  mutable slots : (Types.value_type * int) list;  (** (type, ordinal) -> index *)
}

let scratch_local (s : scratch) ty ordinal : int =
  let rec find i = function
    | [] -> None
    | (ty', ord') :: rest ->
        if ty' = ty && ord' = ordinal then Some i else find (i + 1) rest
  in
  match find 0 s.slots with
  | Some i -> s.base + i
  | None ->
      s.extra <- ty :: s.extra;
      s.slots <- s.slots @ [ (ty, ordinal) ];
      s.base + List.length s.slots - 1

(** Operand value types an instruction pops, bottom-to-top; [None] when the
    types cannot be determined locally (drop, select data operands) — those
    operands are not duplicated. *)
let operand_types ~(local_ty : int -> Types.value_type)
    ~(global_ty : int -> Types.value_type) (i : Ast.instr) :
    Types.value_type list option =
  match i with
  | Ast.Const _ | Ast.Local_get _ | Ast.Global_get _ | Ast.Memory_size
  | Ast.Nop | Ast.Unreachable | Ast.Block _ | Ast.Loop _ | Ast.Br _ ->
      Some []
  | Ast.If _ | Ast.Br_if _ | Ast.Br_table _ | Ast.Memory_grow ->
      Some [ Types.I32 ]
  | Ast.Load _ -> Some [ Types.I32 ]
  | Ast.Store op -> Some [ Types.I32; op.s_ty ]
  | Ast.Local_set n | Ast.Local_tee n -> Some [ local_ty n ]
  | Ast.Global_set n -> Some [ global_ty n ]
  | Ast.Eqz ty | Ast.Int_unary (ty, _) | Ast.Float_unary (ty, _) ->
      Some [ ty ]
  | Ast.Int_binary (ty, _) | Ast.Int_compare (ty, _) -> Some [ ty; ty ]
  | Ast.Float_binary (ty, _) | Ast.Float_compare (ty, _) -> Some [ ty; ty ]
  | Ast.Convert op ->
      let src, _ = Wasm.Validate.cvtop_types op in
      Some [ src ]
  | Ast.Drop | Ast.Select -> None
  | Ast.Return | Ast.Call _ | Ast.Call_indirect _ -> None (* special-cased *)

type state = {
  m : Ast.module_;
  n_imp : int;  (** original function-import count *)
  hooks : hooks;
  mutable sites : Trace.site list;  (** reversed *)
  mutable next_site : int;
}

let remap_func st fi = if fi < st.n_imp then fi else fi + hook_count

let remap_instr st (i : Ast.instr) : Ast.instr =
  match i with Ast.Call fi -> Ast.Call (remap_func st fi) | _ -> i

let new_site st func (instr : Ast.instr) : int =
  let id = st.next_site in
  st.next_site <- id + 1;
  st.sites <-
    { Trace.site_id = id; site_func = func; site_instr = remap_instr st instr }
    :: st.sites;
  id

let const_site id = Ast.Const (Values.I32 (Int32.of_int id))

(** Spill the top [tys] operands to scratch locals, announce the hooks in
    [announce], log the operands, then restore the stack. *)
let dup_and_log (s : scratch) hooks (tys : Types.value_type list)
    ~(announce : Ast.instr list) : Ast.instr list =
  let slots = List.mapi (fun i ty -> (i, ty, scratch_local s ty i)) tys in
  let spill =
    List.rev_map (fun (_, _, idx) -> Ast.Local_set idx) slots
  in
  let log =
    List.concat_map
      (fun (_, ty, idx) -> [ Ast.Local_get idx; Ast.Call (op_hook hooks ty) ])
      slots
  in
  let restore = List.map (fun (_, _, idx) -> Ast.Local_get idx) slots in
  spill @ announce @ log @ restore

(* Function type of the callee at absolute (original) index. *)
let callee_type (st : state) fi : Types.func_type = Ast.func_type_at st.m fi

let rec instrument_body (st : state) (s : scratch) ~func_new_idx
    ~(local_ty : int -> Types.value_type)
    ~(global_ty : int -> Types.value_type) ~depth (body : Ast.instr list) :
    Ast.instr list =
  let recurse = instrument_body st s ~func_new_idx ~local_ty ~global_ty in
  List.concat_map
    (fun (i : Ast.instr) ->
      let site = new_site st func_new_idx i in
      let announce = [ const_site site; Ast.Call st.hooks.h_site ] in
      match i with
      | Ast.Block (bt, b) ->
          announce @ [ Ast.Block (bt, recurse ~depth:(depth + 1) b) ]
      | Ast.Loop (bt, b) ->
          announce @ [ Ast.Loop (bt, recurse ~depth:(depth + 1) b) ]
      | Ast.If (bt, t, e) ->
          dup_and_log s st.hooks [ Types.I32 ] ~announce
          @ [
              Ast.If
                (bt, recurse ~depth:(depth + 1) t, recurse ~depth:(depth + 1) e);
            ]
      | Ast.Return ->
          (* function_end fires before leaving; return becomes a branch to
             the wrapper block so the epilogue hook cannot be skipped. *)
          announce
          @ [
              const_site func_new_idx;
              Ast.Call st.hooks.h_func_end;
              Ast.Br depth;
            ]
      | Ast.Call fi ->
          let cft = callee_type st fi in
          let arg_slots =
            List.mapi (fun k ty -> (k, ty, scratch_local s ty k)) cft.params
          in
          let spill = List.rev_map (fun (_, _, idx) -> Ast.Local_set idx) arg_slots in
          let log_args =
            List.concat_map
              (fun (_, ty, idx) ->
                [ Ast.Local_get idx; Ast.Call (op_hook st.hooks ty) ])
              arg_slots
          in
          let restore = List.map (fun (_, _, idx) -> Ast.Local_get idx) arg_slots in
          let post =
            match cft.results with
            | [] -> [ const_site site; Ast.Call st.hooks.h_call_post ]
            | [ rty ] ->
                let r = scratch_local s rty 9 in
                [
                  Ast.Local_set r;
                  const_site site;
                  Ast.Call st.hooks.h_call_post;
                  Ast.Local_get r;
                  Ast.Call (op_hook st.hooks rty);
                  Ast.Local_get r;
                ]
            | _ -> [ const_site site; Ast.Call st.hooks.h_call_post ]
          in
          spill @ announce
          @ [ const_site site; Ast.Call st.hooks.h_call_pre ]
          @ log_args @ restore
          @ [ Ast.Call (remap_func st fi) ]
          @ post
      | Ast.Call_indirect ti ->
          let cft = st.m.Ast.types.(ti) in
          (* Stack: [args..., table index].  Spill the index, then args. *)
          let idx_slot = scratch_local s Types.I32 8 in
          let arg_slots =
            List.mapi (fun k ty -> (k, ty, scratch_local s ty k)) cft.params
          in
          let spill =
            (Ast.Local_set idx_slot
             :: List.rev_map (fun (_, _, idx) -> Ast.Local_set idx) arg_slots)
          in
          let log_idx =
            [ Ast.Local_get idx_slot; Ast.Call st.hooks.h_op_i32 ]
          in
          let log_args =
            List.concat_map
              (fun (_, ty, idx) ->
                [ Ast.Local_get idx; Ast.Call (op_hook st.hooks ty) ])
              arg_slots
          in
          let restore =
            List.map (fun (_, _, idx) -> Ast.Local_get idx) arg_slots
            @ [ Ast.Local_get idx_slot ]
          in
          let post =
            match cft.results with
            | [] -> [ const_site site; Ast.Call st.hooks.h_call_post ]
            | [ rty ] ->
                let r = scratch_local s rty 9 in
                [
                  Ast.Local_set r;
                  const_site site;
                  Ast.Call st.hooks.h_call_post;
                  Ast.Local_get r;
                  Ast.Call (op_hook st.hooks rty);
                  Ast.Local_get r;
                ]
            | _ -> [ const_site site; Ast.Call st.hooks.h_call_post ]
          in
          spill @ announce @ log_idx
          @ [ const_site site; Ast.Call st.hooks.h_call_pre ]
          @ log_args @ restore
          @ [ Ast.Call_indirect ti ]
          @ post
      | Ast.Select ->
          (* Only the condition can be typed locally; duplicate just it. *)
          let c = scratch_local s Types.I32 7 in
          [ Ast.Local_set c ] @ announce
          @ [ Ast.Local_get c; Ast.Call st.hooks.h_op_i32; Ast.Local_get c;
              Ast.Select ]
      | _ -> (
          match operand_types ~local_ty ~global_ty i with
          | Some tys ->
              dup_and_log s st.hooks tys ~announce @ [ remap_instr st i ]
          | None -> announce @ [ remap_instr st i ]))
    body

let instrument_func (st : state) (old_abs_idx : int) (f : Ast.func) : Ast.func =
  let fty = st.m.Ast.types.(f.ftype) in
  let all_locals = Array.of_list (fty.params @ f.locals) in
  let local_ty n = all_locals.(n) in
  let module_globals =
    Array.map (fun (g : Ast.global) -> g.Ast.gtype.gt_type) st.m.Ast.globals
  in
  let global_ty n = module_globals.(n) in
  let new_idx = remap_func st old_abs_idx in
  let s =
    { base = Array.length all_locals; extra = []; slots = [] }
  in
  let body =
    instrument_body st s ~func_new_idx:new_idx ~local_ty ~global_ty ~depth:0
      f.body
  in
  let result_bt : Ast.block_type =
    match fty.results with [] -> None | r :: _ -> Some r
  in
  let wrapped =
    [ const_site new_idx; Ast.Call st.hooks.h_func_begin;
      Ast.Block (result_bt, body);
      const_site new_idx; Ast.Call st.hooks.h_func_end ]
  in
  { f with Ast.locals = f.locals @ List.rev s.extra; body = wrapped }

(** Instrument a module: returns the rewritten module plus the static site
    metadata the trace assembler and the symbolic replayer consume. *)
let instrument (m : Ast.module_) : Ast.module_ * Trace.meta =
  let n_imp = Ast.num_func_imports m in
  (* Intern hook types into the type section. *)
  let types = ref (Array.to_list m.Ast.types) in
  let type_index ft =
    let rec find i = function
      | [] -> None
      | t :: rest -> if Types.equal_func_type t ft then Some i else find (i + 1) rest
    in
    match find 0 !types with
    | Some i -> i
    | None ->
        types := !types @ [ ft ];
        List.length !types - 1
  in
  let hook_imports =
    List.map
      (fun (name, ft) ->
        {
          Ast.imp_module = "wasai";
          imp_name = name;
          idesc = Ast.Func_import (type_index ft);
        })
      hook_decls
  in
  let hooks =
    {
      h_site = n_imp + 0;
      h_op_i32 = n_imp + 1;
      h_op_i64 = n_imp + 2;
      h_op_f32 = n_imp + 3;
      h_op_f64 = n_imp + 4;
      h_call_pre = n_imp + 5;
      h_call_post = n_imp + 6;
      h_func_begin = n_imp + 7;
      h_func_end = n_imp + 8;
    }
  in
  let st = { m; n_imp; hooks; sites = []; next_site = 0 } in
  let funcs =
    Array.mapi (fun i f -> instrument_func st (n_imp + i) f) m.Ast.funcs
  in
  (* Non-function imports keep their positions; hook imports go after all
     original imports so original function-import indices are stable. *)
  let imports = m.Ast.imports @ hook_imports in
  let exports =
    List.map
      (fun (e : Ast.export) ->
        match e.edesc with
        | Ast.Func_export i -> { e with Ast.edesc = Ast.Func_export (remap_func st i) }
        | _ -> e)
      m.Ast.exports
  in
  let elems =
    List.map
      (fun (e : Ast.elem_segment) ->
        { e with Ast.e_init = List.map (remap_func st) e.e_init })
      m.Ast.elems
  in
  let start = Option.map (remap_func st) m.Ast.start in
  let m' =
    {
      m with
      Ast.types = Array.of_list !types;
      imports;
      funcs;
      exports;
      elems;
      start;
    }
  in
  let meta =
    {
      Trace.sites = Array.of_list (List.rev st.sites);
      instrumented = m';
      original = m;
      hook_base = n_imp;
      hook_count;
      orig_import_count = n_imp;
    }
  in
  (m', meta)

(** Instrument a binary: decode, rewrite, re-encode.  This is the
    pipeline entry the fuzzer uses — it proves instrumentation operates on
    real bytecode. *)
let instrument_binary (bin : string) : string * Trace.meta =
  let m = Wasm.Decode.decode bin in
  let m', meta = instrument m in
  (Wasm.Encode.encode m', meta)

(* ------------------------------------------------------------------ *)
(* Runtime: resolve the wasai namespace to a collector                  *)
(* ------------------------------------------------------------------ *)

module Interp = Wasm.Interp

(** Chain extension binding the hook imports to a trace collector.
    [target] restricts collection to one contract account — the fuzzing
    target — so auxiliary contracts stay silent even if instrumented. *)
let runtime_extension (collector : Trace.t) ~(target : Wasai_eosio.Name.t) :
    Wasai_eosio.Chain.extension =
 fun ctx mod_name item ->
  if mod_name <> "wasai" then None
  else
    let if_target f args =
      if Wasai_eosio.Name.equal ctx.Wasai_eosio.Chain.ctx_receiver target then
        f args;
      []
    in
    let arg0_i32 args = Int32.to_int (Values.as_i32 (List.hd args)) in
    let mk name params fn =
      Some
        (Interp.Extern_func
           { Interp.hf_name = name; hf_type = Types.func_type params; hf_fn = fn })
    in
    match item with
    | "site" ->
        mk "site" [ Types.I32 ] (fun _ args ->
            if_target (fun a -> Trace.begin_instr collector (arg0_i32 a)) args)
    | "op_i32" ->
        mk "op_i32" [ Types.I32 ] (fun _ args ->
            if_target (fun a -> Trace.operand collector (List.hd a)) args)
    | "op_i64" ->
        mk "op_i64" [ Types.I64 ] (fun _ args ->
            if_target (fun a -> Trace.operand collector (List.hd a)) args)
    | "op_f32" ->
        mk "op_f32" [ Types.F32 ] (fun _ args ->
            if_target (fun a -> Trace.operand collector (List.hd a)) args)
    | "op_f64" ->
        mk "op_f64" [ Types.F64 ] (fun _ args ->
            if_target (fun a -> Trace.operand collector (List.hd a)) args)
    | "call_pre" ->
        mk "call_pre" [ Types.I32 ] (fun _ args ->
            if_target (fun a -> Trace.begin_call_pre collector (arg0_i32 a)) args)
    | "call_post" ->
        mk "call_post" [ Types.I32 ] (fun _ args ->
            if_target (fun a -> Trace.begin_call_post collector (arg0_i32 a)) args)
    | "func_begin" ->
        mk "func_begin" [ Types.I32 ] (fun _ args ->
            if_target (fun a -> Trace.func_begin collector (arg0_i32 a)) args)
    | "func_end" ->
        mk "func_end" [ Types.I32 ] (fun _ args ->
            if_target (fun a -> Trace.func_end collector (arg0_i32 a)) args)
    | _ -> None
