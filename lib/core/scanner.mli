(** The vulnerability scanner: the harness driving the registered
    {!Oracle} instances over every executed payload, accumulated across
    the whole fuzzing session.  The channel/flag vocabulary is
    re-exported from {!Oracle} so existing callers keep compiling. *)

module Trace = Wasai_wasabi.Trace
open Wasai_eosio

(** How a payload reached the contract (the §2.3 adversary oracles). *)
type channel = Oracle.channel =
  | Ch_genuine  (** real EOS via eosio.token *)
  | Ch_direct  (** eosponser invoked directly with a forged action *)
  | Ch_fake_token  (** EOS issued by an attacker token contract *)
  | Ch_fake_notif  (** notification forwarded by an agent contract *)
  | Ch_action of Name.t  (** ordinary action push *)

val string_of_channel : channel -> string

val channel_of_string : string -> channel option
(** Strict inverse of {!string_of_channel} ([None] on anything else). *)

type flag = Oracle.flag =
  | Fake_eos
  | Fake_notif
  | Miss_auth
  | Blockinfo_dep
  | Rollback
  | State_io
  | Fake_transfer
  | Asset_overflow

val legacy_flags : flag list
(** The §3.5 five, in the historical journal order. *)

val extension_flags : flag list
(** The related-work classes, journaled only when fired. *)

val all_flags : flag list
val string_of_flag : flag -> string

val flag_of_string : string -> flag option
(** Strict inverse of {!string_of_flag}. *)

(** A user-supplied detector (the §5 extension interface): analyse each
    executed payload's trace buffer and return [true] when the exploit
    event occurred.  Once fired, it stays fired. *)
type custom_oracle = {
  co_name : string;
  co_detect : channel -> Wasai_wasabi.Trace.Buffer.t -> bool;
}

type t = {
  meta : Trace.meta;
  victim : Name.t;
  fake_notif_agent : Name.t;
  action_candidates : int list;  (** possible eosponser ids *)
  mutable eosponser_id : int option;  (** id_e, learned from a genuine trace *)
  oracles : (Oracle.instance * bool ref) list;
      (** registered detectors with their sticky fire bits *)
  mutable custom : (custom_oracle * bool ref) list;
  mutable evidence : (flag * evidence) list;
      (** first exploit payload observed per fired flag *)
}

(** The exploit payload behind a verdict: what to submit, and how. *)
and evidence = {
  ev_channel : channel;
  ev_payload : Wasai_eosio.Action.t;
}

val create :
  ?profile:Chain_profile.t ->
  ?fake_token_account:Name.t ->
  meta:Trace.meta ->
  victim:Name.t ->
  fake_notif_agent:Name.t ->
  unit ->
  t
(** Instantiate every registered oracle against this contract.
    [profile] defaults to {!Chain_profile.eosio}; [fake_token_account]
    to the engine's counterfeit token account. *)

val executed_ids : Trace.Buffer.t -> int list
(** Function ids that began execution, in order (the id⃗ chain). *)

val observe :
  ?payload:Wasai_eosio.Action.t ->
  ?executed:int list ->
  t ->
  channel:channel ->
  Trace.Buffer.t ->
  unit
(** Feed one executed payload's trace; the payload is kept as exploit
    evidence the first time each detector fires.  [executed] is the
    precomputed {!executed_ids} chain when the caller already streamed
    the buffer (the engine's fused scan). *)

val verdict : t -> flag -> bool
val report : t -> (flag * bool) list

(** {1 Extension interface (§5)} *)

val register_custom : t -> custom_oracle -> unit
val custom_report : t -> (string * bool) list

val evidence_for : t -> flag -> evidence option
(** Exploit payload behind a fired verdict, if one was captured. *)

val string_of_evidence : ?abi:Abi.t -> evidence -> string
(** Render the payload; with an ABI the arguments are decoded. *)

val evidence_to_wire : evidence -> string
(** Single-token serialisation for journals:
    [channel@account@action@auth1+auth2@hexdata].  No whitespace, tabs or
    newlines; {!evidence_of_wire} round-trips it byte-exactly (the raw
    payload bytes are hex-encoded). *)

val evidence_of_wire : string -> (evidence, string) result
(** Strict inverse of {!evidence_to_wire}: field count, channel keyword,
    EOSIO names and hex payload are all validated. *)

val calls_env_import : Trace.meta -> string -> Trace.Buffer.t -> bool
(** Did the trace call the named env API?  The building block most
    detectors need. *)

val first_call_args :
  Trace.meta -> string -> Trace.Buffer.t -> Wasai_wasm.Values.value list option
(** Arguments of the first call to the named env API. *)
