(** Textual vulnerability reports for engine outcomes — the output format
    of the CLI and of batch scans. *)

type t = {
  rpt_target : string;  (** contract identifier (file or account) *)
  rpt_outcome : Engine.outcome;
  rpt_elapsed : float option;
  rpt_abi : Wasai_eosio.Abi.t option;  (** decodes exploit arguments *)
}

let make ?elapsed ?abi ~target (outcome : Engine.outcome) : t =
  {
    rpt_target = target;
    rpt_outcome = outcome;
    rpt_elapsed = elapsed;
    rpt_abi = abi;
  }

let vulnerable (r : t) = Engine.any_flagged r.rpt_outcome

let flags_found (r : t) : string list =
  List.filter_map
    (fun (f, b) -> if b then Some (Scanner.string_of_flag f) else None)
    r.rpt_outcome.Engine.out_flags
  @ List.filter_map
      (fun (name, b) -> if b then Some name else None)
      r.rpt_outcome.Engine.out_custom

(** One-line summary: "<target>: VULNERABLE [FakeEOS; Rollback]". *)
let summary (r : t) : string =
  if vulnerable r then
    Printf.sprintf "%s: VULNERABLE [%s]" r.rpt_target
      (String.concat "; " (flags_found r))
  else Printf.sprintf "%s: ok" r.rpt_target

(** Full multi-line report. *)
let to_text ?(verbose = false) (r : t) : string =
  let o = r.rpt_outcome in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "WASAI report for %s (%d fuzzing rounds%s)" r.rpt_target
    o.Engine.out_rounds
    (match r.rpt_elapsed with
     | Some s -> Printf.sprintf ", %.2fs" s
     | None -> "");
  line "  transactions executed : %d" o.Engine.out_transactions;
  line "  distinct branches     : %d" o.Engine.out_branches;
  line "  adaptive seeds solved : %d" o.Engine.out_adaptive_seeds;
  (* Solver accounting in the main body: Unknown-heavy targets (budget
     exhaustion masking bugs) must be visible without a campaign run. *)
  let st = o.Engine.out_solver in
  line "  solver: quick=%d blasted=%d unknown=%d cache=%s"
    st.Wasai_smt.Solver.st_quick st.Wasai_smt.Solver.st_blasted
    st.Wasai_smt.Solver.st_unknown
    (Wasai_support.Metrics.rate_string ~hits:st.Wasai_smt.Solver.st_cache_hits
       ~total:
         (st.Wasai_smt.Solver.st_cache_hits
         + st.Wasai_smt.Solver.st_cache_misses));
  if o.Engine.out_truncated > 0 then
    line "  WARNING: %d payload trace%s truncated at the collector limit; verdicts are best-effort"
      o.Engine.out_truncated
      (if o.Engine.out_truncated = 1 then "" else "s");
  line "  verdicts:";
  List.iter
    (fun (f, b) ->
      line "    %-14s %s"
        (Scanner.string_of_flag f)
        (if b then "VULNERABLE" else "ok"))
    o.Engine.out_flags;
  List.iter
    (fun (name, b) -> line "    %-14s %s" name (if b then "FIRED" else "quiet"))
    o.Engine.out_custom;
  if o.Engine.out_exploits <> [] then begin
    line "  exploit payloads:";
    List.iter
      (fun (f, e) ->
        line "    %-14s %s"
          (Scanner.string_of_flag f)
          (Scanner.string_of_evidence ?abi:r.rpt_abi e))
      o.Engine.out_exploits
  end;
  if verbose then begin
    line "  seeds generated       : %d" o.Engine.out_seeds_total;
    line "  SMT queries satisfied : %d" o.Engine.out_solver_sat;
    line "  replay imprecision    : %d" o.Engine.out_imprecise
  end;
  Buffer.contents buf
