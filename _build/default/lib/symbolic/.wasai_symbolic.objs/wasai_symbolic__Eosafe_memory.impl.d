lib/symbolic/eosafe_memory.ml: Int64 List Wasai_smt
