(** Zero-interference span profiling for the whole pipeline.

    Every expensive stage of a fuzzing run — module load, wasabi
    instrumentation, compilation, per-payload execution (split by tier),
    trace scanning, the oracle pass, the three solver outcomes, corpus
    writes and journal fsyncs — can be timed as a {e span}: a
    [(stage, target, start, duration)] quadruple of unboxed integers
    recorded into a per-domain preallocated ring buffer.

    The contract is zero interference:

    - {b disabled} (the default), {!start} is a single atomic load and
      returns [0]; {!stop} sees the [0] and returns immediately.  No
      clock read, no allocation, no write.  Journals, reports and
      verdicts are byte-identical to a build without any
      instrumentation.
    - {b enabled}, the hot path still allocates nothing: the clock is a
      [[@noalloc] [@untagged]] external over [clock_gettime(MONOTONIC)],
      spans land in int arrays preallocated per domain, and per-stage /
      per-(stage, target) aggregates are bumped in place.  Recording
      never touches scheduling-visible state — no locks on the hot path,
      no I/O, no effect on RNG, solver or chain state — so enabling
      telemetry cannot change a verdict.

    Aggregation across domains is exact: every domain's recorder is
    registered (under a mutex, once, on first use) in a global list that
    {!snapshot} merges with plain integer sums. *)

(** The fixed stage taxonomy.  Indices are dense and stable; names (via
    {!stage_name}) are the wire/report vocabulary. *)
type stage =
  | Load_validate  (** decode/parse + ABI discovery of a target module *)
  | Instrument  (** wasabi binary instrumentation *)
  | Compile  (** closure-compilation of the instrumented module *)
  | Exec_interp  (** payload execution on the tree-walking interpreter *)
  | Exec_compiled  (** payload execution on the compiled tier *)
  | Trace_scan  (** symbolic trace reconstruction per payload *)
  | Oracle  (** the streaming detection pass *)
  | Solver_quick  (** solver calls answered by the interval engine *)
  | Solver_blast  (** solver calls that reached bit-blasting *)
  | Solver_cache  (** solver calls answered by the session cache *)
  | Corpus_io  (** corpus shard append + index write *)
  | Journal_fsync  (** journal line write + fsync *)

val stages : stage list
(** All stages, in declaration order. *)

val stage_name : stage -> string
(** Stable snake_case name, e.g. ["exec_compiled"]. *)

(** {1 Switch} *)

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool
(** One atomic load; this is the whole cost of a disabled probe. *)

val reset : unit -> unit
(** Zero every registered recorder and forget interned targets.  Only
    meaningful while no instrumented code is running (between bench
    phases, between tests). *)

(** {1 Hot path} *)

val start : unit -> int
(** Monotonic nanoseconds now, or [0] when disabled.  Allocation-free. *)

val stop : stage -> int -> unit
(** [stop st t0] records a span of stage [st] from [t0] to now against
    the calling domain's ambient target.  No-op when [t0 = 0] (i.e. the
    matching {!start} saw telemetry disabled).  Allocation-free. *)

(** {1 Target attribution} *)

val no_target : int
(** The ambient default: spans recorded outside any target ([0]). *)

val target_id : string -> int
(** Intern a target name (cold path; takes a lock). *)

val set_target : int -> unit
(** Set the calling domain's ambient target for subsequent spans, and
    size this domain's per-target aggregates for it (cold path). *)

(** {1 Snapshot and rendering} *)

type snapshot = {
  ts_spans : int;  (** total spans recorded, including ring-evicted ones *)
  ts_stages : (stage * int * int) list;
      (** per stage: (stage, span count, total ns); all stages listed *)
  ts_targets : (string * (stage * int * int) list) list;
      (** per named target: non-empty stage rows, declaration order *)
}

val snapshot : unit -> snapshot
(** Merge every domain's aggregates with exact integer sums.  Safe to
    call while workers run (monitoring reads may then be a span or two
    behind a racing recorder, never corrupt). *)

val report_text : snapshot -> string
(** The per-stage / per-target critical-path breakdown appended to
    campaign reports under [--telemetry]. *)

val prometheus : snapshot -> string
(** Prometheus text-exposition lines for the stage aggregates
    ([wasai_stage_seconds_total] / [wasai_stage_spans_total]). *)
