lib/smt/expr.mli: Format Hashtbl
