lib/eosio/chain.mli: Abi Action Buffer Database Hashtbl Name Queue Wasai_wasm
