(** Execution traces.

    The instrumented contract calls hook imports in the [wasai] namespace
    while it runs; the collector assembles the flat event stream into
    structured records τ(i, p⃗) — the trace format of the paper's §3.1.
    Only instrumented contracts import the hooks, so auxiliary contracts
    never pollute the trace. *)

module Wasm = Wasai_wasm

(** Static description of one instrumented instruction site. *)
type site = {
  site_id : int;
  site_func : int;  (** absolute function index in the instrumented module *)
  site_instr : Wasm.Ast.instr;  (** post-remap instruction *)
}

(** Static metadata produced by the instrumenter (Wasabi's static-info
    file). *)
type meta = {
  sites : site array;
  instrumented : Wasm.Ast.module_;
  original : Wasm.Ast.module_;
  hook_base : int;  (** first hook import index *)
  hook_count : int;
  orig_import_count : int;
}

val site_of : meta -> int -> site
val import_name : meta -> int -> string option

val find_env_import : meta -> string -> int option
(** Absolute index of an [env] import, if the contract imports it. *)

val edge_signature : (int * int32) list -> int64
(** Stable hash of a branch-edge set — the coverage signature a corpus
    indexes seeds by.  The edge list is canonicalised first (sorted,
    deduplicated), so the signature is a pure function of the {e set}:
    independent of trace order, duplication, machine, or OCaml's
    [Hashtbl.hash].  FNV-1a 64-bit over each edge's little-endian bytes. *)

(** {1 Structured records} *)

type record =
  | R_instr of { site : int; ops : Wasm.Values.value list }
  | R_call_pre of { site : int; args : Wasm.Values.value list }
  | R_call_post of { site : int; results : Wasm.Values.value list }
  | R_func_begin of int  (** absolute function index *)
  | R_func_end of int

val record_site : record -> int option
val string_of_record : meta -> record -> string

(** {1 Collector: flat event buffer}

    The trace is collected into a growable int-array event tape plus an
    operand pool (raw i32/i64 words with a width tag) — hook appends are
    O(1) with zero per-event heap allocation, and consumers stream over
    the buffer with index cursors instead of materialising a record
    list.  {!record} survives as the debug/compat view
    ({!Buffer.to_list} / {!Buffer.record_of}). *)

module Buffer : sig
  type kind = K_instr | K_call_pre | K_call_post | K_func_begin | K_func_end

  type t

  val create : ?limit:int -> unit -> t
  (** [limit] (default 2,000,000 events) is the safety valve against
      pathological traces; appends past it are refused and set
      {!truncated}. *)

  (** {2 Append side (hook calls)} *)

  val begin_instr : t -> int -> unit
  val begin_call_pre : t -> int -> unit
  val begin_call_post : t -> int -> unit
  val operand : t -> Wasm.Values.value -> unit
  val func_begin : t -> int -> unit
  val func_end : t -> int -> unit

  (** Unboxed operand appends — byte-identical on the tape to {!operand}
      applied to the corresponding boxed value.  The compiled execution
      tier's inlined hooks call these directly. *)

  val operand_i32 : t -> int32 -> unit
  val operand_i64 : t -> int64 -> unit
  val operand_f32 : t -> float -> unit
  val operand_f64 : t -> float -> unit

  val reset : t -> unit
  (** Rewind the write cursors, keeping capacity: steady-state
      collection across payloads allocates nothing. *)

  (** {2 Read side (cursor accessors, event index [0 .. length-1])} *)

  val length : t -> int

  val truncated : t -> bool
  (** The collector refused at least one event since the last {!reset}:
      the trace is a prefix, and post-cut-off operands were dropped or
      mis-attributed exactly as the historical list collector did.
      Consumers must treat verdicts from truncated traces as
      best-effort. *)

  val kind : t -> int -> kind

  val label : t -> int -> int
  (** Site id for instr/call events, absolute function index for
      func events. *)

  val op_count : t -> int -> int
  val op : t -> int -> int -> Wasm.Values.value

  val op_bits : t -> int -> int -> int64
  (** Raw bits of the operand, zero-extended to 64 — identical to
      [Values.raw_bits (op t i j)] without decoding. *)

  val op_i32 : t -> int -> int -> int32
  (** Low 32 bits as an int32 (meaningful for i32/f32-tagged operands). *)

  val op_is_i32 : t -> int -> int -> bool
  val op_is_i64 : t -> int -> int -> bool

  val ops : t -> int -> Wasm.Values.value list
  (** All operands of event [i], materialised (the call_pre / call_post
      argument and result vectors). *)
end

(** {1 Cursor: positioned forward iteration}

    The streaming read API over {!Buffer}: a mutable position plus
    accessors for the event under it.  No record materialisation — each
    accessor is the corresponding O(1) {!Buffer} read at the current
    position.  Oracles receive one cursor per payload and advance it
    themselves; {!Cursor.seek} supports the replayer's look-ahead. *)

module Cursor : sig
  type t

  val make : Buffer.t -> t
  (** Cursor at position 0.  The cursor aliases the buffer: a
      {!Buffer.reset} invalidates outstanding cursors. *)

  val buffer : t -> Buffer.t
  val length : t -> int

  val pos : t -> int
  val seek : t -> int -> unit
  val reset : t -> unit
  val at_end : t -> bool
  val advance : t -> unit

  (** Accessors for the event at [pos] (valid while [not (at_end c)]). *)

  val kind : t -> Buffer.kind
  val label : t -> int
  val op_count : t -> int
  val op : t -> int -> Wasm.Values.value

  val ops : t -> Wasm.Values.value list
  (** All operands of the current event, materialised (the call_pre /
      call_post argument and result vectors). *)

  val op_bits : t -> int -> int64
  val op_i32 : t -> int -> int32
  val op_is_i32 : t -> int -> bool
  val op_is_i64 : t -> int -> bool
end

(** {1 Compat: materialised structured records (test-only)}

    Boxed {!record} views over the flat buffer, quarantined so the
    cursor API is the only streaming surface production code sees.  The
    equivalence property tests and debug printing are the intended
    consumers; analysis code streams with {!Cursor}. *)

module Compat : sig
  val record_of : Buffer.t -> int -> record
  (** Build a boxed record for one event. *)

  val iter : (record -> unit) -> Buffer.t -> unit
  val fold : ('a -> record -> 'a) -> 'a -> Buffer.t -> 'a

  val to_list : Buffer.t -> record list
  (** Materialise the whole tape as a record list. *)

  val of_records : ?limit:int -> record list -> Buffer.t
  (** Feed records through the append path (same limit semantics as
      live collection) — the bridge the equivalence tests use. *)

  val drain : Buffer.t -> record list
  (** Materialise the collected trace (oldest first) and reset. *)
end

type t = Buffer.t

val create : ?limit:int -> unit -> t
val begin_instr : t -> int -> unit
val begin_call_pre : t -> int -> unit
val begin_call_post : t -> int -> unit
val operand : t -> Wasm.Values.value -> unit
val func_begin : t -> int -> unit
val func_end : t -> int -> unit
val reset : t -> unit
