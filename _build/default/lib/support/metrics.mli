(** Binary-classification metrics used by every evaluation table. *)

type confusion = {
  mutable tp : int;
  mutable fp : int;
  mutable tn : int;
  mutable fn : int;
}

val empty : unit -> confusion

val record : confusion -> truth:bool -> predicted:bool -> unit
(** Tally one sample. *)

val merge : confusion -> confusion -> confusion
val total : confusion -> int
val precision : confusion -> float
val recall : confusion -> float
val f1 : confusion -> float
val pct : float -> float

val pct_string : float -> string
(** "100%" / "98.4%" style rendering used in the paper's tables. *)

val row_string : confusion -> string
(** "P=... R=... F1=..." summary. *)
