lib/wasm/decode.ml: Array Ast Char Int32 Int64 List Printf String Types Values
