(** The Wasm bytecode obfuscator of RQ3 (§4.3).

    Two semantics-preserving transforms, applied at the bytecode level so
    they work on any module:

    - {b data-flow}: equality tests are re-encoded through the popcount
      algorithm — [x == y] becomes [popcnt(x ^ y) == 0] — hiding the
      direct comparison of operands and pushing solvers into counting
      circuits;
    - {b control-flow}: an opaque recursive function is inserted and
      invoked at the head of every original function; its self-call is
      guarded by a condition that can never hold ([popcnt(x) > width]),
      so execution never recurses but a static CFG gains a cycle through
      every function. *)

module Wasm = Wasai_wasm
module Ast = Wasm.Ast
module T = Wasm.Types
module I = Wasm.Builder.I

(* x == y  ~>  popcnt(x ^ y) == 0;  x != y  ~>  popcnt(x ^ y) != 0 *)
let popcount_encode (ty : T.num_type) (op : Ast.int_relop) :
    Ast.instr list option =
  match op with
  | Ast.Eq ->
      Some
        [
          Ast.Int_binary (ty, Ast.Xor);
          Ast.Int_unary (ty, Ast.Popcnt);
          Ast.Eqz ty;
        ]
  | Ast.Ne ->
      Some
        [
          Ast.Int_binary (ty, Ast.Xor);
          Ast.Int_unary (ty, Ast.Popcnt);
          Ast.Eqz ty;
          Ast.Eqz T.I32;
        ]
  | _ -> None

let rec obfuscate_body (body : Ast.instr list) : Ast.instr list =
  List.concat_map
    (fun (i : Ast.instr) ->
      match i with
      | Ast.Int_compare (ty, op) -> (
          match popcount_encode ty op with
          | Some encoded -> encoded
          | None -> [ i ])
      | Ast.Block (bt, b) -> [ Ast.Block (bt, obfuscate_body b) ]
      | Ast.Loop (bt, b) -> [ Ast.Loop (bt, obfuscate_body b) ]
      | Ast.If (bt, t, e) -> [ Ast.If (bt, obfuscate_body t, obfuscate_body e) ]
      | _ -> [ i ])
    body

(** Apply both transforms to a module. *)
let obfuscate (m : Ast.module_) : Ast.module_ =
  let n_imp = Ast.num_func_imports m in
  (* The opaque recursive function will be appended at the end of the
     function index space, so existing indices stay valid. *)
  let opaque_idx = n_imp + Array.length m.Ast.funcs in
  (* Intern its type () <- (i64). *)
  let opaque_ty = T.func_type [ T.I64 ] in
  let types, opaque_ti =
    let existing = Array.to_list m.Ast.types in
    let rec find i = function
      | [] -> (existing @ [ opaque_ty ], List.length existing)
      | t :: rest ->
          if T.equal_func_type t opaque_ty then (existing, i)
          else find (i + 1) rest
    in
    find 0 existing
  in
  let opaque_func =
    {
      Ast.ftype = opaque_ti;
      locals = [];
      fname = Some "obf.opaque";
      body =
        [
          (* if (popcnt(x) > 64) obf.opaque(x + 1) -- never true *)
          I.local_get 0;
          Ast.Int_unary (T.I64, Ast.Popcnt);
          I.i64 64L;
          Ast.Int_compare (T.I64, Ast.Gt_u);
          I.if_
            [ I.local_get 0; I.i64 1L; I.i64_add; I.call opaque_idx ]
            [];
        ];
    }
  in
  let inject_call (f : Ast.func) =
    let seed =
      match m.Ast.types.(f.Ast.ftype).T.params with
      | T.I64 :: _ -> [ I.local_get 0 ]
      | _ -> [ I.i64 0x5eedL ]
    in
    { f with Ast.body = seed @ [ I.call opaque_idx ] @ obfuscate_body f.Ast.body }
  in
  let funcs = Array.map inject_call m.Ast.funcs in
  let funcs = Array.append funcs [| opaque_func |] in
  let m' = { m with Ast.types = Array.of_list types; funcs } in
  Wasm.Validate.check_module m';
  m'

(** Number of comparison sites the data-flow transform rewrote (used by
    tests and reports). *)
let count_encodable (m : Ast.module_) : int =
  let n = ref 0 in
  Array.iter
    (fun (f : Ast.func) ->
      Ast.iter_instrs
        (fun i ->
          match i with
          | Ast.Int_compare (_, (Ast.Eq | Ast.Ne)) -> incr n
          | _ -> ())
        f.Ast.body)
    m.Ast.funcs;
  !n
