(** Growable byte-addressable linear memory.

    One Wasm page is 64 KiB.  Loads and stores are little-endian and trap on
    out-of-bounds access, as in the specification. *)

let page_size = 0x10000

type t = {
  mutable data : Bytes.t;
  mutable pages : int;
  max_pages : int option;
  mutable dirty_hi : int;
      (** exclusive upper bound of every byte written since the last
          {!restore} (or since creation) — lets [restore] blit only the
          modified prefix *)
}

let create (mt : Types.memory_type) =
  let pages = mt.mem_limits.lim_min in
  {
    data = Bytes.make (pages * page_size) '\000';
    pages;
    max_pages = mt.mem_limits.lim_max;
    dirty_hi = 0;
  }

let[@inline] mark_dirty t hi = if hi > t.dirty_hi then t.dirty_hi <- hi

let size_pages t = t.pages
let size_bytes t = t.pages * page_size

(** Grow by [delta] pages; returns the previous size in pages, or [-1l] on
    failure (the Wasm [memory.grow] contract). *)
let grow t delta =
  let old = t.pages in
  let target = old + delta in
  let limit = match t.max_pages with Some m -> m | None -> 0x10000 in
  if delta < 0 || target > limit then -1l
  else begin
    let data = Bytes.make (target * page_size) '\000' in
    Bytes.blit t.data 0 data 0 (Bytes.length t.data);
    t.data <- data;
    t.pages <- target;
    t.dirty_hi <- Bytes.length data;
    Int32.of_int old
  end

let check_bounds t addr len =
  if addr < 0 || len < 0 || addr + len > size_bytes t then
    Values.trap "out of bounds memory access (addr=%d len=%d size=%d)" addr len
      (size_bytes t)

let load_byte t addr =
  check_bounds t addr 1;
  Char.code (Bytes.get t.data addr)

let store_byte t addr b =
  check_bounds t addr 1;
  mark_dirty t (addr + 1);
  Bytes.set t.data addr (Char.chr (b land 0xff))

(** Load [len] (1..8) little-endian bytes as an unsigned int64. *)
let load_bytes_le t addr len =
  check_bounds t addr len;
  let v = ref 0L in
  for i = len - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.get t.data (addr + i))))
  done;
  !v

let store_bytes_le t addr len v =
  check_bounds t addr len;
  mark_dirty t (addr + len);
  for i = 0 to len - 1 do
    Bytes.set t.data (addr + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let load_string t addr len =
  check_bounds t addr len;
  Bytes.sub_string t.data addr len

let store_string t addr s =
  check_bounds t addr (String.length s);
  mark_dirty t (addr + String.length s);
  Bytes.blit_string s 0 t.data addr (String.length s)

(** Sign- or zero-extend an unsigned [bits]-wide value held in an int64. *)
let extend_to_i64 ~(signed : bool) ~bits (v : int64) =
  if bits >= 64 then v
  else if signed then
    let shift = 64 - bits in
    Int64.shift_right (Int64.shift_left v shift) shift
  else v

(** Execute a load operation at effective address [ea]. *)
let load_value t (op : Ast.loadop) ea : Values.value =
  let full_width = Types.size_of_num_type op.l_ty in
  match op.l_pack with
  | None -> (
      let raw = load_bytes_le t ea full_width in
      match op.l_ty with
      | Types.I32 -> Values.I32 (Int64.to_int32 raw)
      | Types.I64 -> Values.I64 raw
      | Types.F32 -> Values.F32 (Int32.float_of_bits (Int64.to_int32 raw))
      | Types.F64 -> Values.F64 (Int64.float_of_bits raw))
  | Some (sz, ext) -> (
      let bits =
        match sz with Ast.Pack8 -> 8 | Ast.Pack16 -> 16 | Ast.Pack32 -> 32
      in
      let raw = load_bytes_le t ea (bits / 8) in
      let v = extend_to_i64 ~signed:(ext = Ast.SX) ~bits raw in
      match op.l_ty with
      | Types.I32 -> Values.I32 (Int64.to_int32 v)
      | Types.I64 -> Values.I64 v
      | Types.F32 | Types.F64 -> Values.trap "packed float load")

(** Execute a store operation at effective address [ea]. *)
let store_value t (op : Ast.storeop) ea (v : Values.value) =
  let raw = Values.raw_bits v in
  let width =
    match op.s_pack with
    | None -> Types.size_of_num_type op.s_ty
    | Some Ast.Pack8 -> 1
    | Some Ast.Pack16 -> 2
    | Some Ast.Pack32 -> 4
  in
  store_bytes_le t ea width raw

(** Number of bytes moved by a load operation. *)
let loadop_width (op : Ast.loadop) =
  match op.l_pack with
  | None -> Types.size_of_num_type op.l_ty
  | Some (Ast.Pack8, _) -> 1
  | Some (Ast.Pack16, _) -> 2
  | Some (Ast.Pack32, _) -> 4

let storeop_width (op : Ast.storeop) =
  match op.s_pack with
  | None -> Types.size_of_num_type op.s_ty
  | Some Ast.Pack8 -> 1
  | Some Ast.Pack16 -> 2
  | Some Ast.Pack32 -> 4

let snapshot t : string = Bytes.to_string t.data

let restore t (img : string) =
  if Bytes.length t.data <> String.length img then begin
    (* grown since the snapshot: replace wholesale and shrink back *)
    t.data <- Bytes.of_string img;
    t.pages <- String.length img / page_size
  end
  else begin
    (* Everything outside the dirty prefix still equals the image: bytes
       above it have not been written since the previous restore (or
       since creation), and the image agrees with that state. *)
    let n = min t.dirty_hi (String.length img) in
    if n > 0 then Bytes.blit_string img 0 t.data 0 n
  end;
  t.dirty_hi <- 0
